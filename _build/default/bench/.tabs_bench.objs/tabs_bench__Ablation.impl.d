bench/ablation.ml: Account_server Btree_server Cluster Cost_model Engine Int_array_server List Metrics Node Printf String Tabs_core Tabs_servers Tabs_sim Tabs_wal Txn_lib
