bench/report.ml: Array List Paper_data Printf String Tabs_sim Workloads
