bench/throughput.ml: Cluster Engine Errors Int_array_server List Node Printf Rng Server_lib String Tabs_core Tabs_lock Tabs_servers Tabs_sim Txn_lib
