bench/workloads.ml: Array Cluster Cost_model Engine Int_array_server List Metrics Node Printf Rng Rpc Tabs_core Tabs_servers Tabs_sim Tabs_tm Tabs_wal Txn_lib
