(* The published numbers from the evaluation section (Section 5), used
   to print paper-vs-reproduction comparisons. Times in milliseconds,
   counts in (possibly fractional) executions per transaction. *)

(* Table 5-1: primitive operation times on the Perq T2. *)
let table_5_1 =
  [
    ("Data Server Call", 26.1);
    ("Inter-Node Data Server Call", 89.);
    ("Datagram", 25.);
    ("Small Contiguous Message", 3.0);
    ("Large Contiguous Message", 4.4);
    ("Pointer Message", 18.3);
    ("Random Access Paged I/O", 32.);
    ("Sequential Read", 16.);
    ("Stable Storage Write", 79.);
  ]

(* Table 5-5: achievable primitive times. *)
let table_5_5 =
  [
    ("Data Server Call", 2.5);
    ("Inter-Node Data Server Call", 9.);
    ("Datagram", 2.0);
    ("Small Contiguous Message", 1.0);
    ("Large Contiguous Message", 1.25);
    ("Pointer Message", 15.);
    ("Random Access Paged I/O", 32.);
    ("Sequential Read", 10.);
    ("Stable Storage Write", 32.);
  ]

(* The paper's benchmark names, in Table 5-2/5-4 order. *)
let benchmark_names =
  [
    "1 Local Read, No Paging";
    "5 Local Read, No Paging";
    "1 Local Read, Seq. Paging";
    "1 Local Read, Random Paging";
    "1 Local Write, No Paging";
    "5 Local Write, No Paging";
    "1 Local Write, Seq. Paging";
    "1 Lcl Rd, 1 Rem Rd, No Paging";
    "1 Lcl Rd, 5 Rem Rd, No Paging";
    "1 Lcl Rd, 1 Rem Rd, Seq. Paging";
    "1 Lcl Wr, 1 Rem Wr, No Paging";
    "1 Lcl Wr, 1 Rem Wr, Seq. Paging";
    "1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP";
    "1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP";
  ]

type counts = {
  dsc : float; (* data server calls *)
  remote_dsc : float;
  datagram : float;
  small : float;
  large : float;
  pointer : float;
  seq_read : float;
  random_io : float;
  stable : float;
}

let zero =
  {
    dsc = 0.;
    remote_dsc = 0.;
    datagram = 0.;
    small = 0.;
    large = 0.;
    pointer = 0.;
    seq_read = 0.;
    random_io = 0.;
    stable = 0.;
  }

(* Table 5-2: pre-commit primitive counts (blank = 0; the .86 is the
   measured number of page I/Os per transaction in the paper's run). *)
let table_5_2 =
  [
    { zero with dsc = 1.; small = 4. };
    { zero with dsc = 5.; small = 4. };
    { zero with dsc = 1.; small = 4.; seq_read = 1. };
    { zero with dsc = 1.; small = 4.; random_io = 1. };
    { zero with dsc = 1.; small = 6.; large = 1.; random_io = 0.86 };
    { zero with dsc = 5.; small = 14.; large = 5. };
    { zero with dsc = 1.; small = 10.; large = 1.; seq_read = 1.; random_io = 1. };
    { zero with dsc = 1.; remote_dsc = 1.; small = 8. };
    { zero with dsc = 1.; remote_dsc = 5.; small = 8. };
    { zero with dsc = 1.; remote_dsc = 1.; small = 8.; seq_read = 2. };
    { zero with dsc = 1.; remote_dsc = 1.; small = 12.; large = 2. };
    { zero with dsc = 1.; remote_dsc = 1.; small = 20.; large = 2.; seq_read = 2. };
    { zero with dsc = 1.; remote_dsc = 2.; small = 11.; large = 1. };
    { zero with dsc = 1.; remote_dsc = 2.; small = 17.; large = 3. };
  ]

(* Table 5-3: commit-phase primitive counts for the six protocol
   classes. The half datagrams are the paper's accounting of parallel
   sends to a second remote node. *)
let table_5_3 =
  [
    ("1 Node, Read Only", { zero with small = 5. });
    ("1 Node, Write", { zero with small = 8.; large = 1.; stable = 1. });
    ("2 Node, Read Only", { zero with datagram = 2.; small = 11.; large = 1. });
    ( "2 Node, Write",
      { zero with datagram = 4.; small = 17.; large = 5.; pointer = 1.; stable = 1. } );
    ("3 Node, Read Only", { zero with datagram = 2.5; small = 11.; large = 1. });
    ( "3 Node, Write",
      { zero with datagram = 5.; small = 17.; large = 5.; pointer = 1.; stable = 1. } );
  ]

(* Which benchmark (index into benchmark_names) exhibits each commit
   class. *)
let table_5_3_benchmark = [ 0; 4; 7; 10; 12; 13 ]

type times = {
  predicted : float;
  process : float;
  elapsed : float;
  improved : float;
  new_prims : float;
}

(* Table 5-4: benchmark times in milliseconds. *)
let table_5_4 =
  [
    { predicted = 53.; process = 41.; elapsed = 110.; improved = 107.; new_prims = 67. };
    { predicted = 157.; process = 41.; elapsed = 217.; improved = 213.; new_prims = 80. };
    { predicted = 71.; process = 41.; elapsed = 126.; improved = 123.; new_prims = 75. };
    { predicted = 81.; process = 41.; elapsed = 140.; improved = 137.; new_prims = 98. };
    { predicted = 156.; process = 83.; elapsed = 247.; improved = 228.; new_prims = 136. };
    { predicted = 302.; process = 119.; elapsed = 467.; improved = 424.; new_prims = 225. };
    { predicted = 232.; process = 104.; elapsed = 371.; improved = 345.; new_prims = 249. };
    { predicted = 306.; process = 223.; elapsed = 469.; improved = 459.; new_prims = 228. };
    { predicted = 662.; process = 368.; elapsed = 829.; improved = 819.; new_prims = 268. };
    { predicted = 341.; process = 226.; elapsed = 514.; improved = 504.; new_prims = 257. };
    { predicted = 697.; process = 407.; elapsed = 989.; improved = 775.; new_prims = 442. };
    { predicted = 864.; process = 441.; elapsed = 1125.; improved = 873.; new_prims = 539. };
    { predicted = 416.; process = 381.; elapsed = 621.; improved = 611.; new_prims = 282. };
    { predicted = 831.; process = 670.; elapsed = 1200.; improved = 968.; new_prims = 534. };
  ]
