bin/tabs_demo.mli:
