bin/workload_specs.ml: Int_array_server Printf Rpc Tabs_core Tabs_servers Tabs_wal
