(* Small benchmark bodies for the `stats` subcommand: a cut-down version
   of bench/workloads.ml (the full harness lives there). Each entry is
   (name, nodes, body). *)

open Tabs_core
open Tabs_servers

let rd rpc tid ~dest cell =
  ignore
    (Int_array_server.call_get rpc ~dest
       ~server:(Printf.sprintf "a%d" dest)
       tid cell)

let wr rpc tid ~dest cell v =
  Int_array_server.call_set rpc ~dest
    ~server:(Printf.sprintf "a%d" dest)
    tid cell v

let specs :
    (string * int * (Rpc.registry -> Tabs_wal.Tid.t -> unit)) list =
  [
    ("1 local read", 1, fun rpc tid -> rd rpc tid ~dest:0 0);
    ( "5 local reads",
      1,
      fun rpc tid ->
        for _ = 1 to 5 do
          rd rpc tid ~dest:0 0
        done );
    ("1 local write", 1, fun rpc tid -> wr rpc tid ~dest:0 0 1);
    ( "1 local + 1 remote read",
      2,
      fun rpc tid ->
        rd rpc tid ~dest:0 0;
        rd rpc tid ~dest:1 0 );
    ( "1 local + 1 remote write",
      2,
      fun rpc tid ->
        wr rpc tid ~dest:0 0 1;
        wr rpc tid ~dest:1 0 1 );
    ( "3-node write",
      3,
      fun rpc tid ->
        wr rpc tid ~dest:0 0 1;
        wr rpc tid ~dest:1 0 1;
        wr rpc tid ~dest:2 0 1 );
  ]
