examples/bank.ml: Account_server Cluster Engine Io_server Node Option Printf Tabs_core Tabs_servers Tabs_sim Tabs_wal Txn_lib
