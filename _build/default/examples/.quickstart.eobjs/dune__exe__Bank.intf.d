examples/bank.mli:
