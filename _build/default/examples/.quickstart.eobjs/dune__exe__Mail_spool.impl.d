examples/mail_spool.ml: Cluster Directory_server Engine Errors Int_array_server Node Option Printf Tabs_core Tabs_servers Tabs_sim Txn_lib Weak_queue_server
