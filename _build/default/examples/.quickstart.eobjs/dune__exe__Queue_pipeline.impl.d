examples/queue_pipeline.ml: Cluster Engine Errors Hashtbl Node Option Printf Rng Tabs_core Tabs_servers Tabs_sim Txn_lib Weak_queue_server
