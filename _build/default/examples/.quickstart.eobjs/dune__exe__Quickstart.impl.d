examples/quickstart.ml: Cluster Int_array_server List Node Option Printf Tabs_core Tabs_servers Txn_lib
