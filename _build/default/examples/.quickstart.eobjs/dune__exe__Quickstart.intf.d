examples/quickstart.mli:
