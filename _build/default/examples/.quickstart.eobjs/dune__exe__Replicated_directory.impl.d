examples/replicated_directory.ml: Btree_server Cluster List Node Option Printf Replicated_directory Tabs_core Tabs_servers Txn_lib
