(* The Figure 4-1 bank: a trivial bank application using the I/O server
   for transaction-based terminal output and the operation-logged
   account server for balances.

   The example replays the exact scenario of the paper's screen
   snapshot: area one shows a successful $35 deposit (black); in area
   two the node fails during an $80 withdrawal, causing it to abort
   (lines drawn through the output after the screen is restored); in
   area three the user tries again, and the snapshot catches the retry
   still in progress (gray).

   Run with:  dune exec examples/bank.exe *)

open Tabs_sim
open Tabs_core
open Tabs_servers

let checking = 0

let build_servers env =
  let io = Io_server.create env ~name:"io" ~segment:6 () in
  let accounts =
    Account_server.create env ~name:"accounts" ~segment:3 ~accounts:16 ()
  in
  (io, accounts)

let () =
  let cluster = Cluster.create ~nodes:1 () in
  let node = Cluster.node cluster 0 in
  let io, accounts = build_servers (Node.env node) in
  let tm = Node.tm node in

  (* Area one: a committed deposit. *)
  Cluster.run_fiber cluster ~node:0 (fun () ->
      let area1 = Io_server.obtain_io_area io in
      Io_server.provide_input io area1 "35";
      Txn_lib.execute_transaction tm (fun tid ->
          Io_server.writeln_to_area io tid area1 "deposit to checking:";
          let amount = int_of_string (Io_server.read_line_from_area io tid area1) in
          Account_server.deposit accounts tid checking amount;
          Io_server.writeln_to_area io tid area1 "deposited $35"));

  (* Area two: the node fails during a withdrawal; the transaction
     never commits. *)
  Cluster.spawn cluster ~node:0 (fun () ->
      let area2 = Io_server.obtain_io_area io in
      let tid = Txn_lib.begin_transaction tm () in
      Io_server.writeln_to_area io tid area2 "withdraw $80 from checking";
      (* ... the node crashes before this transaction completes *)
      Engine.delay 10_000_000);
  Cluster.run_until cluster ~time:(Engine.now (Cluster.engine cluster) + 2_000_000);
  Tabs_wal.Log_manager.force_all (Node.log node);
  Node.crash node;

  (* The system becomes available again; the I/O server restores the
     screen. *)
  let servers = ref None in
  ignore
    (Cluster.run_fiber cluster ~node:0 (fun () ->
         Node.restart node ~reinstall:(fun env ->
             servers := Some (build_servers env)) ()));
  let io, accounts = Option.get !servers in
  let tm = Node.tm node in

  (* Area three: the user tries again; we snapshot the screen while the
     retry is still in progress. *)
  let snapshot = ref "" in
  Cluster.spawn cluster ~node:0 (fun () ->
      let area3 = Io_server.obtain_io_area io in
      Txn_lib.execute_transaction tm (fun tid ->
          Io_server.writeln_to_area io tid area3 "withdraw $80 from checking";
          Account_server.deposit accounts tid checking (-80);
          (* capture the display mid-transaction, like the paper's
             photographer *)
          snapshot := Io_server.render_text io;
          Engine.delay 50_000));
  Cluster.run cluster;

  print_endline "Figure 4-1 (reproduced): the display after the scenario";
  print_endline "  legend: plain = committed (black), -struck- = aborted,";
  print_endline "          ~tilde~ = in progress (gray), [bracketed] = read input";
  print_endline !snapshot;

  (* Verify the money is right: 35 deposited, 80 withdrawn (committed
     at the end). *)
  Cluster.run_fiber cluster ~node:0 (fun () ->
      let balance =
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.balance accounts tid checking)
      in
      Printf.printf "\nfinal checking balance: $%d (35 - 80 = -45)\n" balance);
  print_endline "bank: ok"
