(* A transactional mail system sketch — the application family the
   paper's Section 2.2 motivates ("the integrity guarantees of a mail
   system ... are also simplified").

   Architecture:
   - a weak queue holds message handles awaiting delivery (the spool);
   - a multi-key directory maps user -> mailbox slot and address ->
     user (the secondary index);
   - the integer array server stores per-mailbox message counters.

   The integrity guarantee demonstrated: accepting a message (spool
   enqueue) and recording the billing counter happen in ONE transaction,
   and delivering (spool dequeue + mailbox counter increment) in
   another, so a crash at any point neither loses nor duplicates mail —
   even though three different data servers are involved. *)

open Tabs_sim
open Tabs_core
open Tabs_servers

type system = {
  spool : Weak_queue_server.t;
  users : Directory_server.t;
  counters : Int_array_server.t;
}

let build env =
  {
    spool = Weak_queue_server.create env ~name:"spool" ~segment:2 ~capacity:64 ();
    users =
      Directory_server.create env ~name:"users" ~primary_segment:8
        ~index_segment:9 ();
    counters =
      Int_array_server.create env ~name:"counters" ~segment:1 ~cells:64 ();
  }

let accepted_cell = 0 (* total messages accepted *)

let mailbox_cell slot = 1 + slot

let () =
  let cluster = Cluster.create ~nodes:1 () in
  let node = Cluster.node cluster 0 in
  let sys = build (Node.env node) in
  let tm = Node.tm node in

  (* Register two users; mailbox slots 0 and 1 (encoded as payload). *)
  Cluster.run_fiber cluster ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Directory_server.add sys.users tid
            { primary = "spector"; secondary = "azs@cmu"; payload = "0" };
          Directory_server.add sys.users tid
            { primary = "daniels"; secondary = "dsd@cmu"; payload = "1" }));

  let lookup_slot tid address =
    match Directory_server.find_by_secondary sys.users tid ~secondary:address with
    | Some e -> int_of_string e.Directory_server.payload
    | None -> raise (Errors.Server_error "NoSuchUser")
  in

  (* Accept: spool the message and bump the accepted counter atomically.
     The "message" is its recipient slot (a real system would spool a
     handle to message text in another recoverable segment). *)
  let accept address =
    Txn_lib.execute_transaction tm (fun tid ->
        let slot = lookup_slot tid address in
        Weak_queue_server.enqueue sys.spool tid slot;
        let n = Int_array_server.get sys.counters tid accepted_cell in
        Int_array_server.set sys.counters tid accepted_cell (n + 1))
  in

  (* Deliver: move one spooled message into its mailbox, atomically. *)
  let deliver () =
    Txn_lib.execute_transaction tm (fun tid ->
        let slot = Weak_queue_server.dequeue sys.spool tid in
        let n = Int_array_server.get sys.counters tid (mailbox_cell slot) in
        Int_array_server.set sys.counters tid (mailbox_cell slot) (n + 1))
  in

  Cluster.run_fiber cluster ~node:0 (fun () ->
      accept "azs@cmu";
      accept "dsd@cmu";
      accept "azs@cmu";
      Printf.printf "accepted 3 messages\n";
      deliver ();
      Printf.printf "delivered 1 message\n");

  (* Crash while two messages are still spooled. *)
  Node.crash node;
  Printf.printf "node crashed with 2 messages in the spool\n";
  let sys' = ref None in
  ignore
    (Cluster.run_fiber cluster ~node:0 (fun () ->
         Node.restart node ~reinstall:(fun env -> sys' := Some (build env)) ()));
  let sys = Option.get !sys' in
  let tm = Node.tm node in

  (* Delivery resumes; nothing was lost or duplicated. *)
  Cluster.run_fiber cluster ~node:0 (fun () ->
      let deliver () =
        Txn_lib.execute_transaction tm (fun tid ->
            let slot = Weak_queue_server.dequeue sys.spool tid in
            let n = Int_array_server.get sys.counters tid (mailbox_cell slot) in
            Int_array_server.set sys.counters tid (mailbox_cell slot) (n + 1))
      in
      deliver ();
      deliver ();
      let accepted, m0, m1, empty =
        Txn_lib.execute_transaction tm (fun tid ->
            ( Int_array_server.get sys.counters tid accepted_cell,
              Int_array_server.get sys.counters tid (mailbox_cell 0),
              Int_array_server.get sys.counters tid (mailbox_cell 1),
              Weak_queue_server.is_queue_empty sys.spool tid ))
      in
      Printf.printf
        "after recovery: accepted=%d, spector's mailbox=%d, daniels's \
         mailbox=%d, spool empty=%b\n"
        accepted m0 m1 empty;
      if accepted = 3 && m0 = 2 && m1 = 1 && empty then
        print_endline "mail_spool: ok (no mail lost, none duplicated)"
      else begin
        print_endline "mail_spool: FAILED";
        exit 1
      end);
  ignore (Engine.now (Cluster.engine cluster))
