(* A producer/consumer pipeline over the weak queue server: the
   motivating use of a semi-queue — several consumers can dequeue
   concurrently because strict FIFO is relaxed, while failure atomicity
   guarantees no job is lost or processed twice even when workers
   abort.

   Run with:  dune exec examples/queue_pipeline.exe *)

open Tabs_sim
open Tabs_core
open Tabs_servers

let jobs = 20

let () =
  let cluster = Cluster.create ~nodes:1 () in
  let node = Cluster.node cluster 0 in
  let queue =
    Weak_queue_server.create (Node.env node) ~name:"jobs" ~segment:2
      ~capacity:64 ()
  in
  let tm = Node.tm node in
  let processed : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let flaky = Rng.create ~seed:3 in
  let done_producing = ref false in

  (* Producer: enqueue one job per transaction. *)
  Cluster.spawn cluster ~node:0 (fun () ->
      for job = 1 to jobs do
        Txn_lib.execute_transaction tm (fun tid ->
            Weak_queue_server.enqueue queue tid job);
        Engine.delay 40_000
      done;
      done_producing := true);

  (* Three flaky consumers: each dequeues a job in a transaction that
     sometimes aborts; an aborted dequeue puts the job back. *)
  for worker = 1 to 3 do
    Cluster.spawn cluster ~node:0 (fun () ->
        (* a worker retires after finding the queue empty a few times
           once production has finished *)
        let empty_after_done = ref 0 in
        while !empty_after_done < 3 do
          match
            Txn_lib.execute_transaction tm (fun tid ->
                let job = Weak_queue_server.dequeue queue tid in
                if Rng.bool flaky ~p:0.3 then failwith "worker hiccup";
                job)
          with
          | job ->
              Hashtbl.replace processed job
                (1 + Option.value (Hashtbl.find_opt processed job) ~default:0);
              Engine.delay 25_000
          | exception Failure _ -> Engine.delay 10_000 (* job went back *)
          | exception Errors.Server_error "QueueEmpty" ->
              if !done_producing then incr empty_after_done;
              Engine.delay 20_000
        done;
        ignore worker)
  done;

  Cluster.run cluster;

  let total = Hashtbl.length processed in
  let duplicates =
    Hashtbl.fold (fun _ n acc -> if n > 1 then acc + 1 else acc) processed 0
  in
  Printf.printf "jobs enqueued: %d, distinct jobs processed: %d, duplicates: %d\n"
    jobs total duplicates;
  if total = jobs && duplicates = 0 then
    print_endline "queue_pipeline: ok (no job lost, none processed twice)"
  else begin
    print_endline "queue_pipeline: FAILED";
    exit 1
  end
