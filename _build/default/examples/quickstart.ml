(* Quickstart: a one-node TABS system, one data server, and the three
   things transactions buy you — commit, abort, and crash recovery.

   Run with:  dune exec examples/quickstart.exe *)

open Tabs_core
open Tabs_servers

let () =
  (* A cluster is a set of TABS nodes over a simulated network; every
     node runs the Figure 3-1 processes (Name Server, Communication
     Manager, Recovery Manager, Transaction Manager) over a simulated
     Accent kernel. *)
  let cluster = Cluster.create ~nodes:1 () in
  let node = Cluster.node cluster 0 in

  (* A data server encapsulates objects in a recoverable segment. The
     integer array server is the paper's simplest example. *)
  let array =
    Int_array_server.create (Node.env node) ~name:"array" ~segment:1
      ~cells:1024 ()
  in
  let tm = Node.tm node in

  (* All application code runs in fibers of the simulation. *)
  Cluster.run_fiber cluster ~node:0 (fun () ->
      (* Transactions bracket operations on objects. *)
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set array tid 0 41;
          Int_array_server.set array tid 1 1);

      (* Failure atomicity: an aborted transaction leaves no trace. *)
      let t = Txn_lib.begin_transaction tm () in
      Int_array_server.set array t 0 9999;
      Txn_lib.abort_transaction tm t;

      let v0, v1 =
        Txn_lib.execute_transaction tm (fun tid ->
            (Int_array_server.get array tid 0, Int_array_server.get array tid 1))
      in
      Printf.printf "after commit+abort: cell0=%d cell1=%d (sum %d)\n" v0 v1
        (v0 + v1));

  (* Permanence: crash the node and recover from the write-ahead log. *)
  Node.crash node;
  let restored = ref None in
  let outcome =
    Cluster.run_fiber cluster ~node:0 (fun () ->
        Node.restart node ~reinstall:(fun env ->
            restored :=
              Some
                (Int_array_server.create env ~name:"array" ~segment:1
                   ~cells:1024 ())) ())
  in
  Printf.printf "crash recovery scanned %d log records, rolled back %d losers\n"
    outcome.records_scanned
    (List.length outcome.losers);
  let array = Option.get !restored in
  Cluster.run_fiber cluster ~node:0 (fun () ->
      let v =
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Int_array_server.get array tid 0)
      in
      Printf.printf "cell0 after crash and recovery: %d\n" v);
  print_endline "quickstart: ok"
