(* The Section 4.5 scenario: a replicated directory over three nodes
   using weighted voting, surviving the failure of one node.

   Every update runs inside one distributed transaction: the write
   quorum's B-tree representatives are updated on their own nodes and
   the tree-structured two-phase commit makes the change atomic across
   the machines — "committing transactions requires the global
   coordination protocols for multiple node commit".

   Run with:  dune exec examples/replicated_directory.exe *)

open Tabs_core
open Tabs_servers

let () =
  let cluster = Cluster.create ~nodes:3 () in
  (* one directory representative per node *)
  List.iter
    (fun node ->
      ignore
        (Btree_server.create (Node.env node)
           ~name:(Printf.sprintf "rep%d" (Node.id node))
           ~segment:5 ()))
    (Cluster.nodes cluster);
  let n0 = Cluster.node cluster 0 in
  let dir =
    Replicated_directory.create ~rpc:(Node.rpc n0)
      ~replicas:
        [
          { Replicated_directory.node = 0; server = "rep0"; votes = 1 };
          { Replicated_directory.node = 1; server = "rep1"; votes = 1 };
          { Replicated_directory.node = 2; server = "rep2"; votes = 1 };
        ]
      ~read_quorum:2 ~write_quorum:2
  in
  let tm = Node.tm n0 in

  Cluster.run_fiber cluster ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Replicated_directory.update dir tid ~key:"mail-host" ~value:"perq7";
          Replicated_directory.update dir tid ~key:"print-host" ~value:"perq2");
      Printf.printf "registered two directory entries across 3 nodes\n");

  (* One node fails; reads and writes keep working on a 2-vote quorum. *)
  Node.crash (Cluster.node cluster 2);
  Printf.printf "node 2 crashed\n";

  Cluster.run_fiber cluster ~node:0 (fun () ->
      let v =
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.lookup dir tid ~key:"mail-host")
      in
      Printf.printf "lookup mail-host with node 2 down: %s\n"
        (Option.value v ~default:"<missing>");
      Txn_lib.execute_transaction tm (fun tid ->
          Replicated_directory.update dir tid ~key:"mail-host" ~value:"perq9");
      Printf.printf "updated mail-host to perq9 with node 2 down\n");

  (* Node 2 comes back with a stale copy; the version numbers make the
     read quorum return the newest value anyway. *)
  ignore
    (Cluster.run_fiber cluster ~node:2 (fun () ->
         Node.restart (Cluster.node cluster 2) ~reinstall:(fun env ->
             ignore (Btree_server.create env ~name:"rep2" ~segment:5 ())) ()));
  Printf.printf "node 2 restarted (its copy of mail-host is stale)\n";

  Cluster.run_fiber cluster ~node:0 (fun () ->
      let v, version =
        Txn_lib.execute_transaction tm (fun tid ->
            ( Replicated_directory.lookup dir tid ~key:"mail-host",
              Replicated_directory.entry_version dir tid ~key:"mail-host" ))
      in
      Printf.printf "lookup mail-host after recovery: %s (version %d)\n"
        (Option.value v ~default:"<missing>")
        version);
  print_endline "replicated_directory: ok"
