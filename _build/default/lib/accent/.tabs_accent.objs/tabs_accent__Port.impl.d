lib/accent/port.ml: Cost_model Engine Queue Tabs_sim
