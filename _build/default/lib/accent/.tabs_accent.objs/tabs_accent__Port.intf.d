lib/accent/port.mli: Tabs_sim
