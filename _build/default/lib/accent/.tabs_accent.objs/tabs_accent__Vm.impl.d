lib/accent/vm.ml: Buffer Disk Engine Hashtbl List Object_id Option Page String Tabs_sim Tabs_storage Tabs_wal
