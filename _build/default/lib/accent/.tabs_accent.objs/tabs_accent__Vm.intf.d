lib/accent/vm.mli: Tabs_sim Tabs_storage Tabs_wal
