open Tabs_sim

type kind = Small | Large | Pointer

type 'a t = {
  engine : Engine.t;
  queue : 'a Queue.t;
  readers : 'a Engine.Waitq.t;
}

let create engine =
  { engine; queue = Queue.create (); readers = Engine.Waitq.create () }

let primitive = function
  | Small -> Cost_model.Small_contiguous_message
  | Large -> Cost_model.Large_contiguous_message
  | Pointer -> Cost_model.Pointer_message

let deliver t msg =
  if not (Engine.Waitq.signal t.readers ~engine:t.engine msg) then
    Queue.add msg t.queue

let send t ~kind msg =
  Engine.charge t.engine (primitive kind);
  deliver t msg

let send_free t msg = deliver t msg

let receive t =
  if Queue.is_empty t.queue then Engine.Waitq.wait t.readers
  else Queue.take t.queue

let receive_timeout t ~timeout =
  if Queue.is_empty t.queue then
    Engine.Waitq.wait_timeout t.readers ~engine:t.engine ~timeout
  else Some (Queue.take t.queue)

let pending t = Queue.length t.queue
