(** Accent-style message ports.

    A port is a protected message queue: many senders, one receiver
    (Section 2.1.1). Messages are typed; sending charges the cost of the
    appropriate Accent message class to the sending fiber. *)

(** Accent message classes with distinct costs (Section 5.1). *)
type kind =
  | Small  (** < 500 bytes, typically < 100 *)
  | Large  (** ~1100 bytes *)
  | Pointer  (** copy-on-write remapped bulk data *)

type 'a t

val create : Tabs_sim.Engine.t -> 'a t

(** [send t ~kind msg] charges one message primitive and enqueues;
    must run inside a fiber. *)
val send : 'a t -> kind:kind -> 'a -> unit

(** [send_free t msg] enqueues without cost — for deliveries whose cost
    was already charged elsewhere (e.g. by the network layer). *)
val send_free : 'a t -> 'a -> unit

(** [receive t] suspends the calling fiber until a message arrives. *)
val receive : 'a t -> 'a

(** [receive_timeout t ~timeout] waits at most [timeout] microseconds. *)
val receive_timeout : 'a t -> timeout:int -> 'a option

(** [pending t] is the queue length. *)
val pending : 'a t -> int
