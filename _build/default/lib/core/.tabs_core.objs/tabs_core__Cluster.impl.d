lib/core/cluster.ml: Engine List Network Node Tabs_net Tabs_sim
