lib/core/cluster.mli: Node Tabs_net Tabs_sim
