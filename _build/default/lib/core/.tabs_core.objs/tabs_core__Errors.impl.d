lib/core/errors.ml: Tabs_wal
