lib/core/errors.mli: Tabs_wal
