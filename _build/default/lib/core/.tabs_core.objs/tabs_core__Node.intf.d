lib/core/node.mli: Rpc Server_lib Tabs_accent Tabs_name Tabs_net Tabs_recovery Tabs_sim Tabs_storage Tabs_tm Tabs_wal
