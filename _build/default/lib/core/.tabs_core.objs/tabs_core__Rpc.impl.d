lib/core/rpc.ml: Comm_mgr Cost_model Engine Errors Hashtbl Network Object_id Printf Tabs_net Tabs_sim Tabs_wal Tid
