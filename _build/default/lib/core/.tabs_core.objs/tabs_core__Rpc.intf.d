lib/core/rpc.mli: Tabs_net Tabs_sim Tabs_wal
