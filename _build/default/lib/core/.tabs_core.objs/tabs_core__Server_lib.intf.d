lib/core/server_lib.mli: Rpc Tabs_accent Tabs_lock Tabs_name Tabs_recovery Tabs_sim Tabs_tm Tabs_wal
