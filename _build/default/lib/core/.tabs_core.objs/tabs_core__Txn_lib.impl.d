lib/core/txn_lib.ml: Errors Tabs_tm Txn_mgr
