lib/core/txn_lib.mli: Tabs_tm Tabs_wal
