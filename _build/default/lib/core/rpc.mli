(** Remote procedure calls between applications and data servers.

    The Matchmaker role (packing, unpacking, dispatching — Section 2.1.1)
    is played by OCaml closures and the {!Tabs_wal.Codec}; this module
    supplies the transport: a local call charges one Data Server Call
    primitive and runs the operation as a server coroutine; a remote
    call charges the Inter-Node Data Server Call primitive and travels
    over Communication Manager sessions, which also lets the spanning
    tree record the transaction's spread. *)

(** What a data server installs to receive calls. May suspend (locks,
    paging); each invocation behaves as its own server coroutine. *)
type dispatch = tid:Tabs_wal.Tid.t -> op:string -> arg:string -> string

(** Per-node table of data-server entry points. *)
type registry

val create_registry :
  Tabs_sim.Engine.t -> node:int -> cm:Tabs_net.Comm_mgr.t -> registry

(** [expose registry ~server dispatch] publishes a data server's
    dispatcher on its node ([AcceptRequests]). *)
val expose : registry -> server:string -> dispatch -> unit

(** [withdraw registry ~server] removes the entry point (server down). *)
val withdraw : registry -> server:string -> unit

(** [call registry ~dest ~server ~tid ~op ~arg] invokes an operation on
    a data server from within a fiber. [dest] is the server's node;
    when it equals the registry's node the call is local. Raises
    [Failure] if the server is not exposed, and [Rpc_timeout] if a
    remote server does not answer. *)
val call :
  registry ->
  dest:int ->
  server:string ->
  tid:Tabs_wal.Tid.t ->
  op:string ->
  arg:string ->
  string

exception Rpc_timeout of { dest : int; server : string; op : string }

(** Remote-call timeout (default 5 s of virtual time). *)
val set_call_timeout : registry -> int -> unit
