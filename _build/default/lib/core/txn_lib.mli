(** The TABS transaction management library (Table 3-2).

    Thin application-side veneer over the Transaction Manager:
    [BeginTransaction] (a null parent identifier creates a new top-level
    transaction), [EndTransaction] returning a commit verdict,
    [AbortTransaction], and the [TransactionIsAborted] exception
    ({!Errors.Transaction_is_aborted}). *)

(** [begin_transaction tm ?parent ()] — with [parent] creates a
    subtransaction, otherwise a new top-level transaction. *)
val begin_transaction :
  Tabs_tm.Txn_mgr.t -> ?parent:Tabs_wal.Tid.t -> unit -> Tabs_wal.Tid.t

(** [end_transaction tm tid] initiates commit; true on commit. *)
val end_transaction : Tabs_tm.Txn_mgr.t -> Tabs_wal.Tid.t -> bool

val abort_transaction : Tabs_tm.Txn_mgr.t -> Tabs_wal.Tid.t -> unit

(** [transaction_is_aborted tm tid] mirrors the library's exception
    query: true once the transaction (or an ancestor) aborted. *)
val transaction_is_aborted : Tabs_tm.Txn_mgr.t -> Tabs_wal.Tid.t -> bool

(** [execute_transaction tm f] runs [f] inside a fresh top-level
    transaction, committing on return and aborting if [f] raises (the
    exception is re-raised). Raises {!Errors.Transaction_is_aborted}
    when commitment fails. *)
val execute_transaction : Tabs_tm.Txn_mgr.t -> (Tabs_wal.Tid.t -> 'a) -> 'a

(** [with_subtransaction tm parent f] runs [f] in a subtransaction:
    committing passes its locks to [parent]; an exception aborts only
    the subtransaction subtree and is re-raised — the paper's
    "subtransactions that abort independently permit their parent to
    tolerate the failure of some operations". *)
val with_subtransaction :
  Tabs_tm.Txn_mgr.t -> Tabs_wal.Tid.t -> (Tabs_wal.Tid.t -> 'a) -> 'a
