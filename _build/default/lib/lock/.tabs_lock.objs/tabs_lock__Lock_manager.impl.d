lib/lock/lock_manager.ml: Engine Hashtbl List Mode Object_id Tabs_sim Tabs_wal Tid
