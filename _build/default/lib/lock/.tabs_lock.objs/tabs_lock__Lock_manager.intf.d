lib/lock/lock_manager.mli: Mode Tabs_sim Tabs_wal
