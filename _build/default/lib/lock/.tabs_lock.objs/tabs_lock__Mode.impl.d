lib/lock/mode.ml: Format List String
