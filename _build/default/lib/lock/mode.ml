type t = Read | Write | Typed of string

type compat = t -> t -> bool

let standard a b = match (a, b) with Read, Read -> true | _ -> false

let with_typed table a b =
  match (a, b) with
  | Read, Read -> true
  | Typed x, Typed y ->
      List.mem (x, y) table || List.mem (y, x) table
  | Read, (Write | Typed _)
  | Write, (Read | Write | Typed _)
  | Typed _, (Read | Write) ->
      false

let equal a b =
  match (a, b) with
  | Read, Read | Write, Write -> true
  | Typed x, Typed y -> String.equal x y
  | (Read | Write | Typed _), _ -> false

let pp fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"
  | Typed s -> Format.fprintf fmt "typed:%s" s
