(** Lock modes.

    TABS servers use standard shared/exclusive locking, and the lock
    manager also supports type-specific modes determined by a
    server-supplied compatibility relation (Section 2.1.3 — "type-specific
    locking requires use of a specialized compatibility relation"). *)

type t =
  | Read  (** shared *)
  | Write  (** exclusive *)
  | Typed of string
      (** a type-specific mode, named by the defining server (e.g. a weak
          queue's ["enqueue"] / ["dequeue"] modes) *)

(** A compatibility relation; must be symmetric. *)
type compat = t -> t -> bool

(** Standard read/write compatibility: only [Read]/[Read] is compatible;
    [Typed] modes conflict with everything (servers wanting them must
    supply their own relation). *)
val standard : compat

(** [with_typed table] extends {!standard}: two [Typed] modes consult
    [table] (symmetrized); a [Typed] mode vs [Read]/[Write] conflicts. *)
val with_typed : (string * string) list -> compat

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
