lib/name/name_server.ml: Comm_mgr Engine List Network String Tabs_net Tabs_sim
