lib/name/name_server.mli: Tabs_net Tabs_sim
