lib/net/comm_mgr.ml: Cost_model Engine Hashtbl List Network Queue Tabs_sim Tabs_wal Tid
