lib/net/comm_mgr.mli: Network Tabs_wal
