lib/net/network.ml: Engine Hashtbl List Rng Tabs_sim
