lib/net/network.mli: Tabs_sim
