lib/recovery/recovery_mgr.ml: Array Cost_model Disk Engine Hashtbl List Log_manager Object_id Overheads Page Printf Record String Tabs_accent Tabs_sim Tabs_storage Tabs_wal Tid Vm
