lib/recovery/recovery_mgr.mli: Tabs_accent Tabs_sim Tabs_wal
