lib/servers/account_server.ml: Bytes Codec Errors Int64 List Mode Page Rpc Server_lib String Tabs_core Tabs_lock Tabs_storage Tabs_wal
