lib/servers/account_server.mli: Tabs_core Tabs_wal
