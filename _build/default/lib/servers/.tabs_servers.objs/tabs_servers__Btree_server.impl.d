lib/servers/btree_server.ml: Array Bytes Char Codec Disk Errors Fun Int64 List Mode Page Printf Rpc Server_lib String Tabs_accent Tabs_core Tabs_lock Tabs_storage Tabs_wal
