lib/servers/btree_server.mli: Tabs_core Tabs_wal
