lib/servers/directory_server.ml: Btree_server Errors List String Tabs_core
