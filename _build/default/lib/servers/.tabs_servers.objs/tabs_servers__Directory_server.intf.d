lib/servers/directory_server.mli: Tabs_core Tabs_wal
