lib/servers/int_array_server.ml: Bytes Codec Errors Int64 Mode Page Rpc Server_lib String Tabs_core Tabs_lock Tabs_storage Tabs_wal
