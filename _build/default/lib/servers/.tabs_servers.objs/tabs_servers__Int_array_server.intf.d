lib/servers/int_array_server.mli: Tabs_core Tabs_wal
