lib/servers/io_server.ml: Buffer Bytes Char Codec Engine Errors Fun Hashtbl Int64 List Mode Page Printf Queue Server_lib String Tabs_core Tabs_lock Tabs_sim Tabs_storage Tabs_wal Tid
