lib/servers/io_server.mli: Tabs_core Tabs_wal
