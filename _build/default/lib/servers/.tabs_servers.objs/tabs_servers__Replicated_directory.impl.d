lib/servers/replicated_directory.ml: Btree_server Buffer Bytes Errors Int64 List Rpc String Tabs_core
