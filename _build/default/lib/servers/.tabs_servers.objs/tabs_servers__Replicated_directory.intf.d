lib/servers/replicated_directory.mli: Tabs_core Tabs_wal
