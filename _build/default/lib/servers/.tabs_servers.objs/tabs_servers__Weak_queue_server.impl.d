lib/servers/weak_queue_server.ml: Bytes Codec Errors Int64 Mode Page Rpc Server_lib String Tabs_core Tabs_lock Tabs_sim Tabs_storage Tabs_wal
