lib/servers/weak_queue_server.mli: Tabs_core Tabs_wal
