open Tabs_storage
open Tabs_wal
open Tabs_lock
open Tabs_core

let max_key_len = 23

let max_value_len = 31

(* Page layout. Every node is one 512-byte page.
   Meta (page 0):   root(8) free_head(8) next_unallocated(8)
   Internal (kind 1): kind(8) nkeys(8) children(15 x 8) keys(14 x 24)
   Leaf (kind 2):     kind(8) nkeys(8) next(8) keys(8 x 24) values(8 x 32)
   Keys and values are stored length-prefixed in fixed slots. *)

let key_slot = 24

let value_slot = 32

let max_internal_keys = 14

let max_leaf_keys = 8

type t = { server : Server_lib.t; pages : int }

let server t = t.server

let page_obj t page =
  Server_lib.create_object_id t.server ~offset:(page * Page.size)
    ~length:Page.size

let tree_lock_obj t =
  (* the whole-tree lock is represented by the meta page object *)
  page_obj t 0

(* Field accessors over a page image ------------------------------------ *)

let get_i b off = Int64.to_int (Bytes.get_int64_le b off)

let set_i b off v = Bytes.set_int64_le b off (Int64.of_int v)

let get_str b off slot_size =
  let len = Char.code (Bytes.get b off) in
  if len >= slot_size then failwith "btree: corrupt string slot";
  Bytes.sub_string b (off + 1) len

let set_str b off slot_size s =
  assert (String.length s < slot_size);
  Bytes.fill b off slot_size '\000';
  Bytes.set b off (Char.chr (String.length s));
  Bytes.blit_string s 0 b (off + 1) (String.length s)

(* meta *)
let meta_root b = get_i b 0

let set_meta_root b v = set_i b 0 v

let meta_next_unalloc b = get_i b 16

let set_meta_next_unalloc b v = set_i b 16 v

(* common node header *)
let node_kind b = get_i b 0

let node_nkeys b = get_i b 8

let set_node_kind b v = set_i b 0 v

let set_node_nkeys b v = set_i b 8 v

(* internal node *)
let int_child b i = get_i b (16 + (8 * i))

let set_int_child b i v = set_i b (16 + (8 * i)) v

let int_key b i = get_str b (136 + (key_slot * i)) key_slot

let set_int_key b i k = set_str b (136 + (key_slot * i)) key_slot k

(* leaf node *)
let leaf_next b = get_i b 16

let set_leaf_next b v = set_i b 16 v

let leaf_key b i = get_str b (24 + (key_slot * i)) key_slot

let set_leaf_key b i k = set_str b (24 + (key_slot * i)) key_slot k

let leaf_value b i = get_str b (216 + (value_slot * i)) value_slot

let set_leaf_value b i v = set_str b (216 + (value_slot * i)) value_slot v

(* Page access ------------------------------------------------------------ *)

let read_page t page =
  Bytes.of_string (Server_lib.read_object t.server (page_obj t page))

(* Modify one page under value logging: buffer old image, apply [f],
   log old/new, unpin. *)
let modify_page t tid page f =
  let obj = page_obj t page in
  Server_lib.pin_and_buffer t.server tid obj;
  let image = Bytes.of_string (Server_lib.read_object t.server obj) in
  f image;
  Server_lib.write_object t.server obj (Bytes.to_string image);
  Server_lib.log_and_unpin t.server tid obj

(* Recoverable storage allocator: pop the free list or bump the
   high-water mark; all changes are value-logged so an aborting
   transaction returns its pages. *)
let alloc_page t tid =
  let meta = read_page t 0 in
  let free_head = get_i meta 8 in
  if free_head <> 0 then begin
    let free_node = read_page t free_head in
    let next_free = get_i free_node 16 in
    modify_page t tid 0 (fun m -> set_i m 8 next_free);
    free_head
  end
  else begin
    let page = meta_next_unalloc meta in
    if page >= t.pages then raise (Errors.Server_error "BtreeSegmentFull");
    modify_page t tid 0 (fun m -> set_meta_next_unalloc m (page + 1));
    page
  end

let free_page t tid page =
  let meta = read_page t 0 in
  let old_head = get_i meta 8 in
  modify_page t tid page (fun b ->
      set_node_kind b 0;
      set_i b 16 old_head);
  modify_page t tid 0 (fun m -> set_i m 8 page)

(* Search helpers ---------------------------------------------------------- *)

let check_sizes ~key ~value =
  if String.length key > max_key_len then
    raise (Errors.Server_error "KeyTooLong");
  if String.length key = 0 then raise (Errors.Server_error "EmptyKey");
  match value with
  | Some v when String.length v > max_value_len ->
      raise (Errors.Server_error "ValueTooLong")
  | _ -> ()

(* index of first leaf key >= key, or nkeys *)
let leaf_position b key =
  let n = node_nkeys b in
  let rec go i = if i >= n || String.compare (leaf_key b i) key >= 0 then i else go (i + 1) in
  go 0

(* child index to follow in an internal node *)
let internal_child_index b key =
  let n = node_nkeys b in
  let rec go i =
    if i >= n || String.compare key (int_key b i) < 0 then i else go (i + 1)
  in
  go 0

let rec find_leaf t page key =
  let b = read_page t page in
  if node_kind b = 2 then (page, b)
  else find_leaf t (int_child b (internal_child_index b key)) key

(* Lookup ------------------------------------------------------------------- *)

let root_of t = meta_root (read_page t 0)

let lookup t tid ~key =
  Server_lib.enter_operation t.server tid;
  check_sizes ~key ~value:None;
  Server_lib.lock_object t.server tid (tree_lock_obj t) Mode.Read;
  let root = root_of t in
  if root = 0 then None
  else begin
    let _, leaf = find_leaf t root key in
    let pos = leaf_position leaf key in
    if pos < node_nkeys leaf && String.equal (leaf_key leaf pos) key then
      Some (leaf_value leaf pos)
    else None
  end

(* Insert -------------------------------------------------------------------- *)

type split = No_split | Split of string * int (* separator, new right page *)

let shift_leaf_right b ~from ~n =
  for i = n - 1 downto from do
    set_leaf_key b (i + 1) (leaf_key b i);
    set_leaf_value b (i + 1) (leaf_value b i)
  done

let shift_internal_right b ~from ~n =
  for i = n - 1 downto from do
    set_int_key b (i + 1) (int_key b i);
    set_int_child b (i + 2) (int_child b (i + 1))
  done

let rec insert_rec t tid page key value =
  let b = read_page t page in
  if node_kind b = 2 then insert_leaf t tid page key value
  else begin
    let idx = internal_child_index b key in
    match insert_rec t tid (int_child b idx) key value with
    | No_split -> No_split
    | Split (sep, right) ->
        let n = node_nkeys b in
        if n < max_internal_keys then begin
          modify_page t tid page (fun b ->
              shift_internal_right b ~from:idx ~n;
              set_int_key b idx sep;
              set_int_child b (idx + 1) right;
              set_node_nkeys b (n + 1));
          No_split
        end
        else begin
          (* split this internal node: temporarily assemble the n+1
             keys / n+2 children, then distribute around the median *)
          let keys = Array.init n (int_key b) in
          let children = Array.init (n + 1) (int_child b) in
          let all_keys = Array.make (n + 1) "" in
          let all_children = Array.make (n + 2) 0 in
          Array.blit keys 0 all_keys 0 idx;
          all_keys.(idx) <- sep;
          Array.blit keys idx all_keys (idx + 1) (n - idx);
          Array.blit children 0 all_children 0 (idx + 1);
          all_children.(idx + 1) <- right;
          Array.blit children (idx + 1) all_children (idx + 2) (n - idx);
          let mid = (n + 1) / 2 in
          let sep_up = all_keys.(mid) in
          let right_page = alloc_page t tid in
          modify_page t tid right_page (fun rb ->
              Bytes.fill rb 0 Page.size '\000';
              set_node_kind rb 1;
              let rn = n - mid in
              set_node_nkeys rb rn;
              for i = 0 to rn - 1 do
                set_int_key rb i all_keys.(mid + 1 + i)
              done;
              for i = 0 to rn do
                set_int_child rb i all_children.(mid + 1 + i)
              done);
          modify_page t tid page (fun lb ->
              Bytes.fill lb 16 (Page.size - 16) '\000';
              set_node_kind lb 1;
              set_node_nkeys lb mid;
              for i = 0 to mid - 1 do
                set_int_key lb i all_keys.(i)
              done;
              for i = 0 to mid do
                set_int_child lb i all_children.(i)
              done);
          Split (sep_up, right_page)
        end
  end

and insert_leaf t tid page key value =
  let b = read_page t page in
  let n = node_nkeys b in
  let pos = leaf_position b key in
  if pos < n && String.equal (leaf_key b pos) key then begin
    modify_page t tid page (fun b -> set_leaf_value b pos value);
    No_split
  end
  else if n < max_leaf_keys then begin
    modify_page t tid page (fun b ->
        shift_leaf_right b ~from:pos ~n;
        set_leaf_key b pos key;
        set_leaf_value b pos value;
        set_node_nkeys b (n + 1));
    No_split
  end
  else begin
    (* split the leaf around the midpoint, then insert into a side *)
    let mid = (n + 1) / 2 in
    let right_page = alloc_page t tid in
    let old_next = leaf_next b in
    let right_first = leaf_key b mid in
    modify_page t tid right_page (fun rb ->
        Bytes.fill rb 0 Page.size '\000';
        set_node_kind rb 2;
        set_node_nkeys rb (n - mid);
        set_leaf_next rb old_next;
        for i = 0 to n - mid - 1 do
          set_leaf_key rb i (leaf_key b (mid + i));
          set_leaf_value rb i (leaf_value b (mid + i))
        done);
    modify_page t tid page (fun lb ->
        set_node_nkeys lb mid;
        set_leaf_next lb right_page;
        (* clear the moved slots for hygiene *)
        for i = mid to n - 1 do
          set_leaf_key lb i "";
          set_leaf_value lb i ""
        done);
    (* insert into the proper half *)
    let target = if String.compare key right_first < 0 then page else right_page in
    (match insert_leaf t tid target key value with
    | No_split -> ()
    | Split _ -> assert false (* halves have room by construction *));
    Split (right_first, right_page)
  end

let insert t tid ~key ~value =
  Server_lib.enter_operation t.server tid;
  check_sizes ~key ~value:(Some value);
  Server_lib.lock_object t.server tid (tree_lock_obj t) Mode.Write;
  let root = root_of t in
  if root = 0 then begin
    let leaf = alloc_page t tid in
    modify_page t tid leaf (fun b ->
        Bytes.fill b 0 Page.size '\000';
        set_node_kind b 2;
        set_node_nkeys b 1;
        set_leaf_key b 0 key;
        set_leaf_value b 0 value);
    modify_page t tid 0 (fun m -> set_meta_root m leaf)
  end
  else
    match insert_rec t tid root key value with
    | No_split -> ()
    | Split (sep, right) ->
        let new_root = alloc_page t tid in
        modify_page t tid new_root (fun b ->
            Bytes.fill b 0 Page.size '\000';
            set_node_kind b 1;
            set_node_nkeys b 1;
            set_int_key b 0 sep;
            set_int_child b 0 root;
            set_int_child b 1 right);
        modify_page t tid 0 (fun m -> set_meta_root m new_root)

(* Delete --------------------------------------------------------------------- *)

let delete t tid ~key =
  Server_lib.enter_operation t.server tid;
  check_sizes ~key ~value:None;
  Server_lib.lock_object t.server tid (tree_lock_obj t) Mode.Write;
  let root = root_of t in
  if root = 0 then false
  else begin
    let page, leaf = find_leaf t root key in
    let n = node_nkeys leaf in
    let pos = leaf_position leaf key in
    if pos < n && String.equal (leaf_key leaf pos) key then begin
      modify_page t tid page (fun b ->
          for i = pos to n - 2 do
            set_leaf_key b i (leaf_key b (i + 1));
            set_leaf_value b i (leaf_value b (i + 1))
          done;
          set_leaf_key b (n - 1) "";
          set_leaf_value b (n - 1) "";
          set_node_nkeys b (n - 1));
      (* a now-empty root leaf returns to the allocator *)
      if n = 1 && page = root then begin
        modify_page t tid 0 (fun m -> set_meta_root m 0);
        free_page t tid page
      end;
      true
    end
    else false
  end

(* Scan ----------------------------------------------------------------------- *)

let rec leftmost_leaf t page =
  let b = read_page t page in
  if node_kind b = 2 then page else leftmost_leaf t (int_child b 0)

let entries t tid =
  Server_lib.enter_operation t.server tid;
  Server_lib.lock_object t.server tid (tree_lock_obj t) Mode.Read;
  let root = root_of t in
  if root = 0 then []
  else begin
    let rec walk page acc =
      if page = 0 then List.rev acc
      else begin
        let b = read_page t page in
        let acc =
          List.fold_left
            (fun acc i -> (leaf_key b i, leaf_value b i) :: acc)
            acc
            (List.init (node_nkeys b) Fun.id)
        in
        walk (leaf_next b) acc
      end
    in
    walk (leftmost_leaf t root) []
  end

let size t tid = List.length (entries t tid)

(* Invariants -------------------------------------------------------------------- *)

let check_invariants t tid =
  Server_lib.enter_operation t.server tid;
  Server_lib.lock_object t.server tid (tree_lock_obj t) Mode.Read;
  let root = root_of t in
  if root <> 0 then begin
    let rec depth_of page =
      let b = read_page t page in
      match node_kind b with
      | 2 -> 1
      | 1 ->
          let n = node_nkeys b in
          if n < 1 then failwith "btree: underfull internal node";
          let depths =
            List.init (n + 1) (fun i -> depth_of (int_child b i))
          in
          List.iter
            (fun d ->
              if d <> List.hd depths then failwith "btree: uneven depth")
            depths;
          (* keys sorted *)
          for i = 0 to n - 2 do
            if String.compare (int_key b i) (int_key b (i + 1)) >= 0 then
              failwith "btree: internal keys unsorted"
          done;
          1 + List.hd depths
      | k -> failwith (Printf.sprintf "btree: bad node kind %d" k)
    in
    ignore (depth_of root);
    let es = entries t tid in
    let rec sorted = function
      | a :: (b :: _ as rest) ->
          if String.compare (fst a) (fst b) >= 0 then
            failwith "btree: leaf chain unsorted";
          sorted rest
      | _ -> ()
    in
    sorted es
  end

(* RPC plumbing --------------------------------------------------------------------- *)

let encode_kv key value =
  let w = Codec.Writer.create () in
  Codec.Writer.string w key;
  Codec.Writer.string w value;
  Codec.Writer.contents w

let encode_k key =
  let w = Codec.Writer.create () in
  Codec.Writer.string w key;
  Codec.Writer.contents w

let dispatch t ~tid ~op ~arg =
  let r = Codec.Reader.of_string arg in
  match op with
  | "insert" ->
      let key = Codec.Reader.string r in
      let value = Codec.Reader.string r in
      insert t tid ~key ~value;
      ""
  | "lookup" -> (
      let key = Codec.Reader.string r in
      match lookup t tid ~key with
      | Some v ->
          let w = Codec.Writer.create () in
          Codec.Writer.option w Codec.Writer.string (Some v);
          Codec.Writer.contents w
      | None ->
          let w = Codec.Writer.create () in
          Codec.Writer.option w Codec.Writer.string None;
          Codec.Writer.contents w)
  | "delete" ->
      let key = Codec.Reader.string r in
      let w = Codec.Writer.create () in
      Codec.Writer.bool w (delete t tid ~key);
      Codec.Writer.contents w
  | other -> raise (Errors.Server_error ("btree: unknown op " ^ other))

let create env ~name ~segment ?(pages = 512) () =
  let server = Server_lib.create env ~name ~segment ~pages () in
  let t = { server; pages } in
  (* First-time initialization: the high-water mark starts after the
     meta page. This runs at InitServer time, outside any fiber or
     transaction, so it goes straight to the disk image (a fresh
     segment is all zeroes; a recovered one already carries state). *)
  let disk = Tabs_accent.Vm.disk env.Server_lib.vm in
  let meta_pid = { Disk.segment; page = 0 } in
  let meta = Disk.read_nocharge disk meta_pid in
  if get_i meta 16 = 0 then begin
    set_meta_next_unalloc meta 1;
    Disk.write_nocharge disk meta_pid meta ~seqno:0
  end;
  Server_lib.accept_requests server (dispatch t);
  Server_lib.register_name server ~name ~object_id:"btree";
  t

let call_insert rpc ~dest ~server tid ~key ~value =
  ignore (Rpc.call rpc ~dest ~server ~tid ~op:"insert" ~arg:(encode_kv key value))

let call_lookup rpc ~dest ~server tid ~key =
  let reply = Rpc.call rpc ~dest ~server ~tid ~op:"lookup" ~arg:(encode_k key) in
  let r = Codec.Reader.of_string reply in
  Codec.Reader.option r Codec.Reader.string

let call_delete rpc ~dest ~server tid ~key =
  let reply = Rpc.call rpc ~dest ~server ~tid ~op:"delete" ~arg:(encode_k key) in
  Codec.Reader.bool (Codec.Reader.of_string reply)
