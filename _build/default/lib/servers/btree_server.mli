(** The B-tree server (Section 4.4).

    Maintains collections of directory entries in a B-tree inside a
    recoverable segment, with a recoverable storage allocator for tree
    nodes: if a transaction that allocated pages aborts, the allocator
    state rolls back with it (value logging of the meta and node
    pages).

    Keys are strings of at most {!max_key_len} bytes and values at most
    {!max_value_len}; each node occupies exactly one 512-byte page, so
    every page modification is one value-logging record. Synchronization
    is a single tree lock, read for lookups and scans, write for
    mutations (a deliberate simplification of the original server's page
    locking; the original authors also reported that retrofitting
    locking onto the B-tree was the hard part). Deletion removes leaf
    entries without rebalancing, as many production B-trees do.

    This server backs the directory representatives of the replicated
    directory object (Section 4.5). *)

type t

val max_key_len : int

val max_value_len : int

val create :
  Tabs_core.Server_lib.env ->
  name:string ->
  segment:int ->
  ?pages:int ->
  unit ->
  t

val server : t -> Tabs_core.Server_lib.t

(** [insert t tid ~key ~value] adds or overwrites the entry. Raises
    [Tabs_core.Errors.Server_error] on oversized keys/values or when the
    segment is full. *)
val insert : t -> Tabs_wal.Tid.t -> key:string -> value:string -> unit

(** [lookup t tid ~key] finds the entry's value. *)
val lookup : t -> Tabs_wal.Tid.t -> key:string -> string option

(** [delete t tid ~key] removes the entry; false if absent. *)
val delete : t -> Tabs_wal.Tid.t -> key:string -> bool

(** [entries t tid] lists all entries in key order (one leaf-chain
    scan under a read lock). *)
val entries : t -> Tabs_wal.Tid.t -> (string * string) list

(** [size t tid] is the number of entries. *)
val size : t -> Tabs_wal.Tid.t -> int

(** Structural invariant check for tests: sorted keys, consistent
    depth, fanout within bounds. Raises [Failure] on violation. *)
val check_invariants : t -> Tabs_wal.Tid.t -> unit

(** Remote stubs. *)
val call_insert :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  key:string -> value:string -> unit

val call_lookup :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  key:string -> string option

val call_delete :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  key:string -> bool
