open Tabs_core

type t = { primary_tree : Btree_server.t; index_tree : Btree_server.t }

type entry = { primary : string; secondary : string; payload : string }

(* primary-tree value: secondary key and payload, NUL-separated; the
   B-tree bounds total value size, so payload + secondary must fit its
   31-byte slot *)
let encode_record ~secondary ~payload =
  if String.contains secondary '\000' || String.contains payload '\000' then
    raise (Errors.Server_error "NulByteInField");
  let v = secondary ^ "\000" ^ payload in
  if String.length v > Btree_server.max_value_len then
    raise (Errors.Server_error "RecordTooLarge");
  v

let decode_record v =
  match String.index_opt v '\000' with
  | None -> raise (Errors.Server_error "CorruptRecord")
  | Some i ->
      ( String.sub v 0 i,
        String.sub v (i + 1) (String.length v - i - 1) )

let create env ~name ~primary_segment ~index_segment () =
  let primary_tree =
    Btree_server.create env ~name:(name ^ ".primary") ~segment:primary_segment ()
  in
  let index_tree =
    Btree_server.create env ~name:(name ^ ".index") ~segment:index_segment ()
  in
  { primary_tree; index_tree }

let find t tid ~primary =
  match Btree_server.lookup t.primary_tree tid ~key:primary with
  | None -> None
  | Some v ->
      let secondary, payload = decode_record v in
      Some { primary; secondary; payload }

let find_by_secondary t tid ~secondary =
  match Btree_server.lookup t.index_tree tid ~key:secondary with
  | None -> None
  | Some primary -> find t tid ~primary

let add t tid entry =
  let encoded =
    encode_record ~secondary:entry.secondary ~payload:entry.payload
  in
  if Btree_server.lookup t.primary_tree tid ~key:entry.primary <> None then
    raise (Errors.Server_error "DuplicateKey");
  if Btree_server.lookup t.index_tree tid ~key:entry.secondary <> None then
    raise (Errors.Server_error "DuplicateKey");
  (* both trees change inside the caller's transaction: the index can
     never disagree with the primary data *)
  Btree_server.insert t.primary_tree tid ~key:entry.primary ~value:encoded;
  Btree_server.insert t.index_tree tid ~key:entry.secondary ~value:entry.primary

let modify t tid ~primary ~payload =
  match find t tid ~primary with
  | None -> raise (Errors.Server_error "NotFound")
  | Some old ->
      Btree_server.insert t.primary_tree tid ~key:primary
        ~value:(encode_record ~secondary:old.secondary ~payload)

let remove t tid ~primary =
  match find t tid ~primary with
  | None -> false
  | Some old ->
      ignore (Btree_server.delete t.primary_tree tid ~key:primary);
      ignore (Btree_server.delete t.index_tree tid ~key:old.secondary);
      true

let entries t tid =
  List.map
    (fun (primary, v) ->
      let secondary, payload = decode_record v in
      { primary; secondary; payload })
    (Btree_server.entries t.primary_tree tid)

let check_consistency t tid =
  let primaries = entries t tid in
  let index = Btree_server.entries t.index_tree tid in
  if List.length primaries <> List.length index then
    failwith "directory: index size differs from primary tree";
  List.iter
    (fun e ->
      match Btree_server.lookup t.index_tree tid ~key:e.secondary with
      | Some p when String.equal p e.primary -> ()
      | Some _ -> failwith "directory: index points at wrong primary"
      | None -> failwith "directory: entry missing from index")
    primaries;
  List.iter
    (fun (secondary, primary) ->
      match find t tid ~primary with
      | Some e when String.equal e.secondary secondary -> ()
      | Some _ | None -> failwith "directory: dangling index record")
    index
