(** A multi-key directory server (Section 4.4).

    "The B-tree server maintains arbitrary collections of directory
    entries ... Indices on non-primary keys are implemented as separate
    B-trees, each of which points to the primary key B-tree's leaves."

    This server composes two {!Btree_server} instances inside one data
    server process: a primary tree mapping primary key → record, and a
    secondary-index tree mapping secondary key → primary key. Both are
    updated inside the caller's transaction, so the index can never
    disagree with the primary data across aborts or crashes — the
    invariant-maintenance argument of Section 2.2, demonstrated on the
    server's own data structures.

    A directory entry is (primary key, secondary key, payload); lookups
    are by either key. Secondary keys are unique in this implementation
    (a directory of machines by name with an index by address, say). *)

type t

type entry = { primary : string; secondary : string; payload : string }

val create :
  Tabs_core.Server_lib.env ->
  name:string ->
  primary_segment:int ->
  index_segment:int ->
  unit ->
  t

(** [add t tid entry] inserts; raises
    [Tabs_core.Errors.Server_error "DuplicateKey"] if either key is
    already bound. *)
val add : t -> Tabs_wal.Tid.t -> entry -> unit

(** [modify t tid ~primary ~payload] replaces the payload. Raises
    [Server_error "NotFound"] if absent. *)
val modify : t -> Tabs_wal.Tid.t -> primary:string -> payload:string -> unit

(** [remove t tid ~primary] deletes the entry and its index record;
    false if absent. *)
val remove : t -> Tabs_wal.Tid.t -> primary:string -> bool

(** [find t tid ~primary] — lookup by primary key. *)
val find : t -> Tabs_wal.Tid.t -> primary:string -> entry option

(** [find_by_secondary t tid ~secondary] — lookup through the index. *)
val find_by_secondary : t -> Tabs_wal.Tid.t -> secondary:string -> entry option

(** [entries t tid] — all entries in primary-key order. *)
val entries : t -> Tabs_wal.Tid.t -> entry list

(** [check_consistency t tid] verifies that the secondary index and the
    primary tree agree exactly; raises [Failure] otherwise. *)
val check_consistency : t -> Tabs_wal.Tid.t -> unit
