open Tabs_storage
open Tabs_wal
open Tabs_lock
open Tabs_core

let cell_size = 8

let cells_per_page = Page.size / cell_size

type t = { server : Server_lib.t; n_cells : int }

let server t = t.server

let cells t = t.n_cells

let cell_obj t i =
  (* one cells_per_page run per page: cell i lives on page
     i / cells_per_page at slot i mod cells_per_page *)
  let page = i / cells_per_page and slot = i mod cells_per_page in
  Server_lib.create_object_id t.server
    ~offset:((page * Page.size) + (slot * cell_size))
    ~length:cell_size

let check_range t i =
  if i < 0 || i >= t.n_cells then
    raise (Errors.Server_error "IndexOutOfRange")

let decode_cell s = Int64.to_int (String.get_int64_le s 0)

let encode_cell v =
  let b = Bytes.create cell_size in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Bytes.to_string b

let get t tid ?(access = `Random) i =
  Server_lib.enter_operation t.server tid;
  check_range t i;
  let obj = cell_obj t i in
  Server_lib.lock_object t.server tid obj Mode.Read;
  decode_cell (Server_lib.read_object t.server ~access obj)

let set t tid ?(access = `Random) i value =
  Server_lib.enter_operation t.server tid;
  check_range t i;
  let obj = cell_obj t i in
  Server_lib.lock_object t.server tid obj Mode.Write;
  Server_lib.pin_and_buffer t.server tid ~access obj;
  Server_lib.write_object t.server obj (encode_cell value);
  Server_lib.log_and_unpin t.server tid obj

(* Matchmaker-style stubs ------------------------------------------------ *)

let encode_access w access =
  Codec.Writer.bool w (match access with `Sequential -> true | `Random -> false)

let decode_access r = if Codec.Reader.bool r then `Sequential else `Random

let encode_get ?(access = `Random) i =
  let w = Codec.Writer.create () in
  encode_access w access;
  Codec.Writer.int w i;
  Codec.Writer.contents w

let encode_set ?(access = `Random) i v =
  let w = Codec.Writer.create () in
  encode_access w access;
  Codec.Writer.int w i;
  Codec.Writer.int w v;
  Codec.Writer.contents w

let decode_int_reply s =
  let r = Codec.Reader.of_string s in
  Codec.Reader.int r

let encode_int_reply v =
  let w = Codec.Writer.create () in
  Codec.Writer.int w v;
  Codec.Writer.contents w

let dispatch t ~tid ~op ~arg =
  let r = Codec.Reader.of_string arg in
  match op with
  | "get" ->
      let access = decode_access r in
      let i = Codec.Reader.int r in
      encode_int_reply (get t tid ~access i)
  | "set" ->
      let access = decode_access r in
      let i = Codec.Reader.int r in
      let v = Codec.Reader.int r in
      set t tid ~access i v;
      ""
  | other -> raise (Errors.Server_error ("integer array: unknown op " ^ other))

let create env ~name ~segment ~cells () =
  let pages = ((cells + cells_per_page - 1) / cells_per_page) + 1 in
  let server = Server_lib.create env ~name ~segment ~pages () in
  let t = { server; n_cells = cells } in
  Server_lib.accept_requests server (dispatch t);
  Server_lib.register_name server ~name ~object_id:"array";
  t

let call_get rpc ~dest ~server tid ?access i =
  decode_int_reply
    (Rpc.call rpc ~dest ~server ~tid ~op:"get" ~arg:(encode_get ?access i))

let call_set rpc ~dest ~server tid ?access i v =
  ignore
    (Rpc.call rpc ~dest ~server ~tid ~op:"set" ~arg:(encode_set ?access i v))
