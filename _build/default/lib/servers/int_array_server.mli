(** The integer array server (Section 4.1).

    Maintains an array of word-sized integers in a recoverable segment
    and provides [GetCell]/[SetCell], using only the two-phase
    read/write locking and value logging found in many
    transaction-based systems — the paper's simplest data server
    (140 lines of Pascal; the combined Get/Set bodies were 50).

    The array is laid out one {!cells_per_page} run per page so that
    benchmark transactions can touch "an element from successive pages"
    (the sequential-paging workloads of Section 5). *)

type t

(** 64 eight-byte cells fit a 512-byte page. *)
val cells_per_page : int

(** [create env ~name ~segment ~cells ()] builds and exposes the server
    under RPC name [name]. *)
val create :
  Tabs_core.Server_lib.env -> name:string -> segment:int -> cells:int -> unit -> t

val server : t -> Tabs_core.Server_lib.t

val cells : t -> int

(** {2 Direct (same-address-space) operations}

    These run the real code path — locking, pinning, logging — and must
    run inside a fiber. *)

(** [get t tid i] reads cell [i] under a read lock. [access] hints the
    demand-paging pattern (default [`Random]). Raises
    {!Tabs_core.Errors.Server_error} when [i] is out of range
    ([IndexOutOfRange]) and {!Tabs_core.Errors.Lock_timeout} on
    deadlock time-out. *)
val get :
  t -> Tabs_wal.Tid.t -> ?access:[ `Random | `Sequential ] -> int -> int

(** [set t tid i v] writes cell [i] under a write lock with value
    logging. *)
val set :
  t -> Tabs_wal.Tid.t -> ?access:[ `Random | `Sequential ] -> int -> int -> unit

(** {2 RPC argument codecs (the Matchmaker role)} *)

val encode_get : ?access:[ `Random | `Sequential ] -> int -> string

val encode_set : ?access:[ `Random | `Sequential ] -> int -> int -> string

val decode_int_reply : string -> int

(** [call_get rpc ~dest ~server tid i] — client stub usable from any
    node. *)
val call_get :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  ?access:[ `Random | `Sequential ] -> int -> int

val call_set :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  ?access:[ `Random | `Sequential ] -> int -> int -> unit
