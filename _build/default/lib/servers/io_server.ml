open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_lock
open Tabs_core

let areas = 8

let state_slots_per_area = 64

let content_pages_per_area = 2

let content_bytes = content_pages_per_area * Page.size

type area = int

type style = In_progress | Committed | Aborted

(* Segment layout:
   page 0:            area table, 32 bytes per area:
                      in_use(8) write_off(8) n_lines(8) next_slot(8)
   pages 1..8:        one state-slot page per area (64 x 8-byte slots)
   pages 9..:         2 content pages per area, line records appended:
                      [slot:1][kind:1][len:1][text] *)

type t = {
  server : Server_lib.t;
  engine : Engine.t;
  owners : (Tid.t * area, int) Hashtbl.t; (* volatile: client txn -> slot *)
  input : (area, string Queue.t) Hashtbl.t; (* volatile keyboard buffers *)
  input_waiters : (area, string Engine.Waitq.t) Hashtbl.t;
  partial : (area, (int * Buffer.t)) Hashtbl.t;
      (* volatile: unterminated output line per area (slot, text) *)
}

let server t = t.server

let area_check a = if a < 0 || a >= areas then raise (Errors.Server_error "BadArea")

let table_obj t a field =
  Server_lib.create_object_id t.server ~offset:((a * 32) + (field * 8)) ~length:8

let slot_obj t a slot =
  Server_lib.create_object_id t.server
    ~offset:(((1 + a) * Page.size) + (slot * 8))
    ~length:8

let content_page a = 9 + (content_pages_per_area * a)

let content_obj t a ~off ~len =
  Server_lib.create_object_id t.server
    ~offset:((content_page a * Page.size) + off)
    ~length:len

let read_int t obj = Int64.to_int (String.get_int64_le (Server_lib.read_object t.server obj) 0)

let encode_int v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Bytes.to_string b

(* value-logged single-int write under a given transaction *)
let put_int t tid obj v =
  Server_lib.lock_object t.server tid obj Mode.Write;
  Server_lib.pin_and_buffer t.server tid obj;
  Server_lib.write_object t.server obj (encode_int v);
  Server_lib.log_and_unpin t.server tid obj

let state_aborted = 0

let state_committed = 1

(* Area lifecycle -------------------------------------------------------- *)

let obtain_io_area t =
  Server_lib.execute_transaction t.server (fun tid ->
      (* take the lock before reading the in_use flag: two concurrent
         obtains must not both see the same area as free *)
      let rec find a =
        if a >= areas then raise (Errors.Server_error "NoFreeArea")
        else begin
          Server_lib.lock_object t.server tid (table_obj t a 0) Mode.Write;
          if read_int t (table_obj t a 0) = 0 then a else find (a + 1)
        end
      in
      let a = find 0 in
      put_int t tid (table_obj t a 0) 1;
      put_int t tid (table_obj t a 1) 0;
      put_int t tid (table_obj t a 2) 0;
      put_int t tid (table_obj t a 3) 0;
      a)

let destroy_io_area t a =
  area_check a;
  Server_lib.execute_transaction t.server (fun tid ->
      put_int t tid (table_obj t a 0) 0;
      put_int t tid (table_obj t a 1) 0;
      put_int t tid (table_obj t a 2) 0)

(* The state-object trick ------------------------------------------------- *)

(* First touch of [a] by client [tid]: allocate a state slot, write
   "aborted" into it under a server-owned transaction, then have the
   client transaction lock it and set "committed" — putting the
   aborted/committed old/new pair on the log under the client's
   identity. *)
let owner_slot t tid a =
  let top = Tid.top_level tid in
  match Hashtbl.find_opt t.owners (top, a) with
  | Some slot -> slot
  | None ->
      let slot =
        Server_lib.execute_transaction t.server (fun server_tid ->
            let counter = table_obj t a 3 in
            let slot = read_int t counter in
            if slot >= state_slots_per_area then
              raise (Errors.Server_error "AreaStateExhausted");
            put_int t server_tid counter (slot + 1);
            put_int t server_tid (slot_obj t a slot) state_aborted;
            slot)
      in
      put_int t tid (slot_obj t a slot) state_committed;
      Hashtbl.add t.owners (top, a) slot;
      slot

(* Append one line record under a server-owned transaction so the text
   is permanent whatever the client transaction's fate. *)
let append_line t a ~slot ~kind text =
  let text =
    if String.length text > 120 then String.sub text 0 120 else text
  in
  Server_lib.execute_transaction t.server (fun server_tid ->
      let off_obj = table_obj t a 1 in
      let lines_obj = table_obj t a 2 in
      let off = read_int t off_obj in
      let record_len = 3 + String.length text in
      if off + record_len > content_bytes then
        raise (Errors.Server_error "AreaFull");
      let record = Bytes.create record_len in
      Bytes.set record 0 (Char.chr slot);
      Bytes.set record 1 (Char.chr kind);
      Bytes.set record 2 (Char.chr (String.length text));
      Bytes.blit_string text 0 record 3 (String.length text);
      (* the record may straddle the two content pages; write it in
         page-sized object chunks so value logging stays one page *)
      let rec write_chunks pos remaining =
        if remaining > 0 then begin
          let page_room = Page.size - ((off + pos) mod Page.size) in
          let len = min remaining page_room in
          let obj = content_obj t a ~off:(off + pos) ~len in
          Server_lib.lock_object t.server server_tid obj Mode.Write;
          Server_lib.pin_and_buffer t.server server_tid obj;
          Server_lib.write_object t.server obj
            (Bytes.sub_string record pos len);
          Server_lib.log_and_unpin t.server server_tid obj;
          write_chunks (pos + len) (remaining - len)
        end
      in
      write_chunks 0 record_len;
      put_int t server_tid off_obj (off + record_len);
      put_int t server_tid lines_obj (read_int t lines_obj + 1))

let flush_partial t a =
  match Hashtbl.find_opt t.partial a with
  | None -> None
  | Some (slot, buffer) ->
      Hashtbl.remove t.partial a;
      Some (slot, Buffer.contents buffer)

let writeln_to_area t tid a text =
  Server_lib.enter_operation t.server tid;
  area_check a;
  let slot = owner_slot t tid a in
  let text =
    match flush_partial t a with
    | Some (_, prefix) -> prefix ^ text
    | None -> text
  in
  append_line t a ~slot ~kind:0 text

(* Unterminated output accumulates in a volatile buffer until a writeln
   or an input echo completes the line. (The paper's WriteToArea; like
   a real typescript, a partial line is lost in a crash.) *)
let write_to_area t tid a text =
  Server_lib.enter_operation t.server tid;
  area_check a;
  let slot = owner_slot t tid a in
  match Hashtbl.find_opt t.partial a with
  | Some (_, buffer) -> Buffer.add_string buffer text
  | None ->
      let buffer = Buffer.create 32 in
      Buffer.add_string buffer text;
      Hashtbl.add t.partial a (slot, buffer)

(* Input ------------------------------------------------------------------- *)

let input_queue t a =
  match Hashtbl.find_opt t.input a with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.input a q;
      q

let input_waitq t a =
  match Hashtbl.find_opt t.input_waiters a with
  | Some w -> w
  | None ->
      let w = Engine.Waitq.create () in
      Hashtbl.add t.input_waiters a w;
      w

let provide_input t a text =
  area_check a;
  let w = input_waitq t a in
  if not (Engine.Waitq.signal w ~engine:t.engine text) then
    Queue.add text (input_queue t a)

let read_line_from_area t tid a =
  Server_lib.enter_operation t.server tid;
  area_check a;
  let slot = owner_slot t tid a in
  let q = input_queue t a in
  let line =
    if Queue.is_empty q then Engine.Waitq.wait (input_waitq t a)
    else Queue.take q
  in
  (* a pending partial output line is completed first *)
  (match flush_partial t a with
  | Some (pslot, text) -> append_line t a ~slot:pslot ~kind:0 text
  | None -> ());
  (* echo, bracketed, under the client's state slot *)
  append_line t a ~slot ~kind:1 line;
  line

let read_char_from_area t tid a =
  Server_lib.enter_operation t.server tid;
  area_check a;
  let slot = owner_slot t tid a in
  let q = input_queue t a in
  let chunk =
    if Queue.is_empty q then Engine.Waitq.wait (input_waitq t a)
    else Queue.take q
  in
  if String.length chunk = 0 then raise (Errors.Server_error "EmptyInput");
  let c = chunk.[0] in
  let rest = String.sub chunk 1 (String.length chunk - 1) in
  (* push back what the application did not consume *)
  if String.length rest > 0 then begin
    let keep = Queue.copy q in
    Queue.clear q;
    Queue.add rest q;
    Queue.transfer keep q
  end;
  (match flush_partial t a with
  | Some (pslot, text) -> append_line t a ~slot:pslot ~kind:0 text
  | None -> ());
  append_line t a ~slot ~kind:1 (String.make 1 c);
  c

(* Rendering ----------------------------------------------------------------- *)

let classify t a slot =
  let obj = slot_obj t a slot in
  if Server_lib.is_object_locked t.server obj then In_progress
  else if read_int t obj = state_committed then Committed
  else Aborted

let area_lines t a =
  let off_limit = read_int t (table_obj t a 1) in
  let content =
    Server_lib.read_object t.server
      (content_obj t a ~off:0 ~len:content_bytes)
  in
  let rec walk off acc =
    if off + 3 > off_limit then List.rev acc
    else begin
      let slot = Char.code content.[off] in
      let kind = Char.code content.[off + 1] in
      let len = Char.code content.[off + 2] in
      let text = String.sub content (off + 3) len in
      let style = classify t a slot in
      let text = if kind = 1 then "[" ^ text ^ "]" else text in
      walk (off + 3 + len) ((style, text) :: acc)
    end
  in
  walk 0 []

let render t =
  List.filter_map
    (fun a ->
      if read_int t (table_obj t a 0) = 0 then None
      else Some (a, area_lines t a))
    (List.init areas Fun.id)

let render_text t =
  let buffer = Buffer.create 256 in
  List.iter
    (fun (a, lines) ->
      Buffer.add_string buffer (Printf.sprintf "+--- area %d %s\n" a (String.make 48 '-'));
      List.iter
        (fun (style, text) ->
          let decorated =
            match style with
            | In_progress -> "~" ^ text ^ "~"
            | Committed -> text
            | Aborted -> "-" ^ text ^ "-"
          in
          Buffer.add_string buffer ("| " ^ decorated ^ "\n"))
        lines)
    (render t);
  Buffer.add_string buffer ("+" ^ String.make 60 '-');
  Buffer.contents buffer

(* Dispatch -------------------------------------------------------------------- *)

let dispatch t ~tid ~op ~arg =
  let r = Codec.Reader.of_string arg in
  match op with
  | "writeln" ->
      let a = Codec.Reader.int r in
      let text = Codec.Reader.string r in
      writeln_to_area t tid a text;
      ""
  | "write" ->
      let a = Codec.Reader.int r in
      let text = Codec.Reader.string r in
      write_to_area t tid a text;
      ""
  | "read_line" ->
      let a = Codec.Reader.int r in
      read_line_from_area t tid a
  | "read_char" ->
      let a = Codec.Reader.int r in
      String.make 1 (read_char_from_area t tid a)
  | other -> raise (Errors.Server_error ("io: unknown op " ^ other))

let create env ~name ~segment () =
  let pages = 9 + (content_pages_per_area * areas) in
  let server = Server_lib.create env ~name ~segment ~pages () in
  let t =
    {
      server;
      engine = env.Server_lib.engine;
      owners = Hashtbl.create 16;
      input = Hashtbl.create 8;
      input_waiters = Hashtbl.create 8;
      partial = Hashtbl.create 8;
    }
  in
  Server_lib.accept_requests server (dispatch t);
  Server_lib.register_name server ~name ~object_id:"display";
  t
