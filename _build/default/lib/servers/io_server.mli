(** The input/output server (Section 4.3).

    Extends the transaction domain to the display: output is permanent
    but {e not} failure atomic — every write appears immediately, in a
    style that indicates the state of the transaction that produced it,
    and the screen is restored after a node failure.

    Output display styles (the paper's grays and strike-throughs,
    rendered here as text decorations):
    - {e in progress} — tentative, shown ~like this~ (gray);
    - {e committed} — shown plain (redrawn in black);
    - {e aborted} — shown -like this- (lines drawn through it, rather
      than disappearing, which would be disconcerting).
    Input read by the application is additionally shown [in brackets]
    (the paper's rectangles around read characters).

    The mechanism is the paper's state-object trick: when a client
    transaction first touches an area, the server runs its own
    top-level transaction ([ExecuteTransaction]) writing [aborted] into
    a state object, then has the {e client} transaction lock the state
    object and overwrite it with [committed] — so the log carries an
    aborted/committed old/new pair on the client's behalf, and the
    display code can classify each line with [IsObjectLocked] plus the
    state object's current contents, even after a crash. Output text
    itself is appended under server-owned transactions so it survives
    client aborts. *)

type t

type area = int

(** How a line should be displayed. *)
type style = In_progress | Committed | Aborted

val areas : int  (** number of display areas on the screen *)

val create :
  Tabs_core.Server_lib.env -> name:string -> segment:int -> unit -> t

val server : t -> Tabs_core.Server_lib.t

(** [obtain_io_area t] allocates a free display area. Raises
    [Tabs_core.Errors.Server_error "NoFreeArea"] if all are taken. Must
    run inside a fiber (performs its own transaction). *)
val obtain_io_area : t -> area

(** [destroy_io_area t a] frees the area and clears its contents. *)
val destroy_io_area : t -> area -> unit

(** [writeln_to_area t tid a text] appends one output line on behalf of
    the client transaction [tid]. The text shows immediately (tentative
    style) and is classified by [tid]'s eventual fate. *)
val writeln_to_area : t -> Tabs_wal.Tid.t -> area -> string -> unit

(** [write_to_area t tid a text] appends text to the area's current
    (unterminated) line; the next [writeln_to_area] or input echo
    completes it. *)
val write_to_area : t -> Tabs_wal.Tid.t -> area -> string -> unit

(** [provide_input t a text] — the keyboard: queue a line of user input
    for the area. *)
val provide_input : t -> area -> string -> unit

(** [read_line_from_area t tid a] blocks until input is available,
    echoes it (bracketed) under [tid]'s state object, and returns it. *)
val read_line_from_area : t -> Tabs_wal.Tid.t -> area -> string

(** [read_char_from_area t tid a] consumes a single character of the
    area's input (blocking if none is queued) and echoes it. *)
val read_char_from_area : t -> Tabs_wal.Tid.t -> area -> char

(** [render t] — the current screen: per area, each line with its
    display style, computed from lock state and state-object contents
    exactly as the paper describes. Safe to call after a crash and
    restart (the screen-restoration behaviour). *)
val render : t -> (area * (style * string) list) list

(** [render_text t] — the screen as ASCII art in the spirit of
    Figure 4-1: ~tentative~, plain committed, -struck aborted-,
    [bracketed input]. *)
val render_text : t -> string
