open Tabs_core

type replica = { node : int; server : string; votes : int }

type t = {
  rpc : Rpc.registry;
  replicas : replica list;
  read_quorum : int;
  write_quorum : int;
}

let create ~rpc ~replicas ~read_quorum ~write_quorum =
  let total = List.fold_left (fun acc r -> acc + r.votes) 0 replicas in
  if read_quorum + write_quorum <= total then
    invalid_arg "Replicated_directory: r + w must exceed the vote total";
  if 2 * write_quorum <= total then
    invalid_arg "Replicated_directory: w must be a majority";
  if read_quorum <= 0 || write_quorum <= 0 then
    invalid_arg "Replicated_directory: quorums must be positive";
  { rpc; replicas; read_quorum; write_quorum }

(* Representative value encoding: version (8 bytes), flags (1 byte:
   1 = tombstone), payload (the rest). *)
let encode_version ~version ~deleted payload =
  let b = Buffer.create (9 + String.length payload) in
  let v = Bytes.create 8 in
  Bytes.set_int64_le v 0 (Int64.of_int version);
  Buffer.add_bytes b v;
  Buffer.add_char b (if deleted then '\001' else '\000');
  Buffer.add_string b payload;
  Buffer.contents b

let decode_version s =
  let version = Int64.to_int (String.get_int64_le s 0) in
  let deleted = s.[8] = '\001' in
  let payload = String.sub s 9 (String.length s - 9) in
  (version, deleted, payload)

(* Poll representatives in order, collecting responses until the quorum
   is met. Unresponsive or crashed representatives are skipped — that
   is the availability the voting scheme buys. *)
let gather_reads t tid ~key =
  let rec go replicas votes acc =
    if votes >= t.read_quorum then acc
    else
      match replicas with
      | [] -> raise (Errors.Server_error "NoQuorum")
      | r :: rest -> (
          match
            Btree_server.call_lookup t.rpc ~dest:r.node ~server:r.server tid
              ~key
          with
          | reply -> go rest (votes + r.votes) ((r, reply) :: acc)
          | exception Rpc.Rpc_timeout _ -> go rest votes acc)
  in
  go t.replicas 0 []

let winning_entry reads =
  List.fold_left
    (fun best (_, reply) ->
      match reply with
      | None -> best
      | Some encoded ->
          let version, deleted, payload = decode_version encoded in
          (match best with
          | Some (v, _, _) when v >= version -> best
          | Some _ | None -> Some (version, deleted, payload)))
    None reads

let lookup t tid ~key =
  match winning_entry (gather_reads t tid ~key) with
  | Some (_, false, payload) -> Some payload
  | Some (_, true, _) | None -> None

let entry_version t tid ~key =
  match winning_entry (gather_reads t tid ~key) with
  | Some (v, _, _) -> v
  | None -> 0

let write_quorum_put t tid ~key encoded =
  let rec go replicas votes =
    if votes < t.write_quorum then
      match replicas with
      | [] -> raise (Errors.Server_error "NoQuorum")
      | r :: rest -> (
          match
            Btree_server.call_insert t.rpc ~dest:r.node ~server:r.server tid
              ~key ~value:encoded
          with
          | () -> go rest (votes + r.votes)
          | exception Rpc.Rpc_timeout _ -> go rest votes)
  in
  go t.replicas 0

let update t tid ~key ~value =
  let version = 1 + entry_version t tid ~key in
  write_quorum_put t tid ~key (encode_version ~version ~deleted:false value)

let remove t tid ~key =
  let version = 1 + entry_version t tid ~key in
  write_quorum_put t tid ~key (encode_version ~version ~deleted:true "")
