(** The replicated directory object (Section 4.5).

    Provides an abstraction identical to a conventional directory while
    storing its data in multiple {e directory representative} servers on
    different nodes, coordinated by a variation of Gifford's weighted
    voting (the Daniels-Spector replicated-directory algorithm). Each
    representative stores entries in a B-tree server together with a
    version number; the client-side coordination module — this module,
    linked with the client program as in the paper — gathers a read
    quorum to find the latest version and writes a new version to a
    write quorum inside the caller's transaction, so distributed
    commitment (two-phase commit across the representatives' nodes)
    keeps the representatives mutually consistent.

    With votes r + w > total, any read quorum intersects any write
    quorum; with 3 single-vote representatives and r = w = 2, one node
    may be down and the directory stays available — the configuration
    the paper tested. *)

type replica = { node : int; server : string; votes : int }

type t

(** [create ~rpc ~replicas ~read_quorum ~write_quorum] — quorums are in
    votes. Raises [Invalid_argument] unless r + w exceeds the vote
    total and w is a majority. *)
val create :
  rpc:Tabs_core.Rpc.registry ->
  replicas:replica list ->
  read_quorum:int ->
  write_quorum:int ->
  t

(** [update t tid ~key ~value] writes the entry at a fresh version to a
    write quorum. Raises [Tabs_core.Errors.Server_error
    "NoQuorum"] when too few representatives respond. *)
val update : t -> Tabs_wal.Tid.t -> key:string -> value:string -> unit

(** [lookup t tid ~key] reads from a read quorum and returns the
    highest-version value. *)
val lookup : t -> Tabs_wal.Tid.t -> key:string -> string option

(** [remove t tid ~key] writes a deletion tombstone at a fresh
    version. *)
val remove : t -> Tabs_wal.Tid.t -> key:string -> unit

(** [entry_version t tid ~key] — the winning version number, 0 when the
    key was never written (tests and repair tooling). *)
val entry_version : t -> Tabs_wal.Tid.t -> key:string -> int
