open Tabs_storage
open Tabs_wal
open Tabs_lock
open Tabs_core

let element_size = 16 (* 8 bytes InUse flag + 8 bytes contents *)

let elements_per_page = Page.size / element_size

type tail_state =
  | Tail_invalid
  | Tail_computing of unit Tabs_sim.Engine.Waitq.t
  | Tail_valid

type t = {
  server : Server_lib.t;
  cap : int;
  mutable tail : int; (* volatile: absolute index of the next free slot *)
  mutable tail_state : tail_state;
      (* invalid until the tail has been recomputed from the InUse bits —
         lazily, on the first operation after server (re)start, once
         crash recovery has restored the segment. The recomputation
         page-faults (and so suspends): concurrent first operations must
         wait on the latch or they could clobber a reserved tail. *)
}

let server t = t.server

let capacity t = t.cap

let head_obj t = Server_lib.create_object_id t.server ~offset:0 ~length:8

let element_obj t index =
  let slot = index mod t.cap in
  let page = 1 + (slot / elements_per_page) in
  let within = slot mod elements_per_page in
  Server_lib.create_object_id t.server
    ~offset:((page * Page.size) + (within * element_size))
    ~length:element_size

let decode_int64 s off = Int64.to_int (String.get_int64_le s off)

let decode_element s = (decode_int64 s 0 <> 0, decode_int64 s 8)

let encode_element ~in_use value =
  let b = Bytes.create element_size in
  Bytes.set_int64_le b 0 (if in_use then 1L else 0L);
  Bytes.set_int64_le b 8 (Int64.of_int value);
  Bytes.to_string b

let encode_head v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Bytes.to_string b

let read_head t = decode_int64 (Server_lib.read_object t.server (head_obj t)) 0

let read_element t index =
  decode_element (Server_lib.read_object t.server (element_obj t index))

let head = read_head

let tail t = t.tail

(* After a crash the tail is recomputed by examining the head pointer
   and the InUse bits: the queue extends to the farthest in-use slot
   within one capacity of the head. Runs lazily on the first operation,
   by which time crash recovery has restored the segment. *)
let rec ensure_tail t =
  match t.tail_state with
  | Tail_valid -> ()
  | Tail_computing latch ->
      Tabs_sim.Engine.Waitq.wait latch;
      ensure_tail t
  | Tail_invalid ->
      let latch = Tabs_sim.Engine.Waitq.create () in
      t.tail_state <- Tail_computing latch;
      let h = read_head t in
      let extent = ref 0 in
      for k = 1 to t.cap do
        let in_use, _ = read_element t (h + k - 1) in
        if in_use then extent := k
      done;
      t.tail <- h + !extent;
      t.tail_state <- Tail_valid;
      let env = Server_lib.env t.server in
      ignore
        (Tabs_sim.Engine.Waitq.signal_all latch ~engine:env.Server_lib.engine ())

(* Garbage collection, run as a side effect of Enqueue: move the head
   pointer past elements that are unlocked with InUse false. The head is
   failure atomic, so the move is value-logged under the enqueuer's
   transaction (a conservative choice: aborting the enqueue also
   un-moves the head). *)
let collect_garbage t tid =
  let rec scan idx =
    if idx >= t.tail then idx
    else if Server_lib.is_object_locked t.server (element_obj t idx) then idx
    else
      let in_use, _ = read_element t idx in
      if in_use then idx else scan (idx + 1)
  in
  let h = read_head t in
  let h' = scan h in
  if h' > h && Server_lib.conditionally_lock_object t.server tid (head_obj t) Mode.Write
  then begin
    Server_lib.pin_and_buffer t.server tid (head_obj t);
    Server_lib.write_object t.server (head_obj t) (encode_head h');
    Server_lib.log_and_unpin t.server tid (head_obj t)
  end

let enqueue t tid value =
  Server_lib.enter_operation t.server tid;
  ensure_tail t;
  collect_garbage t tid;
  let h = read_head t in
  if t.tail - h >= t.cap then raise (Errors.Server_error "QueueFull");
  (* Reserve the slot before any suspension point: the volatile tail is
     protected only by coroutine monitor semantics. *)
  let index = t.tail in
  t.tail <- index + 1;
  let obj = element_obj t index in
  Server_lib.lock_object t.server tid obj Mode.Write;
  Server_lib.pin_and_buffer t.server tid obj;
  Server_lib.write_object t.server obj (encode_element ~in_use:true value);
  Server_lib.log_and_unpin t.server tid obj

(* Scan from the head for an element that is unlocked and InUse; lock
   it, clear InUse, return its contents. *)
let dequeue t tid =
  Server_lib.enter_operation t.server tid;
  ensure_tail t;
  let rec scan idx =
    if idx >= t.tail then raise (Errors.Server_error "QueueEmpty")
    else begin
      let obj = element_obj t idx in
      if Server_lib.is_object_locked t.server obj then scan (idx + 1)
      else
        let in_use, _ = read_element t idx in
        if not in_use then scan (idx + 1)
        else if not (Server_lib.conditionally_lock_object t.server tid obj Mode.Write)
        then scan (idx + 1)
        else
          (* re-read under the lock; the element may have changed while
             the unprotected read was in flight *)
          let in_use, value = read_element t idx in
          if not in_use then scan (idx + 1)
          else begin
            Server_lib.pin_and_buffer t.server tid obj;
            Server_lib.write_object t.server obj
              (encode_element ~in_use:false value);
            Server_lib.log_and_unpin t.server tid obj;
            value
          end
    end
  in
  scan (read_head t)

let is_queue_empty t tid =
  Server_lib.enter_operation t.server tid;
  ensure_tail t;
  let rec scan idx =
    if idx >= t.tail then true
    else if Server_lib.is_object_locked t.server (element_obj t idx) then
      scan (idx + 1)
    else
      let in_use, _ = read_element t idx in
      if in_use then false else scan (idx + 1)
  in
  scan (read_head t)

(* RPC plumbing --------------------------------------------------------- *)

let encode_int v =
  let w = Codec.Writer.create () in
  Codec.Writer.int w v;
  Codec.Writer.contents w

let decode_int s = Codec.Reader.int (Codec.Reader.of_string s)

let encode_bool v =
  let w = Codec.Writer.create () in
  Codec.Writer.bool w v;
  Codec.Writer.contents w

let dispatch t ~tid ~op ~arg =
  match op with
  | "enqueue" ->
      enqueue t tid (decode_int arg);
      ""
  | "dequeue" -> encode_int (dequeue t tid)
  | "is_empty" -> encode_bool (is_queue_empty t tid)
  | other -> raise (Errors.Server_error ("weak queue: unknown op " ^ other))

let create env ~name ~segment ~capacity () =
  let pages = 1 + ((capacity + elements_per_page - 1) / elements_per_page) in
  let server = Server_lib.create env ~name ~segment ~pages () in
  let t = { server; cap = capacity; tail = 0; tail_state = Tail_invalid } in
  Server_lib.accept_requests server (dispatch t);
  Server_lib.register_name server ~name ~object_id:"queue";
  t

let call_enqueue rpc ~dest ~server tid v =
  ignore (Rpc.call rpc ~dest ~server ~tid ~op:"enqueue" ~arg:(encode_int v))

let call_dequeue rpc ~dest ~server tid =
  decode_int (Rpc.call rpc ~dest ~server ~tid ~op:"dequeue" ~arg:"")
