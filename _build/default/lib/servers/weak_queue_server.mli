(** The weak queue server (Section 4.2).

    A weak queue (semi-queue) does not guarantee FIFO dequeue order;
    relaxing strictness buys concurrency while keeping failure
    atomicity — the queue is {e permanent and failure atomic but not
    serializable}. The implementation follows the paper:

    - an array of individually lockable elements, each holding its
      contents and an [InUse] bit that abort restores along with the
      value;
    - a permanent, failure-atomic head pointer;
    - a volatile tail pointer, recomputed after crashes from the head
      pointer and the [InUse] bits, protected only by the monitor
      semantics of server coroutines;
    - [Dequeue] scans from the head with [IsObjectLocked] and the
      [InUse] test (skipping elements other transactions still
      manipulate — the operations whose need prompted the addition of
      [ConditionallyLockObject] and [IsObjectLocked] to the server
      library);
    - garbage collection of the head pointer as a side effect of
      [Enqueue]. *)

type t

(** [create env ~name ~segment ~capacity ()] builds the server. After a
    crash, re-creating it over the surviving segment recomputes the
    volatile tail pointer. *)
val create :
  Tabs_core.Server_lib.env ->
  name:string ->
  segment:int ->
  capacity:int ->
  unit ->
  t

val server : t -> Tabs_core.Server_lib.t

val capacity : t -> int

(** Volatile tail and permanent head, exposed for tests of the
    recomputation logic. [head] must run inside a fiber; [tail] is only
    meaningful after the first operation of the server's current
    incarnation (the recomputation from InUse bits is lazy). *)
val head : t -> int

val tail : t -> int

(** [enqueue t tid v] adds [v]; raises
    [Tabs_core.Errors.Server_error "QueueFull"] when no slot is free. *)
val enqueue : t -> Tabs_wal.Tid.t -> int -> unit

(** [dequeue t tid] removes and returns some enqueued element — not
    necessarily the oldest; raises
    [Tabs_core.Errors.Server_error "QueueEmpty"] when nothing is
    dequeuable. *)
val dequeue : t -> Tabs_wal.Tid.t -> int

(** [is_queue_empty t tid] — true when no element is dequeuable right
    now. *)
val is_queue_empty : t -> Tabs_wal.Tid.t -> bool

(** Client stubs for remote use. *)
val call_enqueue :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  int -> unit

val call_dequeue :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t -> int
