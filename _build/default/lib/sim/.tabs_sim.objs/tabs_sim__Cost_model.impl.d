lib/sim/cost_model.ml: Array List
