lib/sim/engine.ml: Cost_model Effect Hashtbl Heap List Metrics
