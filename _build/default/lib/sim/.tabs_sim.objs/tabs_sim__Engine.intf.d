lib/sim/engine.mli: Cost_model Metrics
