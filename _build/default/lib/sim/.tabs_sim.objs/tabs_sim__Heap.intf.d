lib/sim/heap.mli:
