lib/sim/metrics.ml: Array Cost_model List
