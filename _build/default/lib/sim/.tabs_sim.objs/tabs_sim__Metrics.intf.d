lib/sim/metrics.mli: Cost_model
