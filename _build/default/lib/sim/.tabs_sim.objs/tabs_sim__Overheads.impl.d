lib/sim/overheads.ml:
