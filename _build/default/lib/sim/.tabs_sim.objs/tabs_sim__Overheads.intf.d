lib/sim/overheads.mli:
