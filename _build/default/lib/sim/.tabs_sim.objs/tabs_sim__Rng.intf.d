lib/sim/rng.mli:
