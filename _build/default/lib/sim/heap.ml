(* Binary min-heap over (key, seq, value); [seq] makes equal keys FIFO so
   the engine is deterministic. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = Array.make 64 None; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.size <- 0

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let get t i =
  match t.data.(i) with
  | Some e -> e
  | None -> assert false

let grow t =
  let data = Array.make (2 * Array.length t.data) None in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get t i) (get t parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt (get t l) (get t !smallest) then smallest := l;
  if r < t.size && entry_lt (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~key value =
  if t.size = Array.length t.data then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.data.(t.size) <- Some { key; seq; value };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then raise Not_found;
  let min = get t 0 in
  t.size <- t.size - 1;
  t.data.(0) <- t.data.(t.size);
  t.data.(t.size) <- None;
  if t.size > 0 then sift_down t 0;
  (min.key, min.value)

let peek_min_key t = if t.size = 0 then None else Some (get t 0).key
