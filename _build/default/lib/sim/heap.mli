(** Imperative binary min-heap keyed by integer priority.

    Used as the event queue of the simulation engine; ties are broken by
    insertion order so that the simulation is deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

(** [push t ~key v] inserts [v] with priority [key]. *)
val push : 'a t -> key:int -> 'a -> unit

(** [pop_min t] removes and returns the minimum-key element, earliest
    inserted first among equal keys. Raises [Not_found] when empty. *)
val pop_min : 'a t -> int * 'a

(** [peek_min_key t] is the smallest key, if any. *)
val peek_min_key : 'a t -> int option

(** [clear t] removes every element. *)
val clear : 'a t -> unit
