(* Weights are stored in units of 1/1000 of an execution so that the
   paper's fractional primitive counts (halves, and the measured 0.86
   page I/Os per transaction) can be represented exactly enough. *)

type t = int array

let scale = 1000

let size = List.length Cost_model.all

let idx p =
  let rec find i = function
    | [] -> assert false
    | q :: rest -> if q = p then i else find (i + 1) rest
  in
  find 0 Cost_model.all

let create () = Array.make size 0

let record_weighted t p ~num ~den =
  if den <= 0 then invalid_arg "Metrics.record_weighted: den <= 0";
  t.(idx p) <- t.(idx p) + (scale * num / den)

let record_many t p n = record_weighted t p ~num:n ~den:1

let record t p = record_many t p 1

let count t p = t.(idx p) / scale

let weight t p = float_of_int t.(idx p) /. float_of_int scale

let reset t = Array.fill t 0 size 0

let snapshot t = Array.copy t

let diff ~later ~earlier = Array.init size (fun i -> later.(i) - earlier.(i))

let weighted_cost t model =
  List.fold_left
    (fun acc p ->
      acc + (t.(idx p) * Cost_model.cost model p / scale))
    0 Cost_model.all

let to_alist t =
  List.filter_map
    (fun p ->
      let n = count t p in
      if t.(idx p) = 0 then None else Some (p, n))
    Cost_model.all
