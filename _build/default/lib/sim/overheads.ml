let tm_local_readonly = 36_000

let rm_local_readonly = 5_000

let application_txn = 3_000

let data_server_txn = 4_000

let data_server_log_format = 5_000

let rm_spool_write = 10_000

let rm_commit_write = 8_000

let tm_commit_write = 24_000

let unattributed_local = 9_000

let cm_per_remote_call = 30_000
