(** CPU-time overheads of the TABS system processes.

    These constants are model {e inputs}, calibrated from the accounting
    prose of Section 5.2 — not outputs of the simulation. They feed the
    "Measured TABS Process Time" column of Table 5-4. All values in
    microseconds. *)

(** Transaction Manager work to begin + commit a local read-only
    transaction (36 ms). *)
val tm_local_readonly : int

(** Recovery Manager work for a local read-only transaction (5 ms). *)
val rm_local_readonly : int

(** Application-side cost to initiate and commit a transaction (3 ms). *)
val application_txn : int

(** Data-server-side cost to join and commit a transaction (4 ms). *)
val data_server_txn : int

(** Extra data-server time to format and send log data on a write
    (5 ms). *)
val data_server_log_format : int

(** Extra Recovery Manager time to spool log data on a write (10 ms). *)
val rm_spool_write : int

(** Extra Recovery Manager time for the update-commit protocol (8 ms). *)
val rm_commit_write : int

(** Extra Transaction Manager time for the update-commit protocol
    (24 ms). *)
val tm_commit_write : int

(** Unattributed residue of the local read-only benchmark (9 ms); the
    paper's analysis "does not account for the remaining 9 msec". We
    charge it to the application side so measured elapsed times line up
    the way Table 5-4's do. *)
val unattributed_local : int

(** Communication Manager work per remote data server call, per node
    (derived from the two-node read benchmark's process-time
    residue). *)
val cm_per_remote_call : int
