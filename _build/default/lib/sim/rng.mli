(** Deterministic pseudo-random number generator (splitmix64).

    The simulator never consults global randomness: every stochastic
    choice (fault injection, workload shuffling) draws from an explicitly
    seeded generator so that runs are reproducible. *)

type t

val create : seed:int -> t

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] on
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t ~p] is true with probability [p]. *)
val bool : t -> p:float -> bool

(** [split t] derives an independent generator. *)
val split : t -> t
