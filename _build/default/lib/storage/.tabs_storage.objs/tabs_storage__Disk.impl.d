lib/storage/disk.ml: Array Cost_model Engine Hashtbl Page Tabs_sim
