lib/storage/disk.mli: Page Tabs_sim
