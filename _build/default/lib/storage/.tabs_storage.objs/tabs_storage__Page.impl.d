lib/storage/page.ml: Bytes Int64 String
