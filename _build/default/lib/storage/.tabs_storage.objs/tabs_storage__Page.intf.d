lib/storage/page.mli:
