lib/storage/stable.ml: Array String
