lib/storage/stable.mli:
