let size = 512

type t = bytes

let zero () = Bytes.make size '\000'

let copy = Bytes.copy

let blit_string s t ~off =
  if off < 0 || off + String.length s > size then
    invalid_arg "Page.blit_string: out of page bounds";
  Bytes.blit_string s 0 t off (String.length s)

let sub t ~off ~len =
  if off < 0 || off + len > size then invalid_arg "Page.sub: out of page bounds";
  Bytes.sub_string t off len

let get_int t ~off = Int64.to_int (Bytes.get_int64_le t off)

let set_int t ~off v = Bytes.set_int64_le t off (Int64.of_int v)

let equal = Bytes.equal
