(** Fixed-size pages, the unit of disk transfer and of value logging.

    Accent pages are 512 bytes (Section 5.1); a value log record holds at
    most one page of an object's representation (Section 2.1.3). *)

(** Bytes per page. *)
val size : int

type t = bytes

(** A fresh zeroed page. *)
val zero : unit -> t

val copy : t -> t

(** [blit_string s t ~off] writes [s] into page [t] at byte offset
    [off]. Raises [Invalid_argument] if the write would overflow the
    page. *)
val blit_string : string -> t -> off:int -> unit

(** [sub t ~off ~len] reads [len] bytes at [off] as a string. *)
val sub : t -> off:int -> len:int -> string

(** [get_int t ~off] / [set_int t ~off v] read and write a 63-bit OCaml
    integer stored in 8 bytes little-endian at byte offset [off]. *)
val get_int : t -> off:int -> int

val set_int : t -> off:int -> int -> unit

val equal : t -> t -> bool
