lib/tm/txn_mgr.ml: Comm_mgr Cost_model Engine Hashtbl List Log_manager Metrics Network Option Overheads Record Recovery_mgr Tabs_net Tabs_recovery Tabs_sim Tabs_wal Tid
