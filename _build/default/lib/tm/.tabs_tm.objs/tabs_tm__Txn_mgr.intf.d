lib/tm/txn_mgr.mli: Tabs_net Tabs_recovery Tabs_sim Tabs_wal
