lib/wal/codec.mli:
