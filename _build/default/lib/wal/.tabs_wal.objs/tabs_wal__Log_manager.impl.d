lib/wal/log_manager.ml: Cost_model Engine Hashtbl List Page Record Stable String Tabs_sim Tabs_storage Tid
