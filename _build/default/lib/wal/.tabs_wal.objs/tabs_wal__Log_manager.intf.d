lib/wal/log_manager.mli: Object_id Record Tabs_sim Tabs_storage Tid
