lib/wal/object_id.ml: Disk Format Hashtbl List Page Tabs_storage
