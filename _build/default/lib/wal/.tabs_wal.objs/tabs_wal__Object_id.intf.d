lib/wal/object_id.mli: Format Tabs_storage
