lib/wal/record.ml: Codec Disk Format List Object_id Printf String Tabs_storage Tid
