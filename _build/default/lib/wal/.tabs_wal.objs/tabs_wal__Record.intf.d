lib/wal/record.mli: Format Object_id Tabs_storage Tid
