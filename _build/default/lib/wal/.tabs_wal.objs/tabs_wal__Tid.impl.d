lib/wal/tid.ml: Format Hashtbl List Stdlib
