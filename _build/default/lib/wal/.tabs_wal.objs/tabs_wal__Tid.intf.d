lib/wal/tid.mli: Format
