module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64

  let int t v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    Buffer.add_bytes t b

  let string t s =
    int t (String.length s);
    Buffer.add_string t s

  let bool t v = Buffer.add_char t (if v then '\001' else '\000')

  let list t f xs =
    int t (List.length xs);
    List.iter (f t) xs

  let option t f = function
    | None -> bool t false
    | Some v ->
        bool t true;
        f t v

  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Malformed of string

  let of_string data = { data; pos = 0 }

  let need t n =
    if t.pos + n > String.length t.data then
      raise (Malformed "truncated record")

  let int t =
    need t 8;
    let v = Int64.to_int (String.get_int64_le t.data t.pos) in
    t.pos <- t.pos + 8;
    v

  let string t =
    let len = int t in
    if len < 0 then raise (Malformed "negative length");
    need t len;
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let bool t =
    need t 1;
    let c = t.data.[t.pos] in
    t.pos <- t.pos + 1;
    match c with
    | '\000' -> false
    | '\001' -> true
    | _ -> raise (Malformed "bad boolean")

  let list t f =
    let n = int t in
    if n < 0 then raise (Malformed "negative list length");
    List.init n (fun _ -> f t)

  let option t f = if bool t then Some (f t) else None

  let at_end t = t.pos = String.length t.data
end
