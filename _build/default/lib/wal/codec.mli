(** Minimal binary codec for log records.

    Hand-rolled rather than [Marshal] so that record encodings are stable,
    inspectable, and covered by round-trip property tests. *)

module Writer : sig
  type t

  val create : unit -> t

  val int : t -> int -> unit

  val string : t -> string -> unit

  val bool : t -> bool -> unit

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  val contents : t -> string
end

module Reader : sig
  type t

  exception Malformed of string

  val of_string : string -> t

  val int : t -> int

  val string : t -> string

  val bool : t -> bool

  val list : t -> (t -> 'a) -> 'a list

  val option : t -> (t -> 'a) -> 'a option

  (** [at_end t] holds when every byte has been consumed. *)
  val at_end : t -> bool
end
