open Tabs_storage

type t = { segment : Disk.segment_id; offset : int; length : int }

let make ~segment ~offset ~length =
  if offset < 0 || length < 0 then invalid_arg "Object_id.make";
  { segment; offset; length }

let pages t =
  if t.length = 0 then []
  else begin
    let first = t.offset / Page.size in
    let last = (t.offset + t.length - 1) / Page.size in
    List.init (last - first + 1) (fun i ->
        { Disk.segment = t.segment; page = first + i })
  end

let fits_one_page t = List.length (pages t) <= 1

let equal a b = a.segment = b.segment && a.offset = b.offset && a.length = b.length

let hash = Hashtbl.hash

let pp fmt t =
  Format.fprintf fmt "obj(seg=%d,off=%d,len=%d)" t.segment t.offset t.length
