(** Logical object identifiers: disk addresses of recoverable data.

    The server library's [CreateObjectID] maps a virtual address and
    length to a disk address inside the server's recoverable segment
    (Section 3.1.1); the log manager works in these terms. An object is a
    byte range of a segment; value logging requires it to fit within one
    page (Section 2.1.3). *)

type t = { segment : Tabs_storage.Disk.segment_id; offset : int; length : int }

val make : segment:int -> offset:int -> length:int -> t

(** [pages t] is the list of pages the byte range touches, in order. *)
val pages : t -> Tabs_storage.Disk.page_id list

(** [fits_one_page t] holds when the range lies within a single page — a
    precondition for value logging. *)
val fits_one_page : t -> bool

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
