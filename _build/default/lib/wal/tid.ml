type t = { node : int; seq : int; path : int list }

let top ~node ~seq = { node; seq; path = [] }

let child parent ~index = { parent with path = parent.path @ [ index ] }

let parent t =
  match List.rev t.path with
  | [] -> None
  | _ :: rev_front -> Some { t with path = List.rev rev_front }

let top_level t = { t with path = [] }

let is_top t = t.path = []

let is_ancestor ~ancestor t =
  ancestor.node = t.node && ancestor.seq = t.seq
  &&
  let rec prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && prefix a' b'
    | _ :: _, [] -> false
  in
  prefix ancestor.path t.path

let equal a b = a.node = b.node && a.seq = b.seq && a.path = b.path

let compare = Stdlib.compare

let hash = Hashtbl.hash

let pp fmt t =
  Format.fprintf fmt "T%d.%d" t.node t.seq;
  List.iter (fun i -> Format.fprintf fmt ".%d" i) t.path

let to_string t = Format.asprintf "%a" pp t
