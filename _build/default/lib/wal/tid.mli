(** Globally unique transaction identifiers.

    The Transaction Manager allocates identifiers that are unique across
    the network (Section 3.2.3): the pair (birth node, local sequence
    number) identifies a top-level transaction; subtransactions extend
    their parent with a path of child indices (the paper's limited
    nesting model, Section 2.1.3). *)

type t = { node : int; seq : int; path : int list }

(** [top ~node ~seq] is a top-level transaction identifier. *)
val top : node:int -> seq:int -> t

(** [child parent ~index] is the [index]-th subtransaction of
    [parent]. *)
val child : t -> index:int -> t

(** [parent t] is [None] for top-level transactions. *)
val parent : t -> t option

(** [top_level t] strips the subtransaction path. *)
val top_level : t -> t

(** [is_top t] holds when [t] has no parent. *)
val is_top : t -> bool

(** [is_ancestor ~ancestor t] holds when [ancestor] is [t] or a proper
    ancestor of [t]. *)
val is_ancestor : ancestor:t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
