test/metrics_index.ml: Array Cost_model Tabs_bench Tabs_sim
