test/test_accent.ml: Alcotest Disk Engine List Object_id Option Page Port Tabs_accent Tabs_sim Tabs_storage Tabs_wal Vm
