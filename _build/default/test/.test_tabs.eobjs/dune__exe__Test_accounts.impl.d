test/test_accounts.ml: Account_server Alcotest Cluster Errors List Node Option QCheck QCheck_alcotest Tabs_accent Tabs_core Tabs_servers Tabs_sim Tabs_wal Txn_lib
