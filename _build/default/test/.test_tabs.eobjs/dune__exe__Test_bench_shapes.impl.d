test/test_bench_shapes.ml: Alcotest Cost_model Lazy List Metrics_index Tabs_bench Tabs_sim
