test/test_btree.ml: Alcotest Btree_server Cluster Errors List Map Node Option Printf QCheck QCheck_alcotest String Tabs_core Tabs_servers Txn_lib
