test/test_directory.ml: Alcotest Cluster Directory_server Errors Gen List Node Option Printf QCheck QCheck_alcotest Tabs_core Tabs_servers Tabs_sim Tabs_wal Txn_lib
