test/test_distributed_prop.ml: Array Cluster Gen Int_array_server List Node Printf QCheck QCheck_alcotest Tabs_core Tabs_servers Txn_lib
