test/test_integration.ml: Alcotest Cluster Engine Errors Int_array_server List Node Option Printf Server_lib Tabs_accent Tabs_core Tabs_recovery Tabs_servers Tabs_sim Tabs_tm Tabs_wal Tid Txn_lib
