test/test_io.ml: Alcotest Cluster Engine Errors Io_server List Node Option String Tabs_core Tabs_servers Tabs_sim Tabs_wal Txn_lib
