test/test_lock.ml: Alcotest Engine List Lock_manager Mode Object_id QCheck QCheck_alcotest Tabs_lock Tabs_sim Tabs_wal Tid
