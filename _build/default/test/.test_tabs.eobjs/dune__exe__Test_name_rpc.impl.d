test/test_name_rpc.ml: Alcotest Cluster Cost_model Engine Errors Int_array_server List Metrics Node Printf Rpc Tabs_core Tabs_name Tabs_servers Tabs_sim Txn_lib
