test/test_net.ml: Alcotest Comm_mgr Cost_model Engine List Metrics Network QCheck QCheck_alcotest Tabs_net Tabs_sim Tabs_wal Tid
