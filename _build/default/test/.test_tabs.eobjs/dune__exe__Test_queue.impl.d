test/test_queue.ml: Alcotest Cluster Engine Errors List Node Option QCheck QCheck_alcotest Tabs_core Tabs_servers Tabs_sim Txn_lib Weak_queue_server
