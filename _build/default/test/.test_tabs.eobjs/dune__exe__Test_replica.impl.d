test/test_replica.ml: Alcotest Btree_server Cluster Errors List Node Printf Replicated_directory String Tabs_core Tabs_servers Txn_lib
