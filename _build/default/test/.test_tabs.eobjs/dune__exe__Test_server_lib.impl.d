test/test_server_lib.ml: Alcotest Cluster Errors Mode Node Server_lib String Tabs_accent Tabs_core Tabs_lock Tabs_wal Txn_lib
