test/test_sim.ml: Alcotest Cost_model Engine Heap List Metrics QCheck QCheck_alcotest Rng Tabs_sim
