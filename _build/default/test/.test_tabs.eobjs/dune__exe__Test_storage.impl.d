test/test_storage.ml: Alcotest Disk Engine List Page Printf QCheck QCheck_alcotest Stable Tabs_sim Tabs_storage
