test/test_tabs.mli:
