test/test_tm.ml: Alcotest Cluster Cost_model Engine Int_array_server List Metrics Node Printf Tabs_core Tabs_net Tabs_servers Tabs_sim Tabs_tm Tabs_wal Txn_lib Txn_mgr
