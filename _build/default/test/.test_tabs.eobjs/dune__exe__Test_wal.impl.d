test/test_wal.ml: Alcotest Codec Cost_model Disk Engine Format Gen List Log_manager Metrics Object_id QCheck QCheck_alcotest Record Stable Tabs_sim Tabs_storage Tabs_wal Tid
