(* Helper: read a per-primitive weight out of a Tabs_bench.Workloads.result
   (pre-commit + commit windows combined). *)

open Tabs_sim

let weight (r : Tabs_bench.Workloads.result) p =
  let idx =
    let rec find i = function
      | [] -> assert false
      | q :: rest -> if q = p then i else find (i + 1) rest
    in
    find 0 Cost_model.all
  in
  r.pre.(idx) +. r.commit.(idx)
