(* Tests for the operation-logged account server: logical undo/redo,
   single multi-page records, and the three-pass crash recovery
   algorithm gated by sector sequence numbers. *)

open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

let setup () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let acc =
    Account_server.create (Node.env node) ~name:"accounts" ~segment:3
      ~accounts:200 ()
  in
  (c, node, acc)

let reinstall holder env =
  holder :=
    Some (Account_server.create env ~name:"accounts" ~segment:3 ~accounts:200 ())

let test_deposit_and_balance () =
  let c, node, acc = setup () in
  let tm = Node.tm node in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.deposit acc tid 7 100;
            Account_server.deposit acc tid 7 50);
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.balance acc tid 7))
  in
  Alcotest.(check int) "accumulated" 150 v

let test_abort_undoes_operations () =
  let c, node, acc = setup () in
  let tm = Node.tm node in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.deposit acc tid 1 100);
        (let t = Txn_lib.begin_transaction tm () in
         Account_server.deposit acc t 1 500;
         Account_server.deposit acc t 1 500;
         Txn_lib.abort_transaction tm t);
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.balance acc tid 1))
  in
  Alcotest.(check int) "logical undo applied in reverse" 100 v

let test_transfer_atomic () =
  let c, node, acc = setup () in
  let tm = Node.tm node in
  (* accounts 0 and 150 live on different pages: one record, two pages *)
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.deposit acc tid 0 1000);
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.transfer acc tid ~from_:0 ~to_:150 400);
        Txn_lib.execute_transaction tm (fun tid ->
            ( Account_server.balance acc tid 0,
              Account_server.balance acc tid 150 )))
  in
  Alcotest.(check (pair int int)) "conservation" (600, 400) v

let test_insufficient_funds () =
  let c, node, acc = setup () in
  let tm = Node.tm node in
  let raised =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.deposit acc tid 2 10);
        try
          Txn_lib.execute_transaction tm (fun tid ->
              Account_server.transfer acc tid ~from_:2 ~to_:3 100);
          false
        with Errors.Server_error "InsufficientFunds" -> true)
  in
  Alcotest.(check bool) "guarded" true raised

let test_crash_recovery_redo () =
  (* Committed operations whose pages never reached disk must be redone
     by the forward pass. *)
  let c, node, acc = setup () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Account_server.deposit acc tid 5 123;
          Account_server.transfer acc tid ~from_:5 ~to_:150 23));
  (* no flush: disk pages still zero, log has the operations *)
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall holder) ()));
  let acc' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            ( Account_server.balance acc' tid 5,
              Account_server.balance acc' tid 150 )))
  in
  Alcotest.(check (pair int int)) "redo pass rebuilt balances" (100, 23) v

let test_crash_recovery_undo () =
  (* An uncommitted operation whose pages DID reach disk must be undone
     by the backward pass. *)
  let c, node, acc = setup () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Account_server.deposit acc tid 9 100));
  Cluster.spawn c ~node:0 (fun () ->
      let t = Txn_lib.begin_transaction tm () in
      Account_server.deposit acc t 9 5000;
      Tabs_wal.Log_manager.force_all (Node.log node);
      Tabs_accent.Vm.flush_all (Node.vm node);
      Tabs_sim.Engine.delay 1_000_000);
  Cluster.run_until c ~time:800_000;
  Node.crash node;
  let holder = ref None in
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node ~reinstall:(reinstall holder) ())
  in
  Alcotest.(check int) "loser detected" 1 (List.length outcome.losers);
  let acc' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Account_server.balance acc' tid 9))
  in
  Alcotest.(check int) "undo pass removed uncommitted deposit" 100 v

let test_seqno_gating_skips_applied () =
  (* Committed, flushed operations are already reflected on disk; the
     redo pass must not double-apply them (sector sequence numbers gate
     it). *)
  let c, node, acc = setup () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Account_server.deposit acc tid 11 77);
      Tabs_accent.Vm.flush_all (Node.vm node));
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall holder) ()));
  let acc' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Account_server.balance acc' tid 11))
  in
  Alcotest.(check int) "not double-applied" 77 v

let test_double_recovery_stable () =
  let c, node, acc = setup () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Account_server.deposit acc tid 13 31));
  let holder = ref None in
  Node.crash node;
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall holder) ()));
  Node.crash node;
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall holder) ()));
  let acc' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Account_server.balance acc' tid 13))
  in
  Alcotest.(check int) "recover twice = once" 31 v

(* Type-specific locking: the commuting "credit" mode ------------------ *)

let test_concurrent_credits_do_not_block () =
  let c, node, acc = setup () in
  let tm = Node.tm node in
  let t_done = ref [] in
  (* two transactions credit the same account, overlapping in time;
     neither waits for the other *)
  for w = 1 to 2 do
    Cluster.spawn c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.credit acc tid 3 10;
            (* hold the credit lock while the other transaction works *)
            Tabs_sim.Engine.delay 400_000);
        t_done := Tabs_sim.Engine.now (Cluster.engine c) :: !t_done;
        ignore w)
  done;
  Cluster.run c;
  (match !t_done with
  | [ a; b ] ->
      (* had they serialized, the second would finish a lock-timeout or
         400ms later; overlapping runs finish within ~100ms of each
         other *)
      Alcotest.(check bool) "overlapped" true (abs (a - b) < 200_000)
  | _ -> Alcotest.fail "both transactions must finish");
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.balance acc tid 3))
  in
  Alcotest.(check int) "both credits applied" 20 v

let test_credit_conflicts_with_reader () =
  (* "credit" commutes with itself but NOT with readers: a balance
     inquiry must wait for the crediting transaction to commit (else it
     would observe an uncommitted sum). *)
  let c, node, acc = setup () in
  let tm = Node.tm node in
  let credit_committed = ref max_int in
  let read_done = ref (-1) in
  let read_value = ref (-1) in
  Cluster.spawn c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Account_server.credit acc tid 4 5;
          Tabs_sim.Engine.delay 500_000);
      credit_committed := Tabs_sim.Engine.now (Cluster.engine c));
  Cluster.spawn c ~node:0 (fun () ->
      Tabs_sim.Engine.delay 250_000;
      Txn_lib.execute_transaction tm (fun tid ->
          read_value := Account_server.balance acc tid 4);
      read_done := Tabs_sim.Engine.now (Cluster.engine c));
  Cluster.run c;
  Alcotest.(check int) "reader saw only the committed value" 5 !read_value;
  Alcotest.(check bool) "reader waited for the commit" true
    (!read_done >= !credit_committed)

let test_credit_abort_subtracts () =
  let c, node, acc = setup () in
  let tm = Node.tm node in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.credit acc tid 5 100);
        (let t = Txn_lib.begin_transaction tm () in
         Account_server.credit acc t 5 40;
         Txn_lib.abort_transaction tm t);
        Txn_lib.execute_transaction tm (fun tid ->
            Account_server.balance acc tid 5))
  in
  Alcotest.(check int) "delta undone" 100 v

let test_concurrent_credits_crash_recovery () =
  (* one committed and one uncommitted concurrent credit; crash; the
     committed delta must survive, the uncommitted one must vanish *)
  let c, node, acc = setup () in
  let tm = Node.tm node in
  Cluster.spawn c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Account_server.credit acc tid 6 7));
  Cluster.spawn c ~node:0 (fun () ->
      let t = Txn_lib.begin_transaction tm () in
      Account_server.credit acc t 6 1000;
      Tabs_wal.Log_manager.force_all (Node.log node);
      Tabs_accent.Vm.flush_all (Node.vm node);
      Tabs_sim.Engine.delay 5_000_000);
  Cluster.run_until c ~time:2_000_000;
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall holder) ()));
  let acc' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Account_server.balance acc' tid 6))
  in
  Alcotest.(check int) "committed delta only" 7 v

let prop_conservation_under_crashes =
  QCheck.Test.make ~name:"transfers conserve money across crashes" ~count:15
    QCheck.(pair (list (pair (int_range 0 19) (int_range 0 19))) bool)
    (fun (transfers, flush) ->
      let c, node, acc = setup () in
      let tm = Node.tm node in
      let initial = 20 * 100 in
      Cluster.run_fiber c ~node:0 (fun () ->
          Txn_lib.execute_transaction tm (fun tid ->
              for i = 0 to 19 do
                Account_server.deposit acc tid i 100
              done);
          List.iter
            (fun (a, b) ->
              if a <> b then
                try
                  Txn_lib.execute_transaction tm (fun tid ->
                      Account_server.transfer acc tid ~from_:a ~to_:b 30)
                with Errors.Server_error "InsufficientFunds" -> ())
            transfers;
          if flush then Tabs_accent.Vm.flush_all (Node.vm node));
      Node.crash node;
      let holder = ref None in
      ignore
        (Cluster.run_fiber c ~node:0 (fun () ->
             Node.restart node ~reinstall:(reinstall holder) ()));
      let acc' = Option.get !holder in
      let total =
        Cluster.run_fiber c ~node:0 (fun () ->
            Txn_lib.execute_transaction (Node.tm node) (fun tid ->
                let sum = ref 0 in
                for i = 0 to 19 do
                  sum := !sum + Account_server.balance acc' tid i
                done;
                !sum))
      in
      total = initial)

let suites =
  [
    ( "accounts.oplog",
      [
        quick "deposit/balance" test_deposit_and_balance;
        quick "abort undoes" test_abort_undoes_operations;
        quick "transfer atomic" test_transfer_atomic;
        quick "insufficient funds" test_insufficient_funds;
        quick "crash redo" test_crash_recovery_redo;
        quick "crash undo" test_crash_recovery_undo;
        quick "seqno gating" test_seqno_gating_skips_applied;
        quick "double recovery" test_double_recovery_stable;
        quick "commuting credits overlap" test_concurrent_credits_do_not_block;
        quick "credit excludes reader" test_credit_conflicts_with_reader;
        quick "credit abort subtracts" test_credit_abort_subtracts;
        quick "concurrent credits + crash" test_concurrent_credits_crash_recovery;
        QCheck_alcotest.to_alcotest prop_conservation_under_crashes;
      ] );
  ]
