(* Tests for the B-tree server: structure under splits, transactional
   abort of multi-page mutations, the recoverable storage allocator,
   crash recovery, and a model-based property test against Map. *)

open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

let setup () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let bt = Btree_server.create (Node.env node) ~name:"btree" ~segment:4 () in
  (c, node, bt)

let reinstall holder env =
  holder := Some (Btree_server.create env ~name:"btree" ~segment:4 ())

let key i = Printf.sprintf "key-%04d" i

let test_insert_lookup () =
  let c, node, bt = setup () in
  let tm = Node.tm node in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Btree_server.insert bt tid ~key:"alpha" ~value:"1";
            Btree_server.insert bt tid ~key:"beta" ~value:"2");
        Txn_lib.execute_transaction tm (fun tid ->
            ( Btree_server.lookup bt tid ~key:"alpha",
              Btree_server.lookup bt tid ~key:"beta",
              Btree_server.lookup bt tid ~key:"gamma" )))
  in
  Alcotest.(check (triple (option string) (option string) (option string)))
    "lookups" (Some "1", Some "2", None) v

let test_overwrite () =
  let c, node, bt = setup () in
  let tm = Node.tm node in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Btree_server.insert bt tid ~key:"k" ~value:"old";
            Btree_server.insert bt tid ~key:"k" ~value:"new");
        Txn_lib.execute_transaction tm (fun tid ->
            Btree_server.lookup bt tid ~key:"k"))
  in
  Alcotest.(check (option string)) "overwritten" (Some "new") v

let test_many_inserts_split () =
  let c, node, bt = setup () in
  let tm = Node.tm node in
  let n = 300 in
  let all =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            for i = 0 to n - 1 do
              (* shuffled order via multiplicative stepping *)
              let j = 97 * i mod n in
              Btree_server.insert bt tid ~key:(key j) ~value:(string_of_int j)
            done;
            Btree_server.check_invariants bt tid;
            Btree_server.entries bt tid))
  in
  Alcotest.(check int) "all present" n (List.length all);
  Alcotest.(check (list string))
    "key order"
    (List.init n key)
    (List.map fst all)

let test_delete () =
  let c, node, bt = setup () in
  let tm = Node.tm node in
  let before, removed, after =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            for i = 0 to 49 do
              Btree_server.insert bt tid ~key:(key i) ~value:"v"
            done);
        Txn_lib.execute_transaction tm (fun tid ->
            let before = Btree_server.size bt tid in
            let removed = Btree_server.delete bt tid ~key:(key 25) in
            let after = Btree_server.size bt tid in
            Btree_server.check_invariants bt tid;
            (before, removed, after)))
  in
  Alcotest.(check (triple int bool int)) "delete shrinks" (50, true, 49)
    (before, removed, after);
  let ghost =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Btree_server.lookup bt tid ~key:(key 25)))
  in
  Alcotest.(check (option string)) "gone" None ghost

let test_abort_rolls_back_splits () =
  (* An aborted bulk insert must roll back node splits AND the storage
     allocator: a later insert sees the original small tree. *)
  let c, node, bt = setup () in
  let tm = Node.tm node in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Btree_server.insert bt tid ~key:"base" ~value:"yes");
        (let t = Txn_lib.begin_transaction tm () in
         for i = 0 to 99 do
           Btree_server.insert bt t ~key:(key i) ~value:"doomed"
         done;
         Txn_lib.abort_transaction tm t);
        Txn_lib.execute_transaction tm (fun tid ->
            Btree_server.check_invariants bt tid;
            (Btree_server.entries bt tid, Btree_server.lookup bt tid ~key:(key 3))))
  in
  Alcotest.(check (pair (list (pair string string)) (option string)))
    "only the committed entry remains"
    ([ ("base", "yes") ], None)
    v

let test_crash_recovery () =
  let c, node, bt = setup () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          for i = 0 to 99 do
            Btree_server.insert bt tid ~key:(key i) ~value:(string_of_int i)
          done));
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall holder) ()));
  let bt' = Option.get !holder in
  let n, inv_ok =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            let n = Btree_server.size bt' tid in
            Btree_server.check_invariants bt' tid;
            (n, true)))
  in
  Alcotest.(check (pair int bool)) "tree survives crash" (100, true) (n, inv_ok)

let test_size_limits () =
  let c, node, bt = setup () in
  let tm = Node.tm node in
  let results =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            let too_long_key =
              try
                Btree_server.insert bt tid ~key:(String.make 30 'x') ~value:"v";
                false
              with Errors.Server_error "KeyTooLong" -> true
            in
            let too_long_value =
              try
                Btree_server.insert bt tid ~key:"ok" ~value:(String.make 40 'y');
                false
              with Errors.Server_error "ValueTooLong" -> true
            in
            let empty_key =
              try
                Btree_server.insert bt tid ~key:"" ~value:"v";
                false
              with Errors.Server_error "EmptyKey" -> true
            in
            [ too_long_key; too_long_value; empty_key ]))
  in
  Alcotest.(check (list bool)) "limits enforced" [ true; true; true ] results

let prop_btree_matches_map =
  QCheck.Test.make ~name:"btree behaves like Map under random ops" ~count:20
    QCheck.(list (pair (int_range 0 2) (int_range 0 60)))
    (fun script ->
      let c, node, bt = setup () in
      let tm = Node.tm node in
      let module M = Map.Make (String) in
      let model = ref M.empty in
      Cluster.run_fiber c ~node:0 (fun () ->
          List.iter
            (fun (op, i) ->
              let k = key i in
              match op with
              | 0 ->
                  let v = string_of_int i in
                  Txn_lib.execute_transaction tm (fun tid ->
                      Btree_server.insert bt tid ~key:k ~value:v);
                  model := M.add k v !model
              | 1 ->
                  let removed =
                    Txn_lib.execute_transaction tm (fun tid ->
                        Btree_server.delete bt tid ~key:k)
                  in
                  let expected = M.mem k !model in
                  model := M.remove k !model;
                  if removed <> expected then failwith "delete mismatch"
              | _ ->
                  let got =
                    Txn_lib.execute_transaction tm (fun tid ->
                        Btree_server.lookup bt tid ~key:k)
                  in
                  if got <> M.find_opt k !model then failwith "lookup mismatch")
            script;
          let entries =
            Txn_lib.execute_transaction tm (fun tid ->
                Btree_server.check_invariants bt tid;
                Btree_server.entries bt tid)
          in
          entries = M.bindings !model))

let suites =
  [
    ( "btree",
      [
        quick "insert/lookup" test_insert_lookup;
        quick "overwrite" test_overwrite;
        quick "splits keep order" test_many_inserts_split;
        quick "delete" test_delete;
        quick "abort rolls back splits" test_abort_rolls_back_splits;
        quick "crash recovery" test_crash_recovery;
        quick "size limits" test_size_limits;
        QCheck_alcotest.to_alcotest prop_btree_matches_map;
      ] );
  ]
