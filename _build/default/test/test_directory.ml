(* Tests for the multi-key directory server: secondary-index
   maintenance under commit, abort, and crash. *)

open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

let setup () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let dir =
    Directory_server.create (Node.env node) ~name:"dir" ~primary_segment:8
      ~index_segment:9 ()
  in
  (c, node, dir)

let reinstall holder env =
  holder :=
    Some
      (Directory_server.create env ~name:"dir" ~primary_segment:8
         ~index_segment:9 ())

let e p s pay = { Directory_server.primary = p; secondary = s; payload = pay }

let test_add_find_both_keys () =
  let c, node, dir = setup () in
  let tm = Node.tm node in
  let by_p, by_s =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Directory_server.add dir tid (e "perq7" "128.2.250.7" "mail host"));
        Txn_lib.execute_transaction tm (fun tid ->
            ( Directory_server.find dir tid ~primary:"perq7",
              Directory_server.find_by_secondary dir tid
                ~secondary:"128.2.250.7" )))
  in
  Alcotest.(check bool) "found by primary" true
    (match by_p with Some x -> x.Directory_server.payload = "mail host" | None -> false);
  Alcotest.(check bool) "found through index" true
    (match by_s with Some x -> x.Directory_server.primary = "perq7" | None -> false)

let test_duplicate_rejected () =
  let c, node, dir = setup () in
  let tm = Node.tm node in
  let dup_primary, dup_secondary =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Directory_server.add dir tid (e "a" "s1" "x"));
        let p =
          try
            Txn_lib.execute_transaction tm (fun tid ->
                Directory_server.add dir tid (e "a" "s2" "y"));
            false
          with Errors.Server_error "DuplicateKey" -> true
        in
        let s =
          try
            Txn_lib.execute_transaction tm (fun tid ->
                Directory_server.add dir tid (e "b" "s1" "y"));
            false
          with Errors.Server_error "DuplicateKey" -> true
        in
        (p, s))
  in
  Alcotest.(check (pair bool bool)) "both uniqueness checks" (true, true)
    (dup_primary, dup_secondary)

let test_abort_keeps_index_consistent () =
  let c, node, dir = setup () in
  let tm = Node.tm node in
  let consistent =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Directory_server.add dir tid (e "keep" "k1" "v"));
        (* an aborted add must leave NEITHER tree changed *)
        (let t = Txn_lib.begin_transaction tm () in
         Directory_server.add dir t (e "doomed" "d1" "v");
         Txn_lib.abort_transaction tm t);
        Txn_lib.execute_transaction tm (fun tid ->
            Directory_server.check_consistency dir tid;
            ( Directory_server.find dir tid ~primary:"doomed",
              Directory_server.find_by_secondary dir tid ~secondary:"d1" )))
  in
  Alcotest.(check bool) "aborted entry invisible both ways" true
    (consistent = (None, None))

let test_remove_cleans_index () =
  let c, node, dir = setup () in
  let tm = Node.tm node in
  let gone =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Directory_server.add dir tid (e "x" "sx" "v"));
        Txn_lib.execute_transaction tm (fun tid ->
            ignore (Directory_server.remove dir tid ~primary:"x"));
        Txn_lib.execute_transaction tm (fun tid ->
            Directory_server.check_consistency dir tid;
            Directory_server.find_by_secondary dir tid ~secondary:"sx"))
  in
  Alcotest.(check bool) "index record removed too" true (gone = None)

let test_modify_preserves_index () =
  let c, node, dir = setup () in
  let tm = Node.tm node in
  let found =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Directory_server.add dir tid (e "m" "sm" "old"));
        Txn_lib.execute_transaction tm (fun tid ->
            Directory_server.modify dir tid ~primary:"m" ~payload:"new");
        Txn_lib.execute_transaction tm (fun tid ->
            Directory_server.check_consistency dir tid;
            Directory_server.find_by_secondary dir tid ~secondary:"sm"))
  in
  Alcotest.(check bool) "payload updated, index intact" true
    (match found with Some x -> x.Directory_server.payload = "new" | None -> false)

let test_crash_consistency () =
  let c, node, dir = setup () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Directory_server.add dir tid (e "p1" "s1" "a");
          Directory_server.add dir tid (e "p2" "s2" "b")));
  (* a transaction caught mid-flight by the crash: primary inserted,
     index not yet *)
  Cluster.spawn c ~node:0 (fun () ->
      let t = Txn_lib.begin_transaction tm () in
      Directory_server.add dir t (e "p3" "s3" "c");
      Tabs_wal.Log_manager.force_all (Node.log node);
      Tabs_sim.Engine.delay 10_000_000);
  Cluster.run_until c ~time:3_000_000;
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall holder) ()));
  let dir' = Option.get !holder in
  let n =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Directory_server.check_consistency dir' tid;
            List.length (Directory_server.entries dir' tid)))
  in
  Alcotest.(check int) "only committed entries, consistent index" 2 n

let prop_directory_consistent =
  QCheck.Test.make ~name:"directory index consistent under random ops" ~count:15
    QCheck.(list_of_size (Gen.int_bound 30) (pair (int_range 0 2) (int_range 0 9)))
    (fun script ->
      let c, node, dir = setup () in
      let tm = Node.tm node in
      Cluster.run_fiber c ~node:0 (fun () ->
          List.iter
            (fun (op, i) ->
              let p = Printf.sprintf "p%d" i and s = Printf.sprintf "s%d" i in
              match op with
              | 0 -> (
                  try
                    Txn_lib.execute_transaction tm (fun tid ->
                        Directory_server.add dir tid (e p s "v"))
                  with Errors.Server_error "DuplicateKey" -> ())
              | 1 ->
                  Txn_lib.execute_transaction tm (fun tid ->
                      ignore (Directory_server.remove dir tid ~primary:p))
              | _ -> (
                  (* aborted add *)
                  let t = Txn_lib.begin_transaction tm () in
                  (try Directory_server.add dir t (e p s "v")
                   with Errors.Server_error "DuplicateKey" -> ());
                  Txn_lib.abort_transaction tm t))
            script;
          Txn_lib.execute_transaction tm (fun tid ->
              Directory_server.check_consistency dir tid;
              true)))

let suites =
  [
    ( "directory",
      [
        quick "add/find both keys" test_add_find_both_keys;
        quick "duplicates rejected" test_duplicate_rejected;
        quick "abort consistency" test_abort_keeps_index_consistent;
        quick "remove cleans index" test_remove_cleans_index;
        quick "modify preserves index" test_modify_preserves_index;
        quick "crash consistency" test_crash_consistency;
        QCheck_alcotest.to_alcotest prop_directory_consistent;
      ] );
  ]
