(* Property tests of distributed atomicity: random schedules of
   two-node transactions, randomly committed or aborted, must leave the
   two nodes pairwise consistent and equal to a sequential model. *)

open Tabs_core
open Tabs_servers

let cells = 8

let setup () =
  let c = Cluster.create ~nodes:2 () in
  let arrays =
    List.map
      (fun node ->
        Int_array_server.create (Node.env node)
          ~name:(Printf.sprintf "a%d" (Node.id node))
          ~segment:1 ~cells ())
      (Cluster.nodes c)
  in
  (c, arrays)

let prop_distributed_all_or_nothing =
  QCheck.Test.make ~name:"two-node transactions are all-or-nothing" ~count:15
    QCheck.(list_of_size (Gen.int_bound 25) (pair (int_range 0 7) bool))
    (fun script ->
      let c, _ = setup () in
      let n0 = Cluster.node c 0 in
      let tm = Node.tm n0 and rpc = Node.rpc n0 in
      let model = Array.make cells 0 in
      let value = ref 0 in
      Cluster.run_fiber c ~node:0 (fun () ->
          List.iter
            (fun (cell, commit) ->
              incr value;
              let v = !value in
              let tid = Txn_lib.begin_transaction tm () in
              Int_array_server.call_set rpc ~dest:0 ~server:"a0" tid cell v;
              Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid cell v;
              if commit then begin
                if Txn_lib.end_transaction tm tid then model.(cell) <- v
              end
              else Txn_lib.abort_transaction tm tid)
            script;
          (* both nodes must agree with the model cell by cell *)
          let ok = ref true in
          Txn_lib.execute_transaction tm (fun tid ->
              for cell = 0 to cells - 1 do
                let v0 =
                  Int_array_server.call_get rpc ~dest:0 ~server:"a0" tid cell
                in
                let v1 =
                  Int_array_server.call_get rpc ~dest:1 ~server:"a1" tid cell
                in
                if v0 <> model.(cell) || v1 <> model.(cell) then ok := false
              done);
          !ok))

let prop_atomic_across_subordinate_crash =
  QCheck.Test.make
    ~name:"crash after k committed txns preserves pairwise consistency"
    ~count:10
    QCheck.(int_range 1 6)
    (fun k ->
      let c, _ = setup () in
      let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
      let tm = Node.tm n0 and rpc = Node.rpc n0 in
      Cluster.run_fiber c ~node:0 (fun () ->
          for i = 1 to k do
            Txn_lib.execute_transaction tm (fun tid ->
                Int_array_server.call_set rpc ~dest:0 ~server:"a0" tid
                  (i mod cells) i;
                Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid
                  (i mod cells) i)
          done);
      (* crash the subordinate, restart, and compare every cell *)
      Node.crash n1;
      ignore
        (Cluster.run_fiber c ~node:1 (fun () ->
             Node.restart n1 ~reinstall:(fun env ->
                 ignore
                   (Int_array_server.create env ~name:"a1" ~segment:1 ~cells ())) ()));
      Cluster.run_fiber c ~node:0 (fun () ->
          let ok = ref true in
          Txn_lib.execute_transaction tm (fun tid ->
              for cell = 0 to cells - 1 do
                let v0 =
                  Int_array_server.call_get rpc ~dest:0 ~server:"a0" tid cell
                in
                let v1 =
                  Int_array_server.call_get rpc ~dest:1 ~server:"a1" tid cell
                in
                if v0 <> v1 then ok := false
              done);
          !ok))

let suites =
  [
    ( "distributed.properties",
      [
        QCheck_alcotest.to_alcotest prop_distributed_all_or_nothing;
        QCheck_alcotest.to_alcotest prop_atomic_across_subordinate_crash;
      ] );
  ]
