(* End-to-end tests over full TABS nodes: the integer array server
   driven through real transactions, local and distributed commits,
   aborts, crashes and recovery, checkpoints, and in-doubt blocking. *)

open Tabs_sim
open Tabs_wal
open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

let make_cluster ?(nodes = 1) () = Cluster.create ~nodes ()

let make_array ?(name = "array") ?(cells = 256) node =
  Int_array_server.create (Node.env node) ~name ~segment:1 ~cells ()

(* Reinstaller used by restart tests. *)
let reinstall_array ?(name = "array") ?(cells = 256) holder env =
  holder := Some (Int_array_server.create env ~name ~segment:1 ~cells ())

let test_commit_persists () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  let result =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Int_array_server.set arr tid 3 42;
            Int_array_server.set arr tid 7 99);
        Txn_lib.execute_transaction tm (fun tid ->
            (Int_array_server.get arr tid 3, Int_array_server.get arr tid 7)))
  in
  Alcotest.(check (pair int int)) "committed values readable" (42, 99) result

let test_abort_undoes () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  let result =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Int_array_server.set arr tid 5 10);
        let tid = Txn_lib.begin_transaction tm () in
        Int_array_server.set arr tid 5 77;
        Txn_lib.abort_transaction tm tid;
        Txn_lib.execute_transaction tm (fun tid2 ->
            Int_array_server.get arr tid2 5))
  in
  Alcotest.(check int) "aborted write rolled back" 10 result

let test_abort_releases_locks () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  let ok =
    Cluster.run_fiber c ~node:0 (fun () ->
        let t1 = Txn_lib.begin_transaction tm () in
        Int_array_server.set arr t1 0 1;
        Txn_lib.abort_transaction tm t1;
        (* a second transaction can take the write lock immediately *)
        Txn_lib.execute_transaction tm (fun t2 ->
            Int_array_server.set arr t2 0 2);
        true)
  in
  Alcotest.(check bool) "no residual locks" true ok

let test_isolation_between_txns () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  let observed = ref (-1) in
  Cluster.spawn c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set arr tid 9 111;
          (* hold the lock for a while before committing *)
          Engine.delay 50_000));
  Cluster.spawn c ~node:0 (fun () ->
      Engine.delay 1_000;
      Txn_lib.execute_transaction tm (fun tid ->
          (* waits for the writer's lock, so sees the committed value *)
          observed := Int_array_server.get arr tid 9));
  Cluster.run c;
  Alcotest.(check int) "reader blocked until commit" 111 !observed

let test_out_of_range () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  let got_error =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        let fired =
          try
            ignore (Int_array_server.get arr tid 100_000);
            false
          with Errors.Server_error "IndexOutOfRange" -> true
        in
        Txn_lib.abort_transaction tm tid;
        fired)
  in
  Alcotest.(check bool) "IndexOutOfRange raised" true got_error

(* Crash / recovery ---------------------------------------------------- *)

let test_crash_preserves_committed () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set arr tid 1 1234));
  Node.crash node;
  let holder = ref None in
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node ~reinstall:(reinstall_array holder) ())
  in
  Alcotest.(check (list string)) "no losers" []
    (List.map Tid.to_string outcome.losers);
  let arr' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Int_array_server.get arr' tid 1))
  in
  Alcotest.(check int) "committed survives crash" 1234 v

let test_crash_rolls_back_uncommitted () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  (* Initial committed value. *)
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set arr tid 2 50));
  (* A transaction updates but never commits; force its dirty state out
     so the on-disk page holds uncommitted data, then crash. *)
  Cluster.spawn c ~node:0 (fun () ->
      let tid = Txn_lib.begin_transaction tm () in
      Int_array_server.set arr tid 2 666;
      (* make sure the log reached stable storage and the page leaks to
         disk: flush everything *)
      Tabs_wal.Log_manager.force_all (Node.log node);
      Tabs_accent.Vm.flush_all (Node.vm node);
      Engine.delay 1_000_000 (* still holding the transaction open *));
  Cluster.run_until c ~time:500_000;
  Node.crash node;
  let holder = ref None in
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node ~reinstall:(reinstall_array holder) ())
  in
  Alcotest.(check int) "one loser rolled back" 1 (List.length outcome.losers);
  let arr' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Int_array_server.get arr' tid 2))
  in
  Alcotest.(check int) "rolled back to last committed" 50 v

let test_crash_before_force_loses_nothing_committed () =
  (* A transaction that never reached commit leaves no trace even when
     its log records were only in the volatile buffer. *)
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  Cluster.spawn c ~node:0 (fun () ->
      let tid = Txn_lib.begin_transaction tm () in
      Int_array_server.set arr tid 4 9;
      Engine.delay 1_000_000);
  Cluster.run_until c ~time:100_000;
  Node.crash node;
  let holder = ref None in
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node ~reinstall:(reinstall_array holder) ())
  in
  (* Nothing was forced, so the log may be empty; either way the value
     must read as the initial zero. *)
  ignore outcome;
  let arr' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Int_array_server.get arr' tid 4))
  in
  Alcotest.(check int) "unforced uncommitted invisible" 0 v

let test_recovery_idempotent () =
  (* Crashing again right after recovery and recovering again must give
     the same state. *)
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set arr tid 8 800));
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall_array holder) ()));
  Node.crash node;
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall_array holder) ()));
  let arr' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Int_array_server.get arr' tid 8))
  in
  Alcotest.(check int) "double recovery stable" 800 v

(* Distributed ----------------------------------------------------------- *)

let test_two_node_commit () =
  let c = make_cluster ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let a0 = make_array ~name:"a0" n0 in
  let _a1 = make_array ~name:"a1" n1 in
  let tm = Node.tm n0 in
  let rpc = Node.rpc n0 in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Int_array_server.set a0 tid 0 5;
            Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid 0 6);
        Txn_lib.execute_transaction tm (fun tid ->
            let local = Int_array_server.get a0 tid 0 in
            let remote = Int_array_server.call_get rpc ~dest:1 ~server:"a1" tid 0 in
            (local, remote)))
  in
  Alcotest.(check (pair int int)) "both nodes committed" (5, 6) v

let test_two_node_abort_undoes_remotely () =
  let c = make_cluster ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let a0 = make_array ~name:"a0" n0 in
  let _a1 = make_array ~name:"a1" n1 in
  let tm = Node.tm n0 in
  let rpc = Node.rpc n0 in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        Int_array_server.set a0 tid 0 5;
        Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid 0 6;
        Txn_lib.abort_transaction tm tid;
        Txn_lib.execute_transaction tm (fun tid2 ->
            let local = Int_array_server.get a0 tid2 0 in
            let remote = Int_array_server.call_get rpc ~dest:1 ~server:"a1" tid2 0 in
            (local, remote)))
  in
  Alcotest.(check (pair int int)) "abort undone on both nodes" (0, 0) v

let test_three_node_commit () =
  let c = make_cluster ~nodes:3 () in
  let arrays =
    List.map
      (fun node ->
        make_array ~name:(Printf.sprintf "a%d" (Node.id node)) node)
      (Cluster.nodes c)
  in
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  let vs =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Int_array_server.set (List.nth arrays 0) tid 0 10;
            Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid 0 11;
            Int_array_server.call_set rpc ~dest:2 ~server:"a2" tid 0 12);
        Txn_lib.execute_transaction tm (fun tid ->
            [
              Int_array_server.get (List.nth arrays 0) tid 0;
              Int_array_server.call_get rpc ~dest:1 ~server:"a1" tid 0;
              Int_array_server.call_get rpc ~dest:2 ~server:"a2" tid 0;
            ]))
  in
  Alcotest.(check (list int)) "three-node atomic commit" [ 10; 11; 12 ] vs

let test_subordinate_crash_aborts () =
  (* The remote participant crashes before the coordinator commits: the
     coordinator must abort, and node 0's tentative write must roll
     back. *)
  let c = make_cluster ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let a0 = make_array ~name:"a0" n0 in
  let _a1 = make_array ~name:"a1" n1 in
  let tm = Node.tm n0 in
  let rpc = Node.rpc n0 in
  let outcome = ref None in
  let remote_done = ref false in
  Cluster.spawn c ~node:0 (fun () ->
      let tid = Txn_lib.begin_transaction tm () in
      Int_array_server.set a0 tid 0 5;
      Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid 0 6;
      remote_done := true;
      (* give the subordinate time to die before we try to commit *)
      Engine.delay 300_000;
      outcome := Some (Txn_lib.end_transaction tm tid));
  (* Watcher (on no node): crash the subordinate as soon as the remote
     operation has completed. *)
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         while not !remote_done do
           Engine.delay 1_000
         done;
         Node.crash n1));
  Cluster.run_until c ~time:30_000_000;
  Alcotest.(check (option bool)) "commit refused" (Some false) !outcome;
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Int_array_server.get a0 tid 0))
  in
  Alcotest.(check int) "local tentative write undone" 0 v

let test_coordinator_crash_in_doubt_then_resolved () =
  (* Subordinate prepares; the coordinator crashes after forcing its
     commit record but before the commit datagram goes out. The
     subordinate is blocked in doubt — the 2PC failure mode the paper
     acknowledges — until the restarted coordinator answers its status
     query with Committed (resolved from the coordinator's log). *)
  let c = make_cluster ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let a0 = make_array ~name:"a0" n0 in
  let _a1 = make_array ~name:"a1" n1 in
  let tm = Node.tm n0 in
  let rpc = Node.rpc n0 in
  let the_tid = ref None in
  Cluster.spawn c ~node:0 (fun () ->
      let tid = Txn_lib.begin_transaction tm () in
      the_tid := Some tid;
      Int_array_server.set a0 tid 0 5;
      Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid 0 6;
      ignore (Txn_lib.end_transaction tm tid));
  (* Watcher: crash the coordinator the moment its commit record is
     durable (outcome known locally) — before the commit datagram is
     sent. *)
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         let rec watch () =
           Engine.delay 500;
           let decided =
             match !the_tid with
             | Some tid -> Tabs_tm.Txn_mgr.outcome_of tm tid <> None
             | None -> false
           in
           if decided then Node.crash n0 else watch ()
         in
         watch ()));
  Cluster.run_until c ~time:2_000_000;
  (* The subordinate must be blocked in doubt, its datum locked. *)
  Alcotest.(check int) "subordinate in doubt" 1
    (List.length (Tabs_tm.Txn_mgr.in_doubt (Node.tm n1)));
  (* Restart the coordinator; its Transaction Manager re-learns the
     outcome from the recovered log and answers the status query. *)
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart n0 ~reinstall:(reinstall_array ~name:"a0" holder) ()));
  Cluster.run_until c ~time:(Engine.now (Cluster.engine c) + 30_000_000);
  Alcotest.(check int) "subordinate resolved" 0
    (List.length (Tabs_tm.Txn_mgr.in_doubt (Node.tm n1)));
  let v1 =
    Cluster.run_fiber c ~node:1 (fun () ->
        Txn_lib.execute_transaction (Node.tm n1) (fun tid ->
            Int_array_server.call_get (Node.rpc n1) ~dest:1 ~server:"a1" tid 0))
  in
  let a0' = Option.get !holder in
  let v0 =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm n0) (fun tid ->
            Int_array_server.get a0' tid 0))
  in
  Alcotest.(check (pair int int)) "both sides converged to commit" (5, 6)
    (v0, v1)

let test_prepared_participant_crash_and_resolution () =
  (* The subordinate crashes AFTER forcing its prepare record but
     BEFORE its vote reaches the coordinator. The coordinator times out
     and aborts. The restarted subordinate comes back in doubt with the
     prepared data applied and relocked; its status query returns
     Aborted, and the undo uses the update chain restored from the
     log. *)
  let c = make_cluster ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let a0 = make_array ~name:"a0" n0 in
  let _a1 = make_array ~name:"a1" n1 in
  let tm = Node.tm n0 in
  let rpc = Node.rpc n0 in
  Cluster.spawn c ~node:0 (fun () ->
      let tid = Txn_lib.begin_transaction tm () in
      Int_array_server.set a0 tid 0 5;
      Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid 0 6;
      ignore (Txn_lib.end_transaction tm tid));
  (* watcher: kill the subordinate the moment it is prepared, before
     its vote datagram leaves *)
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         let rec watch () =
           Engine.delay 500;
           if Tabs_tm.Txn_mgr.in_doubt (Node.tm n1) <> [] then Node.crash n1
           else watch ()
         in
         watch ()));
  Cluster.run_until c ~time:5_000_000;
  (* the coordinator has timed out and aborted by now *)
  let v0 =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Int_array_server.get a0 tid 0))
  in
  Alcotest.(check int) "coordinator aborted its half" 0 v0;
  (* restart the subordinate: recovery applies the prepared update and
     reports it in doubt; relock it before resolution starts *)
  let holder = ref None in
  let relocked = ref false in
  let outcome =
    Cluster.run_fiber c ~node:1 (fun () ->
        Node.restart n1
          ~reinstall:(fun env ->
            holder :=
              Some (Int_array_server.create env ~name:"a1" ~segment:1 ~cells:256 ()))
          ~after_recovery:(fun outcome ->
            let arr = Option.get !holder in
            Server_lib.relock_in_doubt
              (Int_array_server.server arr)
              outcome.written_objects;
            relocked := outcome.written_objects <> [])
          ())
  in
  Alcotest.(check int) "restarted in doubt" 1 (List.length outcome.in_doubt);
  Alcotest.(check bool) "in-doubt data relocked" true !relocked;
  (* resolution: the status query returns Aborted; the undo runs *)
  Cluster.run_until c ~time:(Engine.now (Cluster.engine c) + 60_000_000);
  Alcotest.(check int) "resolved" 0
    (List.length (Tabs_tm.Txn_mgr.in_doubt (Node.tm n1)));
  let arr = Option.get !holder in
  let v1 =
    Cluster.run_fiber c ~node:1 (fun () ->
        Txn_lib.execute_transaction (Node.tm n1) (fun tid ->
            Int_array_server.get arr tid 0))
  in
  Alcotest.(check int) "prepared update undone after Abort verdict" 0 v1

(* Checkpoints and reclamation ------------------------------------------ *)

let test_checkpoint_and_recover () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set arr tid 0 1);
      Node.checkpoint node;
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set arr tid 1 2));
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall_array holder) ()));
  let arr' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            (Int_array_server.get arr' tid 0, Int_array_server.get arr' tid 1)))
  in
  Alcotest.(check (pair int int)) "both updates survive" (1, 2) v

let test_log_reclamation () =
  let c = Cluster.create ~nodes:1 ~log_space_limit:4096 () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      for i = 0 to 63 do
        Txn_lib.execute_transaction tm (fun tid ->
            Int_array_server.set arr tid (i mod 16) i)
      done;
      (* the Transaction Manager's periodic checkpoint may already have
         reclaimed; the explicit call covers the remainder either way *)
      ignore (Tabs_recovery.Recovery_mgr.maybe_reclaim (Node.rm node)));
  Alcotest.(check bool) "log stays within its space limit" true
    (Tabs_wal.Log_manager.stable_bytes (Node.log node) <= 4096);
  (* The log is now short, and recovery still works. *)
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(reinstall_array holder) ()));
  let arr' = Option.get !holder in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Int_array_server.get arr' tid 15))
  in
  Alcotest.(check int) "state correct after reclamation + crash" 63 v

let test_distributed_deadlock_broken_by_timeout () =
  (* T1 (rooted at node 0) locks a0 then wants a1; T2 (rooted at node 1)
     locks a1 then wants a0. The waits-for cycle spans two nodes, where
     no local detector can see it — exactly why TABS "currently relies
     on time-outs". One of them must time out; afterwards both cells
     must be consistent (all-or-nothing per transaction). *)
  let c = make_cluster ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  ignore (make_array ~name:"a0" n0);
  ignore (make_array ~name:"a1" n1);
  let outcomes = ref [] in
  let run_t home ~first_dest ~second_dest v =
    Cluster.spawn c ~node:home (fun () ->
        let node = Cluster.node c home in
        let tm = Node.tm node and rpc = Node.rpc node in
        let tid = Txn_lib.begin_transaction tm () in
        match
          Int_array_server.call_set rpc ~dest:first_dest
            ~server:(Printf.sprintf "a%d" first_dest) tid 0 v;
          Engine.delay 50_000;
          Int_array_server.call_set rpc ~dest:second_dest
            ~server:(Printf.sprintf "a%d" second_dest) tid 0 v
        with
        | () ->
            let ok = Txn_lib.end_transaction tm tid in
            outcomes := (v, ok) :: !outcomes
        | exception Errors.Lock_timeout _ ->
            Txn_lib.abort_transaction tm tid;
            outcomes := (v, false) :: !outcomes)
  in
  run_t 0 ~first_dest:0 ~second_dest:1 111;
  run_t 1 ~first_dest:1 ~second_dest:0 222;
  Cluster.run_until c ~time:30_000_000;
  Alcotest.(check int) "both transactions concluded" 2 (List.length !outcomes);
  Alcotest.(check bool) "at least one was the deadlock victim" true
    (List.exists (fun (_, ok) -> not ok) !outcomes);
  (* whatever survived, the two cells tell one consistent story *)
  let v0, v1 =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction (Node.tm n0) (fun tid ->
            ( Int_array_server.call_get (Node.rpc n0) ~dest:0 ~server:"a0" tid 0,
              Int_array_server.call_get (Node.rpc n0) ~dest:1 ~server:"a1" tid 0 )))
  in
  ignore n1;
  let committed_vals =
    List.filter_map (fun (v, ok) -> if ok then Some v else None) !outcomes
  in
  let valid = function
    | 0 -> true
    | v -> List.mem v committed_vals
  in
  Alcotest.(check bool) "cells reflect only committed transactions" true
    (valid v0 && valid v1)

let test_server_vote_no_aborts_distributed_txn () =
  (* A data server may refuse to prepare; the whole distributed
     transaction must then abort everywhere. *)
  let c = make_cluster ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let a0 = make_array ~name:"a0" n0 in
  let _a1 = make_array ~name:"a1" n1 in
  (* a saboteur server on node 1 that joins the transaction and votes
     No at prepare time *)
  Tabs_tm.Txn_mgr.register_server (Node.tm n1) ~name:"saboteur"
    {
      Tabs_tm.Txn_mgr.on_prepare = (fun _ -> false);
      on_outcome = (fun _ _ -> ());
      on_subtxn_commit = (fun _ -> ());
      on_subtxn_abort = (fun _ -> ());
    };
  Tabs_core.Rpc.expose (Node.rpc n1) ~server:"saboteur" (fun ~tid ~op:_ ~arg:_ ->
      Tabs_tm.Txn_mgr.join (Node.tm n1) ~tid ~server:"saboteur";
      "");
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  let verdict =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        Int_array_server.set a0 tid 0 5;
        Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid 0 6;
        ignore (Tabs_core.Rpc.call rpc ~dest:1 ~server:"saboteur" ~tid ~op:"x" ~arg:"");
        Txn_lib.end_transaction tm tid)
  in
  Alcotest.(check bool) "commit refused by the No vote" false verdict;
  let v0, v1 =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            ( Int_array_server.get a0 tid 0,
              Int_array_server.call_get rpc ~dest:1 ~server:"a1" tid 0 )))
  in
  Alcotest.(check (pair int int)) "undone on both nodes" (0, 0) (v0, v1)

(* Subtransactions -------------------------------------------------------- *)

let test_subtxn_commit_with_parent () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Txn_lib.with_subtransaction tm tid (fun sub ->
                Int_array_server.set arr sub 0 21);
            (* parent can see and extend the subtransaction's work *)
            Int_array_server.set arr tid 1 22);
        Txn_lib.execute_transaction tm (fun tid ->
            (Int_array_server.get arr tid 0, Int_array_server.get arr tid 1)))
  in
  Alcotest.(check (pair int int)) "subtxn durable with parent" (21, 22) v

let test_subtxn_abort_independent () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Int_array_server.set arr tid 0 1;
            (try
               Txn_lib.with_subtransaction tm tid (fun sub ->
                   Int_array_server.set arr sub 1 99;
                   failwith "subtxn fails")
             with Failure _ -> ());
            Int_array_server.set arr tid 2 3);
        Txn_lib.execute_transaction tm (fun tid ->
            [
              Int_array_server.get arr tid 0;
              Int_array_server.get arr tid 1;
              Int_array_server.get arr tid 2;
            ]))
  in
  Alcotest.(check (list int)) "subtxn rolled back, parent survived"
    [ 1; 0; 3 ] v

let test_parent_abort_kills_subtxn_work () =
  let c = make_cluster () in
  let node = Cluster.node c 0 in
  let arr = make_array node in
  let tm = Node.tm node in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        Txn_lib.with_subtransaction tm tid (fun sub ->
            Int_array_server.set arr sub 0 123);
        Txn_lib.abort_transaction tm tid;
        Txn_lib.execute_transaction tm (fun tid2 ->
            Int_array_server.get arr tid2 0))
  in
  Alcotest.(check int) "subtxn work dies with parent" 0 v

let suites =
  [
    ( "integration.local",
      [
        quick "commit persists" test_commit_persists;
        quick "abort undoes" test_abort_undoes;
        quick "abort releases locks" test_abort_releases_locks;
        quick "isolation" test_isolation_between_txns;
        quick "out of range" test_out_of_range;
      ] );
    ( "integration.crash",
      [
        quick "committed survives" test_crash_preserves_committed;
        quick "uncommitted rolled back" test_crash_rolls_back_uncommitted;
        quick "unforced invisible" test_crash_before_force_loses_nothing_committed;
        quick "recovery idempotent" test_recovery_idempotent;
        quick "checkpoint" test_checkpoint_and_recover;
        quick "log reclamation" test_log_reclamation;
      ] );
    ( "integration.distributed",
      [
        quick "two-node commit" test_two_node_commit;
        quick "two-node abort" test_two_node_abort_undoes_remotely;
        quick "three-node commit" test_three_node_commit;
        quick "subordinate crash aborts" test_subordinate_crash_aborts;
        quick "in-doubt resolution" test_coordinator_crash_in_doubt_then_resolved;
        quick "prepared participant crash"
          test_prepared_participant_crash_and_resolution;
        quick "distributed deadlock" test_distributed_deadlock_broken_by_timeout;
        quick "server votes no" test_server_vote_no_aborts_distributed_txn;
      ] );
    ( "integration.subtxn",
      [
        quick "commit with parent" test_subtxn_commit_with_parent;
        quick "independent abort" test_subtxn_abort_independent;
        quick "parent abort wins" test_parent_abort_kills_subtxn_work;
      ] );
  ]
