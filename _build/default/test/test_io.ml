(* Tests for the I/O server: permanent but non-failure-atomic output,
   display styles driven by the state-object trick, input echo, and
   screen restoration after a crash. *)

open Tabs_sim
open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

let setup () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let io = Io_server.create (Node.env node) ~name:"io" ~segment:6 () in
  (c, node, io)

(* rendering demand-pages the content region, so it runs as a fiber of
   the display process *)
let lines_of c io a =
  Cluster.run_fiber c ~node:0 (fun () ->
      match List.assoc_opt a (Io_server.render io) with
      | Some lines -> lines
      | None -> [])

let test_committed_output_black () =
  let c, node, io = setup () in
  let tm = Node.tm node in
  let a =
    Cluster.run_fiber c ~node:0 (fun () ->
        let a = Io_server.obtain_io_area io in
        Txn_lib.execute_transaction tm (fun tid ->
            Io_server.writeln_to_area io tid a "deposit $35");
        a)
  in
  Alcotest.(check (list (pair bool string)))
    "committed output in black"
    [ (true, "deposit $35") ]
    (List.map
       (fun (style, text) -> (style = Io_server.Committed, text))
       (lines_of c io a))

let test_aborted_output_struck () =
  let c, node, io = setup () in
  let tm = Node.tm node in
  let a =
    Cluster.run_fiber c ~node:0 (fun () ->
        let a = Io_server.obtain_io_area io in
        let t = Txn_lib.begin_transaction tm () in
        Io_server.writeln_to_area io t a "withdraw $80";
        Txn_lib.abort_transaction tm t;
        a)
  in
  (* the output did NOT disappear — it is struck through *)
  Alcotest.(check (list (pair bool string)))
    "aborted output struck, still visible"
    [ (true, "withdraw $80") ]
    (List.map
       (fun (style, text) -> (style = Io_server.Aborted, text))
       (lines_of c io a))

let test_in_progress_gray () =
  let c, node, io = setup () in
  let tm = Node.tm node in
  let observed = ref [] in
  Cluster.spawn c ~node:0 (fun () ->
      let a = Io_server.obtain_io_area io in
      Txn_lib.execute_transaction tm (fun tid ->
          Io_server.writeln_to_area io tid a "thinking...";
          (* sample the display while the transaction is still open *)
          observed := (match List.assoc_opt a (Io_server.render io) with Some l -> l | None -> []);
          Engine.delay 10_000));
  Cluster.run c;
  Alcotest.(check (list (pair bool string)))
    "tentative output gray while in progress"
    [ (true, "thinking...") ]
    (List.map
       (fun (style, text) -> (style = Io_server.In_progress, text))
       !observed)

let test_input_echoed_bracketed () =
  let c, node, io = setup () in
  let tm = Node.tm node in
  let got = ref "" in
  let area = ref 0 in
  Cluster.spawn c ~node:0 (fun () ->
      let a = Io_server.obtain_io_area io in
      area := a;
      Txn_lib.execute_transaction tm (fun tid ->
          got := Io_server.read_line_from_area io tid a));
  Cluster.spawn c ~node:0 (fun () ->
      Engine.delay 50_000;
      Io_server.provide_input io 0 "100");
  Cluster.run c;
  Alcotest.(check string) "application got the line" "100" !got;
  match lines_of c io !area with
  | [ (_, echoed) ] ->
      Alcotest.(check string) "echo is bracketed" "[100]" echoed
  | other -> Alcotest.failf "unexpected lines: %d" (List.length other)

let test_screen_restored_after_crash () =
  (* The Figure 4-1 story: a committed deposit stays black; a withdrawal
     interrupted by a node failure ends up struck through after the
     screen is restored. *)
  let c, node, io = setup () in
  let tm = Node.tm node in
  let area = ref 0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      let a = Io_server.obtain_io_area io in
      area := a;
      Txn_lib.execute_transaction tm (fun tid ->
          Io_server.writeln_to_area io tid a "deposit $35 OK"));
  Cluster.spawn c ~node:0 (fun () ->
      let t = Txn_lib.begin_transaction tm () in
      Io_server.writeln_to_area io t !area "withdraw $80 ...";
      (* node fails mid-transaction *)
      Engine.delay 1_000_000);
  Cluster.run_until c ~time:2_000_000;
  Tabs_wal.Log_manager.force_all (Node.log node);
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(fun env ->
             holder := Some (Io_server.create env ~name:"io" ~segment:6 ())) ()));
  let io' = Option.get !holder in
  let styles =
    List.map (fun (style, text) -> (style, text)) (lines_of c io' !area)
  in
  Alcotest.(check int) "both lines restored" 2 (List.length styles);
  (match styles with
  | [ (s1, t1); (s2, t2) ] ->
      Alcotest.(check bool) "deposit black" true (s1 = Io_server.Committed);
      Alcotest.(check string) "deposit text" "deposit $35 OK" t1;
      Alcotest.(check bool) "withdrawal struck" true (s2 = Io_server.Aborted);
      Alcotest.(check string) "withdrawal text" "withdraw $80 ..." t2
  | _ -> Alcotest.fail "unexpected shape");
  (* render_text smoke test *)
  let text = Io_server.render_text io' in
  Alcotest.(check bool) "render contains struck line" true
    (String.length text > 0)

let test_write_partial_lines () =
  let c, node, io = setup () in
  let tm = Node.tm node in
  let a =
    Cluster.run_fiber c ~node:0 (fun () ->
        let a = Io_server.obtain_io_area io in
        Txn_lib.execute_transaction tm (fun tid ->
            Io_server.write_to_area io tid a "dep";
            Io_server.write_to_area io tid a "osit ";
            Io_server.writeln_to_area io tid a "$35");
        a)
  in
  Alcotest.(check (list string)) "partial writes join one line"
    [ "deposit $35" ]
    (List.map snd (lines_of c io a))

let test_read_char () =
  let c, node, io = setup () in
  let tm = Node.tm node in
  let got = ref [] in
  let area = ref 0 in
  Cluster.spawn c ~node:0 (fun () ->
      let a = Io_server.obtain_io_area io in
      area := a;
      Txn_lib.execute_transaction tm (fun tid ->
          let first = Io_server.read_char_from_area io tid a in
          let second = Io_server.read_char_from_area io tid a in
          got := [ first; second ]));
  Cluster.spawn c ~node:0 (fun () ->
      Engine.delay 50_000;
      Io_server.provide_input io 0 "yn");
  Cluster.run c;
  (match !got with
  | [ a; b ] -> Alcotest.(check (pair char char)) "chars in order" ('y', 'n') (a, b)
  | _ -> Alcotest.fail "expected two chars");
  Alcotest.(check int) "each echoed" 2 (List.length (lines_of c io !area))

let test_area_lifecycle () =
  let c, _, io = setup () in
  let count =
    Cluster.run_fiber c ~node:0 (fun () ->
        let a1 = Io_server.obtain_io_area io in
        let a2 = Io_server.obtain_io_area io in
        Io_server.destroy_io_area io a1;
        let a3 = Io_server.obtain_io_area io in
        (* freed area is reused *)
        ignore a2;
        if a3 = a1 then 1 else 0)
  in
  Alcotest.(check int) "area reuse" 1 count

let test_areas_exhausted () =
  let c, _, io = setup () in
  let raised =
    Cluster.run_fiber c ~node:0 (fun () ->
        for _ = 1 to Io_server.areas do
          ignore (Io_server.obtain_io_area io)
        done;
        try
          ignore (Io_server.obtain_io_area io);
          false
        with Errors.Server_error "NoFreeArea" -> true)
  in
  Alcotest.(check bool) "exhaustion detected" true raised

let suites =
  [
    ( "io_server",
      [
        quick "committed black" test_committed_output_black;
        quick "aborted struck" test_aborted_output_struck;
        quick "in-progress gray" test_in_progress_gray;
        quick "input bracketed" test_input_echoed_bracketed;
        quick "screen restored after crash" test_screen_restored_after_crash;
        quick "partial-line writes" test_write_partial_lines;
        quick "read_char" test_read_char;
        quick "area lifecycle" test_area_lifecycle;
        quick "areas exhausted" test_areas_exhausted;
      ] );
  ]
