(* Tests for the Name Server (registration, broadcast lookup, replicated
   names) and the RPC layer (local/remote calls, error propagation,
   timeouts, cost accounting). *)

open Tabs_sim
open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

(* Name server ------------------------------------------------------------- *)

let test_local_lookup () =
  let c = Cluster.create ~nodes:2 () in
  let ns0 = Node.ns (Cluster.node c 0) in
  Tabs_name.Name_server.register ns0 ~name:"printer" ~server:"spooler"
    ~object_id:"queue-1";
  let entries =
    Cluster.run_fiber c ~node:0 (fun () ->
        Tabs_name.Name_server.lookup ns0 ~name:"printer" ())
  in
  (match entries with
  | [ e ] ->
      Alcotest.(check string) "server" "spooler" e.Tabs_name.Name_server.server;
      Alcotest.(check int) "node" 0 e.Tabs_name.Name_server.node
  | _ -> Alcotest.fail "expected one entry");
  ()

let test_broadcast_lookup () =
  let c = Cluster.create ~nodes:3 () in
  let ns2 = Node.ns (Cluster.node c 2) in
  Tabs_name.Name_server.register ns2 ~name:"mail" ~server:"mailer"
    ~object_id:"inbox";
  (* node 0 does not know "mail"; its Name Server broadcasts *)
  let entries =
    Cluster.run_fiber c ~node:0 (fun () ->
        Tabs_name.Name_server.lookup (Node.ns (Cluster.node c 0)) ~name:"mail" ())
  in
  (match entries with
  | [ e ] -> Alcotest.(check int) "found on node 2" 2 e.Tabs_name.Name_server.node
  | other -> Alcotest.failf "expected one entry, got %d" (List.length other));
  ()

let test_lookup_multiple_replicas () =
  let c = Cluster.create ~nodes:3 () in
  List.iter
    (fun node ->
      Tabs_name.Name_server.register (Node.ns node) ~name:"dir"
        ~server:(Printf.sprintf "rep%d" (Node.id node))
        ~object_id:"root")
    (Cluster.nodes c);
  let entries =
    Cluster.run_fiber c ~node:0 (fun () ->
        Tabs_name.Name_server.lookup (Node.ns (Cluster.node c 0)) ~name:"dir"
          ~desired:3 ())
  in
  Alcotest.(check int) "all three replicas found" 3 (List.length entries)

let test_lookup_miss_times_out () =
  let c = Cluster.create ~nodes:2 () in
  let entries =
    Cluster.run_fiber c ~node:0 (fun () ->
        Tabs_name.Name_server.lookup (Node.ns (Cluster.node c 0))
          ~name:"no-such-name" ~max_wait:100_000 ())
  in
  Alcotest.(check int) "empty result" 0 (List.length entries)

let test_deregister () =
  let c = Cluster.create ~nodes:1 () in
  let ns = Node.ns (Cluster.node c 0) in
  Tabs_name.Name_server.register ns ~name:"x" ~server:"s" ~object_id:"o";
  Tabs_name.Name_server.deregister ns ~name:"x" ~server:"s";
  let entries =
    Cluster.run_fiber c ~node:0 (fun () ->
        Tabs_name.Name_server.lookup ns ~name:"x" ~max_wait:50_000 ())
  in
  Alcotest.(check int) "gone" 0 (List.length entries)

(* RPC ---------------------------------------------------------------------- *)

let test_rpc_local_cost () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let arr = Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells:8 () in
  ignore arr;
  let tm = Node.tm node in
  let engine = Cluster.engine c in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          let before = Metrics.count (Engine.metrics engine) Cost_model.Data_server_call in
          ignore (Int_array_server.call_get (Node.rpc node) ~dest:0 ~server:"a" tid 0);
          Alcotest.(check int) "one DSC charged" (before + 1)
            (Metrics.count (Engine.metrics engine) Cost_model.Data_server_call)))

let test_rpc_remote_cost () =
  let c = Cluster.create ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  ignore (Int_array_server.create (Node.env n1) ~name:"a1" ~segment:1 ~cells:8 ());
  let tm = Node.tm n0 in
  let engine = Cluster.engine c in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          let before =
            Metrics.count (Engine.metrics engine) Cost_model.Inter_node_data_server_call
          in
          ignore (Int_array_server.call_get (Node.rpc n0) ~dest:1 ~server:"a1" tid 0);
          Alcotest.(check int) "one inter-node call charged" (before + 1)
            (Metrics.count (Engine.metrics engine)
               Cost_model.Inter_node_data_server_call)))

let test_rpc_error_propagates () =
  let c = Cluster.create ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  ignore (Int_array_server.create (Node.env n1) ~name:"a1" ~segment:1 ~cells:8 ());
  let tm = Node.tm n0 in
  let got =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        let r =
          try
            ignore
              (Int_array_server.call_get (Node.rpc n0) ~dest:1 ~server:"a1" tid
                 9999);
            "no-error"
          with Errors.Server_error msg -> msg
        in
        Txn_lib.abort_transaction tm tid;
        r)
  in
  Alcotest.(check string) "server error crosses the wire" "IndexOutOfRange" got

let test_rpc_unknown_server () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let tm = Node.tm node in
  let got =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        let r =
          try
            ignore
              (Rpc.call (Node.rpc node) ~dest:0 ~server:"ghost" ~tid ~op:"x"
                 ~arg:"");
            "no-error"
          with Errors.Server_error _ -> "error"
        in
        Txn_lib.abort_transaction tm tid;
        r)
  in
  Alcotest.(check string) "unknown server reported" "error" got

let test_rpc_timeout_on_dead_node () =
  let c = Cluster.create ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  ignore (Int_array_server.create (Node.env n1) ~name:"a1" ~segment:1 ~cells:8 ());
  Node.crash n1;
  let tm = Node.tm n0 in
  Rpc.set_call_timeout (Node.rpc n0) 300_000;
  let timed_out =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        let r =
          try
            ignore
              (Int_array_server.call_get (Node.rpc n0) ~dest:1 ~server:"a1" tid 0);
            false
          with Rpc.Rpc_timeout _ -> true
        in
        Txn_lib.abort_transaction tm tid;
        r)
  in
  Alcotest.(check bool) "dead node times out" true timed_out

let test_rpc_aborted_txn_rejected () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let arr = Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells:8 () in
  ignore arr;
  let tm = Node.tm node in
  let rejected =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        Txn_lib.abort_transaction tm tid;
        try
          ignore (Int_array_server.call_get (Node.rpc node) ~dest:0 ~server:"a" tid 0);
          false
        with Errors.Transaction_is_aborted _ -> true)
  in
  Alcotest.(check bool) "TransactionIsAborted raised" true rejected

let suites =
  [
    ( "name_server",
      [
        quick "local lookup" test_local_lookup;
        quick "broadcast lookup" test_broadcast_lookup;
        quick "replicated names" test_lookup_multiple_replicas;
        quick "miss times out" test_lookup_miss_times_out;
        quick "deregister" test_deregister;
      ] );
    ( "rpc",
      [
        quick "local cost" test_rpc_local_cost;
        quick "remote cost" test_rpc_remote_cost;
        quick "error propagation" test_rpc_error_propagates;
        quick "unknown server" test_rpc_unknown_server;
        quick "timeout on dead node" test_rpc_timeout_on_dead_node;
        quick "aborted txn rejected" test_rpc_aborted_txn_rejected;
      ] );
  ]
