(* Tests for the weak queue server: semi-queue semantics, failure
   atomicity without serializability, tail recomputation after crash. *)

open Tabs_sim
open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

let setup ?(capacity = 16) () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let q =
    Weak_queue_server.create (Node.env node) ~name:"queue" ~segment:2
      ~capacity ()
  in
  (c, node, q)

let test_fifo_when_serial () =
  let c, node, q = setup () in
  let tm = Node.tm node in
  let out =
    Cluster.run_fiber c ~node:0 (fun () ->
        List.iter
          (fun v ->
            Txn_lib.execute_transaction tm (fun tid ->
                Weak_queue_server.enqueue q tid v))
          [ 10; 20; 30 ];
        List.init 3 (fun _ ->
            Txn_lib.execute_transaction tm (fun tid ->
                Weak_queue_server.dequeue q tid)))
  in
  (* serial transactions leave no locked/aborted gaps: order preserved *)
  Alcotest.(check (list int)) "serial use is FIFO" [ 10; 20; 30 ] out

let test_empty_raises () =
  let c, node, q = setup () in
  let tm = Node.tm node in
  let raised =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Weak_queue_server.is_queue_empty q tid
            &&
            try
              ignore (Weak_queue_server.dequeue q tid);
              false
            with Errors.Server_error "QueueEmpty" -> true))
  in
  Alcotest.(check bool) "empty detected and dequeue raises" true raised

let test_aborted_enqueue_leaves_gap () =
  let c, node, q = setup () in
  let tm = Node.tm node in
  let out =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Weak_queue_server.enqueue q tid 1);
        (let t2 = Txn_lib.begin_transaction tm () in
         Weak_queue_server.enqueue q t2 999;
         Txn_lib.abort_transaction tm t2);
        Txn_lib.execute_transaction tm (fun tid ->
            Weak_queue_server.enqueue q tid 3);
        List.init 2 (fun _ ->
            Txn_lib.execute_transaction tm (fun tid ->
                Weak_queue_server.dequeue q tid)))
  in
  Alcotest.(check (list int)) "aborted element skipped" [ 1; 3 ] out

let test_dequeue_skips_locked () =
  (* While one transaction holds the head element (uncommitted
     dequeue), another can dequeue the next element — the weak-queue
     concurrency the paper wanted. *)
  let c, node, q = setup () in
  let tm = Node.tm node in
  let second = ref 0 in
  Cluster.spawn c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Weak_queue_server.enqueue q tid 100);
      Txn_lib.execute_transaction tm (fun tid ->
          Weak_queue_server.enqueue q tid 200));
  Cluster.spawn c ~node:0 (fun () ->
      Engine.delay 400_000;
      Txn_lib.execute_transaction tm (fun tid ->
          ignore (Weak_queue_server.dequeue q tid);
          (* hold 100 locked while the other transaction runs *)
          Engine.delay 300_000));
  Cluster.spawn c ~node:0 (fun () ->
      Engine.delay 500_000;
      Txn_lib.execute_transaction tm (fun tid ->
          second := Weak_queue_server.dequeue q tid));
  Cluster.run c;
  Alcotest.(check int) "second txn got the second element" 200 !second

let test_aborted_dequeue_restores () =
  let c, node, q = setup () in
  let tm = Node.tm node in
  let out =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Weak_queue_server.enqueue q tid 42);
        (let t = Txn_lib.begin_transaction tm () in
         ignore (Weak_queue_server.dequeue q t);
         Txn_lib.abort_transaction tm t);
        Txn_lib.execute_transaction tm (fun tid ->
            Weak_queue_server.dequeue q tid))
  in
  Alcotest.(check int) "element restored after aborted dequeue" 42 out

let test_queue_full () =
  let c, node, q = setup ~capacity:4 () in
  let tm = Node.tm node in
  let raised =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            for i = 1 to 4 do
              Weak_queue_server.enqueue q tid i
            done;
            try
              Weak_queue_server.enqueue q tid 5;
              false
            with Errors.Server_error "QueueFull" -> true))
  in
  Alcotest.(check bool) "full detected" true raised

let test_garbage_collection_reuses_slots () =
  let c, node, q = setup ~capacity:4 () in
  let tm = Node.tm node in
  let ok =
    Cluster.run_fiber c ~node:0 (fun () ->
        (* cycle more elements than the capacity: only works if the head
           pointer advances (GC as a side effect of enqueue) *)
        for i = 1 to 12 do
          Txn_lib.execute_transaction tm (fun tid ->
              Weak_queue_server.enqueue q tid i);
          Txn_lib.execute_transaction tm (fun tid ->
              ignore (Weak_queue_server.dequeue q tid))
        done;
        true)
  in
  Alcotest.(check bool) "12 elements cycled through capacity 4" true ok

let test_tail_recomputed_after_crash () =
  let c, node, q = setup () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      List.iter
        (fun v ->
          Txn_lib.execute_transaction tm (fun tid ->
              Weak_queue_server.enqueue q tid v))
        [ 7; 8; 9 ];
      Txn_lib.execute_transaction tm (fun tid ->
          ignore (Weak_queue_server.dequeue q tid)));
  let old_tail = Weak_queue_server.tail q in
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node ~reinstall:(fun env ->
             holder :=
               Some
                 (Weak_queue_server.create env ~name:"queue" ~segment:2
                    ~capacity:16 ())) ()));
  let q' = Option.get !holder in
  (* the recomputation is lazy: any first operation triggers it *)
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Txn_lib.execute_transaction (Node.tm node) (fun tid ->
             Weak_queue_server.is_queue_empty q' tid)));
  Alcotest.(check int) "tail recomputed from InUse bits" old_tail
    (Weak_queue_server.tail q');
  let rest =
    Cluster.run_fiber c ~node:0 (fun () ->
        List.init 2 (fun _ ->
            Txn_lib.execute_transaction (Node.tm node) (fun tid ->
                Weak_queue_server.dequeue q' tid)))
  in
  Alcotest.(check (list int)) "remaining elements survive" [ 8; 9 ] rest

let test_concurrent_first_ops_no_clobber () =
  (* Regression: the lazy tail recomputation suspends on page faults; a
     concurrent first operation must not overwrite a reserved tail slot
     (this once lost the first enqueued element). *)
  let c, node, q = setup () in
  let tm = Node.tm node in
  let got = ref [] in
  (* producer and consumer both issue their first operation at t=0 *)
  Cluster.spawn c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Weak_queue_server.enqueue q tid 111);
      Txn_lib.execute_transaction tm (fun tid ->
          Weak_queue_server.enqueue q tid 222));
  Cluster.spawn c ~node:0 (fun () ->
      let rec poll tries =
        if tries > 0 then
          match
            Txn_lib.execute_transaction tm (fun tid ->
                Weak_queue_server.dequeue q tid)
          with
          | v ->
              got := v :: !got;
              poll (tries - 1)
          | exception Errors.Server_error "QueueEmpty" ->
              Engine.delay 30_000;
              poll (tries - 1)
      in
      poll 60);
  Cluster.run c;
  Alcotest.(check (list int))
    "both elements seen, none lost"
    [ 111; 222 ]
    (List.sort compare !got)

let test_wraparound_crash_recompute () =
  (* cycle through a small capacity several times so slots wrap, leave a
     couple of elements resident, crash, and check the recomputed tail
     still bounds exactly the live elements *)
  let c, node, q = setup ~capacity:4 () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      for i = 1 to 9 do
        Txn_lib.execute_transaction tm (fun tid ->
            Weak_queue_server.enqueue q tid i);
        if i <= 7 then
          Txn_lib.execute_transaction tm (fun tid ->
              ignore (Weak_queue_server.dequeue q tid))
      done);
  (* elements 8 and 9 are live, in wrapped slots *)
  Node.crash node;
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart node
           ~reinstall:(fun env ->
             holder :=
               Some
                 (Weak_queue_server.create env ~name:"queue" ~segment:2
                    ~capacity:4 ()))
           ()));
  let q' = Option.get !holder in
  let survivors =
    Cluster.run_fiber c ~node:0 (fun () ->
        let rec drain acc =
          match
            Txn_lib.execute_transaction (Node.tm node) (fun tid ->
                Weak_queue_server.dequeue q' tid)
          with
          | v -> drain (v :: acc)
          | exception Errors.Server_error "QueueEmpty" -> List.rev acc
        in
        drain [])
  in
  Alcotest.(check (list int)) "wrapped live elements recovered" [ 8; 9 ]
    survivors

let prop_no_loss_no_dup =
  QCheck.Test.make ~name:"queue neither loses nor duplicates" ~count:30
    QCheck.(list (int_range 0 2))
    (fun script ->
      (* script: 0 = enqueue fresh value; 1 = dequeue (commit);
         2 = dequeue then abort. Committed dequeues must be a
         permutation of a subset of committed enqueues, with
         everything else still in the queue. *)
      let c, node, q = setup ~capacity:64 () in
      let tm = Node.tm node in
      let next = ref 0 in
      let enqueued = ref [] and dequeued = ref [] in
      Cluster.run_fiber c ~node:0 (fun () ->
          List.iter
            (fun action ->
              match action with
              | 0 -> (
                  incr next;
                  let v = !next in
                  match
                    Txn_lib.execute_transaction tm (fun tid ->
                        Weak_queue_server.enqueue q tid v)
                  with
                  | () -> enqueued := v :: !enqueued
                  | exception Errors.Server_error "QueueFull" -> ())
              | 1 -> (
                  try
                    let v =
                      Txn_lib.execute_transaction tm (fun tid ->
                          Weak_queue_server.dequeue q tid)
                    in
                    dequeued := v :: !dequeued
                  with Errors.Server_error "QueueEmpty" -> ())
              | _ -> (
                  let t = Txn_lib.begin_transaction tm () in
                  (try ignore (Weak_queue_server.dequeue q t)
                   with Errors.Server_error "QueueEmpty" -> ());
                  Txn_lib.abort_transaction tm t))
            script;
          (* drain what remains *)
          let rec drain acc =
            match
              Txn_lib.execute_transaction tm (fun tid ->
                  Weak_queue_server.dequeue q tid)
            with
            | v -> drain (v :: acc)
            | exception Errors.Server_error "QueueEmpty" -> acc
          in
          let remaining = drain [] in
          let seen = List.sort compare (!dequeued @ remaining) in
          seen = List.sort compare !enqueued))

let suites =
  [
    ( "queue",
      [
        quick "serial fifo" test_fifo_when_serial;
        quick "empty" test_empty_raises;
        quick "aborted enqueue gap" test_aborted_enqueue_leaves_gap;
        quick "dequeue skips locked" test_dequeue_skips_locked;
        quick "aborted dequeue restores" test_aborted_dequeue_restores;
        quick "queue full" test_queue_full;
        quick "gc reuses slots" test_garbage_collection_reuses_slots;
        quick "tail recomputed after crash" test_tail_recomputed_after_crash;
        quick "concurrent first ops" test_concurrent_first_ops_no_clobber;
        quick "wraparound + crash" test_wraparound_crash_recompute;
        QCheck_alcotest.to_alcotest prop_no_loss_no_dup;
      ] );
  ]
