(* Tests for the replicated directory object: weighted-voting quorums,
   multi-node atomic update via distributed commit, availability with a
   dead representative, and recovery of a stale representative. *)

open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

(* three nodes, one single-vote representative per node, r = w = 2 *)
let setup () =
  let c = Cluster.create ~nodes:3 () in
  let reps =
    List.map
      (fun node ->
        let name = Printf.sprintf "rep%d" (Node.id node) in
        let bt =
          Btree_server.create (Node.env node) ~name ~segment:5 ()
        in
        (node, name, bt))
      (Cluster.nodes c)
  in
  let replicas =
    List.map
      (fun (node, name, _) ->
        { Replicated_directory.node = Node.id node; server = name; votes = 1 })
      reps
  in
  let dir =
    Replicated_directory.create ~rpc:(Node.rpc (Cluster.node c 0)) ~replicas
      ~read_quorum:2 ~write_quorum:2
  in
  (c, reps, dir)

let test_quorum_validation () =
  let replicas =
    [ { Replicated_directory.node = 0; server = "a"; votes = 1 };
      { Replicated_directory.node = 1; server = "b"; votes = 1 };
      { Replicated_directory.node = 2; server = "c"; votes = 1 } ]
  in
  let c = Cluster.create ~nodes:1 () in
  let rpc = Node.rpc (Cluster.node c 0) in
  Alcotest.check_raises "r+w too small"
    (Invalid_argument "Replicated_directory: r + w must exceed the vote total")
    (fun () ->
      ignore
        (Replicated_directory.create ~rpc ~replicas ~read_quorum:1
           ~write_quorum:2));
  Alcotest.check_raises "w not majority"
    (Invalid_argument "Replicated_directory: w must be a majority")
    (fun () ->
      ignore
        (Replicated_directory.create ~rpc ~replicas ~read_quorum:3
           ~write_quorum:1))

let test_update_lookup () =
  let c, _, dir = setup () in
  let tm = Node.tm (Cluster.node c 0) in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.update dir tid ~key:"host" ~value:"perq1");
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.lookup dir tid ~key:"host"))
  in
  Alcotest.(check (option string)) "replicated write read back" (Some "perq1") v

let test_versions_advance () =
  let c, _, dir = setup () in
  let tm = Node.tm (Cluster.node c 0) in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.update dir tid ~key:"k" ~value:"v1");
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.update dir tid ~key:"k" ~value:"v2");
        Txn_lib.execute_transaction tm (fun tid ->
            ( Replicated_directory.entry_version dir tid ~key:"k",
              Replicated_directory.lookup dir tid ~key:"k" )))
  in
  Alcotest.(check (pair int (option string))) "version 2 wins" (2, Some "v2") v

let test_remove () =
  let c, _, dir = setup () in
  let tm = Node.tm (Cluster.node c 0) in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.update dir tid ~key:"gone" ~value:"x");
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.remove dir tid ~key:"gone");
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.lookup dir tid ~key:"gone"))
  in
  Alcotest.(check (option string)) "tombstone hides entry" None v

let test_available_with_node_down () =
  (* "Our tests so far involve 3 nodes, which permits one node to fail
     and have the data remain available." *)
  let c, _, dir = setup () in
  let tm = Node.tm (Cluster.node c 0) in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Replicated_directory.update dir tid ~key:"svc" ~value:"before"));
  Node.crash (Cluster.node c 2);
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.update dir tid ~key:"svc" ~value:"after");
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.lookup dir tid ~key:"svc"))
  in
  Alcotest.(check (option string)) "write and read with a node down"
    (Some "after") v

let test_stale_replica_outvoted () =
  (* Node 2 misses an update while down; after it returns, the read
     quorum still surfaces the newest version because any two
     representatives include an up-to-date one. *)
  let c, _, dir = setup () in
  let n2 = Cluster.node c 2 in
  let tm = Node.tm (Cluster.node c 0) in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Replicated_directory.update dir tid ~key:"cfg" ~value:"v1"));
  Node.crash n2;
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Replicated_directory.update dir tid ~key:"cfg" ~value:"v2"));
  ignore
    (Cluster.run_fiber c ~node:2 (fun () ->
         Node.restart n2 ~reinstall:(fun env ->
             ignore (Btree_server.create env ~name:"rep2" ~segment:5 ())) ()));
  (* read via a directory handle whose replica order starts with the
     stale representative *)
  let dir_from_2 =
    Replicated_directory.create ~rpc:(Node.rpc (Cluster.node c 0))
      ~replicas:
        [ { Replicated_directory.node = 2; server = "rep2"; votes = 1 };
          { Replicated_directory.node = 0; server = "rep0"; votes = 1 };
          { Replicated_directory.node = 1; server = "rep1"; votes = 1 } ]
      ~read_quorum:2 ~write_quorum:2
  in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.lookup dir_from_2 tid ~key:"cfg"))
  in
  Alcotest.(check (option string)) "stale copy outvoted" (Some "v2") v

let test_no_quorum_aborts () =
  let c, reps, dir = setup () in
  let tm = Node.tm (Cluster.node c 0) in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Replicated_directory.update dir tid ~key:"x" ~value:"ok"));
  Node.crash (Cluster.node c 1);
  Node.crash (Cluster.node c 2);
  let raised =
    Cluster.run_fiber c ~node:0 (fun () ->
        try
          Txn_lib.execute_transaction tm (fun tid ->
              Replicated_directory.update dir tid ~key:"x" ~value:"bad");
          false
        with Errors.Server_error "NoQuorum" -> true)
  in
  Alcotest.(check bool) "update without quorum aborts" true raised;
  (* the aborted attempt must not have touched the surviving copy *)
  let _, _, bt0 = List.hd reps in
  let local =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Btree_server.lookup bt0 tid ~key:"x"))
  in
  (match local with
  | Some encoded ->
      Alcotest.(check bool) "old payload intact" true
        (String.length encoded > 9
        && String.sub encoded 9 (String.length encoded - 9) = "ok")
  | None -> Alcotest.fail "entry vanished");
  ()

let suites =
  [
    ( "replicated_directory",
      [
        quick "quorum validation" test_quorum_validation;
        quick "update/lookup" test_update_lookup;
        quick "versions advance" test_versions_advance;
        quick "remove" test_remove;
        quick "available with node down" test_available_with_node_down;
        quick "stale replica outvoted" test_stale_replica_outvoted;
        quick "no quorum aborts" test_no_quorum_aborts;
      ] );
  ]
