(* Tests for the Table 3-1 server library itself: the marked-object
   batch (LockAndMark / PinAndBufferMarkedObjects /
   LogAndUnPinMarkedObjects), ExecuteTransaction, pinning discipline,
   and in-doubt relocking. *)

open Tabs_lock
open Tabs_core

let quick name f = Alcotest.test_case name `Quick f

let setup () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let server =
    Server_lib.create (Node.env node) ~name:"raw" ~segment:7 ~pages:16 ()
  in
  (c, node, server)

let test_marked_batch () =
  (* the B-tree retrofit pattern: set all locks first, then pin and
     buffer everything, modify, and log the whole batch *)
  let c, node, server = setup () in
  let tm = Node.tm node in
  let o1 = Server_lib.create_object_id server ~offset:0 ~length:8 in
  let o2 = Server_lib.create_object_id server ~offset:600 ~length:8 in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Server_lib.enter_operation server tid;
            Server_lib.lock_and_mark server tid o1 Mode.Write;
            Server_lib.lock_and_mark server tid o2 Mode.Write;
            (* marking twice is idempotent *)
            Server_lib.lock_and_mark server tid o1 Mode.Write;
            Server_lib.pin_and_buffer_marked_objects server tid;
            Server_lib.write_object server o1 "11111111";
            Server_lib.write_object server o2 "22222222";
            Server_lib.log_and_unpin_marked_objects server tid);
        Txn_lib.execute_transaction tm (fun tid ->
            Server_lib.enter_operation server tid;
            ( Server_lib.read_object server o1,
              Server_lib.read_object server o2 )))
  in
  Alcotest.(check (pair string string)) "batch applied" ("11111111", "22222222") v

let test_marked_batch_abort () =
  let c, node, server = setup () in
  let tm = Node.tm node in
  let o1 = Server_lib.create_object_id server ~offset:0 ~length:8 in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Server_lib.enter_operation server tid;
            Server_lib.lock_and_mark server tid o1 Mode.Write;
            Server_lib.pin_and_buffer_marked_objects server tid;
            Server_lib.write_object server o1 "baseline";
            Server_lib.log_and_unpin_marked_objects server tid);
        (let t = Txn_lib.begin_transaction tm () in
         Server_lib.enter_operation server t;
         Server_lib.lock_and_mark server t o1 Mode.Write;
         Server_lib.pin_and_buffer_marked_objects server t;
         Server_lib.write_object server o1 "doomed!!";
         Server_lib.log_and_unpin_marked_objects server t;
         Txn_lib.abort_transaction tm t);
        Txn_lib.execute_transaction tm (fun tid ->
            Server_lib.enter_operation server tid;
            Server_lib.read_object server o1))
  in
  Alcotest.(check string) "batch rolled back" "baseline" v

let test_log_without_buffer_rejected () =
  let c, node, server = setup () in
  let tm = Node.tm node in
  let o = Server_lib.create_object_id server ~offset:0 ~length:8 in
  let raised =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        Server_lib.enter_operation server tid;
        let r =
          try
            Server_lib.log_and_unpin server tid o;
            false
          with Invalid_argument _ -> true
        in
        Txn_lib.abort_transaction tm tid;
        r)
  in
  Alcotest.(check bool) "log_and_unpin without pin_and_buffer" true raised

let test_unpin_all () =
  let c, node, server = setup () in
  let tm = Node.tm node in
  let o = Server_lib.create_object_id server ~offset:0 ~length:8 in
  Cluster.run_fiber c ~node:0 (fun () ->
      let tid = Txn_lib.begin_transaction tm () in
      Server_lib.enter_operation server tid;
      Server_lib.pin_object server o;
      Server_lib.pin_object server o;
      Alcotest.(check int) "pinned" 1 (Tabs_accent.Vm.pinned (Node.vm node));
      Server_lib.unpin_all_objects server;
      Alcotest.(check int) "all released" 0 (Tabs_accent.Vm.pinned (Node.vm node));
      Txn_lib.abort_transaction tm tid)

let test_execute_transaction_commits () =
  let c, _node, server = setup () in
  let o = Server_lib.create_object_id server ~offset:0 ~length:8 in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        let r =
          Server_lib.execute_transaction server (fun tid ->
              Server_lib.lock_object server tid o Mode.Write;
              Server_lib.pin_and_buffer server tid o;
              Server_lib.write_object server o "selfdone";
              Server_lib.log_and_unpin server tid o;
              "result")
        in
        (r, Server_lib.read_object server o))
  in
  Alcotest.(check (pair string string)) "server-owned txn" ("result", "selfdone") v

let test_execute_transaction_aborts_on_raise () =
  let c, _node, server = setup () in
  let o = Server_lib.create_object_id server ~offset:0 ~length:8 in
  let v =
    Cluster.run_fiber c ~node:0 (fun () ->
        (try
           Server_lib.execute_transaction server (fun tid ->
               Server_lib.lock_object server tid o Mode.Write;
               Server_lib.pin_and_buffer server tid o;
               Server_lib.write_object server o "leaking!";
               Server_lib.log_and_unpin server tid o;
               failwith "boom")
         with Failure _ -> ());
        Server_lib.read_object server o)
  in
  Alcotest.(check string) "aborted server txn undone" (String.make 8 '\000') v

let test_relock_in_doubt () =
  let c, node, server = setup () in
  let tm = Node.tm node in
  let o = Server_lib.create_object_id server ~offset:0 ~length:8 in
  let tid = Tabs_wal.Tid.top ~node:9 ~seq:1 in
  Cluster.run_fiber c ~node:0 (fun () ->
      Server_lib.relock_in_doubt server [ (tid, o) ]);
  (* the object is now inaccessible to other transactions *)
  let blocked =
    Cluster.run_fiber c ~node:0 (fun () ->
        let t = Txn_lib.begin_transaction tm () in
        Server_lib.enter_operation server t;
        let r =
          try
            Server_lib.lock_object server t o Mode.Read;
            false
          with Errors.Lock_timeout _ -> true
        in
        Txn_lib.abort_transaction tm t;
        r)
  in
  Alcotest.(check bool) "in-doubt data blocked" true blocked

let test_relock_ignores_other_segments () =
  let c, _, server = setup () in
  let foreign = Tabs_wal.Object_id.make ~segment:99 ~offset:0 ~length:8 in
  let tid = Tabs_wal.Tid.top ~node:9 ~seq:1 in
  (* must not raise, must not lock anything *)
  Cluster.run_fiber c ~node:0 (fun () ->
      Server_lib.relock_in_doubt server [ (tid, foreign) ]);
  Alcotest.(check bool) "foreign segment ignored" false
    (Server_lib.is_object_locked server
       (Server_lib.create_object_id server ~offset:0 ~length:8))

let suites =
  [
    ( "server_lib",
      [
        quick "marked batch" test_marked_batch;
        quick "marked batch abort" test_marked_batch_abort;
        quick "log without buffer rejected" test_log_without_buffer_rejected;
        quick "unpin all" test_unpin_all;
        quick "execute_transaction commits" test_execute_transaction_commits;
        quick "execute_transaction aborts" test_execute_transaction_aborts_on_raise;
        quick "relock in doubt" test_relock_in_doubt;
        quick "relock foreign segment" test_relock_ignores_other_segments;
      ] );
  ]
