(* Tests for pages, the disk model, and stable storage. *)

open Tabs_sim
open Tabs_storage

let quick name f = Alcotest.test_case name `Quick f

let in_fiber f =
  let e = Engine.create () in
  let result = ref None in
  let _ = Engine.spawn e (fun () -> result := Some (f e)) in
  let _ = Engine.run e in
  match !result with Some v -> v | None -> Alcotest.fail "fiber did not finish"

let test_page_roundtrip () =
  let p = Page.zero () in
  Page.blit_string "hello" p ~off:100;
  Alcotest.(check string) "read back" "hello" (Page.sub p ~off:100 ~len:5);
  Page.set_int p ~off:8 123456789;
  Alcotest.(check int) "int roundtrip" 123456789 (Page.get_int p ~off:8)

let test_page_bounds () =
  let p = Page.zero () in
  Alcotest.check_raises "overflow write"
    (Invalid_argument "Page.blit_string: out of page bounds") (fun () ->
      Page.blit_string "xy" p ~off:511)

let test_disk_persistence () =
  in_fiber (fun e ->
      let d = Disk.create e in
      Disk.ensure_segment d 1 ~pages:4;
      let page = Page.zero () in
      Page.blit_string "data" page ~off:0;
      Disk.write d { segment = 1; page = 2 } page ~seqno:7;
      let back = Disk.read d { segment = 1; page = 2 } ~access:`Random in
      Alcotest.(check string) "contents" "data" (Page.sub back ~off:0 ~len:4);
      Alcotest.(check int) "seqno stored" 7 (Disk.seqno d { segment = 1; page = 2 }))

let test_disk_costs () =
  let e = Engine.create () in
  let _ =
    Engine.spawn e (fun () ->
        let d = Disk.create e in
        Disk.ensure_segment d 1 ~pages:2;
        ignore (Disk.read d { segment = 1; page = 0 } ~access:`Random);
        ignore (Disk.read d { segment = 1; page = 1 } ~access:`Sequential))
  in
  let _ = Engine.run e in
  Alcotest.(check int) "random (32ms) + sequential (16ms)" 48_000 (Engine.now e)

let test_disk_grow_preserves () =
  in_fiber (fun e ->
      let d = Disk.create e in
      Disk.ensure_segment d 9 ~pages:2;
      let page = Page.zero () in
      Page.blit_string "keep" page ~off:0;
      Disk.write_nocharge d { segment = 9; page = 1 } page ~seqno:3;
      Disk.ensure_segment d 9 ~pages:10;
      Alcotest.(check int) "grown" 10 (Disk.segment_pages d 9);
      let back = Disk.read_nocharge d { segment = 9; page = 1 } in
      Alcotest.(check string) "data kept" "keep" (Page.sub back ~off:0 ~len:4))

let test_disk_bounds () =
  in_fiber (fun e ->
      let d = Disk.create e in
      Disk.ensure_segment d 1 ~pages:2;
      Alcotest.check_raises "out of bounds"
        (Invalid_argument "Disk: page out of segment bounds") (fun () ->
          ignore (Disk.read_nocharge d { segment = 1; page = 5 })))

let test_stable_append_read () =
  let s = Stable.create () in
  let p0 = Stable.append s "alpha" in
  let p1 = Stable.append s "beta" in
  Alcotest.(check int) "positions dense" (p0 + 1) p1;
  Alcotest.(check string) "read back" "alpha" (Stable.read s p0);
  Alcotest.(check int) "bytes" 9 (Stable.total_bytes s)

let test_stable_truncate () =
  let s = Stable.create () in
  let ps = List.init 10 (fun i -> Stable.append s (Printf.sprintf "r%d" i)) in
  Stable.truncate_prefix s ~keep_from:5;
  Alcotest.(check int) "first" 5 (Stable.first s);
  Alcotest.(check string) "live record" "r5" (Stable.read s (List.nth ps 5));
  Alcotest.check_raises "truncated gone" Not_found (fun () ->
      ignore (Stable.read s 4));
  let p = Stable.append s "more" in
  Alcotest.(check int) "positions continue" 10 p

let prop_stable_roundtrip =
  QCheck.Test.make ~name:"stable append/read roundtrip" ~count:100
    QCheck.(list string)
    (fun records ->
      let s = Stable.create () in
      let positions = List.map (Stable.append s) records in
      List.for_all2 (fun p r -> Stable.read s p = r) positions records)

let suites =
  [
    ( "storage.page",
      [ quick "roundtrip" test_page_roundtrip; quick "bounds" test_page_bounds ]
    );
    ( "storage.disk",
      [
        quick "persistence" test_disk_persistence;
        quick "io costs" test_disk_costs;
        quick "grow preserves" test_disk_grow_preserves;
        quick "bounds" test_disk_bounds;
      ] );
    ( "storage.stable",
      [
        quick "append/read" test_stable_append_read;
        quick "truncate" test_stable_truncate;
        QCheck_alcotest.to_alcotest prop_stable_roundtrip;
      ] );
  ]
