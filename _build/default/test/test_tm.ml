(* Transaction Manager-focused tests: the read-only optimization, the
   presumed-abort status protocol, active-transaction reporting, and
   commit/abort idempotence. *)

open Tabs_sim
open Tabs_core
open Tabs_tm
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

let two_nodes ?read_only_optimization () =
  let c = Cluster.create ?read_only_optimization ~nodes:2 () in
  List.iter
    (fun node ->
      ignore
        (Int_array_server.create (Node.env node)
           ~name:(Printf.sprintf "a%d" (Node.id node))
           ~segment:1 ~cells:64 ()))
    (Cluster.nodes c);
  c

let ro_txn c =
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          ignore (Int_array_server.call_get rpc ~dest:0 ~server:"a0" tid 0);
          ignore (Int_array_server.call_get rpc ~dest:1 ~server:"a1" tid 0)))

let test_ro_commit_no_force () =
  let c = two_nodes () in
  let engine = Cluster.engine c in
  ro_txn c;
  Alcotest.(check int) "read-only distributed commit forces nothing" 0
    (Metrics.count (Engine.metrics engine) Cost_model.Stable_storage_write);
  Alcotest.(check int) "two datagrams: prepare + read-only vote" 2
    (Metrics.count (Engine.metrics engine) Cost_model.Datagram)

let test_ro_disabled_full_protocol () =
  let c = two_nodes ~read_only_optimization:false () in
  let engine = Cluster.engine c in
  ro_txn c;
  Alcotest.(check int) "full 2PC forces twice" 2
    (Metrics.count (Engine.metrics engine) Cost_model.Stable_storage_write);
  Alcotest.(check int) "four datagrams" 4
    (Metrics.count (Engine.metrics engine) Cost_model.Datagram)

let test_local_ro_commit_no_force () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let arr = Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells:8 () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          ignore (Int_array_server.get arr tid 0)));
  Alcotest.(check int) "local read-only commit writes no log" 0
    (Metrics.count (Engine.metrics (Cluster.engine c))
       Cost_model.Stable_storage_write)

let test_status_query_presumed_abort () =
  (* a coordinator with no memory of a transaction answers Aborted *)
  let c = two_nodes () in
  let n1 = Cluster.node c 1 in
  let unknown = Tabs_wal.Tid.top ~node:0 ~seq:999 in
  (* simulate a stranded participant on node 1 asking node 0 *)
  let outcome = ref None in
  Tabs_net.Comm_mgr.add_datagram_handler (Node.cm n1) (fun ~src:_ payload ->
      match payload with
      | Txn_mgr.Tm_status_reply (tid, o) when Tabs_wal.Tid.equal tid unknown ->
          outcome := Some o
      | _ -> ());
  Cluster.run_fiber c ~node:1 (fun () ->
      Tabs_net.Comm_mgr.send_datagram (Node.cm n1) ~dest:0
        (Txn_mgr.Tm_status_query unknown);
      Engine.delay 200_000);
  Alcotest.(check bool) "presumed abort" true (!outcome = Some Txn_mgr.Aborted)

let test_active_txns_reported () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let arr = Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells:8 () in
  let tm = Node.tm node in
  Cluster.spawn c ~node:0 (fun () ->
      let tid = Txn_lib.begin_transaction tm () in
      Int_array_server.set arr tid 0 1;
      Alcotest.(check int) "one active txn at checkpoint time" 1
        (List.length (Txn_mgr.active_txns tm));
      Txn_lib.abort_transaction tm tid;
      Alcotest.(check int) "none after abort" 0
        (List.length (Txn_mgr.active_txns tm)));
  Cluster.run c

let test_commit_after_abort_refused () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let arr = Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells:8 () in
  let tm = Node.tm node in
  let result =
    Cluster.run_fiber c ~node:0 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        Int_array_server.set arr tid 0 1;
        Txn_lib.abort_transaction tm tid;
        Txn_lib.end_transaction tm tid)
  in
  Alcotest.(check bool) "commit of aborted txn fails" false result

let test_unique_tids () =
  let c = Cluster.create ~nodes:2 () in
  let tids =
    List.concat_map
      (fun node ->
        Cluster.run_fiber c ~node:(Node.id node) (fun () ->
            List.init 5 (fun _ ->
                let tid = Txn_lib.begin_transaction (Node.tm node) () in
                Txn_lib.abort_transaction (Node.tm node) tid;
                tid)))
      (Cluster.nodes c)
  in
  let unique = List.sort_uniq Tabs_wal.Tid.compare tids in
  Alcotest.(check int) "globally unique" (List.length tids) (List.length unique)

let suites =
  [
    ( "tm",
      [
        quick "RO commit no force" test_ro_commit_no_force;
        quick "RO disabled" test_ro_disabled_full_protocol;
        quick "local RO no force" test_local_ro_commit_no_force;
        quick "presumed abort" test_status_query_presumed_abort;
        quick "active txns" test_active_txns_reported;
        quick "commit after abort" test_commit_after_abort_refused;
        quick "unique tids" test_unique_tids;
      ] );
  ]
