(* Ablation benchmarks for the design choices DESIGN.md calls out:

   1. Value vs operation logging — the empirical comparison the paper
      lists as future work ("we plan to empirically compare the relative
      merits of value and operation logging"). Same workload (N updates
      per transaction) against the value-logged integer array and the
      operation-logged account server; we report latency, log bytes, and
      crash-recovery cost.

   2. The read-only commit optimization — two-node read-only
      transactions with and without the Read_only vote short-circuit.

   3. Group commit — the log force batches every record of a
      transaction into one stable write; forcing after every record
      shows what the grouping buys. *)

open Tabs_sim
open Tabs_core
open Tabs_servers

let txns = 20

let updates_per_txn = 5

(* 1. value vs operation logging ----------------------------------------- *)

type logging_result = {
  elapsed_ms : float;
  log_bytes_per_txn : float;
  records_per_txn : float;
  recovery_ms : float;
  recovery_records : int;
}

let run_value_logging () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let arr =
    Int_array_server.create (Node.env node) ~name:"varr" ~segment:1 ~cells:1024 ()
  in
  let tm = Node.tm node in
  let engine = Cluster.engine c in
  let t0 = Engine.now engine in
  Cluster.run_fiber c ~node:0 (fun () ->
      for i = 1 to txns do
        Txn_lib.execute_transaction tm (fun tid ->
            for u = 0 to updates_per_txn - 1 do
              Int_array_server.set arr tid (u * 64) i
            done)
      done);
  let elapsed = Engine.now engine - t0 in
  let log = Node.log node in
  let bytes = Tabs_wal.Log_manager.stable_bytes log in
  let records = Tabs_wal.Log_manager.next_lsn log in
  Node.crash node;
  let r0 = Engine.now engine in
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node ~reinstall:(fun env ->
            ignore
              (Int_array_server.create env ~name:"varr" ~segment:1 ~cells:1024 ())) ())
  in
  let recovery = Engine.now engine - r0 in
  {
    elapsed_ms = float_of_int elapsed /. 1000. /. float_of_int txns;
    log_bytes_per_txn = float_of_int bytes /. float_of_int txns;
    records_per_txn = float_of_int records /. float_of_int txns;
    recovery_ms = float_of_int recovery /. 1000.;
    recovery_records = outcome.records_scanned;
  }

let run_operation_logging () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let acc =
    Account_server.create (Node.env node) ~name:"oacc" ~segment:3 ~accounts:1024 ()
  in
  let tm = Node.tm node in
  let engine = Cluster.engine c in
  let t0 = Engine.now engine in
  Cluster.run_fiber c ~node:0 (fun () ->
      for _ = 1 to txns do
        Txn_lib.execute_transaction tm (fun tid ->
            for u = 0 to updates_per_txn - 1 do
              Account_server.deposit acc tid (u * 64) 1
            done)
      done);
  let elapsed = Engine.now engine - t0 in
  let log = Node.log node in
  let bytes = Tabs_wal.Log_manager.stable_bytes log in
  let records = Tabs_wal.Log_manager.next_lsn log in
  Node.crash node;
  let r0 = Engine.now engine in
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node ~reinstall:(fun env ->
            ignore
              (Account_server.create env ~name:"oacc" ~segment:3 ~accounts:1024 ())) ())
  in
  let recovery = Engine.now engine - r0 in
  {
    elapsed_ms = float_of_int elapsed /. 1000. /. float_of_int txns;
    log_bytes_per_txn = float_of_int bytes /. float_of_int txns;
    records_per_txn = float_of_int records /. float_of_int txns;
    recovery_ms = float_of_int recovery /. 1000.;
    recovery_records = outcome.records_scanned;
  }

(* the B-tree value-logs whole 512-byte page images per modified page:
   the case where operation logging's compact records pay off *)
let run_btree_value_logging () =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let bt = Btree_server.create (Node.env node) ~name:"vbt" ~segment:4 () in
  let tm = Node.tm node in
  let engine = Cluster.engine c in
  let t0 = Engine.now engine in
  Cluster.run_fiber c ~node:0 (fun () ->
      for i = 1 to txns do
        Txn_lib.execute_transaction tm (fun tid ->
            for u = 0 to updates_per_txn - 1 do
              Btree_server.insert bt tid
                ~key:(Printf.sprintf "k%03d-%d" i u)
                ~value:"v"
            done)
      done);
  let elapsed = Engine.now engine - t0 in
  let log = Node.log node in
  let bytes = Tabs_wal.Log_manager.stable_bytes log in
  let records = Tabs_wal.Log_manager.next_lsn log in
  Node.crash node;
  let r0 = Engine.now engine in
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node ~reinstall:(fun env ->
            ignore (Btree_server.create env ~name:"vbt" ~segment:4 ())) ())
  in
  let recovery = Engine.now engine - r0 in
  {
    elapsed_ms = float_of_int elapsed /. 1000. /. float_of_int txns;
    log_bytes_per_txn = float_of_int bytes /. float_of_int txns;
    records_per_txn = float_of_int records /. float_of_int txns;
    recovery_ms = float_of_int recovery /. 1000.;
    recovery_records = outcome.records_scanned;
  }

let print_logging_comparison () =
  Printf.printf
    "\nAblation 1: value vs operation logging (%d txns x %d updates)\n" txns
    updates_per_txn;
  Printf.printf "%s\n" (String.make 78 '-');
  let v = run_value_logging () in
  let b = run_btree_value_logging () in
  let o = run_operation_logging () in
  Printf.printf "%-28s %14s %15s %14s\n" "" "value (cells)" "value (pages)"
    "operation";
  Printf.printf "%-28s %14.1f %15.1f %14.1f\n" "latency per txn (ms)"
    v.elapsed_ms b.elapsed_ms o.elapsed_ms;
  Printf.printf "%-28s %14.1f %15.1f %14.1f\n" "log bytes per txn"
    v.log_bytes_per_txn b.log_bytes_per_txn o.log_bytes_per_txn;
  Printf.printf "%-28s %14.1f %15.1f %14.1f\n" "log records per txn"
    v.records_per_txn b.records_per_txn o.records_per_txn;
  Printf.printf "%-28s %14.1f %15.1f %14.1f\n" "crash recovery (ms)"
    v.recovery_ms b.recovery_ms o.recovery_ms;
  Printf.printf "%-28s %14d %15d %14d\n" "records scanned at recovery"
    v.recovery_records b.recovery_records o.recovery_records;
  Printf.printf
    "  (value logging of word-sized cells is compact; value logging of\n\
    \   whole B-tree pages is not — operation records carry arguments,\n\
    \   not page images, and one record may cover a multi-page object,\n\
    \   at the price of the three-pass recovery: Section 2.1.3's trade)\n"

(* 2. read-only commit optimization --------------------------------------- *)

let run_ro_commit ~optimized =
  let c = Cluster.create ~read_only_optimization:optimized ~nodes:2 () in
  List.iter
    (fun node ->
      ignore
        (Int_array_server.create (Node.env node)
           ~name:(Printf.sprintf "a%d" (Node.id node))
           ~segment:1 ~cells:64 ()))
    (Cluster.nodes c);
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  let engine = Cluster.engine c in
  let metrics0 = Metrics.snapshot (Engine.metrics engine) in
  let t0 = Engine.now engine in
  (* measure to the last commit's completion inside the fiber: the
     trailing engine drain includes idle watchdog timers *)
  let t1 = ref t0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      for _ = 1 to txns do
        Txn_lib.execute_transaction tm (fun tid ->
            ignore (Int_array_server.call_get rpc ~dest:0 ~server:"a0" tid 0);
            ignore (Int_array_server.call_get rpc ~dest:1 ~server:"a1" tid 0))
      done;
      t1 := Engine.now engine);
  let elapsed = float_of_int (!t1 - t0) /. 1000. /. float_of_int txns in
  let d =
    Metrics.diff
      ~later:(Metrics.snapshot (Engine.metrics engine))
      ~earlier:metrics0
  in
  let per p = Metrics.weight d p /. float_of_int txns in
  (elapsed, per Cost_model.Datagram, per Cost_model.Stable_storage_write)

let print_ro_ablation () =
  Printf.printf "\nAblation 2: read-only commit optimization (2-node reads)\n";
  Printf.printf "%s\n" (String.make 64 '-');
  let e1, d1, s1 = run_ro_commit ~optimized:true in
  let e0, d0, s0 = run_ro_commit ~optimized:false in
  Printf.printf "%-28s %14s %14s\n" "" "optimized" "full 2PC";
  Printf.printf "%-28s %14.1f %14.1f\n" "latency per txn (ms)" e1 e0;
  Printf.printf "%-28s %14.2f %14.2f\n" "datagrams per txn" d1 d0;
  Printf.printf "%-28s %14.2f %14.2f\n" "stable writes per txn" s1 s0;
  Printf.printf
    "  (a read-only vote ends a subtree's involvement after phase one:\n\
    \   no prepare force, no commit datagram, no ack)\n"

(* 3. group commit ---------------------------------------------------------- *)

let run_group_commit ~grouped =
  let c = Cluster.create ~nodes:1 () in
  let node = Cluster.node c 0 in
  let arr =
    Int_array_server.create (Node.env node) ~name:"g" ~segment:1 ~cells:1024 ()
  in
  let tm = Node.tm node in
  let engine = Cluster.engine c in
  let log = Node.log node in
  let t0 = Engine.now engine in
  let m0 = Metrics.snapshot (Engine.metrics engine) in
  Cluster.run_fiber c ~node:0 (fun () ->
      for i = 1 to txns do
        Txn_lib.execute_transaction tm (fun tid ->
            for u = 0 to updates_per_txn - 1 do
              Int_array_server.set arr tid (u * 64) i;
              (* an eager logger forces after every record *)
              if not grouped then Tabs_wal.Log_manager.force_all log
            done)
      done);
  let elapsed = float_of_int (Engine.now engine - t0) /. 1000. /. float_of_int txns in
  let d =
    Metrics.diff ~later:(Metrics.snapshot (Engine.metrics engine)) ~earlier:m0
  in
  (elapsed, Metrics.weight d Cost_model.Stable_storage_write /. float_of_int txns)

let print_group_commit_ablation () =
  Printf.printf "\nAblation 3: group commit (one force per txn vs per record)\n";
  Printf.printf "%s\n" (String.make 64 '-');
  let e1, s1 = run_group_commit ~grouped:true in
  let e0, s0 = run_group_commit ~grouped:false in
  Printf.printf "%-28s %14s %14s\n" "" "grouped" "eager";
  Printf.printf "%-28s %14.1f %14.1f\n" "latency per txn (ms)" e1 e0;
  Printf.printf "%-28s %14.2f %14.2f\n" "stable writes per txn" s1 s0

let print_all () =
  print_logging_comparison ();
  print_ro_ablation ();
  print_group_commit_ablation ()
