(* Availability under coordinator failure: survivor throughput while
   the coordinator node crash-loops, Two-phase commit vs. Paxos Commit.

   Four nodes. Node 3 is the victim: whenever it is up it fires
   distributed transactions that write the single hot cell on every
   other node, and it is crashed as soon as one of those transactions
   has a survivor prepared and in doubt — the worst possible moment —
   then stays down for most of each loop iteration. Nodes 0-2 are the
   survivors (and, in the Paxos arm, the 2F+1 = 3 acceptors): each
   runs an open loop of short local transactions against its own copy
   of the hot cell.

   When the victim dies between prepare and verdict, the survivors'
   prepared transactions keep their write locks on the hot cell, so
   every survivor's local traffic stops dead. Under Two_phase those
   locks stay held until a status query happens to land inside one of
   the victim's brief up-windows — with a 300 ms up-window against a
   3 s query period, most of the down-window is dead time and survivor
   commits collapse. Under Paxos the acceptor watchdogs run a takeover
   ballot ~2.5-4.5 s after the crash and release the survivors with
   the victim still down.

   The score for each arm is the survivors' committed-transaction
   count during the crash-loop window, next to a healthy-warmup
   baseline from the same configuration. CI asserts the Paxos
   crash-loop count is at least 5x the Two_phase one. *)

open Tabs_sim
open Tabs_core
open Tabs_servers

let default_nodes = 4

let hot_cell = 0

let warmup_start = 1_000_000 (* survivors settled *)

let warmup_end = 11_000_000 (* 10 s healthy baseline *)

let crashloop_end = 131_000_000 (* 120 s crash-loop window *)

let up_window = 300_000 (* victim alive this long per iteration *)

let down_window = 12_000_000 (* ... then dead this long *)

let server_name id = Printf.sprintf "a%d" id

type arm_stats = {
  label : string;
  nodes : int; (* cluster size; the victim is node [nodes - 1] *)
  baseline : int; (* survivor commits in the healthy window *)
  crashloop : int; (* survivor commits while the victim crash-loops *)
  attempts : int; (* survivor attempts during the crash-loop window *)
  incidents : int; (* victim crashes inflicted *)
  wire_messages : int; (* CM transmissions during the crash-loop window *)
}

(* [nodes] sizes the cluster: the victim is always the last node, the
   rest are survivors. Paxos arms need [2f + 1] acceptors, which live
   on nodes [0 .. 2f], so F=1 fits the default 4-node cluster and F=2
   needs [nodes = 6] (acceptors 0-4, victim 5). *)
let run_arm ~label ~commit_protocol ~seed ?(nodes = default_nodes)
    ?comm_batching () =
  let victim = nodes - 1 in
  let c = Cluster.create ~nodes ~seed ~commit_protocol ?comm_batching () in
  let holders =
    Array.map
      (fun node ->
        ref
          (Int_array_server.create (Node.env node)
             ~name:(server_name (Node.id node))
             ~segment:1 ~cells:16 ()))
      (Array.of_list (Cluster.nodes c))
  in
  let engine = Cluster.engine c in
  let commits = ref 0 and attempts = ref 0 and incidents = ref 0 in
  (* survivors: open loop of short local writes to the hot cells *)
  List.iter
    (fun node ->
      let id = Node.id node in
      if id < victim then
        Cluster.spawn c ~node:id (fun () ->
            let tm = Node.tm node in
            let i = ref 0 in
            while Engine.now engine < crashloop_end do
              incr i;
              incr attempts;
              (try
                 Txn_lib.execute_transaction tm (fun tid ->
                     Int_array_server.set !(holders.(id)) tid hot_cell !i);
                 incr commits
               with
              | Errors.Lock_timeout _ | Errors.Deadlock _
              | Errors.Transaction_is_aborted _ ->
                  ());
              Engine.delay 10_000
            done))
    (Cluster.nodes c);
  (* victim: bursts of distributed writes on the same hot cells *)
  let nv = Cluster.node c victim in
  let start_victim_traffic () =
    Cluster.spawn c ~node:victim (fun () ->
        let j = ref 0 in
        while true do
          incr j;
          (try
             Txn_lib.execute_transaction (Node.tm nv) (fun tid ->
                 for dest = 0 to victim - 1 do
                   Int_array_server.call_set (Node.rpc nv) ~dest
                     ~server:(server_name dest) tid hot_cell (1000 + !j)
                 done)
           with
          | Errors.Lock_timeout _ | Errors.Deadlock _
          | Errors.Transaction_is_aborted _ | Rpc.Rpc_timeout _ ->
              ());
          Engine.delay 50_000
        done)
  in
  start_victim_traffic ();
  (* wait (bounded) for a survivor to be prepared and in doubt on one
     of the victim's transactions: crashing then is the worst case the
     commit protocol must absorb *)
  let await_in_doubt () =
    let deadline = Engine.now engine + up_window in
    let someone_in_doubt () =
      List.exists
        (fun node ->
          Node.id node < victim && Tabs_tm.Txn_mgr.in_doubt (Node.tm node) <> [])
        (Cluster.nodes c)
    in
    while Engine.now engine < deadline && not (someone_in_doubt ()) do
      Engine.delay 5_000
    done
  in
  (* healthy until [warmup_end], then the crash-loop; driven from a
     global fiber so it survives the victim's deaths *)
  ignore
    (Engine.spawn engine (fun () ->
         Engine.delay warmup_end;
         while Engine.now engine < crashloop_end - down_window do
           await_in_doubt ();
           Node.crash nv;
           incr incidents;
           Engine.delay down_window;
           ignore
           @@ Node.restart nv
                ~reinstall:(fun env ->
               holders.(victim) :=
                 Int_array_server.create env ~name:(server_name victim)
                   ~segment:1 ~cells:16 ())
             ~after_recovery:(fun outcome ->
               Server_lib.relock_in_doubt
                 (Int_array_server.server !(holders.(victim)))
                 outcome.Tabs_recovery.Recovery_mgr.written_objects)
             ();
           start_victim_traffic ()
         done));
  Cluster.run_until c ~time:warmup_start;
  commits := 0;
  Cluster.run_until c ~time:warmup_end;
  let baseline = !commits in
  commits := 0;
  attempts := 0;
  let msgs0 = (Metrics.msgs (Engine.metrics engine)).Metrics.wire_messages in
  Cluster.run_until c ~time:crashloop_end;
  {
    label;
    nodes;
    baseline;
    crashloop = !commits;
    attempts = !attempts;
    incidents = !incidents;
    wire_messages =
      (Metrics.msgs (Engine.metrics engine)).Metrics.wire_messages - msgs0;
  }

let json_file = "BENCH_availability.json"

let arm_json oc prefix (s : arm_stats) =
  Printf.fprintf oc
    "  \"%s\": {\"nodes\": %d, \"baseline_commits\": %d, \
     \"crashloop_commits\": %d, \"crashloop_attempts\": %d, \"incidents\": \
     %d, \"wire_messages\": %d, \"msgs_per_commit\": %.2f, \"retention\": \
     %.3f}"
    prefix s.nodes s.baseline s.crashloop s.attempts s.incidents
    s.wire_messages
    (float_of_int s.wire_messages /. float_of_int (max 1 s.crashloop))
    (float_of_int s.crashloop
    /. (float_of_int (max 1 s.baseline)
       *. float_of_int (crashloop_end - warmup_end)
       /. float_of_int (warmup_end - warmup_start)))

let write_json two_phase paxos paxos_f2 paxos_batched =
  let oc = open_out json_file in
  Printf.fprintf oc
    "{\n\
    \  \"baseline_window_s\": %.0f,\n\
    \  \"crashloop_window_s\": %.0f,\n\
    \  \"up_window_ms\": %d,\n\
    \  \"down_window_s\": %.0f,\n"
    (float_of_int (warmup_end - warmup_start) /. 1_000_000.)
    (float_of_int (crashloop_end - warmup_end) /. 1_000_000.)
    (up_window / 1_000)
    (float_of_int down_window /. 1_000_000.);
  arm_json oc "two_phase" two_phase;
  output_string oc ",\n";
  arm_json oc "paxos" paxos;
  output_string oc ",\n";
  arm_json oc "paxos_f2" paxos_f2;
  output_string oc ",\n";
  arm_json oc "paxos_batched" paxos_batched;
  Printf.fprintf oc ",\n  \"paxos_over_two_phase\": %.2f\n}\n"
    (float_of_int paxos.crashloop /. float_of_int (max 1 two_phase.crashloop));
  close_out oc

let print_availability () =
  let two_phase =
    run_arm ~label:"two_phase"
      ~commit_protocol:Tabs_tm.Commit_protocol.Two_phase ~seed:11 ()
  in
  let paxos =
    run_arm ~label:"paxos"
      ~commit_protocol:(Tabs_tm.Commit_protocol.Paxos { f = 1 })
      ~seed:11 ()
  in
  (* F=2: five acceptors (nodes 0-4) tolerate two acceptor failures;
     the victim coordinator is node 5. Its crash-loop score is not
     comparable to the 4-node arms head-on (five survivors generate
     more raw traffic), so [retention] — crash-loop commits relative
     to the arm's own healthy rate — is the cross-arm metric. *)
  let paxos_f2 =
    run_arm ~label:"paxos_f2"
      ~commit_protocol:(Tabs_tm.Commit_protocol.Paxos { f = 2 })
      ~seed:11 ~nodes:6 ()
  in
  (* Paxos with the Communication Manager's batching layer: the extra
     acceptor traffic is exactly the kind of short bursty datagram load
     comm batching coalesces, so this arm reports whether the
     availability win survives with fewer wire messages per commit. *)
  let paxos_batched =
    run_arm ~label:"paxos_batched"
      ~commit_protocol:(Tabs_tm.Commit_protocol.Paxos { f = 1 })
      ~seed:11 ~comm_batching:Tabs_net.Comm_mgr.default_batching ()
  in
  Printf.printf
    "\n\
     Availability under a coordinator crash-loop (%d s window, up %d ms / \
     down %d s):\n"
    ((crashloop_end - warmup_end) / 1_000_000)
    (up_window / 1_000) (down_window / 1_000_000);
  Printf.printf "  %-14s %6s %17s %17s %10s %9s %10s\n" "protocol" "nodes"
    "baseline commits" "crashloop commits" "attempts" "incidents"
    "msgs/commit";
  List.iter
    (fun s ->
      Printf.printf "  %-14s %6d %17d %17d %10d %9d %10.1f\n" s.label s.nodes
        s.baseline s.crashloop s.attempts s.incidents
        (float_of_int s.wire_messages /. float_of_int (max 1 s.crashloop)))
    [ two_phase; paxos; paxos_f2; paxos_batched ];
  Printf.printf "  paxos / two_phase commit ratio during crash-loop: %.2fx\n"
    (float_of_int paxos.crashloop /. float_of_int (max 1 two_phase.crashloop));
  write_json two_phase paxos paxos_f2 paxos_batched;
  Printf.printf "  wrote %s\n" json_file
