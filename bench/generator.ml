(* Open-loop workload generator for scale-out benches.

   Everything before this drove TABS with closed-loop uniform workers: N
   fibers each issuing the next transaction only after the last one
   finished, so offered load sagged exactly when the system slowed down
   — the coordinated-omission trap. This generator is the opposite, the
   millions-of-users shape:

   - arrivals are an open-loop Poisson process at a fixed offered load
     (transactions per virtual second), independent of completions;
   - keys are Zipfian-popular (tunable skew theta), so some shards see
     hot keys;
   - each arrival is single-shard (one write at its key's home shard,
     committing locally) with probability [1 - cross_frac], or
     cross-shard (writes on two different shards, paying tree 2PC) with
     probability [cross_frac];
   - the transaction runs on its primary key's home node — the router
     sends it only to the shards its keys name;
   - a bounded admission queue per node sheds arrivals beyond
     [max_outstanding] in flight (counted, never silently dropped), so
     an overloaded configuration reports shed load instead of hanging
     the simulation.

   Latencies are begin-to-verdict virtual time, split single/cross —
   the cross-shard surcharge is the measured "2PC tax". *)

open Tabs_sim
open Tabs_core
open Tabs_servers

type config = {
  shards : int;
  theta : float; (* Zipf skew, [0, 1) *)
  cross_frac : float; (* fraction of two-shard transactions *)
  offered_load : float; (* transactions per virtual second *)
  horizon : int; (* arrival window, virtual microseconds *)
  keys : int;
  seed : int;
  max_outstanding : int; (* per-node admission bound *)
}

let default =
  {
    shards = 1;
    theta = 0.9;
    cross_frac = 0.15;
    offered_load = 240.;
    horizon = 10_000_000;
    keys = 16_384;
    seed = 42;
    max_outstanding = 64;
  }

type stats = {
  config : config;
  offered : int; (* arrivals generated *)
  admitted : int;
  shed : int; (* dropped by admission control *)
  committed : int;
  aborted : int;
  single_committed : int;
  cross_committed : int;
  txn_per_sec : float; (* committed over the arrival window *)
  p50_single_us : int;
  p95_single_us : int;
  p50_cross_us : int;
  p95_cross_us : int;
  wire_messages : int;
  msgs_per_cross_commit : float;
  per_shard_committed : int array;
  per_shard_stable_writes : float array;
}

(* One Poisson inter-arrival gap in microseconds (at least 1). *)
let poisson_gap rng ~offered_load =
  let u = Rng.float rng in
  let gap = -.log (1. -. u) *. 1_000_000. /. offered_load in
  max 1 (int_of_float gap)

(* Scrambled Zipfian (YCSB-style): the Zipf generator hands back a
   popularity *rank* with rank 0 hottest, and a range-partitioned
   keyspace would put every hot rank on shard 0. Hashing the rank onto
   the keyspace keeps the popularity distribution but spreads the hot
   keys across shards — the placement-neutral workload the scale-out
   claim is about. (Hash collisions merely merge a few ranks.) *)
let scramble ~keys rank =
  let x = (rank + 1) * 0x27220A95 in
  let x = x lxor (x lsr 15) in
  let x = x * 0x2545F491 in
  let x = x lxor (x lsr 13) in
  (x land max_int) mod keys

let run ?group_commit ?checkpointing ?comm_batching ?profile config =
  let cluster =
    Cluster.create ~nodes:config.shards ?group_commit ?checkpointing
      ?comm_batching ?profile ()
  in
  let engine = Cluster.engine cluster in
  let arr = Sharded.Int_array.deploy cluster ~name:"k" ~keys:config.keys () in
  let rng = Rng.create ~seed:config.seed in
  let zipf = Rng.Zipf.create ~n:config.keys ~theta:config.theta in
  let offered = ref 0 and shed = ref 0 and admitted = ref 0 in
  let committed = ref 0 and aborted = ref 0 in
  let single_committed = ref 0 and cross_committed = ref 0 in
  let single_lat = ref [] and cross_lat = ref [] in
  let per_shard_committed = Array.make config.shards 0 in
  let outstanding = Array.make (Cluster.node_count cluster) 0 in
  let msgs0 = (Metrics.msgs (Engine.metrics engine)).Metrics.wire_messages in
  let spawn_txn ~primary_key ~secondary_key =
    let loc = Sharded.Int_array.locate arr primary_key in
    let gateway = loc.Placement.node in
    if outstanding.(gateway) >= config.max_outstanding then incr shed
    else begin
      incr admitted;
      outstanding.(gateway) <- outstanding.(gateway) + 1;
      let node = Cluster.node cluster gateway in
      let tm = Node.tm node and rpc = Node.rpc node in
      Cluster.spawn cluster ~node:gateway (fun () ->
          let t0 = Engine.now engine in
          let value = t0 land 0xFFFF in
          (match
             Txn_lib.execute_transaction tm (fun tid ->
                 Sharded.Int_array.set arr rpc tid primary_key value;
                 match secondary_key with
                 | Some k -> Sharded.Int_array.set arr rpc tid k value
                 | None -> ())
           with
          | () ->
              incr committed;
              per_shard_committed.(loc.Placement.shard) <-
                per_shard_committed.(loc.Placement.shard) + 1;
              let lat = Engine.now engine - t0 in
              if secondary_key = None then begin
                incr single_committed;
                single_lat := lat :: !single_lat
              end
              else begin
                incr cross_committed;
                cross_lat := lat :: !cross_lat
              end
          | exception Errors.Lock_timeout _ -> incr aborted
          | exception Errors.Deadlock _ -> incr aborted
          | exception Errors.Transaction_is_aborted _ -> incr aborted
          | exception Rpc.Rpc_timeout _ -> incr aborted);
          outstanding.(gateway) <- outstanding.(gateway) - 1)
    end
  in
  let sample_key () = scramble ~keys:config.keys (Rng.Zipf.sample zipf rng) in
  let pick_cross_pair () =
    (* primary from the Zipfian distribution; secondary re-drawn until
       it lands on another shard (bounded: give up after 32 tries on
       pathological skew and fall back to single-shard) *)
    let a = sample_key () in
    let sa = (Sharded.Int_array.locate arr a).Placement.shard in
    let rec draw tries =
      if tries = 0 then None
      else begin
        let b = sample_key () in
        if (Sharded.Int_array.locate arr b).Placement.shard <> sa && b <> a
        then Some b
        else draw (tries - 1)
      end
    in
    (a, draw 32)
  in
  let rec arrival () =
    if Engine.now engine < config.horizon then begin
      incr offered;
      let cross =
        config.shards > 1 && Rng.bool rng ~p:config.cross_frac
      in
      if cross then begin
        let a, b = pick_cross_pair () in
        spawn_txn ~primary_key:a ~secondary_key:b
      end
      else spawn_txn ~primary_key:(sample_key ()) ~secondary_key:None;
      Engine.at engine
        ~delay:(poisson_gap rng ~offered_load:config.offered_load)
        arrival
    end
  in
  Engine.at engine ~delay:(poisson_gap rng ~offered_load:config.offered_load)
    arrival;
  (* drain: admitted transactions finish well before 3x the arrival
     window unless something is wedged *)
  Cluster.run_until cluster ~time:(3 * config.horizon);
  let wire_messages =
    (Metrics.msgs (Engine.metrics engine)).Metrics.wire_messages - msgs0
  in
  let metrics = Engine.metrics engine in
  let hist l = Tabs_obs.Hist.of_list l in
  let single_h = hist !single_lat and cross_h = hist !cross_lat in
  {
    config;
    offered = !offered;
    admitted = !admitted;
    shed = !shed;
    committed = !committed;
    aborted = !aborted;
    single_committed = !single_committed;
    cross_committed = !cross_committed;
    txn_per_sec =
      float_of_int !committed /. (float_of_int config.horizon /. 1_000_000.);
    p50_single_us = Tabs_obs.Hist.p50 single_h;
    p95_single_us = Tabs_obs.Hist.p95 single_h;
    p50_cross_us = Tabs_obs.Hist.p50 cross_h;
    p95_cross_us = Tabs_obs.Hist.p95 cross_h;
    wire_messages;
    msgs_per_cross_commit =
      (if !cross_committed = 0 then 0.
       else float_of_int wire_messages /. float_of_int !cross_committed);
    per_shard_committed;
    per_shard_stable_writes =
      Array.init config.shards (fun s ->
          Metrics.node_weight metrics
            ~node:
              (Topology.node_of_shard (Cluster.topology cluster) s)
            Cost_model.Stable_storage_write);
  }
