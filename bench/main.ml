(* Benchmark harness: regenerates every table of the paper's evaluation
   section (Tables 5-1 through 5-5), the Section 5.2 accounting, and the
   Section 7 composite-transaction estimates, printing reproduced values
   against the published ones.

   Usage:
     bench/main.exe                 regenerate everything
     bench/main.exe table:5-2 ...   regenerate selected tables
     bench/main.exe bechamel        also run the Bechamel wall-clock
                                    micro-benchmarks (one per table)

   Absolute numbers come from the virtual-clock cost model (Table 5-1's
   primitive times are model inputs); the reproduction claims are the
   primitive *counts*, the accounting identities, and the shape checks. *)

open Tabs_sim

let measured_results = lazy (Tabs_bench.Workloads.run_all ~model:Cost_model.measured ())

(* Table 5-4's ImprovedArch column: the same fourteen benchmarks run
   again on Integrated-profile nodes (Section 5.3), still at the
   measured primitive times. *)
let improved_results =
  lazy
    (Tabs_bench.Workloads.run_all ~profile:Profile.Integrated
       ~model:Cost_model.measured ())

(* Table 5-4's NewPrims column: the Integrated architecture under the
   Table 5-5 achievable primitive times. *)
let new_prims_results =
  lazy
    (Tabs_bench.Workloads.run_all ~profile:Profile.Integrated
       ~model:Cost_model.achievable ())

let table_5_1 () =
  Tabs_bench.Report.print_cost_table
    ~title:"Table 5-1: Primitive Operation Times (model input = paper values)"
    ~paper:Tabs_bench.Paper_data.table_5_1 Cost_model.measured

let table_5_2 () = Tabs_bench.Report.print_table_5_2 (Lazy.force measured_results)

let table_5_3 () = Tabs_bench.Report.print_table_5_3 (Lazy.force measured_results)

let table_5_4 () =
  Tabs_bench.Report.print_table_5_4
    ~measured:(Lazy.force measured_results)
    ~improved:(Lazy.force improved_results)
    ~new_prims:(Lazy.force new_prims_results)

let table_5_5 () =
  Tabs_bench.Report.print_cost_table
    ~title:"Table 5-5: Achievable Primitive Operation Times (model input)"
    ~paper:Tabs_bench.Paper_data.table_5_5 Cost_model.achievable

let accounting () = Tabs_bench.Report.print_accounting (Lazy.force measured_results)

let composite () = Tabs_bench.Report.print_composite ()

let ablation () = Tabs_bench.Ablation.print_all ()

let throughput () = Tabs_bench.Throughput.print_all ()

let group_commit () = Tabs_bench.Throughput.print_group_commit ()

let recovery () = Tabs_bench.Recovery.print_recovery ()

let messages () = Tabs_bench.Messages.print_messages ()

let scaleout () = Tabs_bench.Scaleout.print_scaleout ()

let availability () = Tabs_bench.Availability.print_availability ()

let simperf () = Tabs_bench.Simperf.print_simperf ()

let shapes () =
  Tabs_bench.Report.print_shape_checks
    ~measured:(Lazy.force measured_results)
    ~improved:(Lazy.force improved_results)
    ~new_prims:(Lazy.force new_prims_results)

(* Bechamel micro-benchmarks: one Test.make per table, measuring the
   real wall-clock cost of regenerating that table's data. *)
let bechamel_tests () =
  let open Bechamel in
  let quick_spec = List.nth Tabs_bench.Workloads.specs 0 in
  let write_spec = List.nth Tabs_bench.Workloads.specs 4 in
  let remote_spec = List.nth Tabs_bench.Workloads.specs 7 in
  let run spec () =
    ignore
      (Tabs_bench.Workloads.run_spec ~iterations:3 ~warmup:1 ~model:Cost_model.measured
         spec)
  in
  Test.make_grouped ~name:"tables"
    [
      Test.make ~name:"table-5-1:cost-model"
        (Staged.stage (fun () ->
             ignore (Cost_model.to_alist Cost_model.measured)));
      Test.make ~name:"table-5-2:local-read-bench" (Staged.stage (run quick_spec));
      Test.make ~name:"table-5-3:local-write-bench" (Staged.stage (run write_spec));
      Test.make ~name:"table-5-4:two-node-bench" (Staged.stage (run remote_spec));
      Test.make ~name:"table-5-5:cost-model"
        (Staged.stage (fun () ->
             ignore (Cost_model.to_alist Cost_model.achievable)));
    ]

let run_bechamel () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  Printf.printf "\nBechamel wall-clock of table regeneration (ns per run):\n";
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-40s %12.0f (%s)\n" name est measure
          | Some _ | None -> ())
        tbl)
    results

let sections =
  [
    ("table:5-1", table_5_1);
    ("table:5-2", table_5_2);
    ("table:5-3", table_5_3);
    ("table:5-4", table_5_4);
    ("table:5-5", table_5_5);
    ("accounting", accounting);
    ("composite", composite);
    ("ablation", ablation);
    ("throughput", throughput);
    ("group-commit", group_commit);
    ("recovery", recovery);
    ("messages", messages);
    ("scaleout", scaleout);
    ("availability", availability);
    ("simperf", simperf);
    ("shapes", shapes);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let wants_bechamel = List.mem "bechamel" args in
  let selected = List.filter (fun a -> a <> "bechamel") args in
  let to_run = if selected = [] then List.map fst sections else selected in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; known: %s bechamel\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    to_run;
  if wants_bechamel then run_bechamel ();
  print_newline ()
