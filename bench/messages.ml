(* Messages-per-transaction exploration: what the comm-batching layer
   (piggybacked acks + datagram coalescing, lib/net/comm_mgr.ml) does to
   wire traffic and throughput of the distributed commit.

   N concurrent application fibers on node 0 each run read-modify-write
   transactions that update one cell on node 1 and one on node 2, so
   every commit is a tree two-phase commit with two subordinates. Both
   arms run with group commit on — otherwise the single-channel log
   device serializes commit forces and bounds throughput long before the
   network does, hiding what batching buys. The arms differ only in
   [?comm_batching]. *)

open Tabs_sim
open Tabs_core
open Tabs_servers

type point = {
  workers : int;
  committed : int; (* distributed commits coordinated by node 0 *)
  aborted : int;
  txn_per_sec : float;
  wire_messages : int; (* CM transmissions across all nodes *)
  carried_frames : int;
  msgs_per_commit : float;
  piggybacked_acks : int;
  delayed_acks : int;
}

let horizon = 10_000_000 (* 10 virtual seconds *)

let gc_config = { Tabs_recovery.Group_commit.window = 5_000; max_batch = 64 }

let run_point ?comm_batching ~workers () =
  let cluster =
    Cluster.create ~nodes:3 ~group_commit:gc_config ?comm_batching ()
  in
  let cells = max 1024 (workers * 4) in
  List.iter
    (fun node ->
      ignore
        (Int_array_server.create (Node.env node)
           ~name:(Printf.sprintf "a%d" (Node.id node))
           ~segment:1 ~cells ()))
    (Cluster.nodes cluster);
  let node0 = Cluster.node cluster 0 in
  let tm = Node.tm node0 in
  let rpc = Node.rpc node0 in
  let engine = Cluster.engine cluster in
  let aborted = ref 0 in
  for w = 0 to workers - 1 do
    Cluster.spawn cluster ~node:0 (fun () ->
        let rng = Rng.create ~seed:(w + 1) in
        while Engine.now engine < horizon do
          let cell = (w * 4) + Rng.int rng 4 in
          match
            Txn_lib.execute_transaction tm (fun tid ->
                Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid cell w;
                Int_array_server.call_set rpc ~dest:2 ~server:"a2" tid cell w)
          with
          | () -> ()
          | exception Errors.Lock_timeout _ -> incr aborted
          | exception Errors.Deadlock _ -> incr aborted
          | exception Errors.Transaction_is_aborted _ -> incr aborted
        done)
  done;
  Cluster.run_until cluster ~time:(4 * horizon);
  let committed = Tabs_tm.Txn_mgr.distributed_commits tm in
  let m = Metrics.msgs (Engine.metrics engine) in
  {
    workers;
    committed;
    aborted = !aborted;
    txn_per_sec =
      float_of_int committed /. (float_of_int horizon /. 1_000_000.);
    wire_messages = m.Metrics.wire_messages;
    carried_frames = m.Metrics.carried_frames;
    msgs_per_commit =
      (if committed = 0 then 0.
       else float_of_int m.Metrics.wire_messages /. float_of_int committed);
    piggybacked_acks = m.Metrics.piggybacked_acks;
    delayed_acks = m.Metrics.delayed_acks;
  }

type pair = { off : point; on_ : point }

let batch_config = Tabs_net.Comm_mgr.default_batching

let worker_counts = [ 1; 2; 4; 8; 16; 32 ]

let run_comparison () =
  List.map
    (fun workers ->
      {
        off = run_point ~workers ();
        on_ = run_point ~comm_batching:batch_config ~workers ();
      })
    worker_counts

let reduction p =
  if p.off.msgs_per_commit = 0. then 0.
  else 1. -. (p.on_.msgs_per_commit /. p.off.msgs_per_commit)

let json_file = "BENCH_messages.json"

let write_json pairs =
  let oc = open_out json_file in
  Printf.fprintf oc
    "{\n\
    \  \"ack_delay_us\": %d,\n\
    \  \"flush_delay_us\": %d,\n\
    \  \"max_frames\": %d,\n\
    \  \"points\": [\n"
    batch_config.ack_delay batch_config.flush_delay batch_config.max_frames;
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"workers\": %d, \"off_wire_messages\": %d, \
         \"on_wire_messages\": %d, \"off_commits\": %d, \"on_commits\": %d, \
         \"off_msgs_per_commit\": %.3f, \"on_msgs_per_commit\": %.3f, \
         \"reduction\": %.4f, \"off_txn_per_sec\": %.2f, \"on_txn_per_sec\": \
         %.2f, \"on_carried_frames\": %d, \"on_piggybacked_acks\": %d, \
         \"on_delayed_acks\": %d}%s\n"
        p.off.workers p.off.wire_messages p.on_.wire_messages p.off.committed
        p.on_.committed p.off.msgs_per_commit p.on_.msgs_per_commit
        (reduction p) p.off.txn_per_sec p.on_.txn_per_sec
        p.on_.carried_frames p.on_.piggybacked_acks p.on_.delayed_acks
        (if i = List.length pairs - 1 then "" else ","))
    pairs;
  output_string oc "  ]\n}\n";
  close_out oc

let print_messages () =
  Printf.printf
    "\nComm batching: wire messages per distributed commit (3 nodes, 2 \
     remote writes per txn;\nack window %d us, flush window %d us, group \
     commit on in both arms)\n"
    batch_config.ack_delay batch_config.flush_delay;
  Printf.printf "%s\n" (String.make 64 '-');
  Printf.printf "    %8s %11s %11s %11s %11s %10s %12s %12s %10s\n" "workers"
    "off msgs" "on msgs" "off m/cmt" "on m/cmt" "reduction" "off txn/s"
    "on txn/s" "piggyback";
  let pairs = run_comparison () in
  List.iter
    (fun p ->
      Printf.printf
        "    %8d %11d %11d %11.2f %11.2f %9.1f%% %12.2f %12.2f %10d\n"
        p.off.workers p.off.wire_messages p.on_.wire_messages
        p.off.msgs_per_commit p.on_.msgs_per_commit
        (100. *. reduction p)
        p.off.txn_per_sec p.on_.txn_per_sec p.on_.piggybacked_acks)
    pairs;
  write_json pairs;
  Printf.printf
    "  (off: every session frame, ack, and commit-protocol datagram is its\n\
    \   own wire message; on: acks ride reverse-direction frames and frames\n\
    \   to the same peer coalesce; curve written to %s)\n"
    json_file
