(* Restart-cost benchmark: how checkpoint-anchored recovery bounds the
   analysis scan.

   Two arms run the same value-logged workload against one node's
   Recovery Manager (no Transaction Manager, like the recovery unit
   tests, so the off arm really never checkpoints):

   - off: no checkpoint daemon; recovery scans the whole live log, so
     the scan grows with the workload;
   - on: the background {!Tabs_recovery.Checkpointer} trickles pages
     out and writes fuzzy checkpoints as the workload runs; recovery
     anchors at the last one, so the scan stays bounded by the
     checkpoint distance regardless of workload length.

   Reported per point: records scanned at restart and the virtual-time
   cost of the restart itself. Curve written to BENCH_recovery.json. *)

open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_accent
open Tabs_recovery

type arm = {
  txns : int;
  scanned : int;
  restart_us : int;
  log_records : int; (* live log length at the crash instant *)
  checkpoints : int; (* daemon cycles completed (0 on the off arm) *)
}

type point = { off : arm; on_ : arm }

let segment = 1

let seg_pages = 64

let frames = 32

let writes_per_txn = 3

let cells_per_page = Page.size / 8

let obj n =
  let cell = n mod (seg_pages * cells_per_page) in
  Object_id.make ~segment ~offset:(8 * cell) ~length:8

(* one checkpoint roughly every few transactions of virtual time *)
let checkpointing = { Checkpointer.default with interval = 100_000 }

let run_arm ~checkpointed ~txns =
  let engine = Engine.create () in
  let disk = Disk.create engine in
  Disk.ensure_segment disk segment ~pages:seg_pages;
  let stable = Stable.create () in
  let vm = Vm.attach engine disk ~frames () in
  let log = Log_manager.attach engine stable in
  let rm =
    Recovery_mgr.create engine ~node:0 ~log ~vm
      ?checkpointing:(if checkpointed then Some checkpointing else None)
      ()
  in
  let run_fiber f =
    let out = ref None in
    ignore (Engine.spawn engine (fun () -> out := Some (f ())));
    ignore (Engine.run engine);
    Option.get !out
  in
  run_fiber (fun () ->
      for i = 0 to txns - 1 do
        let tid = Tid.top ~node:0 ~seq:(i + 1) in
        ignore (Recovery_mgr.append_tm_record rm (Record.Txn_begin tid));
        for j = 0 to writes_per_txn - 1 do
          let o = obj ((i * writes_per_txn) + j) in
          Vm.pin vm o ~access:`Random;
          let old_value = Vm.read vm o ~access:`Random in
          let new_value = Printf.sprintf "%08d" (((i * 7) + j) mod 100000000) in
          Vm.write vm o new_value;
          ignore (Recovery_mgr.log_value rm ~tid ~obj:o ~old_value ~new_value);
          Vm.unpin vm o
        done;
        let lsn = Recovery_mgr.append_tm_record rm (Record.Txn_commit tid) in
        Recovery_mgr.force_through rm lsn
      done);
  let checkpoints =
    match Recovery_mgr.checkpointer rm with
    | Some cp -> Checkpointer.cycles cp
    | None -> 0
  in
  let log_records = Log_manager.next_lsn log - Log_manager.first_lsn log in
  (* crash: every volatile structure is lost; rebuild over the surviving
     disk and stable log, then recover *)
  let vm' = Vm.attach engine disk ~frames () in
  let log' = Log_manager.attach engine stable in
  let rm' = Recovery_mgr.create engine ~node:0 ~log:log' ~vm:vm' () in
  let scanned, restart_us =
    run_fiber (fun () ->
        let t0 = Engine.now engine in
        let outcome = Recovery_mgr.recover rm' in
        (outcome.records_scanned, Engine.now engine - t0))
  in
  { txns; scanned; restart_us; log_records; checkpoints }

let run_points sizes =
  List.map
    (fun txns ->
      {
        off = run_arm ~checkpointed:false ~txns;
        on_ = run_arm ~checkpointed:true ~txns;
      })
    sizes

let json_file = "BENCH_recovery.json"

let write_json points =
  let oc = open_out json_file in
  Printf.fprintf oc
    "{\n  \"interval_us\": %d,\n  \"trickle\": %d,\n  \"points\": [\n"
    checkpointing.interval checkpointing.trickle;
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"txns\": %d, \"off_scanned\": %d, \"on_scanned\": %d, \
         \"off_restart_us\": %d, \"on_restart_us\": %d, \"off_log_records\": \
         %d, \"on_log_records\": %d, \"checkpoints\": %d, \"scan_ratio\": \
         %.2f}%s\n"
        p.off.txns p.off.scanned p.on_.scanned p.off.restart_us
        p.on_.restart_us p.off.log_records p.on_.log_records
        p.on_.checkpoints
        (float_of_int p.off.scanned /. float_of_int (max 1 p.on_.scanned))
        (if i = List.length points - 1 then "" else ","))
    points;
  output_string oc "  ]\n}\n";
  close_out oc

let print_recovery () =
  Printf.printf
    "\nRestart cost: checkpoint-anchored recovery (interval %d us, trickle \
     %d pages)\n"
    checkpointing.interval checkpointing.trickle;
  Printf.printf "%s\n" (String.make 72 '-');
  Printf.printf "    %6s %12s %11s %14s %13s %6s\n" "txns" "off scanned"
    "on scanned" "off restart us" "on restart us" "ckpts";
  let points = run_points [ 50; 100; 200; 400 ] in
  List.iter
    (fun p ->
      Printf.printf "    %6d %12d %11d %14d %13d %6d\n" p.off.txns
        p.off.scanned p.on_.scanned p.off.restart_us p.on_.restart_us
        p.on_.checkpoints)
    points;
  write_json points;
  Printf.printf
    "  (off: analysis reads the whole live log, so the scan grows with the\n\
    \   workload; on: the background daemon's fuzzy checkpoints anchor the\n\
    \   scan, so it stays bounded; curve written to %s)\n"
    json_file
