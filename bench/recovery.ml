(* Restart-cost benchmark: how checkpoint-anchored recovery bounds the
   analysis scan.

   Two arms run the same value-logged workload against one node's
   Recovery Manager (no Transaction Manager, like the recovery unit
   tests, so the off arm really never checkpoints):

   - off: no checkpoint daemon; recovery scans the whole live log, so
     the scan grows with the workload;
   - on: the background {!Tabs_recovery.Checkpointer} trickles pages
     out and writes fuzzy checkpoints as the workload runs; recovery
     anchors at the last one, so the scan stays bounded by the
     checkpoint distance regardless of workload length.

   Reported per point: records scanned at restart and the virtual-time
   cost of the restart itself. Curve written to BENCH_recovery.json. *)

open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_accent
open Tabs_recovery

type arm = {
  txns : int;
  scanned : int;
  restart_us : int;
  replay_us : int; (* redo+undo passes only, excluding the analysis scan *)
  open_us : int; (* time until the node accepts work (= restart_us
                    unless the arm restarts instantly) *)
  ttfc_us : int; (* time to first commit: restart + one probe txn *)
  log_records : int; (* live log length at the crash instant *)
  checkpoints : int; (* daemon cycles completed (0 on the off arm) *)
}

type point = { off : arm; on_ : arm; instant : arm }

let segment = 1

let seg_pages = 64

let frames = 32

let writes_per_txn = 3

let cells_per_page = Page.size / 8

let obj n =
  let cell = n mod (seg_pages * cells_per_page) in
  Object_id.make ~segment ~offset:(8 * cell) ~length:8

(* one checkpoint roughly every few transactions of virtual time *)
let checkpointing = { Checkpointer.default with interval = 100_000 }

let run_fiber engine f =
  let out = ref None in
  ignore (Engine.spawn engine (fun () -> out := Some (f ())));
  ignore (Engine.run engine);
  Option.get !out

(* The first commit after a restart: one small value-logged transaction
   touching page 0 — under instant restart its first read faults the
   page and replays that page's parked chain on demand. *)
let probe_first_commit vm rm =
  let tid = Tid.top ~node:0 ~seq:999_999 in
  ignore (Recovery_mgr.append_tm_record rm (Record.Txn_begin tid));
  let o = obj 0 in
  Vm.pin vm o ~access:`Random;
  let old_value = Vm.read vm o ~access:`Random in
  let new_value = "-probe--" in
  Vm.write vm o new_value;
  ignore (Recovery_mgr.log_value rm ~tid ~obj:o ~old_value ~new_value);
  Vm.unpin vm o;
  let lsn = Recovery_mgr.append_tm_record rm (Record.Txn_commit tid) in
  Recovery_mgr.force_through rm lsn

let run_arm ~mode ~txns =
  let checkpointed = mode <> `Off in
  let engine = Engine.create () in
  let disk = Disk.create engine in
  Disk.ensure_segment disk segment ~pages:seg_pages;
  let stable = Stable.create () in
  let vm = Vm.attach engine disk ~frames () in
  let log = Log_manager.attach engine stable in
  let rm =
    Recovery_mgr.create engine ~node:0 ~log ~vm
      ?checkpointing:(if checkpointed then Some checkpointing else None)
      ()
  in
  run_fiber engine (fun () ->
      for i = 0 to txns - 1 do
        let tid = Tid.top ~node:0 ~seq:(i + 1) in
        ignore (Recovery_mgr.append_tm_record rm (Record.Txn_begin tid));
        for j = 0 to writes_per_txn - 1 do
          let o = obj ((i * writes_per_txn) + j) in
          Vm.pin vm o ~access:`Random;
          let old_value = Vm.read vm o ~access:`Random in
          let new_value = Printf.sprintf "%08d" (((i * 7) + j) mod 100000000) in
          Vm.write vm o new_value;
          ignore (Recovery_mgr.log_value rm ~tid ~obj:o ~old_value ~new_value);
          Vm.unpin vm o
        done;
        let lsn = Recovery_mgr.append_tm_record rm (Record.Txn_commit tid) in
        Recovery_mgr.force_through rm lsn
      done);
  let checkpoints =
    match Recovery_mgr.checkpointer rm with
    | Some cp -> Checkpointer.cycles cp
    | None -> 0
  in
  let log_records = Log_manager.next_lsn log - Log_manager.first_lsn log in
  (* crash: every volatile structure is lost; rebuild over the surviving
     disk and stable log, then recover *)
  let vm' = Vm.attach engine disk ~frames () in
  let log' = Log_manager.attach engine stable in
  let rm' =
    Recovery_mgr.create engine ~node:0 ~log:log' ~vm:vm'
      ~instant_restart:(mode = `Instant) ()
  in
  let scanned, restart_us, replay_us, open_us, ttfc_us =
    run_fiber engine (fun () ->
        let t0 = Engine.now engine in
        let outcome = Recovery_mgr.recover rm' in
        let restart_us = Engine.now engine - t0 in
        probe_first_commit vm' rm';
        ( outcome.records_scanned,
          restart_us,
          outcome.replay_us,
          outcome.time_to_open_us,
          Engine.now engine - t0 ))
  in
  { txns; scanned; restart_us; replay_us; open_us; ttfc_us; log_records;
    checkpoints }

let run_points sizes =
  List.map
    (fun txns ->
      {
        off = run_arm ~mode:`Off ~txns;
        on_ = run_arm ~mode:`Anchored ~txns;
        instant = run_arm ~mode:`Instant ~txns;
      })
    sizes

(* Replay-time benchmark: dependency-logged parallel redo.

   One operation-logged workload builds a log with dependency records
   (each transaction writes a hot counter on its own page plus two cold
   cells spread over the remaining pages, declaring a read of another
   family's hot counter — the read-write conflicts become the cross-page
   edges no per-page chain captures). The crash instant is frozen by
   copying disk and stable log, then replayed once serially and once per
   fiber count: same log, same graph, only the redo fan-out differs.
   Virtual replay time (the redo+undo passes, excluding the analysis
   scan) is the figure of merit. *)

let replay_txns = 400

let replay_hot_cells = 8

let replay_loser_every = 10

let counter_obj cell = Object_id.make ~segment ~offset:(8 * cell) ~length:8

let register_counter rm vm =
  let apply ~op:_ ~arg =
    Scanf.sscanf arg "%d %d" (fun cell v ->
        let o = counter_obj cell in
        Vm.pin vm o ~access:`Random;
        Vm.write vm o (Printf.sprintf "%08d" v);
        Vm.unpin vm o)
  in
  Recovery_mgr.register_op_handler rm ~server:"counter"
    { redo = apply; undo = apply }

(* Build the workload once; returns the frozen crash-instant images. *)
let run_replay_workload () =
  let engine = Engine.create () in
  let disk = Disk.create engine in
  Disk.ensure_segment disk segment ~pages:seg_pages;
  let stable = Stable.create () in
  let vm = Vm.attach engine disk ~frames:seg_pages () in
  let log = Log_manager.attach engine stable in
  let rm =
    Recovery_mgr.create engine ~node:0 ~log ~vm
      ~parallel_recovery:Parallel_redo.default ()
  in
  register_counter rm vm;
  let shadow = Array.make (seg_pages * cells_per_page) 0 in
  let log_set tid cell v ~reads =
    let o = counter_obj cell in
    Vm.pin vm o ~access:`Random;
    Vm.write vm o (Printf.sprintf "%08d" v);
    Vm.unpin vm o;
    ignore
      (Recovery_mgr.log_operation rm ~tid ~server:"counter" ~op:"set"
         ~undo_arg:(Printf.sprintf "%d %d" cell shadow.(cell))
         ~redo_arg:(Printf.sprintf "%d %d" cell v)
         ~reads ~objs:[ o ] ());
    shadow.(cell) <- v
  in
  run_fiber engine (fun () ->
      for i = 0 to replay_txns - 1 do
        let tid = Tid.top ~node:0 ~seq:(i + 1) in
        (* hot counter: one cell per page on pages 0..hot-1 *)
        log_set tid ((i mod replay_hot_cells) * cells_per_page) (i + 1)
          ~reads:[];
        (* cold cells on pages hot..seg_pages-1, reading a hot counter
           last written by another transaction *)
        let foreign_hot =
          counter_obj (((i + 1) mod replay_hot_cells) * cells_per_page)
        in
        for j = 1 to 2 do
          let k = (i * 2) + j in
          let page =
            replay_hot_cells + (k mod (seg_pages - replay_hot_cells))
          in
          let cell =
            (page * cells_per_page)
            + (k / (seg_pages - replay_hot_cells) mod cells_per_page)
          in
          log_set tid cell k ~reads:[ foreign_hot ]
        done;
        (* every replay_loser_every-th transaction crashes undecided *)
        if (i + 1) mod replay_loser_every <> 0 then begin
          let lsn = Recovery_mgr.append_tm_record rm (Record.Txn_commit tid) in
          Recovery_mgr.force_through rm lsn
        end
      done;
      Log_manager.force_all log);
  let log_records = Log_manager.next_lsn log - Log_manager.first_lsn log in
  (disk, stable, log_records, Log_manager.deps_emitted log)

type replay_arm = {
  fibers : int; (* 0 = serial replay, no dependency graph *)
  arm_replay_us : int;
  arm_restart_us : int;
  stats : Parallel_redo.stats option;
  trace : (string * int) list; (* apply order, for the N=1 lockstep check *)
}

let run_replay_arm ~src_disk ~src_stable ~fibers =
  let engine = Engine.create () in
  let disk = Disk.copy src_disk ~engine in
  let stable = Stable.copy src_stable in
  let vm = Vm.attach engine disk ~frames:seg_pages () in
  let log = Log_manager.attach engine stable in
  let rm =
    Recovery_mgr.create engine ~node:0 ~log ~vm
      ?parallel_recovery:
        (if fibers = 0 then None else Some { Parallel_redo.fibers })
      ()
  in
  register_counter rm vm;
  let trace = ref [] in
  Recovery_mgr.set_apply_hook rm
    (Some (fun ~phase ~lsn -> trace := (phase, lsn) :: !trace));
  let outcome, arm_restart_us =
    run_fiber engine (fun () ->
        let t0 = Engine.now engine in
        let o = Recovery_mgr.recover rm in
        (o, Engine.now engine - t0))
  in
  {
    fibers;
    arm_replay_us = outcome.replay_us;
    arm_restart_us;
    stats = outcome.graph;
    trace = List.rev !trace;
  }

type replay_result = {
  rr_log_records : int;
  rr_deps : int;
  serial : replay_arm;
  parallel_arms : replay_arm list;
  n1_matches_serial : bool;
}

let run_replay () =
  let src_disk, src_stable, rr_log_records, rr_deps = run_replay_workload () in
  let serial = run_replay_arm ~src_disk ~src_stable ~fibers:0 in
  let parallel_arms =
    List.map
      (fun fibers -> run_replay_arm ~src_disk ~src_stable ~fibers)
      [ 1; 2; 4; 8 ]
  in
  let n1_matches_serial =
    match parallel_arms with
    | n1 :: _ -> n1.trace = serial.trace
    | [] -> false
  in
  { rr_log_records; rr_deps; serial; parallel_arms; n1_matches_serial }

let json_file = "BENCH_recovery.json"

let write_json points replay =
  let oc = open_out json_file in
  Printf.fprintf oc
    "{\n  \"interval_us\": %d,\n  \"trickle\": %d,\n  \"points\": [\n"
    checkpointing.interval checkpointing.trickle;
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"txns\": %d, \"off_scanned\": %d, \"on_scanned\": %d, \
         \"off_restart_us\": %d, \"on_restart_us\": %d, \"off_replay_us\": \
         %d, \"on_replay_us\": %d, \"off_log_records\": %d, \
         \"on_log_records\": %d, \"checkpoints\": %d, \"scan_ratio\": \
         %.2f, \"off_ttfc_us\": %d, \"on_ttfc_us\": %d, \
         \"instant_ttfc_us\": %d, \"instant_open_us\": %d}%s\n"
        p.off.txns p.off.scanned p.on_.scanned p.off.restart_us
        p.on_.restart_us p.off.replay_us p.on_.replay_us p.off.log_records
        p.on_.log_records p.on_.checkpoints
        (float_of_int p.off.scanned /. float_of_int (max 1 p.on_.scanned))
        p.off.ttfc_us p.on_.ttfc_us p.instant.ttfc_us p.instant.open_us
        (if i = List.length points - 1 then "" else ","))
    points;
  output_string oc "  ],\n";
  let speedup a =
    float_of_int replay.serial.arm_replay_us
    /. float_of_int (max 1 a.arm_replay_us)
  in
  Printf.fprintf oc
    "  \"replay\": {\n\
    \    \"txns\": %d,\n\
    \    \"log_records\": %d,\n\
    \    \"deps_emitted\": %d,\n\
    \    \"serial_replay_us\": %d,\n\
    \    \"serial_restart_us\": %d,\n\
    \    \"n1_matches_serial\": %b,\n\
    \    \"arms\": [\n"
    replay_txns replay.rr_log_records replay.rr_deps
    replay.serial.arm_replay_us replay.serial.arm_restart_us
    replay.n1_matches_serial;
  List.iteri
    (fun i a ->
      let s =
        match a.stats with
        | Some s -> s
        | None -> assert false (* parallel arms always carry a graph *)
      in
      Printf.fprintf oc
        "      {\"fibers\": %d, \"replay_us\": %d, \"restart_us\": %d, \
         \"speedup\": %.2f, \"op_records\": %d, \"value_records\": %d, \
         \"chain_edges\": %d, \"dep_edges\": %d, \"critical_path\": %d, \
         \"width\": %d}%s\n"
        a.fibers a.arm_replay_us a.arm_restart_us (speedup a) s.op_records
        s.value_records s.chain_edges s.dep_edges s.critical_path s.width
        (if i = List.length replay.parallel_arms - 1 then "" else ","))
    replay.parallel_arms;
  output_string oc "    ]\n  }\n}\n";
  close_out oc

let print_recovery () =
  Printf.printf
    "\nRestart cost: checkpoint-anchored recovery (interval %d us, trickle \
     %d pages)\n"
    checkpointing.interval checkpointing.trickle;
  Printf.printf "%s\n" (String.make 72 '-');
  Printf.printf "    %6s %12s %11s %14s %13s %6s\n" "txns" "off scanned"
    "on scanned" "off restart us" "on restart us" "ckpts";
  let points = run_points [ 50; 100; 200; 400 ] in
  List.iter
    (fun p ->
      Printf.printf "    %6d %12d %11d %14d %13d %6d\n" p.off.txns
        p.off.scanned p.on_.scanned p.off.restart_us p.on_.restart_us
        p.on_.checkpoints)
    points;
  Printf.printf
    "  (off: analysis reads the whole live log, so the scan grows with the\n\
    \   workload; on: the background daemon's fuzzy checkpoints anchor the\n\
    \   scan, so it stays bounded)\n";
  Printf.printf
    "\nTime to first commit: instant restart (serve while recovering)\n";
  Printf.printf "%s\n" (String.make 72 '-');
  Printf.printf "    %6s %8s %12s %15s %15s %12s\n" "txns" "records"
    "off ttfc us" "anchored ttfc" "instant ttfc" "open us";
  List.iter
    (fun p ->
      Printf.printf "    %6d %8d %12d %15d %15d %12d\n" p.off.txns
        p.off.log_records p.off.ttfc_us p.on_.ttfc_us p.instant.ttfc_us
        p.instant.open_us)
    points;
  Printf.printf
    "  (ttfc = restart + one probe transaction; instant opens after the\n\
    \   anchored analysis scan alone and replays the probe's page on its\n\
    \   first touch, so the curve stays flat as the log grows)\n";
  let replay = run_replay () in
  Printf.printf
    "\nReplay time: dependency-logged parallel redo (%d op-logged txns, %d \
     log records,\n\
     %d dependency records; every %dth transaction a loser)\n"
    replay_txns replay.rr_log_records replay.rr_deps replay_loser_every;
  Printf.printf "%s\n" (String.make 72 '-');
  Printf.printf "    %7s %12s %13s %8s %6s %6s %6s %6s\n" "fibers" "replay us"
    "restart us" "speedup" "chain" "dep" "crit" "width";
  Printf.printf "    %7s %12d %13d %8s\n" "serial"
    replay.serial.arm_replay_us replay.serial.arm_restart_us "1.00";
  List.iter
    (fun a ->
      match a.stats with
      | Some s ->
          Printf.printf "    %7d %12d %13d %8.2f %6d %6d %6d %6d\n" a.fibers
            a.arm_replay_us a.arm_restart_us
            (float_of_int replay.serial.arm_replay_us
            /. float_of_int (max 1 a.arm_replay_us))
            s.chain_edges s.dep_edges s.critical_path s.width
      | None -> ())
    replay.parallel_arms;
  Printf.printf "  (N=1 replay %s the serial schedule record for record)\n"
    (if replay.n1_matches_serial then "matches" else "DIVERGES FROM");
  write_json points replay;
  Printf.printf "  (curves written to %s)\n" json_file
