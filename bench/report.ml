(* Table rendering: reproduced values side by side with the paper's. *)

let ms us = us /. 1000.

let line width = String.make width '-'

let print_header title =
  Printf.printf "\n%s\n%s\n" title (line (String.length title))

(* Tables 5-1 / 5-5: primitive times. *)
let print_cost_table ~title ~(paper : (string * float) list) model =
  print_header title;
  Printf.printf "%-30s %10s %10s\n" "Primitive" "ours(ms)" "paper(ms)";
  List.iter
    (fun p ->
      let name = Tabs_sim.Cost_model.name p in
      let ours = float_of_int (Tabs_sim.Cost_model.cost model p) /. 1000. in
      (* primitives absent from the paper table (our extensions) are not
         paper rows: skip them so the table matches the paper's shape *)
      match List.assoc_opt name paper with
      | None -> ()
      | Some paper_v -> Printf.printf "%-30s %10.2f %10.2f\n" name ours paper_v)
    Tabs_sim.Cost_model.all

let count_columns =
  (* (label, index into the per-primitive weight array) following
     Cost_model.all order *)
  [
    ("DSC", 0);
    ("RemDSC", 1);
    ("Dgram", 2);
    ("Small", 3);
    ("Large", 4);
    ("Ptr", 5);
    ("RandIO", 6);
    ("SeqRd", 7);
    ("Stable", 8);
  ]

let paper_counts_row (c : Paper_data.counts) =
  [|
    c.dsc; c.remote_dsc; c.datagram; c.small; c.large; c.pointer;
    c.random_io; c.seq_read; c.stable;
  |]

let print_counts_line name ours paper =
  Printf.printf "%-34s" name;
  List.iter
    (fun (_, i) -> Printf.printf " %5.2f/%-5.2f" ours.(i) paper.(i))
    count_columns;
  print_newline ()

let print_counts_header () =
  Printf.printf "%-34s" "";
  List.iter (fun (label, _) -> Printf.printf " %11s" label) count_columns;
  Printf.printf "\n%-34s" "(ours/paper)";
  List.iter (fun _ -> Printf.printf " %11s" "") count_columns;
  print_newline ()

(* Table 5-2. *)
let print_table_5_2 (results : Workloads.result list) =
  print_header
    "Table 5-2: Pre-Commit Primitive Counts (per transaction, ours/paper)";
  print_counts_header ();
  List.iteri
    (fun i (r : Workloads.result) ->
      print_counts_line r.name r.pre
        (paper_counts_row (List.nth Paper_data.table_5_2 i)))
    results

(* Table 5-3. *)
let print_table_5_3 (results : Workloads.result list) =
  print_header "Table 5-3: Commit Primitive Counts (per transaction, ours/paper)";
  print_counts_header ();
  List.iteri
    (fun row bench_index ->
      let name, paper = List.nth Paper_data.table_5_3 row in
      let r = List.nth results bench_index in
      print_counts_line name r.commit (paper_counts_row paper))
    Paper_data.table_5_3_benchmark

(* Table 5-4. The ImprovedArch and NewPrims columns are measured, not
   projected: [improved] is a second run of every benchmark on
   Integrated-profile nodes (Section 5.3's merged architecture), and
   [new_prims] is that architecture run again under the Table 5-5
   achievable primitive times. *)
let print_table_5_4 ~(measured : Workloads.result list)
    ~(improved : Workloads.result list)
    ~(new_prims : Workloads.result list) =
  print_header "Table 5-4: Benchmark Times (milliseconds, ours/paper)";
  Printf.printf "%-34s %13s %13s %13s %13s %13s\n" ""
    "Predicted" "TABS Proc" "Elapsed" "ImprovedArch" "NewPrims";
  List.iteri
    (fun i (r : Workloads.result) ->
      let im = List.nth improved i in
      let np = List.nth new_prims i in
      let p = List.nth Paper_data.table_5_4 i in
      Printf.printf "%-34s %5.0f/%-5.0f %7.0f/%-5.0f %5.0f/%-5.0f %7.0f/%-5.0f %5.0f/%-5.0f\n"
        r.name (ms r.predicted_us) p.predicted
        (ms r.process_us) p.process
        (ms r.elapsed_us) p.elapsed
        (ms im.elapsed_us) p.improved
        (ms np.elapsed_us) p.new_prims)
    measured

(* Shape checks: the qualitative claims the reproduction must uphold. *)
let print_shape_checks ~(measured : Workloads.result list)
    ~(improved : Workloads.result list)
    ~(new_prims : Workloads.result list) =
  print_header "Shape checks (reproduction criteria)";
  let e i = (List.nth measured i : Workloads.result).elapsed_us in
  let check name ok = Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") name in
  check "write txns cost more than read txns (local)" (e 4 > e 0);
  check "5 ops cost more than 1 op" (e 1 > e 0 && e 5 > e 4);
  check "paging costs more than no paging" (e 2 > e 0 && e 6 > e 4);
  check "random paging costs more than sequential" (e 3 > e 2);
  check "remote costs more than local" (e 7 > e 0 && e 10 > e 4);
  check "3 nodes cost more than 2 nodes" (e 12 > e 7 && e 13 > e 10);
  check "distributed write commit is the most expensive class" (e 13 > e 12);
  let never_slower =
    List.for_all2
      (fun (m : Workloads.result) (im : Workloads.result) ->
        im.elapsed_us <= m.elapsed_us
        && Array.exists (fun x -> x > 0.) im.elided)
      measured improved
  in
  check "Integrated architecture never slower, always elides messages"
    never_slower;
  let improvement i =
    let m = (List.nth measured i : Workloads.result) in
    let np = (List.nth new_prims i : Workloads.result) in
    m.elapsed_us /. np.elapsed_us
  in
  let improvements = List.init 14 improvement in
  let min_i = List.fold_left min infinity improvements in
  let max_i = List.fold_left max 0. improvements in
  (* Table 5-4's own ratios of Elapsed to New Primitive Times run from
     1.4x (random paging, disk-bound) to 3.1x; the paper's "four to ten
     times faster" headline additionally assumes a faster CPU and tuned
     code, which the cost model deliberately excludes. *)
  check
    (Printf.sprintf
       "measured software speedup spans the paper's 1.4x-3.1x band (ours: %.1fx-%.1fx)"
       min_i max_i)
    (min_i >= 1.2 && max_i <= 4.5);
  (* Section 5.2 accounting: predicted + process ~ elapsed for local
     benchmarks *)
  let reconciled =
    List.for_all
      (fun i ->
        let r = List.nth measured i in
        let sum = r.predicted_us +. r.process_us in
        abs_float (sum -. r.elapsed_us) /. r.elapsed_us < 0.25)
      [ 0; 1; 4; 5 ]
  in
  check "predicted + process time reconciles with elapsed (local runs)" reconciled

(* Section 5.2 prose accounting for the local read-only benchmark. *)
let print_accounting (measured : Workloads.result list) =
  print_header "Section 5.2 accounting (local benchmarks, ours vs paper)";
  let ro = List.nth measured 0 and w = List.nth measured 4 in
  Printf.printf
    "  local RO: elapsed %.0f ms (paper 110); predicted-by-primitives %.0f (53);\n\
    \            TABS process time %.0f (41)\n"
    (ms ro.elapsed_us) (ms ro.predicted_us) (ms ro.process_us);
  Printf.printf
    "  read->write delta: %.0f ms (paper 137, of which 78 stable-storage write)\n"
    (ms (w.elapsed_us -. ro.elapsed_us));
  Printf.printf "  stable writes per write txn: %.2f (one commit force)\n"
    w.commit.(8)

let print_composite () =
  print_header "Section 7 composite transactions (ours vs paper prose)";
  let disk = Workloads.run_composite ~in_memory:false ~remote:false () in
  let mem = Workloads.run_composite ~in_memory:true ~remote:false () in
  let remote = Workloads.run_composite ~in_memory:false ~remote:true () in
  Printf.printf
    "  5 ops x 2 paged-in writes, local: %.2f s   (paper: ~2 s)\n"
    (float_of_int disk /. 1_000_000.);
  Printf.printf
    "  same, data already in memory:     %.2f s   (paper: ~0.5 s)\n"
    (float_of_int mem /. 1_000_000.);
  Printf.printf
    "  same, operations on a remote node: %.2f s  (paper: ~1 s longer)\n"
    (float_of_int remote /. 1_000_000.)
