(* Scale-out curve: committed throughput vs. shard count at a fixed
   offered load, driven by the open-loop Zipfian generator
   (bench/generator.ml) over a range-sharded int-array deployment.

   One shard is the seed system (every transaction local, commits bound
   by the single log device even with group commit). Adding shards adds
   log devices and lock managers: single-shard traffic spreads by key
   range and should scale near-linearly until the offered load is fully
   absorbed. The [cross_frac] of two-shard transactions pays tree 2PC;
   the off/on arms differ only in comm batching, so the cross-shard
   latency gap and messages-per-distributed-commit show what batching
   does to the 2PC tax.

   Group commit is on in both arms — without it the single log channel
   saturates at a few transactions per second and the curve measures
   the log device, not the sharding. *)

type pair = { off : Generator.stats; on_ : Generator.stats }

let shard_counts = [ 1; 2; 4; 8; 16 ]

let gc_config = { Tabs_recovery.Group_commit.window = 5_000; max_batch = 64 }

let batch_config = Tabs_net.Comm_mgr.default_batching

let base = Generator.default

let run_pair shards =
  {
    off = Generator.run ~group_commit:gc_config { base with shards };
    on_ =
      Generator.run ~group_commit:gc_config ~comm_batching:batch_config
        { base with shards };
  }

let json_file = "BENCH_scaleout.json"

let arm_json oc prefix (s : Generator.stats) =
  Printf.fprintf oc
    "\"%s_offered\": %d, \"%s_shed\": %d, \"%s_committed\": %d, \
     \"%s_aborted\": %d, \"%s_cross_committed\": %d, \"%s_txn_per_sec\": \
     %.2f, \"%s_p50_single_us\": %d, \"%s_p95_single_us\": %d, \
     \"%s_p50_cross_us\": %d, \"%s_p95_cross_us\": %d, \
     \"%s_wire_messages\": %d, \"%s_msgs_per_cross_commit\": %.2f"
    prefix s.offered prefix s.shed prefix s.committed prefix s.aborted prefix
    s.cross_committed prefix s.txn_per_sec prefix s.p50_single_us prefix
    s.p95_single_us prefix s.p50_cross_us prefix s.p95_cross_us prefix
    s.wire_messages prefix s.msgs_per_cross_commit

let write_json pairs =
  let oc = open_out json_file in
  Printf.fprintf oc
    "{\n\
    \  \"offered_load_tps\": %.0f,\n\
    \  \"horizon_s\": %.0f,\n\
    \  \"zipf_theta\": %.2f,\n\
    \  \"cross_frac\": %.2f,\n\
    \  \"keys\": %d,\n\
    \  \"max_outstanding\": %d,\n\
    \  \"points\": [\n"
    base.offered_load
    (float_of_int base.horizon /. 1_000_000.)
    base.theta base.cross_frac base.keys base.max_outstanding;
  List.iteri
    (fun i p ->
      Printf.fprintf oc "    {\"shards\": %d, " p.off.config.Generator.shards;
      arm_json oc "off" p.off;
      output_string oc ", ";
      arm_json oc "on" p.on_;
      Printf.fprintf oc "}%s\n"
        (if i = List.length pairs - 1 then "" else ","))
    pairs;
  output_string oc "  ]\n}\n";
  close_out oc

let print_scaleout () =
  Printf.printf
    "\nScale-out: committed txn/s vs. shard count at %.0f offered txn/s\n\
     (Zipf theta %.2f over %d keys, %.0f%% cross-shard, open-loop Poisson \
     arrivals,\n\
     group commit on; arms differ only in comm batching)\n"
    base.offered_load base.theta base.keys (100. *. base.cross_frac);
  Printf.printf "%s\n" (String.make 76 '-');
  Printf.printf "    %6s %10s %10s %8s %8s %11s %11s %9s\n" "shards"
    "off txn/s" "on txn/s" "off shed" "on shed" "p50 1shard" "p50 cross"
    "m/xcommit";
  let pairs = List.map run_pair shard_counts in
  List.iter
    (fun p ->
      Printf.printf "    %6d %10.1f %10.1f %8d %8d %11d %11d %9.1f\n"
        p.off.config.Generator.shards p.off.txn_per_sec p.on_.txn_per_sec
        p.off.shed p.on_.shed p.on_.p50_single_us p.on_.p50_cross_us
        p.on_.msgs_per_cross_commit)
    pairs;
  (match (pairs, List.rev pairs) with
  | one :: _, _ ->
      let at n =
        List.find_opt (fun p -> p.off.config.Generator.shards = n) pairs
      in
      (match at 8 with
      | Some eight when one.on_.committed > 0 ->
          Printf.printf
            "  8-shard speedup over 1 shard: %.2fx (batching on), %.2fx \
             (batching off)\n"
            (float_of_int eight.on_.committed
            /. float_of_int one.on_.committed)
            (float_of_int eight.off.committed
            /. float_of_int (max 1 one.off.committed))
      | _ -> ())
  | _ -> ());
  write_json pairs;
  Printf.printf
    "  (single-shard transactions commit locally and scale with shard \
     count;\n\
    \   cross-shard transactions pay tree 2PC — batching trims its wire \
     messages;\n\
    \   curve written to %s)\n"
    json_file
