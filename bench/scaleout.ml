(* Scale-out curve: committed throughput vs. shard count at a fixed
   offered load, driven by the open-loop Zipfian generator
   (bench/generator.ml) over a range-sharded int-array deployment.

   One shard is the seed system (every transaction local, commits bound
   by the single log device even with group commit). Adding shards adds
   log devices and lock managers: single-shard traffic spreads by key
   range and should scale near-linearly until the offered load is fully
   absorbed. The [cross_frac] of two-shard transactions pays tree 2PC;
   the off/on arms differ only in comm batching, so the cross-shard
   latency gap and messages-per-distributed-commit show what batching
   does to the 2PC tax.

   Group commit is on in both arms — without it the single log channel
   saturates at a few transactions per second and the curve measures
   the log device, not the sharding. *)

type pair = { off : Generator.stats; on_ : Generator.stats }

let shard_counts = [ 1; 2; 4; 8; 16 ]

let gc_config = { Tabs_recovery.Group_commit.window = 5_000; max_batch = 64 }

let batch_config = Tabs_net.Comm_mgr.default_batching

let base = Generator.default

let run_pair shards =
  {
    off = Generator.run ~group_commit:gc_config { base with shards };
    on_ =
      Generator.run ~group_commit:gc_config ~comm_batching:batch_config
        { base with shards };
  }

(* Chaos arm: kill one shard's node mid-load under the Zipfian arrival
   process, restart it 500 virtual ms later, and measure what the
   outage costs end to end — committed throughput, tail latency, and
   how long until the wounded shard commits again — with instant
   restart off vs on. Both arms run group commit, checkpointing, and
   parallel recovery; only [?instant_restart] differs, so the gap is
   the serve-while-recovering effect alone. *)

type chaos_stats = {
  ch_instant : bool;
  ch_offered : int;
  ch_committed : int;
  ch_aborted : int;
  ch_refused : int; (* arrivals aimed at the dead node, turned away *)
  ch_txn_per_sec : float;
  ch_p99_us : int; (* over every commit of the whole run *)
  ch_outage_committed : int; (* commits in [kill, kill + 1s) *)
  ch_open_us : int; (* recovery's time until the node accepts work *)
  ch_ttfc_us : int; (* restart start -> first commit on the wounded
                       shard (0 if none committed) *)
}

let chaos_shards = 4

let chaos_keys = 16_384

let chaos_horizon = 6_000_000

let chaos_kill_at = 2_000_000

let chaos_restart_at = 2_500_000

let chaos_offered_load = 240.

let chaos_cross_frac = 0.15

let run_chaos ~instant =
  let open Tabs_sim in
  let open Tabs_core in
  let open Tabs_servers in
  let scramble = Generator.scramble and poisson_gap = Generator.poisson_gap in
  let c =
    Cluster.create ~nodes:chaos_shards ~group_commit:gc_config
      ~checkpointing:
        { Tabs_recovery.Checkpointer.default with interval = 100_000 }
      ~parallel_recovery:{ Tabs_recovery.Parallel_redo.fibers = 4 }
      ~instant_restart:instant ()
  in
  let engine = Cluster.engine c in
  let arr =
    Sharded.Int_array.deploy c ~name:"k" ~keys:chaos_keys ()
  in
  let rng = Rng.create ~seed:7 in
  let zipf = Rng.Zipf.create ~n:chaos_keys ~theta:0.9 in
  let sample_key () = scramble ~keys:chaos_keys (Rng.Zipf.sample zipf rng) in
  let victim_shard = 1 in
  let victim = Cluster.shard_node c victim_shard in
  let offered = ref 0 and refused = ref 0 in
  let committed = ref 0 and aborted = ref 0 in
  let outage_committed = ref 0 in
  let latencies = ref [] in
  let victim_first_commit = ref None in
  let outstanding = Array.make (Cluster.node_count c) 0 in
  let max_outstanding = 64 in
  let spawn_txn ~primary_key ~secondary_key =
    let loc = Sharded.Int_array.locate arr primary_key in
    let gateway = loc.Placement.node in
    if not (Node.is_up (Cluster.node c gateway)) then incr refused
    else if outstanding.(gateway) >= max_outstanding then incr refused
    else begin
      outstanding.(gateway) <- outstanding.(gateway) + 1;
      let node = Cluster.node c gateway in
      let tm = Node.tm node and rpc = Node.rpc node in
      Cluster.spawn c ~node:gateway (fun () ->
          let t0 = Engine.now engine in
          let value = t0 land 0xFFFF in
          (match
             Txn_lib.execute_transaction tm (fun tid ->
                 Sharded.Int_array.set arr rpc tid primary_key value;
                 match secondary_key with
                 | Some k -> Sharded.Int_array.set arr rpc tid k value
                 | None -> ())
           with
          | () ->
              incr committed;
              let now = Engine.now engine in
              if now >= chaos_kill_at && now < chaos_kill_at + 1_000_000
              then incr outage_committed;
              if
                loc.Placement.shard = victim_shard
                && now >= chaos_restart_at
                && !victim_first_commit = None
              then victim_first_commit := Some now;
              latencies := (now - t0) :: !latencies
          | exception Errors.Lock_timeout _ -> incr aborted
          | exception Errors.Deadlock _ -> incr aborted
          | exception Errors.Transaction_is_aborted _ -> incr aborted
          | exception Rpc.Rpc_timeout _ -> incr aborted);
          outstanding.(gateway) <- outstanding.(gateway) - 1)
    end
  in
  let rec arrival () =
    if Engine.now engine < chaos_horizon then begin
      incr offered;
      let cross = Rng.bool rng ~p:chaos_cross_frac in
      let a = sample_key () in
      let secondary =
        if not cross then None
        else begin
          let sa = (Sharded.Int_array.locate arr a).Placement.shard in
          let rec draw tries =
            if tries = 0 then None
            else
              let b = sample_key () in
              if
                (Sharded.Int_array.locate arr b).Placement.shard <> sa
                && b <> a
              then Some b
              else draw (tries - 1)
          in
          draw 32
        end
      in
      spawn_txn ~primary_key:a ~secondary_key:secondary;
      Engine.at engine
        ~delay:(poisson_gap rng ~offered_load:chaos_offered_load)
        arrival
    end
  in
  Engine.at engine
    ~delay:(poisson_gap rng ~offered_load:chaos_offered_load)
    arrival;
  Cluster.run_until c ~time:chaos_kill_at;
  Node.crash victim;
  Cluster.run_until c ~time:chaos_restart_at;
  (* the restart clears the dead node's accept queue *)
  outstanding.(Node.id victim) <- 0;
  let restart_t0 = Engine.now engine in
  let outcome = ref None in
  Cluster.spawn c
    ~node:(Node.id victim)
    (fun () ->
      outcome :=
        Some
          (Node.restart victim
             ~reinstall:(fun env ->
               ignore (Sharded.Int_array.reinstall arr ~shard:victim_shard env))
             ()));
  Cluster.run_until c ~time:(3 * chaos_horizon);
  let outcome =
    match !outcome with
    | Some o -> o
    | None -> failwith "chaos: the victim never finished recovering"
  in
  {
    ch_instant = instant;
    ch_offered = !offered;
    ch_committed = !committed;
    ch_aborted = !aborted;
    ch_refused = !refused;
    ch_txn_per_sec =
      float_of_int !committed
      /. (float_of_int chaos_horizon /. 1_000_000.);
    ch_p99_us = Tabs_obs.Hist.p99 (Tabs_obs.Hist.of_list !latencies);
    ch_outage_committed = !outage_committed;
    ch_open_us = outcome.Tabs_recovery.Recovery_mgr.time_to_open_us;
    ch_ttfc_us =
      (match !victim_first_commit with
      | Some t -> t - restart_t0
      | None -> 0);
  }

let json_file = "BENCH_scaleout.json"

let arm_json oc prefix (s : Generator.stats) =
  Printf.fprintf oc
    "\"%s_offered\": %d, \"%s_shed\": %d, \"%s_committed\": %d, \
     \"%s_aborted\": %d, \"%s_cross_committed\": %d, \"%s_txn_per_sec\": \
     %.2f, \"%s_p50_single_us\": %d, \"%s_p95_single_us\": %d, \
     \"%s_p50_cross_us\": %d, \"%s_p95_cross_us\": %d, \
     \"%s_wire_messages\": %d, \"%s_msgs_per_cross_commit\": %.2f"
    prefix s.offered prefix s.shed prefix s.committed prefix s.aborted prefix
    s.cross_committed prefix s.txn_per_sec prefix s.p50_single_us prefix
    s.p95_single_us prefix s.p50_cross_us prefix s.p95_cross_us prefix
    s.wire_messages prefix s.msgs_per_cross_commit

let chaos_json oc (s : chaos_stats) =
  Printf.fprintf oc
    "    {\"instant\": %b, \"offered\": %d, \"committed\": %d, \"aborted\": \
     %d, \"refused\": %d, \"txn_per_sec\": %.2f, \"p99_us\": %d, \
     \"outage_committed\": %d, \"open_us\": %d, \"ttfc_us\": %d}"
    s.ch_instant s.ch_offered s.ch_committed s.ch_aborted s.ch_refused
    s.ch_txn_per_sec s.ch_p99_us s.ch_outage_committed s.ch_open_us
    s.ch_ttfc_us

let write_json pairs ~chaos_off ~chaos_on =
  let oc = open_out json_file in
  Printf.fprintf oc
    "{\n\
    \  \"offered_load_tps\": %.0f,\n\
    \  \"horizon_s\": %.0f,\n\
    \  \"zipf_theta\": %.2f,\n\
    \  \"cross_frac\": %.2f,\n\
    \  \"keys\": %d,\n\
    \  \"max_outstanding\": %d,\n\
    \  \"points\": [\n"
    base.offered_load
    (float_of_int base.horizon /. 1_000_000.)
    base.theta base.cross_frac base.keys base.max_outstanding;
  List.iteri
    (fun i p ->
      Printf.fprintf oc "    {\"shards\": %d, " p.off.config.Generator.shards;
      arm_json oc "off" p.off;
      output_string oc ", ";
      arm_json oc "on" p.on_;
      Printf.fprintf oc "}%s\n"
        (if i = List.length pairs - 1 then "" else ","))
    pairs;
  output_string oc "  ],\n";
  Printf.fprintf oc
    "  \"chaos\": {\n\
    \    \"shards\": %d,\n\
    \    \"kill_at_us\": %d,\n\
    \    \"restart_at_us\": %d,\n\
    \    \"horizon_us\": %d,\n\
    \    \"arms\": [\n"
    chaos_shards chaos_kill_at chaos_restart_at chaos_horizon;
  chaos_json oc chaos_off;
  output_string oc ",\n";
  chaos_json oc chaos_on;
  output_string oc "\n    ]\n  }\n}\n";
  close_out oc

let print_scaleout () =
  Printf.printf
    "\nScale-out: committed txn/s vs. shard count at %.0f offered txn/s\n\
     (Zipf theta %.2f over %d keys, %.0f%% cross-shard, open-loop Poisson \
     arrivals,\n\
     group commit on; arms differ only in comm batching)\n"
    base.offered_load base.theta base.keys (100. *. base.cross_frac);
  Printf.printf "%s\n" (String.make 76 '-');
  Printf.printf "    %6s %10s %10s %8s %8s %11s %11s %9s\n" "shards"
    "off txn/s" "on txn/s" "off shed" "on shed" "p50 1shard" "p50 cross"
    "m/xcommit";
  let pairs = List.map run_pair shard_counts in
  List.iter
    (fun p ->
      Printf.printf "    %6d %10.1f %10.1f %8d %8d %11d %11d %9.1f\n"
        p.off.config.Generator.shards p.off.txn_per_sec p.on_.txn_per_sec
        p.off.shed p.on_.shed p.on_.p50_single_us p.on_.p50_cross_us
        p.on_.msgs_per_cross_commit)
    pairs;
  (match (pairs, List.rev pairs) with
  | one :: _, _ ->
      let at n =
        List.find_opt (fun p -> p.off.config.Generator.shards = n) pairs
      in
      (match at 8 with
      | Some eight when one.on_.committed > 0 ->
          Printf.printf
            "  8-shard speedup over 1 shard: %.2fx (batching on), %.2fx \
             (batching off)\n"
            (float_of_int eight.on_.committed
            /. float_of_int one.on_.committed)
            (float_of_int eight.off.committed
            /. float_of_int (max 1 one.off.committed))
      | _ -> ())
  | _ -> ());
  Printf.printf
    "\nChaos: shard %d's node killed at %.1fs, restarted at %.1fs (%d \
     shards,\n\
     %.0f offered txn/s; group commit + checkpointing + parallel recovery \
     in both arms)\n"
    1
    (float_of_int chaos_kill_at /. 1_000_000.)
    (float_of_int chaos_restart_at /. 1_000_000.)
    chaos_shards chaos_offered_load;
  Printf.printf "%s\n" (String.make 76 '-');
  let chaos_off = run_chaos ~instant:false in
  let chaos_on = run_chaos ~instant:true in
  Printf.printf "    %8s %10s %8s %8s %8s %11s %9s %9s\n" "instant"
    "committed" "txn/s" "aborted" "p99 us" "outage txn" "open us" "ttfc us";
  List.iter
    (fun s ->
      Printf.printf "    %8s %10d %8.1f %8d %8d %11d %9d %9d\n"
        (if s.ch_instant then "on" else "off")
        s.ch_committed s.ch_txn_per_sec s.ch_aborted s.ch_p99_us
        s.ch_outage_committed s.ch_open_us s.ch_ttfc_us)
    [ chaos_off; chaos_on ];
  Printf.printf
    "  (outage txn = commits within 1s of the kill; open us = recovery \
     time\n\
    \   before the node serves; ttfc us = restart start to the wounded \
     shard's\n\
    \   first commit)\n";
  write_json pairs ~chaos_off ~chaos_on;
  Printf.printf
    "  (single-shard transactions commit locally and scale with shard \
     count;\n\
    \   cross-shard transactions pay tree 2PC — batching trims its wire \
     messages;\n\
    \   curve written to %s)\n"
    json_file
