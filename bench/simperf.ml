(* Real-time throughput of the simulator core: simulated transactions
   (and engine events) per wall-clock second, optimized core vs the
   [Sim_profile] baseline (the seed's boxed event heap, linear metrics
   index, hashtable epochs/per-node counters, list-append wait queues
   and effect-based per-charge fiber lookup).

   Two engine-core workloads drive the hot path at the fiber counts the
   scale-out arc needs (thousands of mostly-idle sessions, dense
   delay-0 wakeups, a standing population of timers) — there the seed's
   O(n) wait-queue append is quadratic in the session count and
   dominates, which is exactly the pathology ROADMAP item 5 names.
   The CI gate (>= 10x on [messages]) applies to these. Two full-stack
   arms run the PR 6 benchmarks unchanged for context; their hot path
   is the effects-based fiber switch, which this PR does not touch, so
   their speedup is reported but modest and not gated.

   Both modes of every workload must agree exactly on simulated txns,
   events and final virtual time — the determinism contract — and this
   binary fails if they do not. *)

open Tabs_sim

let json_file = "BENCH_simperf.json"

let gate_min_speedup = 10.0

(* Engine-core workloads use a "fast hardware" cost model (Table 5-5
   scaled down ~100x) so that service times stay small against the
   dispatch rate and the session population is mostly idle-waiting —
   the regime the scale-out benches live in. Costs only shape the
   busy/idle mix; wall-clock throughput is what is measured. *)
let core_model =
  Cost_model.make
    [
      (Cost_model.Small_contiguous_message, 30);
      (Cost_model.Datagram, 250);
      (Cost_model.Inter_node_data_server_call, 890);
    ]

type run = {
  txns : int;
  events : int option; (* None when the harness cannot count events *)
  now_us : int;
  wall_s : float;
}

type arm = {
  name : string;
  kind : string; (* "engine_core" | "full_stack" *)
  gated : bool;
  fast : run;
  base : run;
}

let txns_per_s r = float_of_int r.txns /. r.wall_s

let speedup a = txns_per_s a.fast /. txns_per_s a.base

(* ------------------------------------------------------------------ *)
(* messages (engine-core): one dispatch fabric, [clients] session
   fibers parked on a shared mailbox. A dispatcher delivers [per_tick]
   messages every [tick_us]; each delivery wakes the head session,
   which pays the message primitives and parks again. A standing
   population of [timer_pop] per-session timers reschedules itself in
   the far future throughout. One delivery = one simulated txn. *)

let msg_clients = 4096

let msg_nodes = 8

let msg_tick_us = 250

let msg_per_tick = 25

let msg_horizon = 1_000_000 (* 1 virtual second *)

let timer_pop = 2_000

let timer_period = 100_000

let run_messages_core () =
  let engine = Engine.create ~cost_model:core_model () in
  let mailbox : int Engine.Waitq.t = Engine.Waitq.create () in
  let txns = ref 0 in
  for i = 0 to msg_clients - 1 do
    ignore
      (Engine.spawn engine ~node:(i mod msg_nodes) (fun () ->
           while Engine.now engine < msg_horizon do
             let k = Engine.Waitq.wait mailbox in
             Engine.charge engine Cost_model.Small_contiguous_message;
             if k land 7 = 0 then Engine.charge engine Cost_model.Datagram;
             incr txns
           done))
  done;
  let next = ref 0 in
  let rec tick () =
    if Engine.now engine < msg_horizon then begin
      for _ = 1 to msg_per_tick do
        incr next;
        ignore (Engine.Waitq.signal mailbox ~engine !next)
      done;
      Engine.at engine ~delay:msg_tick_us tick
    end
  in
  Engine.at engine ~delay:msg_tick_us tick;
  for i = 0 to timer_pop - 1 do
    let rec again () =
      if Engine.now engine < msg_horizon then
        Engine.at engine ~delay:timer_period again
    in
    Engine.at engine ~delay:(1 + (i * 50 mod timer_period)) again
  done;
  let t0 = Unix.gettimeofday () in
  Engine.run_until engine ~time:msg_horizon;
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    txns = !txns;
    events = Some (Engine.events_processed engine);
    now_us = Engine.now engine;
    wall_s;
  }

(* ------------------------------------------------------------------ *)
(* scaleout (engine-core): [shards] mailboxes on [shards] nodes, each
   with its own dispatcher and session population; deliveries pay the
   inter-node primitives, and a crash/respawn cycle rotates through the
   shards exercising the epoch path (waiters of a crashed shard are
   killed on wake and replaced). *)

let sc_shards = 16

let sc_clients = 4_096 (* 256 per shard *)

let sc_tick_us = 250

let sc_per_tick = 2 (* per shard *)

let sc_horizon = 1_000_000

let sc_crash_period = 200_000

let run_scaleout_core () =
  let engine = Engine.create ~cost_model:core_model () in
  let mailboxes : int Engine.Waitq.t array =
    Array.init sc_shards (fun _ -> Engine.Waitq.create ())
  in
  let txns = ref 0 in
  let spawn_client shard =
    ignore
      (Engine.spawn engine ~node:shard (fun () ->
           while Engine.now engine < sc_horizon do
             let k = Engine.Waitq.wait mailboxes.(shard) in
             Engine.charge engine Cost_model.Inter_node_data_server_call;
             if k land 3 = 0 then Engine.charge engine Cost_model.Datagram;
             incr txns
           done))
  in
  let per_shard = sc_clients / sc_shards in
  for i = 0 to sc_clients - 1 do
    spawn_client (i mod sc_shards)
  done;
  let next = ref 0 in
  Array.iteri
    (fun shard mailbox ->
      let rec tick () =
        if Engine.now engine < sc_horizon then begin
          for _ = 1 to sc_per_tick do
            incr next;
            ignore (Engine.Waitq.signal mailbox ~engine !next)
          done;
          Engine.at engine ~delay:sc_tick_us tick
        end
      in
      Engine.at engine ~delay:((shard * 16) + sc_tick_us) tick)
    mailboxes;
  let cycle = ref 0 in
  let rec crash_tick () =
    if Engine.now engine < sc_horizon then begin
      let shard = !cycle mod sc_shards in
      incr cycle;
      Engine.crash_node engine shard;
      for _ = 1 to per_shard do
        spawn_client shard
      done;
      Engine.at engine ~delay:sc_crash_period crash_tick
    end
  in
  Engine.at engine ~delay:sc_crash_period crash_tick;
  let t0 = Unix.gettimeofday () in
  Engine.run_until engine ~time:sc_horizon;
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    txns = !txns;
    events = Some (Engine.events_processed engine);
    now_us = Engine.now engine;
    wall_s;
  }

(* ------------------------------------------------------------------ *)
(* full-stack arms: the PR 6 benchmarks unchanged, timed end to end
   (cluster construction included; the run dominates). *)

let run_tabs_messages () =
  let t0 = Unix.gettimeofday () in
  let p = Messages.run_point ~workers:16 () in
  let wall_s = Unix.gettimeofday () -. t0 in
  { txns = p.Messages.committed; events = None; now_us = 0; wall_s }

let run_tabs_scaleout () =
  let t0 = Unix.gettimeofday () in
  let s =
    Generator.run ~group_commit:Scaleout.gc_config
      { Generator.default with shards = 8; offered_load = 600. }
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  { txns = s.Generator.committed; events = None; now_us = 0; wall_s }

(* ------------------------------------------------------------------ *)

let run_arm ~name ~kind ~gated f =
  let fast = Sim_profile.with_baseline false f in
  let base = Sim_profile.with_baseline true f in
  (* determinism contract: only wall clock may differ between modes *)
  if fast.txns <> base.txns || fast.events <> base.events
     || fast.now_us <> base.now_us
  then begin
    Printf.eprintf
      "simperf: %s: fast and baseline modes diverged (txns %d/%d, now %d/%d)\n"
      name fast.txns base.txns fast.now_us base.now_us;
    exit 1
  end;
  { name; kind; gated; fast; base }

let arm_json oc (a : arm) =
  let events_field r =
    match r.events with
    | None -> ""
    | Some e ->
        Printf.sprintf ", \"events\": %d, \"events_per_s\": %.0f" e
          (float_of_int e /. r.wall_s)
  in
  Printf.fprintf oc
    "    {\"name\": \"%s\", \"kind\": \"%s\", \"gated\": %b, \"txns\": %d,\n\
    \     \"fast\": {\"wall_s\": %.4f, \"txns_per_s\": %.0f%s},\n\
    \     \"baseline\": {\"wall_s\": %.4f, \"txns_per_s\": %.0f%s},\n\
    \     \"speedup\": %.2f}"
    a.name a.kind a.gated a.fast.txns a.fast.wall_s (txns_per_s a.fast)
    (events_field a.fast) a.base.wall_s (txns_per_s a.base)
    (events_field a.base) (speedup a)

let write_json arms =
  let oc = open_out json_file in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"simperf\",\n\
    \  \"gate_workload\": \"messages\",\n\
    \  \"gate_min_speedup\": %.1f,\n\
    \  \"workloads\": [\n"
    gate_min_speedup;
  List.iteri
    (fun i a ->
      if i > 0 then output_string oc ",\n";
      arm_json oc a)
    arms;
  output_string oc "\n  ]\n}\n";
  close_out oc

let print_simperf () =
  let arms =
    [
      run_arm ~name:"messages" ~kind:"engine_core" ~gated:true
        run_messages_core;
      run_arm ~name:"scaleout" ~kind:"engine_core" ~gated:false
        run_scaleout_core;
      run_arm ~name:"tabs_messages" ~kind:"full_stack" ~gated:false
        run_tabs_messages;
      run_arm ~name:"tabs_scaleout" ~kind:"full_stack" ~gated:false
        run_tabs_scaleout;
    ]
  in
  Printf.printf
    "\nSimulator-core throughput, optimized vs seed-baseline mode:\n";
  Printf.printf "  %-14s %10s %14s %14s %9s\n" "workload" "sim txns"
    "fast txn/s" "base txn/s" "speedup";
  List.iter
    (fun a ->
      Printf.printf "  %-14s %10d %14.0f %14.0f %8.2fx%s\n" a.name a.fast.txns
        (txns_per_s a.fast) (txns_per_s a.base) (speedup a)
        (if a.gated then "  [gate >= 10x]" else ""))
    arms;
  (match List.find_opt (fun a -> a.gated) arms with
  | Some a when speedup a < gate_min_speedup ->
      Printf.printf
        "  WARNING: gated workload %s below %.0fx (CI will fail)\n" a.name
        gate_min_speedup
  | _ -> ());
  write_json arms;
  Printf.printf "  wrote %s\n" json_file
