(* Throughput exploration — the direction Section 7 leaves open: "we
   would like to develop a performance methodology for measuring and
   predicting throughput".

   The Section 5 methodology is strictly no-load latency; TABS itself
   supports concurrent transactions (locking, coroutines), so this
   harness drives N concurrent application fibers against one node and
   reports transactions/second, virtual-time latency percentiles, and
   the abort profile as N grows, under two contention regimes:

   - disjoint: each worker owns its cells (no lock conflicts); the
     stable-storage write serializes commits, so throughput saturates
     at roughly 1/force-time;
   - contended: all workers update the same handful of cells; lock
     waits and time-out aborts appear.

   Each point runs with the tracing subsystem attached: per-transaction
   spans give begin-to-commit latency and the abort-reason breakdown.
   (The Section 5 table reproductions run without tracing and are
   unaffected.) *)

open Tabs_sim
open Tabs_core
open Tabs_servers
open Tabs_obs

type point = {
  workers : int;
  committed : int;
  aborted : int;
  txn_per_sec : float;
  timeouts : int;
  p50 : int; (* commit latency percentiles, virtual µs *)
  p95 : int;
  p99 : int;
  abort_reasons : (Trace.abort_reason * int) list;
}

let run_point ~contended ~workers =
  let cluster = Cluster.create ~nodes:1 () in
  let node = Cluster.node cluster 0 in
  let arr =
    Int_array_server.create (Node.env node) ~name:"t" ~segment:1 ~cells:1024 ()
  in
  let tm = Node.tm node in
  let engine = Cluster.engine cluster in
  let recorder = Recorder.attach engine in
  let horizon = 20_000_000 (* 20 virtual seconds *) in
  let committed = ref 0 and aborted = ref 0 in
  for w = 0 to workers - 1 do
    Cluster.spawn cluster ~node:0 (fun () ->
        let rng = Rng.create ~seed:(w + 1) in
        while Engine.now engine < horizon do
          let cell =
            if contended then Rng.int rng 4
            else (w * 64) + Rng.int rng 16
          in
          match
            Txn_lib.execute_transaction tm (fun tid ->
                let v = Int_array_server.get arr tid cell in
                Int_array_server.set arr tid cell (v + 1))
          with
          | () -> incr committed
          | exception Errors.Lock_timeout _ -> incr aborted
          | exception Errors.Deadlock _ -> incr aborted
          | exception Errors.Transaction_is_aborted _ -> incr aborted
        done)
  done;
  Cluster.run_until cluster ~time:(2 * horizon);
  let spans = Span.of_entries (Recorder.entries recorder) in
  Recorder.detach recorder;
  let latency = Hist.of_list (Span.commit_latencies spans) in
  let timeouts =
    Tabs_lock.Lock_manager.timeouts
      (Server_lib.lock_manager (Int_array_server.server arr))
  in
  {
    workers;
    committed = !committed;
    aborted = !aborted;
    txn_per_sec =
      float_of_int !committed /. (float_of_int horizon /. 1_000_000.);
    timeouts;
    p50 = Hist.p50 latency;
    p95 = Hist.p95 latency;
    p99 = Hist.p99 latency;
    abort_reasons = Span.abort_breakdown spans;
  }

let ms micros = float_of_int micros /. 1000.0

let reasons_string = function
  | [] -> "-"
  | reasons ->
      String.concat ","
        (List.map
           (fun (reason, n) ->
             Printf.sprintf "%s:%d" (Trace.reason_name reason) n)
           reasons)

let print_regime ~contended =
  Printf.printf "\n  %s cells:\n"
    (if contended then "contended (all workers share 4)" else "disjoint");
  Printf.printf "    %8s %10s %10s %12s %9s %9s %9s %9s  %s\n" "workers"
    "committed" "aborted" "txn/sec" "timeouts" "p50(ms)" "p95(ms)" "p99(ms)"
    "aborts-by-reason";
  List.iter
    (fun workers ->
      let p = run_point ~contended ~workers in
      Printf.printf "    %8d %10d %10d %12.2f %9d %9.2f %9.2f %9.2f  %s\n"
        p.workers p.committed p.aborted p.txn_per_sec p.timeouts (ms p.p50)
        (ms p.p95) (ms p.p99)
        (reasons_string p.abort_reasons))
    [ 1; 2; 4; 8 ]

let print_all () =
  Printf.printf
    "\nThroughput exploration (Section 7 future work; virtual time)\n";
  Printf.printf "%s\n" (String.make 64 '-');
  print_regime ~contended:false;
  print_regime ~contended:true;
  Printf.printf
    "  (read-modify-write transactions on one node; each commit forces\n\
    \   the log once, so disjoint throughput approaches the stable-write\n\
    \   bound; contention adds lock waits and, eventually, time-outs;\n\
    \   latency percentiles are begin-to-commit spans from the trace)\n"
