(* Throughput exploration — the direction Section 7 leaves open: "we
   would like to develop a performance methodology for measuring and
   predicting throughput".

   The Section 5 methodology is strictly no-load latency; TABS itself
   supports concurrent transactions (locking, coroutines), so this
   harness drives N concurrent application fibers against one node and
   reports transactions/second, virtual-time latency percentiles, and
   the abort profile as N grows, under two contention regimes:

   - disjoint: each worker owns its cells (no lock conflicts); the
     stable-storage write serializes commits, so throughput saturates
     at roughly 1/force-time;
   - contended: all workers update the same handful of cells; lock
     waits and time-out aborts appear.

   Each point runs with the tracing subsystem attached: per-transaction
   spans give begin-to-commit latency and the abort-reason breakdown.
   (The Section 5 table reproductions run without tracing and are
   unaffected.) *)

open Tabs_sim
open Tabs_core
open Tabs_servers
open Tabs_obs

type point = {
  workers : int;
  committed : int;
  aborted : int;
  txn_per_sec : float;
  timeouts : int;
  forces : int; (* log forces paid over the run *)
  p50 : int; (* commit latency percentiles, virtual µs *)
  p95 : int;
  p99 : int;
  abort_reasons : (Trace.abort_reason * int) list;
}

let run_point ?group_commit ~contended ~workers () =
  let cluster = Cluster.create ~nodes:1 ?group_commit () in
  let node = Cluster.node cluster 0 in
  (* disjoint workers stride one page (64 cells) each; size the array for
     however many were asked for *)
  let cells = max 1024 (workers * 64) in
  let arr =
    Int_array_server.create (Node.env node) ~name:"t" ~segment:1 ~cells ()
  in
  let tm = Node.tm node in
  let engine = Cluster.engine cluster in
  let recorder = Recorder.attach engine in
  let horizon = 20_000_000 (* 20 virtual seconds *) in
  let committed = ref 0 and aborted = ref 0 in
  for w = 0 to workers - 1 do
    Cluster.spawn cluster ~node:0 (fun () ->
        let rng = Rng.create ~seed:(w + 1) in
        while Engine.now engine < horizon do
          let cell =
            if contended then Rng.int rng 4
            else (w * 64) + Rng.int rng 16
          in
          match
            Txn_lib.execute_transaction tm (fun tid ->
                let v = Int_array_server.get arr tid cell in
                Int_array_server.set arr tid cell (v + 1))
          with
          | () -> incr committed
          | exception Errors.Lock_timeout _ -> incr aborted
          | exception Errors.Deadlock _ -> incr aborted
          | exception Errors.Transaction_is_aborted _ -> incr aborted
        done)
  done;
  Cluster.run_until cluster ~time:(2 * horizon);
  let spans = Span.of_entries (Recorder.entries recorder) in
  Recorder.detach recorder;
  let latency = Hist.of_list (Span.commit_latencies spans) in
  let timeouts =
    Tabs_lock.Lock_manager.timeouts
      (Server_lib.lock_manager (Int_array_server.server arr))
  in
  {
    workers;
    committed = !committed;
    aborted = !aborted;
    txn_per_sec =
      float_of_int !committed /. (float_of_int horizon /. 1_000_000.);
    timeouts;
    forces = Tabs_wal.Log_manager.force_count (Node.log node);
    p50 = Hist.p50 latency;
    p95 = Hist.p95 latency;
    p99 = Hist.p99 latency;
    abort_reasons = Span.abort_breakdown spans;
  }

let ms micros = float_of_int micros /. 1000.0

let reasons_string = function
  | [] -> "-"
  | reasons ->
      String.concat ","
        (List.map
           (fun (reason, n) ->
             Printf.sprintf "%s:%d" (Trace.reason_name reason) n)
           reasons)

let print_regime ~contended =
  Printf.printf "\n  %s cells:\n"
    (if contended then "contended (all workers share 4)" else "disjoint");
  Printf.printf "    %8s %10s %10s %12s %9s %9s %9s %9s  %s\n" "workers"
    "committed" "aborted" "txn/sec" "timeouts" "p50(ms)" "p95(ms)" "p99(ms)"
    "aborts-by-reason";
  List.iter
    (fun workers ->
      let p = run_point ~contended ~workers () in
      Printf.printf "    %8d %10d %10d %12.2f %9d %9.2f %9.2f %9.2f  %s\n"
        p.workers p.committed p.aborted p.txn_per_sec p.timeouts (ms p.p50)
        (ms p.p95) (ms p.p99)
        (reasons_string p.abort_reasons))
    [ 1; 2; 4; 8 ]

let print_all () =
  Printf.printf
    "\nThroughput exploration (Section 7 future work; virtual time)\n";
  Printf.printf "%s\n" (String.make 64 '-');
  print_regime ~contended:false;
  print_regime ~contended:true;
  Printf.printf
    "  (read-modify-write transactions on one node; each commit forces\n\
    \   the log once, so disjoint throughput approaches the stable-write\n\
    \   bound; contention adds lock waits and, eventually, time-outs;\n\
    \   latency percentiles are begin-to-commit spans from the trace)\n"

(* Group commit: the same disjoint workload with and without the force
   batcher. Without it the stable-storage write serializes every commit;
   with it all commits arriving within the batch window share one
   stable round, so disjoint throughput scales with the worker count
   until the window, not the force, is the bound. *)

type gc_point = { off : point; on_ : point }

let gc_config = { Tabs_recovery.Group_commit.window = 5_000; max_batch = 64 }

let gc_workers = [ 1; 2; 4; 8; 16; 32 ]

let run_gc_comparison () =
  List.map
    (fun workers ->
      {
        off = run_point ~contended:false ~workers ();
        on_ = run_point ~group_commit:gc_config ~contended:false ~workers ();
      })
    gc_workers

let forces_per_commit p =
  if p.committed = 0 then 0.
  else float_of_int p.forces /. float_of_int p.committed

let speedup g =
  if g.off.txn_per_sec = 0. then 0. else g.on_.txn_per_sec /. g.off.txn_per_sec

let gc_json_file = "BENCH_group_commit.json"

let write_gc_json points =
  let oc = open_out gc_json_file in
  Printf.fprintf oc
    "{\n  \"window_us\": %d,\n  \"max_batch\": %d,\n  \"points\": [\n"
    gc_config.window gc_config.max_batch;
  List.iteri
    (fun i g ->
      Printf.fprintf oc
        "    {\"workers\": %d, \"off_txn_per_sec\": %.2f, \"on_txn_per_sec\": \
         %.2f, \"off_committed\": %d, \"on_committed\": %d, \"off_forces\": \
         %d, \"on_forces\": %d, \"speedup\": %.3f, \"on_forces_per_commit\": \
         %.4f, \"on_p95_ms\": %.2f}%s\n"
        g.off.workers g.off.txn_per_sec g.on_.txn_per_sec g.off.committed
        g.on_.committed g.off.forces g.on_.forces (speedup g)
        (forces_per_commit g.on_) (ms g.on_.p95)
        (if i = List.length points - 1 then "" else ","))
    points;
  output_string oc "  ]\n}\n";
  close_out oc

let print_group_commit () =
  Printf.printf
    "\nGroup commit: batched log forces (disjoint cells; window %d us, max \
     batch %d)\n"
    gc_config.window gc_config.max_batch;
  Printf.printf "%s\n" (String.make 64 '-');
  Printf.printf "    %8s %12s %12s %8s %10s %10s %12s %9s\n" "workers"
    "off txn/s" "on txn/s" "speedup" "off forces" "on forces" "forces/commit"
    "on p95ms";
  let points = run_gc_comparison () in
  List.iter
    (fun g ->
      Printf.printf "    %8d %12.2f %12.2f %7.2fx %10d %10d %12.4f %9.2f\n"
        g.off.workers g.off.txn_per_sec g.on_.txn_per_sec (speedup g)
        g.off.forces g.on_.forces (forces_per_commit g.on_) (ms g.on_.p95))
    points;
  write_gc_json points;
  Printf.printf
    "  (each force is one large message + one stable write per page; off:\n\
    \   every commit pays its own force; on: all commits in a window share\n\
    \   one; curve written to %s)\n"
    gc_json_file
