(* The fourteen benchmarks of Section 5, run against real TABS clusters
   on the virtual clock, with per-phase primitive counting.

   Each benchmark is "among the simplest that can be designed to
   produce the desired system behavior": read-only vs update, no
   paging / sequential paging / random paging, single vs multiple
   operations, one / two / three nodes. The paging benchmarks use a
   5000-page array, more than three times the simulated physical
   memory. *)

open Tabs_sim
open Tabs_core
open Tabs_servers

let paging_pages = 5000

let small_cells = 1024

(* Per-transaction averages for one benchmark run. *)
type result = {
  name : string;
  iterations : int;
  pre : float array; (* per-primitive weights, Cost_model.all order *)
  commit : float array;
  elided : float array;
      (* per-primitive weights the Integrated profile turned into
         procedure calls; all zero under Classic *)
  elapsed_us : float;
  process_us : float; (* TM + RM + CM CPU, all nodes *)
  ds_us : float;
  predicted_us : float; (* sum over primitives of weight x model cost *)
}

type ctx = {
  cluster : Cluster.t;
  rpc : Rpc.registry;
  tm : Tabs_tm.Txn_mgr.t;
  mutable cursor : int;
  rng : Rng.t;
}

type spec = {
  spec_name : string;
  nodes : int;
  paging : bool; (* needs big arrays *)
  body : ctx -> Tabs_wal.Tid.t -> unit;
}

let array_name node = Printf.sprintf "array%d" node

(* benchmark bodies ------------------------------------------------------ *)

let rd ctx tid ~dest ?access cell =
  ignore
    (Int_array_server.call_get ctx.rpc ~dest ~server:(array_name dest) tid
       ?access cell)

let wr ctx tid ~dest ?access cell v =
  Int_array_server.call_set ctx.rpc ~dest ~server:(array_name dest) tid
    ?access cell v

let seq_cell ctx =
  let cell = ctx.cursor mod paging_pages * Int_array_server.cells_per_page in
  ctx.cursor <- ctx.cursor + 1;
  cell

let random_cell ctx =
  Rng.int ctx.rng paging_pages * Int_array_server.cells_per_page

let specs =
  [
    {
      spec_name = "1 Local Read, No Paging";
      nodes = 1;
      paging = false;
      body = (fun ctx tid -> rd ctx tid ~dest:0 0);
    };
    {
      spec_name = "5 Local Read, No Paging";
      nodes = 1;
      paging = false;
      body =
        (fun ctx tid ->
          for _ = 1 to 5 do
            rd ctx tid ~dest:0 0
          done);
    };
    {
      spec_name = "1 Local Read, Seq. Paging";
      nodes = 1;
      paging = true;
      body = (fun ctx tid -> rd ctx tid ~dest:0 ~access:`Sequential (seq_cell ctx));
    };
    {
      spec_name = "1 Local Read, Random Paging";
      nodes = 1;
      paging = true;
      body = (fun ctx tid -> rd ctx tid ~dest:0 ~access:`Random (random_cell ctx));
    };
    {
      spec_name = "1 Local Write, No Paging";
      nodes = 1;
      paging = false;
      body = (fun ctx tid -> wr ctx tid ~dest:0 0 1);
    };
    {
      spec_name = "5 Local Write, No Paging";
      nodes = 1;
      paging = false;
      body =
        (fun ctx tid ->
          (* the paper's benchmark writes the same array element five
             times: five log records, one dirty page *)
          for i = 1 to 5 do
            wr ctx tid ~dest:0 0 i
          done);
    };
    {
      spec_name = "1 Local Write, Seq. Paging";
      nodes = 1;
      paging = true;
      body = (fun ctx tid -> wr ctx tid ~dest:0 ~access:`Sequential (seq_cell ctx) 1);
    };
    {
      spec_name = "1 Lcl Rd, 1 Rem Rd, No Paging";
      nodes = 2;
      paging = false;
      body =
        (fun ctx tid ->
          rd ctx tid ~dest:0 0;
          rd ctx tid ~dest:1 0);
    };
    {
      spec_name = "1 Lcl Rd, 5 Rem Rd, No Paging";
      nodes = 2;
      paging = false;
      body =
        (fun ctx tid ->
          rd ctx tid ~dest:0 0;
          for _ = 1 to 5 do
            rd ctx tid ~dest:1 0
          done);
    };
    {
      spec_name = "1 Lcl Rd, 1 Rem Rd, Seq. Paging";
      nodes = 2;
      paging = true;
      body =
        (fun ctx tid ->
          let cell = seq_cell ctx in
          rd ctx tid ~dest:0 ~access:`Sequential cell;
          rd ctx tid ~dest:1 ~access:`Sequential cell);
    };
    {
      spec_name = "1 Lcl Wr, 1 Rem Wr, No Paging";
      nodes = 2;
      paging = false;
      body =
        (fun ctx tid ->
          wr ctx tid ~dest:0 0 1;
          wr ctx tid ~dest:1 0 1);
    };
    {
      spec_name = "1 Lcl Wr, 1 Rem Wr, Seq. Paging";
      nodes = 2;
      paging = true;
      body =
        (fun ctx tid ->
          let cell = seq_cell ctx in
          wr ctx tid ~dest:0 ~access:`Sequential cell 1;
          wr ctx tid ~dest:1 ~access:`Sequential cell 1);
    };
    {
      spec_name = "1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP";
      nodes = 3;
      paging = false;
      body =
        (fun ctx tid ->
          rd ctx tid ~dest:0 0;
          rd ctx tid ~dest:1 0;
          rd ctx tid ~dest:2 0);
    };
    {
      spec_name = "1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP";
      nodes = 3;
      paging = false;
      body =
        (fun ctx tid ->
          wr ctx tid ~dest:0 0 1;
          wr ctx tid ~dest:1 0 1;
          wr ctx tid ~dest:2 0 1);
    };
  ]

(* Runner ------------------------------------------------------------------ *)

let to_float_counts m =
  Array.of_list
    (List.map (fun p -> Tabs_sim.Metrics.weight m p) Cost_model.all)

let to_float_elided m =
  Array.of_list
    (List.map (fun p -> Tabs_sim.Metrics.elided_weight m p) Cost_model.all)

let sub_counts a b = Array.mapi (fun i x -> x -. b.(i)) a

let add_into acc x = Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) x

let run_spec ?(iterations = 25) ?(warmup = 5) ?profile ~model spec =
  let cluster =
    Cluster.create ~cost_model:model ?profile ~nodes:spec.nodes ()
  in
  let engine = Cluster.engine cluster in
  let cells =
    if spec.paging then paging_pages * Int_array_server.cells_per_page
    else small_cells
  in
  List.iter
    (fun node ->
      ignore
        (Int_array_server.create (Node.env node)
           ~name:(array_name (Node.id node))
           ~segment:1 ~cells ()))
    (Cluster.nodes cluster);
  let node0 = Cluster.node cluster 0 in
  let ctx =
    {
      cluster;
      rpc = Node.rpc node0;
      tm = Node.tm node0;
      cursor = 0;
      rng = Rng.create ~seed:7;
    }
  in
  let n_prims = List.length Cost_model.all in
  let pre_total = Array.make n_prims 0. in
  let commit_total = Array.make n_prims 0. in
  let elided_total = Array.make n_prims 0. in
  let elapsed = ref 0 in
  let process = ref 0 in
  let ds = ref 0 in
  let cpu_now () =
    ( Engine.cpu_time engine ~process:"tm"
      + Engine.cpu_time engine ~process:"rm"
      + Engine.cpu_time engine ~process:"cm",
      Engine.cpu_time engine ~process:"ds" )
  in
  Cluster.run_fiber cluster ~node:0 (fun () ->
      for i = 1 to warmup + iterations do
        let measured = i > warmup in
        let s0 = Metrics.snapshot (Engine.metrics engine) in
        let t0 = Engine.now engine in
        let tabs0, ds0 = cpu_now () in
        let tid = Txn_lib.begin_transaction ctx.tm () in
        spec.body ctx tid;
        let s1 = Metrics.snapshot (Engine.metrics engine) in
        let committed = Txn_lib.end_transaction ctx.tm tid in
        assert committed;
        let s2 = Metrics.snapshot (Engine.metrics engine) in
        let t1 = Engine.now engine in
        let tabs1, ds1 = cpu_now () in
        if measured then begin
          add_into pre_total
            (sub_counts (to_float_counts s1) (to_float_counts s0));
          add_into commit_total
            (sub_counts (to_float_counts s2) (to_float_counts s1));
          add_into elided_total
            (sub_counts (to_float_elided s2) (to_float_elided s0));
          elapsed := !elapsed + (t1 - t0);
          process := !process + (tabs1 - tabs0);
          ds := !ds + (ds1 - ds0)
        end
      done);
  let n = float_of_int iterations in
  let pre = Array.map (fun x -> x /. n) pre_total in
  let commit = Array.map (fun x -> x /. n) commit_total in
  let predicted =
    List.fold_left
      (fun acc (i, p) ->
        acc
        +. ((pre.(i) +. commit.(i)) *. float_of_int (Cost_model.cost model p)))
      0.
      (List.mapi (fun i p -> (i, p)) Cost_model.all)
  in
  {
    name = spec.spec_name;
    iterations;
    pre;
    commit;
    elided = Array.map (fun x -> x /. n) elided_total;
    elapsed_us = float_of_int !elapsed /. n;
    process_us = float_of_int !process /. n;
    ds_us = float_of_int !ds /. n;
    predicted_us = predicted;
  }

let run_all ?iterations ?warmup ?profile ~model () =
  List.map (run_spec ?iterations ?warmup ?profile ~model) specs

(* The Section 7 composite transactions: five operations, each updating
   two pages. *)
let run_composite ~in_memory ~remote () =
  let nodes = if remote then 2 else 1 in
  let cluster = Cluster.create ~nodes () in
  let engine = Cluster.engine cluster in
  let cells = paging_pages * Int_array_server.cells_per_page in
  List.iter
    (fun node ->
      ignore
        (Int_array_server.create (Node.env node)
           ~name:(array_name (Node.id node))
           ~segment:1 ~cells ()))
    (Cluster.nodes cluster);
  let node0 = Cluster.node cluster 0 in
  let ctx =
    {
      cluster;
      rpc = Node.rpc node0;
      tm = Node.tm node0;
      cursor = 0;
      rng = Rng.create ~seed:11;
    }
  in
  Cluster.run_fiber cluster ~node:0 (fun () ->
      (* optionally pre-touch the pages so the data is in main memory *)
      let base = 100 in
      let cell op page =
        (* two pages per op, distinct pages per op *)
        (base + (op * 2) + page) * Int_array_server.cells_per_page
      in
      if in_memory then
        Txn_lib.execute_transaction ctx.tm (fun tid ->
            for op = 0 to 4 do
              rd ctx tid ~dest:0 (cell op 0);
              rd ctx tid ~dest:0 (cell op 1)
            done);
      let t0 = Engine.now engine in
      Txn_lib.execute_transaction ctx.tm (fun tid ->
          for op = 0 to 4 do
            let dest = if remote then 1 else 0 in
            wr ctx tid ~dest (cell op 0) 1;
            wr ctx tid ~dest (cell op 1) 1
          done);
      Engine.now engine - t0)
