(* tabs-demo: drive TABS scenarios from the command line.

   Subcommands:
     crash       single-node crash/recovery walkthrough
     twophase    distributed commit across N nodes, with optional
                 mid-commit coordinator crash (in-doubt resolution)
     voting      replicated directory with a failing representative
     screen      the I/O server's Figure 4-1 display behaviour
     stats       run one benchmark and print its primitive profile *)

open Cmdliner
open Tabs_sim
open Tabs_core
open Tabs_servers

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* Every subcommand accepts --profile: classic is the measured Figure 3-1
   prototype; integrated is the Section 5.3 merged TM/RM/kernel process. *)
let profile_conv =
  let parse s =
    match Profile.of_string s with
    | Some p -> Ok p
    | None ->
        Error (`Msg (Printf.sprintf "unknown profile %S (expected classic or integrated)" s))
  in
  Arg.conv (parse, Profile.pp)

let profile_arg =
  Arg.(
    value
    & opt profile_conv Profile.Classic
    & info [ "profile" ] ~docv:"PROFILE"
        ~doc:
          "Node architecture: $(b,classic) (the measured prototype, with \
           separate Transaction Manager, Recovery Manager, and kernel \
           processes) or $(b,integrated) (the Section 5.3 improved \
           architecture, which merges them and elides their messages).")

(* Every subcommand accepts --group-commit: force batching across
   concurrent committers (off by default, as the paper measured). *)
let group_commit_arg =
  let flag =
    Arg.(
      value & flag
      & info [ "group-commit" ]
          ~doc:
            "Enable group commit on every node: transactions reaching \
             their commit-record force within one batch window share a \
             single stable-storage round instead of paying one each.")
  in
  Term.(
    const (fun on -> if on then Some Tabs_recovery.Group_commit.default else None)
    $ flag)

(* ... and --checkpoint-interval: the background fuzzy-checkpoint and
   log-reclamation daemon (off by default, as the paper measured). *)
let checkpointing_arg =
  let interval =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-interval" ] ~docv:"USEC"
          ~doc:
            "Enable background fuzzy checkpoints on every node, at most \
             one per $(docv) of virtual time: dirty pages trickle out, \
             checkpoint records anchor restart recovery, and the log is \
             reclaimed without foreground flushes.")
  in
  Term.(
    const
      (Option.map (fun interval ->
           { Tabs_recovery.Checkpointer.default with interval }))
    $ interval)

(* ... and --comm-batch: the Communication Manager's comm-batching
   layer (off by default, keeping the measured tables byte-identical). *)
let comm_batch_arg =
  let flag =
    Arg.(
      value & flag
      & info [ "comm-batch" ]
          ~doc:
            "Enable comm batching on every node: session acks are \
             delayed so they can piggyback on reverse-direction frames, \
             and frames to the same peer within a flush window coalesce \
             into one multi-frame datagram.")
  in
  Term.(
    const (fun on -> if on then Some Tabs_net.Comm_mgr.default_batching else None)
    $ flag)

(* ... and --commit-protocol: blocking two-phase commit (the paper's
   protocol, the default) or non-blocking Paxos Commit. *)
let commit_protocol_conv =
  let parse s =
    match Tabs_tm.Commit_protocol.of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown commit protocol %S (expected 2pc or paxos)" s))
  in
  Arg.conv (parse, fun ppf p ->
      Format.pp_print_string ppf (Tabs_tm.Commit_protocol.to_string p))

let commit_protocol_arg =
  Arg.(
    value
    & opt commit_protocol_conv Tabs_tm.Commit_protocol.default
    & info [ "commit-protocol" ] ~docv:"PROTOCOL"
        ~doc:
          "Distributed commit protocol: $(b,2pc) (the paper's blocking \
           two-phase commit) or $(b,paxos) (Paxos Commit with 2F+1 = 3 \
           acceptors on nodes 0-2: prepared participants are released \
           by an acceptor takeover even while the coordinator is down).")

(* Every subcommand also accepts --trace (human-readable event dump +
   span summary on stdout) and --trace-jsonl FILE (JSON Lines export). *)
type trace_opts = { dump : bool; jsonl : string option }

let trace_arg =
  let dump =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record structured trace events (transactions, locks, WAL, \
             2PC phases, retransmissions) during the run and print a \
             human-readable dump plus per-transaction span summary.")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-jsonl" ] ~docv:"FILE"
          ~doc:"Write the recorded trace as JSON Lines to $(docv).")
  in
  Term.(const (fun dump jsonl -> { dump; jsonl }) $ dump $ jsonl)

let trace_enabled topts = topts.dump || topts.jsonl <> None

let start_trace topts c =
  if trace_enabled topts then Some (Tabs_obs.Recorder.attach (Cluster.engine c))
  else None

let finish_trace topts = function
  | None -> ()
  | Some recorder ->
      let entries = Tabs_obs.Recorder.entries recorder in
      Tabs_obs.Recorder.detach recorder;
      (match topts.jsonl with
      | Some path ->
          Tabs_obs.Jsonl.to_file path entries;
          say "trace: wrote %d events to %s" (List.length entries) path
      | None -> ());
      if topts.dump then begin
        say "--- trace (%d events) ---" (List.length entries);
        Tabs_obs.Render.dump stdout entries;
        Tabs_obs.Render.span_summary stdout (Tabs_obs.Span.of_entries entries);
        flush stdout
      end

(* crash ------------------------------------------------------------------ *)

let run_crash profile group_commit checkpointing comm_batching topts instant =
  let c = Cluster.create ~nodes:1 ~profile ?group_commit ?checkpointing
      ?comm_batching ~instant_restart:instant () in
  let tr = start_trace topts c in
  let node = Cluster.node c 0 in
  let arr = Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells:64 () in
  let tm = Node.tm node in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set arr tid 0 7);
      say "committed cell0 = 7");
  Cluster.spawn c ~node:0 (fun () ->
      let t = Txn_lib.begin_transaction tm () in
      Int_array_server.set arr t 0 666;
      Tabs_wal.Log_manager.force_all (Node.log node);
      Tabs_accent.Vm.flush_all (Node.vm node);
      say "uncommitted cell0 = 666 leaked to disk; crashing now...";
      Engine.delay 10_000_000);
  Cluster.run_until c ~time:5_000_000;
  Node.crash node;
  let holder = ref None in
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node ~reinstall:(fun env ->
            holder := Some (Int_array_server.create env ~name:"a" ~segment:1 ~cells:64 ())) ())
  in
  say "recovery: scanned %d records, %d loser(s) rolled back"
    outcome.records_scanned
    (List.length outcome.losers);
  if outcome.open_early then
    say "instant restart: node open after %d virtual us (redo parked)"
      outcome.time_to_open_us;
  let arr = Option.get !holder in
  Cluster.run_fiber c ~node:0 (fun () ->
      let v =
        Txn_lib.execute_transaction (Node.tm node) (fun tid ->
            Int_array_server.get arr tid 0)
      in
      say "cell0 after recovery = %d (the uncommitted 666 is gone)" v);
  if instant then begin
    let m = Metrics.recovery (Engine.metrics (Cluster.engine c)) ~node:0 in
    say
      "pages replayed: %d on first touch, %d by trickle, %d at restart; %d \
       still pending"
      m.Metrics.ondemand_pages m.Metrics.trickle_pages m.Metrics.restart_pages
      m.Metrics.pending_pages
  end;
  finish_trace topts tr;
  0

(* twophase ---------------------------------------------------------------- *)

let run_twophase profile group_commit checkpointing comm_batching
    commit_protocol topts nodes kill_coordinator =
  let nodes = max 2 (min 5 nodes) in
  let c = Cluster.create ~nodes ~profile ?group_commit ?checkpointing
      ?comm_batching ~commit_protocol () in
  say "commit protocol: %s" (Tabs_tm.Commit_protocol.to_string commit_protocol);
  let tr = start_trace topts c in
  List.iter
    (fun node ->
      ignore
        (Int_array_server.create (Node.env node)
           ~name:(Printf.sprintf "a%d" (Node.id node))
           ~segment:1 ~cells:64 ()))
    (Cluster.nodes c);
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 in
  let rpc = Node.rpc n0 in
  let the_tid = ref None in
  Cluster.spawn c ~node:0 (fun () ->
      let tid = Txn_lib.begin_transaction tm () in
      the_tid := Some tid;
      for dest = 0 to nodes - 1 do
        Int_array_server.call_set rpc ~dest
          ~server:(Printf.sprintf "a%d" dest)
          tid 0 (100 + dest)
      done;
      say "wrote one cell on each of %d nodes under %s" nodes
        (Tabs_wal.Tid.to_string tid);
      let ok = Txn_lib.end_transaction tm tid in
      say "coordinator's verdict: %s" (if ok then "committed" else "aborted"));
  if kill_coordinator then
    ignore
      (Engine.spawn (Cluster.engine c) (fun () ->
           let rec watch () =
             Engine.delay 1_000;
             let decided =
               match !the_tid with
               | Some tid -> Tabs_tm.Txn_mgr.outcome_of tm tid <> None
               | None -> false
             in
             if decided then begin
               say "! crashing coordinator right after its commit record";
               Node.crash n0
             end
             else watch ()
           in
           watch ()));
  Cluster.run_until c ~time:5_000_000;
  List.iter
    (fun node ->
      let id = Node.id node in
      if id > 0 then begin
        let in_doubt = Tabs_tm.Txn_mgr.in_doubt (Node.tm node) in
        let abandoned = Tabs_tm.Txn_mgr.resolutions_abandoned (Node.tm node) in
        say "node %d: %d transaction(s) in doubt%s" id (List.length in_doubt)
          (if abandoned > 0 then
             Printf.sprintf ", %d resolution(s) abandoned" abandoned
           else "")
      end)
    (Cluster.nodes c);
  if kill_coordinator then begin
    say "restarting coordinator; subordinates query its recovered log...";
    ignore
      (Cluster.run_fiber c ~node:0 (fun () ->
           Node.restart n0 ~reinstall:(fun env ->
               ignore
                 (Int_array_server.create env ~name:"a0" ~segment:1 ~cells:64 ())) ()));
    Cluster.run_until c ~time:(Engine.now (Cluster.engine c) + 60_000_000)
  end;
  List.iter
    (fun node ->
      let id = Node.id node in
      let v =
        Cluster.run_fiber c ~node:id (fun () ->
            Txn_lib.execute_transaction (Node.tm node) (fun tid ->
                Int_array_server.call_get (Node.rpc node) ~dest:id
                  ~server:(Printf.sprintf "a%d" id)
                  tid 0))
      in
      say "node %d cell0 = %d" id v)
    (Cluster.nodes c);
  finish_trace topts tr;
  0

(* voting -------------------------------------------------------------------- *)

let run_voting profile group_commit checkpointing comm_batching topts =
  let c = Cluster.create ~nodes:3 ~profile ?group_commit ?checkpointing
      ?comm_batching () in
  let tr = start_trace topts c in
  List.iter
    (fun node ->
      ignore
        (Btree_server.create (Node.env node)
           ~name:(Printf.sprintf "rep%d" (Node.id node))
           ~segment:5 ()))
    (Cluster.nodes c);
  let n0 = Cluster.node c 0 in
  let dir =
    Replicated_directory.create ~rpc:(Node.rpc n0)
      ~replicas:
        [
          { Replicated_directory.node = 0; server = "rep0"; votes = 1 };
          { Replicated_directory.node = 1; server = "rep1"; votes = 1 };
          { Replicated_directory.node = 2; server = "rep2"; votes = 1 };
        ]
      ~read_quorum:2 ~write_quorum:2
  in
  let tm = Node.tm n0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Replicated_directory.update dir tid ~key:"leader" ~value:"node-0");
      say "wrote leader=node-0 to a 2-of-3 write quorum");
  Node.crash (Cluster.node c 1);
  say "node 1 crashed";
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Replicated_directory.update dir tid ~key:"leader" ~value:"node-2");
      let v =
        Txn_lib.execute_transaction tm (fun tid ->
            Replicated_directory.lookup dir tid ~key:"leader")
      in
      say "with node 1 down: leader=%s (version %d)"
        (Option.value v ~default:"<none>")
        (Txn_lib.execute_transaction tm (fun tid ->
             Replicated_directory.entry_version dir tid ~key:"leader")));
  finish_trace topts tr;
  0

(* screen -------------------------------------------------------------------- *)

let run_screen profile group_commit checkpointing comm_batching topts =
  let c = Cluster.create ~nodes:1 ~profile ?group_commit ?checkpointing
      ?comm_batching () in
  let tr = start_trace topts c in
  let node = Cluster.node c 0 in
  let io = Io_server.create (Node.env node) ~name:"io" ~segment:6 () in
  let tm = Node.tm node in
  Cluster.spawn c ~node:0 (fun () ->
      let a = Io_server.obtain_io_area io in
      Txn_lib.execute_transaction tm (fun tid ->
          Io_server.writeln_to_area io tid a "first line (will commit)");
      (let t = Txn_lib.begin_transaction tm () in
       Io_server.writeln_to_area io t a "second line (will abort)";
       Txn_lib.abort_transaction tm t);
      Txn_lib.execute_transaction tm (fun tid ->
          Io_server.writeln_to_area io tid a "third line (will commit)";
          say "%s" (Io_server.render_text io);
          Engine.delay 10_000));
  Cluster.run c;
  say "--- final screen ---";
  Cluster.run_fiber c ~node:0 (fun () -> say "%s" (Io_server.render_text io));
  finish_trace topts tr;
  0

(* stats --------------------------------------------------------------------- *)

let run_stats profile group_commit checkpointing comm_batching topts index =
  let specs = Workload_specs.specs in
  if index < 0 || index >= List.length specs then begin
    say "benchmark index out of range (0..%d):" (List.length specs - 1);
    List.iteri (fun i (name, _, _) -> say "  %2d  %s" i name) specs;
    1
  end
  else begin
    let name, nodes, body = List.nth specs index in
    say "running benchmark: %s (%d node(s))" name nodes;
    let c = Cluster.create ~nodes ~profile ?group_commit ?checkpointing
      ?comm_batching () in
    let tr = start_trace topts c in
    List.iter
      (fun node ->
        ignore
          (Int_array_server.create (Node.env node)
             ~name:(Printf.sprintf "a%d" (Node.id node))
             ~segment:1 ~cells:1024 ()))
      (Cluster.nodes c);
    let n0 = Cluster.node c 0 in
    let tm = Node.tm n0 in
    let engine = Cluster.engine c in
    Cluster.run_fiber c ~node:0 (fun () ->
        let t0 = Engine.now engine in
        let before = Metrics.snapshot (Engine.metrics engine) in
        for _ = 1 to 10 do
          Txn_lib.execute_transaction tm (fun tid -> body (Node.rpc n0) tid)
        done;
        let elapsed = Engine.now engine - t0 in
        let counts =
          Metrics.diff
            ~later:(Metrics.snapshot (Engine.metrics engine))
            ~earlier:before
        in
        say "10 transactions in %.1f virtual ms (%.1f ms each)"
          (float_of_int elapsed /. 1000.)
          (float_of_int elapsed /. 10_000.);
        say "primitive profile per transaction:";
        List.iter
          (fun p ->
            let w = Metrics.weight counts p /. 10. in
            if w > 0.001 then say "  %-30s %6.2f" (Cost_model.name p) w)
          Cost_model.all;
        if profile = Profile.Integrated then begin
          say "elided by the integrated architecture (per transaction):";
          List.iter
            (fun p ->
              let w = Metrics.elided_weight counts p /. 10. in
              if w > 0.001 then say "  %-30s %6.2f" (Cost_model.name p) w)
            Cost_model.all
        end);
    finish_trace topts tr;
    0
  end

(* scaleout ------------------------------------------------------------------- *)

let run_scaleout profile group_commit checkpointing comm_batching topts shards
    theta cross_frac offered_load =
  let shards = max 1 shards in
  if theta < 0. || theta >= 1. then begin
    say "--zipf must be in [0, 1)";
    1
  end
  else begin
    let config =
      {
        Tabs_bench.Generator.default with
        shards;
        theta;
        cross_frac = Float.max 0. (Float.min 1. cross_frac);
        offered_load = Float.max 1. offered_load;
      }
    in
    say
      "offering %.0f txn/s to %d shard(s) for %.0f virtual seconds\n\
       (Zipf theta %.2f over %d keys, %.0f%% cross-shard%s%s)"
      config.offered_load shards
      (float_of_int config.horizon /. 1_000_000.)
      config.theta config.keys
      (100. *. config.cross_frac)
      (if group_commit <> None then ", group commit" else "")
      (if comm_batching <> None then ", comm batching" else "");
    if trace_enabled topts then
      say "(note: --trace records the whole open-loop run; expect many events)";
    (* the generator builds its own cluster, so tracing attaches after *)
    let stats =
      Tabs_bench.Generator.run ~profile ?group_commit ?checkpointing
        ?comm_batching config
    in
    say "offered %d, admitted %d, shed %d" stats.offered stats.admitted
      stats.shed;
    say "committed %d (%.1f txn/s), aborted %d" stats.committed
      stats.txn_per_sec stats.aborted;
    say "  single-shard: %d committed, p50 %d us, p95 %d us"
      stats.single_committed stats.p50_single_us stats.p95_single_us;
    if stats.cross_committed > 0 then
      say
        "  cross-shard:  %d committed, p50 %d us, p95 %d us (2PC tax: +%d \
         us at p50; %.1f wire msgs per cross commit)"
        stats.cross_committed stats.p50_cross_us stats.p95_cross_us
        (stats.p50_cross_us - stats.p50_single_us)
        stats.msgs_per_cross_commit;
    say "per-shard committed: [%s]"
      (String.concat "; "
         (Array.to_list (Array.map string_of_int stats.per_shard_committed)));
    0
  end

(* cmdliner wiring ------------------------------------------------------------- *)

let crash_cmd =
  let instant =
    Arg.(
      value & flag
      & info [ "instant" ]
          ~doc:
            "Restart with instant restart: the node opens right after the \
             analysis scan and each page's parked log chain is replayed on \
             its first touch (or by the background trickle).")
  in
  Cmd.v (Cmd.info "crash" ~doc:"Single-node crash and recovery walkthrough")
    Term.(
      const run_crash $ profile_arg $ group_commit_arg $ checkpointing_arg
      $ comm_batch_arg $ trace_arg $ instant)

let twophase_cmd =
  let nodes =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~doc:"Number of nodes (2-5).")
  in
  let kill =
    Arg.(
      value & flag
      & info [ "kill-coordinator" ]
          ~doc:"Crash the coordinator between its commit record and the \
                commit datagrams, demonstrating in-doubt blocking and \
                resolution.")
  in
  Cmd.v
    (Cmd.info "twophase" ~doc:"Distributed tree two-phase commit")
    Term.(
      const run_twophase $ profile_arg $ group_commit_arg $ checkpointing_arg
      $ comm_batch_arg $ commit_protocol_arg $ trace_arg $ nodes $ kill)

let voting_cmd =
  Cmd.v
    (Cmd.info "voting" ~doc:"Replicated directory with weighted voting")
    Term.(
      const run_voting $ profile_arg $ group_commit_arg $ checkpointing_arg
      $ comm_batch_arg $ trace_arg)

let screen_cmd =
  Cmd.v
    (Cmd.info "screen" ~doc:"Transactional display output (I/O server)")
    Term.(
      const run_screen $ profile_arg $ group_commit_arg $ checkpointing_arg
      $ comm_batch_arg $ trace_arg)

let stats_cmd =
  let index =
    Arg.(value & pos 0 int 0 & info [] ~docv:"BENCH" ~doc:"Benchmark index.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Primitive-operation profile of one benchmark")
    Term.(
      const run_stats $ profile_arg $ group_commit_arg $ checkpointing_arg
      $ comm_batch_arg $ trace_arg $ index)

let scaleout_cmd =
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:"Number of shards (one per node; key ranges spread evenly).")
  in
  let theta =
    Arg.(
      value
      & opt float Tabs_bench.Generator.default.theta
      & info [ "zipf" ] ~docv:"THETA"
          ~doc:
            "Zipfian skew of key popularity, in [0, 1): 0 is uniform, 0.99 \
             is the classic hot-key benchmark setting.")
  in
  let cross =
    Arg.(
      value
      & opt float Tabs_bench.Generator.default.cross_frac
      & info [ "cross-shard" ] ~docv:"FRAC"
          ~doc:
            "Fraction of transactions writing on two different shards \
             (paying tree two-phase commit).")
  in
  let load =
    Arg.(
      value
      & opt float Tabs_bench.Generator.default.offered_load
      & info [ "offered-load" ] ~docv:"TPS"
          ~doc:
            "Open-loop Poisson arrival rate, transactions per virtual \
             second, independent of completions; arrivals beyond the \
             per-node admission bound are shed and counted.")
  in
  Cmd.v
    (Cmd.info "scaleout"
       ~doc:"Skewed open-loop workload against a range-sharded deployment")
    Term.(
      const run_scaleout $ profile_arg $ group_commit_arg $ checkpointing_arg
      $ comm_batch_arg $ trace_arg $ shards $ theta $ cross $ load)

let () =
  let doc = "TABS: distributed transactions for reliable systems (SOSP '85)" in
  let info = Cmd.info "tabs-demo" ~version:"1.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ crash_cmd; twophase_cmd; voting_cmd; screen_cmd; stats_cmd; scaleout_cmd ]))
