open Tabs_sim
open Tabs_storage
open Tabs_wal

type Trace.event +=
  | Page_out of {
      segment : int;
      page : int;
      seqno : int;
      elapsed : int; (* virtual time for the whole 3-message WAL round *)
    }

type wal_hooks = {
  on_first_dirty : Disk.page_id -> unit;
  before_page_out : Disk.page_id -> unit;
  after_page_out : Disk.page_id -> unit;
}

type frame = {
  pid : Disk.page_id;
  mutable data : Page.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable rec_lsn : int option;
  mutable last_lsn : int;
  mutable touched : int; (* LRU stamp *)
}

type t = {
  engine : Engine.t;
  disk : Disk.t;
  frames : int;
  profile : Profile.t;
  table : (Disk.page_id, frame) Hashtbl.t;
  mutable hooks : wal_hooks option;
  mutable on_fault : (Disk.page_id -> unit) option;
  mutable tick : int;
  mutable fault_count : int;
}

let attach engine disk ~frames ?(profile = Profile.Classic) () =
  if frames < 1 then invalid_arg "Vm.attach: frames < 1";
  {
    engine;
    disk;
    frames;
    profile;
    table = Hashtbl.create (2 * frames);
    hooks = None;
    on_fault = None;
    tick = 0;
    fault_count = 0;
  }

let set_wal_hooks t hooks = t.hooks <- Some hooks

let set_on_fault t f = t.on_fault <- f

let disk t = t.disk

let profile t = t.profile

(* One leg of the kernel <-> Recovery Manager paging protocol. On a
   Classic node it is an Accent small message and delays the caller; on
   an Integrated node the Recovery Manager lives in the kernel's address
   space, so the hop is a procedure call and only the elision is
   counted. *)
let protocol_msg t =
  match t.profile with
  | Profile.Classic -> Engine.charge t.engine Cost_model.Small_contiguous_message
  | Profile.Integrated -> Engine.elide t.engine Cost_model.Small_contiguous_message

(* The first-modification notice is asynchronous even on Classic nodes:
   the writing coroutine must not lose the processor between reading an
   object and updating it, or commuting operations under type-specific
   locks could interleave mid-update. Its cost is recorded without
   delaying. *)
let protocol_notice t =
  match t.profile with
  | Profile.Classic -> Engine.record_only t.engine Cost_model.Small_contiguous_message
  | Profile.Integrated -> Engine.elide t.engine Cost_model.Small_contiguous_message

let touch t frame =
  t.tick <- t.tick + 1;
  frame.touched <- t.tick

(* Section 3.2.1's write-ahead protocol around every page-out of a
   recoverable-segment page: the kernel announces the intended write,
   the Recovery Manager forces the log through the page's last record
   (the [before_page_out] hook) and answers with the sector sequence
   number to stamp, and the kernel reports completion. *)
let page_out t frame =
  let started = Engine.now t.engine in
  protocol_msg t;
  (* Snapshot at the announcement: the disk must receive exactly the
     state the Recovery Manager's go-ahead covers.  The protocol legs,
     the log force, and the disk write all suspend this fiber, and a
     writing coroutine may pin and update the frame meanwhile; such an
     update's record may not be forced yet, so it must wait for a later
     page-out rather than ride along. *)
  let seqno = frame.last_lsn in
  let image = Page.copy frame.data in
  (match t.hooks with
  | Some h -> h.before_page_out frame.pid
  | None -> ());
  (* the Recovery Manager's go-ahead, carrying the sector sequence
     number for the kernel to write atomically *)
  protocol_msg t;
  Disk.write t.disk frame.pid image ~seqno;
  (* updates that arrived during the transfer keep the frame dirty *)
  if frame.last_lsn = seqno && Page.equal frame.data image then begin
    frame.dirty <- false;
    frame.rec_lsn <- None
  end;
  protocol_msg t;
  (match t.hooks with Some h -> h.after_page_out frame.pid | None -> ());
  if Engine.tracing t.engine then
    Engine.emit t.engine
      (Page_out
         {
           segment = frame.pid.segment;
           page = frame.pid.page;
           seqno;
           elapsed = Engine.now t.engine - started;
         })

let rec evict_victim t =
  let victim =
    Hashtbl.fold
      (fun _ frame best ->
        if frame.pins > 0 then best
        else
          match best with
          | None -> Some frame
          | Some b -> if frame.touched < b.touched then Some frame else best)
      t.table None
  in
  match victim with
  | None -> failwith "Vm: all frames pinned, cannot evict"
  | Some frame ->
      if frame.dirty then page_out t frame;
      (* the page-out suspends: a coroutine may have pinned or re-dirtied
         the frame meanwhile, making it ineligible after all *)
      if frame.pins = 0 && not frame.dirty then Hashtbl.remove t.table frame.pid
      else evict_victim t

let fault t pid ~access =
  (* Instant restart's redo-on-first-touch gate: the Recovery Manager
     replays the page's parked log chain before the access proceeds.
     Consulted on hits too — residency does not imply the chain was
     replayed (analysis does not fault pages in). *)
  (match t.on_fault with None -> () | Some f -> f pid);
  match Hashtbl.find_opt t.table pid with
  | Some frame ->
      touch t frame;
      frame
  | None -> (
      if Hashtbl.length t.table >= t.frames then evict_victim t;
      t.fault_count <- t.fault_count + 1;
      let data = Disk.read t.disk pid ~access in
      (* the disk read suspends this fiber: another coroutine may have
         faulted the same page meanwhile — never table it twice *)
      match Hashtbl.find_opt t.table pid with
      | Some frame ->
          touch t frame;
          frame
      | None ->
          let frame =
            {
              pid;
              data;
              dirty = false;
              pins = 0;
              rec_lsn = None;
              last_lsn = Disk.seqno t.disk pid;
              touched = 0;
            }
          in
          touch t frame;
          Hashtbl.add t.table pid frame;
          frame)

let object_pages obj = Object_id.pages obj

let read t obj ~access =
  let buffer = Buffer.create obj.Object_id.length in
  List.iter
    (fun (pid : Disk.page_id) ->
      let frame = fault t pid ~access in
      let page_base = pid.page * Page.size in
      let first = max obj.offset page_base in
      let last = min (obj.offset + obj.length) (page_base + Page.size) in
      Buffer.add_string buffer
        (Page.sub frame.data ~off:(first - page_base) ~len:(last - first)))
    (object_pages obj);
  Buffer.contents buffer

let mark_dirty t frame =
  if not frame.dirty then begin
    frame.dirty <- true;
    protocol_notice t;
    match t.hooks with
    | Some h -> h.on_first_dirty frame.pid
    | None -> ()
  end

let write t obj value =
  if String.length value <> obj.Object_id.length then
    invalid_arg "Vm.write: value length differs from object length";
  List.iter
    (fun (pid : Disk.page_id) ->
      let frame =
        match Hashtbl.find_opt t.table pid with
        | Some f when f.pins > 0 -> f
        | Some _ -> invalid_arg "Vm.write: page not pinned"
        | None -> invalid_arg "Vm.write: page not resident"
      in
      let page_base = pid.page * Page.size in
      let first = max obj.offset page_base in
      let last = min (obj.offset + obj.length) (page_base + Page.size) in
      mark_dirty t frame;
      touch t frame;
      Page.blit_string
        (String.sub value (first - obj.offset) (last - first))
        frame.data ~off:(first - page_base))
    (object_pages obj)

let pin t obj ~access =
  List.iter
    (fun pid ->
      let frame = fault t pid ~access in
      frame.pins <- frame.pins + 1)
    (object_pages obj)

let unpin t obj =
  List.iter
    (fun pid ->
      match Hashtbl.find_opt t.table pid with
      | Some frame when frame.pins > 0 -> frame.pins <- frame.pins - 1
      | Some _ | None -> invalid_arg "Vm.unpin: page not pinned")
    (object_pages obj)

let unpin_all t = Hashtbl.iter (fun _ frame -> frame.pins <- 0) t.table

(* The recovery LSN keeps the *minimum* of everything noted while the
   frame is dirty. The minimum matters because abort processing undoes
   in place without logging compensation records: the undo of record
   [lsn] re-notes [lsn] itself, and if the page leaked to disk mid-way
   a checkpoint-anchored recovery must scan from the original record,
   not from where the log happened to be at undo time. *)
let lower_rec_lsn frame lsn =
  frame.rec_lsn <-
    Some (match frame.rec_lsn with None -> lsn | Some r -> min r lsn)

let note_update t obj ~lsn =
  List.iter
    (fun pid ->
      match Hashtbl.find_opt t.table pid with
      | None -> invalid_arg "Vm.note_update: page not resident"
      | Some frame ->
          lower_rec_lsn frame lsn;
          frame.last_lsn <- max frame.last_lsn lsn)
    (object_pages obj)

let note_pages t pages ~lsn =
  List.iter
    (fun pid ->
      match Hashtbl.find_opt t.table pid with
      | None -> ()
      | Some frame ->
          lower_rec_lsn frame lsn;
          frame.last_lsn <- max frame.last_lsn lsn)
    pages

let note_rec_lsn t pid ~lsn =
  match Hashtbl.find_opt t.table pid with
  | None -> ()
  | Some frame -> lower_rec_lsn frame lsn

let dirty_pages t =
  Hashtbl.fold
    (fun pid frame acc ->
      if frame.dirty then
        (pid, Option.value frame.rec_lsn ~default:frame.last_lsn) :: acc
      else acc)
    t.table []
  |> List.sort compare

let flush_page t pid =
  match Hashtbl.find_opt t.table pid with
  | Some frame when frame.dirty && frame.pins = 0 -> page_out t frame
  | Some _ | None -> ()

let flush_all t =
  let dirty = List.map fst (dirty_pages t) in
  List.iter (flush_page t) dirty

let resident t = Hashtbl.length t.table

let pinned t =
  Hashtbl.fold (fun _ f acc -> if f.pins > 0 then acc + 1 else acc) t.table 0

let faults t = t.fault_count
