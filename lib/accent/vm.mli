(** Virtual memory management for recoverable objects.

    Recoverable segments are disk files mapped into virtual memory
    (Section 3.2.1); the kernel pages them on demand and cooperates with
    the Recovery Manager through a three-message protocol before copying
    a modified page back to its segment:

    + the first modification of a clean page is announced;
    + the page is not written until the Recovery Manager confirms that
      every log record applying to it is on non-volatile storage;
    + completion is announced, together with the atomically written
      39-bit sector sequence number needed by operation logging.

    Here the protocol is a set of hooks the Recovery Manager registers;
    the kernel owns the cost of the protocol's messages. On a
    {!Tabs_sim.Profile.Classic} node each leg is an Accent small
    message; on a {!Tabs_sim.Profile.Integrated} node (the Section 5.3
    merged architecture) the Recovery Manager shares the kernel's
    process, every leg is a direct procedure call, and the would-be
    messages are counted as elided ({!Tabs_sim.Engine.elide}).

    The page pool is volatile: discard the [t] and re-attach after a
    crash. *)

type t

(** Trace event: one completed page-out WAL round — the three protocol
    legs, the log force inside [before_page_out], and the disk write.
    [elapsed] is the round's total virtual time on the evicting fiber. *)
type Tabs_sim.Trace.event +=
  | Page_out of { segment : int; page : int; seqno : int; elapsed : int }

(** The Recovery Manager's side of the paging protocol. The hooks carry
    no message cost themselves — the kernel charges (or elides) the
    protocol messages around them according to its profile. *)
type wal_hooks = {
  on_first_dirty : Tabs_storage.Disk.page_id -> unit;
  before_page_out : Tabs_storage.Disk.page_id -> unit;
      (** must force the log far enough for this page before returning;
          runs in the faulting fiber *)
  after_page_out : Tabs_storage.Disk.page_id -> unit;
}

(** [attach engine disk ~frames ?profile ()] maps the node's disk with a
    pool of [frames] page frames (the Perq's limited physical memory —
    the 5000-page benchmark array is more than three times this), under
    the given architecture profile (default [Classic]). *)
val attach :
  Tabs_sim.Engine.t ->
  Tabs_storage.Disk.t ->
  frames:int ->
  ?profile:Tabs_sim.Profile.t ->
  unit ->
  t

val set_wal_hooks : t -> wal_hooks -> unit

(** [set_on_fault t (Some f)] installs a gate consulted on {e every}
    page access through the demand-paging path — faults and hits alike —
    before the frame is returned. Instant restart parks per-page redo
    chains and uses this gate to replay a page's chain behind the page
    latch on first touch; the replay itself re-enters the paging path,
    so the gate must be re-entrant (the Recovery Manager's gate keys on
    the owning fiber). [None] (the default) costs one match. *)
val set_on_fault : t -> (Tabs_storage.Disk.page_id -> unit) option -> unit

val profile : t -> Tabs_sim.Profile.t

val disk : t -> Tabs_storage.Disk.t

(** [read t obj ~access] reads the object's bytes, demand-paging with
    [access]-pattern cost. Must run inside a fiber. *)
val read : t -> Tabs_wal.Object_id.t -> access:[ `Random | `Sequential ] -> string

(** [write t obj value] overwrites the object's byte range in memory.
    Every touched page must be pinned — the server library pins around
    modifications precisely so that no page-out can slip between an
    update and its log record. Raises [Invalid_argument] if the length
    differs from the object's or a page is unpinned. *)
val write : t -> Tabs_wal.Object_id.t -> string -> unit

(** [pin t obj ~access] faults the object in and pins its pages. *)
val pin : t -> Tabs_wal.Object_id.t -> access:[ `Random | `Sequential ] -> unit

val unpin : t -> Tabs_wal.Object_id.t -> unit

(** [unpin_all t] releases every pin (server library [UnPinAllObjects]). *)
val unpin_all : t -> unit

(** [note_update t obj ~lsn] records that log record [lsn] covers the
    object's pages: maintains each frame's recovery LSN (earliest update
    not on disk) and the sequence number to stamp at page-out. *)
val note_update : t -> Tabs_wal.Object_id.t -> lsn:int -> unit

(** [note_pages t pages ~lsn] is {!note_update} for an explicit page
    list (operation-logging records carry pages, not byte ranges);
    non-resident pages are ignored. *)
val note_pages : t -> Tabs_storage.Disk.page_id list -> lsn:int -> unit

(** [note_rec_lsn t pid ~lsn] lowers the page's recovery LSN to at most
    [lsn] without touching the sequence number to stamp at page-out.
    The Recovery Manager calls it from the [on_first_dirty] hook with
    the next LSN to be issued: the update that just dirtied the page has
    not reached the log yet, and a fuzzy checkpoint taken in that window
    must still report a recovery LSN that covers it. Ignores non-resident
    pages. *)
val note_rec_lsn : t -> Tabs_storage.Disk.page_id -> lsn:int -> unit

(** [dirty_pages t] lists dirty frames with their recovery LSNs — the
    checkpoint record's page list. *)
val dirty_pages : t -> (Tabs_storage.Disk.page_id * int) list

(** [flush_page t pid] runs the page-out protocol for one dirty page
    (used by log reclamation, which "may force pages back to disk before
    they would otherwise be written"). No-op on clean or absent pages. *)
val flush_page : t -> Tabs_storage.Disk.page_id -> unit

(** [flush_all t] pages out every dirty frame. *)
val flush_all : t -> unit

(** [resident t] is the number of frames in use; [pinned t] the number
    currently pinned (checkpoints require data servers not to wait while
    objects are pinned, so this should be 0 at checkpoint time). *)
val resident : t -> int

val pinned : t -> int

(** Count of demand-paging faults served, for tests and benchmarks. *)
val faults : t -> int
