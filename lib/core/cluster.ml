open Tabs_sim
open Tabs_net

type t = {
  engine : Engine.t;
  net : Network.t;
  node_arr : Node.t array;
  topology : Topology.t;
  placement : Placement.t;
}

let create ?cost_model ?(seed = 1) ?profile ?group_commit ?checkpointing
    ?parallel_recovery ?instant_restart ?comm_batching ?commit_protocol
    ?frames ?log_space_limit ?read_only_optimization ?topology ~nodes () =
  let topology =
    match topology with
    | Some topo -> topo
    | None -> Topology.one_per_node ~shards:nodes
  in
  let nodes = max nodes (Topology.nodes_required topology) in
  let engine = Engine.create ?cost_model () in
  let net = Network.create engine ~seed in
  let node_arr =
    Array.init nodes (fun id ->
        Node.create engine net ~id ?profile ?group_commit ?checkpointing
          ?parallel_recovery ?instant_restart ?comm_batching ?commit_protocol
          ?frames ?log_space_limit ?read_only_optimization ())
  in
  { engine; net; node_arr; topology; placement = Placement.create topology }

let engine t = t.engine

let network t = t.net

let node t id =
  if id < 0 || id >= Array.length t.node_arr then
    invalid_arg (Printf.sprintf "Cluster.node: no node %d" id);
  t.node_arr.(id)

let nodes t = Array.to_list t.node_arr

let node_count t = Array.length t.node_arr

let topology t = t.topology

let placement t = t.placement

let shard_node t shard = node t (Topology.node_of_shard t.topology shard)

let run t = ignore (Engine.run t.engine)

let run_until t ~time = Engine.run_until t.engine ~time

let spawn t ~node f = ignore (Engine.spawn t.engine ~node f)

let run_fiber t ~node f =
  let result = ref None in
  let started = ref false in
  let epoch0 = Engine.node_epoch t.engine node in
  ignore
    (Engine.spawn t.engine ~node (fun () ->
         started := true;
         result := Some (f ())));
  ignore (Engine.run t.engine);
  match !result with
  | Some v -> v
  | None ->
      if Engine.node_epoch t.engine node <> epoch0 then
        raise (Errors.Fiber_killed { node })
      else if not !started then
        raise
          (Errors.Fiber_stalled
             { node; reason = "never scheduled (spawned on a crashed node?)" })
      else
        raise
          (Errors.Fiber_stalled
             {
               node;
               reason =
                 "suspended on a wait queue at quiescence (deadlocked \
                  scenario: nothing left to signal it)";
             })
