open Tabs_sim
open Tabs_net

type t = { engine : Engine.t; net : Network.t; node_list : Node.t list }

let create ?cost_model ?(seed = 1) ?profile ?group_commit ?checkpointing
    ?comm_batching ?frames ?log_space_limit ?read_only_optimization ~nodes () =
  let engine = Engine.create ?cost_model () in
  let net = Network.create engine ~seed in
  let node_list =
    List.init nodes (fun id ->
        Node.create engine net ~id ?profile ?group_commit ?checkpointing
          ?comm_batching ?frames ?log_space_limit ?read_only_optimization ())
  in
  { engine; net; node_list }

let engine t = t.engine

let network t = t.net

let node t id = List.nth t.node_list id

let nodes t = t.node_list

let run t = ignore (Engine.run t.engine)

let run_until t ~time = Engine.run_until t.engine ~time

let spawn t ~node f = ignore (Engine.spawn t.engine ~node f)

let run_fiber t ~node f =
  let result = ref None in
  ignore (Engine.spawn t.engine ~node (fun () -> result := Some (f ())));
  ignore (Engine.run t.engine);
  match !result with
  | Some v -> v
  | None -> failwith "Cluster.run_fiber: fiber did not complete"
