(** A network of TABS nodes under one simulation engine — the
    "collection of networked Perq workstations" the prototype ran on. *)

type t

(** [create ~nodes ()] builds [nodes] nodes (ids 0..nodes-1) on a
    lossless network. [?profile] applies the same architecture profile
    and [?group_commit] the same force-batching configuration (see
    {!Node.create}) to every node, as does [?checkpointing] for the
    background checkpoint daemon and [?comm_batching] for the
    Communication Managers' comm-batching layer. *)
val create :
  ?cost_model:Tabs_sim.Cost_model.t ->
  ?seed:int ->
  ?profile:Tabs_sim.Profile.t ->
  ?group_commit:Tabs_recovery.Group_commit.config ->
  ?checkpointing:Tabs_recovery.Checkpointer.config ->
  ?comm_batching:Tabs_net.Comm_mgr.batching ->
  ?frames:int ->
  ?log_space_limit:int ->
  ?read_only_optimization:bool ->
  nodes:int ->
  unit ->
  t

val engine : t -> Tabs_sim.Engine.t

val network : t -> Tabs_net.Network.t

val node : t -> int -> Node.t

val nodes : t -> Node.t list

(** [run t] processes simulation events until quiescent. *)
val run : t -> unit

(** [run_until t ~time] bounds the run — needed when blocking behaviour
    (e.g. an in-doubt participant) would otherwise keep polling. *)
val run_until : t -> time:int -> unit

(** [run_fiber t ~node f] spawns [f] as an application fiber on [node],
    drives the simulation to quiescence, and returns [f]'s result.
    Raises [Failure] if the fiber was killed (node crash) or never
    finished. *)
val run_fiber : t -> node:int -> (unit -> 'a) -> 'a

(** [spawn t ~node f] spawns without running the engine (for composing
    concurrent scenarios before a single {!run}). *)
val spawn : t -> node:int -> (unit -> unit) -> unit
