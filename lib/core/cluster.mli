(** A network of TABS nodes under one simulation engine — the
    "collection of networked Perq workstations" the prototype ran on —
    plus the cluster's {!Topology} (named shards on hosting nodes) and
    {!Placement} map (key-range ownership of sharded keyspaces).

    The seed's "list of nodes" view is preserved: every accessor below
    that predates sharding behaves exactly as before, and the default
    topology (one shard per node) changes nothing observable. *)

type t

(** [create ~nodes ()] builds [nodes] nodes (ids 0..nodes-1) on a
    lossless network. [?profile] applies the same architecture profile
    and [?group_commit] the same force-batching configuration (see
    {!Node.create}) to every node, as does [?checkpointing] for the
    background checkpoint daemon, [?parallel_recovery] for
    dependency-logged parallel restart recovery, [?instant_restart] for
    serve-while-recovering restart with on-demand per-page redo, and
    [?comm_batching] for the Communication Managers' comm-batching
    layer.

    [?topology] overrides the default one-shard-per-node layout; when it
    names more nodes than [nodes], enough nodes are created to host
    every shard. *)
val create :
  ?cost_model:Tabs_sim.Cost_model.t ->
  ?seed:int ->
  ?profile:Tabs_sim.Profile.t ->
  ?group_commit:Tabs_recovery.Group_commit.config ->
  ?checkpointing:Tabs_recovery.Checkpointer.config ->
  ?parallel_recovery:Tabs_recovery.Parallel_redo.config ->
  ?instant_restart:bool ->
  ?comm_batching:Tabs_net.Comm_mgr.batching ->
  ?commit_protocol:Tabs_tm.Commit_protocol.t ->
  ?frames:int ->
  ?log_space_limit:int ->
  ?read_only_optimization:bool ->
  ?topology:Topology.t ->
  nodes:int ->
  unit ->
  t

val engine : t -> Tabs_sim.Engine.t

val network : t -> Tabs_net.Network.t

(** [node t id] is O(1) (array-backed). Raises [Invalid_argument] on an
    unknown id. *)
val node : t -> int -> Node.t

val nodes : t -> Node.t list

val node_count : t -> int

(** The shard layout this cluster was created with. *)
val topology : t -> Topology.t

(** The cluster's placement map. Keyspaces are added by the sharded
    server layer (e.g. {!Placement.partition}); a freshly created
    cluster has none. *)
val placement : t -> Placement.t

(** [shard_node t s] is the node hosting shard [s]. *)
val shard_node : t -> int -> Node.t

(** [run t] processes simulation events until quiescent. *)
val run : t -> unit

(** [run_until t ~time] bounds the run — needed when blocking behaviour
    (e.g. an in-doubt participant) would otherwise keep polling. *)
val run_until : t -> time:int -> unit

(** [run_fiber t ~node f] spawns [f] as an application fiber on [node],
    drives the simulation to quiescence, and returns [f]'s result.
    Raises {!Errors.Fiber_killed} if the fiber was killed by a node
    crash, or {!Errors.Fiber_stalled} (saying whether it never ran or
    deadlocked on a wait queue) if quiescence was reached with the fiber
    unfinished. *)
val run_fiber : t -> node:int -> (unit -> 'a) -> 'a

(** [spawn t ~node f] spawns without running the engine (for composing
    concurrent scenarios before a single {!run}). *)
val spawn : t -> node:int -> (unit -> unit) -> unit
