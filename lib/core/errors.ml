exception Transaction_is_aborted of Tabs_wal.Tid.t

exception Server_error of string

exception Lock_timeout of Tabs_wal.Object_id.t

exception Deadlock of Tabs_wal.Object_id.t

exception Fiber_killed of { node : int }

exception Fiber_stalled of { node : int; reason : string }
