(** Exceptions of the TABS programming interface. *)

(** Raised in the application process when the transaction it is
    running under has been aborted by some other process (Table 3-2's
    [TransactionIsAborted] exception). *)
exception Transaction_is_aborted of Tabs_wal.Tid.t

(** Raised by server operations on bad arguments; carried across remote
    procedure calls. *)
exception Server_error of string

(** Raised when a lock request times out — the deadlock-resolution
    signal; the usual reaction is to abort the transaction. *)
exception Lock_timeout of Tabs_wal.Object_id.t

(** Raised when the lock manager's waits-for-graph detector (when
    enabled) refuses a request that would close a cycle. Like
    {!Lock_timeout}, the usual reaction is to abort; the two are kept
    distinct so abort accounting can tell a proven deadlock from a
    timeout. *)
exception Deadlock of Tabs_wal.Object_id.t

(** Raised by {!Cluster.run_fiber} when the driven fiber was killed by a
    crash of its node before completing. *)
exception Fiber_killed of { node : int }

(** Raised by {!Cluster.run_fiber} when the simulation went quiescent
    with the driven fiber unfinished: either it never ran at all, or it
    is suspended on a wait queue nobody will ever signal (a deadlock in
    the scenario being driven). [reason] says which. *)
exception Fiber_stalled of { node : int; reason : string }
