open Tabs_sim
open Tabs_storage
open Tabs_accent
open Tabs_wal
open Tabs_net
open Tabs_recovery
open Tabs_tm
open Tabs_name

type incarnation = {
  vm : Vm.t;
  log : Log_manager.t;
  rm : Recovery_mgr.t;
  cm : Comm_mgr.t;
  tm : Txn_mgr.t;
  ns : Name_server.t;
  rpc : Rpc.registry;
}

type t = {
  engine : Engine.t;
  net : Network.t;
  node_id : int;
  profile : Profile.t;
  group_commit : Group_commit.config option;
  checkpointing : Checkpointer.config option;
  parallel_recovery : Parallel_redo.config option;
  instant_restart : bool;
  comm_batching : Comm_mgr.batching option;
  commit_protocol : Commit_protocol.t;
  frames : int;
  log_space_limit : int;
  read_only_optimization : bool;
  disk : Disk.t;
  stable : Stable.t;
  mutable live : incarnation;
  mutable up : bool;
}

let build_incarnation engine net disk stable ~id ~profile ~group_commit
    ~checkpointing ~parallel_recovery ~instant_restart ~comm_batching
    ~commit_protocol ~frames ~log_space_limit ~read_only_optimization =
  let vm = Vm.attach engine disk ~frames ~profile () in
  let log = Log_manager.attach engine stable in
  let rm =
    Recovery_mgr.create engine ~node:id ~log ~vm ~profile ?group_commit
      ?checkpointing ~log_space_limit ?parallel_recovery ~instant_restart ()
  in
  let cm = Comm_mgr.create net ~node:id ?batching:comm_batching () in
  let tm =
    Txn_mgr.create engine ~node:id ~rm ~cm ~profile ~commit_protocol
      ~read_only_optimization ()
  in
  let ns = Name_server.create engine ~node:id ~cm in
  let rpc = Rpc.create_registry engine ~node:id ~cm in
  { vm; log; rm; cm; tm; ns; rpc }

let create engine net ~id ?(profile = Profile.Classic) ?group_commit
    ?checkpointing ?parallel_recovery ?(instant_restart = false)
    ?comm_batching ?(commit_protocol = Commit_protocol.default)
    ?(frames = 1500) ?(log_space_limit = 256 * 1024)
    ?(read_only_optimization = true) () =
  let disk = Disk.create engine in
  let stable = Stable.create () in
  let live =
    build_incarnation engine net disk stable ~id ~profile ~group_commit
      ~checkpointing ~parallel_recovery ~instant_restart ~comm_batching
      ~commit_protocol ~frames ~log_space_limit ~read_only_optimization
  in
  { engine; net; node_id = id; profile; group_commit; checkpointing;
    parallel_recovery; instant_restart; comm_batching; commit_protocol;
    frames; log_space_limit;
    read_only_optimization; disk; stable; live; up = true }

let id t = t.node_id

let profile t = t.profile

let commit_protocol t = t.commit_protocol

let engine t = t.engine

let tm t = t.live.tm

let rm t = t.live.rm

let cm t = t.live.cm

let ns t = t.live.ns

let vm t = t.live.vm

let rpc t = t.live.rpc

let log t = t.live.log

let disk t = t.disk

let is_up t = t.up

let env t =
  {
    Server_lib.engine = t.engine;
    node = t.node_id;
    vm = t.live.vm;
    rm = t.live.rm;
    tm = t.live.tm;
    rpc = t.live.rpc;
    ns = t.live.ns;
  }

let crash t =
  if t.up then begin
    t.up <- false;
    Comm_mgr.shutdown t.live.cm;
    Network.set_node_up t.net ~node:t.node_id false;
    Engine.crash_node t.engine t.node_id
  end

let restart t ~reinstall ?(after_recovery = fun _ -> ()) () =
  if t.up then invalid_arg "Node.restart: node is up";
  Network.set_node_up t.net ~node:t.node_id true;
  t.live <-
    build_incarnation t.engine t.net t.disk t.stable ~id:t.node_id
      ~profile:t.profile ~group_commit:t.group_commit
      ~checkpointing:t.checkpointing ~parallel_recovery:t.parallel_recovery
      ~instant_restart:t.instant_restart ~comm_batching:t.comm_batching
      ~commit_protocol:t.commit_protocol
      ~frames:t.frames ~log_space_limit:t.log_space_limit
      ~read_only_optimization:t.read_only_optimization;
  t.up <- true;
  (* while the log replays below, the node has "no record" of
     transactions it may well have decided: answering status queries by
     presumed abort in that window could split a committed outcome *)
  Txn_mgr.hold_status_queries t.live.tm;
  reinstall (env t);
  let outcome = Recovery_mgr.recover t.live.rm in
  (* in-doubt data must be re-locked before resolution can race it *)
  after_recovery outcome;
  Txn_mgr.recover t.live.tm outcome;
  outcome

let checkpoint t = ignore (Recovery_mgr.checkpoint t.live.rm)
