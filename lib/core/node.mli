(** One TABS node: the Accent kernel plus the four TABS system processes
    of Figure 3-1 (Name Server, Communication Manager, Recovery Manager,
    Transaction Manager), assembled over the node's disk and stable
    log.

    The disk and stable log survive crashes; everything else is
    volatile. {!crash} kills the node's fibers and silences it on the
    network; {!restart} rebuilds the volatile half, re-installs data
    servers, and runs crash recovery. *)

type t

(** [?profile] selects the node's architecture (default
    {!Tabs_sim.Profile.Classic}, the measured prototype). Under
    {!Tabs_sim.Profile.Integrated} the Transaction Manager, Recovery
    Manager, and kernel share one process (Section 5.3): messages
    between them become procedure calls (counted as elided, not
    charged) and the second phase of distributed commits overlaps with
    succeeding transactions. Log records, lock behavior, and commit
    outcomes are identical in both profiles. The profile survives
    {!crash}/{!restart}.

    [?group_commit] enables the {!Tabs_recovery.Group_commit} force
    batcher: commit-protocol log forces arriving within the window (or
    up to the batch cap) share one stable-storage round. Off by
    default — the Section 5 latency tables and the Classic/Integrated
    equivalence are byte-identical to a build without the batcher. The
    setting survives {!crash}/{!restart}.

    [?checkpointing] starts the {!Tabs_recovery.Checkpointer} daemon:
    fuzzy checkpoints, trickled page write-back, and background log
    reclamation, anchoring restart recovery at the last checkpoint. Off
    by default for the same reason as [?group_commit]. The setting
    survives {!crash}/{!restart}.

    [?parallel_recovery] turns on dependency logging (conflict-edge
    records on the common log) and makes restart recovery drain its
    redo graph over the configured number of simulator fibers
    ({!Tabs_recovery.Parallel_redo}). Off by default — without it no
    dependency record is written and replay is serial, byte-identical
    to a build without the feature. The setting survives
    {!crash}/{!restart}.

    [?instant_restart] makes {!restart}'s recovery open the node after
    the analysis scan alone: redo and loser undo are parked as
    per-page chains, replayed on the first touch of each page and
    drained in the background by a trickle fiber
    ({!Tabs_recovery.Recovery_mgr}). Also turns on dependency logging
    (the chains come from the parallel-recovery phase graphs). Off by
    default — no access gate is installed and restart is
    byte-identical to a build without the feature. The setting
    survives {!crash}/{!restart}.

    [?comm_batching] enables the Communication Manager's comm-batching
    layer ({!Tabs_net.Comm_mgr.batching}): piggybacked/delayed session
    acks and datagram coalescing. Off by default for the same reason as
    [?group_commit]. The setting survives {!crash}/{!restart} (each new
    incarnation starts with empty batches).

    [?commit_protocol] selects the distributed commit protocol — a
    cluster-wide convention, so every node of a cluster must be given
    the same value. The default {!Tabs_tm.Commit_protocol.Two_phase} is
    the paper's tree two-phase commit, byte-identical to a build
    without the alternative. [Paxos {f}] replicates root-level votes
    over the 2F+1 acceptors on nodes 0..2F ({!Tabs_tm.Paxos}), making
    commitment non-blocking under coordinator failure. Survives
    {!crash}/{!restart} (acceptor state is recovered from the log). *)
val create :
  Tabs_sim.Engine.t ->
  Tabs_net.Network.t ->
  id:int ->
  ?profile:Tabs_sim.Profile.t ->
  ?group_commit:Tabs_recovery.Group_commit.config ->
  ?checkpointing:Tabs_recovery.Checkpointer.config ->
  ?parallel_recovery:Tabs_recovery.Parallel_redo.config ->
  ?instant_restart:bool ->
  ?comm_batching:Tabs_net.Comm_mgr.batching ->
  ?commit_protocol:Tabs_tm.Commit_protocol.t ->
  ?frames:int ->
  ?log_space_limit:int ->
  ?read_only_optimization:bool ->
  unit ->
  t

val id : t -> int

val profile : t -> Tabs_sim.Profile.t

val commit_protocol : t -> Tabs_tm.Commit_protocol.t

val engine : t -> Tabs_sim.Engine.t

(** [env t] bundles the current incarnation's handles for building data
    servers and applications. Invalidated by {!crash}. *)
val env : t -> Server_lib.env

val tm : t -> Tabs_tm.Txn_mgr.t

val rm : t -> Tabs_recovery.Recovery_mgr.t

val cm : t -> Tabs_net.Comm_mgr.t

val ns : t -> Tabs_name.Name_server.t

val vm : t -> Tabs_accent.Vm.t

val rpc : t -> Rpc.registry

val log : t -> Tabs_wal.Log_manager.t

val disk : t -> Tabs_storage.Disk.t

val is_up : t -> bool

(** [crash t] — volatile state (page frames, log buffer, lock tables,
    transaction state, sessions) is lost; the disk and the stable log
    survive. Fibers bound to the node die at their next step. *)
val crash : t -> unit

(** [restart t ~reinstall ?after_recovery ()] rebuilds the node: fresh
    kernel and TABS processes over the surviving disk and stable log,
    then [reinstall] re-creates the node's data servers (registering
    their operation handlers) against the new {!env}, then crash
    recovery runs, then [after_recovery] fires with the summary —
    the place to re-take locks on in-doubt transactions' objects
    ({!Server_lib.relock_in_doubt}) {e before} in-doubt resolution
    starts — and finally the Transaction Manager begins resolving.
    Returns the Recovery Manager's summary. Must run inside a fiber
    (recovery performs I/O). *)
val restart :
  t ->
  reinstall:(Server_lib.env -> unit) ->
  ?after_recovery:(Tabs_recovery.Recovery_mgr.recovery_outcome -> unit) ->
  unit ->
  Tabs_recovery.Recovery_mgr.recovery_outcome

(** [checkpoint t] asks the Recovery Manager for a system checkpoint. *)
val checkpoint : t -> unit
