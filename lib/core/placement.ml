type range = { lo : int; hi : int } (* [lo, hi), indexed by shard *)

type strategy = Ranged of range array | Hashed

type keyspace = { logical : string; strategy : strategy }

type t = {
  topology : Topology.t;
  keyspaces : (string, keyspace) Hashtbl.t;
}

type location = { shard : int; node : int; instance : string; base : int }

let create topology = { topology; keyspaces = Hashtbl.create 8 }

let topology t = t.topology

let keyspace t server =
  match Hashtbl.find_opt t.keyspaces server with
  | Some ks -> ks
  | None -> invalid_arg (Printf.sprintf "Placement: keyspace %s not placed" server)

let add_keyspace t server strategy =
  if Hashtbl.mem t.keyspaces server then
    invalid_arg (Printf.sprintf "Placement: keyspace %s already placed" server);
  Hashtbl.replace t.keyspaces server { logical = server; strategy }

let partition t ~server ~keys =
  if keys <= 0 then invalid_arg "Placement.partition: keys <= 0";
  let shards = Topology.shards t.topology in
  (* as even as integer division allows: the first [keys mod shards]
     ranges get one extra key *)
  let per = keys / shards and extra = keys mod shards in
  let lo = ref 0 in
  let ranges =
    Array.init shards (fun s ->
        let width = per + if s < extra then 1 else 0 in
        let r = { lo = !lo; hi = !lo + width } in
        lo := r.hi;
        r)
  in
  add_keyspace t server (Ranged ranges)

let partition_hashed t ~server = add_keyspace t server Hashed

let instance_name t ~server ~shard =
  Printf.sprintf "%s.%s" server (Topology.shard_name t.topology shard)

(* FNV-1a, truncated to OCaml's positive int range: deterministic across
   runs and OCaml versions, unlike [Hashtbl.hash]. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  (* Int64.to_int keeps the low 63 bits, so bit 62 of the shifted hash
     would land in the sign bit; mask it off to stay non-negative *)
  Int64.to_int (Int64.shift_right_logical !h 1) land max_int

let shard_of_ranged server ranges key =
  let n = Array.length ranges in
  (* the true bound is the last non-empty range's [hi]: with more shards
     than keys the trailing ranges are empty ([lo = hi]), and quoting
     [ranges.(n-1).hi] would misreport the valid key space *)
  let bound =
    Array.fold_left (fun b r -> if r.hi > r.lo then max b r.hi else b) 0 ranges
  in
  if key < 0 || key >= bound then
    invalid_arg
      (Printf.sprintf "Placement: key %d outside keyspace %s [0, %d)" key
         server bound);
  (* binary search for the covering range (empty ranges never cover) *)
  let rec find lo hi =
    if lo > hi then
      invalid_arg
        (Printf.sprintf "Placement: key %d uncovered in keyspace %s" key server)
    else begin
      let mid = (lo + hi) / 2 in
      let r = ranges.(mid) in
      if key < r.lo then find lo (mid - 1)
      else if key >= r.hi then find (mid + 1) hi
      else mid
    end
  in
  find 0 (n - 1)

let shard_of t ~server ~key =
  match (keyspace t server).strategy with
  | Ranged ranges -> shard_of_ranged server ranges key
  | Hashed -> invalid_arg (server ^ ": hashed keyspace, use locate_hashed")

let make_location t ~server ~shard ~base =
  {
    shard;
    node = Topology.node_of_shard t.topology shard;
    instance = instance_name t ~server ~shard;
    base;
  }

let locate t ~server ~key =
  match (keyspace t server).strategy with
  | Ranged ranges ->
      let shard = shard_of_ranged server ranges key in
      make_location t ~server ~shard ~base:ranges.(shard).lo
  | Hashed -> invalid_arg (server ^ ": hashed keyspace, use locate_hashed")

let locate_hashed t ~server ~key =
  match (keyspace t server).strategy with
  | Hashed ->
      let shard = fnv1a key mod Topology.shards t.topology in
      make_location t ~server ~shard ~base:0
  | Ranged _ -> invalid_arg (server ^ ": ranged keyspace, use locate")

let node_of t ~server ~key = (locate t ~server ~key).node

let shards_of t ~server ~keys =
  List.sort_uniq compare (List.map (fun key -> shard_of t ~server ~key) keys)

let ranges t ~server =
  match (keyspace t server).strategy with
  | Ranged ranges ->
      Array.to_list (Array.mapi (fun s r -> (s, r.lo, r.hi)) ranges)
  | Hashed -> invalid_arg (server ^ ": hashed keyspace has no ranges")

let keyspaces t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.keyspaces [])

let publish t ns ~server ~only_node =
  match (keyspace t server).strategy with
  | Ranged rs ->
      Array.iteri
        (fun shard r ->
          let node = Topology.node_of_shard t.topology shard in
          let wanted =
            match only_node with None -> true | Some n -> n = node
          in
          if wanted && r.hi > r.lo then
            Tabs_name.Name_server.register_range ns ~name:server
              ~server:(instance_name t ~server ~shard)
              ~lo:r.lo ~hi:r.hi)
        rs
  | Hashed ->
      (* hashed slices own no contiguous range; nothing to advertise *)
      ()

let shard_of_instance instance =
  (* "<logical>.s<shard>" *)
  match String.rindex_opt instance '.' with
  | Some dot
    when dot + 2 <= String.length instance - 1
         && instance.[dot + 1] = 's' ->
      int_of_string_opt
        (String.sub instance (dot + 2) (String.length instance - dot - 2))
  | _ -> None

let location_of_entry (e : Tabs_name.Name_server.entry) =
  match (Tabs_name.Name_server.range_of_entry e, shard_of_instance e.server) with
  | Some (lo, _hi), Some shard ->
      Some { shard; node = e.node; instance = e.server; base = lo }
  | _ -> None
