(** Data placement: which shard — and therefore which node and which
    physical server instance — owns each key of a sharded keyspace.

    A {e keyspace} is a logical server name (e.g. ["acct"]) whose keys
    are spread over the topology's shards. Integer keyspaces (accounts,
    int-array cells) are split into contiguous key ranges, one per
    shard; string keyspaces (the B-tree) are hashed onto shards. Each
    shard's slice is served by a physical instance named
    ["<logical>.s<shard>"], created on the shard's hosting node.

    The map is pure data: building or querying it charges no simulated
    primitive, so a 1-shard placement is byte-identical to the unsharded
    seed path. Shard slices are also advertised through the Name Server
    ({!publish}), so nodes that never built the map can resolve owners
    with a placement-aware directory lookup. *)

type t

(** Everything a router needs to reach one key: the owning shard, its
    hosting node, the physical instance name, and [base], the first key
    of the owning range ([key - base] is the instance-local key; 0 for
    hashed keyspaces, whose instances keep global keys). *)
type location = { shard : int; node : int; instance : string; base : int }

val create : Topology.t -> t

val topology : t -> Topology.t

(** [partition t ~server ~keys] splits integer keys [0..keys-1] of
    keyspace [server] into contiguous ranges, one per shard, as evenly
    as integer division allows (first ranges get the remainder).
    Raises [Invalid_argument] if [server] is already placed. *)
val partition : t -> server:string -> keys:int -> unit

(** [partition_hashed t ~server] places a string-keyed keyspace: a key
    belongs to shard [hash(key) mod shards]. *)
val partition_hashed : t -> server:string -> unit

(** [instance_name t ~server ~shard] is the physical server name of one
    shard's slice, ["<server>.s<shard>"]. *)
val instance_name : t -> server:string -> shard:int -> string

(** [locate t ~server ~key] routes an integer key. Raises
    [Invalid_argument] on an unplaced keyspace or out-of-range key. *)
val locate : t -> server:string -> key:int -> location

(** [locate_hashed t ~server ~key] routes a string key of a hashed
    keyspace. *)
val locate_hashed : t -> server:string -> key:string -> location

val shard_of : t -> server:string -> key:int -> int

val node_of : t -> server:string -> key:int -> int

(** [shards_of t ~server ~keys] is the distinct, sorted set of shards an
    operation touching [keys] must visit — singleton for a single-shard
    transaction, longer for one that will need distributed commit. *)
val shards_of : t -> server:string -> keys:int list -> int list

(** [ranges t ~server] lists [(shard, lo, hi)] with [lo <= k < hi], in
    shard order (for tests and reporting; empty ranges included). *)
val ranges : t -> server:string -> (int * int * int) list

(** [keyspaces t] lists the placed logical names. *)
val keyspaces : t -> string list

(** [publish t ns ~server] registers every shard slice of [server] in
    [ns] under the logical name, with the owned range encoded in the
    entry (see {!Tabs_name.Name_server.register_range}). Call it on each
    shard's hosting node's name server for instances living there, or on
    any name server to advertise the whole map. *)
val publish :
  t -> Tabs_name.Name_server.t -> server:string -> only_node:int option -> unit

(** [location_of_entry e] recovers a routing location from a
    placement-aware directory entry: the instance and node come from the
    binding, the base from its encoded range, the shard from the
    instance-name suffix. [None] for entries without a range. *)
val location_of_entry : Tabs_name.Name_server.entry -> location option
