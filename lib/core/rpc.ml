open Tabs_sim
open Tabs_wal
open Tabs_net

type dispatch = tid:Tid.t -> op:string -> arg:string -> string

type reply =
  | Rpc_ok of string
  | Rpc_aborted of Tid.t
  | Rpc_lock_timeout of Object_id.t
  | Rpc_deadlock of Object_id.t
  | Rpc_error of string

type Network.payload +=
  | Rpc_request of {
      call_id : int;
      reply_to : int;
      server : string;
      tid : Tid.t;
      op : string;
      arg : string;
    }
  | Rpc_reply of { call_id : int; reply : reply }

exception Rpc_timeout of { dest : int; server : string; op : string }

type registry = {
  engine : Engine.t;
  node : int;
  cm : Comm_mgr.t;
  servers : (string, dispatch) Hashtbl.t;
  pending : (int, reply Engine.Waitq.t) Hashtbl.t;
  mutable next_call : int;
  mutable call_timeout : int;
}

let expose t ~server dispatch = Hashtbl.replace t.servers server dispatch

let withdraw t ~server = Hashtbl.remove t.servers server

let set_call_timeout t micros = t.call_timeout <- micros

let run_dispatch t ~server ~tid ~op ~arg =
  match Hashtbl.find_opt t.servers server with
  | None -> Rpc_error (Printf.sprintf "no such data server: %s" server)
  | Some dispatch -> (
      try Rpc_ok (dispatch ~tid ~op ~arg) with
      | Errors.Transaction_is_aborted aborted_tid -> Rpc_aborted aborted_tid
      | Errors.Lock_timeout obj -> Rpc_lock_timeout obj
      | Errors.Deadlock obj -> Rpc_deadlock obj
      | Errors.Server_error msg -> Rpc_error msg)

let unwrap = function
  | Rpc_ok result -> result
  | Rpc_aborted tid -> raise (Errors.Transaction_is_aborted tid)
  | Rpc_lock_timeout obj -> raise (Errors.Lock_timeout obj)
  | Rpc_deadlock obj -> raise (Errors.Deadlock obj)
  | Rpc_error msg -> raise (Errors.Server_error msg)

let call t ~dest ~server ~tid ~op ~arg =
  if dest = t.node then begin
    (* Local: one Data Server Call primitive; the operation runs as a
       coroutine of the server, here directly in the calling fiber. *)
    Engine.charge t.engine Cost_model.Data_server_call;
    unwrap (run_dispatch t ~server ~tid ~op ~arg)
  end
  else begin
    Engine.charge t.engine Cost_model.Inter_node_data_server_call;
    (* The Communication Managers at both ends do most of this work;
       the paper counts it in "Measured TABS Process Time" as well as in
       the primitive prediction (Section 5.2 explains the double count:
       subtracting CM time reconciles the columns). The 73% share is
       calibrated from that reconciliation. *)
    Engine.note_cpu t.engine ~process:"cm"
      (Cost_model.cost (Engine.cost_model t.engine)
         Cost_model.Inter_node_data_server_call
      * 73 / 100);
    let call_id = t.next_call in
    t.next_call <- call_id + 1;
    let q = Engine.Waitq.create () in
    Hashtbl.replace t.pending call_id q;
    Comm_mgr.session_send t.cm ~dest ~tid
      (Rpc_request { call_id; reply_to = t.node; server; tid; op; arg });
    let reply =
      Engine.Waitq.wait_timeout q ~engine:t.engine ~timeout:t.call_timeout
    in
    Hashtbl.remove t.pending call_id;
    match reply with
    | Some reply -> unwrap reply
    | None -> raise (Rpc_timeout { dest; server; op })
  end

let create_registry engine ~node ~cm =
  let t =
    {
      engine;
      node;
      cm;
      servers = Hashtbl.create 8;
      pending = Hashtbl.create 16;
      next_call = 0;
      call_timeout = 5_000_000;
    }
  in
  Comm_mgr.set_session_handler cm (fun ~src:_ payload ->
      match payload with
      | Rpc_request { call_id; reply_to; server; tid; op; arg } ->
          let reply = run_dispatch t ~server ~tid ~op ~arg in
          Comm_mgr.session_send t.cm ~dest:reply_to
            (Rpc_reply { call_id; reply })
      | Rpc_reply { call_id; reply } -> (
          match Hashtbl.find_opt t.pending call_id with
          | Some q -> ignore (Engine.Waitq.signal q ~engine:t.engine reply)
          | None -> ())
      | _ -> ());
  t
