open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_lock
open Tabs_accent
open Tabs_recovery
open Tabs_tm

type env = {
  engine : Engine.t;
  node : int;
  vm : Vm.t;
  rm : Recovery_mgr.t;
  tm : Txn_mgr.t;
  rpc : Rpc.registry;
  ns : Tabs_name.Name_server.t;
}

type t = {
  env : env;
  name : string;
  segment : int;
  locks : Lock_manager.t;
  lock_timeout : int;
  buffered : (Tid.t * Object_id.t, string) Hashtbl.t;
  marked : (Tid.t, Object_id.t list ref) Hashtbl.t;
  joined : (Tid.t, unit) Hashtbl.t; (* top tids whose first op was seen *)
  wrote : (Tid.t, unit) Hashtbl.t; (* top tids that logged here *)
  ops : (string, (arg:string -> unit) * (arg:string -> unit)) Hashtbl.t;
      (* op name -> (redo, undo) *)
}

let name t = t.name

let env t = t.env

let lock_manager t = t.locks

let clear_txn_state t top =
  let family key = Tid.is_ancestor ~ancestor:(Tid.top_level top) key in
  let stale_buffers =
    Hashtbl.fold
      (fun (tid, obj) _ acc -> if family tid then (tid, obj) :: acc else acc)
      t.buffered []
  in
  List.iter (fun key -> Hashtbl.remove t.buffered key) stale_buffers;
  let stale_marks =
    Hashtbl.fold
      (fun tid _ acc -> if family tid then tid :: acc else acc)
      t.marked []
  in
  List.iter (fun tid -> Hashtbl.remove t.marked tid) stale_marks;
  Hashtbl.remove t.joined (Tid.top_level top);
  Hashtbl.remove t.wrote (Tid.top_level top)

let create env ~name ~segment ~pages ?(compatible = Mode.standard)
    ?(lock_timeout = 2_000_000) () =
  Disk.ensure_segment (Vm.disk env.vm) segment ~pages;
  let t =
    {
      env;
      name;
      segment;
      locks = Lock_manager.create ~compatible ~default_timeout:lock_timeout env.engine ();
      lock_timeout;
      buffered = Hashtbl.create 32;
      marked = Hashtbl.create 8;
      joined = Hashtbl.create 32;
      wrote = Hashtbl.create 32;
      ops = Hashtbl.create 8;
    }
  in
  Txn_mgr.register_server env.tm ~name
    {
      Txn_mgr.on_prepare = (fun _ -> true);
      on_outcome =
        (fun top _outcome ->
          Lock_manager.release_family t.locks top;
          clear_txn_state t top);
      on_subtxn_commit = (fun sub -> Lock_manager.transfer_to_parent t.locks sub);
      on_subtxn_abort = (fun sub -> Lock_manager.release_subtree t.locks sub);
    };
  Recovery_mgr.register_op_handler env.rm ~server:name
    {
      Recovery_mgr.redo =
        (fun ~op ~arg ->
          match Hashtbl.find_opt t.ops op with
          | Some (redo, _) -> redo ~arg
          | None -> failwith (name ^ ": unregistered operation " ^ op));
      undo =
        (fun ~op ~arg ->
          match Hashtbl.find_opt t.ops op with
          | Some (_, undo) -> undo ~arg
          | None -> failwith (name ^ ": unregistered operation " ^ op));
    };
  t

(* Startup ------------------------------------------------------------- *)

let note_first_operation t tid =
  let top = Tid.top_level tid in
  if not (Hashtbl.mem t.joined top) then begin
    Hashtbl.add t.joined top ();
    Txn_mgr.join t.env.tm ~tid ~server:t.name;
    Engine.charge_cpu t.env.engine ~process:"ds" Overheads.data_server_txn
  end

let enter_operation t tid =
  (* A request can race a restart: the node re-registers its servers
     before replaying the log, so data is consistent only once the
     Recovery Manager opens. Costs nothing when the node is up. *)
  Recovery_mgr.await_open t.env.rm;
  if Txn_mgr.is_aborted t.env.tm tid then
    raise (Errors.Transaction_is_aborted tid);
  note_first_operation t tid

let accept_requests t dispatch =
  let wrapped ~tid ~op ~arg =
    enter_operation t tid;
    dispatch ~tid ~op ~arg
  in
  Rpc.expose t.env.rpc ~server:t.name wrapped

(* Address arithmetic --------------------------------------------------- *)

let create_object_id t ~offset ~length =
  Object_id.make ~segment:t.segment ~offset ~length

let object_offset _t (obj : Object_id.t) = obj.offset

(* Locking -------------------------------------------------------------- *)

let lock_object t tid obj mode =
  match Lock_manager.lock t.locks tid obj mode () with
  | Lock_manager.Granted -> ()
  | Lock_manager.Timed_out -> raise (Errors.Lock_timeout obj)
  | Lock_manager.Deadlocked -> raise (Errors.Deadlock obj)

let conditionally_lock_object t tid obj mode =
  Lock_manager.try_lock t.locks tid obj mode

let is_object_locked t obj = Lock_manager.is_locked t.locks obj

(* Paging control -------------------------------------------------------- *)

let pin_object t obj = Vm.pin t.env.vm obj ~access:`Random

let unpin_object t obj = Vm.unpin t.env.vm obj

let unpin_all_objects t = Vm.unpin_all t.env.vm

(* Mapped data ------------------------------------------------------------ *)

let read_object t ?(access = `Random) obj = Vm.read t.env.vm obj ~access

let write_object t obj value = Vm.write t.env.vm obj value

(* Value logging ----------------------------------------------------------- *)

let note_wrote t tid =
  let top = Tid.top_level tid in
  if not (Hashtbl.mem t.wrote top) then begin
    Hashtbl.add t.wrote top ();
    (* formatting and sending log data costs the data server extra CPU *)
    Engine.charge_cpu t.env.engine ~process:"ds" Overheads.data_server_log_format
  end

let pin_and_buffer t tid ?(access = `Random) obj =
  Vm.pin t.env.vm obj ~access;
  Hashtbl.replace t.buffered (tid, obj) (Vm.read t.env.vm obj ~access)

let log_and_unpin t tid obj =
  let old_value =
    match Hashtbl.find_opt t.buffered (tid, obj) with
    | Some v -> v
    | None -> invalid_arg "log_and_unpin without pin_and_buffer"
  in
  Hashtbl.remove t.buffered (tid, obj);
  let new_value = Vm.read t.env.vm obj ~access:`Random in
  note_wrote t tid;
  ignore (Recovery_mgr.log_value t.env.rm ~tid ~obj ~old_value ~new_value);
  Vm.unpin t.env.vm obj

(* Marked-object batch ------------------------------------------------------ *)

let marked_queue t tid =
  match Hashtbl.find_opt t.marked tid with
  | Some q -> q
  | None ->
      let q = ref [] in
      Hashtbl.add t.marked tid q;
      q

let lock_and_mark t tid obj mode =
  lock_object t tid obj mode;
  let q = marked_queue t tid in
  if not (List.exists (Object_id.equal obj) !q) then q := obj :: !q

let pin_and_buffer_marked_objects t tid =
  List.iter (fun obj -> pin_and_buffer t tid obj) !(marked_queue t tid)

let log_and_unpin_marked_objects t tid =
  let q = marked_queue t tid in
  List.iter (fun obj -> log_and_unpin t tid obj) !q;
  Hashtbl.remove t.marked tid

(* Operation logging --------------------------------------------------------- *)

let register_operation t ~op ~redo ~undo = Hashtbl.replace t.ops op (redo, undo)

let log_operation t tid ~op ~undo_arg ~redo_arg ?(reads = []) ~objs () =
  if not (Hashtbl.mem t.ops op) then
    invalid_arg ("log_operation: unregistered operation " ^ op);
  note_wrote t tid;
  ignore
    (Recovery_mgr.log_operation t.env.rm ~tid ~server:t.name ~op ~undo_arg
       ~redo_arg ~reads ~objs ())

(* Transactions ---------------------------------------------------------------- *)

let execute_transaction t f =
  let tid = Txn_mgr.begin_txn t.env.tm in
  (* the server is itself the first (and usually only) participant *)
  note_first_operation t tid;
  match f tid with
  | result -> (
      match Txn_mgr.commit t.env.tm tid with
      | Txn_mgr.Committed -> result
      | Txn_mgr.Aborted -> raise (Errors.Transaction_is_aborted tid))
  | exception e ->
      Txn_mgr.abort t.env.tm tid;
      raise e

(* Name service ------------------------------------------------------------------ *)

let register_name t ~name ~object_id =
  Tabs_name.Name_server.register t.env.ns ~name ~server:t.name ~object_id

(* Restart support ---------------------------------------------------------------- *)

let relock_in_doubt t entries =
  List.iter
    (fun (tid, (obj : Object_id.t)) ->
      if obj.segment = t.segment then begin
        (* On an eager restart nothing else runs yet, so the try-lock
           always succeeds. Under instant restart the node is already
           serving: a new transaction may hold the lock for the length
           of its own access, so fall back to a blocking acquire. *)
        if not (Lock_manager.try_lock t.locks tid obj Mode.Write) then
          lock_object t tid obj Mode.Write;
        (* re-join so the coordinator's eventual verdict reaches this
           server and releases the locks *)
        if not (Hashtbl.mem t.joined (Tid.top_level tid)) then begin
          Hashtbl.add t.joined (Tid.top_level tid) ();
          Txn_mgr.join t.env.tm ~tid ~server:t.name
        end
      end)
    entries
