(** The TABS server library (Table 3-1).

    A data server is built around one recoverable segment mapped into
    virtual memory, a local lock manager with automatic unlock at commit
    or abort, and value- or operation-logging helpers that enforce the
    write-ahead discipline by pinning objects around their modification.
    Paper routine names map as: [InitServer]+[ReadPermanentData] →
    {!create}, [RecoverServer] is performed by the node's Recovery
    Manager at restart, [AcceptRequests] → {!accept_requests}, and the
    rest keep their names in snake case. *)

type t

(** Handles a server needs from its node; the node assembly fills
    this. *)
type env = {
  engine : Tabs_sim.Engine.t;
  node : int;
  vm : Tabs_accent.Vm.t;
  rm : Tabs_recovery.Recovery_mgr.t;
  tm : Tabs_tm.Txn_mgr.t;
  rpc : Rpc.registry;
  ns : Tabs_name.Name_server.t;
}

(** [create env ~name ~segment ~pages ()] initializes the server: maps
    (and, first time, creates) its recoverable segment, builds its lock
    manager with the given compatibility relation, and registers with
    the Transaction Manager and Recovery Manager. [lock_timeout] is the
    user-set deadlock time-out. *)
val create :
  env ->
  name:string ->
  segment:int ->
  pages:int ->
  ?compatible:Tabs_lock.Mode.compat ->
  ?lock_timeout:int ->
  unit ->
  t

val name : t -> string

val env : t -> env

val lock_manager : t -> Tabs_lock.Lock_manager.t

(** {2 Startup} *)

(** [accept_requests t dispatch] starts serving operation requests.
    Each incoming request runs as a coroutine: the wrapper verifies the
    transaction is not already aborted, reports the server's first
    operation for the transaction to the Transaction Manager, then
    dispatches. *)
val accept_requests : t -> Rpc.dispatch -> unit

(** [enter_operation t tid] performs the request wrapper's bookkeeping
    for operations invoked through a server's direct (same-address-
    space) API instead of RPC: raises {!Errors.Transaction_is_aborted}
    if the transaction already aborted, and reports the server's first
    operation on behalf of [tid] to the Transaction Manager. *)
val enter_operation : t -> Tabs_wal.Tid.t -> unit

(** {2 Address arithmetic} *)

(** [create_object_id t ~offset ~length] converts a virtual address
    (byte offset within the mapped segment) and a length to a logical
    object identifier. *)
val create_object_id : t -> offset:int -> length:int -> Tabs_wal.Object_id.t

(** [object_offset t obj] is the inverse conversion. *)
val object_offset : t -> Tabs_wal.Object_id.t -> int

(** {2 Locking} *)

(** [lock_object t tid obj mode] waits for the lock; raises
    {!Errors.Lock_timeout} when the time-out (deadlock resolution)
    expires. *)
val lock_object :
  t -> Tabs_wal.Tid.t -> Tabs_wal.Object_id.t -> Tabs_lock.Mode.t -> unit

val conditionally_lock_object :
  t -> Tabs_wal.Tid.t -> Tabs_wal.Object_id.t -> Tabs_lock.Mode.t -> bool

val is_object_locked : t -> Tabs_wal.Object_id.t -> bool

(** {2 Paging control} *)

val pin_object : t -> Tabs_wal.Object_id.t -> unit

val unpin_object : t -> Tabs_wal.Object_id.t -> unit

val unpin_all_objects : t -> unit

(** {2 Reading and writing mapped data} *)

(** [read_object t obj] reads the object's current bytes (demand-paging
    as needed; [access] defaults to [`Random]). *)
val read_object :
  t -> ?access:[ `Random | `Sequential ] -> Tabs_wal.Object_id.t -> string

(** [write_object t obj value] overwrites the object in memory; its
    pages must be pinned. *)
val write_object : t -> Tabs_wal.Object_id.t -> string -> unit

(** {2 Value logging} *)

(** [pin_and_buffer t tid obj] pins the object and buffers its current
    (old) value in anticipation of a modification; [access] hints the
    demand-paging pattern of the fault that may result. *)
val pin_and_buffer :
  t ->
  Tabs_wal.Tid.t ->
  ?access:[ `Random | `Sequential ] ->
  Tabs_wal.Object_id.t ->
  unit

(** [log_and_unpin t tid obj] sends the buffered old value and the
    existing (new) value to the Recovery Manager and unpins. *)
val log_and_unpin : t -> Tabs_wal.Tid.t -> Tabs_wal.Object_id.t -> unit

(** {2 Marked-object batch (checkpoint-safe locking)} *)

(** [lock_and_mark t tid obj mode] locks and enqueues the object on the
    transaction's to-be-modified queue, so that all locks are set
    before anything is pinned (the checkpoint protocol requires servers
    not to wait while objects are pinned). *)
val lock_and_mark :
  t -> Tabs_wal.Tid.t -> Tabs_wal.Object_id.t -> Tabs_lock.Mode.t -> unit

val pin_and_buffer_marked_objects : t -> Tabs_wal.Tid.t -> unit

val log_and_unpin_marked_objects : t -> Tabs_wal.Tid.t -> unit

(** {2 Operation logging} *)

(** [register_operation t ~op ~redo ~undo] installs the logical redo and
    undo for an operation-logged object type. [redo] must be idempotent
    at page granularity. *)
val register_operation :
  t ->
  op:string ->
  redo:(arg:string -> unit) ->
  undo:(arg:string -> unit) ->
  unit

(** [log_operation t tid ~op ~undo_arg ~redo_arg ?reads ~objs ()]
    writes one operation-logging record covering all of [objs] (which
    may span pages — the multi-page economy of operation logging). The
    objects' pages must be pinned; the modification itself is performed
    by the caller via {!write_object} before unpinning. [?reads] names
    objects the operation read without writing — with dependency
    logging on, read-write conflicts become cross-page redo-ordering
    edges. *)
val log_operation :
  t ->
  Tabs_wal.Tid.t ->
  op:string ->
  undo_arg:string ->
  redo_arg:string ->
  ?reads:Tabs_wal.Object_id.t list ->
  objs:Tabs_wal.Object_id.t list ->
  unit ->
  unit

(** {2 Transactions} *)

(** [execute_transaction t f] runs [f] in a new top-level transaction
    (servers use this to make output permanent regardless of the client
    transaction — the I/O server pattern). Returns [f]'s result on
    commit; aborts and re-raises on exception. *)
val execute_transaction : t -> (Tabs_wal.Tid.t -> 'a) -> 'a

(** {2 Name service} *)

(** [register_name t ~name ~object_id] publishes a binding for this
    server on the node's Name Server. *)
val register_name : t -> name:string -> object_id:string -> unit

(** {2 Restart support} *)

(** [relock_in_doubt t entries] re-acquires write locks on the objects
    in this server's segment written by prepared (in-doubt)
    transactions, restricting access until their coordinators decide. *)
val relock_in_doubt :
  t -> (Tabs_wal.Tid.t * Tabs_wal.Object_id.t) list -> unit
