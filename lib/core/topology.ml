type t = { hosts : int array } (* shard id -> hosting node *)

let create hosts =
  if Array.length hosts = 0 then invalid_arg "Topology.create: no shards";
  Array.iter
    (fun n -> if n < 0 then invalid_arg "Topology.create: negative node id")
    hosts;
  { hosts = Array.copy hosts }

let one_per_node ~shards =
  if shards <= 0 then invalid_arg "Topology.one_per_node: shards <= 0";
  { hosts = Array.init shards (fun i -> i) }

let shards t = Array.length t.hosts

let node_of_shard t s =
  if s < 0 || s >= Array.length t.hosts then
    invalid_arg "Topology.node_of_shard: no such shard";
  t.hosts.(s)

let shards_on_node t n =
  let acc = ref [] in
  for s = Array.length t.hosts - 1 downto 0 do
    if t.hosts.(s) = n then acc := s :: !acc
  done;
  !acc

let nodes_required t = Array.fold_left (fun acc n -> max acc (n + 1)) 0 t.hosts

let shard_name _t s = Printf.sprintf "s%d" s
