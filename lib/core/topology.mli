(** Cluster topology: the named shards of a TABS cluster and the nodes
    that host them.

    The seed treated a cluster as a bare list of nodes; scale-out work
    needs the extra level of indirection — a {e shard} is a named unit
    of data placement, and the topology records which node hosts each
    shard. The default topology is one shard per node (shard [i] on
    node [i]), which reproduces the seed behaviour exactly; richer
    layouts (several shards co-hosted on one node, e.g. to rehearse a
    migration) are expressible without touching any caller. *)

type t

(** [one_per_node ~shards] is the canonical layout: [shards] shards,
    shard [i] hosted on node [i]. *)
val one_per_node : shards:int -> t

(** [create hosts] places shard [i] on node [hosts.(i)]. Raises
    [Invalid_argument] on an empty array or a negative node id. *)
val create : int array -> t

(** Number of shards. *)
val shards : t -> int

(** [node_of_shard t s] is the node hosting shard [s]. *)
val node_of_shard : t -> int -> int

(** [shards_on_node t n] lists the shards hosted by node [n], in shard
    order. *)
val shards_on_node : t -> int -> int list

(** [nodes_required t] is the smallest node count that covers every
    shard (max hosting node + 1). *)
val nodes_required : t -> int

(** [shard_name t s] is the conventional display name ["s<id>"], used
    as the instance-name suffix by the placement layer. *)
val shard_name : t -> int -> string
