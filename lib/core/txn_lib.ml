open Tabs_sim
open Tabs_tm

let begin_transaction tm ?parent () =
  match parent with
  | None -> Txn_mgr.begin_txn tm
  | Some parent -> Txn_mgr.begin_subtxn tm parent

let end_transaction tm tid =
  match Txn_mgr.commit tm tid with
  | Txn_mgr.Committed -> true
  | Txn_mgr.Aborted -> false

let abort_transaction tm tid = Txn_mgr.abort tm tid

let transaction_is_aborted tm tid = Txn_mgr.is_aborted tm tid

(* Classify the exception that killed the transaction body for the
   trace stream's abort-reason taxonomy. *)
let abort_reason_of = function
  | Errors.Lock_timeout _ -> Trace.Lock_timeout
  | Errors.Deadlock _ -> Trace.Deadlock
  | Rpc.Rpc_timeout _ -> Trace.Comm_failure
  | _ -> Trace.Explicit

let execute_transaction tm f =
  let tid = Txn_mgr.begin_txn tm in
  match f tid with
  | result ->
      if end_transaction tm tid then result
      else raise (Errors.Transaction_is_aborted tid)
  | exception e ->
      Txn_mgr.abort tm ~reason:(abort_reason_of e) tid;
      raise e

let with_subtransaction tm parent f =
  let sub = Txn_mgr.begin_subtxn tm parent in
  match f sub with
  | result ->
      ignore (end_transaction tm sub);
      result
  | exception e ->
      Txn_mgr.abort tm sub;
      raise e
