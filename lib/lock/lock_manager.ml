open Tabs_sim
open Tabs_wal

type outcome = Granted | Timed_out | Deadlocked

type Trace.event +=
  | Lock_wait of { tid : Tid.t; obj : Object_id.t; mode : Mode.t }
  | Lock_granted of {
      tid : Tid.t;
      obj : Object_id.t;
      mode : Mode.t;
      waited : int; (* microseconds of virtual time spent queued; 0 if
                       granted immediately *)
    }
  | Lock_timed_out of {
      tid : Tid.t;
      obj : Object_id.t;
      mode : Mode.t;
      waited : int;
    }

type waiter = {
  w_tid : Tid.t;
  w_mode : Mode.t;
  w_key : Object_id.t;
  w_since : int; (* virtual time the wait began *)
  w_queue : outcome Engine.Waitq.t;
  mutable w_cancelled : bool;
}

(* Waiters queue FIFO. A timed-out waiter is only marked cancelled —
   O(1) — and its carcass is dropped when it reaches the front of the
   queue, instead of filtering the whole queue on every cancellation or
   release. [live] counts the non-cancelled waiters so the conditional
   path and statistics never need a scan either. *)
type entry = {
  mutable holds : (Tid.t * Mode.t list) list;
  waiters : waiter Queue.t;
  mutable live : int;
}

module Key = struct
  type t = Object_id.t

  let equal = Object_id.equal

  let hash = Object_id.hash
end

module Table = Hashtbl.Make (Key)

type t = {
  engine : Engine.t;
  compatible : Mode.compat;
  default_timeout : int;
  detect_deadlocks : bool;
  table : entry Table.t;
  mutable timeout_count : int;
  mutable deadlock_count : int;
}

let create ?(compatible = Mode.standard) ?(default_timeout = 10_000_000)
    ?(detect_deadlocks = false) engine () =
  {
    engine;
    compatible;
    default_timeout;
    detect_deadlocks;
    table = Table.create 64;
    timeout_count = 0;
    deadlock_count = 0;
  }

let entry t key =
  match Table.find_opt t.table key with
  | Some e -> e
  | None ->
      let e = { holds = []; waiters = Queue.create (); live = 0 } in
      Table.add t.table key e;
      e

(* A request by [tid] in [mode] is admissible when every conflicting
   holder is [tid] itself or one of its ancestors. *)
let admissible t entry tid mode =
  List.for_all
    (fun (holder, modes) ->
      Tid.equal holder tid
      || Tid.is_ancestor ~ancestor:holder tid
      || List.for_all (fun m -> t.compatible m mode) modes)
    entry.holds

let add_hold entry tid mode =
  let rec go = function
    | [] -> [ (tid, [ mode ]) ]
    | (holder, modes) :: rest when Tid.equal holder tid ->
        let modes =
          if List.exists (Mode.equal mode) modes then modes else mode :: modes
        in
        (holder, modes) :: rest
    | pair :: rest -> pair :: go rest
  in
  entry.holds <- go entry.holds

(* Grant waiters from the front of the FIFO while admissible; stop at the
   first live blocked waiter to avoid starvation. Cancelled carcasses
   reaching the front are discarded here — their [live] decrement already
   happened when they cancelled. *)
let grant_waiters t entry =
  let rec go () =
    match Queue.peek_opt entry.waiters with
    | None -> ()
    | Some w when w.w_cancelled ->
        ignore (Queue.pop entry.waiters);
        go ()
    | Some w ->
        if admissible t entry w.w_tid w.w_mode then begin
          ignore (Queue.pop entry.waiters);
          (* A waiter whose timeout fired at this same instant has already
             been woken with None and will report [Timed_out]; [signal]
             skips it and returns false. Granting it anyway would leave a
             hold the requester never learns about, so the hold is added
             only when the wake actually lands. (The skipped waiter's
             [live] decrement happens in its own timeout branch.) *)
          if Engine.Waitq.signal w.w_queue ~engine:t.engine Granted then begin
            entry.live <- entry.live - 1;
            add_hold entry w.w_tid w.w_mode;
            if Engine.tracing t.engine then
              Engine.emit t.engine
                (Lock_granted
                   {
                     tid = w.w_tid;
                     obj = w.w_key;
                     mode = w.w_mode;
                     waited = Engine.now t.engine - w.w_since;
                   })
          end;
          go ()
        end
  in
  go ()

let try_lock t tid key mode =
  let e = entry t key in
  (* Strict FIFO: a conditional request defers to queued live waiters;
     cancelled ghosts (live excluded) cannot refuse it. *)
  if e.live = 0 && admissible t e tid mode then begin
    add_hold e tid mode;
    true
  end
  else false

(* Waits-for-graph deadlock detection: [tid] is about to wait on the
   holders of [key]; refuse if some chain of waiting leads back to
   [tid]. The graph is read off the lock table: a transaction waits for
   the conflicting holders of the keys it is queued on. Top-level
   identities are used so a subtransaction waiting on its sibling's
   holder counts as the family waiting (intra-transaction deadlock is
   still reported, as the paper warns it can occur). *)
let would_deadlock t tid key mode =
  let roots_of_holders entry requester req_mode =
    List.filter_map
      (fun (holder, modes) ->
        if
          Tid.equal holder requester
          || Tid.is_ancestor ~ancestor:holder requester
          || List.for_all (fun m -> t.compatible m req_mode) modes
        then None
        else Some holder)
      entry.holds
  in
  (* edges from every queued waiter *)
  let edges = Hashtbl.create 16 in
  let add_edge a b = Hashtbl.add edges a b in
  Table.iter
    (fun _ e ->
      Queue.iter
        (fun w ->
          if not w.w_cancelled then
            List.iter (add_edge w.w_tid) (roots_of_holders e w.w_tid w.w_mode))
        e.waiters)
    t.table;
  (* plus the hypothetical edge set of the new request *)
  let entry0 = entry t key in
  let first_hops = roots_of_holders entry0 tid mode in
  let visited = Hashtbl.create 16 in
  let rec reaches_requester node =
    Tid.equal node tid
    || Tid.is_ancestor ~ancestor:node tid
    || Tid.is_ancestor ~ancestor:tid node
    ||
    if Hashtbl.mem visited node then false
    else begin
      Hashtbl.add visited node ();
      List.exists reaches_requester (Hashtbl.find_all edges node)
    end
  in
  List.exists reaches_requester first_hops

let lock t tid key mode ?timeout () =
  if try_lock t tid key mode then Granted
  else if t.detect_deadlocks && would_deadlock t tid key mode then begin
    t.deadlock_count <- t.deadlock_count + 1;
    Deadlocked
  end
  else begin
    let e = entry t key in
    let w =
      {
        w_tid = tid;
        w_mode = mode;
        w_key = key;
        w_since = Engine.now t.engine;
        w_queue = Engine.Waitq.create ();
        w_cancelled = false;
      }
    in
    Queue.push w e.waiters;
    e.live <- e.live + 1;
    if Engine.tracing t.engine then
      Engine.emit t.engine (Lock_wait { tid; obj = key; mode });
    let timeout =
      match timeout with Some micros -> micros | None -> t.default_timeout
    in
    match Engine.Waitq.wait_timeout w.w_queue ~engine:t.engine ~timeout with
    | Some outcome -> outcome
    | None ->
        (* Cancel in place; the carcass is dropped when it reaches the
           queue front. *)
        w.w_cancelled <- true;
        e.live <- e.live - 1;
        t.timeout_count <- t.timeout_count + 1;
        if Engine.tracing t.engine then
          Engine.emit t.engine
            (Lock_timed_out
               { tid; obj = key; mode; waited = Engine.now t.engine - w.w_since });
        (* The cancelled waiter may have been blocking others. *)
        grant_waiters t e;
        Timed_out
  end

let is_locked t key =
  match Table.find_opt t.table key with
  | None -> false
  | Some e -> e.holds <> []

let holders t key =
  match Table.find_opt t.table key with None -> [] | Some e -> e.holds

let held_by t tid =
  Table.fold
    (fun key e acc ->
      if List.exists (fun (h, _) -> Tid.equal h tid) e.holds then key :: acc
      else acc)
    t.table []

let release_all t tid =
  Table.iter
    (fun _ e ->
      let before = List.length e.holds in
      e.holds <- List.filter (fun (h, _) -> not (Tid.equal h tid)) e.holds;
      if List.length e.holds <> before then grant_waiters t e)
    t.table

let release_subtree t root =
  let in_subtree (h, _) = Tid.is_ancestor ~ancestor:root h in
  Table.iter
    (fun _ e ->
      let before = List.length e.holds in
      e.holds <- List.filter (fun hold -> not (in_subtree hold)) e.holds;
      if List.length e.holds <> before then grant_waiters t e)
    t.table

let release_family t top = release_subtree t (Tid.top_level top)

let transfer_to_parent t tid =
  match Tid.parent tid with
  | None -> invalid_arg "Lock_manager.transfer_to_parent: top-level tid"
  | Some parent ->
      Table.iter
        (fun _ e ->
          match List.find_opt (fun (h, _) -> Tid.equal h tid) e.holds with
          | None -> ()
          | Some (_, modes) ->
              e.holds <-
                List.filter (fun (h, _) -> not (Tid.equal h tid)) e.holds;
              List.iter (fun m -> add_hold e parent m) modes)
        t.table

let total_holds t =
  Table.fold (fun _ e acc -> acc + List.length e.holds) t.table 0

let waiting t = Table.fold (fun _ e acc -> acc + e.live) t.table 0

let timeouts t = t.timeout_count

let deadlocks_detected t = t.deadlock_count
