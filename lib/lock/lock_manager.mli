(** Per-server lock manager.

    Servers implement locking locally (Section 2.1.3), so each data
    server owns one lock manager, created with its compatibility
    relation. Deadlock is resolved by time-outs, like TABS ("TABS, like
    many other systems, currently relies on time-outs"). All unlocking is
    done automatically at commit or abort time (Section 3.1.1).

    Subtransaction semantics follow Section 2.1.3: an active
    subtransaction synchronizes as a completely separate transaction (two
    siblings can deadlock); when a subtransaction finishes successfully
    its locks pass to its parent, and when it aborts they are released.
    As a divergence made explicit here, a transaction is never blocked by
    locks held solely by its own ancestors. *)

type t

(** Trace events (see {!Tabs_sim.Trace}): a request joining the wait
    queue, a queued request being granted, and a wait expiring. [waited]
    is the virtual time spent queued. Immediate grants are not traced. *)
type Tabs_sim.Trace.event +=
  | Lock_wait of {
      tid : Tabs_wal.Tid.t;
      obj : Tabs_wal.Object_id.t;
      mode : Mode.t;
    }
  | Lock_granted of {
      tid : Tabs_wal.Tid.t;
      obj : Tabs_wal.Object_id.t;
      mode : Mode.t;
      waited : int;
    }
  | Lock_timed_out of {
      tid : Tabs_wal.Tid.t;
      obj : Tabs_wal.Object_id.t;
      mode : Mode.t;
      waited : int;
    }

type outcome =
  | Granted
  | Timed_out
  | Deadlocked
      (** refused immediately because waiting would close a cycle —
          only with [detect_deadlocks] *)

(** [detect_deadlocks] (default false) enables a local waits-for-graph
    detector in the style the paper cites as the alternative to
    time-outs (Obermarck; R*'s local detector): a request that would
    close a cycle of waiting transactions is refused with {!Deadlocked}
    instead of joining the queue. Time-outs remain as the backstop
    (and as the only resolution for distributed deadlocks, exactly as
    in TABS). *)
val create :
  ?compatible:Mode.compat ->
  ?default_timeout:int ->
  ?detect_deadlocks:bool ->
  Tabs_sim.Engine.t ->
  unit ->
  t

(** [lock t tid key mode] waits until the lock is granted or the timeout
    (explicitly set by system users, defaulting to the manager's)
    expires. Re-requesting a held mode is granted immediately; an upgrade
    waits for conflicting holders. Must run inside a fiber. *)
val lock :
  t -> Tabs_wal.Tid.t -> Tabs_wal.Object_id.t -> Mode.t -> ?timeout:int ->
  unit -> outcome

(** [try_lock t tid key mode] is the server library's
    [ConditionallyLockObject]: acquire without waiting, reporting
    success. *)
val try_lock : t -> Tabs_wal.Tid.t -> Tabs_wal.Object_id.t -> Mode.t -> bool

(** [is_locked t key] is the server library's [IsObjectLocked]. *)
val is_locked : t -> Tabs_wal.Object_id.t -> bool

(** [holders t key] lists current holders with their modes. *)
val holders : t -> Tabs_wal.Object_id.t -> (Tabs_wal.Tid.t * Mode.t list) list

(** [held_by t tid] lists the keys [tid] currently holds. *)
val held_by : t -> Tabs_wal.Tid.t -> Tabs_wal.Object_id.t list

(** [release_all t tid] drops every lock held by [tid] (commit or abort
    of a top-level transaction, or abort of a subtransaction) and grants
    eligible waiters. *)
val release_all : t -> Tabs_wal.Tid.t -> unit

(** [release_subtree t tid] drops the locks of [tid] and of every
    descendant subtransaction — the unlock when a subtransaction
    subtree aborts. *)
val release_subtree : t -> Tabs_wal.Tid.t -> unit

(** [release_family t top] drops the locks of [top]'s whole family —
    the automatic unlock at top-level commit or abort. *)
val release_family : t -> Tabs_wal.Tid.t -> unit

(** [transfer_to_parent t tid] passes the subtransaction's locks to its
    parent when it finishes (merging with locks the parent already
    holds). Raises [Invalid_argument] on a top-level tid. *)
val transfer_to_parent : t -> Tabs_wal.Tid.t -> unit

(** [total_holds t] counts (holder, key) hold entries across the whole
    table — zero exactly when no transaction holds any lock. Lets tests
    assert that a workload left nothing locked behind. *)
val total_holds : t -> int

(** [waiting t] counts live (non-cancelled) queued waiters. *)
val waiting : t -> int

(** Number of lock requests that have timed out (deadlock statistic). *)
val timeouts : t -> int

(** Number of requests refused by the waits-for-graph detector. *)
val deadlocks_detected : t -> int
