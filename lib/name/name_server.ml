open Tabs_sim
open Tabs_net

type entry = { name : string; node : int; server : string; object_id : string }

type Network.payload +=
  | Ns_query of { name : string }
  | Ns_reply of { matches : entry list }

type pending = {
  query_name : string;
  enough : entry list -> bool;
  mutable collected : entry list;
  signal : unit Engine.Waitq.t;
}

type t = {
  engine : Engine.t;
  node_id : int;
  cm : Comm_mgr.t;
  mutable table : entry list;
  mutable pending : pending list;
}

let local_matches t name =
  List.filter (fun e -> String.equal e.name name) t.table

let register t ~name ~server ~object_id =
  let entry = { name; node = t.node_id; server; object_id } in
  if not (List.mem entry t.table) then t.table <- entry :: t.table

let deregister t ~name ~server =
  t.table <-
    List.filter
      (fun e -> not (String.equal e.name name && String.equal e.server server))
      t.table

let local_entries t = t.table

(* Generalized lookup: collect matching entries (local table first, then
   a broadcast round) until [enough] is satisfied or [max_wait] passes.
   The count-based [lookup] and the placement-aware [lookup_owner] are
   both instances of this. *)
let lookup_until t ~name ~enough ~max_wait () =
  let local = local_matches t name in
  if enough local then local
  else begin
    let p =
      { query_name = name; enough; collected = local;
        signal = Engine.Waitq.create () }
    in
    t.pending <- p :: t.pending;
    Comm_mgr.broadcast t.cm (Ns_query { name });
    let deadline = Engine.now t.engine + max_wait in
    let rec wait () =
      if not (p.enough p.collected) then begin
        let remaining = deadline - Engine.now t.engine in
        if remaining > 0 then
          match
            Engine.Waitq.wait_timeout p.signal ~engine:t.engine ~timeout:remaining
          with
          | Some () -> wait ()
          | None -> ()
      end
    in
    wait ();
    t.pending <- List.filter (fun q -> q != p) t.pending;
    p.collected
  end

let lookup t ~name ?(desired = 1) ?(max_wait = 500_000) () =
  lookup_until t ~name
    ~enough:(fun entries -> List.length entries >= desired)
    ~max_wait ()

(* Key-range placement entries: the object id carries the owned key
   range, so directory lookups can answer "who owns key k of keyspace
   X?" without a separate placement service. *)

let range_object_id ~lo ~hi = Printf.sprintf "range:%d:%d" lo hi

let range_of_entry (e : entry) =
  match String.split_on_char ':' e.object_id with
  | [ "range"; lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi -> Some (lo, hi)
      | _ -> None)
  | _ -> None

let register_range t ~name ~server ~lo ~hi =
  register t ~name ~server ~object_id:(range_object_id ~lo ~hi)

let entry_covers key e =
  match range_of_entry e with
  | Some (lo, hi) -> lo <= key && key < hi
  | None -> false

let lookup_owner t ~name ~key ?(max_wait = 500_000) () =
  let entries =
    lookup_until t ~name
      ~enough:(fun entries -> List.exists (entry_covers key) entries)
      ~max_wait ()
  in
  List.find_opt (entry_covers key) entries

let handle_query t ~src name =
  let matches = local_matches t name in
  if matches <> [] then
    Comm_mgr.send_datagram t.cm ~dest:src (Ns_reply { matches })

let handle_reply t matches =
  List.iter
    (fun p ->
      let fresh =
        List.filter
          (fun (e : entry) ->
            String.equal e.name p.query_name && not (List.mem e p.collected))
          matches
      in
      if fresh <> [] then begin
        p.collected <- p.collected @ fresh;
        ignore (Engine.Waitq.signal p.signal ~engine:t.engine ())
      end)
    t.pending

let create engine ~node ~cm =
  let t = { engine; node_id = node; cm; table = []; pending = [] } in
  Comm_mgr.set_broadcast_handler cm (fun ~src payload ->
      match payload with
      | Ns_query { name } -> handle_query t ~src name
      | _ -> ());
  Comm_mgr.add_datagram_handler cm (fun ~src:_ payload ->
      match payload with
      | Ns_reply { matches } -> handle_reply t matches
      | _ -> ());
  t
