(** The Name Server: name dissemination (Sections 3.1.3 and 3.2.5).

    Each node's Name Server maps object names to one or more
    <port, logical-object-identifier> pairs for objects managed by data
    servers on that node. When asked about an unknown name it broadcasts
    a lookup request to all other Name Servers; replies arrive as
    datagrams. A data server may service several objects on one port,
    and independent data servers on different nodes may register the same
    name — that is how replicated objects advertise their
    representatives. *)

(** One <port, logical-object-identifier> binding. In this
    implementation a port is addressed by (node, server-name). *)
type entry = { name : string; node : int; server : string; object_id : string }

type t

val create : Tabs_sim.Engine.t -> node:int -> cm:Tabs_net.Comm_mgr.t -> t

(** [register t ~name ~server ~object_id] publishes a local binding. *)
val register : t -> name:string -> server:string -> object_id:string -> unit

(** [deregister t ~name ~server] withdraws a local binding. *)
val deregister : t -> name:string -> server:string -> unit

(** [lookup t ~name ~desired ~max_wait ()] returns up to [desired]
    bindings, consulting the local table first and broadcasting on a
    miss (or when more replicas are wanted than are known locally).
    Waits at most [max_wait] microseconds for remote replies. Must run
    inside a fiber. *)
val lookup :
  t -> name:string -> ?desired:int -> ?max_wait:int -> unit -> entry list

(** [local_entries t] lists this node's registrations (for tests). *)
val local_entries : t -> entry list

(** {2 Placement-aware lookups}

    A sharded keyspace advertises each shard's slice through the
    directory: every shard instance registers under the keyspace's
    {e logical} name with an object id that encodes the owned key range,
    so any node can resolve "who owns key [k] of keyspace [n]?" with an
    ordinary directory lookup — no separate placement service. *)

(** [range_object_id ~lo ~hi] encodes ownership of keys [lo <= k < hi]. *)
val range_object_id : lo:int -> hi:int -> string

(** [range_of_entry e] decodes an entry's key range, if it has one. *)
val range_of_entry : entry -> (int * int) option

(** [register_range t ~name ~server ~lo ~hi] publishes a local binding
    that owns keys [lo <= k < hi] of keyspace [name]. *)
val register_range : t -> name:string -> server:string -> lo:int -> hi:int -> unit

(** [lookup_owner t ~name ~key ()] finds the binding whose key range
    covers [key], consulting the local table first and broadcasting on a
    miss. [None] after [max_wait] microseconds without a covering reply.
    Must run inside a fiber. *)
val lookup_owner :
  t -> name:string -> key:int -> ?max_wait:int -> unit -> entry option
