open Tabs_sim
open Tabs_wal

(* Internal session envelope. [incarnation] distinguishes sender
   restarts: receivers key their expected-sequence state by it, so a
   rebooted endpoint starts a fresh at-most-once stream. *)
type Network.payload +=
  | Sess_data of {
      seq : int;
      incarnation : int;
      tid : Tid.t option;
      inner : Network.payload;
    }
  | Sess_ack of { seq : int; incarnation : int }
  | Sess_reset of { incarnation : int }
        (* receiver has no state for this stream and cannot accept a
           mid-stream frame: the sender must renumber and resend *)

type Trace.event +=
  | Session_retransmit of {
      node : int;
      peer : int;
      attempt : int;
      window : int; (* unacked frames resent *)
      rto : int; (* backed-off timeout that just expired *)
    }
  | Session_failure of { node : int; peer : int }

type out_session = {
  mutable seq : int; (* next sequence number to assign *)
  mutable acked : int; (* all < acked are acknowledged *)
  mutable incarnation : int;
  unsent : (int * Tid.t option * Network.payload) Queue.t;
      (* messages assigned a seq, awaiting ack; head is oldest *)
  mutable timer_running : bool;
  mutable attempts : int;
  mutable cur_rto : int;
      (* current retransmission timeout: base rto, doubled per barren
         retransmission up to rto_max, reset when an ack makes progress *)
}

type in_session = { mutable expected : int; mutable incarnation : int }

type tree = {
  mutable parent : int option;
  mutable children : int list;
  mutable local_root : bool;
}

type t = {
  net : Network.t;
  node_id : int;
  rto : int;
  rto_max : int;
  retries : int;
  mutable alive : bool;
  out_sessions : (int, out_session) Hashtbl.t;
  in_sessions : (int, in_session) Hashtbl.t;
  trees : (Tid.t, tree) Hashtbl.t; (* keyed by top-level tid *)
  mutable datagram_handlers : (src:int -> Network.payload -> unit) list;
  mutable session_handler : src:int -> Network.payload -> unit;
  mutable broadcast_handler : src:int -> Network.payload -> unit;
  mutable failure_handler : peer:int -> unit;
  mutable remote_involvement : Tid.t -> unit;
  mutable next_incarnation : int;
}

let engine t = Network.engine t.net

(* Transport latency for session and ack frames; subsumed by the
   inter-node RPC primitive charged above this layer. *)
let session_wire_delay = 2_000

let node t = t.node_id

let shutdown t = t.alive <- false

let tree_of t tid =
  let key = Tid.top_level tid in
  match Hashtbl.find_opt t.trees key with
  | Some tree -> tree
  | None ->
      let tree = { parent = None; children = []; local_root = false } in
      Hashtbl.add t.trees key tree;
      tree

let note_local_root t tid = (tree_of t tid).local_root <- true

let parent_of t tid = (tree_of t tid).parent

let children_of t tid = List.rev (tree_of t tid).children

let involved_remotely t tid =
  let tree = tree_of t tid in
  tree.parent <> None || tree.children <> []

let forget_txn t tid = Hashtbl.remove t.trees (Tid.top_level tid)

let note_outgoing t tid dest =
  match tid with
  | None -> ()
  | Some tid ->
      let tree = tree_of t tid in
      let fresh = not (involved_remotely t tid) in
      (* A reply to the node that first sent us the transaction must not
         turn our parent into a child. *)
      if
        dest <> t.node_id
        && tree.parent <> Some dest
        && not (List.mem dest tree.children)
      then tree.children <- dest :: tree.children;
      if fresh && involved_remotely t tid then t.remote_involvement tid

let note_incoming t tid src =
  match tid with
  | None -> ()
  | Some tid ->
      let tree = tree_of t tid in
      let fresh = not (involved_remotely t tid) in
      (* A reply from a child must not become our parent. *)
      if
        tree.parent = None && (not tree.local_root) && src <> t.node_id
        && not (List.mem src tree.children)
      then tree.parent <- Some src;
      if fresh then t.remote_involvement tid

(* Sessions ---------------------------------------------------------- *)

(* Incarnation identifiers must grow across Communication Manager
   restarts so receivers can ignore stale frames: fold the virtual time
   of allocation into the value. *)
let fresh_incarnation t =
  t.next_incarnation <- t.next_incarnation + 1;
  (t.node_id * 1_000_000_000_000)
  + (Engine.now (engine t) * 100)
  + (t.next_incarnation mod 100)

let out_session t peer =
  match Hashtbl.find_opt t.out_sessions peer with
  | Some s -> s
  | None ->
      let s =
        {
          seq = 0;
          acked = 0;
          incarnation = fresh_incarnation t;
          unsent = Queue.create ();
          timer_running = false;
          attempts = 0;
          cur_rto = t.rto;
        }
      in
      Hashtbl.add t.out_sessions peer s;
      s

let transmit_frame t ~dest frame =
  Network.transmit t.net ~src:t.node_id ~dest ~channel:Network.Session
    ~delay:session_wire_delay frame

let send_window t ~dest (s : out_session) =
  Queue.iter
    (fun (seq, tid, inner) ->
      transmit_frame t ~dest
        (Sess_data { seq; incarnation = s.incarnation; tid; inner }))
    s.unsent

let rec arm_timer t ~dest (s : out_session) =
  if not s.timer_running then begin
    s.timer_running <- true;
    Engine.at (engine t) ~delay:s.cur_rto (fun () -> on_timer t ~dest s)
  end

and on_timer t ~dest s =
  s.timer_running <- false;
  if t.alive && not (Queue.is_empty s.unsent) then begin
    s.attempts <- s.attempts + 1;
    if s.attempts > t.retries then begin
      (* Permanent communication failure: drop the stream, start a new
         incarnation for any later traffic, and report the peer. *)
      Queue.clear s.unsent;
      s.attempts <- 0;
      s.cur_rto <- t.rto;
      s.incarnation <- fresh_incarnation t;
      s.seq <- 0;
      s.acked <- 0;
      if Engine.tracing (engine t) then
        Engine.emit (engine t)
          (Session_failure { node = t.node_id; peer = dest });
      let handler = t.failure_handler in
      ignore (Engine.spawn (engine t) ~node:t.node_id (fun () -> handler ~peer:dest))
    end
    else begin
      if Engine.tracing (engine t) then
        Engine.emit (engine t)
          (Session_retransmit
             {
               node = t.node_id;
               peer = dest;
               attempt = s.attempts;
               window = Queue.length s.unsent;
               rto = s.cur_rto;
             });
      send_window t ~dest s;
      (* Exponential backoff: under sustained loss or a dead peer, each
         barren round doubles the wait instead of flooding the wire at a
         fixed cadence. An ack that makes progress resets the timeout. *)
      s.cur_rto <- min (2 * s.cur_rto) t.rto_max;
      arm_timer t ~dest s
    end
  end

let session_send t ~dest ?tid payload =
  note_outgoing t tid dest;
  let s = out_session t dest in
  let seq = s.seq in
  s.seq <- seq + 1;
  Queue.add (seq, tid, payload) s.unsent;
  transmit_frame t ~dest (Sess_data { seq; incarnation = s.incarnation; tid; inner = payload });
  arm_timer t ~dest s

(* The receiver lost its state (restart): renumber every unacked
   message into a fresh stream and resend. Messages that were already
   acknowledged were delivered to the receiver's previous incarnation
   and are not replayed. *)
let handle_reset t ~src ~incarnation =
  match Hashtbl.find_opt t.out_sessions src with
  | Some s when incarnation = s.incarnation ->
      s.incarnation <- fresh_incarnation t;
      s.acked <- 0;
      let pending = Queue.create () in
      let n = ref 0 in
      Queue.iter
        (fun (_, tid, inner) ->
          Queue.add (!n, tid, inner) pending;
          incr n)
        s.unsent;
      Queue.clear s.unsent;
      Queue.transfer pending s.unsent;
      s.seq <- !n;
      s.attempts <- 0;
      s.cur_rto <- t.rto;
      send_window t ~dest:src s;
      arm_timer t ~dest:src s
  | Some _ | None -> ()

let handle_ack t ~src ~seq ~incarnation =
  match Hashtbl.find_opt t.out_sessions src with
  | None -> ()
  | Some s ->
      if incarnation = s.incarnation && seq >= s.acked then begin
        s.acked <- seq + 1;
        s.attempts <- 0;
        s.cur_rto <- t.rto;
        while
          (not (Queue.is_empty s.unsent))
          && (let q, _, _ = Queue.peek s.unsent in
              q <= seq)
        do
          ignore (Queue.pop s.unsent)
        done
      end

let handle_session_data t ~src ~seq ~incarnation ~tid ~inner =
  match Hashtbl.find_opt t.in_sessions src with
  | None when seq > 0 ->
      (* We have no state for this stream (we probably restarted) and
         this frame is not its beginning: earlier frames were delivered
         to our previous incarnation. Ask the sender to renumber. *)
      Network.transmit t.net ~src:t.node_id ~dest:src ~channel:Network.Session
        ~delay:session_wire_delay (Sess_reset { incarnation })
  | state ->
  let s =
    match state with
    | Some s -> s
    | None ->
        let s = { expected = 0; incarnation } in
        Hashtbl.add t.in_sessions src s;
        s
  in
  if incarnation < s.incarnation then
    (* stale frame from a superseded stream *)
    ()
  else begin
  if incarnation > s.incarnation then begin
    (* The peer restarted (or declared us failed): fresh stream. *)
    s.incarnation <- incarnation;
    s.expected <- 0
  end;
  if seq < s.expected then
    (* Duplicate of a delivered message: re-ack, do not deliver. *)
    Network.transmit t.net ~src:t.node_id ~dest:src ~channel:Network.Session
      ~delay:session_wire_delay
      (Sess_ack { seq = s.expected - 1; incarnation })
  else if seq = s.expected then begin
    s.expected <- seq + 1;
    Network.transmit t.net ~src:t.node_id ~dest:src ~channel:Network.Session
      ~delay:session_wire_delay
      (Sess_ack { seq; incarnation });
    note_incoming t tid src;
    t.session_handler ~src inner
  end
  (* seq > expected: an earlier frame was lost; the retransmission of the
     full window will re-deliver in order, so drop this one. *)
  end

(* Datagrams --------------------------------------------------------- *)

let datagram_delay t = Cost_model.cost (Engine.cost_model (engine t)) Cost_model.Datagram

(* The datagram primitive's cost covers protocol work and the wire: the
   sending fiber is delayed by it, and delivery coincides with the
   sender resuming. *)
let send_datagram t ~dest payload =
  Engine.charge (engine t) Cost_model.Datagram;
  Engine.note_cpu (engine t) ~process:"cm" (datagram_delay t);
  Network.transmit t.net ~src:t.node_id ~dest ~channel:Network.Datagram
    ~delay:0 payload

let send_datagrams_parallel t ~dests payload =
  match dests with
  | [] -> ()
  | first :: rest ->
      send_datagram t ~dest:first payload;
      List.iter
        (fun dest ->
          (* overlapped sends cost the paper's half-datagram increment *)
          Engine.charge_fraction (engine t) Cost_model.Datagram ~num:1 ~den:2;
          Engine.note_cpu (engine t) ~process:"cm" (datagram_delay t / 2);
          Network.transmit t.net ~src:t.node_id ~dest ~channel:Network.Datagram
            ~delay:0 payload)
        rest

(* Broadcast --------------------------------------------------------- *)

let broadcast t payload =
  Engine.charge (engine t) Cost_model.Datagram;
  List.iter
    (fun dest ->
      if dest <> t.node_id then
        Network.transmit t.net ~src:t.node_id ~dest ~channel:Network.Broadcast
          ~delay:(datagram_delay t) payload)
    (Network.nodes t.net)

(* Wiring ------------------------------------------------------------ *)

let add_datagram_handler t f = t.datagram_handlers <- t.datagram_handlers @ [ f ]

let set_session_handler t f = t.session_handler <- f

let set_broadcast_handler t f = t.broadcast_handler <- f

let set_failure_handler t f = t.failure_handler <- f

let set_remote_involvement_handler t f = t.remote_involvement <- f

let create net ~node ?(session_rto = 100_000) ?session_rto_max
    ?(session_retries = 8) () =
  let rto_max =
    match session_rto_max with Some m -> max m session_rto | None -> 8 * session_rto
  in
  let t =
    {
      net;
      node_id = node;
      rto = session_rto;
      rto_max;
      retries = session_retries;
      alive = true;
      out_sessions = Hashtbl.create 8;
      in_sessions = Hashtbl.create 8;
      trees = Hashtbl.create 32;
      datagram_handlers = [];
      session_handler = (fun ~src:_ _ -> ());
      broadcast_handler = (fun ~src:_ _ -> ());
      failure_handler = (fun ~peer:_ -> ());
      remote_involvement = (fun _ -> ());
      next_incarnation = 0;
    }
  in
  Network.register net ~node ~channel:Network.Datagram (fun ~src payload ->
      if t.alive then
        List.iter (fun handler -> handler ~src payload) t.datagram_handlers);
  Network.register net ~node ~channel:Network.Broadcast (fun ~src payload ->
      if t.alive then t.broadcast_handler ~src payload);
  Network.register net ~node ~channel:Network.Session (fun ~src payload ->
      if t.alive then
        match payload with
        | Sess_data { seq; incarnation; tid; inner } ->
            handle_session_data t ~src ~seq ~incarnation ~tid ~inner
        | Sess_ack { seq; incarnation } -> handle_ack t ~src ~seq ~incarnation
        | Sess_reset { incarnation } -> handle_reset t ~src ~incarnation
        | _ -> ());
  t
