open Tabs_sim
open Tabs_wal

(* Internal session envelope. [incarnation] distinguishes sender
   restarts: receivers key their expected-sequence state by it, so a
   rebooted endpoint starts a fresh at-most-once stream. *)
type Network.payload +=
  | Sess_data of {
      seq : int;
      incarnation : int;
      tid : Tid.t option;
      inner : Network.payload;
    }
  | Sess_ack of { seq : int; incarnation : int }
  | Sess_reset of { incarnation : int }
        (* receiver has no state for this stream and cannot accept a
           mid-stream frame: the sender must renumber and resend *)
  | Coalesced of Network.payload list
        (* one wire datagram carrying several frames (comm batching);
           frames are in send order *)

type Trace.event +=
  | Session_retransmit of {
      node : int;
      peer : int;
      attempt : int;
      window : int; (* unacked frames resent this round (burst-capped) *)
      rto : int; (* backed-off timeout that just expired *)
    }
  | Session_failure of { node : int; peer : int }
  | Comm_batch of {
      node : int;
      peer : int;
      frames : int; (* frames in the departing wire message *)
      control : int; (* datagram-class frames among them *)
      piggybacked_ack : bool; (* a reverse-stream ack rode along *)
    }

(* Comm batching (off by default): outgoing frames to the same peer
   wait up to [flush_delay] for companions (or until [max_frames] /
   [max_bytes]) and travel as one multi-frame datagram; delivery acks
   wait up to [ack_delay] for a reverse-direction frame to ride, and
   otherwise go out as one standalone cumulative ack. *)
type batching = {
  ack_delay : int;
  flush_delay : int;
  max_frames : int;
  max_bytes : int;
}

(* The ack window sits just above the data-server-call time (26.1 ms),
   so the acknowledgement of an RPC request usually rides the reply —
   the classic delayed-ack design point — while staying well under the
   100 ms retransmission timeout. *)
let default_batching =
  { ack_delay = 30_000; flush_delay = 1_000; max_frames = 16; max_bytes = 8_192 }

(* Per-peer wire accounting, mirrored into the engine-global
   {!Metrics.msgs} block. *)
type peer_stats = {
  mutable wire_messages : int;
  mutable carried_frames : int;
  mutable piggybacked_acks : int;
  mutable delayed_acks : int;
  mutable duplicate_reacks : int;
}

type out_session = {
  mutable seq : int; (* next sequence number to assign *)
  mutable acked : int; (* all < acked are acknowledged *)
  mutable incarnation : int;
  unsent : (int * Tid.t option * Network.payload) Queue.t;
      (* messages assigned a seq, awaiting ack; head is oldest *)
  mutable timer_running : bool;
  mutable attempts : int;
  mutable cur_rto : int;
      (* current retransmission timeout: base rto, doubled per barren
         retransmission up to rto_max, reset when an ack makes progress *)
}

type in_session = { mutable expected : int; mutable incarnation : int }

(* One open per-peer batch of outgoing frames. [control] frames are
   datagram-class (each would have been a full charged datagram on its
   own); the rest are session-class (their transport is charged by the
   RPC primitive above this layer). *)
type out_batch = {
  mutable frames : (bool * Network.payload) list; (* (control?, frame), newest first *)
  mutable nframes : int;
  mutable bytes : int;
  mutable flush_armed : bool;
}

(* A cumulative ack owed to [peer] for its incoming stream, waiting for
   a ride on an outgoing frame or for the ack window to expire. *)
type pending_ack = {
  mutable upto : int; (* highest delivered seq to acknowledge *)
  mutable pa_incarnation : int;
  mutable covered : int; (* deliveries this ack will cover *)
  mutable live : bool;
  mutable ack_armed : bool;
}

type tree = {
  mutable parent : int option;
  mutable children : int list;
  mutable local_root : bool;
}

type t = {
  net : Network.t;
  node_id : int;
  rto : int;
  rto_max : int;
  retries : int;
  resend_burst : int;
  batching : batching option;
  mutable alive : bool;
  out_sessions : (int, out_session) Hashtbl.t;
  in_sessions : (int, in_session) Hashtbl.t;
  out_batches : (int, out_batch) Hashtbl.t;
  pending_acks : (int, pending_ack) Hashtbl.t;
  peer_stats : (int, peer_stats) Hashtbl.t;
  trees : (Tid.t, tree) Hashtbl.t; (* keyed by top-level tid *)
  mutable datagram_handlers : (src:int -> Network.payload -> unit) list;
  mutable session_handler : src:int -> Network.payload -> unit;
  mutable broadcast_handler : src:int -> Network.payload -> unit;
  mutable failure_handler : peer:int -> unit;
  mutable remote_involvement : Tid.t -> unit;
  mutable next_incarnation : int;
}

let engine t = Network.engine t.net

(* Transport latency for session and ack frames; subsumed by the
   inter-node RPC primitive charged above this layer. *)
let session_wire_delay = 2_000

let node t = t.node_id

let batching t = t.batching

let shutdown t = t.alive <- false

(* Wire accounting ---------------------------------------------------- *)

let peer_stats_of t peer =
  match Hashtbl.find_opt t.peer_stats peer with
  | Some s -> s
  | None ->
      let s =
        {
          wire_messages = 0;
          carried_frames = 0;
          piggybacked_acks = 0;
          delayed_acks = 0;
          duplicate_reacks = 0;
        }
      in
      Hashtbl.add t.peer_stats peer s;
      s

let peer_wire_stats t ~peer = Hashtbl.find_opt t.peer_stats peer

let total_wire_messages t =
  Hashtbl.fold (fun _ s acc -> acc + s.wire_messages) t.peer_stats 0

let global_msgs t = Metrics.msgs (Engine.metrics (engine t))

let count_wire t ~peer ~frames =
  let m = global_msgs t in
  m.Metrics.wire_messages <- m.Metrics.wire_messages + 1;
  m.Metrics.carried_frames <- m.Metrics.carried_frames + frames;
  let s = peer_stats_of t peer in
  s.wire_messages <- s.wire_messages + 1;
  s.carried_frames <- s.carried_frames + frames

let count_piggybacked t ~peer ~covered =
  let m = global_msgs t in
  m.Metrics.piggybacked_acks <- m.Metrics.piggybacked_acks + 1;
  m.Metrics.ack_deliveries_covered <- m.Metrics.ack_deliveries_covered + covered;
  let s = peer_stats_of t peer in
  s.piggybacked_acks <- s.piggybacked_acks + 1

let count_delayed_ack t ~peer ~covered =
  let m = global_msgs t in
  m.Metrics.delayed_acks <- m.Metrics.delayed_acks + 1;
  m.Metrics.ack_deliveries_covered <- m.Metrics.ack_deliveries_covered + covered;
  let s = peer_stats_of t peer in
  s.delayed_acks <- s.delayed_acks + 1

let count_duplicate_reack t ~peer =
  let m = global_msgs t in
  m.Metrics.duplicate_reacks <- m.Metrics.duplicate_reacks + 1;
  let s = peer_stats_of t peer in
  s.duplicate_reacks <- s.duplicate_reacks + 1

(* Commit spanning tree ------------------------------------------------ *)

let tree_of t tid =
  let key = Tid.top_level tid in
  match Hashtbl.find_opt t.trees key with
  | Some tree -> tree
  | None ->
      let tree = { parent = None; children = []; local_root = false } in
      Hashtbl.add t.trees key tree;
      tree

let note_local_root t tid = (tree_of t tid).local_root <- true

let parent_of t tid = (tree_of t tid).parent

let children_of t tid = List.rev (tree_of t tid).children

let involved_remotely t tid =
  let tree = tree_of t tid in
  tree.parent <> None || tree.children <> []

let forget_txn t tid = Hashtbl.remove t.trees (Tid.top_level tid)

let note_outgoing t tid dest =
  match tid with
  | None -> ()
  | Some tid ->
      let tree = tree_of t tid in
      let fresh = not (involved_remotely t tid) in
      (* A reply to the node that first sent us the transaction must not
         turn our parent into a child. *)
      if
        dest <> t.node_id
        && tree.parent <> Some dest
        && not (List.mem dest tree.children)
      then tree.children <- dest :: tree.children;
      if fresh && involved_remotely t tid then t.remote_involvement tid

let note_incoming t tid src =
  match tid with
  | None -> ()
  | Some tid ->
      let tree = tree_of t tid in
      let fresh = not (involved_remotely t tid) in
      (* A reply from a child must not become our parent. *)
      if
        tree.parent = None && (not tree.local_root) && src <> t.node_id
        && not (List.mem src tree.children)
      then tree.parent <- Some src;
      if fresh then t.remote_involvement tid

(* Sessions ---------------------------------------------------------- *)

(* Incarnation identifiers must grow across Communication Manager
   restarts so receivers can ignore stale frames: fold the virtual time
   of allocation into the value. *)
let fresh_incarnation t =
  t.next_incarnation <- t.next_incarnation + 1;
  (t.node_id * 1_000_000_000_000)
  + (Engine.now (engine t) * 100)
  + (t.next_incarnation mod 100)

let out_session t peer =
  match Hashtbl.find_opt t.out_sessions peer with
  | Some s -> s
  | None ->
      let s =
        {
          seq = 0;
          acked = 0;
          incarnation = fresh_incarnation t;
          unsent = Queue.create ();
          timer_running = false;
          attempts = 0;
          cur_rto = t.rto;
        }
      in
      Hashtbl.add t.out_sessions peer s;
      s

let transmit_frame t ~dest frame =
  count_wire t ~peer:dest ~frames:1;
  Network.transmit t.net ~src:t.node_id ~dest ~channel:Network.Session
    ~delay:session_wire_delay frame

(* Datagram coalescing ------------------------------------------------- *)

let datagram_delay t =
  Cost_model.cost (Engine.cost_model (engine t)) Cost_model.Datagram

let coalesced_frame_delay t =
  Cost_model.cost (Engine.cost_model (engine t)) Cost_model.Coalesced_frame

(* Nominal frame sizes for the byte cap: session data frames carry RPC
   requests/replies, control frames and acks are small fixed records. *)
let frame_bytes = function
  | Sess_data _ -> 512
  | Sess_ack _ | Sess_reset _ -> 32
  | _ -> 96

let out_batch_of t peer =
  match Hashtbl.find_opt t.out_batches peer with
  | Some b -> b
  | None ->
      let b = { frames = []; nframes = 0; bytes = 0; flush_armed = false } in
      Hashtbl.add t.out_batches peer b;
      b

(* Flush one peer's batch: attach the pending reverse-stream ack (the
   piggyback), charge the datagram cost model, and put one wire message
   on the network. The charge runs in its own fiber — the Communication
   Manager's processing, off the enqueuer's critical path. A lone
   datagram-class frame still pays the full Datagram primitive (same as
   unbatched); extra datagram-class frames pay only the marginal
   Coalesced_frame increment, and they ride entirely on the increment
   when a session frame (already charged at the RPC layer) carries the
   wire message. *)
let flush_batch t ~dest =
  match Hashtbl.find_opt t.out_batches dest with
  | None -> ()
  | Some b when b.nframes = 0 -> ()
  | Some b ->
      let frames = List.rev b.frames in
      b.frames <- [];
      b.nframes <- 0;
      b.bytes <- 0;
      let frames, piggybacked =
        match Hashtbl.find_opt t.pending_acks dest with
        | Some pa when pa.live ->
            pa.live <- false;
            let covered = pa.covered in
            pa.covered <- 0;
            count_piggybacked t ~peer:dest ~covered;
            ( frames
              @ [ (false, Sess_ack { seq = pa.upto; incarnation = pa.pa_incarnation }) ],
              true )
        | _ -> (frames, false)
      in
      let n = List.length frames in
      let control = List.length (List.filter fst frames) in
      ignore
        (Engine.spawn (engine t) ~node:t.node_id (fun () ->
             count_wire t ~peer:dest ~frames:n;
             if Engine.tracing (engine t) then
               Engine.emit (engine t)
                 (Comm_batch
                    {
                      node = t.node_id;
                      peer = dest;
                      frames = n;
                      control;
                      piggybacked_ack = piggybacked;
                    });
             (match frames with
             | [ (true, frame) ] ->
                 (* lone datagram: same charge-then-deliver timing as the
                    unbatched path *)
                 Engine.charge (engine t) Cost_model.Datagram;
                 Engine.note_cpu (engine t) ~process:"cm" (datagram_delay t);
                 Network.transmit t.net ~src:t.node_id ~dest
                   ~channel:Network.Datagram ~delay:0 frame
             | [ (false, frame) ] ->
                 Network.transmit t.net ~src:t.node_id ~dest
                   ~channel:Network.Session ~delay:session_wire_delay frame
             | _ ->
                 (* multi-frame: put the wire message on the network at
                    session timing, then account the Communication
                    Manager's protocol work — it overlaps delivery
                    rather than delaying the whole batch by the sum of
                    per-frame costs *)
                 Network.transmit t.net ~src:t.node_id ~dest
                   ~channel:Network.Session ~delay:session_wire_delay
                   (Coalesced (List.map snd frames)));
             if control > 0 then begin
               let riders_only = n > control in
               let extras = if riders_only then control else control - 1 in
               if not riders_only && n > 1 then begin
                 Engine.charge (engine t) Cost_model.Datagram;
                 Engine.note_cpu (engine t) ~process:"cm" (datagram_delay t)
               end;
               for _ = 1 to extras do
                 Engine.charge (engine t) Cost_model.Coalesced_frame;
                 Engine.note_cpu (engine t) ~process:"cm" (coalesced_frame_delay t)
               done
             end))

let enqueue t ~dest ~control frame (b : batching) =
  let ob = out_batch_of t dest in
  ob.frames <- (control, frame) :: ob.frames;
  ob.nframes <- ob.nframes + 1;
  ob.bytes <- ob.bytes + frame_bytes frame;
  if ob.nframes >= b.max_frames || ob.bytes >= b.max_bytes then
    flush_batch t ~dest
  else if not ob.flush_armed then begin
    ob.flush_armed <- true;
    Engine.at (engine t) ~delay:b.flush_delay (fun () ->
        ob.flush_armed <- false;
        if t.alive then flush_batch t ~dest)
  end

(* Delayed / piggybacked acks ------------------------------------------ *)

let pending_ack_of t peer =
  match Hashtbl.find_opt t.pending_acks peer with
  | Some pa -> pa
  | None ->
      let pa =
        { upto = -1; pa_incarnation = 0; covered = 0; live = false; ack_armed = false }
      in
      Hashtbl.add t.pending_acks peer pa;
      pa

(* The ack window expired with no outgoing frame to ride: send one
   standalone cumulative ack covering every delivery since the window
   opened. It goes through the batch so it can still share a wire
   message with anything enqueued at the same instant. *)
let ack_window_expired t ~peer (b : batching) =
  match Hashtbl.find_opt t.pending_acks peer with
  | None -> ()
  | Some pa ->
      pa.ack_armed <- false;
      if t.alive && pa.live then begin
        pa.live <- false;
        let covered = pa.covered in
        pa.covered <- 0;
        count_delayed_ack t ~peer ~covered;
        enqueue t ~dest:peer ~control:false
          (Sess_ack { seq = pa.upto; incarnation = pa.pa_incarnation })
          b
      end

let note_ack_due t ~src ~seq ~incarnation (b : batching) =
  let pa = pending_ack_of t src in
  if pa.live && pa.pa_incarnation = incarnation then begin
    if seq > pa.upto then pa.upto <- seq
  end
  else begin
    pa.upto <- seq;
    pa.pa_incarnation <- incarnation
  end;
  pa.live <- true;
  pa.covered <- pa.covered + 1;
  if not pa.ack_armed then begin
    pa.ack_armed <- true;
    Engine.at (engine t) ~delay:b.ack_delay (fun () ->
        ack_window_expired t ~peer:src b)
  end

(* Retransmission ----------------------------------------------------- *)

(* Resend up to [limit] frames from the head of the unacked window
   (delivery is in order, so the head is what the receiver is waiting
   for); returns how many were resent. *)
let send_window ?limit t ~dest (s : out_session) =
  let cap = match limit with None -> max_int | Some l -> l in
  let sent = ref 0 in
  (try
     Queue.iter
       (fun (seq, tid, inner) ->
         if !sent >= cap then raise Exit;
         incr sent;
         transmit_frame t ~dest
           (Sess_data { seq; incarnation = s.incarnation; tid; inner }))
       s.unsent
   with Exit -> ());
  !sent

let rec arm_timer t ~dest (s : out_session) =
  if not s.timer_running then begin
    s.timer_running <- true;
    Engine.at (engine t) ~delay:s.cur_rto (fun () -> on_timer t ~dest s)
  end

and on_timer t ~dest s =
  s.timer_running <- false;
  if t.alive && not (Queue.is_empty s.unsent) then begin
    s.attempts <- s.attempts + 1;
    if s.attempts > t.retries then begin
      (* Permanent communication failure: drop the stream, start a new
         incarnation for any later traffic, and report the peer. *)
      Queue.clear s.unsent;
      s.attempts <- 0;
      s.cur_rto <- t.rto;
      s.incarnation <- fresh_incarnation t;
      s.seq <- 0;
      s.acked <- 0;
      if Engine.tracing (engine t) then
        Engine.emit (engine t)
          (Session_failure { node = t.node_id; peer = dest });
      let handler = t.failure_handler in
      ignore (Engine.spawn (engine t) ~node:t.node_id (fun () -> handler ~peer:dest))
    end
    else begin
      (* Bounded resend burst: a long window under sustained loss must
         not flood O(window) frames onto the wire every timeout. In-order
         delivery means only the head frames can make progress anyway;
         later frames go out again on subsequent (ack-reset) rounds. *)
      let resent = send_window ~limit:t.resend_burst t ~dest s in
      if Engine.tracing (engine t) then
        Engine.emit (engine t)
          (Session_retransmit
             {
               node = t.node_id;
               peer = dest;
               attempt = s.attempts;
               window = resent;
               rto = s.cur_rto;
             });
      (* Exponential backoff: under sustained loss or a dead peer, each
         barren round doubles the wait instead of flooding the wire at a
         fixed cadence. An ack that makes progress resets the timeout. *)
      s.cur_rto <- min (2 * s.cur_rto) t.rto_max;
      arm_timer t ~dest s
    end
  end

let session_send t ~dest ?tid payload =
  note_outgoing t tid dest;
  let s = out_session t dest in
  let seq = s.seq in
  s.seq <- seq + 1;
  Queue.add (seq, tid, payload) s.unsent;
  let frame = Sess_data { seq; incarnation = s.incarnation; tid; inner = payload } in
  (match t.batching with
  | None -> transmit_frame t ~dest frame
  | Some b -> enqueue t ~dest ~control:false frame b);
  arm_timer t ~dest s

(* The receiver lost its state (restart): renumber every unacked
   message into a fresh stream and resend. Messages that were already
   acknowledged were delivered to the receiver's previous incarnation
   and are not replayed. *)
let handle_reset t ~src ~incarnation =
  match Hashtbl.find_opt t.out_sessions src with
  | Some s when incarnation = s.incarnation ->
      s.incarnation <- fresh_incarnation t;
      s.acked <- 0;
      let pending = Queue.create () in
      let n = ref 0 in
      Queue.iter
        (fun (_, tid, inner) ->
          Queue.add (!n, tid, inner) pending;
          incr n)
        s.unsent;
      Queue.clear s.unsent;
      Queue.transfer pending s.unsent;
      s.seq <- !n;
      s.attempts <- 0;
      s.cur_rto <- t.rto;
      ignore (send_window t ~dest:src s);
      arm_timer t ~dest:src s
  | Some _ | None -> ()

let handle_ack t ~src ~seq ~incarnation =
  match Hashtbl.find_opt t.out_sessions src with
  | None -> ()
  | Some s ->
      if incarnation = s.incarnation && seq >= s.acked then begin
        s.acked <- seq + 1;
        s.attempts <- 0;
        s.cur_rto <- t.rto;
        while
          (not (Queue.is_empty s.unsent))
          && (let q, _, _ = Queue.peek s.unsent in
              q <= seq)
        do
          ignore (Queue.pop s.unsent)
        done
      end

let send_ack_now t ~dest ~seq ~incarnation =
  count_wire t ~peer:dest ~frames:1;
  Network.transmit t.net ~src:t.node_id ~dest ~channel:Network.Session
    ~delay:session_wire_delay
    (Sess_ack { seq; incarnation })

let handle_session_data t ~src ~seq ~incarnation ~tid ~inner =
  match Hashtbl.find_opt t.in_sessions src with
  | None when seq > 0 ->
      (* We have no state for this stream (we probably restarted) and
         this frame is not its beginning: earlier frames were delivered
         to our previous incarnation. Ask the sender to renumber. *)
      count_wire t ~peer:src ~frames:1;
      Network.transmit t.net ~src:t.node_id ~dest:src ~channel:Network.Session
        ~delay:session_wire_delay (Sess_reset { incarnation })
  | state ->
  let s =
    match state with
    | Some s -> s
    | None ->
        let s = { expected = 0; incarnation } in
        Hashtbl.add t.in_sessions src s;
        s
  in
  if incarnation < s.incarnation then
    (* stale frame from a superseded stream *)
    ()
  else begin
  if incarnation > s.incarnation then begin
    (* The peer restarted (or declared us failed): fresh stream. *)
    s.incarnation <- incarnation;
    s.expected <- 0
  end;
  if seq < s.expected then begin
    (* Duplicate of a delivered message: re-ack, do not deliver. With
       batching on the re-ack joins the delayed-ack path so it can
       piggyback instead of spending a wire message of its own. *)
    count_duplicate_reack t ~peer:src;
    match t.batching with
    | None -> send_ack_now t ~dest:src ~seq:(s.expected - 1) ~incarnation
    | Some b -> note_ack_due t ~src ~seq:(s.expected - 1) ~incarnation b
  end
  else if seq = s.expected then begin
    s.expected <- seq + 1;
    (match t.batching with
    | None -> send_ack_now t ~dest:src ~seq ~incarnation
    | Some b -> note_ack_due t ~src ~seq ~incarnation b);
    note_incoming t tid src;
    t.session_handler ~src inner
  end
  (* seq > expected: an earlier frame was lost; the retransmission of the
     full window will re-deliver in order, so drop this one. *)
  end

(* Datagrams --------------------------------------------------------- *)

(* The datagram primitive's cost covers protocol work and the wire: the
   sending fiber is delayed by it, and delivery coincides with the
   sender resuming. With batching on, the frame instead joins the
   peer's batch: the flush fiber pays the (coalesced) cost, off this
   caller's critical path. *)
let send_datagram t ~dest payload =
  match t.batching with
  | Some b -> enqueue t ~dest ~control:true payload b
  | None ->
      Engine.charge (engine t) Cost_model.Datagram;
      Engine.note_cpu (engine t) ~process:"cm" (datagram_delay t);
      count_wire t ~peer:dest ~frames:1;
      Network.transmit t.net ~src:t.node_id ~dest ~channel:Network.Datagram
        ~delay:0 payload

let send_datagrams_parallel t ~dests payload =
  match t.batching with
  | Some b -> List.iter (fun dest -> enqueue t ~dest ~control:true payload b) dests
  | None -> (
      match dests with
      | [] -> ()
      | first :: rest ->
          send_datagram t ~dest:first payload;
          List.iter
            (fun dest ->
              (* overlapped sends cost the paper's half-datagram increment *)
              Engine.charge_fraction (engine t) Cost_model.Datagram ~num:1 ~den:2;
              Engine.note_cpu (engine t) ~process:"cm" (datagram_delay t / 2);
              count_wire t ~peer:dest ~frames:1;
              Network.transmit t.net ~src:t.node_id ~dest
                ~channel:Network.Datagram ~delay:0 payload)
            rest)

(* Broadcast --------------------------------------------------------- *)

let broadcast t payload =
  Engine.charge (engine t) Cost_model.Datagram;
  List.iter
    (fun dest ->
      if dest <> t.node_id then begin
        count_wire t ~peer:dest ~frames:1;
        Network.transmit t.net ~src:t.node_id ~dest ~channel:Network.Broadcast
          ~delay:(datagram_delay t) payload
      end)
    (Network.nodes t.net)

(* Receive dispatch --------------------------------------------------- *)

let handle_session_payload t ~src payload =
  match payload with
  | Sess_data { seq; incarnation; tid; inner } ->
      handle_session_data t ~src ~seq ~incarnation ~tid ~inner
  | Sess_ack { seq; incarnation } -> handle_ack t ~src ~seq ~incarnation
  | Sess_reset { incarnation } -> handle_reset t ~src ~incarnation
  | _ -> ()

(* Unpack a coalesced wire message: every frame gets its own fiber,
   mirroring the one-fiber-per-transmission semantics of the unbatched
   paths (a handler that blocks — a prepare gathering votes, an RPC
   dispatch waiting on a lock — must not stall the frames behind it).
   FIFO scheduling of same-instant fibers preserves session frame
   order. *)
let dispatch_frame t ~src frame =
  match frame with
  | Sess_data _ | Sess_ack _ | Sess_reset _ -> handle_session_payload t ~src frame
  | _ -> List.iter (fun handler -> handler ~src frame) t.datagram_handlers

let dispatch_wire t ~src payload =
  match payload with
  | Coalesced frames ->
      List.iter
        (fun frame ->
          ignore
            (Engine.spawn (engine t) ~node:t.node_id (fun () ->
                 dispatch_frame t ~src frame)))
        frames
  | _ -> handle_session_payload t ~src payload

(* Wiring ------------------------------------------------------------ *)

let add_datagram_handler t f = t.datagram_handlers <- t.datagram_handlers @ [ f ]

let set_session_handler t f = t.session_handler <- f

let set_broadcast_handler t f = t.broadcast_handler <- f

let set_failure_handler t f = t.failure_handler <- f

let set_remote_involvement_handler t f = t.remote_involvement <- f

let create net ~node ?(session_rto = 100_000) ?session_rto_max
    ?(session_retries = 8) ?(session_resend_burst = 8) ?batching () =
  let rto_max =
    match session_rto_max with Some m -> max m session_rto | None -> 8 * session_rto
  in
  let t =
    {
      net;
      node_id = node;
      rto = session_rto;
      rto_max;
      retries = session_retries;
      resend_burst = max 1 session_resend_burst;
      batching;
      alive = true;
      out_sessions = Hashtbl.create 8;
      in_sessions = Hashtbl.create 8;
      out_batches = Hashtbl.create 8;
      pending_acks = Hashtbl.create 8;
      peer_stats = Hashtbl.create 8;
      trees = Hashtbl.create 32;
      datagram_handlers = [];
      session_handler = (fun ~src:_ _ -> ());
      broadcast_handler = (fun ~src:_ _ -> ());
      failure_handler = (fun ~peer:_ -> ());
      remote_involvement = (fun _ -> ());
      next_incarnation = 0;
    }
  in
  Network.register net ~node ~channel:Network.Datagram (fun ~src payload ->
      if t.alive then
        match payload with
        | Coalesced frames ->
            List.iter
              (fun frame ->
                ignore
                  (Engine.spawn (engine t) ~node:t.node_id (fun () ->
                       dispatch_frame t ~src frame)))
              frames
        | _ ->
            List.iter (fun handler -> handler ~src payload) t.datagram_handlers);
  Network.register net ~node ~channel:Network.Broadcast (fun ~src payload ->
      if t.alive then t.broadcast_handler ~src payload);
  Network.register net ~node ~channel:Network.Session (fun ~src payload ->
      if t.alive then dispatch_wire t ~src payload);
  t
