(** The Communication Manager — the only process with access to the
    network (Section 3.2.4).

    Implements the three forms of network communication the paper lists:

    - {e datagrams} for the distributed two-phase commit (unreliable,
      cheap, charged at Table 5-1's datagram cost; parallel sends to
      several children charge the paper's half-datagram increments);
    - {e reliable session communication} for remote procedure calls:
      at-most-once, ordered delivery of arbitrary messages, with
      retransmission, duplicate suppression, and permanent-failure
      detection that aids remote-crash discovery;
    - {e broadcasting} for name lookup by the Name Server.

    It also scans transaction identifiers included in messages and builds
    the local portion of the commit spanning tree: the node's parent,
    whether the transaction was initiated remotely, and the node's
    children (Section 3.2.4). A Communication Manager instance is
    volatile: create a fresh one when the node restarts.

    {2 Comm batching}

    With {!create}'s [batching] set, the Communication Manager batches
    its wire traffic (off by default, leaving the paper-faithful
    behaviour untouched):

    - {e piggybacked acks} — an outgoing frame to a peer carries the
      receiver's cumulative acknowledgement for the reverse session
      stream; standalone acks are delayed up to [ack_delay] so several
      deliveries share one acknowledgement;
    - {e datagram coalescing} — frames queued to the same peer within
      [flush_delay] (or until [max_frames]/[max_bytes]) travel as one
      multi-frame wire message charged a single Datagram primitive plus
      a small {!Tabs_sim.Cost_model.Coalesced_frame} increment per
      extra datagram-class frame. *)

type t

(** Trace events: one per session-window retransmission (with the
    attempt number, the number of frames resent this burst-capped round,
    and the backed-off [rto] that expired); one when a stream is
    declared permanently failed; and one per departing batched wire
    message. *)
type Tabs_sim.Trace.event +=
  | Session_retransmit of {
      node : int;
      peer : int;
      attempt : int;
      window : int;
      rto : int;
    }
  | Session_failure of { node : int; peer : int }
  | Comm_batch of {
      node : int;
      peer : int;
      frames : int;
      control : int;
      piggybacked_ack : bool;
    }

(** Comm-batching parameters, all in microseconds of virtual time /
    counts: [ack_delay] is how long a delivery acknowledgement may wait
    for an outgoing frame to ride; [flush_delay] is how long a queued
    frame may wait for companions; a batch departs early at [max_frames]
    frames or [max_bytes] nominal bytes. *)
type batching = {
  ack_delay : int;
  flush_delay : int;
  max_frames : int;
  max_bytes : int;
}

val default_batching : batching

(** Per-peer wire accounting (see {!Tabs_sim.Metrics.msgs} for the
    engine-global mirror). *)
type peer_stats = {
  mutable wire_messages : int;
  mutable carried_frames : int;
  mutable piggybacked_acks : int;
  mutable delayed_acks : int;
  mutable duplicate_reacks : int;
}

(** [session_rto] is the base retransmission timeout. Each barren
    retransmission round doubles the timeout (exponential backoff) up to
    [session_rto_max] (default [8 * session_rto]); an acknowledgement
    that makes progress resets it to the base. After [session_retries]
    barren rounds the stream is declared permanently failed.
    [session_resend_burst] (default 8) caps how many unacked frames a
    single retransmission round puts back on the wire. [batching]
    enables the comm-batching layer; omitted means off. *)
val create :
  Network.t ->
  node:int ->
  ?session_rto:int ->
  ?session_rto_max:int ->
  ?session_retries:int ->
  ?session_resend_burst:int ->
  ?batching:batching ->
  unit ->
  t

val node : t -> int

(** [batching t] is the batching configuration, if enabled. *)
val batching : t -> batching option

(** [shutdown t] silences this incarnation (crash). *)
val shutdown : t -> unit

(** {2 Datagrams} *)

(** [send_datagram t ~dest payload] charges one datagram primitive and
    transmits (with batching on, the frame instead joins [dest]'s batch
    and the flush pays the coalesced cost). Must run inside a fiber. *)
val send_datagram : t -> dest:int -> Network.payload -> unit

(** [send_datagrams_parallel t ~dests payload] sends to several nodes at
    once: the first send is charged in full and each additional one at
    half cost, per the Table 5-3 accounting of parallel Prepare/Commit
    datagrams. With batching on, each destination's frame joins that
    peer's batch instead. *)
val send_datagrams_parallel : t -> dests:int list -> Network.payload -> unit

(** [add_datagram_handler t f] appends a receive handler; each handler
    pattern-matches the payloads it owns and ignores the rest (the
    Transaction Manager and the Name Server share the datagram
    channel). *)
val add_datagram_handler : t -> (src:int -> Network.payload -> unit) -> unit

(** {2 Sessions} *)

(** [session_send t ~dest ?tid payload] queues [payload] for at-most-once
    ordered delivery; [tid] (if any) is scanned for spanning-tree
    maintenance on both ends. Transport cost is part of the remote
    procedure call primitive charged by the RPC layer, so no primitive is
    charged here. Safe outside a fiber. *)
val session_send : t -> dest:int -> ?tid:Tabs_wal.Tid.t -> Network.payload -> unit

val set_session_handler : t -> (src:int -> Network.payload -> unit) -> unit

(** [set_failure_handler t f] — [f ~peer] runs (in a fiber) when session
    retransmission to [peer] exhausts its retries: the Communication
    Manager "detects permanent communication failures and, thereby, aids
    in the detection of remote node crashes". *)
val set_failure_handler : t -> (peer:int -> unit) -> unit

(** {2 Broadcast} *)

val broadcast : t -> Network.payload -> unit

val set_broadcast_handler : t -> (src:int -> Network.payload -> unit) -> unit

(** {2 Wire accounting} *)

(** [peer_wire_stats t ~peer] is this incarnation's live traffic
    counters towards [peer], if any traffic has flowed. *)
val peer_wire_stats : t -> peer:int -> peer_stats option

(** [total_wire_messages t] sums {!peer_stats.wire_messages} over all
    peers of this incarnation. *)
val total_wire_messages : t -> int

(** {2 Commit spanning tree} *)

(** [note_local_root t tid] records that the transaction began at this
    node (it can have no parent here). *)
val note_local_root : t -> Tabs_wal.Tid.t -> unit

(** [parent_of t tid] is the node that first invoked an operation here on
    behalf of [tid]'s top-level transaction, if the transaction arrived
    from remote. *)
val parent_of : t -> Tabs_wal.Tid.t -> int option

(** [children_of t tid] lists nodes this node first spread the
    transaction to. *)
val children_of : t -> Tabs_wal.Tid.t -> int list

(** [involved_remotely t tid] — true once any inter-node message has
    been sent or received on behalf of the transaction. *)
val involved_remotely : t -> Tabs_wal.Tid.t -> bool

(** [set_remote_involvement_handler t f] — [f tid] runs the first time
    an inter-node message is sent or received for [tid]: the message the
    Communication Manager sends the Transaction Manager (Section 3.2.3). *)
val set_remote_involvement_handler : t -> (Tabs_wal.Tid.t -> unit) -> unit

(** [forget_txn t tid] drops spanning-tree state after commit/abort. *)
val forget_txn : t -> Tabs_wal.Tid.t -> unit
