(** The Communication Manager — the only process with access to the
    network (Section 3.2.4).

    Implements the three forms of network communication the paper lists:

    - {e datagrams} for the distributed two-phase commit (unreliable,
      cheap, charged at Table 5-1's datagram cost; parallel sends to
      several children charge the paper's half-datagram increments);
    - {e reliable session communication} for remote procedure calls:
      at-most-once, ordered delivery of arbitrary messages, with
      retransmission, duplicate suppression, and permanent-failure
      detection that aids remote-crash discovery;
    - {e broadcasting} for name lookup by the Name Server.

    It also scans transaction identifiers included in messages and builds
    the local portion of the commit spanning tree: the node's parent,
    whether the transaction was initiated remotely, and the node's
    children (Section 3.2.4). A Communication Manager instance is
    volatile: create a fresh one when the node restarts. *)

type t

(** Trace events: one per session-window retransmission (with the
    attempt number and the backed-off [rto] that expired) and one when a
    stream is declared permanently failed. *)
type Tabs_sim.Trace.event +=
  | Session_retransmit of {
      node : int;
      peer : int;
      attempt : int;
      window : int;
      rto : int;
    }
  | Session_failure of { node : int; peer : int }

(** [session_rto] is the base retransmission timeout. Each barren
    retransmission round doubles the timeout (exponential backoff) up to
    [session_rto_max] (default [8 * session_rto]); an acknowledgement
    that makes progress resets it to the base. After [session_retries]
    barren rounds the stream is declared permanently failed. *)
val create :
  Network.t ->
  node:int ->
  ?session_rto:int ->
  ?session_rto_max:int ->
  ?session_retries:int ->
  unit ->
  t

val node : t -> int

(** [shutdown t] silences this incarnation (crash). *)
val shutdown : t -> unit

(** {2 Datagrams} *)

(** [send_datagram t ~dest payload] charges one datagram primitive and
    transmits. Must run inside a fiber. *)
val send_datagram : t -> dest:int -> Network.payload -> unit

(** [send_datagrams_parallel t ~dests payload] sends to several nodes at
    once: the first send is charged in full and each additional one at
    half cost, per the Table 5-3 accounting of parallel Prepare/Commit
    datagrams. *)
val send_datagrams_parallel : t -> dests:int list -> Network.payload -> unit

(** [add_datagram_handler t f] appends a receive handler; each handler
    pattern-matches the payloads it owns and ignores the rest (the
    Transaction Manager and the Name Server share the datagram
    channel). *)
val add_datagram_handler : t -> (src:int -> Network.payload -> unit) -> unit

(** {2 Sessions} *)

(** [session_send t ~dest ?tid payload] queues [payload] for at-most-once
    ordered delivery; [tid] (if any) is scanned for spanning-tree
    maintenance on both ends. Transport cost is part of the remote
    procedure call primitive charged by the RPC layer, so no primitive is
    charged here. Safe outside a fiber. *)
val session_send : t -> dest:int -> ?tid:Tabs_wal.Tid.t -> Network.payload -> unit

val set_session_handler : t -> (src:int -> Network.payload -> unit) -> unit

(** [set_failure_handler t f] — [f ~peer] runs (in a fiber) when session
    retransmission to [peer] exhausts its retries: the Communication
    Manager "detects permanent communication failures and, thereby, aids
    in the detection of remote node crashes". *)
val set_failure_handler : t -> (peer:int -> unit) -> unit

(** {2 Broadcast} *)

val broadcast : t -> Network.payload -> unit

val set_broadcast_handler : t -> (src:int -> Network.payload -> unit) -> unit

(** {2 Commit spanning tree} *)

(** [note_local_root t tid] records that the transaction began at this
    node (it can have no parent here). *)
val note_local_root : t -> Tabs_wal.Tid.t -> unit

(** [parent_of t tid] is the node that first invoked an operation here on
    behalf of [tid]'s top-level transaction, if the transaction arrived
    from remote. *)
val parent_of : t -> Tabs_wal.Tid.t -> int option

(** [children_of t tid] lists nodes this node first spread the
    transaction to. *)
val children_of : t -> Tabs_wal.Tid.t -> int list

(** [involved_remotely t tid] — true once any inter-node message has
    been sent or received on behalf of the transaction. *)
val involved_remotely : t -> Tabs_wal.Tid.t -> bool

(** [set_remote_involvement_handler t f] — [f tid] runs the first time
    an inter-node message is sent or received for [tid]: the message the
    Communication Manager sends the Transaction Manager (Section 3.2.3). *)
val set_remote_involvement_handler : t -> (Tabs_wal.Tid.t -> unit) -> unit

(** [forget_txn t tid] drops spanning-tree state after commit/abort. *)
val forget_txn : t -> Tabs_wal.Tid.t -> unit
