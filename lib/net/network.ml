open Tabs_sim

type payload = ..

type channel = Datagram | Session | Broadcast

type node_state = {
  mutable up : bool;
  mutable handlers : (channel * (src:int -> payload -> unit)) list;
}

type drop_stats = {
  loss : int;
  partition : int;
  down : int;
  no_handler : int;
}

type t = {
  engine : Engine.t;
  nodes : (int, node_state) Hashtbl.t;
  mutable partitions : (int * int) list;
  mutable loss : float;
  rng : Rng.t;
  mutable drop_loss : int;
  mutable drop_partition : int;
  mutable drop_down : int;
  mutable drop_no_handler : int;
}

let create engine ~seed =
  {
    engine;
    nodes = Hashtbl.create 8;
    partitions = [];
    loss = 0.0;
    rng = Rng.create ~seed;
    drop_loss = 0;
    drop_partition = 0;
    drop_down = 0;
    drop_no_handler = 0;
  }

let engine t = t.engine

let state t node =
  match Hashtbl.find_opt t.nodes node with
  | Some s -> s
  | None ->
      let s = { up = true; handlers = [] } in
      Hashtbl.add t.nodes node s;
      s

let register t ~node ~channel handler =
  let s = state t node in
  s.handlers <- (channel, handler) :: List.remove_assoc channel s.handlers

let set_node_up t ~node up =
  let s = state t node in
  s.up <- up;
  if not up then s.handlers <- []

let node_up t ~node = (state t node).up

let pair a b = if a < b then (a, b) else (b, a)

let set_partitioned t a b p =
  let key = pair a b in
  t.partitions <- List.filter (fun k -> k <> key) t.partitions;
  if p then t.partitions <- key :: t.partitions

let partitioned t a b = List.mem (pair a b) t.partitions

let set_loss t p = t.loss <- p

(* The checks keep the original short-circuit order (src up, then
   partition, then the loss roll) so that RNG consumption — and with it
   every seeded run — is unchanged by the per-cause accounting. *)
let transmit t ~src ~dest ~channel ~delay payload =
  let src_state = state t src in
  let dest_ok () = (state t dest).up in
  if not src_state.up then t.drop_down <- t.drop_down + 1
  else if partitioned t src dest then
    t.drop_partition <- t.drop_partition + 1
  else if t.loss > 0.0 && Rng.bool t.rng ~p:t.loss then
    t.drop_loss <- t.drop_loss + 1
  else
    Engine.at t.engine ~delay (fun () ->
        if dest_ok () then begin
          match List.assoc_opt channel (state t dest).handlers with
          | Some handler ->
              ignore
                (Engine.spawn t.engine ~node:dest (fun () ->
                     handler ~src payload))
          | None -> t.drop_no_handler <- t.drop_no_handler + 1
        end
        else t.drop_down <- t.drop_down + 1)

let nodes t = Hashtbl.fold (fun node _ acc -> node :: acc) t.nodes [] |> List.sort compare

let drops t =
  {
    loss = t.drop_loss;
    partition = t.drop_partition;
    down = t.drop_down;
    no_handler = t.drop_no_handler;
  }

let dropped t =
  t.drop_loss + t.drop_partition + t.drop_down + t.drop_no_handler
