(** The shared network medium.

    Carries opaque payloads between nodes with configurable transmission
    delay, message loss, and partitions. Node liveness is tracked here:
    messages to or from a down node vanish, as on a real wire. The
    extensible {!payload} type lets upper layers (RPC, transaction
    manager, name server) define their own message vocabularies without
    this library knowing them. *)

(** Extended by upper layers, e.g. [type Network.payload += Prepare of ...]. *)
type payload = ..

(** Channel classes a node can listen on. *)
type channel = Datagram | Session | Broadcast

type t

(** [create engine ~seed] makes a lossless network; loss is enabled with
    {!set_loss}. *)
val create : Tabs_sim.Engine.t -> seed:int -> t

val engine : t -> Tabs_sim.Engine.t

(** [register t ~node ~channel handler] installs the current incarnation's
    receive handler: [handler ~src payload] runs in a fresh fiber bound
    to [node]. Registering again replaces the handler (restart). *)
val register :
  t -> node:int -> channel:channel -> (src:int -> payload -> unit) -> unit

(** [set_node_up t node up] — a down node neither sends nor receives;
    crashing also clears its handlers. *)
val set_node_up : t -> node:int -> bool -> unit

val node_up : t -> node:int -> bool

(** [set_partitioned t a b p] cuts (or heals) the link between [a] and
    [b] in both directions. *)
val set_partitioned : t -> int -> int -> bool -> unit

(** [set_loss t p] drops each transmission independently with
    probability [p]. *)
val set_loss : t -> float -> unit

(** [transmit t ~src ~dest ~channel ~delay payload] delivers after
    [delay] microseconds if the link and both endpoints permit. Does not
    charge primitives — callers account costs. Safe outside a fiber. *)
val transmit :
  t -> src:int -> dest:int -> channel:channel -> delay:int -> payload -> unit

(** [nodes t] lists nodes that have ever registered. *)
val nodes : t -> int list

(** Dropped transmissions broken down by cause: the random loss roll, a
    severed link, a down endpoint (source or destination), and delivery
    to a node with no handler registered on the channel. *)
type drop_stats = {
  loss : int;
  partition : int;
  down : int;
  no_handler : int;
}

val drops : t -> drop_stats

(** Total dropped transmissions — the sum over {!drops}' causes. *)
val dropped : t -> int
