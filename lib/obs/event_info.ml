open Tabs_sim
open Tabs_wal
open Tabs_lock
open Tabs_accent
open Tabs_net
open Tabs_recovery
open Tabs_tm

(* One decoded view of an event, shared by the human-readable renderer
   and the JSONL exporter: a type name plus ordered (key, value)
   fields. *)
type value = Int of int | Str of string | Ints of int list

type info = { name : string; fields : (string * value) list }

let tid t = Str (Tid.to_string t)

let obj o = Str (Format.asprintf "%a" Object_id.pp o)

let mode m = Str (Format.asprintf "%a" Mode.pp m)

let vote = function
  | Txn_mgr.Yes -> Str "yes"
  | Txn_mgr.No -> Str "no"
  | Txn_mgr.Read_only -> Str "read_only"

let outcome = function
  | Txn_mgr.Committed -> Str "committed"
  | Txn_mgr.Aborted -> Str "aborted"

let inspect (ev : Trace.event) =
  match ev with
  (* engine *)
  | Trace.Note s -> { name = "note"; fields = [ ("text", Str s) ] }
  (* lock manager *)
  | Lock_manager.Lock_wait e ->
      {
        name = "lock_wait";
        fields = [ ("tid", tid e.tid); ("obj", obj e.obj); ("mode", mode e.mode) ];
      }
  | Lock_manager.Lock_granted e ->
      {
        name = "lock_granted";
        fields =
          [
            ("tid", tid e.tid);
            ("obj", obj e.obj);
            ("mode", mode e.mode);
            ("waited", Int e.waited);
          ];
      }
  | Lock_manager.Lock_timed_out e ->
      {
        name = "lock_timeout";
        fields =
          [
            ("tid", tid e.tid);
            ("obj", obj e.obj);
            ("mode", mode e.mode);
            ("waited", Int e.waited);
          ];
      }
  (* write-ahead log *)
  | Log_manager.Wal_append e ->
      {
        name = "wal_append";
        fields =
          (("lsn", Int e.lsn) :: ("kind", Str e.kind)
          :: (match e.tid with Some t -> [ ("tid", tid t) ] | None -> []));
      }
  | Log_manager.Log_force e ->
      {
        name = "log_force";
        fields =
          [
            ("upto", Int e.upto);
            ("records", Int e.records);
            ("bytes", Int e.bytes);
            ("pages", Int e.pages);
          ];
      }
  (* virtual memory / page-out WAL protocol *)
  | Vm.Page_out e ->
      {
        name = "page_out";
        fields =
          [
            ("segment", Int e.segment);
            ("page", Int e.page);
            ("seqno", Int e.seqno);
            ("elapsed", Int e.elapsed);
          ];
      }
  (* session layer *)
  | Comm_mgr.Session_retransmit e ->
      {
        name = "session_retransmit";
        fields =
          [
            ("node", Int e.node);
            ("peer", Int e.peer);
            ("attempt", Int e.attempt);
            ("window", Int e.window);
            ("rto", Int e.rto);
          ];
      }
  | Comm_mgr.Session_failure e ->
      {
        name = "session_failure";
        fields = [ ("node", Int e.node); ("peer", Int e.peer) ];
      }
  | Comm_mgr.Comm_batch e ->
      {
        name = "comm_batch";
        fields =
          [
            ("node", Int e.node);
            ("peer", Int e.peer);
            ("frames", Int e.frames);
            ("control", Int e.control);
            ("piggybacked_ack", Int (if e.piggybacked_ack then 1 else 0));
          ];
      }
  (* recovery manager *)
  | Group_commit.Group_commit e ->
      {
        name = "group_commit";
        fields =
          [
            ("node", Int e.node);
            ("batch", Int e.batch);
            ("upto", Int e.upto);
            ("woken", Int e.woken);
          ];
      }
  | Recovery_mgr.Rm_checkpoint e ->
      {
        name = "checkpoint";
        fields =
          [
            ("node", Int e.node);
            ("lsn", Int e.lsn);
            ("dirty", Int e.dirty);
            ("active", Int e.active);
            ("prepared", Int e.prepared);
          ];
      }
  | Checkpointer.Rm_writeback e ->
      {
        name = "writeback";
        fields =
          [
            ("node", Int e.node);
            ("pages", Int e.pages);
            ("oldest_rec_lsn", Int e.oldest_rec_lsn);
          ];
      }
  | Checkpointer.Rm_reclaimed e ->
      {
        name = "log_reclaimed";
        fields =
          [
            ("node", Int e.node);
            ("keep_from", Int e.keep_from);
            ("records", Int e.records);
          ];
      }
  | Recovery_mgr.Rm_recovered e ->
      {
        name = "recovered";
        fields =
          [
            ("node", Int e.node);
            ("scanned", Int e.scanned);
            ("losers", Int e.losers);
            ("in_doubt", Int e.in_doubt);
          ];
      }
  | Recovery_mgr.Rm_ondemand_redo e ->
      {
        name = "ondemand_redo";
        fields =
          [
            ("node", Int e.node);
            ("segment", Int e.segment);
            ("page", Int e.page);
            ("records", Int e.records);
            ("via", Str e.via);
            ("pending", Int e.pending);
          ];
      }
  (* transaction manager / 2PC *)
  | Txn_mgr.Txn_begin e ->
      { name = "txn_begin"; fields = [ ("node", Int e.node); ("tid", tid e.tid) ] }
  | Txn_mgr.Txn_commit e ->
      {
        name = "txn_commit";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("distributed", Str (if e.distributed then "true" else "false"));
          ];
      }
  | Txn_mgr.Txn_abort e ->
      {
        name = "txn_abort";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("reason", Str (Trace.reason_name e.reason));
          ];
      }
  | Txn_mgr.Prepare_sent e ->
      {
        name = "prepare_sent";
        fields =
          [ ("node", Int e.node); ("tid", tid e.tid); ("dests", Ints e.dests) ];
      }
  | Txn_mgr.Prepare_received e ->
      {
        name = "prepare_received";
        fields = [ ("node", Int e.node); ("tid", tid e.tid); ("src", Int e.src) ];
      }
  | Txn_mgr.Vote_sent e ->
      {
        name = "vote_sent";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("dest", Int e.dest);
            ("vote", vote e.vote);
          ];
      }
  | Txn_mgr.Vote_received e ->
      {
        name = "vote_received";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("src", Int e.src);
            ("vote", vote e.vote);
          ];
      }
  | Txn_mgr.Verdict_sent e ->
      {
        name = "verdict_sent";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("outcome", outcome e.outcome);
            ("dests", Ints e.dests);
          ];
      }
  | Txn_mgr.Verdict_received e ->
      {
        name = "verdict_received";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("outcome", outcome e.outcome);
            ("src", Int e.src);
          ];
      }
  | Txn_mgr.Ack_received e ->
      {
        name = "ack_received";
        fields = [ ("node", Int e.node); ("tid", tid e.tid); ("src", Int e.src) ];
      }
  | Txn_mgr.Prepared_in_doubt e ->
      {
        name = "prepared_in_doubt";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("coordinator", Int e.coordinator);
          ];
      }
  | Txn_mgr.In_doubt_resolved e ->
      {
        name = "in_doubt_resolved";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("outcome", outcome e.outcome);
          ];
      }
  | Txn_mgr.Status_query_sent e ->
      {
        name = "status_query_sent";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("coordinator", Int e.coordinator);
          ];
      }
  | Txn_mgr.Resolution_abandoned e ->
      {
        name = "resolution_abandoned";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("coordinator", Int e.coordinator);
            ("attempts", Int e.attempts);
          ];
      }
  | Paxos.Paxos_vote_cast e ->
      {
        name = "paxos_vote_cast";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("part", Int e.part);
            ("yes", Str (if e.yes then "prepared" else "aborted"));
          ];
      }
  | Paxos.Paxos_accepted e ->
      {
        name = "paxos_accepted";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("part", Int e.part);
            ("ballot", Int e.ballot);
            ("yes", Str (if e.yes then "prepared" else "aborted"));
          ];
      }
  | Paxos.Paxos_takeover e ->
      {
        name = "paxos_takeover";
        fields =
          [ ("node", Int e.node); ("tid", tid e.tid); ("ballot", Int e.ballot) ];
      }
  | Paxos.Paxos_decided e ->
      {
        name = "paxos_decided";
        fields =
          [
            ("node", Int e.node);
            ("tid", tid e.tid);
            ("committed", Str (if e.committed then "commit" else "abort"));
            ("ballot", Int e.ballot);
          ];
      }
  | _ -> { name = "unknown"; fields = [] }
