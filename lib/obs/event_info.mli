(** Decodes the extensible {!Tabs_sim.Trace.event} constructors of every
    layer into a uniform (name, fields) view — the single place that
    knows them all. Constructors added by layers this library does not
    know decode as ["unknown"]. *)

type value = Int of int | Str of string | Ints of int list

type info = { name : string; fields : (string * value) list }

val inspect : Tabs_sim.Trace.event -> info
