(* Latency samples in integer microseconds of virtual time. Percentiles
   use the nearest-rank definition on the sorted samples, which is exact
   and deterministic — appropriate for simulation output. *)

type t = { mutable samples : int list; mutable n : int }

let create () = { samples = []; n = 0 }

let add t v =
  t.samples <- v :: t.samples;
  t.n <- t.n + 1

let of_list vs = { samples = vs; n = List.length vs }

let count t = t.n

let sorted t = List.sort compare t.samples

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Hist.percentile: p outside [0,100]";
  if t.n = 0 then 0
  else begin
    let arr = Array.of_list (sorted t) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    arr.(max 0 (min (t.n - 1) (rank - 1)))
  end

let p50 t = percentile t 50.0

let p95 t = percentile t 95.0

let p99 t = percentile t 99.0

let mean t = if t.n = 0 then 0 else List.fold_left ( + ) 0 t.samples / t.n

let max_value t = List.fold_left max 0 t.samples
