(** Virtual-time latency samples with exact nearest-rank percentiles. *)

type t

val create : unit -> t

val add : t -> int -> unit

val of_list : int list -> t

val count : t -> int

(** [percentile t p] for [p] in [0, 100]; 0 when empty. Nearest-rank on
    the sorted samples: deterministic and exact. *)
val percentile : t -> float -> int

val p50 : t -> int

val p95 : t -> int

val p99 : t -> int

val mean : t -> int

val max_value : t -> int
