(* JSON Lines export: one object per event, hand-rolled (no JSON
   dependency). Keys are fixed per event type; "t" is the virtual
   timestamp in microseconds and "type" the event name. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Event_info.Int n -> string_of_int n
  | Event_info.Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Event_info.Ints l ->
      Printf.sprintf "[%s]" (String.concat "," (List.map string_of_int l))

let entry_to_json ({ time; event } : Recorder.entry) =
  let info = Event_info.inspect event in
  let fields =
    List.map
      (fun (k, v) -> Printf.sprintf ",\"%s\":%s" (escape k) (value_to_json v))
      info.fields
  in
  Printf.sprintf "{\"t\":%d,\"type\":\"%s\"%s}" time (escape info.name)
    (String.concat "" fields)

let to_channel oc entries =
  List.iter
    (fun entry ->
      output_string oc (entry_to_json entry);
      output_char oc '\n')
    entries

let to_file path entries =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc entries)
