(** JSON Lines export of a recorded trace for offline analysis.

    Each line is one object: [{"t": <µs>, "type": "<event>", ...}] with
    the event's fields flattened alongside. *)

val entry_to_json : Recorder.entry -> string

val to_channel : out_channel -> Recorder.entry list -> unit

val to_file : string -> Recorder.entry list -> unit
