open Tabs_sim

type entry = { time : int; event : Trace.event }

type t = {
  engine : Engine.t;
  mutable rev_entries : entry list;
  mutable count : int;
}

let attach engine =
  let t = { engine; rev_entries = []; count = 0 } in
  Engine.set_tracer engine
    (Some
       (fun ~time event ->
         t.rev_entries <- { time; event } :: t.rev_entries;
         t.count <- t.count + 1));
  t

let detach t = Engine.set_tracer t.engine None

let entries t = List.rev t.rev_entries

let length t = t.count

let clear t =
  t.rev_entries <- [];
  t.count <- 0
