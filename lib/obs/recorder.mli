(** In-memory trace sink: buffers every emitted event with its virtual
    timestamp, in emission order. *)

type entry = { time : int; event : Tabs_sim.Trace.event }

type t

(** [attach engine] installs a recording sink on [engine] (replacing any
    sink already installed) and returns the buffer. *)
val attach : Tabs_sim.Engine.t -> t

(** [detach t] removes the engine's sink, turning tracing back off.
    Recorded entries remain readable. *)
val detach : t -> unit

(** [entries t] in emission order (oldest first). *)
val entries : t -> entry list

val length : t -> int

val clear : t -> unit
