open Tabs_sim

(* Human-readable trace rendering for [tabs_demo --trace]. *)

let value_to_string = function
  | Event_info.Int n -> string_of_int n
  | Event_info.Str s -> s
  | Event_info.Ints l ->
      "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let entry_line ({ time; event } : Recorder.entry) =
  let info = Event_info.inspect event in
  let fields =
    List.map
      (fun (k, v) -> Printf.sprintf "%s=%s" k (value_to_string v))
      info.fields
  in
  Printf.sprintf "[%10.3f ms] %-18s %s"
    (float_of_int time /. 1000.0)
    info.name
    (String.concat " " fields)

let dump oc entries =
  List.iter
    (fun entry ->
      output_string oc (entry_line entry);
      output_char oc '\n')
    entries

let span_summary oc spans =
  let total = List.length spans in
  let committed = Span.commit_latencies spans in
  let hist = Hist.of_list committed in
  let aborted =
    List.fold_left ( + ) 0 (List.map snd (Span.abort_breakdown spans))
  in
  let unresolved =
    List.length (List.filter (fun s -> not (Span.complete s)) spans)
  in
  Printf.fprintf oc "spans: %d begun, %d committed, %d aborted, %d unresolved\n"
    total (List.length committed) aborted unresolved;
  if Hist.count hist > 0 then
    Printf.fprintf oc
      "commit latency (virtual ms): p50=%.3f p95=%.3f p99=%.3f max=%.3f\n"
      (float_of_int (Hist.p50 hist) /. 1000.0)
      (float_of_int (Hist.p95 hist) /. 1000.0)
      (float_of_int (Hist.p99 hist) /. 1000.0)
      (float_of_int (Hist.max_value hist) /. 1000.0);
  List.iter
    (fun (reason, n) ->
      Printf.fprintf oc "aborts[%s]: %d\n" (Trace.reason_name reason) n)
    (Span.abort_breakdown spans)
