(** Human-readable trace rendering for [tabs_demo --trace]. *)

(** One line: [[    12.345 ms] event_name k=v k=v ...]. *)
val entry_line : Recorder.entry -> string

val dump : out_channel -> Recorder.entry list -> unit

(** Aggregate span statistics: counts, commit-latency percentiles, and
    the abort-reason breakdown. *)
val span_summary : out_channel -> Span.t list -> unit
