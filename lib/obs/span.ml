open Tabs_sim
open Tabs_wal
open Tabs_lock
open Tabs_tm

type outcome = Committed | Aborted of Trace.abort_reason

type t = {
  tid : Tid.t;
  origin : int; (* node that emitted Txn_begin *)
  began : int;
  mutable ended : int option;
  mutable outcome : outcome option;
  mutable distributed : bool;
  mutable lock_wait : int; (* summed over the whole family, all nodes *)
  mutable lock_waits : int;
  mutable lock_timeouts : int;
  mutable prepare_sent_at : int option; (* coordinator's phase one start *)
}

(* Derive per-transaction spans from a recorded event stream. A span
   opens at the coordinator's [Txn_begin] and closes at the same node's
   [Txn_commit]/[Txn_abort]; subordinate outcome events for the same
   transaction are ignored (they echo the coordinator's verdict). Lock
   events are folded into the family's span wherever they occurred. *)
let of_entries entries =
  let spans : (Tid.t, t) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let find tid = Hashtbl.find_opt spans (Tid.top_level tid) in
  let close node time outcome =
    function
    | Some s when s.origin = node && s.outcome = None ->
        s.ended <- Some time;
        s.outcome <- Some outcome
    | Some _ | None -> ()
  in
  List.iter
    (fun ({ time; event } : Recorder.entry) ->
      match event with
      | Txn_mgr.Txn_begin { node; tid } ->
          if not (Hashtbl.mem spans tid) then begin
            let s =
              {
                tid;
                origin = node;
                began = time;
                ended = None;
                outcome = None;
                distributed = false;
                lock_wait = 0;
                lock_waits = 0;
                lock_timeouts = 0;
                prepare_sent_at = None;
              }
            in
            Hashtbl.add spans tid s;
            order := s :: !order
          end
      | Txn_mgr.Txn_commit { node; tid; distributed } ->
          (match find tid with
          | Some s when s.origin = node -> s.distributed <- distributed
          | _ -> ());
          close node time Committed (find tid)
      | Txn_mgr.Txn_abort { node; tid; reason } ->
          close node time (Aborted reason) (find tid)
      | Txn_mgr.Prepare_sent { node; tid; _ } -> (
          match find tid with
          | Some s when s.origin = node && s.prepare_sent_at = None ->
              s.prepare_sent_at <- Some time
          | _ -> ())
      | Lock_manager.Lock_granted { tid; waited; _ } -> (
          match find tid with
          | Some s ->
              s.lock_wait <- s.lock_wait + waited;
              s.lock_waits <- s.lock_waits + 1
          | None -> ())
      | Lock_manager.Lock_timed_out { tid; waited; _ } -> (
          match find tid with
          | Some s ->
              s.lock_wait <- s.lock_wait + waited;
              s.lock_timeouts <- s.lock_timeouts + 1
          | None -> ())
      | _ -> ())
    entries;
  List.rev !order

let duration s = match s.ended with Some e -> Some (e - s.began) | None -> None

let complete s = s.outcome <> None

let balanced spans = List.for_all complete spans

let commit_latencies spans =
  List.filter_map
    (fun s ->
      match (s.outcome, s.ended) with
      | Some Committed, Some e -> Some (e - s.began)
      | _ -> None)
    spans

let abort_breakdown spans =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match s.outcome with
      | Some (Aborted reason) ->
          let n = try Hashtbl.find tally reason with Not_found -> 0 in
          Hashtbl.replace tally reason (n + 1)
      | _ -> ())
    spans;
  Hashtbl.fold (fun reason n acc -> (reason, n) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
