(** Per-transaction spans derived from a recorded trace.

    A span opens at the coordinator's [Txn_begin] and closes at the same
    node's [Txn_commit] or [Txn_abort]; subordinate echoes of the
    verdict are ignored. Lock waits anywhere in the transaction's family
    (any node, any subtransaction) are folded into the span. *)

type outcome = Committed | Aborted of Tabs_sim.Trace.abort_reason

type t = {
  tid : Tabs_wal.Tid.t;
  origin : int;  (** node that began the transaction *)
  began : int;
  mutable ended : int option;
  mutable outcome : outcome option;
  mutable distributed : bool;
  mutable lock_wait : int;  (** total µs spent queued for locks *)
  mutable lock_waits : int;  (** queued requests eventually granted *)
  mutable lock_timeouts : int;
  mutable prepare_sent_at : int option;
      (** when the coordinator launched phase one, for distributed
          transactions that reached it *)
}

(** Spans in [Txn_begin] order. *)
val of_entries : Recorder.entry list -> t list

(** Virtual-time latency from begin to verdict, once ended. *)
val duration : t -> int option

val complete : t -> bool

(** Every derived span reached a verdict — no transaction was left
    open in the trace. *)
val balanced : t list -> bool

(** Begin-to-commit virtual-time latencies of committed spans. *)
val commit_latencies : t list -> int list

(** Aborted spans tallied by reason, most frequent first. *)
val abort_breakdown :
  t list -> (Tabs_sim.Trace.abort_reason * int) list
