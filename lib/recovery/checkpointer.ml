open Tabs_sim
open Tabs_accent
open Tabs_wal

type config = { interval : int; trickle : int }

let default = { interval = 500_000; trickle = 8 }

type Trace.event +=
  | Rm_writeback of { node : int; pages : int; oldest_rec_lsn : int }
  | Rm_reclaimed of { node : int; keep_from : Record.lsn; records : int }

(* The daemon parks on [wake_q] between cycles so the simulation can
   quiesce; forward processing pokes it (setting [pending] first, so a
   poke landing mid-cycle is never lost — Waitq signals with no waiter
   evaporate). *)
type t = {
  engine : Engine.t;
  node : int;
  vm : Vm.t;
  log : Log_manager.t;
  config : config;
  checkpoint : unit -> Record.lsn;
      (* the Recovery Manager's fuzzy checkpoint, passed as a closure
         because the Recovery Manager owns this daemon *)
  floor : unit -> Record.lsn option;
      (* extra truncation floor (Paxos acceptor state lives outside the
         transaction chains but must survive until its txn is decided) *)
  gate : unit -> bool;
      (* cycles are skipped while this is false. Restart recovery holds
         it: after [Log_manager.attach] the chain table is empty until
         recovery restores it, so a cycle fired in that window would
         compute no chain floor and truncate in-doubt undo chains — and
         its checkpoint record would omit the prepared set. *)
  wake_q : unit Engine.Waitq.t;
  mutable pending : bool;
  mutable last_cycle : int;
  mutable cycles : int;
  mutable pages_written : int;
  mutable reclaimed : int; (* log records truncated away *)
}

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* One background cycle: trickle the oldest dirty pages out (raising the
   truncation floor the most per write), take a fuzzy checkpoint, and
   reclaim every record no live chain or dirty page still needs. *)
let cycle t =
  t.last_cycle <- Engine.now t.engine;
  t.cycles <- t.cycles + 1;
  let by_rec_lsn =
    List.sort (fun (_, a) (_, b) -> compare a b) (Vm.dirty_pages t.vm)
  in
  (match by_rec_lsn with
  | [] -> ()
  | (_, oldest_rec_lsn) :: _ ->
      let victims = take t.config.trickle by_rec_lsn in
      List.iter (fun (pid, _) -> Vm.flush_page t.vm pid) victims;
      t.pages_written <- t.pages_written + List.length victims;
      if Engine.tracing t.engine then
        Engine.emit t.engine
          (Rm_writeback
             { node = t.node; pages = List.length victims; oldest_rec_lsn }));
  let ck = t.checkpoint () in
  let keep_from =
    List.fold_left (fun acc (_, r) -> min acc r) ck (Vm.dirty_pages t.vm)
  in
  let keep_from =
    match Log_manager.oldest_first_lsn t.log with
    | Some first -> min keep_from first
    | None -> keep_from
  in
  let keep_from =
    match t.floor () with
    | Some f -> min keep_from f
    | None -> keep_from
  in
  let reclaimable = keep_from - Log_manager.first_lsn t.log in
  if reclaimable > 0 then begin
    t.reclaimed <- t.reclaimed + reclaimable;
    Log_manager.truncate t.log ~keep_from;
    if Engine.tracing t.engine then
      Engine.emit t.engine
        (Rm_reclaimed { node = t.node; keep_from; records = reclaimable })
  end

let rec daemon t =
  if not t.pending then Engine.Waitq.wait t.wake_q;
  t.pending <- false;
  if t.gate () then cycle t;
  daemon t

let create engine ~node ~vm ~log ~checkpoint ?(floor = fun () -> None)
    ?(gate = fun () -> true) config =
  let t =
    {
      engine;
      node;
      vm;
      log;
      config;
      checkpoint;
      floor;
      gate;
      wake_q = Engine.Waitq.create ();
      pending = false;
      last_cycle = 0;
      cycles = 0;
      pages_written = 0;
      reclaimed = 0;
    }
  in
  ignore (Engine.spawn engine ~node (fun () -> daemon t));
  t

let request t =
  if not t.pending then begin
    t.pending <- true;
    ignore (Engine.Waitq.signal t.wake_q ~engine:t.engine ())
  end

let poke t =
  if
    (not t.pending)
    && Engine.now t.engine - t.last_cycle >= t.config.interval
  then request t

let config t = t.config

let cycles t = t.cycles

let pages_written t = t.pages_written

let reclaimed t = t.reclaimed
