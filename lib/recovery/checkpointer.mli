(** Background checkpoint and log-reclamation daemon.

    One fiber per node, the same shape as {!Group_commit}: it parks on a
    wait queue so the simulation can quiesce, and forward log traffic
    pokes it back awake once per [interval] of virtual time. Each cycle
    it

    + trickle-writes up to [trickle] dirty pages, oldest recovery LSN
      first (the pages holding the truncation floor down the longest);
    + takes a fuzzy checkpoint through the Recovery Manager — no
      flushing beyond the trickle, just the dirty-page and
      active-transaction tables;
    + truncates the log before [min (oldest dirty recovery LSN, oldest
      live chain first LSN, checkpoint LSN)].

    This replaces the flush-the-world path of
    {!Recovery_mgr.maybe_reclaim} on nodes that enable it (see
    [?checkpointing] on {!Recovery_mgr.create}): foreground transactions
    never pay for a [Vm.flush_all] again, and restart analysis is
    bounded by the checkpoint distance instead of the log length. Off by
    default — the Section 5 measurements are unperturbed. *)

type t

type config = {
  interval : int;  (** minimum virtual microseconds between cycles *)
  trickle : int;  (** dirty pages written back per cycle *)
}

(** 500 ms between checkpoints, 8 pages per cycle. *)
val default : config

(** Trace events: one trickle write-back burst, and one log truncation
    with how many records it reclaimed. *)
type Tabs_sim.Trace.event +=
  | Rm_writeback of { node : int; pages : int; oldest_rec_lsn : int }
  | Rm_reclaimed of {
      node : int;
      keep_from : Tabs_wal.Record.lsn;
      records : int;
    }

(** [create engine ~node ~vm ~log ~checkpoint ?floor ?gate config]
    spawns the daemon fiber. [checkpoint] is the Recovery Manager's
    fuzzy checkpoint (passed as a closure — the Recovery Manager owns
    the daemon). [?floor] supplies an extra truncation floor each cycle:
    Paxos Commit acceptor records belong to no local transaction chain,
    so without it the daemon would reclaim consensus state a takeover
    still needs. [?gate] (default: always true) is consulted before each
    cycle; a cycle whose gate reads false is skipped entirely. Restart
    recovery holds the gate closed: until it restores the log's chain
    table, a cycle would see no live chains, truncate in-doubt undo
    records, and write a checkpoint missing the prepared set. *)
val create :
  Tabs_sim.Engine.t ->
  node:int ->
  vm:Tabs_accent.Vm.t ->
  log:Tabs_wal.Log_manager.t ->
  checkpoint:(unit -> Tabs_wal.Record.lsn) ->
  ?floor:(unit -> Tabs_wal.Record.lsn option) ->
  ?gate:(unit -> bool) ->
  config ->
  t

(** [poke t] wakes the daemon if at least [interval] has passed since
    its last cycle — called from forward processing, costs nothing. *)
val poke : t -> unit

(** [request t] forces a cycle regardless of the interval — the
    log-space-limit path. Never blocks the caller. *)
val request : t -> unit

val config : t -> config

(** Cycles completed, pages trickled out, and log records reclaimed so
    far — statistics for tests and benchmarks. *)
val cycles : t -> int

val pages_written : t -> int

val reclaimed : t -> int
