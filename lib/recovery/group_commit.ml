open Tabs_sim
open Tabs_wal

type config = { window : int; max_batch : int }

let default = { window = 5_000; max_batch = 64 }

type Trace.event +=
  | Group_commit of {
      node : int;
      batch : int;
      upto : Record.lsn;
      woken : int;
    }

(* One open batch: the force requests that arrived since the daemon last
   went to the log. Requests only ever join the current batch; a batch
   whose force is in flight is already detached from [current]. *)
type batch = {
  mutable high : Record.lsn; (* highest LSN any member needs stable *)
  mutable count : int; (* force requests coalesced so far *)
  done_q : unit Engine.Waitq.t; (* members sleep here until the force lands *)
}

type t = {
  engine : Engine.t;
  node : int;
  log : Log_manager.t;
  config : config;
  wake_q : unit Engine.Waitq.t; (* daemon sleeps here while no batch is open *)
  close_q : unit Engine.Waitq.t; (* early wake when a batch fills to the cap *)
  mutable current : batch option;
  mutable batches : int;
  mutable coalesced : int;
}

(* The daemon: wait for a batch to open, give it [window] microseconds
   of virtual time to fill (or less, if it hits [max_batch]), then issue
   one force through the batch's high-water LSN and wake every member.
   Requests arriving while the force is in flight open the next batch;
   the daemon finds it without sleeping when it loops around. *)
let rec daemon t =
  (match t.current with
  | Some _ -> ()
  | None -> Engine.Waitq.wait t.wake_q);
  (match t.current with
  | None -> () (* woken for a batch that got no members; just loop *)
  | Some b ->
      if b.count < t.config.max_batch then
        ignore
          (Engine.Waitq.wait_timeout t.close_q ~engine:t.engine
             ~timeout:t.config.window);
      t.current <- None;
      Log_manager.force t.log ~upto:b.high;
      let woken = Engine.Waitq.signal_all b.done_q ~engine:t.engine () in
      t.batches <- t.batches + 1;
      t.coalesced <- t.coalesced + b.count;
      if Engine.tracing t.engine then
        Engine.emit t.engine
          (Group_commit { node = t.node; batch = b.count; upto = b.high; woken }));
  daemon t

let create engine ~node ~log config =
  let t =
    {
      engine;
      node;
      log;
      config;
      wake_q = Engine.Waitq.create ();
      close_q = Engine.Waitq.create ();
      current = None;
      batches = 0;
      coalesced = 0;
    }
  in
  ignore (Engine.spawn engine ~node (fun () -> daemon t));
  t

let force_through t ~upto =
  if upto >= Log_manager.flushed_lsn t.log then begin
    let b =
      match t.current with
      | Some b -> b
      | None ->
          let b =
            { high = upto; count = 0; done_q = Engine.Waitq.create () }
          in
          t.current <- Some b;
          ignore (Engine.Waitq.signal t.wake_q ~engine:t.engine ());
          b
    in
    if upto > b.high then b.high <- upto;
    b.count <- b.count + 1;
    if b.count >= t.config.max_batch then
      ignore (Engine.Waitq.signal t.close_q ~engine:t.engine ());
    Engine.Waitq.wait b.done_q
  end

let batches t = t.batches

let coalesced t = t.coalesced

let config t = t.config
