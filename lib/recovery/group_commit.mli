(** Group commit: batched log forces across concurrent transactions.

    Without it every committing transaction pays its own
    stable-storage round, so a node's commit throughput saturates at
    roughly [1/force-time]. The batcher amortizes that round: instead
    of calling {!Tabs_wal.Log_manager.force} directly, committing
    fibers enqueue on a per-node daemon fiber that coalesces every
    force request arriving within a configurable window of virtual
    time — or up to a batch-size cap — into {e one} log force (one
    large contiguous message plus one stable-storage write per log
    page), then wakes every waiter whose LSN the force covered.

    The prepare-record force of a 2PC subordinate and the
    commit-record force of a coordinator ride the same batcher, so
    concurrent distributed and local commits share rounds too.

    Disabled by default everywhere: the Section 5 no-load latency
    tables force once per commit, exactly as the paper measured. *)

type config = {
  window : int;
      (** microseconds of virtual time a batch stays open after its
          first request, trading commit latency for batching *)
  max_batch : int;
      (** force requests that close a batch early, bounding the
          latency a stampede can add *)
}

(** [window = 5_000], [max_batch = 64]. *)
val default : config

(** One batched force: how many requests it coalesced, the LSN it
    forced through, and how many waiting fibers it woke. *)
type Tabs_sim.Trace.event +=
  | Group_commit of {
      node : int;
      batch : int;
      upto : Tabs_wal.Record.lsn;
      woken : int;
    }

type t

(** [create engine ~node ~log config] starts the batcher's daemon
    fiber on [node]. The fiber dies with the node; a restart builds a
    fresh batcher (buffered log records did not survive anyway). *)
val create :
  Tabs_sim.Engine.t -> node:int -> log:Tabs_wal.Log_manager.t -> config -> t

(** [force_through t ~upto] joins the current batch (opening one if
    needed) and suspends the calling fiber until a force covering
    [upto] has completed. Returns immediately if [upto] is already
    stable. Must run inside a fiber. *)
val force_through : t -> upto:Tabs_wal.Record.lsn -> unit

(** Batches forced so far (statistics). *)
val batches : t -> int

(** Total force requests coalesced into those batches. *)
val coalesced : t -> int

val config : t -> config
