open Tabs_sim
open Tabs_storage
open Tabs_wal

type config = { fibers : int }

let default = { fibers = 8 }

type stats = {
  op_records : int;
  value_records : int;
  chain_edges : int;
  dep_edges : int;
  critical_path : int;
  width : int;
}

(* One scheduling graph. [members] are indices into the analysis record
   array in log order; edges and priorities are expressed in member
   positions. Every edge goes from a lower to a higher priority, so the
   graph is acyclic by construction and a priority-ordered ready queue
   can never deadlock. *)
type phase = {
  members : int array;
  succs : int list array;
  indeg : int array;
  prio : int array;  (* pop order: lower pops first; a permutation *)
  chain_edges : int;
  dep_edges : int;
  depth : int;  (* longest edge chain, in records *)
  width : int;
}

type t = { op : phase; value : phase }

(* Binary min-heap of member positions keyed by [prio]. Priorities are
   a permutation, so there are no ties to break. *)
module Heap = struct
  type t = { mutable n : int; data : int array; prio : int array }

  let create cap prio = { n = 0; data = Array.make (max 1 cap) 0; prio }

  let push h pos =
    h.data.(h.n) <- pos;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while
      !i > 0 && h.prio.(h.data.((!i - 1) / 2)) > h.prio.(h.data.(!i))
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.data.(0) in
      h.n <- h.n - 1;
      h.data.(0) <- h.data.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && h.prio.(h.data.(l)) < h.prio.(h.data.(!smallest)) then
          smallest := l;
        if r < h.n && h.prio.(h.data.(r)) < h.prio.(h.data.(!smallest)) then
          smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

(* Longest-path depth and maximum level width of a phase, walking
   members in priority (= topological) order. *)
let measure ~succs ~order =
  let m = Array.length succs in
  if m = 0 then (0, 0)
  else begin
    let level = Array.make m 1 in
    Array.iter
      (fun pos ->
        List.iter
          (fun s -> if level.(s) < level.(pos) + 1 then level.(s) <- level.(pos) + 1)
          succs.(pos))
      order;
    let depth = Array.fold_left max 1 level in
    let per_level = Array.make (depth + 1) 0 in
    Array.iter (fun l -> per_level.(l) <- per_level.(l) + 1) level;
    (depth, Array.fold_left max 0 per_level)
  end

let build records =
  let n = Array.length records in
  let op_list = ref [] and value_list = ref [] in
  for i = n - 1 downto 0 do
    match snd records.(i) with
    | Record.Update_operation _ -> op_list := i :: !op_list
    | Record.Update_value _ -> value_list := i :: !value_list
    | _ -> ()
  done;
  let make_phase members prio_of =
    let m = Array.length members in
    {
      members;
      succs = Array.make m [];
      indeg = Array.make m 0;
      prio = Array.init m prio_of;
      chain_edges = 0;
      dep_edges = 0;
      depth = 0;
      width = 0;
    }
  in
  let add_edge p a b =
    (* consecutive multi-page records can share several pages; one
       ordering edge between a pair is enough *)
    if a <> b && not (List.mem b p.succs.(a)) then begin
      p.succs.(a) <- b :: p.succs.(a);
      p.indeg.(b) <- p.indeg.(b) + 1;
      true
    end
    else false
  in
  (* Operation phase: forward order, per-page chains + dependency
     edges between operation records. *)
  let op = make_phase (Array.of_list !op_list) (fun pos -> pos) in
  let op_m = Array.length op.members in
  let op_pos_of_lsn = Hashtbl.create (max 16 op_m) in
  Array.iteri
    (fun pos i -> Hashtbl.replace op_pos_of_lsn (fst records.(i)) pos)
    op.members;
  let chain_edges = ref 0 and dep_edges = ref 0 in
  let last_on_page : (Disk.page_id, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun pos i ->
      match snd records.(i) with
      | Record.Update_operation u ->
          List.iter
            (fun pid ->
              (match Hashtbl.find_opt last_on_page pid with
              | Some prev -> if add_edge op prev pos then incr chain_edges
              | None -> ());
              Hashtbl.replace last_on_page pid pos)
            u.pages
      | _ -> ())
    op.members;
  Array.iter
    (fun (_, record) ->
      match record with
      | Record.Dependency d -> (
          match Hashtbl.find_opt op_pos_of_lsn d.update_lsn with
          | None -> ()
          | Some upos ->
              List.iter
                (fun (_, pred_lsn) ->
                  match Hashtbl.find_opt op_pos_of_lsn pred_lsn with
                  | Some ppos when ppos < upos ->
                      if add_edge op ppos upos then incr dep_edges
                  | Some _ | None ->
                      (* predecessor below the scan anchor (or a value
                         record): its effect is already on stable disk,
                         or the value phase orders it — nothing to
                         schedule against *)
                      ())
                d.preds)
      | _ -> ())
    records;
  let op_depth, op_width =
    measure ~succs:op.succs ~order:(Array.init op_m (fun pos -> pos))
  in
  let op =
    {
      op with
      chain_edges = !chain_edges;
      dep_edges = !dep_edges;
      depth = op_depth;
      width = op_width;
    }
  in
  (* Value phase: newest-first per-page chains. A value-logged object
     fits one page, so same-object records always share a chain. *)
  let value =
    make_phase (Array.of_list !value_list) (fun _ -> 0 (* fixed below *))
  in
  let val_m = Array.length value.members in
  let value =
    { value with prio = Array.init val_m (fun pos -> val_m - 1 - pos) }
  in
  let vchain = ref 0 in
  Hashtbl.reset last_on_page;
  for pos = val_m - 1 downto 0 do
    match snd records.(value.members.(pos)) with
    | Record.Update_value u ->
        List.iter
          (fun pid ->
            (match Hashtbl.find_opt last_on_page pid with
            | Some newer -> if add_edge value newer pos then incr vchain
            | None -> ());
            Hashtbl.replace last_on_page pid pos)
          (Object_id.pages u.obj)
    | _ -> ()
  done;
  let val_depth, val_width =
    measure ~succs:value.succs ~order:(Array.init val_m (fun k -> val_m - 1 - k))
  in
  let value =
    { value with chain_edges = !vchain; depth = val_depth; width = val_width }
  in
  { op; value }

let op_members t = t.op.members

let value_members t = t.value.members

(* Predecessor lists by member position, inverting the stored successor
   lists. Instant restart walks these to close a page's chain over the
   cross-page records it depends on. *)
let preds_of phase =
  let preds = Array.make (Array.length phase.members) [] in
  Array.iteri
    (fun a succs -> List.iter (fun b -> preds.(b) <- a :: preds.(b)) succs)
    phase.succs;
  preds

let op_preds t = preds_of t.op

let value_preds t = preds_of t.value

let stats t =
  {
    op_records = Array.length t.op.members;
    value_records = Array.length t.value.members;
    chain_edges = t.op.chain_edges + t.value.chain_edges;
    dep_edges = t.op.dep_edges;
    critical_path = t.op.depth + t.value.depth;
    width = max t.op.width t.value.width;
  }

(* Drain one phase over [fibers] workers. The heap and in-degree
   updates happen between fiber suspension points, so no further
   synchronization is needed: the simulator's fibers are cooperative.
   All edges point from lower to higher priority, so the lowest-
   priority unapplied record always has in-degree zero — the heap can
   only be empty mid-phase while some worker is still applying, and
   that worker's completion signals the idle queue. *)
let run_phase engine ~node ~fibers p ~apply =
  let m = Array.length p.members in
  if m > 0 then begin
    let indeg = Array.copy p.indeg in
    let heap = Heap.create m p.prio in
    Array.iteri (fun pos d -> if d = 0 then Heap.push heap pos) indeg;
    let remaining = ref m in
    let idle : unit Engine.Waitq.t = Engine.Waitq.create () in
    let finished : unit Engine.Waitq.t = Engine.Waitq.create () in
    let workers = max 1 fibers in
    let live = ref workers in
    let rec worker () =
      if !remaining > 0 then
        match Heap.pop heap with
        | Some pos ->
            apply p.members.(pos);
            decr remaining;
            List.iter
              (fun s ->
                indeg.(s) <- indeg.(s) - 1;
                if indeg.(s) = 0 then begin
                  Heap.push heap s;
                  ignore (Engine.Waitq.signal idle ~engine ())
                end)
              p.succs.(pos);
            if !remaining = 0 then
              ignore (Engine.Waitq.signal_all idle ~engine ());
            worker ()
        | None ->
            Engine.Waitq.wait idle;
            worker ()
    in
    for _ = 1 to workers do
      ignore
        (Engine.spawn engine ~node (fun () ->
             worker ();
             decr live;
             if !live = 0 then
               ignore (Engine.Waitq.signal finished ~engine ())))
    done;
    Engine.Waitq.wait finished
  end

let run_op_phase t engine ~node ~fibers ~apply =
  run_phase engine ~node ~fibers t.op ~apply

let run_value_phase t engine ~node ~fibers ~apply =
  run_phase engine ~node ~fibers t.value ~apply
