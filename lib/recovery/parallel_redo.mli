(** Graph-bounded parallel redo.

    Crash recovery's redo work is mostly independent: updates to
    different pages never conflict, and updates to the same page are
    ordered by their position in the log. Dependency records (the third
    logging technique) add the only cross-page constraints — an
    operation that read or overwrote another transaction family's
    object must be redone after that object's previous writer.

    This module turns an analysis scan's record array into two
    scheduling graphs and drains them over N simulator fibers:

    - the {e operation phase} mirrors the serial forward redo pass:
      per-page chains (consecutive operation records sharing a page)
      plus the dependency-record edges between operation records;
    - the {e value phase} mirrors the serial backward pass: per-page
      chains among value records, drained newest-first. Value-logged
      objects fit one page, so two records for the same object are
      always chained and no cross-page edge is ever needed; dependency
      records never constrain this phase.

    Each phase's ready queue releases a record only when all its
    predecessors have been applied, and pops ready records in serial
    pass order (ascending LSN for operations, descending for values).
    With a single fiber the schedule is therefore {e exactly} the
    serial pass, record for record; with more fibers, records on
    different chains overlap in virtual time and replay finishes in
    roughly critical-path rather than total-work time. *)

type config = { fibers : int }

val default : config

type stats = {
  op_records : int;  (** operation records scheduled in the redo phase *)
  value_records : int;  (** value records scheduled in the backward phase *)
  chain_edges : int;  (** same-page ordering edges across both phases *)
  dep_edges : int;
      (** cross-page edges contributed by dependency records (operation
          phase only; dangling predecessors below the scan anchor are
          dropped — their effects are provably on disk) *)
  critical_path : int;
      (** longest chain of ordering edges, operation and value phases
          summed — the lower bound, in records, on parallel replay *)
  width : int;
      (** largest antichain level: how many records could be in flight
          at once given unlimited fibers *)
}

type t

(** [build records] constructs both phase graphs from an analysis
    scan's [(lsn, record)] array. Pure bookkeeping: charges nothing. *)
val build : (Tabs_wal.Record.lsn * Tabs_wal.Record.t) array -> t

val stats : t -> stats

(** {2 Graph introspection}

    Instant restart reuses the phase graphs for lazy per-page replay:
    it indexes members by page and, on first touch of a page, applies
    the predecessor closure of that page's chain in priority order.
    Member arrays hold indices into the original records array, in
    phase priority order (ascending LSN for operations; value members
    are in log order but drain newest-first). *)

(** [op_members g] — operation-phase members, indices into the records
    array passed to {!build}, in log order. *)
val op_members : t -> int array

(** [value_members g] — value-phase members, in log order. *)
val value_members : t -> int array

(** [op_preds g] — predecessor member positions (same-page chains plus
    dependency edges) for each operation-phase member position. Fresh
    arrays: callers may mutate. *)
val op_preds : t -> int list array

(** [value_preds g] — predecessor (newer same-page record) positions
    for each value-phase member position. *)
val value_preds : t -> int list array

(** [run_op_phase g engine ~node ~fibers ~apply] drains the operation
    graph over [fibers] worker fibers spawned on [node]; [apply i] is
    called with the index into the original records array once record
    [i]'s predecessors have all been applied. Returns when every
    operation record has been applied. Must run inside a fiber. *)
val run_op_phase :
  t ->
  Tabs_sim.Engine.t ->
  node:int ->
  fibers:int ->
  apply:(int -> unit) ->
  unit

(** [run_value_phase g engine ~node ~fibers ~apply] likewise drains the
    value graph, newest record first within each page chain. *)
val run_value_phase :
  t ->
  Tabs_sim.Engine.t ->
  node:int ->
  fibers:int ->
  apply:(int -> unit) ->
  unit
