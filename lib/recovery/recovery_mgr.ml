open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_accent

type txn_status = Committed | Aborted | Prepared of int | Active

type Trace.event +=
  | Rm_checkpoint of { node : int; lsn : int; dirty : int; active : int }
  | Rm_recovered of {
      node : int;
      scanned : int;
      losers : int;
      in_doubt : int;
    }

type op_handler = { redo : op:string -> arg:string -> unit;
                    undo : op:string -> arg:string -> unit }

type recovery_outcome = {
  losers : Tid.t list;
  in_doubt : (Tid.t * int) list;
  written_objects : (Tid.t * Object_id.t) list;
  records_scanned : int;
}

type t = {
  engine : Engine.t;
  node : int;
  profile : Profile.t;
  log : Log_manager.t;
  vm : Vm.t;
  group_commit : Group_commit.t option;
  log_space_limit : int;
  op_handlers : (string, op_handler) Hashtbl.t;
  page_last_lsn : (Disk.page_id, int) Hashtbl.t;
      (* highest LSN of a log record covering each page, for the
         write-ahead force before page-out *)
  mutable active_txns_source :
    unit -> (Tid.t * Record.lsn option) list;
  mutable last_statuses : (Tid.t * txn_status) list;
  mutable last_background_flush : int;
  background_flush_interval : int;
}

let log t = t.log

let vm t = t.vm

let profile t = t.profile

let register_op_handler t ~server handler =
  Hashtbl.replace t.op_handlers server handler

let set_active_txns_source t f = t.active_txns_source <- f

let small_msg t = Engine.charge t.engine Cost_model.Small_contiguous_message

(* A Transaction Manager -> Recovery Manager hop. On a Classic node it
   is an Accent small message; on an Integrated node (the Section 5.3
   "Improved TABS Architecture") the two managers share the kernel's
   process, so the hop is a direct call whose would-be cost is counted
   as elided. *)
let tm_rm_msg t =
  match t.profile with
  | Profile.Classic -> small_msg t
  | Profile.Integrated ->
      Engine.elide t.engine Cost_model.Small_contiguous_message

(* The Recovery Manager's side of the kernel <-> Recovery Manager
   paging protocol of Section 3.2.1. The kernel ({!Vm}) owns the
   protocol's message costs; here only the write-ahead rule itself
   remains: force the log through the page's last record before the
   kernel may write it. *)
let wal_hooks t =
  {
    Vm.on_first_dirty = (fun _pid -> ());
    before_page_out =
      (fun pid ->
        match Hashtbl.find_opt t.page_last_lsn pid with
        | Some lsn -> Log_manager.force t.log ~upto:lsn
        | None -> ());
    after_page_out = (fun _pid -> ());
  }

let create engine ~node ~log ~vm ?(profile = Profile.Classic)
    ?group_commit ?(log_space_limit = 256 * 1024) () =
  let t =
    {
      engine;
      node;
      profile;
      log;
      vm;
      group_commit =
        Option.map
          (fun config -> Group_commit.create engine ~node ~log config)
          group_commit;
      log_space_limit;
      op_handlers = Hashtbl.create 8;
      page_last_lsn = Hashtbl.create 256;
      active_txns_source = (fun () -> []);
      last_statuses = [];
      last_background_flush = 0;
      background_flush_interval = 250_000;
    }
  in
  Vm.set_wal_hooks vm (wal_hooks t);
  t

let note_pages_logged t pages lsn =
  List.iter
    (fun pid ->
      match Hashtbl.find_opt t.page_last_lsn pid with
      | Some prev when prev >= lsn -> ()
      | Some _ | None -> Hashtbl.replace t.page_last_lsn pid lsn)
    pages

(* Forward processing ------------------------------------------------- *)

let log_value t ~tid ~obj ~old_value ~new_value =
  if not (Object_id.fits_one_page obj) then
    invalid_arg "Recovery_mgr.log_value: object spans pages (use operation \
                 logging)";
  (* The server sends the buffered old value and the new value to the
     Recovery Manager in one large message; the RM spools it. *)
  Engine.charge t.engine Cost_model.Large_contiguous_message;
  Engine.charge_cpu t.engine ~process:"rm" Overheads.rm_spool_write;
  let lsn = Log_manager.append_value t.log ~tid ~obj ~old_value ~new_value in
  Vm.note_update t.vm obj ~lsn;
  note_pages_logged t (Object_id.pages obj) lsn;
  lsn

let log_operation t ~tid ~server ~op ~undo_arg ~redo_arg ~objs =
  Engine.charge t.engine Cost_model.Large_contiguous_message;
  Engine.charge_cpu t.engine ~process:"rm" Overheads.rm_spool_write;
  let pages = List.concat_map Object_id.pages objs in
  let lsn =
    Log_manager.append_operation t.log ~tid ~server ~operation:op ~undo_arg
      ~redo_arg ~pages
  in
  List.iter (fun obj -> Vm.note_update t.vm obj ~lsn) objs;
  note_pages_logged t pages lsn;
  lsn

(* The kernel writes modified pages back to their segments as paging
   activity allows (the paper measured 0.86 page I/Os per update
   transaction from this background traffic). Modeled as a short-lived
   cleaning fiber kicked at most once per interval when transactions
   commit, so the simulation still quiesces. *)
let maybe_background_flush t =
  let now = Engine.now t.engine in
  if now - t.last_background_flush >= t.background_flush_interval then begin
    t.last_background_flush <- now;
    ignore
      (Engine.spawn t.engine ~node:t.node (fun () -> Vm.flush_all t.vm))
  end

let append_tm_record t record =
  (* Transaction Manager -> Recovery Manager traffic: a message on
     Classic nodes, a direct call on Integrated ones. *)
  tm_rm_msg t;
  (match record with
  | Record.Txn_begin _ -> maybe_background_flush t
  | _ -> ());
  Log_manager.append t.log record

(* The commit-protocol force (local commit records, 2PC commit and
   prepare records). With group commit enabled the caller joins the
   node's force batch instead of paying its own stable-storage round;
   either way, on return the log is stable through [lsn]. *)
let force_through t lsn =
  match t.group_commit with
  | None -> Log_manager.force t.log ~upto:lsn
  | Some gc -> Group_commit.force_through gc ~upto:lsn

let group_commit t = t.group_commit

(* Undo/redo application ---------------------------------------------- *)

let restore_value t obj value =
  Vm.pin t.vm obj ~access:`Random;
  Vm.write t.vm obj value;
  Vm.unpin t.vm obj

let op_handler t server =
  match Hashtbl.find_opt t.op_handlers server with
  | Some h -> h
  | None ->
      failwith
        (Printf.sprintf
           "Recovery_mgr: no operation handler registered for server %S"
           server)

(* Abort -------------------------------------------------------------- *)

let abort t ~tid =
  let rec walk = function
    | None -> ()
    | Some lsn -> (
        match Log_manager.read t.log lsn with
        | Record.Update_value u ->
            (* instruct the owning server to undo (one message), then
               restore the old image *)
            small_msg t;
            restore_value t u.obj u.old_value;
            Vm.note_update t.vm u.obj ~lsn;
            walk u.prev
        | Record.Update_operation u ->
            small_msg t;
            (op_handler t u.server).undo ~op:u.operation ~arg:u.undo_arg;
            Vm.note_pages t.vm u.pages ~lsn;
            walk u.prev
        | _ -> assert false)
  in
  walk (Log_manager.last_lsn_of t.log tid);
  ignore (Log_manager.append t.log (Record.Txn_abort tid))

(* Checkpoints and reclamation ---------------------------------------- *)

let checkpoint t =
  let dirty_pages = Vm.dirty_pages t.vm in
  let active_txns = t.active_txns_source () in
  let lsn =
    Log_manager.append t.log (Record.Checkpoint { dirty_pages; active_txns })
  in
  if Engine.tracing t.engine then
    Engine.emit t.engine
      (Rm_checkpoint
         {
           node = t.node;
           lsn;
           dirty = List.length dirty_pages;
           active = List.length active_txns;
         });
  Log_manager.force_all t.log;
  lsn

let maybe_reclaim t =
  if Log_manager.stable_bytes t.log <= t.log_space_limit then false
  else begin
    (* Reclamation "may force pages back to disk before they would
       otherwise be written". *)
    Vm.flush_all t.vm;
    let ck = checkpoint t in
    let keep_from =
      List.fold_left
        (fun acc (tid, _) ->
          match Log_manager.first_lsn_of t.log tid with
          | Some first -> min acc first
          | None -> acc)
        ck
        (t.active_txns_source ())
    in
    Log_manager.truncate t.log ~keep_from;
    true
  end

(* Crash recovery ------------------------------------------------------ *)

type analysis = {
  records : (Record.lsn * Record.t) array;
  mutable statuses : (Tid.t * txn_status) list; (* top-level tids *)
  mutable aborted_tids : Tid.t list; (* incl. subtransactions *)
}

let status_of a top =
  match List.assoc_opt top a.statuses with Some s -> s | None -> Active

let set_status a top status =
  a.statuses <- (top, status) :: List.remove_assoc top a.statuses

(* Forward scan of the live stable log: collect records, resolve each
   top-level transaction's fate, and remember individually aborted
   subtransactions. *)
let analyze t =
  let acc = ref [] in
  let n = ref 0 in
  let bytes = ref 0 in
  Log_manager.iter_forward t.log ~from:(Log_manager.first_lsn t.log)
    ~f:(fun lsn record ->
      incr n;
      bytes := !bytes + String.length (Record.encode record);
      acc := (lsn, record) :: !acc);
  (* reading the log back is sequential I/O, one read per log page *)
  let pages = (!bytes + Page.size - 1) / Page.size in
  for _ = 1 to pages do
    Engine.charge t.engine Cost_model.Sequential_read
  done;
  let a =
    {
      records = Array.of_list (List.rev !acc);
      statuses = [];
      aborted_tids = [];
    }
  in
  Array.iter
    (fun (_, record) ->
      match record with
      | Record.Txn_begin tid | Record.Update_value { tid; _ }
      | Record.Update_operation { tid; _ } ->
          let top = Tid.top_level tid in
          if not (List.mem_assoc top a.statuses) then set_status a top Active
      | Record.Txn_prepare (tid, coordinator) ->
          set_status a (Tid.top_level tid) (Prepared coordinator)
      | Record.Txn_commit tid -> set_status a (Tid.top_level tid) Committed
      | Record.Txn_abort tid ->
          a.aborted_tids <- tid :: a.aborted_tids;
          if Tid.is_top tid then set_status a tid Aborted
      | Record.Txn_end _ | Record.Checkpoint _ -> ())
    a.records;
  a

(* An update by [tid] survives iff no logged abort covers it and its
   top-level transaction committed or prepared. *)
let winner a tid =
  (not
     (List.exists
        (fun aborted -> Tid.is_ancestor ~ancestor:aborted tid)
        a.aborted_tids))
  &&
  match status_of a (Tid.top_level tid) with
  | Committed | Prepared _ -> true
  | Aborted | Active -> false

(* Pass 2 for operation logging: repeat history forward, gated by the
   sector sequence numbers so already-reflected effects are skipped. *)
let op_redo_pass t a =
  Array.iter
    (fun (lsn, record) ->
      match record with
      | Record.Update_operation u ->
          let needs_redo =
            u.pages = []
            || List.exists (fun pid -> Disk.seqno (Vm.disk t.vm) pid < lsn) u.pages
          in
          if needs_redo then begin
            small_msg t;
            (op_handler t u.server).redo ~op:u.operation ~arg:u.redo_arg;
            Vm.note_pages t.vm u.pages ~lsn
          end
      | _ -> ())
    a.records

(* Pass 3 for operation logging: undo losers backward. History was
   repeated in pass 2, so every loser effect is present. *)
let op_undo_pass t a =
  for i = Array.length a.records - 1 downto 0 do
    match a.records.(i) with
    | lsn, Record.Update_operation u when not (winner a u.tid) ->
        small_msg t;
        (op_handler t u.server).undo ~op:u.operation ~arg:u.undo_arg;
        Vm.note_pages t.vm u.pages ~lsn
    | _ -> ()
  done

module Obj_key = struct
  type t = Object_id.t

  let equal = Object_id.equal

  let hash = Object_id.hash
end

module Obj_set = Hashtbl.Make (Obj_key)

(* The single backward pass of value recovery: the newest record for an
   object decides it. A winner's new value finalizes the object; loser
   records keep restoring older old-values until the oldest one — whose
   old value is the last committed image — has been applied. *)
let value_backward_pass t a =
  let finalized = Obj_set.create 64 in
  for i = Array.length a.records - 1 downto 0 do
    match a.records.(i) with
    | lsn, Record.Update_value u ->
        if not (Obj_set.mem finalized u.obj) then
          if winner a u.tid then begin
            restore_value t u.obj u.new_value;
            Vm.note_pages t.vm (Object_id.pages u.obj) ~lsn;
            Obj_set.add finalized u.obj ()
          end
          else begin
            restore_value t u.obj u.old_value;
            Vm.note_pages t.vm (Object_id.pages u.obj) ~lsn
          end
    | _ -> ()
  done

let recover t =
  let a = analyze t in
  op_redo_pass t a;
  value_backward_pass t a;
  op_undo_pass t a;
  (* Roll-back records for the losers that never logged an outcome. *)
  let losers =
    List.filter_map
      (fun (tid, status) -> if status = Active then Some tid else None)
      a.statuses
  in
  List.iter
    (fun tid -> ignore (Log_manager.append t.log (Record.Txn_abort tid)))
    losers;
  let in_doubt =
    List.filter_map
      (fun (tid, status) ->
        match status with Prepared c -> Some (tid, c) | _ -> None)
      a.statuses
  in
  let written_objects =
    Array.to_list a.records
    |> List.filter_map (fun (_, record) ->
           match record with
           | Record.Update_value u
             when List.mem_assoc (Tid.top_level u.tid) in_doubt ->
               Some (u.tid, u.obj)
           | _ -> None)
  in
  (* In-doubt transactions may yet be told to abort by their
     coordinator: re-register their update chains so a later
     [abort] can walk them. *)
  let chains = Hashtbl.create 8 in
  Array.iter
    (fun (lsn, record) ->
      match Record.tid_of record with
      | Some tid
        when (match record with
             | Record.Update_value _ | Record.Update_operation _ -> true
             | _ -> false)
             && List.mem_assoc (Tid.top_level tid) in_doubt -> (
          match Hashtbl.find_opt chains tid with
          | None -> Hashtbl.add chains tid (lsn, lsn)
          | Some (first, _) -> Hashtbl.replace chains tid (first, lsn))
      | Some _ | None -> ())
    a.records;
  Hashtbl.iter
    (fun tid (first, last) ->
      Log_manager.restore_chain t.log ~tid ~first ~last)
    chains;
  (* Segments must reflect exactly committed + prepared work. *)
  Vm.flush_all t.vm;
  Log_manager.force_all t.log;
  (* Everything is on disk now; reclaim the scanned prefix so repeated
     crashes do not re-read ever-growing history. Chains of in-doubt
     transactions must stay walkable for a late Abort verdict. *)
  let keep_from =
    Hashtbl.fold (fun _ (first, _) acc -> min acc first) chains
      (Log_manager.next_lsn t.log)
  in
  let ck =
    Log_manager.append t.log
      (Record.Checkpoint { dirty_pages = []; active_txns = [] })
  in
  Log_manager.force_all t.log;
  Log_manager.truncate t.log ~keep_from:(min keep_from ck);
  t.last_statuses <- a.statuses;
  if Engine.tracing t.engine then
    Engine.emit t.engine
      (Rm_recovered
         {
           node = t.node;
           scanned = Array.length a.records;
           losers = List.length losers;
           in_doubt = List.length in_doubt;
         });
  {
    losers;
    in_doubt;
    written_objects;
    records_scanned = Array.length a.records;
  }

let statuses t = t.last_statuses
