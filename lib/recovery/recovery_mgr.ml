open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_accent

type txn_status = Committed | Aborted | Prepared of int | Active

type Trace.event +=
  | Rm_checkpoint of {
      node : int;
      lsn : int;
      dirty : int;
      active : int;
      prepared : int;
    }
  | Rm_recovered of {
      node : int;
      scanned : int;
      losers : int;
      in_doubt : int;
    }
  | Rm_ondemand_redo of {
      node : int;
      segment : int;
      page : int;
      records : int; (* parked chain records drained by this replay *)
      via : string; (* "fault" (first touch) or "trickle" (background) *)
      pending : int; (* per-page chains still parked afterwards *)
    }

type op_handler = { redo : op:string -> arg:string -> unit;
                    undo : op:string -> arg:string -> unit }

type recovery_outcome = {
  losers : Tid.t list;
  in_doubt : (Tid.t * int) list;
  written_objects : (Tid.t * Object_id.t) list;
  records_scanned : int;
  replay_us : int;
      (* virtual time spent in the redo and undo passes — excludes the
         analysis scan, so fiber fan-out is visible in isolation *)
  graph : Parallel_redo.stats option;
      (* redo-graph shape when parallel recovery ran; None when serial *)
  paxos : (Record.lsn * Record.t) list;
      (* surviving Paxos Commit acceptor state, already re-appended
         above the closing checkpoint; the TM reseeds its acceptor from
         these (the LSNs restore its truncation floor) *)
  open_early : bool;
      (* instant restart: the node opened after analysis with redo
         parked per page; false after a full (eager) replay *)
  time_to_open_us : int;
      (* virtual time from entering [recover] until the node could
         accept transactions — the whole recovery for an eager restart,
         analysis + bookkeeping only for an instant one *)
}

type analysis = {
  records : (Record.lsn * Record.t) array;
  statuses : (Tid.t, txn_status) Hashtbl.t; (* top-level tids *)
  aborted : (Tid.t, unit) Hashtbl.t; (* incl. subtransactions *)
}

module Obj_key = struct
  type t = Object_id.t

  let equal = Object_id.equal

  let hash = Object_id.hash
end

module Obj_set = Hashtbl.Make (Obj_key)

(* Instant restart's parked redo state: the per-page chains from
   {!Parallel_redo}'s phase graphs, indexed by page, plus application
   flags so a record shared between pages (multi-page operations,
   cross-page dependency closures) is applied exactly once. A page
   leaves [pending] when every member touching it — operation redo,
   value, and loser undo — has been applied. *)
type ondemand = {
  od_analysis : analysis;
  (* operation redo phase: forward order, chains + dependency edges *)
  od_op_members : int array;
  od_op_preds : int list array;
  od_op_applied : bool array;
  od_page_ops : (Disk.page_id, int list) Hashtbl.t;
  (* value phase: per-page chains drained newest-first *)
  od_val_members : int array;
  od_val_preds : int list array;
  od_val_applied : bool array;
  od_page_values : (Disk.page_id, int list) Hashtbl.t;
  od_finalized : unit Obj_set.t;
  (* loser undo: newest-first, after redo of every page it touches *)
  od_undo_members : int array;
  od_undo_preds : int list array;
  od_undo_applied : bool array;
  od_page_undos : (Disk.page_id, int list) Hashtbl.t;
  (* page state *)
  od_pending : (Disk.page_id, unit) Hashtbl.t;
  od_page_first : (Disk.page_id, Record.lsn) Hashtbl.t;
      (* oldest parked record per page — the conservative recovery LSN
         a checkpoint taken in the window must report for it *)
  od_redo_done : (Disk.page_id, unit) Hashtbl.t;
  mutable od_paxos_floor : Record.lsn option;
      (* oldest re-appended acceptor record: held down until the
         trickle finalizes (the TM's own floor takes over by then) *)
  mutable od_owner : int; (* fiber id mid-replay; -1 when free *)
  od_latch : unit Engine.Waitq.t;
  mutable od_applies : int; (* chain records drained by current replay *)
}

type t = {
  engine : Engine.t;
  node : int;
  profile : Profile.t;
  log : Log_manager.t;
  vm : Vm.t;
  group_commit : Group_commit.t option;
  mutable checkpointer : Checkpointer.t option;
  log_space_limit : int;
  op_handlers : (string, op_handler) Hashtbl.t;
  page_last_lsn : (Disk.page_id, int) Hashtbl.t;
      (* highest LSN of a log record covering each page, for the
         write-ahead force before page-out *)
  mutable active_txns_source :
    unit -> (Tid.t * Record.lsn option) list;
  mutable prepared_source : unit -> (Tid.t * int) list;
  mutable last_statuses : (Tid.t * txn_status) list;
  mutable last_background_flush : int;
  background_flush_interval : int;
  mutable truncation_floor_source : unit -> Record.lsn option;
      (* the TM's Paxos acceptor supplies the oldest log record that
         still backs undecided consensus state — those records belong to
         no transaction chain, so reclamation would otherwise eat them *)
  parallel : Parallel_redo.config option;
  instant : bool;
  mutable ondemand : ondemand option;
      (* Some while an instant restart's chains are still parked *)
  mutable replayed_pages : (Disk.page_id, unit) Hashtbl.t option;
      (* eager-replay instrumentation: distinct pages the redo/undo
         passes wrote, counted into the Metrics restart_pages row *)
  mutable apply_hook : (phase:string -> lsn:Record.lsn -> unit) option;
      (* test instrumentation: observes every redo/undo application, in
         order, from both the serial and the parallel replay paths *)
  mutable recovering : bool;
      (* true from the start of [recover] until the log's chain table is
         restored. [Log_manager.attach] starts the table empty, so any
         truncation decided in that window would see no live chains and
         reclaim records that in-doubt transactions still need for undo;
         the flag pins the reclamation floor and holds the checkpoint
         daemon's cycle gate closed until restoration completes. *)
  open_q : unit Engine.Waitq.t;
      (* fibers parked in [await_open], woken when [recover] returns *)
}

let log t = t.log

let vm t = t.vm

let profile t = t.profile

let register_op_handler t ~server handler =
  Hashtbl.replace t.op_handlers server handler

let set_active_txns_source t f = t.active_txns_source <- f

let set_prepared_source t f = t.prepared_source <- f

let set_truncation_floor_source t f = t.truncation_floor_source <- f

let set_apply_hook t f = t.apply_hook <- f

(* The log floor parked recovery work pins: the oldest record of any
   still-pending per-page chain, plus the re-appended Paxos acceptor
   records (held until the trickle's finalize; the TM's own floor
   covers the acceptor from the moment it reseeds). *)
let ondemand_floor t =
  match t.ondemand with
  | None -> None
  | Some st ->
      Hashtbl.fold
        (fun pid () acc ->
          let f = Hashtbl.find st.od_page_first pid in
          match acc with
          | Some a when a <= f -> acc
          | Some _ | None -> Some f)
        st.od_pending st.od_paxos_floor

let reclamation_floor t =
  if t.recovering then
    (* Chain table not restored yet (see [recovering]): pin the floor at
       the log's first retained record so any truncation is a no-op. *)
    Some (Log_manager.first_lsn t.log)
  else
    match (ondemand_floor t, t.truncation_floor_source ()) with
    | None, f | f, None -> f
    | Some a, Some b -> Some (min a b)

let hook t phase lsn =
  match t.apply_hook with None -> () | Some f -> f ~phase ~lsn

let small_msg t = Engine.charge t.engine Cost_model.Small_contiguous_message

(* A Transaction Manager -> Recovery Manager hop. On a Classic node it
   is an Accent small message; on an Integrated node (the Section 5.3
   "Improved TABS Architecture") the two managers share the kernel's
   process, so the hop is a direct call whose would-be cost is counted
   as elided. *)
let tm_rm_msg t =
  match t.profile with
  | Profile.Classic -> small_msg t
  | Profile.Integrated ->
      Engine.elide t.engine Cost_model.Small_contiguous_message

(* The Recovery Manager's side of the kernel <-> Recovery Manager
   paging protocol of Section 3.2.1. The kernel ({!Vm}) owns the
   protocol's message costs; here the write-ahead rule itself remains
   (force the log through the page's last record before the kernel may
   write it), plus the recovery-LSN capture at first modification: the
   dirtying update's record is not appended yet, so the next LSN to be
   issued is the conservative bound a fuzzy checkpoint taken in that
   window must report. *)
let wal_hooks t =
  {
    Vm.on_first_dirty =
      (fun pid -> Vm.note_rec_lsn t.vm pid ~lsn:(Log_manager.next_lsn t.log));
    before_page_out =
      (fun pid ->
        match Hashtbl.find_opt t.page_last_lsn pid with
        | Some lsn -> Log_manager.force t.log ~upto:lsn
        | None -> ());
    after_page_out = (fun _pid -> ());
  }

let note_pages_logged t pages lsn =
  List.iter
    (fun pid ->
      match Hashtbl.find_opt t.page_last_lsn pid with
      | Some prev when prev >= lsn -> ()
      | Some _ | None -> Hashtbl.replace t.page_last_lsn pid lsn)
    pages

let maybe_poke_checkpointer t =
  match t.checkpointer with
  | Some cp -> Checkpointer.poke cp
  | None -> ()

(* Forward processing ------------------------------------------------- *)

let log_value t ~tid ~obj ~old_value ~new_value =
  if not (Object_id.fits_one_page obj) then
    invalid_arg "Recovery_mgr.log_value: object spans pages (use operation \
                 logging)";
  (* The server sends the buffered old value and the new value to the
     Recovery Manager in one large message; the RM spools it. *)
  Engine.charge t.engine Cost_model.Large_contiguous_message;
  Engine.charge_cpu t.engine ~process:"rm" Overheads.rm_spool_write;
  let lsn = Log_manager.append_value t.log ~tid ~obj ~old_value ~new_value in
  Vm.note_update t.vm obj ~lsn;
  note_pages_logged t (Object_id.pages obj) lsn;
  maybe_poke_checkpointer t;
  lsn

let log_operation t ~tid ~server ~op ~undo_arg ~redo_arg ?(reads = []) ~objs
    () =
  Engine.charge t.engine Cost_model.Large_contiguous_message;
  Engine.charge_cpu t.engine ~process:"rm" Overheads.rm_spool_write;
  let pages = List.concat_map Object_id.pages objs in
  let lsn =
    Log_manager.append_operation t.log ~tid ~server ~operation:op ~undo_arg
      ~redo_arg ~pages ~objs ~reads ()
  in
  List.iter (fun obj -> Vm.note_update t.vm obj ~lsn) objs;
  note_pages_logged t pages lsn;
  maybe_poke_checkpointer t;
  lsn

(* The kernel writes modified pages back to their segments as paging
   activity allows (the paper measured 0.86 page I/Os per update
   transaction from this background traffic). Modeled as a short-lived
   cleaning fiber kicked at most once per interval when transactions
   commit, so the simulation still quiesces. A configured checkpoint
   daemon supersedes it: its trickle write-back is this same traffic,
   ordered to raise the log-truncation floor. *)
let maybe_background_flush t =
  match t.checkpointer with
  | Some _ -> ()
  | None ->
      let now = Engine.now t.engine in
      if now - t.last_background_flush >= t.background_flush_interval then begin
        t.last_background_flush <- now;
        ignore
          (Engine.spawn t.engine ~node:t.node (fun () -> Vm.flush_all t.vm))
      end

let append_tm_record t record =
  (* Transaction Manager -> Recovery Manager traffic: a message on
     Classic nodes, a direct call on Integrated ones. *)
  tm_rm_msg t;
  (match record with
  | Record.Txn_begin _ -> maybe_background_flush t
  | _ -> ());
  maybe_poke_checkpointer t;
  Log_manager.append t.log record

(* The commit-protocol force (local commit records, 2PC commit and
   prepare records). With group commit enabled the caller joins the
   node's force batch instead of paying its own stable-storage round;
   either way, on return the log is stable through [lsn]. *)
let force_through t lsn =
  match t.group_commit with
  | None -> Log_manager.force t.log ~upto:lsn
  | Some gc -> Group_commit.force_through gc ~upto:lsn

let group_commit t = t.group_commit

let checkpointer t = t.checkpointer

(* Undo/redo application ---------------------------------------------- *)

let restore_value t obj value =
  Vm.pin t.vm obj ~access:`Random;
  Vm.write t.vm obj value;
  Vm.unpin t.vm obj

let op_handler t server =
  match Hashtbl.find_opt t.op_handlers server with
  | Some h -> h
  | None ->
      failwith
        (Printf.sprintf
           "Recovery_mgr: no operation handler registered for server %S"
           server)

(* Abort -------------------------------------------------------------- *)

let abort t ~tid =
  let rec walk = function
    | None -> ()
    | Some lsn -> (
        match Log_manager.read t.log lsn with
        | Record.Update_value u ->
            (* instruct the owning server to undo (one message), then
               restore the old image *)
            small_msg t;
            restore_value t u.obj u.old_value;
            Vm.note_update t.vm u.obj ~lsn;
            walk u.prev
        | Record.Update_operation u ->
            small_msg t;
            (op_handler t u.server).undo ~op:u.operation ~arg:u.undo_arg;
            Vm.note_pages t.vm u.pages ~lsn;
            walk u.prev
        | _ -> assert false)
  in
  walk (Log_manager.last_lsn_of t.log tid);
  ignore (Log_manager.append t.log (Record.Txn_abort tid))

(* Checkpoints and reclamation ---------------------------------------- *)

(* A fuzzy checkpoint: record where recovery would have to start —
   the dirty pages with their recovery LSNs, the first-update LSN of
   every live transaction family, and the unresolved prepared
   participants — without writing a single data page. The family
   first-LSNs come from the log's own chain table, which also covers
   rigs and restart windows where no Transaction Manager source is
   wired. *)
let checkpoint t =
  let dirty_pages = Vm.dirty_pages t.vm in
  (* Parked instant-restart chains are recovery work this checkpoint
     must keep reachable: report each still-pending page at its chain's
     oldest record, as if dirty at that recovery LSN, so a re-crash in
     the serving window re-anchors below the parked redo. *)
  let dirty_pages =
    match t.ondemand with
    | None -> dirty_pages
    | Some st ->
        let merged = Hashtbl.create 32 in
        List.iter (fun (pid, r) -> Hashtbl.replace merged pid r) dirty_pages;
        Hashtbl.iter
          (fun pid () ->
            let f = Hashtbl.find st.od_page_first pid in
            match Hashtbl.find_opt merged pid with
            | Some r when r <= f -> ()
            | Some _ | None -> Hashtbl.replace merged pid f)
          st.od_pending;
        Hashtbl.fold (fun pid r acc -> (pid, r) :: acc) merged []
        |> List.sort compare
  in
  (* The TM's view of which transactions are live lags the log: while a
     commit force is in flight the commit record is appended but the TM
     has not yet recorded the outcome. A checkpoint taken in that window
     must not list the decided transaction — at restart its outcome
     record would sit below the scan anchor and the seeded entry would
     surface as a phantom loser. The log is the authority. *)
  let undecided (tid, _) =
    not (Log_manager.has_appended_outcome t.log (Tid.top_level tid))
  in
  let prepared =
    List.sort compare (List.filter undecided (t.prepared_source ()))
  in
  let family_first = Hashtbl.create 16 in
  List.iter
    (fun (tid, first) ->
      let top = Tid.top_level tid in
      match Hashtbl.find_opt family_first top with
      | Some f when f <= first -> ()
      | Some _ | None -> Hashtbl.replace family_first top first)
    (Log_manager.live_chain_firsts t.log);
  let seen = Hashtbl.create 16 in
  let active_txns =
    List.filter_map
      (fun top ->
        if Hashtbl.mem seen top then None
        else begin
          Hashtbl.add seen top ();
          Some (top, Hashtbl.find_opt family_first top)
        end)
      (List.map fst (List.filter undecided (t.active_txns_source ()))
      @ List.map fst prepared
      @ Hashtbl.fold (fun top _ acc -> top :: acc) family_first [])
    |> List.sort compare
  in
  let lsn =
    Log_manager.append t.log
      (Record.Checkpoint { dirty_pages; active_txns; prepared })
  in
  (* Checkpoint-time pruning of the dependency last-writer table: an
     entry below this checkpoint's scan anchor can never seed a kept
     edge — the next restart's analysis starts at the anchor, and
     {!Parallel_redo.build} drops dependency predecessors below it as
     provably on disk. No-op unless dependency logging is on. *)
  let prune_floor =
    List.fold_left (fun acc (_, r) -> min acc r) lsn dirty_pages
  in
  let prune_floor =
    List.fold_left
      (fun acc (_, first) ->
        match first with Some f -> min acc f | None -> acc)
      prune_floor active_txns
  in
  Log_manager.prune_last_writer t.log ~floor:prune_floor;
  if Engine.tracing t.engine then
    Engine.emit t.engine
      (Rm_checkpoint
         {
           node = t.node;
           lsn;
           dirty = List.length dirty_pages;
           active = List.length active_txns;
           prepared = List.length prepared;
         });
  Log_manager.force_all t.log;
  lsn

let maybe_reclaim t =
  if Log_manager.stable_bytes t.log <= t.log_space_limit then false
  else
    match t.checkpointer with
    | Some cp ->
        (* the daemon reclaims in the background; the foreground
           transaction neither flushes nor waits *)
        Checkpointer.request cp;
        false
    | None ->
        (* Reclamation "may force pages back to disk before they would
           otherwise be written". *)
        Vm.flush_all t.vm;
        let ck = checkpoint t in
        let keep_from =
          match Log_manager.oldest_first_lsn t.log with
          | Some first -> min ck first
          | None -> ck
        in
        (* pinned pages can survive the flush: keep their recovery LSNs *)
        let keep_from =
          List.fold_left (fun acc (_, r) -> min acc r) keep_from
            (Vm.dirty_pages t.vm)
        in
        let keep_from =
          match reclamation_floor t with
          | Some f -> min keep_from f
          | None -> keep_from
        in
        Log_manager.truncate t.log ~keep_from;
        true

let create engine ~node ~log ~vm ?(profile = Profile.Classic)
    ?group_commit ?checkpointing ?(log_space_limit = 256 * 1024)
    ?parallel_recovery ?(instant_restart = false) () =
  (* Parallel recovery and instant restart both need the conflict edges
     on the log: enabling either turns dependency-record emission on for
     the whole incarnation, so the next crash finds its graph already
     written. *)
  if parallel_recovery <> None || instant_restart then
    Log_manager.set_dep_logging log true;
  let t =
    {
      engine;
      node;
      profile;
      log;
      vm;
      group_commit =
        Option.map
          (fun config -> Group_commit.create engine ~node ~log config)
          group_commit;
      checkpointer = None;
      log_space_limit;
      op_handlers = Hashtbl.create 8;
      page_last_lsn = Hashtbl.create 256;
      active_txns_source = (fun () -> []);
      prepared_source = (fun () -> []);
      last_statuses = [];
      last_background_flush = 0;
      background_flush_interval = 250_000;
      truncation_floor_source = (fun () -> None);
      parallel = parallel_recovery;
      instant = instant_restart;
      ondemand = None;
      replayed_pages = None;
      apply_hook = None;
      recovering = false;
      open_q = Engine.Waitq.create ();
    }
  in
  Vm.set_wal_hooks vm (wal_hooks t);
  t.checkpointer <-
    Option.map
      (fun config ->
        Checkpointer.create engine ~node ~vm ~log
          ~checkpoint:(fun () -> checkpoint t)
          ~floor:(fun () -> reclamation_floor t)
          ~gate:(fun () -> not t.recovering)
          config)
      checkpointing;
  t

(* Crash recovery ------------------------------------------------------ *)

let status_of a top =
  match Hashtbl.find_opt a.statuses top with Some s -> s | None -> Active

let set_status a top status = Hashtbl.replace a.statuses top status

(* Did a logged abort cover [tid] — itself or any ancestor? Probed by
   path prefix against the abort set, so the cost per record is the
   nesting depth, not the number of aborts on the log. *)
let covered_by_abort a (tid : Tid.t) =
  let rec go prefix_rev rest =
    Hashtbl.mem a.aborted { tid with Tid.path = List.rev prefix_rev }
    ||
    match rest with [] -> false | x :: tl -> go (x :: prefix_rev) tl
  in
  go [] tid.Tid.path

(* The newest stable checkpoint, if its record is still readable. *)
let scan_anchor t =
  match Log_manager.last_checkpoint t.log with
  | None -> None
  | Some lsn -> (
      match Log_manager.read t.log lsn with
      | Record.Checkpoint c -> Some (lsn, c)
      | _ -> None
      | exception Not_found -> None)

(* Forward scan of the live stable log: collect records, resolve each
   top-level transaction's fate, and remember individually aborted
   subtransactions.

   Anchored at the last checkpoint, the scan starts at the minimum of
   the checkpoint's own LSN, its dirty pages' recovery LSNs, and its
   transaction families' first-update LSNs: every record below that
   either belongs to a finished transaction whose effects the segments
   already reflect (its pages were clean, or their recovery LSNs were
   higher), or to nothing recovery cares about. Statuses are seeded from
   the checkpoint — prepared participants first, since their prepare
   records may predate the scan — and records scanned afterwards
   override the seeds. Without a checkpoint (or with [~anchored:false])
   the scan covers the whole live log. *)
let analyze ?(anchored = true) t =
  let anchor = if anchored then scan_anchor t else None in
  let scan_from =
    match anchor with
    | None -> Log_manager.first_lsn t.log
    | Some (lsn, c) ->
        let floor =
          List.fold_left (fun acc (_, rec_lsn) -> min acc rec_lsn) lsn
            c.dirty_pages
        in
        let floor =
          List.fold_left
            (fun acc (_, first) ->
              match first with Some f -> min acc f | None -> acc)
            floor c.active_txns
        in
        max (Log_manager.first_lsn t.log) floor
  in
  let acc = ref [] in
  let bytes = ref 0 in
  Log_manager.iter_forward t.log ~from:scan_from ~f:(fun lsn record ->
      bytes := !bytes + String.length (Record.encode record);
      acc := (lsn, record) :: !acc);
  (* reading the log back is sequential I/O, one read per log page *)
  let pages = (!bytes + Page.size - 1) / Page.size in
  for _ = 1 to pages do
    Engine.charge t.engine Cost_model.Sequential_read
  done;
  let a =
    {
      records = Array.of_list (List.rev !acc);
      statuses = Hashtbl.create 64;
      aborted = Hashtbl.create 16;
    }
  in
  (match anchor with
  | None -> ()
  | Some (_, c) ->
      List.iter
        (fun (tid, coordinator) ->
          set_status a (Tid.top_level tid) (Prepared coordinator))
        c.prepared;
      List.iter
        (fun (tid, _) ->
          let top = Tid.top_level tid in
          if not (Hashtbl.mem a.statuses top) then set_status a top Active)
        c.active_txns);
  Array.iter
    (fun (_, record) ->
      match record with
      | Record.Txn_begin tid | Record.Update_value { tid; _ }
      | Record.Update_operation { tid; _ } ->
          let top = Tid.top_level tid in
          if not (Hashtbl.mem a.statuses top) then set_status a top Active
      | Record.Txn_prepare (tid, coordinator) ->
          set_status a (Tid.top_level tid) (Prepared coordinator)
      | Record.Txn_commit tid -> set_status a (Tid.top_level tid) Committed
      | Record.Txn_abort tid ->
          Hashtbl.replace a.aborted tid ();
          if Tid.is_top tid then set_status a tid Aborted
      | Record.Txn_end _ | Record.Checkpoint _ | Record.Paxos_promise _
      | Record.Paxos_accept _ | Record.Paxos_decision _ ->
          (* Paxos acceptor records track consensus on foreign
             transactions, not local transaction status *)
          ()
      | Record.Dependency _ ->
          (* redo-ordering metadata; the parallel scheduler consumes it *)
          ())
    a.records;
  a

(* An update by [tid] survives iff no logged abort covers it and its
   top-level transaction committed or prepared. *)
let winner a tid =
  (not (covered_by_abort a tid))
  &&
  match status_of a (Tid.top_level tid) with
  | Committed | Prepared _ -> true
  | Aborted | Active -> false

(* Pass 2 for operation logging: repeat history forward, gated by the
   sector sequence numbers so already-reflected effects are skipped.
   The per-record body is shared with the parallel scheduler, which
   calls it under the redo graph's ordering instead of log order. *)
let apply_op_redo t a i =
  match a.records.(i) with
  | lsn, Record.Update_operation u ->
      let needs_redo =
        u.pages = []
        || List.exists (fun pid -> Disk.seqno (Vm.disk t.vm) pid < lsn) u.pages
      in
      if needs_redo then begin
        hook t "op_redo" lsn;
        small_msg t;
        (op_handler t u.server).redo ~op:u.operation ~arg:u.redo_arg;
        Vm.note_pages t.vm u.pages ~lsn;
        match t.replayed_pages with
        | Some set -> List.iter (fun pid -> Hashtbl.replace set pid ()) u.pages
        | None -> ()
      end
  | _ -> ()

let op_redo_pass t a =
  Array.iteri (fun i _ -> apply_op_redo t a i) a.records

(* Pass 3 for operation logging: undo losers backward. History was
   repeated in pass 2, so every loser effect is present. Always serial:
   an undo walks a single transaction's chain newest-first, and chains
   of different losers may touch the same objects. *)
let apply_op_undo t a i =
  match a.records.(i) with
  | lsn, Record.Update_operation u when not (winner a u.tid) ->
      hook t "op_undo" lsn;
      small_msg t;
      (op_handler t u.server).undo ~op:u.operation ~arg:u.undo_arg;
      Vm.note_pages t.vm u.pages ~lsn;
      (match t.replayed_pages with
      | Some set -> List.iter (fun pid -> Hashtbl.replace set pid ()) u.pages
      | None -> ())
  | _ -> ()

let op_undo_pass t a =
  for i = Array.length a.records - 1 downto 0 do
    apply_op_undo t a i
  done

(* The single backward pass of value recovery: the newest record for an
   object decides it. A winner's new value finalizes the object; loser
   records keep restoring older old-values until the oldest one — whose
   old value is the last committed image — has been applied.

   Like the operation redo pass, the restores are gated by the sector
   sequence numbers: a winner whose page already carries a sequence
   number at or past its LSN is on disk exactly as logged (the page-out
   snapshot covers every update noted by then, and winners are never
   undone in place), so nothing need be read or written; a loser whose
   page's sequence number is below its LSN never reached the segment,
   so there is nothing to undo and the walk continues toward the last
   committed image. *)
let apply_value t a finalized i =
  match a.records.(i) with
  | lsn, Record.Update_value u ->
      if not (Obj_set.mem finalized u.obj) then begin
        let on_disk =
          (* value-logged objects fit one page (checked at log_value) *)
          List.for_all
            (fun pid -> Disk.seqno (Vm.disk t.vm) pid >= lsn)
            (Object_id.pages u.obj)
        in
        let mark () =
          match t.replayed_pages with
          | Some set ->
              List.iter
                (fun pid -> Hashtbl.replace set pid ())
                (Object_id.pages u.obj)
          | None -> ()
        in
        if winner a u.tid then begin
          if not on_disk then begin
            hook t "value_redo" lsn;
            restore_value t u.obj u.new_value;
            Vm.note_pages t.vm (Object_id.pages u.obj) ~lsn;
            mark ()
          end;
          Obj_set.add finalized u.obj ()
        end
        else if on_disk then begin
          hook t "value_undo" lsn;
          restore_value t u.obj u.old_value;
          Vm.note_pages t.vm (Object_id.pages u.obj) ~lsn;
          mark ()
        end
      end
  | _ -> ()

let value_backward_pass t a =
  let finalized = Obj_set.create 64 in
  for i = Array.length a.records - 1 downto 0 do
    apply_value t a finalized i
  done

(* Shared restart bookkeeping: roll-back records for the losers, the
   in-doubt set, and the re-registered in-doubt update chains a later
   [abort] must be able to walk. *)
let resolve_outcome t a =
  (* Roll-back records for the losers that never logged an outcome. *)
  let losers =
    Hashtbl.fold
      (fun tid status acc -> if status = Active then tid :: acc else acc)
      a.statuses []
    |> List.sort Tid.compare
  in
  List.iter
    (fun tid -> ignore (Log_manager.append t.log (Record.Txn_abort tid)))
    losers;
  let in_doubt =
    Hashtbl.fold
      (fun tid status acc ->
        match status with Prepared c -> (tid, c) :: acc | _ -> acc)
      a.statuses []
    |> List.sort compare
  in
  let in_doubt_tops = Hashtbl.create 8 in
  List.iter (fun (tid, _) -> Hashtbl.replace in_doubt_tops tid ()) in_doubt;
  let written_objects =
    Array.to_list a.records
    |> List.filter_map (fun (_, record) ->
           match record with
           | Record.Update_value u
             when Hashtbl.mem in_doubt_tops (Tid.top_level u.tid) ->
               Some (u.tid, u.obj)
           | _ -> None)
  in
  (* In-doubt transactions may yet be told to abort by their
     coordinator: re-register their update chains so a later
     [abort] can walk them. *)
  let chains = Hashtbl.create 8 in
  Array.iter
    (fun (lsn, record) ->
      match record with
      | (Record.Update_value { tid; _ } | Record.Update_operation { tid; _ })
        when Hashtbl.mem in_doubt_tops (Tid.top_level tid) -> (
          match Hashtbl.find_opt chains tid with
          | None -> Hashtbl.add chains tid (lsn, lsn)
          | Some (first, _) -> Hashtbl.replace chains tid (first, lsn))
      | _ -> ())
    a.records;
  (* sorted: hashtable iteration order depends on tid hashing, and the
     restore order must not vary between runs of the same crash *)
  Hashtbl.fold (fun tid (first, last) acc -> (tid, first, last) :: acc) chains []
  |> List.sort compare
  |> List.iter (fun (tid, first, last) ->
         Log_manager.restore_chain t.log ~tid ~first ~last);
  (losers, in_doubt, written_objects, chains)

(* Paxos Commit acceptor state must survive post-restart reclamation: it
   belongs to no local transaction chain, so the keep_from floor would
   eat it. Condense it — for a decided transaction only the decision
   matters; for an undecided one the highest promise and the highest-
   ballot accept per participant instance — so it can be re-appended
   above the reclaimed prefix, where truncation cannot reach. *)
let condense_paxos a =
    let promises = Hashtbl.create 4 (* tid -> max ballot *) in
    let accepts = Hashtbl.create 4 (* (tid, part) -> (ballot, yes) *) in
    let decisions = Hashtbl.create 4 (* tid -> committed *) in
    let tids = ref [] in
    let note tid = if not (List.mem tid !tids) then tids := tid :: !tids in
    Array.iter
      (fun (_, record) ->
        match record with
        | Record.Paxos_promise { tid; ballot } ->
            note tid;
            let prev =
              Option.value (Hashtbl.find_opt promises tid) ~default:(-1)
            in
            if ballot > prev then Hashtbl.replace promises tid ballot
        | Record.Paxos_accept { tid; part; ballot; yes } ->
            note tid;
            let prev =
              match Hashtbl.find_opt accepts (tid, part) with
              | Some (b, _) -> b
              | None -> -1
            in
            if ballot >= prev then Hashtbl.replace accepts (tid, part) (ballot, yes)
        | Record.Paxos_decision { tid; committed } ->
            note tid;
            Hashtbl.replace decisions tid committed
        | _ -> ())
      a.records;
    List.concat_map
      (fun tid ->
        match Hashtbl.find_opt decisions tid with
        | Some committed -> [ Record.Paxos_decision { tid; committed } ]
        | None ->
            let promise =
              match Hashtbl.find_opt promises tid with
              | Some ballot -> [ Record.Paxos_promise { tid; ballot } ]
              | None -> []
            in
            promise
            @ (Hashtbl.fold
                 (fun (t', part) (ballot, yes) acc ->
                   if Tid.equal t' tid then (part, ballot, yes) :: acc
                   else acc)
                 accepts []
              (* sorted by participant: the re-appended acceptor records
                 land on the log in a hash-order-free, reproducible
                 sequence *)
              |> List.sort compare
              |> List.map (fun (part, ballot, yes) ->
                     Record.Paxos_accept { tid; part; ballot; yes })))
      (List.sort Tid.compare !tids)

let finish_statuses t a =
  t.last_statuses <-
    List.sort compare
      (Hashtbl.fold (fun tid s acc -> (tid, s) :: acc) a.statuses [])

let trace_recovered t a ~losers ~in_doubt =
  if Engine.tracing t.engine then
    Engine.emit t.engine
      (Rm_recovered
         {
           node = t.node;
           scanned = Array.length a.records;
           losers = List.length losers;
           in_doubt = List.length in_doubt;
         })

(* Instant restart ----------------------------------------------------- *)

let record_pages a i =
  match a.records.(i) with
  | _, Record.Update_operation u -> u.pages
  | _, Record.Update_value u -> Object_id.pages u.obj
  | _ -> []

(* Index the phase graphs by page and park every chain. A page's
   [od_page_first] is the LSN of its oldest parked record: the recovery
   LSN a window checkpoint reports for it, and the log floor it pins. *)
let build_ondemand a g =
  let od_op_members = Parallel_redo.op_members g in
  let od_op_preds = Parallel_redo.op_preds g in
  let od_val_members = Parallel_redo.value_members g in
  let od_val_preds = Parallel_redo.value_preds g in
  let od_page_ops = Hashtbl.create 64 in
  let od_page_values = Hashtbl.create 64 in
  let od_page_first = Hashtbl.create 64 in
  let od_pending = Hashtbl.create 64 in
  let index tbl members =
    Array.iteri
      (fun pos i ->
        let lsn = fst a.records.(i) in
        List.iter
          (fun pid ->
            Hashtbl.replace tbl pid
              (pos :: Option.value (Hashtbl.find_opt tbl pid) ~default:[]);
            (match Hashtbl.find_opt od_page_first pid with
            | Some f when f <= lsn -> ()
            | Some _ | None -> Hashtbl.replace od_page_first pid lsn);
            Hashtbl.replace od_pending pid ())
          (record_pages a i))
      members
  in
  index od_page_ops od_op_members;
  index od_page_values od_val_members;
  (* Loser-undo members: operation records of non-winners, chained
     newest-first per page like the value phase. Their pages are
     already pending via the op index; this adds the undo ordering. *)
  let undo_list = ref [] in
  for i = Array.length a.records - 1 downto 0 do
    match a.records.(i) with
    | _, Record.Update_operation u when not (winner a u.tid) ->
        undo_list := i :: !undo_list
    | _ -> ()
  done;
  let od_undo_members = Array.of_list !undo_list in
  let um = Array.length od_undo_members in
  let od_undo_preds = Array.make um [] in
  let last = Hashtbl.create 16 in
  for pos = um - 1 downto 0 do
    List.iter
      (fun pid ->
        (match Hashtbl.find_opt last pid with
        | Some newer when not (List.mem newer od_undo_preds.(pos)) ->
            od_undo_preds.(pos) <- newer :: od_undo_preds.(pos)
        | Some _ | None -> ());
        Hashtbl.replace last pid pos)
      (record_pages a od_undo_members.(pos))
  done;
  let od_page_undos = Hashtbl.create 16 in
  index od_page_undos od_undo_members;
  {
    od_analysis = a;
    od_op_members;
    od_op_preds;
    od_op_applied = Array.make (Array.length od_op_members) false;
    od_page_ops;
    od_val_members;
    od_val_preds;
    od_val_applied = Array.make (Array.length od_val_members) false;
    od_page_values;
    od_finalized = Obj_set.create 64;
    od_undo_members;
    od_undo_preds;
    od_undo_applied = Array.make um false;
    od_page_undos;
    od_pending;
    od_page_first;
    od_redo_done = Hashtbl.create 64;
    od_paxos_floor = None;
    od_owner = -1;
    od_latch = Engine.Waitq.create ();
    od_applies = 0;
  }

(* Predecessor closure of a set of member positions, sorted. Applying a
   closure in priority order respects every edge: both phase graphs
   only have edges from lower to higher priority. *)
let closure preds seeds =
  let seen = Hashtbl.create 32 in
  let rec visit pos =
    if not (Hashtbl.mem seen pos) then begin
      Hashtbl.add seen pos ();
      List.iter visit preds.(pos)
    end
  in
  List.iter visit seeds;
  List.sort compare (Hashtbl.fold (fun pos () acc -> pos :: acc) seen [])

let page_members tbl pid = Option.value (Hashtbl.find_opt tbl pid) ~default:[]

(* Replay the redo side of [pid]'s parked chain: the operation-phase
   closure in forward order, then the value-phase closure newest-first.
   Cross-page predecessors are applied too and never re-applied later —
   the applied flags, not the sector-seqno gates, are what makes the
   serving window safe: a page already recovered and re-written by new
   transactions carries a high seqno, which must not resurrect a shared
   multi-page record. *)
let ensure_redo t st pid =
  if not (Hashtbl.mem st.od_redo_done pid) then begin
    List.iter
      (fun pos ->
        if not st.od_op_applied.(pos) then begin
          st.od_op_applied.(pos) <- true;
          st.od_applies <- st.od_applies + 1;
          apply_op_redo t st.od_analysis st.od_op_members.(pos)
        end)
      (closure st.od_op_preds (page_members st.od_page_ops pid));
    List.iter
      (fun pos ->
        if not st.od_val_applied.(pos) then begin
          st.od_val_applied.(pos) <- true;
          st.od_applies <- st.od_applies + 1;
          apply_value t st.od_analysis st.od_finalized st.od_val_members.(pos)
        end)
      (List.rev (closure st.od_val_preds (page_members st.od_page_values pid)));
    Hashtbl.replace st.od_redo_done pid ()
  end

(* Undo [pid]'s loser records: history is first repeated on every page
   a needed undo touches (undo assumes the loser effect is present),
   then the needed closure is applied newest-first — the serial
   backward pass restricted to the records that matter for [pid]. *)
let undo_stage t st pid =
  let needed = closure st.od_undo_preds (page_members st.od_page_undos pid) in
  List.iter
    (fun pos ->
      List.iter
        (fun q -> ensure_redo t st q)
        (record_pages st.od_analysis st.od_undo_members.(pos)))
    needed;
  List.iter
    (fun pos ->
      if not st.od_undo_applied.(pos) then begin
        st.od_undo_applied.(pos) <- true;
        st.od_applies <- st.od_applies + 1;
        apply_op_undo t st.od_analysis st.od_undo_members.(pos)
      end)
    (List.rev needed)

let page_recovered st pid =
  List.for_all
    (fun pos -> st.od_op_applied.(pos))
    (page_members st.od_page_ops pid)
  && List.for_all
       (fun pos -> st.od_val_applied.(pos))
       (page_members st.od_page_values pid)
  && List.for_all
       (fun pos -> st.od_undo_applied.(pos))
       (page_members st.od_page_undos pid)

let recover_page t st pid ~via =
  st.od_owner <- Engine.fiber_id ();
  st.od_applies <- 0;
  ensure_redo t st pid;
  undo_stage t st pid;
  (* cross-page closures can complete neighbouring pages too: sweep *)
  let completed =
    Hashtbl.fold
      (fun q () acc -> if page_recovered st q then q :: acc else acc)
      st.od_pending []
    |> List.sort compare
  in
  let m = Metrics.recovery (Engine.metrics t.engine) ~node:t.node in
  List.iter
    (fun q ->
      Hashtbl.remove st.od_pending q;
      match via with
      | `Fault -> m.Metrics.ondemand_pages <- m.Metrics.ondemand_pages + 1
      | `Trickle -> m.Metrics.trickle_pages <- m.Metrics.trickle_pages + 1)
    completed;
  m.Metrics.pending_pages <- Hashtbl.length st.od_pending;
  if Engine.tracing t.engine then
    Engine.emit t.engine
      (Rm_ondemand_redo
         {
           node = t.node;
           segment = pid.Disk.segment;
           page = pid.Disk.page;
           records = st.od_applies;
           via = (match via with `Fault -> "fault" | `Trickle -> "trickle");
           pending = Hashtbl.length st.od_pending;
         });
  st.od_owner <- -1;
  ignore (Engine.Waitq.signal_all st.od_latch ~engine:t.engine ())

(* The Vm access gate. Every page access lands here first; if the
   page's chain is parked, the accessor replays it before proceeding.
   One replay at a time node-wide — the graph state is shared — so a
   second accessor waits on the latch; the owner's own nested faults
   (replay pins pages too) pass straight through. *)
let ondemand_gate t pid =
  match t.ondemand with
  | None -> ()
  | Some st ->
      if st.od_owner <> Engine.fiber_id () then begin
        while st.od_owner >= 0 do
          Engine.Waitq.wait st.od_latch
        done;
        if Hashtbl.mem st.od_pending pid then recover_page t st pid ~via:`Fault
      end

(* Every chain is drained: flush the recovered state, close the window
   with a checkpoint, and reclaim the scanned history exactly as an
   eager restart would have. The re-appended Paxos acceptor records
   stay protected until the TM's own floor covers them. *)
let finalize_instant t st =
  t.ondemand <- None;
  Vm.set_on_fault t.vm None;
  Vm.flush_all t.vm;
  let ck = checkpoint t in
  let keep_from =
    match Log_manager.oldest_first_lsn t.log with
    | Some first -> min ck first
    | None -> ck
  in
  let keep_from =
    List.fold_left (fun acc (_, r) -> min acc r) keep_from
      (Vm.dirty_pages t.vm)
  in
  let keep_from =
    match st.od_paxos_floor with Some f -> min keep_from f | None -> keep_from
  in
  let keep_from =
    match t.truncation_floor_source () with
    | Some f -> min keep_from f
    | None -> keep_from
  in
  Log_manager.truncate t.log ~keep_from

let trickle_pause = 10_000

(* Background drain: oldest parked chain first (its records pin the
   log-truncation floor), one page per pause, chosen hash-order-free so
   runs of the same crash replay identically. Spawned on the node, so a
   crash in the window kills it with the incarnation. *)
let rec trickle_loop t st =
  while st.od_owner >= 0 do
    Engine.Waitq.wait st.od_latch
  done;
  if Hashtbl.length st.od_pending = 0 then finalize_instant t st
  else begin
    (match
       Hashtbl.fold
         (fun pid () best ->
           let first = Hashtbl.find st.od_page_first pid in
           match best with
           | Some (bf, bp) when (bf, bp) <= (first, pid) -> best
           | Some _ | None -> Some (first, pid))
         st.od_pending None
     with
    | Some (_, pid) -> recover_page t st pid ~via:`Trickle
    | None -> ());
    if Hashtbl.length st.od_pending = 0 then finalize_instant t st
    else begin
      Engine.delay trickle_pause;
      trickle_loop t st
    end
  end

(* Restart paths ------------------------------------------------------- *)

(* A full (eager) restart: replay everything, then flush, close with a
   checkpoint, and reclaim the scanned prefix so repeated crashes do
   not re-read ever-growing history. Chains of in-doubt transactions
   must stay walkable for a late Abort verdict, and the closing
   checkpoint carries them so the next restart can anchor on it. *)
let recover_full t a ~t0 =
  let replay_start = Engine.now t.engine in
  let replayed = Hashtbl.create 32 in
  t.replayed_pages <- Some replayed;
  let graph =
    match t.parallel with
    | None ->
        op_redo_pass t a;
        value_backward_pass t a;
        None
    | Some { Parallel_redo.fibers } ->
        (* Graph-bounded fan-out: both redo passes drain their
           dependency graphs over [fibers] worker fibers. The undo pass
           below stays serial — it walks loser chains newest-first. *)
        let g = Parallel_redo.build a.records in
        Parallel_redo.run_op_phase g t.engine ~node:t.node ~fibers
          ~apply:(apply_op_redo t a);
        let finalized = Obj_set.create 64 in
        Parallel_redo.run_value_phase g t.engine ~node:t.node ~fibers
          ~apply:(apply_value t a finalized);
        Some (Parallel_redo.stats g)
  in
  op_undo_pass t a;
  t.replayed_pages <- None;
  let m = Metrics.recovery (Engine.metrics t.engine) ~node:t.node in
  m.Metrics.restart_pages <- m.Metrics.restart_pages + Hashtbl.length replayed;
  let replay_us = Engine.now t.engine - replay_start in
  let losers, in_doubt, written_objects, chains = resolve_outcome t a in
  (* Segments must reflect exactly committed + prepared work. *)
  Vm.flush_all t.vm;
  Log_manager.force_all t.log;
  let keep_from =
    Hashtbl.fold (fun _ (first, _) acc -> min acc first) chains
      (Log_manager.next_lsn t.log)
  in
  let family_first = Hashtbl.create 8 in
  Hashtbl.iter
    (fun tid (first, _) ->
      let top = Tid.top_level tid in
      match Hashtbl.find_opt family_first top with
      | Some f when f <= first -> ()
      | Some _ | None -> Hashtbl.replace family_first top first)
    chains;
  let ck =
    Log_manager.append t.log
      (Record.Checkpoint
         {
           dirty_pages = Vm.dirty_pages t.vm;
           active_txns =
             List.map
               (fun (tid, _) -> (tid, Hashtbl.find_opt family_first tid))
               in_doubt;
           prepared = in_doubt;
         })
  in
  let paxos =
    List.map (fun r -> (Log_manager.append t.log r, r)) (condense_paxos a)
  in
  Log_manager.force_all t.log;
  let keep_from =
    List.fold_left (fun acc (_, r) -> min acc r) (min keep_from ck)
      (Vm.dirty_pages t.vm)
  in
  Log_manager.truncate t.log ~keep_from;
  finish_statuses t a;
  trace_recovered t a ~losers ~in_doubt;
  {
    losers;
    in_doubt;
    written_objects;
    records_scanned = Array.length a.records;
    replay_us;
    graph;
    paxos;
    open_early = false;
    time_to_open_us = Engine.now t.engine - t0;
  }

(* Instant restart: open after analysis. Redo and loser undo are parked
   as per-page chains; the first touch of a page replays its chain
   behind the access gate, and the trickle fiber drains the rest
   oldest-first, then finalizes. Bookkeeping that later traffic depends
   on — loser roll-back records, in-doubt chains, condensed Paxos
   acceptor state — still happens before opening: it costs log appends
   and one force, not replay I/O. *)
let recover_instant t a ~t0 =
  let losers, in_doubt, written_objects, chains = resolve_outcome t a in
  ignore chains;
  let paxos =
    List.map (fun r -> (Log_manager.append t.log r, r)) (condense_paxos a)
  in
  Log_manager.force_all t.log;
  let g = Parallel_redo.build a.records in
  let st = build_ondemand a g in
  st.od_paxos_floor <-
    List.fold_left
      (fun acc (lsn, _) ->
        match acc with Some f when f <= lsn -> acc | _ -> Some lsn)
      None paxos;
  t.ondemand <- Some st;
  Vm.set_on_fault t.vm (Some (fun pid -> ondemand_gate t pid));
  ignore (Engine.spawn t.engine ~node:t.node (fun () -> trickle_loop t st));
  let m = Metrics.recovery (Engine.metrics t.engine) ~node:t.node in
  m.Metrics.pending_pages <- Hashtbl.length st.od_pending;
  finish_statuses t a;
  trace_recovered t a ~losers ~in_doubt;
  {
    losers;
    in_doubt;
    written_objects;
    records_scanned = Array.length a.records;
    replay_us = 0;
    graph = Some (Parallel_redo.stats g);
    paxos;
    open_early = true;
    time_to_open_us = Engine.now t.engine - t0;
  }

let recover ?anchored t =
  let t0 = Engine.now t.engine in
  t.recovering <- true;
  let a = analyze ?anchored t in
  let outcome =
    if t.instant then recover_instant t a ~t0 else recover_full t a ~t0
  in
  t.recovering <- false;
  ignore (Engine.Waitq.signal_all t.open_q ~engine:t.engine ());
  outcome

let recovering t = t.recovering

(* Park until [recover] returns — the moment the node opens. On an
   instant restart that is right after analysis; on a full restart it is
   after replay, so a request racing recovery waits for a consistent
   store instead of reading pages the redo passes have not reached yet.
   Free when the node is already open: not even a suspension. *)
let await_open t =
  while t.recovering do
    Engine.Waitq.wait t.open_q
  done

let statuses t = t.last_statuses
