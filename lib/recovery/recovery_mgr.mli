(** The Recovery Manager: log access coordination, write-ahead-log
    enforcement, transaction abort, checkpointing, log reclamation, and
    crash recovery (Section 3.2.2).

    Both of the paper's recovery techniques co-exist over the common log:

    - {e value logging} — old/new images restored in a single backward
      pass at crash recovery;
    - {e operation logging} — server-registered logical undo/redo,
      replayed by a three-pass algorithm (analysis, redo, undo) gated by
      the 39-bit per-sector sequence numbers the kernel writes atomically
      with each page.

    A [t] is volatile; after a crash build a fresh one over the surviving
    stable log and disk, then call {!recover}. *)

type t

(** Status of a top-level transaction as determined from the log. *)
type txn_status =
  | Committed
  | Aborted
  | Prepared of int  (** in doubt; argument is the coordinator node *)
  | Active  (** no outcome on the log: a loser at crash recovery *)

(** Trace events: a checkpoint record written (with the table sizes it
    captured), the completion of a crash-recovery pass, and — under
    instant restart — each parked per-page chain replayed after the
    node opened ([via] is ["fault"] for redo-on-first-touch, ["trickle"]
    for the background drain; [records] counts the chain records the
    replay drained, [pending] the chains still parked afterwards). *)
type Tabs_sim.Trace.event +=
  | Rm_checkpoint of {
      node : int;
      lsn : int;
      dirty : int;
      active : int;
      prepared : int;
    }
  | Rm_recovered of {
      node : int;
      scanned : int;
      losers : int;
      in_doubt : int;
    }
  | Rm_ondemand_redo of {
      node : int;
      segment : int;
      page : int;
      records : int;
      via : string;
      pending : int;
    }

(** Logical undo/redo callbacks a data server registers for its
    operation-logged objects. They run during abort and crash recovery,
    with the server's recoverable segment already mapped; [redo] must be
    idempotent at page granularity (the sequence-number gate is
    per page). *)
type op_handler = { redo : op:string -> arg:string -> unit;
                    undo : op:string -> arg:string -> unit }

(** The summary {!recover} returns to the node's Transaction Manager. *)
type recovery_outcome = {
  losers : Tabs_wal.Tid.t list;
      (** active transactions rolled back (abort records written) *)
  in_doubt : (Tabs_wal.Tid.t * int) list;
      (** prepared transactions and their coordinator nodes; their
          updates are applied but their locks must be re-taken until the
          coordinator's verdict arrives *)
  written_objects : (Tabs_wal.Tid.t * Tabs_wal.Object_id.t) list;
      (** objects updated by in-doubt transactions, for lock
          re-acquisition *)
  records_scanned : int;
  replay_us : int;
      (** virtual microseconds spent in the redo and undo passes —
          excludes the analysis scan, so the effect of parallel redo
          fan-out is measurable in isolation *)
  graph : Parallel_redo.stats option;
      (** shape of the redo dependency graph when parallel recovery
          replayed it; [None] after a serial replay *)
  paxos : (Tabs_wal.Record.lsn * Tabs_wal.Record.t) list;
      (** surviving Paxos Commit acceptor records (condensed: decisions
          for decided transactions; highest promise and highest-ballot
          accepts for undecided ones), already re-appended above the
          closing checkpoint so reclamation cannot eat them. The
          Transaction Manager reseeds its acceptor from these; the LSNs
          restore the acceptor's log-truncation floor. *)
  open_early : bool;
      (** instant restart: the node opened right after the analysis
          scan, with redo parked as per-page chains; [false] after a
          full (eager) replay *)
  time_to_open_us : int;
      (** virtual microseconds from entering {!recover} until the node
          could accept transactions — the whole recovery for an eager
          restart, analysis plus bookkeeping only for an instant one *)
}

(** [create engine ~node ~log ~vm ?profile ?group_commit
    ?log_space_limit ()] — under {!Tabs_sim.Profile.Integrated} the
    Recovery Manager is co-located with the Transaction Manager and the
    kernel (Section 5.3), so the TM's log-record traffic to it costs no
    message primitives (the hops are counted as elided); under [Classic]
    (the default) each hop is an Accent small message, as the paper
    measured. [?group_commit] starts a {!Group_commit} force batcher
    through which {!force_through} coalesces concurrent commit-protocol
    forces; omitted (the default), every force pays its own
    stable-storage round, exactly as the paper measured.
    [?checkpointing] starts a background {!Checkpointer} daemon that
    trickle-writes dirty pages, takes periodic fuzzy checkpoints, and
    reclaims the log in the background — with it configured,
    {!maybe_reclaim} never flushes on the foreground path. Omitted (the
    default), checkpoints happen only where callers ask for them,
    exactly as before. [?parallel_recovery] turns on dependency-record
    emission for this incarnation and makes {!recover} drain the redo
    graph over the configured number of simulator fibers; omitted (the
    default), no dependency record is written and replay is serial —
    the log and every virtual timing are byte-identical to a build
    without the feature. [?instant_restart] (default [false]) makes
    {!recover} open the node after the analysis scan alone: redo and
    loser undo are parked as per-page chains, replayed on first touch
    behind the {!Tabs_accent.Vm} access gate and drained by a
    background trickle fiber oldest-chain-first; it also turns on
    dependency-record emission (the chains come from the same phase
    graphs parallel recovery schedules). Off, nothing changes: no gate
    is installed and the restart path is byte-identical. *)
val create :
  Tabs_sim.Engine.t ->
  node:int ->
  log:Tabs_wal.Log_manager.t ->
  vm:Tabs_accent.Vm.t ->
  ?profile:Tabs_sim.Profile.t ->
  ?group_commit:Group_commit.config ->
  ?checkpointing:Checkpointer.config ->
  ?log_space_limit:int ->
  ?parallel_recovery:Parallel_redo.config ->
  ?instant_restart:bool ->
  unit ->
  t

val log : t -> Tabs_wal.Log_manager.t

val vm : t -> Tabs_accent.Vm.t

val profile : t -> Tabs_sim.Profile.t

(** [register_op_handler t ~server handler] installs the logical
    undo/redo code for [server]'s operation-logged objects. *)
val register_op_handler : t -> server:string -> op_handler -> unit

(** [set_active_txns_source t f] — the Transaction Manager supplies the
    list of in-progress transactions for checkpoint records. *)
val set_active_txns_source :
  t -> (unit -> (Tabs_wal.Tid.t * Tabs_wal.Record.lsn option) list) -> unit

(** [set_prepared_source t f] — the Transaction Manager supplies the
    prepared-but-unresolved participants (with their coordinator nodes)
    for checkpoint records, so a checkpoint-anchored restart can seed
    its in-doubt table without scanning back to the prepare records. *)
val set_prepared_source : t -> (unit -> (Tabs_wal.Tid.t * int) list) -> unit

(** [set_truncation_floor_source t f] — the Transaction Manager's Paxos
    acceptor supplies the LSN of the oldest log record still backing
    undecided consensus state. Acceptor records join no transaction
    chain, so both reclamation paths (foreground {!maybe_reclaim} and
    the background {!Checkpointer}) consult this extra floor before
    truncating. *)
val set_truncation_floor_source :
  t -> (unit -> Tabs_wal.Record.lsn option) -> unit

(** {2 Forward processing} *)

(** [log_value t ~tid ~obj ~old_value ~new_value] spools a value-logging
    record (one large Accent message from server to Recovery Manager plus
    spooling CPU) and returns its LSN. The caller must hold the object
    pinned; its pages' recovery LSNs are maintained. *)
val log_value :
  t ->
  tid:Tabs_wal.Tid.t ->
  obj:Tabs_wal.Object_id.t ->
  old_value:string ->
  new_value:string ->
  Tabs_wal.Record.lsn

(** [log_operation t ~tid ~server ~op ~undo_arg ~redo_arg ?reads ~objs
    ()] spools an operation-logging record covering the pages of all of
    [objs] — one record may describe an operation on a multi-page
    object. [?reads] names objects the operation read but did not
    write; with dependency logging on, a read-write conflict against
    another family's last write yields a cross-page redo-ordering edge
    that no per-page chain would capture. *)
val log_operation :
  t ->
  tid:Tabs_wal.Tid.t ->
  server:string ->
  op:string ->
  undo_arg:string ->
  redo_arg:string ->
  ?reads:Tabs_wal.Object_id.t list ->
  objs:Tabs_wal.Object_id.t list ->
  unit ->
  Tabs_wal.Record.lsn

(** [append_tm_record t record] writes a transaction-management record on
    behalf of the Transaction Manager (one small message). *)
val append_tm_record : t -> Tabs_wal.Record.t -> Tabs_wal.Record.lsn

(** [force_through t lsn] makes the log stable through [lsn] — the
    commit-protocol force. With group commit enabled the calling fiber
    joins the node's current force batch and may sleep up to the batch
    window; without it the force is issued immediately. *)
val force_through : t -> Tabs_wal.Record.lsn -> unit

(** The force batcher, when one was configured. *)
val group_commit : t -> Group_commit.t option

(** The background checkpoint daemon, when one was configured. *)
val checkpointer : t -> Checkpointer.t option

(** {2 Abort}

    [abort t ~tid] follows the backward chain of [tid]'s log records,
    restoring value-logged objects and invoking operation undo handlers,
    then writes the abort record. Undoes only [tid]'s own updates (a
    subtransaction aborts independently of its parent). *)
val abort : t -> tid:Tabs_wal.Tid.t -> unit

(** {2 Checkpoints and reclamation} *)

(** [checkpoint t] writes a {e fuzzy} checkpoint record — the dirty
    pages with their recovery LSNs, the first-update LSN of every live
    transaction family, and the unresolved prepared participants — and
    forces the log. No data page is written. *)
val checkpoint : t -> Tabs_wal.Record.lsn

(** [maybe_reclaim t] runs the reclamation algorithm if the live log
    exceeds the space limit. With a {!Checkpointer} configured it only
    requests a background cycle and returns [false] — the foreground
    transaction never flushes. Without one it forces pages to disk
    ("before they would otherwise be written"), checkpoints, and
    truncates the log prefix no longer needed by any dirty page, active
    transaction, or in-doubt participant. Returns true if space was
    reclaimed synchronously. *)
val maybe_reclaim : t -> bool

(** {2 Crash recovery} *)

(** [recover t] runs at node restart: value-logged objects are restored
    in one backward pass; operation-logged objects by
    analysis/redo/undo passes gated on sector sequence numbers. Abort
    records are written for losers; disk pages are flushed so the
    segments reflect exactly the committed and prepared transactions.

    By default the analysis scan is anchored at the last stable
    checkpoint: it starts at the minimum of the checkpoint's LSN, its
    dirty pages' recovery LSNs, and its live families' first-update
    LSNs, seeding transaction statuses from the checkpoint's tables.
    [~anchored:false] forces the pre-checkpoint behavior — a full scan
    of the live log — for comparison and cross-checking.

    With [?parallel_recovery] configured at {!create}, the redo passes
    (operation forward, value backward) are drained over N simulator
    fibers under the dependency graph of {!Parallel_redo}; the undo
    pass stays serial. With one fiber the schedule is exactly the
    serial order, record for record.

    With [?instant_restart] configured at {!create}, [recover] returns
    right after the analysis scan and the restart bookkeeping (loser
    roll-back records, in-doubt chain re-registration, Paxos acceptor
    condensation): the outcome has [open_early = true], [replay_us = 0],
    and every page's redo work parked. The first transaction to touch a
    page replays that page's chain before its access proceeds; a
    trickle fiber replays untouched pages oldest-first and, once every
    chain is drained, flushes, checkpoints, and reclaims the log as an
    eager restart would have. Fuzzy checkpoints taken while chains are
    parked report those pages at their oldest parked record, so a
    re-crash in the serving window recovers correctly. *)
val recover : ?anchored:bool -> t -> recovery_outcome

(** [recovering t] is true while a {!recover} call is in progress. In
    that window the chain table rebuilt from the log is incomplete, so
    the Recovery Manager pins its reclamation floor at the log's first
    retained record and the checkpoint daemon skips its cycles — a
    truncation decided mid-recovery would otherwise eat undo records
    that in-doubt transactions still need. *)
val recovering : t -> bool

(** [await_open t] parks the calling fiber until the in-progress
    {!recover} returns — the moment the node opens for service. Server
    operations racing a restart call this before touching data: on a
    full restart the store is consistent only after replay, and on an
    instant restart analysis must finish installing the per-page gates
    first. Free (not even a suspension) when the node is already
    open. *)
val await_open : t -> unit

(** [set_apply_hook t (Some f)] installs test instrumentation: [f] is
    called, in application order, for every redo or undo actually
    applied by {!recover} — [~phase] is ["op_redo"], ["value_redo"],
    ["value_undo"], or ["op_undo"] — from both the serial and the
    parallel replay paths. [None] (the default) costs nothing. *)
val set_apply_hook :
  t -> (phase:string -> lsn:Tabs_wal.Record.lsn -> unit) option -> unit

(** [statuses t] — transaction statuses computed by the last {!recover},
    for the Transaction Manager's restart queries. *)
val statuses : t -> (Tabs_wal.Tid.t * txn_status) list
