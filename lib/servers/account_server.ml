open Tabs_storage
open Tabs_wal
open Tabs_lock
open Tabs_core

let slot_size = 8

let slots_per_page = Page.size / slot_size

type t = { server : Server_lib.t; n_accounts : int }

let server t = t.server

let accounts t = t.n_accounts

let account_obj t i =
  let page = i / slots_per_page and slot = i mod slots_per_page in
  Server_lib.create_object_id t.server
    ~offset:((page * Page.size) + (slot * slot_size))
    ~length:slot_size

let check_range t i =
  if i < 0 || i >= t.n_accounts then
    raise (Errors.Server_error "NoSuchAccount")

let decode_slot s = Int64.to_int (String.get_int64_le s 0)

let encode_slot v =
  let b = Bytes.create slot_size in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Bytes.to_string b

(* A transition-logged adjustment: a list of (account, old, new)
   absolute balances. Applying either side is idempotent. *)
let encode_adjustment entries =
  let w = Codec.Writer.create () in
  Codec.Writer.list w
    (fun w (i, v) ->
      Codec.Writer.int w i;
      Codec.Writer.int w v)
    entries;
  Codec.Writer.contents w

let decode_adjustment s =
  let r = Codec.Reader.of_string s in
  Codec.Reader.list r (fun r ->
      let i = Codec.Reader.int r in
      let v = Codec.Reader.int r in
      (i, v))

let balance t tid i =
  Server_lib.enter_operation t.server tid;
  check_range t i;
  let obj = account_obj t i in
  Server_lib.lock_object t.server tid obj Mode.Read;
  decode_slot (Server_lib.read_object t.server obj)

(* Apply an adjustment through one operation log record. Precondition:
   all objects write-locked by [tid]. *)
let apply_adjustment t tid entries =
  let objs = List.map (fun (i, _, _) -> account_obj t i) entries in
  List.iter (fun obj -> Server_lib.pin_object t.server obj) objs;
  List.iter2
    (fun obj (_, _, new_value) ->
      Server_lib.write_object t.server obj (encode_slot new_value))
    objs entries;
  Server_lib.log_operation t.server tid ~op:"adjust"
    ~undo_arg:(encode_adjustment (List.map (fun (i, old_v, _) -> (i, old_v)) entries))
    ~redo_arg:(encode_adjustment (List.map (fun (i, _, new_v) -> (i, new_v)) entries))
    ~objs ();
  List.iter (fun obj -> Server_lib.unpin_object t.server obj) objs

let deposit t tid i amount =
  Server_lib.enter_operation t.server tid;
  check_range t i;
  let obj = account_obj t i in
  Server_lib.lock_object t.server tid obj Mode.Write;
  let old_value = decode_slot (Server_lib.read_object t.server obj) in
  apply_adjustment t tid [ (i, old_value, old_value + amount) ]

(* The debit half of a cross-server transfer: like [deposit] of a
   negative amount, but with the funds check [transfer] performs — so a
   sharded transfer (withdraw on one shard, deposit on another, one
   atomic transaction) keeps the invariant that no committed balance
   goes negative. *)
let withdraw t tid i amount =
  Server_lib.enter_operation t.server tid;
  check_range t i;
  if amount < 0 then raise (Errors.Server_error "NegativeAmount");
  let obj = account_obj t i in
  Server_lib.lock_object t.server tid obj Mode.Write;
  let old_value = decode_slot (Server_lib.read_object t.server obj) in
  if old_value < amount then raise (Errors.Server_error "InsufficientFunds");
  apply_adjustment t tid [ (i, old_value, old_value - amount) ]

let transfer t tid ~from_ ~to_ amount =
  Server_lib.enter_operation t.server tid;
  check_range t from_;
  check_range t to_;
  if from_ = to_ then raise (Errors.Server_error "SameAccount");
  (* lock in index order to avoid deadlocks between transfers *)
  let first = min from_ to_ and second = max from_ to_ in
  Server_lib.lock_object t.server tid (account_obj t first) Mode.Write;
  Server_lib.lock_object t.server tid (account_obj t second) Mode.Write;
  let from_balance = decode_slot (Server_lib.read_object t.server (account_obj t from_)) in
  let to_balance = decode_slot (Server_lib.read_object t.server (account_obj t to_)) in
  if from_balance < amount then raise (Errors.Server_error "InsufficientFunds");
  (* one multi-page operation record covers both balances *)
  apply_adjustment t tid
    [
      (from_, from_balance, from_balance - amount);
      (to_, to_balance, to_balance + amount);
    ]

(* Commuting blind addition under the type-specific "credit" mode: the
   record carries a delta, so concurrent credits by different
   transactions replay correctly in any serialization. The sequence-
   number gate guarantees each delta is applied exactly once per page
   during the redo pass. *)
let credit t tid i amount =
  Server_lib.enter_operation t.server tid;
  check_range t i;
  let obj = account_obj t i in
  Server_lib.lock_object t.server tid obj (Mode.Typed "credit");
  Server_lib.pin_object t.server obj;
  let balance = decode_slot (Server_lib.read_object t.server obj) in
  Server_lib.write_object t.server obj (encode_slot (balance + amount));
  Server_lib.log_operation t.server tid ~op:"credit"
    ~undo_arg:(encode_adjustment [ (i, -amount) ])
    ~redo_arg:(encode_adjustment [ (i, amount) ])
    ~objs:[ obj ] ();
  Server_lib.unpin_object t.server obj

(* Recovery-time redo/undo. "adjust" records carry absolute balances;
   "credit" records carry deltas. Both run outside any transaction,
   straight against the mapped segment. *)
let install_handlers t =
  let write_absolute ~arg =
    List.iter
      (fun (i, v) ->
        let obj = account_obj t i in
        Server_lib.pin_object t.server obj;
        Server_lib.write_object t.server obj (encode_slot v);
        Server_lib.unpin_object t.server obj)
      (decode_adjustment arg)
  in
  let apply_delta ~arg =
    List.iter
      (fun (i, d) ->
        let obj = account_obj t i in
        Server_lib.pin_object t.server obj;
        let v = decode_slot (Server_lib.read_object t.server obj) in
        Server_lib.write_object t.server obj (encode_slot (v + d));
        Server_lib.unpin_object t.server obj)
      (decode_adjustment arg)
  in
  Server_lib.register_operation t.server ~op:"adjust" ~redo:write_absolute
    ~undo:write_absolute;
  Server_lib.register_operation t.server ~op:"credit" ~redo:apply_delta
    ~undo:apply_delta

(* RPC plumbing ------------------------------------------------------------ *)

let encode_int v =
  let w = Codec.Writer.create () in
  Codec.Writer.int w v;
  Codec.Writer.contents w

let encode_int2 a b =
  let w = Codec.Writer.create () in
  Codec.Writer.int w a;
  Codec.Writer.int w b;
  Codec.Writer.contents w

let encode_int3 a b c =
  let w = Codec.Writer.create () in
  Codec.Writer.int w a;
  Codec.Writer.int w b;
  Codec.Writer.int w c;
  Codec.Writer.contents w

let dispatch t ~tid ~op ~arg =
  let r = Codec.Reader.of_string arg in
  match op with
  | "balance" -> encode_int (balance t tid (Codec.Reader.int r))
  | "deposit" ->
      let i = Codec.Reader.int r in
      let amount = Codec.Reader.int r in
      deposit t tid i amount;
      ""
  | "credit" ->
      let i = Codec.Reader.int r in
      let amount = Codec.Reader.int r in
      credit t tid i amount;
      ""
  | "withdraw" ->
      let i = Codec.Reader.int r in
      let amount = Codec.Reader.int r in
      withdraw t tid i amount;
      ""
  | "transfer" ->
      let from_ = Codec.Reader.int r in
      let to_ = Codec.Reader.int r in
      let amount = Codec.Reader.int r in
      transfer t tid ~from_ ~to_ amount;
      ""
  | other -> raise (Errors.Server_error ("accounts: unknown op " ^ other))

(* "credit" commutes with itself and nothing else *)
let compatible = Mode.with_typed [ ("credit", "credit") ]

let create env ~name ~segment ~accounts () =
  let pages = (accounts + slots_per_page - 1) / slots_per_page in
  let server = Server_lib.create env ~name ~segment ~pages ~compatible () in
  let t = { server; n_accounts = accounts } in
  install_handlers t;
  Server_lib.accept_requests server (dispatch t);
  Server_lib.register_name server ~name ~object_id:"accounts";
  t

let call_balance rpc ~dest ~server tid i =
  Codec.Reader.int
    (Codec.Reader.of_string
       (Rpc.call rpc ~dest ~server ~tid ~op:"balance" ~arg:(encode_int i)))

let call_deposit rpc ~dest ~server tid i amount =
  ignore (Rpc.call rpc ~dest ~server ~tid ~op:"deposit" ~arg:(encode_int2 i amount))

let call_withdraw rpc ~dest ~server tid i amount =
  ignore
    (Rpc.call rpc ~dest ~server ~tid ~op:"withdraw" ~arg:(encode_int2 i amount))

let call_transfer rpc ~dest ~server tid ~from_ ~to_ amount =
  ignore
    (Rpc.call rpc ~dest ~server ~tid ~op:"transfer"
       ~arg:(encode_int3 from_ to_ amount))
