(** An operation-logged account server.

    The paper's libraries exposed only value logging; operation
    (transition) logging was "tested and integrated" but unreleased, and
    Section 7 lists exposing it as future work. This server is that
    extension: balances are updated through {e operation log records}
    that name an operation and carry enough information to redo or undo
    it. Each record stores old and new absolute balances (transition
    logging), making redo and undo idempotent — which the three-pass
    recovery algorithm requires at page granularity.

    The showcase is [transfer]: it touches two balances that may live on
    different pages, yet writes {e one} log record — the multi-page
    advantage of operation logging over value logging called out in
    Section 2.1.3. *)

type t

val create :
  Tabs_core.Server_lib.env ->
  name:string ->
  segment:int ->
  accounts:int ->
  unit ->
  t

val server : t -> Tabs_core.Server_lib.t

val accounts : t -> int

(** [balance t tid i] reads account [i] under a read lock. *)
val balance : t -> Tabs_wal.Tid.t -> int -> int

(** [deposit t tid i amount] adds [amount] (may be negative) under a
    write lock, logging one operation record. *)
val deposit : t -> Tabs_wal.Tid.t -> int -> int -> unit

(** [credit t tid i amount] also adds [amount], but under the
    type-specific lock mode ["credit"], which is compatible with itself:
    two transactions may credit the same account concurrently, because
    blind additions commute. The log record is a {e delta} (redo adds,
    undo subtracts), replayed exactly once per page by the sequence-
    number gate — the combination of type-specific locking and operation
    logging that Sections 4.6 and 7 call the rich environment TABS was
    built to explore. [credit] conflicts with [balance] and [transfer]
    (reading would observe an uncommitted sum). *)
val credit : t -> Tabs_wal.Tid.t -> int -> int -> unit

(** [withdraw t tid i amount] subtracts a non-negative [amount] under a
    write lock with [transfer]'s funds check — the debit half of a
    cross-shard transfer. Raises
    [Tabs_core.Errors.Server_error "InsufficientFunds"] when the balance
    is too small. *)
val withdraw : t -> Tabs_wal.Tid.t -> int -> int -> unit

(** [transfer t tid ~from_ ~to_ amount] moves [amount] atomically,
    logging a single multi-page operation record. Raises
    [Tabs_core.Errors.Server_error "InsufficientFunds"] when the source
    would go negative. *)
val transfer : t -> Tabs_wal.Tid.t -> from_:int -> to_:int -> int -> unit

(** Remote stubs. *)
val call_balance :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  int -> int

val call_deposit :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  int -> int -> unit

val call_withdraw :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  int -> int -> unit

val call_transfer :
  Tabs_core.Rpc.registry -> dest:int -> server:string -> Tabs_wal.Tid.t ->
  from_:int -> to_:int -> int -> unit
