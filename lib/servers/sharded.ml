open Tabs_core

(* Instances are created shard-by-shard on each shard's hosting node;
   the slice is registered in the cluster's placement map once and in
   the hosting node's directory (with its key range), so remote nodes
   can discover ownership with a placement-aware lookup. *)

let deploy_instances cluster ~name create_instance =
  let topo = Cluster.topology cluster in
  List.init (Topology.shards topo) (fun shard ->
      let node = Cluster.shard_node cluster shard in
      let instance =
        Placement.instance_name (Cluster.placement cluster) ~server:name ~shard
      in
      (shard, create_instance ~shard ~node ~instance))

module Int_array = struct
  type t = {
    placement : Placement.t;
    logical : string;
    n_keys : int;
    segment : int;
    instances : (int * Int_array_server.t) list;
  }

  let deploy cluster ~name ~keys ?(segment = 1) () =
    let placement = Cluster.placement cluster in
    Placement.partition placement ~server:name ~keys;
    let instances =
      deploy_instances cluster ~name (fun ~shard ~node ~instance ->
          let lo, hi =
            match
              List.find_opt (fun (s, _, _) -> s = shard)
                (Placement.ranges placement ~server:name)
            with
            | Some (_, lo, hi) -> (lo, hi)
            | None -> assert false
          in
          Placement.publish placement (Node.ns node) ~server:name
            ~only_node:(Some (Node.id node));
          Int_array_server.create (Node.env node) ~name:instance
            ~segment:(segment + shard)
            ~cells:(max 1 (hi - lo))
            ())
    in
    { placement; logical = name; n_keys = keys; segment; instances }

  let keys t = t.n_keys

  let reinstall t ~shard (env : Server_lib.env) =
    let lo, hi =
      match
        List.find_opt (fun (s, _, _) -> s = shard)
          (Placement.ranges t.placement ~server:t.logical)
      with
      | Some (_, lo, hi) -> (lo, hi)
      | None -> invalid_arg "Sharded.Int_array.reinstall: unknown shard"
    in
    let instance =
      Placement.instance_name t.placement ~server:t.logical ~shard
    in
    Placement.publish t.placement env.ns ~server:t.logical
      ~only_node:(Some env.node);
    Int_array_server.create env ~name:instance
      ~segment:(t.segment + shard)
      ~cells:(max 1 (hi - lo))
      ()

  let instances t = t.instances

  let locate t key = Placement.locate t.placement ~server:t.logical ~key

  let get t rpc tid ?access key =
    let loc = locate t key in
    Int_array_server.call_get rpc ~dest:loc.node ~server:loc.instance tid
      ?access (key - loc.base)

  let set t rpc tid ?access key v =
    let loc = locate t key in
    Int_array_server.call_set rpc ~dest:loc.node ~server:loc.instance tid
      ?access (key - loc.base) v
end

module Accounts = struct
  type t = {
    placement : Placement.t;
    logical : string;
    n_accounts : int;
    instances : (int * Account_server.t) list;
  }

  let deploy cluster ~name ~accounts ?(segment = 1) () =
    let placement = Cluster.placement cluster in
    Placement.partition placement ~server:name ~keys:accounts;
    let instances =
      deploy_instances cluster ~name (fun ~shard ~node ~instance ->
          let lo, hi =
            match
              List.find_opt (fun (s, _, _) -> s = shard)
                (Placement.ranges placement ~server:name)
            with
            | Some (_, lo, hi) -> (lo, hi)
            | None -> assert false
          in
          Placement.publish placement (Node.ns node) ~server:name
            ~only_node:(Some (Node.id node));
          Account_server.create (Node.env node) ~name:instance
            ~segment:(segment + shard)
            ~accounts:(max 1 (hi - lo))
            ())
    in
    { placement; logical = name; n_accounts = accounts; instances }

  let accounts t = t.n_accounts

  let instances t = t.instances

  let locate t key = Placement.locate t.placement ~server:t.logical ~key

  let balance t rpc tid i =
    let loc = locate t i in
    Account_server.call_balance rpc ~dest:loc.node ~server:loc.instance tid
      (i - loc.base)

  let deposit t rpc tid i amount =
    let loc = locate t i in
    Account_server.call_deposit rpc ~dest:loc.node ~server:loc.instance tid
      (i - loc.base) amount

  let transfer t rpc tid ~from_ ~to_ amount =
    let from_loc = locate t from_ and to_loc = locate t to_ in
    if from_loc.shard = to_loc.shard then
      Account_server.call_transfer rpc ~dest:from_loc.node
        ~server:from_loc.instance tid ~from_:(from_ - from_loc.base)
        ~to_:(to_ - to_loc.base) amount
    else begin
      (* cross-shard: debit (with the funds check) where the source
         lives, credit where the destination lives; the enclosing
         transaction's tree 2PC makes the pair atomic *)
      Account_server.call_withdraw rpc ~dest:from_loc.node
        ~server:from_loc.instance tid (from_ - from_loc.base) amount;
      Account_server.call_deposit rpc ~dest:to_loc.node
        ~server:to_loc.instance tid (to_ - to_loc.base) amount
    end
end

module Btree = struct
  type t = {
    placement : Placement.t;
    logical : string;
    instances : (int * Btree_server.t) list;
  }

  let deploy cluster ~name ?(segment = 1) () =
    let placement = Cluster.placement cluster in
    Placement.partition_hashed placement ~server:name;
    let instances =
      deploy_instances cluster ~name (fun ~shard ~node ~instance ->
          Btree_server.create (Node.env node) ~name:instance
            ~segment:(segment + shard) ())
    in
    { placement; logical = name; instances }

  let instances t = t.instances

  let locate t key = Placement.locate_hashed t.placement ~server:t.logical ~key

  let insert t rpc tid ~key ~value =
    let loc = locate t key in
    Btree_server.call_insert rpc ~dest:loc.node ~server:loc.instance tid ~key
      ~value

  let lookup t rpc tid ~key =
    let loc = locate t key in
    Btree_server.call_lookup rpc ~dest:loc.node ~server:loc.instance tid ~key

  let delete t rpc tid ~key =
    let loc = locate t key in
    Btree_server.call_delete rpc ~dest:loc.node ~server:loc.instance tid ~key
end
