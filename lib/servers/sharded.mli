(** Sharded data servers: deploy one physical instance per shard of the
    cluster's topology, register the slices in the placement map and the
    directory, and route operations by key.

    A deployment under logical name [n] creates instances
    ["n.s0" .. "n.s<k-1>"], instance [i] on shard [i]'s hosting node in
    disk segment [segment + i] (leave a topology's worth of segment room
    between deployments). Integer keyspaces (int-array, accounts) are
    range-partitioned; the string-keyed B-tree is hash-partitioned.

    Routing is a pure map lookup plus the ordinary {!Tabs_core.Rpc}
    call: an operation whose key lives on the calling node is one local
    Data Server Call (with one shard, exactly the seed's behaviour),
    anything else is an inter-node call, and a transaction that touched
    several shards falls into the existing tree two-phase commit. *)

(** Range-partitioned integer cells ({!Int_array_server} slices). *)
module Int_array : sig
  type t

  val deploy :
    Tabs_core.Cluster.t -> name:string -> keys:int -> ?segment:int -> unit -> t

  val keys : t -> int

  (** [reinstall t ~shard env] re-creates shard [shard]'s physical
      instance against a restarted node's fresh environment (same
      instance name, segment, and cell count as {!deploy} chose) and
      re-publishes the placement map into the node's new directory.
      For use from a {!Tabs_core.Node.restart} [reinstall] callback. *)
  val reinstall : t -> shard:int -> Tabs_core.Server_lib.env -> Int_array_server.t

  (** [instances t] lists [(shard, instance)] (for tests). *)
  val instances : t -> (int * Int_array_server.t) list

  (** [locate t key] exposes the routing decision (for generators that
      want to aim a transaction at its home shard). *)
  val locate : t -> int -> Tabs_core.Placement.location

  val get :
    t -> Tabs_core.Rpc.registry -> Tabs_wal.Tid.t ->
    ?access:[ `Random | `Sequential ] -> int -> int

  val set :
    t -> Tabs_core.Rpc.registry -> Tabs_wal.Tid.t ->
    ?access:[ `Random | `Sequential ] -> int -> int -> unit
end

(** Range-partitioned bank accounts ({!Account_server} slices).
    [transfer] routes each side to its home shard: both on one shard is
    the server's single multi-page operation record; across shards it
    becomes withdraw + deposit in the same transaction — atomicity now
    rests on distributed commit instead of a single record. *)
module Accounts : sig
  type t

  val deploy :
    Tabs_core.Cluster.t ->
    name:string -> accounts:int -> ?segment:int -> unit -> t

  val accounts : t -> int

  val instances : t -> (int * Account_server.t) list

  val locate : t -> int -> Tabs_core.Placement.location

  val balance : t -> Tabs_core.Rpc.registry -> Tabs_wal.Tid.t -> int -> int

  val deposit :
    t -> Tabs_core.Rpc.registry -> Tabs_wal.Tid.t -> int -> int -> unit

  val transfer :
    t -> Tabs_core.Rpc.registry -> Tabs_wal.Tid.t ->
    from_:int -> to_:int -> int -> unit
end

(** Hash-partitioned B-tree ({!Btree_server} slices): key strings are
    FNV-hashed onto shards, so single-key operations are always
    single-shard and multi-key transactions spread. *)
module Btree : sig
  type t

  val deploy :
    Tabs_core.Cluster.t -> name:string -> ?segment:int -> unit -> t

  val instances : t -> (int * Btree_server.t) list

  val locate : t -> string -> Tabs_core.Placement.location

  val insert :
    t -> Tabs_core.Rpc.registry -> Tabs_wal.Tid.t ->
    key:string -> value:string -> unit

  val lookup :
    t -> Tabs_core.Rpc.registry -> Tabs_wal.Tid.t -> key:string ->
    string option

  val delete :
    t -> Tabs_core.Rpc.registry -> Tabs_wal.Tid.t -> key:string -> bool
end
