type primitive =
  | Data_server_call
  | Inter_node_data_server_call
  | Datagram
  | Small_contiguous_message
  | Large_contiguous_message
  | Pointer_message
  | Random_paged_io
  | Sequential_read
  | Stable_storage_write
  | Coalesced_frame

let all =
  [
    Data_server_call;
    Inter_node_data_server_call;
    Datagram;
    Small_contiguous_message;
    Large_contiguous_message;
    Pointer_message;
    Random_paged_io;
    Sequential_read;
    Stable_storage_write;
    Coalesced_frame;
  ]

let index = function
  | Data_server_call -> 0
  | Inter_node_data_server_call -> 1
  | Datagram -> 2
  | Small_contiguous_message -> 3
  | Large_contiguous_message -> 4
  | Pointer_message -> 5
  | Random_paged_io -> 6
  | Sequential_read -> 7
  | Stable_storage_write -> 8
  | Coalesced_frame -> 9

let count = 10

let to_int = index

let name = function
  | Data_server_call -> "Data Server Call"
  | Inter_node_data_server_call -> "Inter-Node Data Server Call"
  | Datagram -> "Datagram"
  | Small_contiguous_message -> "Small Contiguous Message"
  | Large_contiguous_message -> "Large Contiguous Message"
  | Pointer_message -> "Pointer Message"
  | Random_paged_io -> "Random Access Paged I/O"
  | Sequential_read -> "Sequential Read"
  | Stable_storage_write -> "Stable Storage Write"
  | Coalesced_frame -> "Coalesced Extra Frame"

type t = int array

let cost t p = t.(index p)

let make assoc =
  let t = Array.make count 0 in
  List.iter (fun (p, c) -> t.(index p) <- c) assoc;
  t

(* Table 5-1, milliseconds -> microseconds. [Coalesced_frame] is our
   extension, not a paper row: the marginal Communication Manager cost
   of one additional frame riding an already-charged datagram. The
   paper's 11.6 ms/datagram CM cost is mostly per-message protocol
   work, so the marginal frame is priced like copying one more small
   message, well under a tenth of the full datagram. *)
let measured =
  make
    [
      (Data_server_call, 26_100);
      (Inter_node_data_server_call, 89_000);
      (Datagram, 25_000);
      (Small_contiguous_message, 3_000);
      (Large_contiguous_message, 4_400);
      (Pointer_message, 18_300);
      (Random_paged_io, 32_000);
      (Sequential_read, 16_000);
      (Stable_storage_write, 79_000);
      (Coalesced_frame, 2_000);
    ]

(* Table 5-5. *)
let achievable =
  make
    [
      (Data_server_call, 2_500);
      (Inter_node_data_server_call, 9_000);
      (Datagram, 2_000);
      (Small_contiguous_message, 1_000);
      (Large_contiguous_message, 1_250);
      (Pointer_message, 15_000);
      (Random_paged_io, 32_000);
      (Sequential_read, 10_000);
      (Stable_storage_write, 32_000);
      (Coalesced_frame, 400);
    ]

let to_alist t = List.map (fun p -> (p, cost t p)) all
