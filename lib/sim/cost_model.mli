(** Primitive operations and their latency cost models.

    The TABS paper evaluates transaction performance as the repeated
    execution of nine primitive operations (Section 5.1, Table 5-1) and
    projects improvements from an "achievable" cost table (Table 5-5).
    Times are kept in integer microseconds of virtual time. *)

(** The nine primitive operations of Table 5-1, plus one extension of
    ours ({!Coalesced_frame}) used by the comm-batching layer. *)
type primitive =
  | Data_server_call  (** local RPC from application to data server *)
  | Inter_node_data_server_call  (** session-based remote RPC *)
  | Datagram  (** inter-node transaction-management datagram *)
  | Small_contiguous_message  (** intra-node Accent message, < 500 bytes *)
  | Large_contiguous_message  (** intra-node Accent message, ~1100 bytes *)
  | Pointer_message  (** copy-on-write remapped Accent message *)
  | Random_paged_io  (** demand-paged random disk read or read/write *)
  | Sequential_read  (** sequential demand-paged disk read *)
  | Stable_storage_write  (** force of one log page to stable storage *)
  | Coalesced_frame
      (** marginal cost of one extra frame riding a coalesced datagram
          (our extension — not a Table 5-1 row; see
          {!Tabs_net.Comm_mgr}) *)

(** All primitives, in Table 5-1 order ({!Coalesced_frame} last). *)
val all : primitive list

val name : primitive -> string

(** [to_int p] is [p]'s dense index in Table 5-1 order,
    [0 .. count - 1] — a single branchless match, used to key
    per-primitive counter arrays without scanning {!all}. *)
val to_int : primitive -> int

(** [index] is {!to_int} (historical name). *)
val index : primitive -> int

(** Number of primitives ([List.length all]). *)
val count : int

(** A cost model maps each primitive to a latency in microseconds. *)
type t

(** [cost model p] is the latency of [p] in microseconds. *)
val cost : t -> primitive -> int

(** Table 5-1: times measured on the Perq T2 prototype. *)
val measured : t

(** Table 5-5: times deemed achievable by tuning software and adding
    disks. *)
val achievable : t

(** [make assoc] builds a model from per-primitive microsecond costs;
    primitives absent from [assoc] cost zero. *)
val make : (primitive * int) list -> t

(** [to_alist model] lists costs in Table 5-1 order. *)
val to_alist : t -> (primitive * int) list
