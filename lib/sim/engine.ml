exception Killed

type t = {
  mutable now : int;
  events : (unit -> unit) Heap.t;
  metrics : Metrics.t;
  mutable model : Cost_model.t;
  cpu : (string, int ref) Hashtbl.t;
  epochs : (int, int) Hashtbl.t;
  mutable next_fiber : int;
  mutable tracer : Trace.sink option;
}

type fiber = { id : int; node : int option; epoch : int; engine : t }

let create ?(cost_model = Cost_model.measured) () =
  {
    now = 0;
    events = Heap.create ();
    metrics = Metrics.create ();
    model = cost_model;
    cpu = Hashtbl.create 8;
    epochs = Hashtbl.create 8;
    next_fiber = 0;
    tracer = None;
  }

let now t = t.now

let set_cost_model t m = t.model <- m

let cost_model t = t.model

let metrics t = t.metrics

let set_tracer t sink = t.tracer <- sink

let tracing t = match t.tracer with None -> false | Some _ -> true

let emit t ev = match t.tracer with None -> () | Some sink -> sink ~time:t.now ev

let at t ~delay fn =
  assert (delay >= 0);
  Heap.push t.events ~key:(t.now + delay) fn

let node_epoch t node =
  match Hashtbl.find_opt t.epochs node with Some e -> e | None -> 0

let crash_node t node = Hashtbl.replace t.epochs node (node_epoch t node + 1)

let fiber_dead f =
  match f.node with
  | None -> false
  | Some node -> node_epoch f.engine node <> f.epoch

(* Effects: [Suspend reg] hands the fiber's continuation to [reg], which
   stores it (in a wait queue or a timer event) for later resumption.
   [Get_fiber] retrieves the fiber's own identity for scheduling. *)
type _ Effect.t +=
  | Suspend : (('a, unit) Effect.Deep.continuation -> unit) -> 'a Effect.t
  | Get_fiber : fiber Effect.t

let resume (fiber : fiber) k v =
  if fiber_dead fiber then
    try Effect.Deep.discontinue k Killed with Killed -> ()
  else Effect.Deep.continue k v

let spawn t ?node fn =
  let fiber =
    {
      id = t.next_fiber;
      node;
      epoch = (match node with None -> 0 | Some n -> node_epoch t n);
      engine = t;
    }
  in
  t.next_fiber <- t.next_fiber + 1;
  let handler =
    {
      Effect.Deep.retc = (fun () -> ());
      exnc = (fun e -> match e with Killed -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend reg ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  reg k)
          | Get_fiber ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Effect.Deep.continue k fiber)
          | _ -> None);
    }
  in
  at t ~delay:0 (fun () ->
      if not (fiber_dead fiber) then Effect.Deep.match_with fn () handler);
  fiber

let run t =
  let processed = ref 0 in
  let rec loop () =
    if not (Heap.is_empty t.events) then begin
      let time, fn = Heap.pop_min t.events in
      assert (time >= t.now);
      t.now <- time;
      incr processed;
      fn ();
      loop ()
    end
  in
  loop ();
  !processed

let run_until t ~time =
  let rec loop () =
    match Heap.peek_min_key t.events with
    | Some key when key <= time ->
        let event_time, fn = Heap.pop_min t.events in
        t.now <- event_time;
        fn ();
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if t.now < time then t.now <- time

let self () = Effect.perform Get_fiber

let fiber_node () = (self ()).node

let delay micros =
  if micros < 0 then invalid_arg "Engine.delay: negative";
  let fiber = self () in
  let engine = fiber.engine in
  Effect.perform
    (Suspend
       (fun k -> at engine ~delay:micros (fun () -> resume fiber k ())))

let record_only t prim = Metrics.record t.metrics prim

let elide t prim = Metrics.record_elided t.metrics prim

(* Per-node rollup: charges paid inside a node-bound fiber are also
   attributed to that node (observational only — no cost, no delay). *)
let attribute t prim ~num ~den =
  match fiber_node () with
  | Some node -> Metrics.record_node t.metrics ~node prim ~num ~den
  | None -> ()

let charge t prim =
  record_only t prim;
  attribute t prim ~num:1 ~den:1;
  delay (Cost_model.cost t.model prim)

let charge_fraction t prim ~num ~den =
  Metrics.record_weighted t.metrics prim ~num ~den;
  attribute t prim ~num ~den;
  delay (Cost_model.cost t.model prim * num / den)

let cpu_counter t process =
  match Hashtbl.find_opt t.cpu process with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.cpu process r;
      r

let note_cpu t ~process micros =
  let counter = cpu_counter t process in
  counter := !counter + micros

let charge_cpu t ~process micros =
  note_cpu t ~process micros;
  delay micros

let cpu_time t ~process = !(cpu_counter t process)

let reset_cpu t = Hashtbl.iter (fun _ r -> r := 0) t.cpu

module Waitq = struct
  type 'a waiter = { state : bool ref; wake : 'a option -> unit }
  (* [state] is true once the waiter has been woken or timed out; stale
     entries are skipped by [signal]. *)

  type 'a t = { mutable queue : 'a waiter list }

  let create () = { queue = [] }

  let push q w = q.queue <- q.queue @ [ w ]

  let wait q =
    let fiber = self () in
    match
      Effect.perform
        (Suspend
           (fun k ->
             let state = ref false in
             let wake v =
               if not !state then begin
                 state := true;
                 at fiber.engine ~delay:0 (fun () -> resume fiber k v)
               end
             in
             push q { state; wake }))
    with
    | Some v -> v
    | None -> assert false (* no timer can fire for a plain wait *)

  let wait_timeout q ~engine ~timeout =
    let fiber = self () in
    Effect.perform
      (Suspend
         (fun k ->
           let state = ref false in
           let wake v =
             if not !state then begin
               state := true;
               at fiber.engine ~delay:0 (fun () -> resume fiber k v)
             end
           in
           push q { state; wake };
           at engine ~delay:timeout (fun () -> wake None)))

  let rec signal q ~engine v =
    match q.queue with
    | [] -> false
    | w :: rest ->
        q.queue <- rest;
        if !(w.state) then signal q ~engine v
        else begin
          w.wake (Some v);
          true
        end

  let signal_all q ~engine v =
    let woken = ref 0 in
    while signal q ~engine v do
      incr woken
    done;
    !woken

  let waiters q = List.length (List.filter (fun w -> not !(w.state)) q.queue)
end
