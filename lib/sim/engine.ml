(* Discrete-event engine. Hot-path layout notes:

   - events live in the two-tier {!Event_queue} (FIFO ring for the
     current instant, struct-of-arrays heap for the future); the run
     loops use the non-allocating [min_key]/[pop] pair;
   - node crash epochs are a flat int array indexed by node id, so the
     per-resume liveness check is two loads;
   - [current_node] caches the node of the running fiber so that
     {!charge}'s per-node attribution is a field read instead of a
     [Get_fiber] effect (a heap-allocated continuation round-trip);
   - wait queues are circular buffers with an O(1) live count.

   In {!Sim_profile} baseline mode each of these reverts to the seed
   implementation (boxed heap, epoch hashtable, effect-based lookup,
   list-append queues) with identical observable behavior. *)

exception Killed

type t = {
  mutable now : int;
  baseline : bool;
  events : (unit -> unit) Event_queue.t;
  metrics : Metrics.t;
  mutable model : Cost_model.t;
  cpu : (string, int ref) Hashtbl.t;
  epochs_tbl : (int, int) Hashtbl.t; (* baseline arm *)
  mutable epochs : int array; (* fast arm, indexed by node id *)
  mutable next_fiber : int;
  mutable tracer : Trace.sink option;
  mutable current_node : int; (* node of the running fiber; -1 = none *)
  mutable events_processed : int;
}

(* [node_id] is -1 for fibers not bound to a node. *)
type fiber = { id : int; node_id : int; epoch : int; engine : t }

let create ?(cost_model = Cost_model.measured) () =
  let baseline = Sim_profile.baseline () in
  {
    now = 0;
    baseline;
    events = Event_queue.create ~baseline ();
    metrics = Metrics.create ();
    model = cost_model;
    cpu = Hashtbl.create 8;
    epochs_tbl = Hashtbl.create 8;
    epochs = [||];
    next_fiber = 0;
    tracer = None;
    current_node = -1;
    events_processed = 0;
  }

let now t = t.now

let events_processed t = t.events_processed

let set_cost_model t m = t.model <- m

let cost_model t = t.model

let metrics t = t.metrics

let set_tracer t sink = t.tracer <- sink

let tracing t = match t.tracer with None -> false | Some _ -> true

let emit t ev = match t.tracer with None -> () | Some sink -> sink ~time:t.now ev

let at t ~delay fn =
  assert (delay >= 0);
  Event_queue.push t.events ~now:t.now ~key:(t.now + delay) fn

let node_epoch t node =
  if t.baseline then
    match Hashtbl.find_opt t.epochs_tbl node with Some e -> e | None -> 0
  else if node >= 0 && node < Array.length t.epochs then t.epochs.(node)
  else 0

let crash_node t node =
  if node < 0 then invalid_arg "Engine.crash_node: negative node";
  if t.baseline then
    Hashtbl.replace t.epochs_tbl node (node_epoch t node + 1)
  else begin
    if node >= Array.length t.epochs then begin
      let cap = ref (max 8 (Array.length t.epochs * 2)) in
      while node >= !cap do
        cap := !cap * 2
      done;
      let epochs = Array.make !cap 0 in
      Array.blit t.epochs 0 epochs 0 (Array.length t.epochs);
      t.epochs <- epochs
    end;
    t.epochs.(node) <- t.epochs.(node) + 1
  end

let fiber_dead f =
  f.node_id >= 0 && node_epoch f.engine f.node_id <> f.epoch

(* Effects: [Suspend reg] hands the fiber's continuation to [reg], which
   stores it (in a wait queue or a timer event) for later resumption.
   [Get_fiber] retrieves the fiber's own identity for scheduling. *)
type _ Effect.t +=
  | Suspend : (('a, unit) Effect.Deep.continuation -> unit) -> 'a Effect.t
  | Get_fiber : fiber Effect.t

(* [current_node] is set for the duration of a fiber step (continue /
   discontinue / initial match_with) and cleared when the step returns
   — i.e. when the fiber suspends or finishes. Steps never nest:
   everything a running fiber triggers (spawns, wakeups) is deferred
   through the event queue. An exception escaping a step aborts the
   whole run, so no unwind protection is needed here. *)
let resume (fiber : fiber) k v =
  let eng = fiber.engine in
  if fiber_dead fiber then begin
    eng.current_node <- fiber.node_id;
    (try Effect.Deep.discontinue k Killed with Killed -> ());
    eng.current_node <- -1
  end
  else begin
    eng.current_node <- fiber.node_id;
    Effect.Deep.continue k v;
    eng.current_node <- -1
  end

let spawn t ?node fn =
  let node_id =
    match node with
    | None -> -1
    | Some n ->
        if n < 0 then invalid_arg "Engine.spawn: negative node";
        n
  in
  let fiber =
    {
      id = t.next_fiber;
      node_id;
      epoch = (if node_id < 0 then 0 else node_epoch t node_id);
      engine = t;
    }
  in
  t.next_fiber <- t.next_fiber + 1;
  let handler =
    {
      Effect.Deep.retc = (fun () -> ());
      exnc = (fun e -> match e with Killed -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend reg ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  reg k)
          | Get_fiber ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Effect.Deep.continue k fiber)
          | _ -> None);
    }
  in
  at t ~delay:0 (fun () ->
      if not (fiber_dead fiber) then begin
        t.current_node <- fiber.node_id;
        Effect.Deep.match_with fn () handler;
        t.current_node <- -1
      end);
  fiber

let run t =
  let q = t.events in
  let processed = ref 0 in
  while not (Event_queue.is_empty q) do
    let time = Event_queue.min_key q in
    let fn = Event_queue.pop q in
    assert (time >= t.now);
    t.now <- time;
    incr processed;
    fn ()
  done;
  t.events_processed <- t.events_processed + !processed;
  !processed

let run_until t ~time =
  let q = t.events in
  let running = ref true in
  while !running do
    if Event_queue.is_empty q then running := false
    else begin
      let key = Event_queue.min_key q in
      if key > time then running := false
      else begin
        let fn = Event_queue.pop q in
        t.now <- key;
        t.events_processed <- t.events_processed + 1;
        fn ()
      end
    end
  done;
  if t.now < time then t.now <- time

let self () = Effect.perform Get_fiber

let fiber_node () =
  let f = self () in
  if f.node_id < 0 then None else Some f.node_id

let fiber_id () = (self ()).id

let delay micros =
  if micros < 0 then invalid_arg "Engine.delay: negative";
  let fiber = self () in
  let engine = fiber.engine in
  Effect.perform
    (Suspend
       (fun k -> at engine ~delay:micros (fun () -> resume fiber k ())))

let record_only t prim = Metrics.record t.metrics prim

let elide t prim = Metrics.record_elided t.metrics prim

(* Per-node rollup: charges paid inside a node-bound fiber are also
   attributed to that node (observational only — no cost, no delay).
   Fast path reads the cached [current_node]; baseline performs the
   seed's [Get_fiber] effect. *)
let attribute t prim ~num ~den =
  if t.baseline then
    match fiber_node () with
    | Some node -> Metrics.record_node t.metrics ~node prim ~num ~den
    | None -> ()
  else begin
    let node = t.current_node in
    if node >= 0 then Metrics.record_node t.metrics ~node prim ~num ~den
  end

let charge t prim =
  record_only t prim;
  attribute t prim ~num:1 ~den:1;
  delay (Cost_model.cost t.model prim)

let charge_fraction t prim ~num ~den =
  Metrics.record_weighted t.metrics prim ~num ~den;
  attribute t prim ~num ~den;
  delay (Cost_model.cost t.model prim * num / den)

let cpu_counter t process =
  match Hashtbl.find_opt t.cpu process with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.cpu process r;
      r

let note_cpu t ~process micros =
  let counter = cpu_counter t process in
  counter := !counter + micros

let charge_cpu t ~process micros =
  note_cpu t ~process micros;
  delay micros

let cpu_time t ~process = !(cpu_counter t process)

let reset_cpu t = Hashtbl.iter (fun _ r -> r := 0) t.cpu

module Waitq = struct
  type 'a waiter = { state : bool ref; wake : 'a option -> unit }
  (* [state] is true once the waiter has been woken or timed out; stale
     entries are skipped by [signal]. *)

  (* Fast arm: circular buffer of waiters in arrival order, plus a
     [live] count maintained by [wake] so [waiters] is O(1). Baseline
     arm: the seed's list with O(n) append and O(n) count. *)
  type 'a t = {
    baseline : bool;
    mutable queue : 'a waiter list; (* baseline arm *)
    mutable ring : 'a waiter array; (* fast arm *)
    mutable head : int;
    mutable count : int;
    mutable live : int;
  }

  let vacant : unit -> 'a = fun () -> Obj.magic 0

  let create () =
    {
      baseline = Sim_profile.baseline ();
      queue = [];
      ring = Array.make 16 (vacant ());
      head = 0;
      count = 0;
      live = 0;
    }

  let ring_grow q =
    let cap = Array.length q.ring in
    let ring = Array.make (2 * cap) (vacant ()) in
    for i = 0 to q.count - 1 do
      ring.(i) <- q.ring.((q.head + i) land (cap - 1))
    done;
    q.ring <- ring;
    q.head <- 0

  let push q w =
    q.live <- q.live + 1;
    if q.baseline then q.queue <- q.queue @ [ w ]
    else begin
      if q.count = Array.length q.ring then ring_grow q;
      let cap = Array.length q.ring in
      q.ring.((q.head + q.count) land (cap - 1)) <- w;
      q.count <- q.count + 1
    end

  (* Waking (by signal or timeout) is the one false->true transition of
     [state]; it owns the [live] decrement. *)
  let wait q =
    let fiber = self () in
    match
      Effect.perform
        (Suspend
           (fun k ->
             let state = ref false in
             let wake v =
               if not !state then begin
                 state := true;
                 q.live <- q.live - 1;
                 at fiber.engine ~delay:0 (fun () -> resume fiber k v)
               end
             in
             push q { state; wake }))
    with
    | Some v -> v
    | None -> assert false (* no timer can fire for a plain wait *)

  let wait_timeout q ~engine ~timeout =
    let fiber = self () in
    Effect.perform
      (Suspend
         (fun k ->
           let state = ref false in
           let wake v =
             if not !state then begin
               state := true;
               q.live <- q.live - 1;
               at fiber.engine ~delay:0 (fun () -> resume fiber k v)
             end
           in
           push q { state; wake };
           at engine ~delay:timeout (fun () -> wake None)))

  let rec signal q ~engine v =
    if q.baseline then
      match q.queue with
      | [] -> false
      | w :: rest ->
          q.queue <- rest;
          if !(w.state) then signal q ~engine v
          else begin
            w.wake (Some v);
            true
          end
    else if q.count = 0 then false
    else begin
      let w = q.ring.(q.head) in
      q.ring.(q.head) <- vacant ();
      q.head <- (q.head + 1) land (Array.length q.ring - 1);
      q.count <- q.count - 1;
      if !(w.state) then signal q ~engine v
      else begin
        w.wake (Some v);
        true
      end
    end

  let signal_all q ~engine v =
    let woken = ref 0 in
    while signal q ~engine v do
      incr woken
    done;
    !woken

  let waiters q =
    if q.baseline then
      List.length (List.filter (fun w -> not !(w.state)) q.queue)
    else q.live
end
