(** Deterministic discrete-event simulation engine with lightweight
    fibers.

    The engine plays the role of the Perq/Accent substrate in the TABS
    prototype: it provides a virtual clock, schedulable events, and
    coroutine-style lightweight processes (Section 2.1.1 — "multiple
    lightweight processes within a single server process", switched only
    when an operation waits). Fibers are implemented with OCaml effects;
    all scheduling is deterministic (FIFO among simultaneous events).

    Time is in integer microseconds of virtual time. *)

type t

(** A lightweight process. A fiber may be bound to a node; crashing the
    node kills the fiber the next time it would run. *)
type fiber

(** Raised inside a fiber when its node has crashed; the engine raises it
    by discontinuing the fiber's suspended continuation. User code should
    not catch it (the fiber wrapper does). *)
exception Killed

(** [create ()] makes an engine with the {!Cost_model.measured} costs. *)
val create : ?cost_model:Cost_model.t -> unit -> t

(** [now t] is the current virtual time in microseconds. *)
val now : t -> int

(** [set_cost_model t m] switches the latency table used by {!charge}. *)
val set_cost_model : t -> Cost_model.t -> unit

val cost_model : t -> Cost_model.t

(** Engine-global primitive-operation counters (see {!Metrics}). *)
val metrics : t -> Metrics.t

(** {2 Tracing}

    An optional observer of typed {!Trace.event}s, stamped with the
    virtual time at emission. Purely observational: installing a sink
    never changes metrics, delays, or scheduling order. *)

(** [set_tracer t sink] installs (or, with [None], removes) the trace
    sink. At most one sink is installed; installing replaces. *)
val set_tracer : t -> Trace.sink option -> unit

(** [tracing t] is true when a sink is installed. Emission sites must
    guard event construction with this so that tracing is allocation-free
    when disabled: [if Engine.tracing e then Engine.emit e (Ev {...})]. *)
val tracing : t -> bool

(** [emit t ev] forwards [ev] to the installed sink, stamped with
    [now t]. A no-op when no sink is installed. *)
val emit : t -> Trace.event -> unit

(** [at t ~delay fn] schedules plain callback [fn] to run [delay]
    microseconds from now. Callbacks are not fibers and must not perform
    fiber effects; they may spawn fibers or signal wait queues. *)
val at : t -> delay:int -> (unit -> unit) -> unit

(** [spawn t ?node fn] creates a fiber running [fn], scheduled
    immediately. Exceptions other than {!Killed} escaping [fn] abort the
    simulation run. *)
val spawn : t -> ?node:int -> (unit -> unit) -> fiber

(** [run t] processes events until none remain. Returns the number of
    events processed. *)
val run : t -> int

(** [run_until t ~time] processes events with timestamp <= [time], then
    advances the clock to [time]. *)
val run_until : t -> time:int -> unit

(** [events_processed t] is the total number of events executed by
    {!run} and {!run_until} over the engine's lifetime — the
    denominator for events-per-second throughput reporting. *)
val events_processed : t -> int

(** [crash_node t node] invalidates every fiber bound to [node]: each is
    discontinued with {!Killed} when next scheduled. *)
val crash_node : t -> int -> unit

(** [node_alive t node] is false only for fibers spawned before the last
    {!crash_node} on [node]; new fibers may be spawned after a crash
    (restart). *)
val node_epoch : t -> int -> int

(** {2 Operations usable only inside a fiber} *)

(** [delay micros] suspends the calling fiber for [micros] of virtual
    time. *)
val delay : int -> unit

(** [charge t prim] records [prim] in the engine metrics and delays the
    calling fiber by the primitive's cost under the current model. *)
val charge : t -> Cost_model.primitive -> unit

(** [record_only t prim] records [prim] without delaying — used when a
    primitive's latency is accounted on another fiber's critical path
    (e.g. parallel datagrams during three-node commit). *)
val record_only : t -> Cost_model.primitive -> unit

(** [elide t prim] notes that a hop which would cost [prim] on a
    {!Profile.Classic} node was performed as a direct procedure call on
    an {!Profile.Integrated} node: nothing is charged and the caller is
    not delayed; the execution lands in the metrics' elided counters
    (see {!Metrics.record_elided}). Safe outside a fiber. *)
val elide : t -> Cost_model.primitive -> unit

(** [charge_fraction t prim ~num ~den] records num/den of one execution
    and delays the fiber by the same fraction of the primitive's cost —
    the paper's accounting for work overlapped with other sends
    ("one-half datagram time", Table 5-3). *)
val charge_fraction : t -> Cost_model.primitive -> num:int -> den:int -> unit

(** [charge_cpu t ~process micros] attributes [micros] of CPU time to the
    named system process (e.g. ["tm"], ["rm"], ["cm"]) and delays the
    calling fiber. The accumulators feed the "Measured TABS Process Time"
    column of Table 5-4. *)
val charge_cpu : t -> process:string -> int -> unit

(** [note_cpu t ~process micros] accumulates into the named counter
    without delaying the caller — used to tag time that is {e already}
    charged elsewhere but needs separate attribution (e.g. the message
    costs an integrated architecture would elide, feeding the "Improved
    TABS Architecture" projection of Table 5-4). *)
val note_cpu : t -> process:string -> int -> unit

(** [cpu_time t ~process] is the total CPU time attributed so far. *)
val cpu_time : t -> process:string -> int

(** [reset_cpu t] zeroes all CPU accumulators. *)
val reset_cpu : t -> unit

(** [fiber_node ()] is the node of the calling fiber, if bound. *)
val fiber_node : unit -> int option

(** [fiber_id ()] is the calling fiber's engine-unique identifier
    (deterministic: ids come from a per-engine spawn counter). Used as
    an owner token by re-entrant latches such as the instant-restart
    per-page replay. *)
val fiber_id : unit -> int

(** {2 Wait queues}

    A wait queue suspends fibers until signaled, optionally with a
    timeout — the mechanism beneath lock waits (deadlock resolution by
    time-out, Section 2.1.3) and RPC replies. *)

module Waitq : sig
  type engine := t

  type 'a t

  val create : unit -> 'a t

  (** [wait q] suspends the calling fiber until [signal] passes it a
      value. *)
  val wait : 'a t -> 'a

  (** [wait_timeout q ~engine ~timeout] is [Some v] if signaled within
      [timeout] microseconds, [None] otherwise. *)
  val wait_timeout : 'a t -> engine:engine -> timeout:int -> 'a option

  (** [signal q ~engine v] wakes the earliest waiter with [v]; returns
      false if no fiber was waiting. *)
  val signal : 'a t -> engine:engine -> 'a -> bool

  (** [signal_all q ~engine v] wakes every current waiter; returns how
      many were woken. *)
  val signal_all : 'a t -> engine:engine -> 'a -> int

  (** [waiters q] is the number of fibers currently suspended. *)
  val waiters : 'a t -> int
end
