(* The engine's event queue: a lazy near/far two-tier structure.

   The dominant schedule in every TABS workload is [delay:0] — wait-queue
   wakeups, fiber spawns, elided hops — and a binary heap is worst-case
   for exactly that push: the new event is the global minimum, so it
   sifts the full depth of the heap on insert and forces a full-depth
   sift-down when popped. The near tier is a plain FIFO ring holding
   only events scheduled for the current instant ([key = now]); they
   are pushed and popped in O(1) and never touch the far heap, however
   many timers it holds. Everything scheduled in the future goes to the
   far tier, the struct-of-arrays {!Heap}.

   Determinism: a single [next_seq] counter spans both tiers, and pop
   order is by (key, seq) exactly as in a single heap. Two invariants
   make the merge trivial:
   - ring events all share one key, [ring_key], and while the ring is
     non-empty no event with a smaller key can exist (the clock only
     reaches [ring_key] by draining everything earlier);
   - a far event with key = [ring_key] was necessarily pushed at an
     earlier instant, so its seq is smaller and it drains first.
   The pop path still compares (key, seq) across tiers, so order is
   correct even without leaning on the second invariant.

   The seed implementation — one boxed binary heap of
   ['a entry option array] — is kept verbatim below as the
   {!Sim_profile} baseline arm for wall-clock A/B runs. *)

module Legacy = struct
  (* the seed heap, byte-for-byte (lib/sim/heap.ml at PR 7) *)
  type 'a entry = { key : int; seq : int; value : 'a }

  type 'a t = {
    mutable data : 'a entry option array;
    mutable size : int;
    mutable next_seq : int;
  }

  let create () = { data = Array.make 64 None; size = 0; next_seq = 0 }

  let is_empty t = t.size = 0

  let length t = t.size

  let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

  let get t i =
    match t.data.(i) with Some e -> e | None -> assert false

  let grow t =
    let data = Array.make (2 * Array.length t.data) None in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if entry_lt (get t i) (get t parent) then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(parent);
        t.data.(parent) <- tmp;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && entry_lt (get t l) (get t !smallest) then smallest := l;
    if r < t.size && entry_lt (get t r) (get t !smallest) then smallest := r;
    if !smallest <> i then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      sift_down t !smallest
    end

  let push t ~key value =
    if t.size = Array.length t.data then grow t;
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    t.data.(t.size) <- Some { key; seq; value };
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let pop_min t =
    if t.size = 0 then raise Not_found;
    let min = get t 0 in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    (min.key, min.value)

  let min_key t =
    if t.size = 0 then raise Not_found;
    (get t 0).key
end

let vacant : unit -> 'a = fun () -> Obj.magic 0

type 'a t = {
  baseline : bool;
  legacy : 'a Legacy.t;
  heap : 'a Heap.t;
  (* near tier: FIFO ring of events for the current instant *)
  mutable ring_vals : 'a array;
  mutable ring_seqs : int array;
  mutable head : int;
  mutable count : int;
  mutable ring_key : int;
  mutable next_seq : int;
}

let create ?(baseline = Sim_profile.baseline ()) () =
  {
    baseline;
    legacy = Legacy.create ();
    heap = Heap.create ();
    ring_vals = Array.make 64 (vacant ());
    ring_seqs = Array.make 64 0;
    head = 0;
    count = 0;
    ring_key = min_int;
    next_seq = 0;
  }

let baseline t = t.baseline

let is_empty t =
  if t.baseline then Legacy.is_empty t.legacy
  else t.count = 0 && Heap.is_empty t.heap

let length t =
  if t.baseline then Legacy.length t.legacy else t.count + Heap.length t.heap

let ring_grow t =
  let cap = Array.length t.ring_vals in
  let vals = Array.make (2 * cap) (vacant ()) in
  let seqs = Array.make (2 * cap) 0 in
  for i = 0 to t.count - 1 do
    let j = (t.head + i) land (cap - 1) in
    vals.(i) <- t.ring_vals.(j);
    seqs.(i) <- t.ring_seqs.(j)
  done;
  t.ring_vals <- vals;
  t.ring_seqs <- seqs;
  t.head <- 0

let ring_push t seq v =
  let cap = Array.length t.ring_vals in
  if t.count = cap then ring_grow t;
  let cap = Array.length t.ring_vals in
  let tail = (t.head + t.count) land (cap - 1) in
  t.ring_vals.(tail) <- v;
  t.ring_seqs.(tail) <- seq;
  t.count <- t.count + 1

let ring_pop t =
  let v = t.ring_vals.(t.head) in
  t.ring_vals.(t.head) <- vacant ();
  t.head <- (t.head + 1) land (Array.length t.ring_vals - 1);
  t.count <- t.count - 1;
  v

let push t ~now ~key v =
  if t.baseline then Legacy.push t.legacy ~key v
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    if key = now && (t.count = 0 || t.ring_key = key) then begin
      if t.count = 0 then t.ring_key <- key;
      ring_push t seq v
    end
    else Heap.push_seq t.heap ~key ~seq v
  end

let min_key t =
  if t.baseline then Legacy.min_key t.legacy
  else if t.count = 0 then Heap.min_key t.heap
  else if Heap.is_empty t.heap then t.ring_key
  else begin
    let hk = Heap.min_key t.heap in
    if hk < t.ring_key then hk else t.ring_key
  end

let pop t =
  if t.baseline then snd (Legacy.pop_min t.legacy)
  else if t.count = 0 then Heap.pop t.heap
  else if Heap.is_empty t.heap then ring_pop t
  else begin
    let hk = Heap.min_key t.heap in
    if
      hk < t.ring_key
      || (hk = t.ring_key && Heap.min_seq t.heap < t.ring_seqs.(t.head))
    then Heap.pop t.heap
    else ring_pop t
  end
