(** The engine's event queue: near/far two-tier priority structure.

    Events scheduled for the current instant ([key = now] — wait-queue
    wakeups, spawns, elided hops, the bulk of every workload) go to an
    O(1) FIFO ring; future events go to the struct-of-arrays {!Heap}.
    A single seq counter spans both tiers, so pop order is by
    (key, seq) exactly as in the single seed heap — byte-identical
    schedules, without the worst-case full-depth sift a delay-0 push
    causes in a binary heap.

    When created in baseline mode (see {!Sim_profile}) the queue runs
    the seed-era boxed binary heap verbatim instead. *)

type 'a t

(** [create ()] captures [Sim_profile.baseline ()] unless [~baseline]
    is given explicitly. *)
val create : ?baseline:bool -> unit -> 'a t

val baseline : 'a t -> bool

val is_empty : 'a t -> bool

val length : 'a t -> int

(** [push t ~now ~key v] schedules [v] at virtual time [key]. [now] is
    the engine clock; [key >= now]. FIFO among equal keys. *)
val push : 'a t -> now:int -> key:int -> 'a -> unit

(** [min_key t] is the earliest scheduled time. Raises [Not_found] when
    empty. Never allocates. *)
val min_key : 'a t -> int

(** [pop t] removes and returns the event with the smallest (key, seq).
    Raises [Not_found] when empty. Never allocates on the fast path. *)
val pop : 'a t -> 'a
