(* Binary min-heap over (key, seq, value); [seq] makes equal keys FIFO so
   the engine is deterministic.

   Struct-of-arrays layout: keys and seqs live in unboxed int arrays so
   every sift comparison is two int loads — no per-entry record, no
   option box, no value deref. The hot path (min_key / min_seq / pop /
   push_seq) never allocates; [pop_min] / [peek_min_key] are kept as
   allocating conveniences for tests and callers that want tuples.

   The value array needs a filler for vacant slots; we use an immediate
   forged with [Obj.magic 0]. That is safe for any ['a]: the array is
   created from an immediate (so it is an ordinary, non-float-unboxed
   array) and the filler is only ever stored, never read as an ['a]
   (pop clears the vacated slot purely so the GC drops the value). *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let vacant : unit -> 'a = fun () -> Obj.magic 0

let create () =
  {
    keys = Array.make 64 0;
    seqs = Array.make 64 0;
    vals = Array.make 64 (vacant ());
    size = 0;
    next_seq = 0;
  }

let is_empty t = t.size = 0

let length t = t.size

let clear t =
  (* only the occupied prefix holds live values *)
  Array.fill t.vals 0 t.size (vacant ());
  t.size <- 0

let grow t =
  let cap = 2 * Array.length t.keys in
  let keys = Array.make cap 0 in
  let seqs = Array.make cap 0 in
  let vals = Array.make cap (vacant ()) in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.seqs <- seqs;
  t.vals <- vals

let push_seq t ~key ~seq value =
  if t.size = Array.length t.keys then grow t;
  (* hole-based sift-up: shift larger parents down, write once *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let p = (!i - 1) / 2 in
    let pk = t.keys.(p) in
    if pk > key || (pk = key && t.seqs.(p) > seq) then begin
      t.keys.(!i) <- pk;
      t.seqs.(!i) <- t.seqs.(p);
      t.vals.(!i) <- t.vals.(p);
      i := p
    end
    else stop := true
  done;
  t.keys.(!i) <- key;
  t.seqs.(!i) <- seq;
  t.vals.(!i) <- value;
  if seq >= t.next_seq then t.next_seq <- seq + 1

let push t ~key value = push_seq t ~key ~seq:t.next_seq value

let min_key t =
  if t.size = 0 then raise Not_found;
  t.keys.(0)

let min_seq t =
  if t.size = 0 then raise Not_found;
  t.seqs.(0)

let pop t =
  if t.size = 0 then raise Not_found;
  let v = t.vals.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n = 0 then t.vals.(0) <- vacant ()
  else begin
    (* hole-based sift-down of the displaced last element *)
    let key = t.keys.(n) and seq = t.seqs.(n) in
    let mv = t.vals.(n) in
    t.vals.(n) <- vacant ();
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 in
      if l >= n then stop := true
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (t.keys.(r) < t.keys.(l)
               || (t.keys.(r) = t.keys.(l) && t.seqs.(r) < t.seqs.(l)))
          then r
          else l
        in
        let ck = t.keys.(c) in
        if ck < key || (ck = key && t.seqs.(c) < seq) then begin
          t.keys.(!i) <- ck;
          t.seqs.(!i) <- t.seqs.(c);
          t.vals.(!i) <- t.vals.(c);
          i := c
        end
        else stop := true
      end
    done;
    t.keys.(!i) <- key;
    t.seqs.(!i) <- seq;
    t.vals.(!i) <- mv
  end;
  v

let pop_min t =
  let key = min_key t in
  (key, pop t)

let peek_min_key t = if t.size = 0 then None else Some t.keys.(0)
