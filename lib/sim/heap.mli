(** Imperative binary min-heap keyed by integer priority.

    Used as the far tier of the simulation engine's event queue; ties
    are broken by insertion order ([seq]) so that the simulation is
    deterministic. The layout is struct-of-arrays (unboxed int key and
    seq arrays beside a value array), and the [min_key] / [min_seq] /
    [pop] / [push_seq] quartet never allocates. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

(** [push t ~key v] inserts [v] with priority [key], drawing the
    tie-break [seq] from the heap's own counter. *)
val push : 'a t -> key:int -> 'a -> unit

(** [push_seq t ~key ~seq v] inserts with an explicit tie-break seq —
    used when the seq counter is owned by a wrapper (the two-tier
    {!Event_queue}) so FIFO order holds across tiers. Keeps the
    internal counter above [seq]; do not interleave with [push] using
    stale external seqs. *)
val push_seq : 'a t -> key:int -> seq:int -> 'a -> unit

(** [min_key t] / [min_seq t] are the root's priority and tie-break,
    without allocating. Raise [Not_found] when empty. *)
val min_key : 'a t -> int

val min_seq : 'a t -> int

(** [pop t] removes and returns the minimum-(key, seq) value without
    allocating. Raises [Not_found] when empty. *)
val pop : 'a t -> 'a

(** [pop_min t] is [(min_key t, pop t)] — allocates the pair; prefer
    {!min_key} + {!pop} on hot paths. *)
val pop_min : 'a t -> int * 'a

(** [peek_min_key t] is the smallest key, if any (allocates the
    option; prefer {!is_empty} + {!min_key} on hot paths). *)
val peek_min_key : 'a t -> int option

(** [clear t] removes every element (touching only the occupied
    prefix of the backing arrays). *)
val clear : 'a t -> unit
