(* Weights are stored in units of 1/1000 of an execution so that the
   paper's fractional primitive counts (halves, and the measured 0.86
   page I/Os per transaction) can be represented exactly enough.

   Two parallel counter sets are kept: [charged] executions actually
   cost their primitive's latency; [elided] executions are hops that an
   Integrated-profile node turned into direct procedure calls — they
   cost nothing but are counted so runs can attribute what the
   architecture removed. *)

(* Hot-path note: [record] / [record_weighted] / [record_node] run on
   every Engine.charge. The primitive index is the O(1)
   [Cost_model.to_int] and the per-node rollup is a flat array of rows
   indexed by node id, so a charge is a handful of int ops. In
   [Sim_profile] baseline mode the seed implementations are kept
   verbatim: a linear scan of [Cost_model.all] per lookup (twice per
   record) and a hashtable of per-node rows. *)

(* [msgs] counts wire-level Communication Manager traffic: every
   network transmission a CM pays for is one wire message, carrying one
   or more frames (more than one only when the comm-batching layer
   coalesces). The ack counters attribute what batching saved. *)

type msgs = {
  mutable wire_messages : int; (* transmissions sent by CMs *)
  mutable carried_frames : int; (* frames those transmissions carried *)
  mutable piggybacked_acks : int; (* acks that rode an outgoing frame *)
  mutable delayed_acks : int; (* standalone acks sent after the ack window *)
  mutable ack_deliveries_covered : int; (* deliveries those acks covered *)
  mutable duplicate_reacks : int; (* re-acks triggered by duplicate frames *)
}

(* [tm] counts commit-protocol pathologies the Transaction Managers
   report: a resolution abandoned means an in-doubt participant (or
   orphan) exhausted its status-query attempts and is still blocked
   with locks held — under 2PC the data stays locked forever. *)
type tm = { mutable resolutions_abandoned : int }

(* [recovery] counts per-node crash-recovery page replays by who drove
   them: eagerly inside [Recovery_mgr.recover] (the classic restart),
   on demand at first touch, or by the instant-restart background
   trickle. [pending_pages] is a gauge: per-page chains still parked. *)
type recovery = {
  mutable restart_pages : int;
  mutable ondemand_pages : int;
  mutable trickle_pages : int;
  mutable pending_pages : int;
}

(* Per-node rollup of the charged counters, by the node of the fiber
   that paid them (scale-out benches report per-shard load from it).
   Purely observational: entries appear lazily, and nothing reads them
   on the seed paths. Fast arm: [node_rows] indexed by node id, with a
   zero-length row as the "never charged" sentinel. Baseline arm: the
   seed [per_node] hashtable. *)
type t = {
  baseline : bool;
  charged : int array;
  elided : int array;
  msgs : msgs;
  tm : tm;
  recovery_rows : (int, recovery) Hashtbl.t;
  per_node : (int, int array) Hashtbl.t;
  mutable node_rows : int array array;
}

let zero_tm () = { resolutions_abandoned = 0 }

let copy_tm (m : tm) = { resolutions_abandoned = m.resolutions_abandoned }

let zero_recovery () =
  { restart_pages = 0; ondemand_pages = 0; trickle_pages = 0; pending_pages = 0 }

let copy_recovery (r : recovery) =
  {
    restart_pages = r.restart_pages;
    ondemand_pages = r.ondemand_pages;
    trickle_pages = r.trickle_pages;
    pending_pages = r.pending_pages;
  }

let zero_msgs () =
  {
    wire_messages = 0;
    carried_frames = 0;
    piggybacked_acks = 0;
    delayed_acks = 0;
    ack_deliveries_covered = 0;
    duplicate_reacks = 0;
  }

let scale = 1000

let size = Cost_model.count

(* seed index: linear scan of the primitive list (baseline arm only) *)
let idx_linear p =
  let rec find i = function
    | [] -> assert false
    | q :: rest -> if q = p then i else find (i + 1) rest
  in
  find 0 Cost_model.all

let idx t p = if t.baseline then idx_linear p else Cost_model.to_int p

let create () =
  {
    baseline = Sim_profile.baseline ();
    charged = Array.make size 0;
    elided = Array.make size 0;
    msgs = zero_msgs ();
    tm = zero_tm ();
    recovery_rows = Hashtbl.create 4;
    per_node = Hashtbl.create 8;
    node_rows = [||];
  }

let msgs t = t.msgs

let tm t = t.tm

let recovery t ~node =
  match Hashtbl.find_opt t.recovery_rows node with
  | Some r -> r
  | None ->
      let r = zero_recovery () in
      Hashtbl.add t.recovery_rows node r;
      r

let recovery_nodes t =
  List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.recovery_rows [])

let copy_msgs m =
  {
    wire_messages = m.wire_messages;
    carried_frames = m.carried_frames;
    piggybacked_acks = m.piggybacked_acks;
    delayed_acks = m.delayed_acks;
    ack_deliveries_covered = m.ack_deliveries_covered;
    duplicate_reacks = m.duplicate_reacks;
  }

let record_weighted t p ~num ~den =
  if den <= 0 then invalid_arg "Metrics.record_weighted: den <= 0";
  if t.baseline then
    (* seed shape: two independent index scans per record *)
    t.charged.(idx_linear p) <- t.charged.(idx_linear p) + (scale * num / den)
  else begin
    let i = Cost_model.to_int p in
    t.charged.(i) <- t.charged.(i) + (scale * num / den)
  end

(* fast-arm row accessor; creates the row (growing the outer array) on
   first charge against a node *)
let node_row t node =
  if node >= Array.length t.node_rows then begin
    let cap = ref (max 8 (Array.length t.node_rows * 2)) in
    while node >= !cap do
      cap := !cap * 2
    done;
    let rows = Array.make !cap [||] in
    Array.blit t.node_rows 0 rows 0 (Array.length t.node_rows);
    t.node_rows <- rows
  end;
  let row = t.node_rows.(node) in
  if Array.length row > 0 then row
  else begin
    let row = Array.make size 0 in
    t.node_rows.(node) <- row;
    row
  end

(* baseline-arm row accessor (seed verbatim) *)
let node_counters t node =
  match Hashtbl.find_opt t.per_node node with
  | Some arr -> arr
  | None ->
      let arr = Array.make size 0 in
      Hashtbl.add t.per_node node arr;
      arr

let record_node t ~node p ~num ~den =
  if den <= 0 then invalid_arg "Metrics.record_node: den <= 0";
  if node < 0 then invalid_arg "Metrics.record_node: negative node";
  if t.baseline then begin
    let arr = node_counters t node in
    arr.(idx_linear p) <- arr.(idx_linear p) + (scale * num / den)
  end
  else begin
    let row = node_row t node in
    let i = Cost_model.to_int p in
    row.(i) <- row.(i) + (scale * num / den)
  end

let node_weight t ~node p =
  let units =
    if t.baseline then
      match Hashtbl.find_opt t.per_node node with
      | None -> 0
      | Some arr -> arr.(idx_linear p)
    else if node < 0 || node >= Array.length t.node_rows then 0
    else
      let row = t.node_rows.(node) in
      if Array.length row = 0 then 0 else row.(Cost_model.to_int p)
  in
  float_of_int units /. float_of_int scale

let nodes_tracked t =
  if t.baseline then
    List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.per_node [])
  else begin
    let acc = ref [] in
    for n = Array.length t.node_rows - 1 downto 0 do
      if Array.length t.node_rows.(n) > 0 then acc := n :: !acc
    done;
    !acc
  end

let record_many t p n = record_weighted t p ~num:n ~den:1

let record t p = record_many t p 1

let record_elided t p =
  let i = idx t p in
  t.elided.(i) <- t.elided.(i) + scale

let count t p = t.charged.(idx t p) / scale

let weight t p = float_of_int t.charged.(idx t p) /. float_of_int scale

let elided_count t p = t.elided.(idx t p) / scale

let elided_weight t p = float_of_int t.elided.(idx t p) /. float_of_int scale

let reset t =
  Array.fill t.charged 0 size 0;
  Array.fill t.elided 0 size 0;
  Hashtbl.reset t.per_node;
  t.node_rows <- [||];
  let m = t.msgs in
  m.wire_messages <- 0;
  m.carried_frames <- 0;
  m.piggybacked_acks <- 0;
  m.delayed_acks <- 0;
  m.ack_deliveries_covered <- 0;
  m.duplicate_reacks <- 0;
  t.tm.resolutions_abandoned <- 0;
  Hashtbl.reset t.recovery_rows

let snapshot t =
  let per_node = Hashtbl.create (max 1 (Hashtbl.length t.per_node)) in
  Hashtbl.iter
    (fun n arr -> Hashtbl.replace per_node n (Array.copy arr))
    t.per_node;
  let recovery_rows = Hashtbl.create (max 1 (Hashtbl.length t.recovery_rows)) in
  Hashtbl.iter
    (fun n r -> Hashtbl.replace recovery_rows n (copy_recovery r))
    t.recovery_rows;
  {
    baseline = t.baseline;
    charged = Array.copy t.charged;
    elided = Array.copy t.elided;
    msgs = copy_msgs t.msgs;
    tm = copy_tm t.tm;
    recovery_rows;
    per_node;
    node_rows =
      Array.map
        (fun row -> if Array.length row = 0 then [||] else Array.copy row)
        t.node_rows;
  }

let diff ~later ~earlier =
  let per_node = Hashtbl.create (max 1 (Hashtbl.length later.per_node)) in
  Hashtbl.iter
    (fun n arr ->
      let base =
        match Hashtbl.find_opt earlier.per_node n with
        | Some b -> b
        | None -> Array.make size 0
      in
      Hashtbl.replace per_node n (Array.init size (fun i -> arr.(i) - base.(i))))
    later.per_node;
  let recovery_rows =
    Hashtbl.create (max 1 (Hashtbl.length later.recovery_rows))
  in
  Hashtbl.iter
    (fun n (r : recovery) ->
      let base =
        match Hashtbl.find_opt earlier.recovery_rows n with
        | Some b -> b
        | None -> zero_recovery ()
      in
      Hashtbl.replace recovery_rows n
        {
          restart_pages = r.restart_pages - base.restart_pages;
          ondemand_pages = r.ondemand_pages - base.ondemand_pages;
          trickle_pages = r.trickle_pages - base.trickle_pages;
          pending_pages = r.pending_pages - base.pending_pages;
        })
    later.recovery_rows;
  let node_rows =
    Array.mapi
      (fun n row ->
        if Array.length row = 0 then [||]
        else
          let base =
            if
              n < Array.length earlier.node_rows
              && Array.length earlier.node_rows.(n) > 0
            then earlier.node_rows.(n)
            else Array.make size 0
          in
          Array.init size (fun i -> row.(i) - base.(i)))
      later.node_rows
  in
  {
    baseline = later.baseline;
    per_node;
    node_rows;
    recovery_rows;
    charged = Array.init size (fun i -> later.charged.(i) - earlier.charged.(i));
    elided = Array.init size (fun i -> later.elided.(i) - earlier.elided.(i));
    msgs =
      {
        wire_messages = later.msgs.wire_messages - earlier.msgs.wire_messages;
        carried_frames = later.msgs.carried_frames - earlier.msgs.carried_frames;
        piggybacked_acks =
          later.msgs.piggybacked_acks - earlier.msgs.piggybacked_acks;
        delayed_acks = later.msgs.delayed_acks - earlier.msgs.delayed_acks;
        ack_deliveries_covered =
          later.msgs.ack_deliveries_covered
          - earlier.msgs.ack_deliveries_covered;
        duplicate_reacks =
          later.msgs.duplicate_reacks - earlier.msgs.duplicate_reacks;
      };
    tm =
      {
        resolutions_abandoned =
          later.tm.resolutions_abandoned - earlier.tm.resolutions_abandoned;
      };
  }

let weighted_cost t model =
  List.fold_left
    (fun acc p -> acc + (t.charged.(idx t p) * Cost_model.cost model p / scale))
    0 Cost_model.all

let to_alist t =
  List.filter_map
    (fun p ->
      let n = count t p in
      if t.charged.(idx t p) = 0 then None else Some (p, n))
    Cost_model.all
