(* Weights are stored in units of 1/1000 of an execution so that the
   paper's fractional primitive counts (halves, and the measured 0.86
   page I/Os per transaction) can be represented exactly enough.

   Two parallel counter sets are kept: [charged] executions actually
   cost their primitive's latency; [elided] executions are hops that an
   Integrated-profile node turned into direct procedure calls — they
   cost nothing but are counted so runs can attribute what the
   architecture removed. *)

type t = { charged : int array; elided : int array }

let scale = 1000

let size = List.length Cost_model.all

let idx p =
  let rec find i = function
    | [] -> assert false
    | q :: rest -> if q = p then i else find (i + 1) rest
  in
  find 0 Cost_model.all

let create () = { charged = Array.make size 0; elided = Array.make size 0 }

let record_weighted t p ~num ~den =
  if den <= 0 then invalid_arg "Metrics.record_weighted: den <= 0";
  t.charged.(idx p) <- t.charged.(idx p) + (scale * num / den)

let record_many t p n = record_weighted t p ~num:n ~den:1

let record t p = record_many t p 1

let record_elided t p = t.elided.(idx p) <- t.elided.(idx p) + scale

let count t p = t.charged.(idx p) / scale

let weight t p = float_of_int t.charged.(idx p) /. float_of_int scale

let elided_count t p = t.elided.(idx p) / scale

let elided_weight t p = float_of_int t.elided.(idx p) /. float_of_int scale

let reset t =
  Array.fill t.charged 0 size 0;
  Array.fill t.elided 0 size 0

let snapshot t = { charged = Array.copy t.charged; elided = Array.copy t.elided }

let diff ~later ~earlier =
  {
    charged = Array.init size (fun i -> later.charged.(i) - earlier.charged.(i));
    elided = Array.init size (fun i -> later.elided.(i) - earlier.elided.(i));
  }

let weighted_cost t model =
  List.fold_left
    (fun acc p ->
      acc + (t.charged.(idx p) * Cost_model.cost model p / scale))
    0 Cost_model.all

let to_alist t =
  List.filter_map
    (fun p ->
      let n = count t p in
      if t.charged.(idx p) = 0 then None else Some (p, n))
    Cost_model.all
