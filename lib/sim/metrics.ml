(* Weights are stored in units of 1/1000 of an execution so that the
   paper's fractional primitive counts (halves, and the measured 0.86
   page I/Os per transaction) can be represented exactly enough.

   Two parallel counter sets are kept: [charged] executions actually
   cost their primitive's latency; [elided] executions are hops that an
   Integrated-profile node turned into direct procedure calls — they
   cost nothing but are counted so runs can attribute what the
   architecture removed. *)

(* [msgs] counts wire-level Communication Manager traffic: every
   network transmission a CM pays for is one wire message, carrying one
   or more frames (more than one only when the comm-batching layer
   coalesces). The ack counters attribute what batching saved. *)

type msgs = {
  mutable wire_messages : int; (* transmissions sent by CMs *)
  mutable carried_frames : int; (* frames those transmissions carried *)
  mutable piggybacked_acks : int; (* acks that rode an outgoing frame *)
  mutable delayed_acks : int; (* standalone acks sent after the ack window *)
  mutable ack_deliveries_covered : int; (* deliveries those acks covered *)
  mutable duplicate_reacks : int; (* re-acks triggered by duplicate frames *)
}

(* [tm] counts commit-protocol pathologies the Transaction Managers
   report: a resolution abandoned means an in-doubt participant (or
   orphan) exhausted its status-query attempts and is still blocked
   with locks held — under 2PC the data stays locked forever. *)
type tm = { mutable resolutions_abandoned : int }

(* [per_node] rolls the charged counters up by the node of the fiber
   that paid them (scale-out benches report per-shard load from it).
   Purely observational: entries appear lazily, and nothing reads them
   on the seed paths. *)
type t = {
  charged : int array;
  elided : int array;
  msgs : msgs;
  tm : tm;
  per_node : (int, int array) Hashtbl.t;
}

let zero_tm () = { resolutions_abandoned = 0 }

let copy_tm (m : tm) = { resolutions_abandoned = m.resolutions_abandoned }

let zero_msgs () =
  {
    wire_messages = 0;
    carried_frames = 0;
    piggybacked_acks = 0;
    delayed_acks = 0;
    ack_deliveries_covered = 0;
    duplicate_reacks = 0;
  }

let scale = 1000

let size = List.length Cost_model.all

let idx p =
  let rec find i = function
    | [] -> assert false
    | q :: rest -> if q = p then i else find (i + 1) rest
  in
  find 0 Cost_model.all

let create () =
  {
    charged = Array.make size 0;
    elided = Array.make size 0;
    msgs = zero_msgs ();
    tm = zero_tm ();
    per_node = Hashtbl.create 8;
  }

let msgs t = t.msgs

let tm t = t.tm

let copy_msgs m =
  {
    wire_messages = m.wire_messages;
    carried_frames = m.carried_frames;
    piggybacked_acks = m.piggybacked_acks;
    delayed_acks = m.delayed_acks;
    ack_deliveries_covered = m.ack_deliveries_covered;
    duplicate_reacks = m.duplicate_reacks;
  }

let record_weighted t p ~num ~den =
  if den <= 0 then invalid_arg "Metrics.record_weighted: den <= 0";
  t.charged.(idx p) <- t.charged.(idx p) + (scale * num / den)

let node_counters t node =
  match Hashtbl.find_opt t.per_node node with
  | Some arr -> arr
  | None ->
      let arr = Array.make size 0 in
      Hashtbl.add t.per_node node arr;
      arr

let record_node t ~node p ~num ~den =
  if den <= 0 then invalid_arg "Metrics.record_node: den <= 0";
  let arr = node_counters t node in
  arr.(idx p) <- arr.(idx p) + (scale * num / den)

let node_weight t ~node p =
  match Hashtbl.find_opt t.per_node node with
  | None -> 0.
  | Some arr -> float_of_int arr.(idx p) /. float_of_int scale

let nodes_tracked t =
  List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.per_node [])

let record_many t p n = record_weighted t p ~num:n ~den:1

let record t p = record_many t p 1

let record_elided t p = t.elided.(idx p) <- t.elided.(idx p) + scale

let count t p = t.charged.(idx p) / scale

let weight t p = float_of_int t.charged.(idx p) /. float_of_int scale

let elided_count t p = t.elided.(idx p) / scale

let elided_weight t p = float_of_int t.elided.(idx p) /. float_of_int scale

let reset t =
  Array.fill t.charged 0 size 0;
  Array.fill t.elided 0 size 0;
  Hashtbl.reset t.per_node;
  let m = t.msgs in
  m.wire_messages <- 0;
  m.carried_frames <- 0;
  m.piggybacked_acks <- 0;
  m.delayed_acks <- 0;
  m.ack_deliveries_covered <- 0;
  m.duplicate_reacks <- 0;
  t.tm.resolutions_abandoned <- 0

let snapshot t =
  let per_node = Hashtbl.create (Hashtbl.length t.per_node) in
  Hashtbl.iter (fun n arr -> Hashtbl.replace per_node n (Array.copy arr)) t.per_node;
  {
    charged = Array.copy t.charged;
    elided = Array.copy t.elided;
    msgs = copy_msgs t.msgs;
    tm = copy_tm t.tm;
    per_node;
  }

let diff ~later ~earlier =
  let per_node = Hashtbl.create (Hashtbl.length later.per_node) in
  Hashtbl.iter
    (fun n arr ->
      let base =
        match Hashtbl.find_opt earlier.per_node n with
        | Some b -> b
        | None -> Array.make size 0
      in
      Hashtbl.replace per_node n (Array.init size (fun i -> arr.(i) - base.(i))))
    later.per_node;
  {
    per_node;
    charged = Array.init size (fun i -> later.charged.(i) - earlier.charged.(i));
    elided = Array.init size (fun i -> later.elided.(i) - earlier.elided.(i));
    msgs =
      {
        wire_messages = later.msgs.wire_messages - earlier.msgs.wire_messages;
        carried_frames = later.msgs.carried_frames - earlier.msgs.carried_frames;
        piggybacked_acks =
          later.msgs.piggybacked_acks - earlier.msgs.piggybacked_acks;
        delayed_acks = later.msgs.delayed_acks - earlier.msgs.delayed_acks;
        ack_deliveries_covered =
          later.msgs.ack_deliveries_covered
          - earlier.msgs.ack_deliveries_covered;
        duplicate_reacks =
          later.msgs.duplicate_reacks - earlier.msgs.duplicate_reacks;
      };
    tm =
      {
        resolutions_abandoned =
          later.tm.resolutions_abandoned - earlier.tm.resolutions_abandoned;
      };
  }

let weighted_cost t model =
  List.fold_left
    (fun acc p ->
      acc + (t.charged.(idx p) * Cost_model.cost model p / scale))
    0 Cost_model.all

let to_alist t =
  List.filter_map
    (fun p ->
      let n = count t p in
      if t.charged.(idx p) = 0 then None else Some (p, n))
    Cost_model.all
