(** Counters of primitive-operation executions.

    The benchmark harness opens a metrics window around a phase of a
    transaction (pre-commit or commit) and reads back the per-primitive
    counts, reproducing the counting methodology of Tables 5-2 and 5-3. *)

type t

(** Wire-level message counters, kept by the Communication Managers:
    every network transmission a CM pays for is one wire message
    carrying one or more frames (more than one only under the
    comm-batching layer's datagram coalescing). The ack counters
    attribute the messages piggybacking and delayed acks removed, and
    {!msgs.duplicate_reacks} counts re-acks provoked by duplicate
    deliveries. Mutate only from {!Tabs_net.Comm_mgr}. *)
type msgs = {
  mutable wire_messages : int;
  mutable carried_frames : int;
  mutable piggybacked_acks : int;
  mutable delayed_acks : int;
  mutable ack_deliveries_covered : int;
  mutable duplicate_reacks : int;
}

(** Commit-protocol pathology counters, kept by the Transaction
    Managers: {!tm.resolutions_abandoned} counts in-doubt participants
    (and orphans) that exhausted their status-query attempts and remain
    blocked with write locks held. Mutate only from {!Tabs_tm.Txn_mgr}. *)
type tm = { mutable resolutions_abandoned : int }

(** Per-node crash-recovery progress counters, kept by the Recovery
    Managers: page replays attributed to who drove them — eagerly
    inside [recover] (the classic restart path), on demand at first
    touch after an instant restart, or by the instant-restart
    background trickle. [pending_pages] is a gauge: per-page chains
    still parked for lazy replay. Mutate only from
    [Tabs_recovery.Recovery_mgr]. *)
type recovery = {
  mutable restart_pages : int;
  mutable ondemand_pages : int;
  mutable trickle_pages : int;
  mutable pending_pages : int;
}

val create : unit -> t

(** [msgs t] is the live message-counter block (shared mutable state;
    {!snapshot} and {!diff} copy it). *)
val msgs : t -> msgs

(** [tm t] is the live Transaction Manager counter block (shared mutable
    state; {!snapshot} and {!diff} copy it). *)
val tm : t -> tm

(** [recovery t ~node] is [node]'s live recovery counter block, created
    zeroed on first access (shared mutable state; {!snapshot} and
    {!diff} copy it). *)
val recovery : t -> node:int -> recovery

(** [recovery_nodes t] lists node ids with a recovery counter block. *)
val recovery_nodes : t -> int list

(** [record t p] counts one execution of primitive [p]. *)
val record : t -> Cost_model.primitive -> unit

(** [record_many t p n] counts [n] executions at once. *)
val record_many : t -> Cost_model.primitive -> int -> unit

(** [record_weighted t p ~num ~den] counts a fractional execution —
    num/den of one — reproducing the paper's accounting of overlapped
    work, e.g. the "one-half datagram time" charged for a second
    parallel Prepare datagram in the three-node commit rows of
    Table 5-3. Weights accumulate in units of 1/1000. *)
val record_weighted : t -> Cost_model.primitive -> num:int -> den:int -> unit

(** [record_elided t p] counts an execution of [p] that an
    {!Profile.Integrated} node turned into a direct procedure call:
    the hop is attributed here instead of in the charged counters, so a
    run can report both what it paid for and what the architecture
    removed. *)
val record_elided : t -> Cost_model.primitive -> unit

(** [count t p] is the number of recorded executions of [p], rounded
    down when fractional executions were recorded. *)
val count : t -> Cost_model.primitive -> int

(** [weight t p] is the accumulated execution weight of [p] — the
    fractional count — as a float. *)
val weight : t -> Cost_model.primitive -> float

(** [elided_count t p] / [elided_weight t p] — executions of [p] elided
    by Integrated-profile nodes (zero on Classic nodes). *)
val elided_count : t -> Cost_model.primitive -> int

val elided_weight : t -> Cost_model.primitive -> float

(** {2 Per-node rollup}

    The charged counters are additionally rolled up by the node of the
    fiber that paid them (when known), so scale-out benches can report
    per-shard load without perturbing the engine-global accounting.
    Attribution happens in {!Engine.charge}/{!Engine.charge_fraction};
    nothing on the seed paths reads these counters. *)

(** [record_node t ~node p ~num ~den] counts num/den of one execution of
    [p] against [node]'s rollup (the global counters are unaffected —
    callers record those separately). *)
val record_node : t -> node:int -> Cost_model.primitive -> num:int -> den:int -> unit

(** [node_weight t ~node p] is [node]'s accumulated execution weight of
    [p]; 0 for nodes never charged. *)
val node_weight : t -> node:int -> Cost_model.primitive -> float

(** [nodes_tracked t] lists node ids with any attributed executions. *)
val nodes_tracked : t -> int list

(** [reset t] zeroes every counter. *)
val reset : t -> unit

(** [snapshot t] is an independent copy of the current counts. *)
val snapshot : t -> t

(** [diff ~later ~earlier] is the per-primitive difference of counts. *)
val diff : later:t -> earlier:t -> t

(** [weighted_cost t model] is the sum over primitives of
    count x latency, in microseconds — the paper's "System Time Predicted
    by Primitives". *)
val weighted_cost : t -> Cost_model.t -> int

(** [to_alist t] lists non-zero counts in Table 5-1 order. *)
val to_alist : t -> (Cost_model.primitive * int) list
