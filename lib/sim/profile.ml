type t = Classic | Integrated

let equal (a : t) (b : t) = a = b

let to_string = function Classic -> "classic" | Integrated -> "integrated"

let of_string = function
  | "classic" -> Some Classic
  | "integrated" -> Some Integrated
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
