(** Node architecture profiles.

    [Classic] is the prototype the paper measured: the Transaction
    Manager, Recovery Manager and kernel are separate processes per node
    and every hop between them costs an Accent message primitive.

    [Integrated] is the Section 5.3 "Improved TABS Architecture": the
    Transaction Manager, Recovery Manager and kernel are co-located in
    one process, so the message exchanges between them — the TM's log
    record traffic to the RM, the kernel/RM page-out WAL protocol, and
    the first-modification notice — become direct procedure calls. Such
    hops are {e elided}: they cost nothing and are counted separately by
    {!Metrics} (see {!Engine.elide}). The WAL, locking and commit state
    machines are unchanged, so both profiles produce identical
    commit/abort outcomes and identical committed data. Under
    [Integrated] the second phase of distributed commitment is also
    overlapped with succeeding transactions, as Section 5.3 assumes.

    All other messages — application/TM, data server/TM, data
    server/RM spooling, Communication Manager and network traffic — are
    between processes that remain separate and are charged identically
    under both profiles. *)

type t = Classic | Integrated

val equal : t -> t -> bool

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
