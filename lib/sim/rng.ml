(* splitmix64, truncated to OCaml's 63-bit ints. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let bool t ~p = float t < p

let split t = { state = next t }

(* Zipfian keys over [0, n): the standard Gray et al. quick generator
   (the one YCSB uses), parameterized by skew theta in [0, 1). theta = 0
   degenerates to uniform; theta -> 1 concentrates mass on key 0. Key
   ranks are popularity ranks: 0 is the hottest key. *)
module Zipf = struct
  type rng = t

  type t = { n : int; theta : float; alpha : float; zetan : float; eta : float }

  let zeta n theta =
    let acc = ref 0. in
    for i = 1 to n do
      acc := !acc +. (1. /. (float_of_int i ** theta))
    done;
    !acc

  let create ~n ~theta =
    if n <= 0 then invalid_arg "Zipf.create: n <= 0";
    if theta < 0. || theta >= 1. then
      invalid_arg "Zipf.create: theta outside [0, 1)";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    {
      n;
      theta;
      alpha = 1. /. (1. -. theta);
      zetan;
      eta =
        (1. -. ((2. /. float_of_int n) ** (1. -. theta)))
        /. (1. -. (zeta2 /. zetan));
    }

  let sample t (rng : rng) =
    if t.n = 1 then 0
    else begin
      let u = float rng in
      let uz = u *. t.zetan in
      if uz < 1. then 0
      else if uz < 1. +. (0.5 ** t.theta) then 1
      else
        let k =
          int_of_float
            (float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.) ** t.alpha))
        in
        if k < 0 then 0 else if k >= t.n then t.n - 1 else k
    end
end
