(** Deterministic pseudo-random number generator (splitmix64).

    The simulator never consults global randomness: every stochastic
    choice (fault injection, workload shuffling) draws from an explicitly
    seeded generator so that runs are reproducible. *)

type t

val create : seed:int -> t

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] on
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t ~p] is true with probability [p]. *)
val bool : t -> p:float -> bool

(** [split t] derives an independent generator. *)
val split : t -> t

(** Zipfian key popularity over [0, n) — the standard quick generator
    (Gray et al.; the one YCSB uses). Rank 0 is the hottest key.
    [theta] in [0, 1) tunes the skew: 0 is uniform, 0.99 is the classic
    heavily-skewed benchmark setting. Construction is O(n) (it
    precomputes the zeta normalizer); sampling is O(1). *)
module Zipf : sig
  type rng := t

  type t

  val create : n:int -> theta:float -> t

  (** [sample t rng] draws a key rank in [0, n). *)
  val sample : t -> rng -> int
end
