(* A/B switch between the optimized simulator core and the seed ("PR 0")
   implementation of its hot data structures.

   Baseline mode restores, verbatim, the seed-era hot path: the boxed
   binary event heap, the linear Metrics index scan, the hashtable
   per-node counters and node epochs, the list-append wait queues and
   the effect-based per-charge fiber lookup. The two paths are
   observationally identical — same event order, same virtual times,
   same metrics — which the determinism guard test asserts; only the
   wall-clock cost differs. `bench/main.exe simperf` runs every workload
   under both modes and reports the ratio.

   The mode is captured by each Engine/Metrics at creation, so flipping
   it mid-run never changes an existing engine's behavior. *)

let flag =
  ref
    (match Sys.getenv_opt "TABS_SIM_BASELINE" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let baseline () = !flag

let set_baseline b = flag := b

let with_baseline b f =
  let prev = !flag in
  flag := b;
  Fun.protect ~finally:(fun () -> flag := prev) f
