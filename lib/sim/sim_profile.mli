(** Debug switch selecting the simulator-core implementation.

    [baseline ()] true selects the seed-era hot path (boxed event heap,
    linear metrics index, hashtable epochs and per-node counters,
    list-append wait queues, effect-based per-charge fiber lookup);
    false (the default) selects the optimized core. Both orders of
    events, virtual times and metrics are bit-identical — only wall
    clock differs. Engines and metrics capture the mode at creation.

    Set [TABS_SIM_BASELINE=1] in the environment to default to the
    seed path (e.g. to run the whole test suite against it). *)

val baseline : unit -> bool

val set_baseline : bool -> unit

(** [with_baseline b f] runs [f] with the mode set to [b], restoring the
    previous mode afterwards (also on exceptions). *)
val with_baseline : bool -> (unit -> 'a) -> 'a
