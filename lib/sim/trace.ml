(* Structured tracing hook for the simulation engine.

   The event type is extensible so that each layer (lock manager, WAL,
   transaction manager, ...) declares its own constructors without this
   module — or the engine — depending on any of them; the same idiom the
   network uses for [Network.payload]. Consumers that want to decode
   events (lib/obs) sit at the top of the dependency stack and match on
   every layer's constructors, with a catch-all for the rest. *)

type abort_reason =
  | Lock_timeout (* a lock wait expired (deadlock resolution by timeout) *)
  | Deadlock (* an explicit deadlock-detection victim *)
  | Explicit (* application called abort, or a server raised *)
  | Comm_failure (* a 2PC participant never answered (vote timeout) *)
  | Vote_no (* a participant voted No / failed local prepare *)
  | Remote_verdict (* subordinate applying a coordinator's abort *)
  | Crash (* recovery rolled back a loser after a node crash *)

let reason_name = function
  | Lock_timeout -> "lock_timeout"
  | Deadlock -> "deadlock"
  | Explicit -> "explicit"
  | Comm_failure -> "comm_failure"
  | Vote_no -> "vote_no"
  | Remote_verdict -> "remote_verdict"
  | Crash -> "crash"

type event = ..

(* A free-form annotation any layer (or a test) can emit. *)
type event += Note of string

type sink = time:int -> event -> unit
