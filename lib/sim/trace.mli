(** Structured tracing: typed events stamped with virtual time.

    Layers declare their own constructors by extending {!event}; the
    engine only forwards events to the installed {!sink} (see
    {!Engine.set_tracer}). Tracing is strictly observational — emitting
    an event never charges metrics, delays a fiber, or advances the
    clock — and costs nothing when no sink is installed, provided
    emission sites guard event construction with {!Engine.tracing}. *)

(** Why a (top-level) transaction aborted. *)
type abort_reason =
  | Lock_timeout  (** a lock wait expired (deadlock resolution by timeout) *)
  | Deadlock  (** an explicit deadlock-detection victim *)
  | Explicit  (** application called abort, or a server raised *)
  | Comm_failure  (** a 2PC participant never answered (vote timeout) *)
  | Vote_no  (** a participant voted No / failed local prepare *)
  | Remote_verdict  (** subordinate applying a coordinator's abort *)
  | Crash  (** recovery rolled back a loser after a node crash *)

val reason_name : abort_reason -> string

type event = ..

type event += Note of string

type sink = time:int -> event -> unit
