open Tabs_sim

type segment_id = int

type page_id = { segment : segment_id; page : int }

type sector = { mutable data : Page.t; mutable seqno : int }

type segment = { mutable sectors : sector array }

type t = {
  engine : Engine.t;
  segments : (segment_id, segment) Hashtbl.t;
  mutable writes : int;
}

let create engine = { engine; segments = Hashtbl.create 16; writes = 0 }

(* A never-written sector reports sequence number -1: the first log
   record is LSN 0, so 0 would be indistinguishable from "written
   covering LSN 0" to the recovery gates. *)
let fresh_sector () = { data = Page.zero (); seqno = -1 }

let ensure_segment t seg ~pages =
  match Hashtbl.find_opt t.segments seg with
  | None ->
      Hashtbl.add t.segments seg
        { sectors = Array.init pages (fun _ -> fresh_sector ()) }
  | Some s ->
      let old = Array.length s.sectors in
      if pages > old then begin
        let sectors = Array.init pages (fun i ->
            if i < old then s.sectors.(i) else fresh_sector ())
        in
        s.sectors <- sectors
      end

let segment_pages t seg =
  match Hashtbl.find_opt t.segments seg with
  | None -> 0
  | Some s -> Array.length s.sectors

let sector t pid =
  match Hashtbl.find_opt t.segments pid.segment with
  | None -> invalid_arg "Disk: unknown segment"
  | Some s ->
      if pid.page < 0 || pid.page >= Array.length s.sectors then
        invalid_arg "Disk: page out of segment bounds";
      s.sectors.(pid.page)

let read t pid ~access =
  let prim =
    match access with
    | `Random -> Cost_model.Random_paged_io
    | `Sequential -> Cost_model.Sequential_read
  in
  Engine.charge t.engine prim;
  Page.copy (sector t pid).data

let write t pid page ~seqno =
  Engine.charge t.engine Cost_model.Random_paged_io;
  let s = sector t pid in
  s.data <- Page.copy page;
  s.seqno <- seqno;
  t.writes <- t.writes + 1

let read_nocharge t pid = Page.copy (sector t pid).data

let write_nocharge t pid page ~seqno =
  let s = sector t pid in
  s.data <- Page.copy page;
  s.seqno <- seqno;
  t.writes <- t.writes + 1

let seqno t pid = (sector t pid).seqno

let copy t ~engine =
  let fresh = { engine; segments = Hashtbl.create 16; writes = t.writes } in
  Hashtbl.iter
    (fun seg s ->
      Hashtbl.add fresh.segments seg
        {
          sectors =
            Array.map
              (fun sec -> { data = Page.copy sec.data; seqno = sec.seqno })
              s.sectors;
        })
    t.segments;
  fresh

let pages_written t = t.writes
