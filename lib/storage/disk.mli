(** Non-volatile storage: the disk backing recoverable segments.

    Contents survive node crashes (Section 2.1.3's middle storage tier;
    like the paper, we do not model media failure). Each sector carries
    header space for a 39-bit sequence number written atomically with the
    page — the hook required by operation logging (Section 3.2.1).

    Reads and writes charge demand-paging I/O costs to the calling
    fiber. *)

type segment_id = int

(** Address of one page of one recoverable segment. *)
type page_id = { segment : segment_id; page : int }

type t

(** [create engine] makes an empty disk whose I/O charges costs on
    [engine]. *)
val create : Tabs_sim.Engine.t -> t

(** [ensure_segment t seg ~pages] creates segment [seg] with [pages]
    zeroed pages if absent; growing an existing segment keeps old data. *)
val ensure_segment : t -> segment_id -> pages:int -> unit

(** [segment_pages t seg] is the current size of [seg] in pages, 0 if
    absent. *)
val segment_pages : t -> segment_id -> int

(** [read t pid ~access] reads a page, charging one
    {!Tabs_sim.Cost_model.Random_paged_io} or [Sequential_read]
    according to [access]. Must run inside a fiber. *)
val read : t -> page_id -> access:[ `Random | `Sequential ] -> Page.t

(** [write t pid page ~seqno] writes the page and atomically records
    [seqno] in the sector header, charging one random paged I/O. *)
val write : t -> page_id -> Page.t -> seqno:int -> unit

(** [read_nocharge t pid] peeks without cost — for recovery-time
    inspection where the cost is charged by the caller, and for tests. *)
val read_nocharge : t -> page_id -> Page.t

(** [write_nocharge t pid page ~seqno] writes without cost accounting. *)
val write_nocharge : t -> page_id -> Page.t -> seqno:int -> unit

(** [seqno t pid] is the sequence number last written with the page
    (-1 for never-written pages, so a write covering LSN 0 is
    distinguishable). *)
val seqno : t -> page_id -> int

(** [copy t ~engine] is an independent deep copy charging its I/O to
    [engine] — a frozen image of the disk at a crash instant, for tests
    that replay recovery against it. *)
val copy : t -> engine:Tabs_sim.Engine.t -> t

(** Number of pages ever written, a convenience for tests. *)
val pages_written : t -> int
