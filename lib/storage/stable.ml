type t = {
  mutable records : string array;
  (* records.(i) holds position first + i *)
  mutable first : int;
  mutable count : int;
  mutable bytes : int;
}

let create () = { records = Array.make 64 ""; first = 0; count = 0; bytes = 0 }

let next t = t.first + t.count

let first t = t.first

let grow t =
  let bigger = Array.make (2 * Array.length t.records) "" in
  Array.blit t.records 0 bigger 0 t.count;
  t.records <- bigger

let append t record =
  if t.count = Array.length t.records then grow t;
  t.records.(t.count) <- record;
  t.count <- t.count + 1;
  t.bytes <- t.bytes + String.length record;
  t.first + t.count - 1

let read t pos =
  if pos < t.first || pos >= next t then raise Not_found;
  t.records.(pos - t.first)

let truncate_prefix t ~keep_from =
  if keep_from > t.first then begin
    let drop = min (keep_from - t.first) t.count in
    for i = 0 to drop - 1 do
      t.bytes <- t.bytes - String.length t.records.(i)
    done;
    let remaining = t.count - drop in
    let fresh = Array.make (max 64 (Array.length t.records)) "" in
    Array.blit t.records drop fresh 0 remaining;
    t.records <- fresh;
    t.first <- t.first + drop;
    t.count <- remaining
  end

let copy t =
  {
    records = Array.copy t.records;
    first = t.first;
    count = t.count;
    bytes = t.bytes;
  }

let iter t ~f =
  for i = 0 to t.count - 1 do
    f (t.first + i) t.records.(i)
  done

let total_bytes t = t.bytes
