(** Stable storage: the append-only home of the log.

    Survives all failures we model (the paper's Perqs had one disk, so
    their log was merely non-volatile; we implement the stable contract
    of Section 2.1.3 — like the paper, media failure is out of scope).

    Records are opaque strings; positions are dense indices that survive
    prefix truncation (reclamation). Cost accounting for forces lives in
    the log manager, not here, because the paper charges one
    stable-storage write per forced log *page*, with group commit batching
    multiple records. *)

type t

val create : unit -> t

(** [append t record] appends and returns the record's position. *)
val append : t -> string -> int

(** [read t pos] returns the record at [pos]. Raises [Not_found] if the
    position was truncated or never written. *)
val read : t -> int -> string

(** [first t] / [next t] delimit the live range: positions
    [first <= p < next] are readable. *)
val first : t -> int

val next : t -> int

(** [truncate_prefix t ~keep_from] discards records before [keep_from]
    (log reclamation). *)
val truncate_prefix : t -> keep_from:int -> unit

(** [iter t ~f] applies [f pos record] over live records in append
    order. *)
val iter : t -> f:(int -> string -> unit) -> unit

(** [copy t] is an independent deep copy — a frozen image of the log at
    a crash instant, for tests that replay recovery against it. *)
val copy : t -> t

(** [total_bytes t] is the live log size in bytes, used by the
    reclamation policy. *)
val total_bytes : t -> int
