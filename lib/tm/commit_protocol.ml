(* Which atomic-commitment protocol a node's Transaction Manager runs
   for its distributed transactions. [Two_phase] is the paper's tree
   presumed-abort 2PC and the default everywhere; [Paxos] is Gray &
   Lamport's Paxos Commit with 2F+1 acceptor replicas, the F=0
   degenerate case of which is 2PC. The setting is cluster-wide by
   convention: every node of a cluster must be created with the same
   value, and the acceptor replicas live on nodes [0 .. 2F] (so a
   cluster running [Paxos { f }] needs at least 2F+1 nodes). *)

type t = Two_phase | Paxos of { f : int }

let default = Two_phase

(* Acceptor placement convention: the first 2F+1 nodes. *)
let acceptors = function
  | Two_phase -> []
  | Paxos { f } -> List.init ((2 * f) + 1) Fun.id

let quorum = function Two_phase -> 0 | Paxos { f } -> f + 1

let to_string = function
  | Two_phase -> "2pc"
  | Paxos { f } -> Printf.sprintf "paxos:%d" f

let of_string s =
  match String.lowercase_ascii s with
  | "2pc" | "twophase" | "two-phase" | "two_phase" -> Some Two_phase
  | "paxos" -> Some (Paxos { f = 1 })
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "paxos" -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some f when f >= 1 && f <= 3 -> Some (Paxos { f })
          | _ -> None)
      | _ -> None)

let pp fmt t = Format.pp_print_string fmt (to_string t)
