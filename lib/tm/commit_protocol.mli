(** Selection of the atomic-commitment protocol for distributed
    transactions.

    [Two_phase] (the default) is the paper's tree presumed-abort 2PC.
    [Paxos of {f}] is Gray & Lamport's {e Paxos Commit}: one Paxos
    consensus instance per root-level participant, replicated over
    2F+1 acceptors so commit/abort survives the loss of any F of them
    — including the coordinator.

    The setting is cluster-wide by convention: every node of a cluster
    must be created with the same value. Acceptors live on nodes
    [0 .. 2F], so a [Paxos {f}] cluster needs at least 2F+1 nodes. *)

type t =
  | Two_phase
  | Paxos of { f : int }  (** tolerates [f] acceptor failures, [1 <= f <= 3] *)

val default : t
(** [Two_phase]. *)

val acceptors : t -> int list
(** The acceptor node ids ([0 .. 2F]); empty under [Two_phase]. *)

val quorum : t -> int
(** F+1, the acceptor majority; 0 under [Two_phase]. *)

val to_string : t -> string
(** ["2pc"] or ["paxos:<f>"]. *)

val of_string : string -> t option
(** Accepts ["2pc"], ["twophase"], ["paxos"] (F=1), ["paxos:<f>"]. *)

val pp : Format.formatter -> t -> unit
