open Tabs_sim
open Tabs_wal
open Tabs_net
open Tabs_recovery

(* Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"):
   one Paxos consensus instance per root-level participant, whose value
   is that participant's vote (Prepared or Aborted), replicated over
   2F+1 acceptors on nodes 0..2F. The transaction commits iff every
   instance chooses Prepared.

   Fast path (ballot 0): the coordinator is the initial leader. Each
   participant sends its vote directly to all acceptors — the vote IS
   the ballot-0 phase-2a message — and each acceptor reports its accept
   to the coordinator. Once every instance has F+1 Prepared accepts the
   outcome is quorum-durable and the coordinator announces Commit
   without forcing its own commit record: the same 2-message-delay
   critical path as 2PC (prepare out, votes in), with the acceptor
   fan-out riding the Comm Manager's datagram batching.

   Takeover: if the coordinator goes silent, any acceptor runs a
   classic Paxos round at a ballot > 0 over all instances at once —
   phase 1a to the acceptors, F+1 promises (which intersect every
   ballot-0 accept quorum, so any chosen value is discovered), then
   phase 2a proposing the highest-ballot accepted value per instance
   and Aborted for instances with no accepted value. F+1 phase-2b
   accepts decide the transaction, and the decision is broadcast to
   acceptors, participants, and the coordinator.

   Ballot numbering: ballot = (attempt+1)*16 + slot + 1, where slot is
   the acceptor's rank (0..2F <= 12) or 14 for the coordinator — unique
   per proposer and increasing per attempt, so competing takeovers
   never collide. *)

type Trace.event +=
  | Paxos_vote_cast of { node : int; tid : Tid.t; part : int; yes : bool }
  | Paxos_accepted of {
      node : int;
      tid : Tid.t;
      part : int;
      ballot : int;
      yes : bool;
    }
  | Paxos_takeover of { node : int; tid : Tid.t; ballot : int }
  | Paxos_decided of {
      node : int;
      tid : Tid.t;
      committed : bool;
      ballot : int;
    }

type Network.payload +=
  | Px_begin of { tid : Tid.t; parts : int list }
      (* coordinator -> acceptors: instance set announcement *)
  | Px_vote of { tid : Tid.t; part : int; yes : bool }
      (* participant -> acceptors: ballot-0 phase 2a *)
  | Px_accepted0 of { tid : Tid.t; part : int; yes : bool }
      (* acceptor -> coordinator: ballot-0 phase 2b *)
  | Px_prepare_b of { tid : Tid.t; ballot : int } (* takeover phase 1a *)
  | Px_promise of {
      tid : Tid.t;
      ballot : int;
      parts : int list option;
      accepted : (int * int * bool) list; (* part, accepted ballot, yes *)
    } (* phase 1b *)
  | Px_propose of { tid : Tid.t; ballot : int; values : (int * bool) list }
      (* phase 2a, all instances at once *)
  | Px_accepted_b of { tid : Tid.t; ballot : int } (* phase 2b *)
  | Px_decision of { tid : Tid.t; committed : bool }
  | Px_status_query of Tid.t
      (* in-doubt participant -> acceptors; answered with Px_decision
         once one is known *)

(* Acceptor-side state for one transaction. *)
type inst = { mutable abal : int; mutable ayes : bool }

type atxn = {
  a_tid : Tid.t;
  mutable promised : int;
  mutable parts : int list option;
  insts : (int, inst) Hashtbl.t; (* participant node -> accepted value *)
  mutable a_first_lsn : Record.lsn option;
      (* oldest log record backing this state: the log-truncation floor *)
  mutable watching : bool;
}

(* Ballot-0 leader state at the coordinator. *)
type leader = {
  mutable l_parts : int list;
  l_yes : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (* instance -> acceptors that reported a Prepared accept *)
  mutable l_no : bool;
  mutable l_decided : bool option; (* a takeover raced us to a decision *)
  l_signal : unit Engine.Waitq.t;
}

(* One in-flight takeover round on this node. *)
type round = {
  r_ballot : int;
  mutable r_promises : (int list option * (int * int * bool) list) list;
  mutable r_accepts : int;
  mutable r_phase : int; (* 1 or 2 *)
  r_signal : unit Engine.Waitq.t;
}

type t = {
  engine : Engine.t;
  node : int;
  f : int;
  rm : Recovery_mgr.t;
  cm : Comm_mgr.t;
  acceptors : int list;
  rank : int; (* this node's acceptor rank, or -1 *)
  axns : (Tid.t, atxn) Hashtbl.t;
  decided : (Tid.t, bool) Hashtbl.t;
  leaders : (Tid.t, leader) Hashtbl.t;
  rounds : (Tid.t * int, round) Hashtbl.t;
      (* keyed by (tid, ballot): the coordinator-resolver and this
         node's acceptor watchdog can both run rounds for one tid *)
  takeover_base : int;
  takeover_retry : int;
}

let acceptors t = t.acceptors

let tracing t = Engine.tracing t.engine

let emit t ev = Engine.emit t.engine ev

let quorum t = t.f + 1

let decision_of t tid = Hashtbl.find_opt t.decided tid

(* The truncation floor: oldest log record still backing undecided
   consensus state. Decided transactions drop out when the decision is
   noted. *)
let truncation_floor t =
  Hashtbl.fold
    (fun _ a acc ->
      match (a.a_first_lsn, acc) with
      | None, acc -> acc
      | Some l, None -> Some l
      | Some l, Some m -> Some (min l m))
    t.axns None

let log_forced t tid a record =
  let lsn = Recovery_mgr.append_tm_record t.rm record in
  if a.a_first_lsn = None then a.a_first_lsn <- Some lsn;
  ignore tid;
  Recovery_mgr.force_through t.rm lsn

let send t ~dest payload = Comm_mgr.send_datagram t.cm ~dest payload

let broadcast t ~dests payload =
  Comm_mgr.send_datagrams_parallel t.cm ~dests payload

(* Decision handling --------------------------------------------------- *)

let note_decision t tid ~committed ~ballot =
  if not (Hashtbl.mem t.decided tid) then begin
    Hashtbl.replace t.decided tid committed;
    (match Hashtbl.find_opt t.axns tid with
    | Some _ ->
        (* durable enough unforced: if lost, a takeover re-derives the
           same decision from the (forced) accept quorums *)
        ignore
          (Recovery_mgr.append_tm_record t.rm
             (Record.Paxos_decision { tid; committed }));
        Hashtbl.remove t.axns tid (* releases the truncation floor *)
    | None -> ());
    if tracing t then
      emit t (Paxos_decided { node = t.node; tid; committed; ballot })
  end;
  (* wake a coordinator fiber still waiting on the fast path *)
  match Hashtbl.find_opt t.leaders tid with
  | Some l ->
      if l.l_decided = None then begin
        l.l_decided <- Some committed;
        ignore (Engine.Waitq.signal l.l_signal ~engine:t.engine ())
      end
  | None -> ()

(* Acceptor ------------------------------------------------------------ *)

let rec ensure_atxn t tid =
  match Hashtbl.find_opt t.axns tid with
  | Some a -> a
  | None ->
      let a =
        {
          a_tid = tid;
          promised = 0;
          parts = None;
          insts = Hashtbl.create 4;
          a_first_lsn = None;
          watching = false;
        }
      in
      Hashtbl.add t.axns tid a;
      start_watchdog t a;
      a

(* Coordinator-failure takeover: once a transaction has sat undecided
   past the takeover delay, this acceptor runs ballots until a decision
   is reached. Ranks are staggered so in the common case only the
   first surviving acceptor pays for a round. *)
and start_watchdog t a =
  if (not a.watching) && t.rank >= 0 then begin
    a.watching <- true;
    ignore
      (Engine.spawn t.engine ~node:t.node (fun () ->
           Engine.delay (t.takeover_base + (t.rank * 1_000_000));
           let tid = a.a_tid in
           if not (Hashtbl.mem t.decided tid) then
             ignore (run_takeover t tid ~slot:t.rank)))
  end

(* A full Paxos round over every instance at once, at ballots owned by
   [slot]. Returns the decision; loops (with backoff) until one is
   reached, so the caller blocks exactly when Paxos must: while fewer
   than F+1 acceptors are reachable. *)
and run_takeover t tid ~slot =
  let rec attempt n =
    match decision_of t tid with
    | Some committed -> committed
    | None ->
        let ballot = ((n + 1) * 16) + slot + 1 in
        if tracing t then emit t (Paxos_takeover { node = t.node; tid; ballot });
        let r =
          {
            r_ballot = ballot;
            r_promises = [];
            r_accepts = 0;
            r_phase = 1;
            r_signal = Engine.Waitq.create ();
          }
        in
        Hashtbl.replace t.rounds (tid, ballot) r;
        broadcast t ~dests:t.acceptors (Px_prepare_b { tid; ballot });
        let deadline = Engine.now t.engine + 800_000 in
        let rec wait_phase count_of =
          if count_of r >= quorum t then true
          else
            let remaining = deadline - Engine.now t.engine in
            if remaining <= 0 then false
            else
              match
                Engine.Waitq.wait_timeout r.r_signal ~engine:t.engine
                  ~timeout:remaining
              with
              | Some () -> wait_phase count_of
              | None -> false
        in
        let retry () =
          Hashtbl.remove t.rounds (tid, ballot);
          (* slot-staggered backoff so concurrent proposers (the
             coordinator-resolver plus up to 2F+1 watchdogs) cannot
             duel in lock-step forever *)
          Engine.delay (t.takeover_retry + (slot * 300_000));
          attempt (n + 1)
        in
        if not (wait_phase (fun r -> List.length r.r_promises)) then retry ()
        else begin
          (* F+1 promises in hand: any ballot-0 quorum intersects them,
             so every chosen value is visible below. *)
          let parts =
            let from_promises =
              List.find_map (fun (p, _) -> p) r.r_promises
            in
            match from_promises with
            | Some p -> Some p
            | None -> (
                match Hashtbl.find_opt t.axns tid with
                | Some a -> a.parts
                | None -> None)
          in
          (* With the participant set unknown, consensus still runs on
             the one instance guaranteed to exist — the coordinator's
             own. If that instance chooses Aborted the transaction can
             never commit (commit needs every instance Prepared), so
             Abort is safe to announce globally. *)
          let insts =
            match parts with Some p -> p | None -> [ tid.Tid.node ]
          in
          let value_of part =
            let best =
              List.fold_left
                (fun acc (_, accepted) ->
                  List.fold_left
                    (fun acc (p, b, yes) ->
                      if p = part then
                        match acc with
                        | Some (b', _) when b' >= b -> acc
                        | _ -> Some (b, yes)
                      else acc)
                    acc accepted)
                None r.r_promises
            in
            match best with Some (_, yes) -> yes | None -> false
          in
          let values = List.map (fun p -> (p, value_of p)) insts in
          r.r_phase <- 2;
          broadcast t ~dests:t.acceptors (Px_propose { tid; ballot; values });
          if not (wait_phase (fun r -> r.r_accepts)) then retry ()
          else begin
            Hashtbl.remove t.rounds (tid, ballot);
            let all_yes = List.for_all snd values in
            match (parts, all_yes) with
            | Some _, committed ->
                announce_decision t tid ~committed ~ballot
                  ~also:(Option.value parts ~default:[]);
                committed
            | None, false ->
                announce_decision t tid ~committed:false ~ballot ~also:[];
                false
            | None, true ->
                (* coordinator voted Prepared but no acceptor knows the
                   instance set yet: retry until one does *)
                Engine.delay (t.takeover_retry + (slot * 300_000));
                attempt (n + 1)
          end
        end
  in
  attempt 0

(* Record the decision locally and tell everyone who may be blocked on
   it: the acceptors (so status queries are answerable), the
   participants, and the coordinator node. *)
and announce_decision t tid ~committed ~ballot ~also =
  note_decision t tid ~committed ~ballot;
  let dests =
    List.sort_uniq compare ((tid.Tid.node :: t.acceptors) @ also)
    |> List.filter (fun n -> n <> t.node)
  in
  broadcast t ~dests (Px_decision { tid; committed })

(* Message handling ---------------------------------------------------- *)

let handle_begin t tid ~parts =
  if not (Hashtbl.mem t.decided tid) then begin
    let a = ensure_atxn t tid in
    if a.parts = None then a.parts <- Some parts
  end

let accept_value t a tid ~part ~ballot ~yes =
  let i =
    match Hashtbl.find_opt a.insts part with
    | Some i -> i
    | None ->
        let i = { abal = -1; ayes = false } in
        Hashtbl.add a.insts part i;
        i
  in
  i.abal <- ballot;
  i.ayes <- yes;
  log_forced t tid a (Record.Paxos_accept { tid; part; ballot; yes });
  if tracing t then
    emit t (Paxos_accepted { node = t.node; tid; part; ballot; yes })

let handle_vote t tid ~part ~yes =
  if not (Hashtbl.mem t.decided tid) then begin
    let a = ensure_atxn t tid in
    (* a ballot-0 accept is allowed only before any promise *)
    let fresh =
      match Hashtbl.find_opt a.insts part with
      | Some i -> i.abal < 0
      | None -> true
    in
    if a.promised = 0 && fresh then begin
      accept_value t a tid ~part ~ballot:0 ~yes;
      send t ~dest:tid.Tid.node (Px_accepted0 { tid; part; yes })
    end
  end
  else
    (* a late vote for a decided transaction: the voter is (or will be)
       blocked on the verdict — answer it directly *)
    send t ~dest:part
      (Px_decision { tid; committed = Hashtbl.find t.decided tid })

let handle_prepare_ballot t tid ~ballot ~src =
  match Hashtbl.find_opt t.decided tid with
  | Some committed ->
      (* already decided: don't resurrect acceptor state for a new
         ballot, short-circuit the proposer instead *)
      send t ~dest:src (Px_decision { tid; committed })
  | None ->
  let a = ensure_atxn t tid in
  if ballot > a.promised then begin
    a.promised <- ballot;
    log_forced t tid a (Record.Paxos_promise { tid; ballot });
    let accepted =
      Hashtbl.fold
        (fun part i acc ->
          if i.abal >= 0 then (part, i.abal, i.ayes) :: acc else acc)
        a.insts []
    in
    send t ~dest:src (Px_promise { tid; ballot; parts = a.parts; accepted })
  end

let handle_propose t tid ~ballot ~values ~src =
  match Hashtbl.find_opt t.decided tid with
  | Some committed -> send t ~dest:src (Px_decision { tid; committed })
  | None ->
  let a = ensure_atxn t tid in
  if ballot >= a.promised then begin
    a.promised <- ballot;
    if a.parts = None && List.length values > 1 then
      a.parts <- Some (List.map fst values);
    List.iter (fun (part, yes) -> accept_value t a tid ~part ~ballot ~yes) values;
    send t ~dest:src (Px_accepted_b { tid; ballot })
  end

let handle_promise t tid ~ballot ~parts ~accepted =
  match Hashtbl.find_opt t.rounds (tid, ballot) with
  | Some r when r.r_phase = 1 ->
      r.r_promises <- (parts, accepted) :: r.r_promises;
      if List.length r.r_promises >= quorum t then
        ignore (Engine.Waitq.signal r.r_signal ~engine:t.engine ())
  | _ -> ()

let handle_accepted_b t tid ~ballot =
  match Hashtbl.find_opt t.rounds (tid, ballot) with
  | Some r when r.r_phase = 2 ->
      r.r_accepts <- r.r_accepts + 1;
      if r.r_accepts >= quorum t then
        ignore (Engine.Waitq.signal r.r_signal ~engine:t.engine ())
  | _ -> ()

let quorum_reached t l =
  l.l_parts <> []
  && List.for_all
       (fun p ->
         match Hashtbl.find_opt l.l_yes p with
         | Some set -> Hashtbl.length set >= quorum t
         | None -> false)
       l.l_parts

let handle_accepted0 t tid ~part ~yes ~src =
  match Hashtbl.find_opt t.leaders tid with
  | None -> ()
  | Some l ->
      if yes then begin
        let set =
          match Hashtbl.find_opt l.l_yes part with
          | Some s -> s
          | None ->
              let s = Hashtbl.create 4 in
              Hashtbl.add l.l_yes part s;
              s
        in
        Hashtbl.replace set src ()
      end
      else l.l_no <- true;
      if l.l_no || quorum_reached t l then
        ignore (Engine.Waitq.signal l.l_signal ~engine:t.engine ())

let handle_status_query t tid ~src =
  match decision_of t tid with
  | Some committed -> send t ~dest:src (Px_decision { tid; committed })
  | None ->
      (* stay silent but make sure a takeover is pending: the querier is
         a blocked in-doubt participant *)
      ignore (ensure_atxn t tid)

(* Coordinator (ballot-0 leader) API ----------------------------------- *)

let begin_leader t tid ~parts =
  let l =
    {
      l_parts = parts;
      l_yes = Hashtbl.create 4;
      l_no = false;
      l_decided = None;
      l_signal = Engine.Waitq.create ();
    }
  in
  Hashtbl.replace t.leaders tid l;
  broadcast t ~dests:t.acceptors (Px_begin { tid; parts })

let end_leader t tid = Hashtbl.remove t.leaders tid

let cast_vote t tid ~part ~yes =
  if tracing t then emit t (Paxos_vote_cast { node = t.node; tid; part; yes });
  broadcast t ~dests:t.acceptors (Px_vote { tid; part; yes })

let await_quorum t tid ~timeout =
  match Hashtbl.find_opt t.leaders tid with
  | None -> `Timeout
  | Some l ->
      let deadline = Engine.now t.engine + timeout in
      let rec wait () =
        match l.l_decided with
        | Some committed -> `Decided committed
        | None ->
            if l.l_no then `Abort
            else if quorum_reached t l then `Commit
            else
              let remaining = deadline - Engine.now t.engine in
              if remaining <= 0 then `Timeout
              else
                match
                  Engine.Waitq.wait_timeout l.l_signal ~engine:t.engine
                    ~timeout:remaining
                with
                | Some () -> wait ()
                | None -> `Timeout
      in
      wait ()

(* The coordinator announcing its fast-path decision. No log force is
   needed first: each instance's F+1 accepts are already stable at the
   acceptors, and any takeover quorum intersects them. *)
let announce t tid ~committed =
  note_decision t tid ~committed ~ballot:0;
  let dests = List.filter (fun n -> n <> t.node) t.acceptors in
  broadcast t ~dests (Px_decision { tid; committed })

(* A blocked coordinator resolving through consensus (vote timeout with
   silent participants: presumed abort must not be unilateral, because a
   silent participant's Prepared vote may already sit in an acceptor
   quorum). Slot 14 keeps its ballots disjoint from every acceptor's. *)
let resolve_as_coordinator t tid = run_takeover t tid ~slot:14

(* Restart ------------------------------------------------------------- *)

let reseed t records =
  List.iter
    (fun (lsn, record) ->
      match record with
      | Record.Paxos_promise { tid; ballot } ->
          let a = ensure_atxn t tid in
          if ballot > a.promised then a.promised <- ballot;
          if a.a_first_lsn = None then a.a_first_lsn <- Some lsn
      | Record.Paxos_accept { tid; part; ballot; yes } ->
          let a = ensure_atxn t tid in
          let i =
            match Hashtbl.find_opt a.insts part with
            | Some i -> i
            | None ->
                let i = { abal = -1; ayes = false } in
                Hashtbl.add a.insts part i;
                i
          in
          if ballot > i.abal then begin
            i.abal <- ballot;
            i.ayes <- yes
          end;
          if a.promised < ballot then a.promised <- ballot;
          if a.a_first_lsn = None then a.a_first_lsn <- Some lsn
      | Record.Paxos_decision { tid; committed } ->
          Hashtbl.replace t.decided tid committed;
          Hashtbl.remove t.axns tid
      | _ -> ())
    records

let create engine ~node ~f ~rm ~cm () =
  let acceptors = List.init ((2 * f) + 1) Fun.id in
  let rank = if node <= 2 * f then node else -1 in
  let t =
    {
      engine;
      node;
      f;
      rm;
      cm;
      acceptors;
      rank;
      axns = Hashtbl.create 16;
      decided = Hashtbl.create 32;
      leaders = Hashtbl.create 8;
      rounds = Hashtbl.create 4;
      takeover_base = 2_500_000;
      takeover_retry = 1_500_000;
    }
  in
  Recovery_mgr.set_truncation_floor_source rm (fun () -> truncation_floor t);
  Comm_mgr.add_datagram_handler cm (fun ~src payload ->
      match payload with
      | Px_begin { tid; parts } -> handle_begin t tid ~parts
      | Px_vote { tid; part; yes } -> handle_vote t tid ~part ~yes
      | Px_accepted0 { tid; part; yes } -> handle_accepted0 t tid ~part ~yes ~src
      | Px_prepare_b { tid; ballot } -> handle_prepare_ballot t tid ~ballot ~src
      | Px_promise { tid; ballot; parts; accepted } ->
          handle_promise t tid ~ballot ~parts ~accepted
      | Px_propose { tid; ballot; values } ->
          handle_propose t tid ~ballot ~values ~src
      | Px_accepted_b { tid; ballot } -> handle_accepted_b t tid ~ballot
      | Px_decision { tid; committed } ->
          note_decision t tid ~committed ~ballot:(-1)
      | Px_status_query tid -> handle_status_query t tid ~src
      | _ -> ());
  t
