(** Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"):
    the non-blocking commit protocol behind
    {!Commit_protocol.Paxos}. One Paxos consensus instance per
    root-level participant — the instance's value is that participant's
    vote — replicated over 2F+1 acceptors on nodes 0..2F; the
    transaction commits iff every instance chooses Prepared.

    On the fast path (ballot 0) the coordinator is the leader and each
    participant's vote, multicast to the acceptors, doubles as the
    phase-2a message: the same two-message-delay critical path as 2PC.
    Once every instance holds F+1 Prepared accepts the outcome is
    quorum-durable, so the coordinator announces Commit {e without
    forcing a commit record}. If the coordinator goes silent, any
    acceptor takes over with a classic Paxos round at a higher ballot —
    proposing Aborted for instances with no accepted value — so in-doubt
    participants are released as long as F+1 acceptors survive.

    One [t] serves both roles on a node: acceptor state machine (when
    the node's id is <= 2F) and ballot-0 leader bookkeeping for
    transactions this node coordinates. Acceptor promises and accepts
    are logged ({!Tabs_wal.Record.Paxos_promise} /
    [Paxos_accept]) and forced through the Recovery Manager's group
    commit; they join no transaction chain, so the acceptor feeds
    {!Tabs_recovery.Recovery_mgr.set_truncation_floor_source} to keep
    reclamation from eating undecided consensus state. *)

type Tabs_sim.Trace.event +=
  | Paxos_vote_cast of {
      node : int;
      tid : Tabs_wal.Tid.t;
      part : int;
      yes : bool;
    }  (** a participant's vote multicast to the acceptors *)
  | Paxos_accepted of {
      node : int;
      tid : Tabs_wal.Tid.t;
      part : int;
      ballot : int;
      yes : bool;
    }  (** an acceptor logged an accept for one instance *)
  | Paxos_takeover of { node : int; tid : Tabs_wal.Tid.t; ballot : int }
      (** a node opened a ballot to resolve a stalled transaction *)
  | Paxos_decided of {
      node : int;
      tid : Tabs_wal.Tid.t;
      committed : bool;
      ballot : int;
    }  (** a node learned the global decision (ballot -1: by message) *)

type Tabs_net.Network.payload +=
  | Px_begin of { tid : Tabs_wal.Tid.t; parts : int list }
  | Px_vote of { tid : Tabs_wal.Tid.t; part : int; yes : bool }
  | Px_accepted0 of { tid : Tabs_wal.Tid.t; part : int; yes : bool }
  | Px_prepare_b of { tid : Tabs_wal.Tid.t; ballot : int }
  | Px_promise of {
      tid : Tabs_wal.Tid.t;
      ballot : int;
      parts : int list option;
      accepted : (int * int * bool) list;
    }
  | Px_propose of {
      tid : Tabs_wal.Tid.t;
      ballot : int;
      values : (int * bool) list;
    }
  | Px_accepted_b of { tid : Tabs_wal.Tid.t; ballot : int }
  | Px_decision of { tid : Tabs_wal.Tid.t; committed : bool }
  | Px_status_query of Tabs_wal.Tid.t

type t

(** [create engine ~node ~f ~rm ~cm ()] builds the node's Paxos Commit
    role(s), registers the datagram handler for the [Px_*] payloads, and
    wires the acceptor's log-truncation floor into [rm]. Every node of a
    [Paxos {f}] cluster creates one. *)
val create :
  Tabs_sim.Engine.t ->
  node:int ->
  f:int ->
  rm:Tabs_recovery.Recovery_mgr.t ->
  cm:Tabs_net.Comm_mgr.t ->
  unit ->
  t

(** The acceptor node ids (0..2F). *)
val acceptors : t -> int list

(** {2 Coordinator (ballot-0 leader) side} *)

(** [begin_leader t tid ~parts] opens leader bookkeeping for [tid] and
    announces the instance set (the root participants, coordinator
    included) to the acceptors. Called at prepare time. *)
val begin_leader : t -> Tabs_wal.Tid.t -> parts:int list -> unit

(** [cast_vote t tid ~part ~yes] multicasts instance [part]'s vote to
    the acceptors — the ballot-0 phase-2a message. Participants cast
    their own votes; the coordinator also casts on behalf of read-only
    children (their instances must exist, or a takeover would choose
    Aborted for them and split from a coordinator that committed). *)
val cast_vote : t -> Tabs_wal.Tid.t -> part:int -> yes:bool -> unit

(** [await_quorum t tid ~timeout] blocks the coordinator until every
    instance holds F+1 Prepared accepts ([`Commit]), some acceptor
    reported an Aborted accept ([`Abort]), a racing takeover decided
    ([`Decided committed]), or the timeout passed. *)
val await_quorum :
  t ->
  Tabs_wal.Tid.t ->
  timeout:int ->
  [ `Commit | `Abort | `Decided of bool | `Timeout ]

(** [announce t tid ~committed] records the coordinator's fast-path
    decision and multicasts it to the acceptors. No log force needed:
    the accept quorums are already stable. *)
val announce : t -> Tabs_wal.Tid.t -> committed:bool -> unit

(** [resolve_as_coordinator t tid] — a coordinator whose vote phase
    timed out must not presume abort unilaterally (a silent
    participant's Prepared vote may already sit in an acceptor quorum):
    it runs a full ballot and returns the decided outcome. Blocks until
    F+1 acceptors are reachable. *)
val resolve_as_coordinator : t -> Tabs_wal.Tid.t -> bool

(** [end_leader t tid] drops leader bookkeeping after phase two. *)
val end_leader : t -> Tabs_wal.Tid.t -> unit

(** {2 Shared} *)

(** [decision_of t tid] — the globally decided outcome, if this node has
    learned it. *)
val decision_of : t -> Tabs_wal.Tid.t -> bool option

(** [reseed t records] replays the condensed acceptor records a restart
    recovered ({!Tabs_recovery.Recovery_mgr.recovery_outcome}[.paxos]):
    promises, accepts and decisions are reinstalled, the truncation
    floor is restored from the records' re-appended LSNs, and takeover
    watchdogs restart for still-undecided transactions. *)
val reseed : t -> (Tabs_wal.Record.lsn * Tabs_wal.Record.t) list -> unit

(** The acceptor's log-truncation floor (oldest record backing undecided
    consensus state), also wired into the Recovery Manager by
    {!create}. *)
val truncation_floor : t -> Tabs_wal.Record.lsn option
