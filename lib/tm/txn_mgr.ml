open Tabs_sim
open Tabs_wal
open Tabs_net
open Tabs_recovery

type outcome = Committed | Aborted

type vote = Yes | No | Read_only

(* 2PC trace events. [node] is the node observing the transition, so a
   distributed commit interleaves events from every tree node in one
   stream. Spans (lib/obs) use the coordinator's Txn_begin/commit/abort
   as the transaction's boundaries. *)
type Trace.event +=
  | Txn_begin of { node : int; tid : Tid.t }
  | Txn_commit of { node : int; tid : Tid.t; distributed : bool }
  | Txn_abort of { node : int; tid : Tid.t; reason : Trace.abort_reason }
  | Prepare_sent of { node : int; tid : Tid.t; dests : int list }
  | Prepare_received of { node : int; tid : Tid.t; src : int }
  | Vote_sent of { node : int; tid : Tid.t; dest : int; vote : vote }
  | Vote_received of { node : int; tid : Tid.t; src : int; vote : vote }
  | Verdict_sent of {
      node : int;
      tid : Tid.t;
      outcome : outcome;
      dests : int list;
    }
  | Verdict_received of {
      node : int;
      tid : Tid.t;
      outcome : outcome;
      src : int;
    }
  | Ack_received of { node : int; tid : Tid.t; src : int }
  | Prepared_in_doubt of { node : int; tid : Tid.t; coordinator : int }
  | In_doubt_resolved of { node : int; tid : Tid.t; outcome : outcome }
  | Status_query_sent of { node : int; tid : Tid.t; coordinator : int }
  | Resolution_abandoned of {
      node : int;
      tid : Tid.t;
      coordinator : int;
      attempts : int;
    }
      (* a resolver or orphan watchdog exhausted its status-query
         budget and gave up with the transaction still undecided here —
         its write locks stay held. Under 2PC this is the protocol's
         blocking window made permanent; it is what Paxos Commit
         removes. *)

type Network.payload +=
  | Tm_prepare of Tid.t
  | Tm_vote of Tid.t * vote
  | Tm_commit of Tid.t
  | Tm_abort of Tid.t
  | Tm_ack of Tid.t
  | Tm_status_query of Tid.t
  | Tm_status_reply of Tid.t * outcome

type server_callbacks = {
  on_prepare : Tid.t -> bool;
  on_outcome : Tid.t -> outcome -> unit;
  on_subtxn_commit : Tid.t -> unit;
  on_subtxn_abort : Tid.t -> unit;
}

(* Coordinator-side bookkeeping for one phase of the tree protocol:
   which children still owe a message, and whether anything went
   wrong. *)
type gather = {
  mutable awaiting : int list;
  mutable any_no : bool;
  mutable all_read_only : bool;
  mutable timed_out : bool;
      (* some child never answered within the vote timeout — the abort
         is a communication failure, not a No vote *)
  signal : unit Engine.Waitq.t;
}

type participant = {
  p_tid : Tid.t;
  p_coordinator : int;
  mutable p_resolved : bool;
}

type t = {
  engine : Engine.t;
  node_id : int;
  profile : Profile.t;
  rm : Recovery_mgr.t;
  cm : Comm_mgr.t;
  commit_protocol : Commit_protocol.t;
  mutable px : Paxos.t option; (* Some iff commit_protocol is Paxos *)
  vote_timeout : int;
  read_only_optimization : bool;
  mutable ready : bool;
      (* false while a restart is replaying the log: a mid-recovery "no
         record of that transaction" is not "no transaction", so status
         queries must wait for {!recover} to finish *)
  mutable resolutions_abandoned : int;
  checkpoint_interval : int;
      (* commits between the checkpoints this TM asks of the RM *)
  mutable commits_since_checkpoint : int;
  mutable distributed_commits : int;
      (* committed tree 2PC rounds this TM coordinated (bench accounting) *)
  mutable next_seq : int;
  servers : (string, server_callbacks) Hashtbl.t;
  joined : (Tid.t, string list ref) Hashtbl.t; (* top tid -> local servers *)
  sub_counters : (Tid.t, int ref) Hashtbl.t;
  aborted : (Tid.t, unit) Hashtbl.t; (* tids (incl. subtxns) locally known aborted *)
  outcomes : (Tid.t, outcome) Hashtbl.t; (* top tids with known verdicts *)
  gathers : (Tid.t, gather) Hashtbl.t; (* vote collection in flight *)
  acks : (Tid.t, gather) Hashtbl.t; (* ack collection in flight *)
  participants : (Tid.t, participant) Hashtbl.t; (* prepared, in doubt *)
}

let node t = t.node_id

let profile t = t.profile

let commit_protocol t = t.commit_protocol

let distributed_commits t = t.distributed_commits

let resolutions_abandoned t = t.resolutions_abandoned

let hold_status_queries t = t.ready <- false

let register_server t ~name callbacks = Hashtbl.replace t.servers name callbacks

let small t = Engine.charge t.engine Cost_model.Small_contiguous_message

let tracing t = Engine.tracing t.engine

let emit t ev = Engine.emit t.engine ev

let joined_servers t tid =
  match Hashtbl.find_opt t.joined (Tid.top_level tid) with
  | Some names -> !names
  | None -> []

let callbacks t name = Hashtbl.find t.servers name

(* Identifier allocation ---------------------------------------------- *)

let begin_txn t =
  (* request + reply between application and Transaction Manager *)
  small t;
  let tid = Tid.top ~node:t.node_id ~seq:t.next_seq in
  t.next_seq <- t.next_seq + 1;
  Comm_mgr.note_local_root t.cm tid;
  ignore (Recovery_mgr.append_tm_record t.rm (Record.Txn_begin tid));
  if tracing t then emit t (Txn_begin { node = t.node_id; tid });
  small t;
  tid

let begin_subtxn t parent =
  small t;
  let counter =
    match Hashtbl.find_opt t.sub_counters parent with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.add t.sub_counters parent c;
        c
  in
  let tid = Tid.child parent ~index:!counter in
  incr counter;
  small t;
  tid

let join t ~tid ~server =
  let top = Tid.top_level tid in
  let names =
    match Hashtbl.find_opt t.joined top with
    | Some names -> names
    | None ->
        let names = ref [] in
        Hashtbl.add t.joined top names;
        names
  in
  if not (List.mem server !names) then begin
    (* the data server's first-operation message to the TM *)
    small t;
    names := server :: !names
  end

let is_aborted t tid =
  Hashtbl.fold
    (fun aborted_tid () acc ->
      acc || Tid.is_ancestor ~ancestor:aborted_tid tid)
    t.aborted false

let active_txns t =
  Hashtbl.fold
    (fun top _ acc ->
      if Hashtbl.mem t.outcomes top then acc
      else (top, Log_manager.last_lsn_of (Recovery_mgr.log t.rm) top) :: acc)
    t.joined []

(* Local undo of a whole family's updates at this node. *)
let undo_family_local t tid =
  let log = Recovery_mgr.log t.rm in
  List.iter
    (fun member -> Recovery_mgr.abort t.rm ~tid:member)
    (Log_manager.chained_tids_of_family log tid)

let family_wrote_locally t tid =
  Log_manager.chained_tids_of_family (Recovery_mgr.log t.rm) tid <> []

let forget t top =
  Hashtbl.remove t.joined top;
  Hashtbl.remove t.gathers top;
  Hashtbl.remove t.acks top;
  Comm_mgr.forget_txn t.cm top

let notify_local_servers t top outcome =
  List.iter
    (fun name ->
      small t;
      (callbacks t name).on_outcome top outcome)
    (joined_servers t top)

(* Phase-one local work: ask every joined server to vote. *)
let local_votes_ok t top =
  List.for_all
    (fun name ->
      small t;
      let ok = (callbacks t name).on_prepare top in
      small t;
      ok)
    (joined_servers t top)

(* Vote gathering ------------------------------------------------------ *)

let new_gather () table top children =
  let g =
    {
      awaiting = children;
      any_no = false;
      all_read_only = true;
      timed_out = false;
      signal = Engine.Waitq.create ();
    }
  in
  Hashtbl.replace table top g;
  g

let gather_note t table top src verdict =
  match Hashtbl.find_opt table top with
  | None -> ()
  | Some g ->
      if List.mem src g.awaiting then begin
        g.awaiting <- List.filter (fun n -> n <> src) g.awaiting;
        (match verdict with
        | Yes -> g.all_read_only <- false
        | No ->
            g.any_no <- true;
            g.all_read_only <- false
        | Read_only -> ());
        if g.awaiting = [] then
          ignore (Engine.Waitq.signal g.signal ~engine:t.engine ())
      end

let wait_gather t g =
  if g.awaiting <> [] then
    match
      Engine.Waitq.wait_timeout g.signal ~engine:t.engine ~timeout:t.vote_timeout
    with
    | Some () -> ()
    | None ->
        (* a silent child is presumed crashed *)
        g.any_no <- true;
        g.timed_out <- true

(* Outcome distribution down the tree. Phase-2 COMMIT/ABORT datagrams
   go through the Communication Manager's datagram path: with comm
   batching on, verdicts for concurrent transactions headed to the same
   child coalesce into one wire message there, and the child's Tm_ack
   rides its next outgoing frame's batch — the commit protocol needs no
   batching logic of its own. *)

let propagate_outcome t top outcome ~to_nodes =
  match to_nodes with
  | [] -> ()
  | nodes ->
      let payload =
        match outcome with Committed -> Tm_commit top | Aborted -> Tm_abort top
      in
      if tracing t then
        emit t
          (Verdict_sent { node = t.node_id; tid = top; outcome; dests = nodes });
      Comm_mgr.send_datagrams_parallel t.cm ~dests:nodes payload

(* "Checkpoints are performed at intervals determined by the
   transaction manager or when the system is close to running out of
   log space" (Section 3.2.2): count commits and periodically ask the
   Recovery Manager for a checkpoint plus, if needed, reclamation. *)
let maybe_periodic_checkpoint t =
  t.commits_since_checkpoint <- t.commits_since_checkpoint + 1;
  if t.commits_since_checkpoint >= t.checkpoint_interval then begin
    t.commits_since_checkpoint <- 0;
    ignore
      (Engine.spawn t.engine ~node:t.node_id (fun () ->
           ignore (Recovery_mgr.checkpoint t.rm);
           ignore (Recovery_mgr.maybe_reclaim t.rm)))
  end

let record_outcome t top outcome =
  Hashtbl.replace t.outcomes top outcome;
  if outcome = Committed then maybe_periodic_checkpoint t

(* Abort of a top-level transaction (local part + propagation). *)
let abort_top t top ~children ~reason =
  if not (Hashtbl.mem t.outcomes top) then begin
    record_outcome t top Aborted;
    if tracing t then emit t (Txn_abort { node = t.node_id; tid = top; reason });
    Hashtbl.replace t.aborted top ();
    if family_wrote_locally t top then undo_family_local t top;
    ignore (Recovery_mgr.append_tm_record t.rm (Record.Txn_abort top));
    notify_local_servers t top Aborted;
    propagate_outcome t top Aborted ~to_nodes:children
  end

(* The purely local commit path: no remote spread was recorded. *)
let commit_local t top =
  small t;
  (* commit request *)
  let wrote = family_wrote_locally t top in
  Engine.charge_cpu t.engine ~process:"tm"
    (Overheads.tm_local_readonly + if wrote then Overheads.tm_commit_write else 0);
  Engine.charge_cpu t.engine ~process:"rm"
    (Overheads.rm_local_readonly + if wrote then Overheads.rm_commit_write else 0);
  if not (local_votes_ok t top) then begin
    abort_top t top ~children:[] ~reason:Trace.Vote_no;
    forget t top;
    small t;
    (* verdict to application *)
    Aborted
  end
  else begin
    if wrote then begin
      let lsn = Recovery_mgr.append_tm_record t.rm (Record.Txn_commit top) in
      Recovery_mgr.force_through t.rm lsn
    end;
    record_outcome t top Committed;
    if tracing t then
      emit t (Txn_commit { node = t.node_id; tid = top; distributed = false });
    notify_local_servers t top Committed;
    forget t top;
    small t;
    Committed
  end

(* Tree two-phase commit, coordinator side (the root). *)
let commit_distributed t top =
  small t;
  let wrote = family_wrote_locally t top in
  Engine.charge_cpu t.engine ~process:"tm"
    (Overheads.tm_local_readonly + if wrote then Overheads.tm_commit_write else 0);
  Engine.charge_cpu t.engine ~process:"rm"
    (Overheads.rm_local_readonly + if wrote then Overheads.rm_commit_write else 0);
  let children = Comm_mgr.children_of t.cm top in
  let g = new_gather () t.gathers top children in
  if tracing t then
    emit t (Prepare_sent { node = t.node_id; tid = top; dests = children });
  Comm_mgr.send_datagrams_parallel t.cm ~dests:children (Tm_prepare top);
  let local_ok = local_votes_ok t top in
  wait_gather t g;
  Hashtbl.remove t.gathers top;
  if g.any_no || not local_ok then begin
    let reason =
      if not local_ok then Trace.Vote_no
      else if g.timed_out then Trace.Comm_failure
      else Trace.Vote_no
    in
    abort_top t top ~children ~reason;
    forget t top;
    small t;
    Aborted
  end
  else if t.read_only_optimization && (not wrote) && g.all_read_only then begin
    (* Whole tree read-only: one phase suffices; subordinates already
       released their locks when they voted Read_only. *)
    t.distributed_commits <- t.distributed_commits + 1;
    record_outcome t top Committed;
    if tracing t then
      emit t (Txn_commit { node = t.node_id; tid = top; distributed = true });
    notify_local_servers t top Committed;
    forget t top;
    small t;
    Committed
  end
  else begin
    let lsn = Recovery_mgr.append_tm_record t.rm (Record.Txn_commit top) in
    Recovery_mgr.force_through t.rm lsn;
    t.distributed_commits <- t.distributed_commits + 1;
    record_outcome t top Committed;
    if tracing t then
      emit t (Txn_commit { node = t.node_id; tid = top; distributed = true });
    notify_local_servers t top Committed;
    (* Second phase goes only to children that held updates. The
       transaction is decided once the commit record is stable, so on an
       Integrated node the outcome distribution overlaps with succeeding
       transactions (Section 5.3's optimized commit protocol) in a
       background fiber; the Classic prototype kept it on the caller's
       critical path, as the paper measured. *)
    let phase_two () =
      let a = new_gather () t.acks top children in
      propagate_outcome t top Committed ~to_nodes:children;
      wait_gather t a;
      Hashtbl.remove t.acks top;
      ignore (Recovery_mgr.append_tm_record t.rm (Record.Txn_end top));
      forget t top
    in
    (match t.profile with
    | Profile.Classic -> phase_two ()
    | Profile.Integrated ->
        ignore (Engine.spawn t.engine ~node:t.node_id phase_two));
    small t;
    Committed
  end

(* Tree commit, coordinator side, under Paxos Commit. The spanning tree
   and both phases are unchanged — prepares flow down, votes flow up,
   the verdict flows down — but root-level participants additionally
   multicast their votes to the 2F+1 acceptors as ballot-0 accepts, and
   the decision point moves from "coordinator's commit record forced"
   to "every instance holds F+1 Prepared accepts". Two consequences:

   - the coordinator appends its commit record {e unforced}: the
     outcome is already quorum-durable at the acceptors, and a takeover
     quorum necessarily intersects every accept quorum, so nothing is
     lost if this node crashes before the append reaches disk;
   - the coordinator may not presume abort on vote-phase {e silence}: a
     silent child's Prepared vote may already be stable in an acceptor
     quorum that a concurrent takeover is reading, so silence is
     resolved by running a real ballot. An explicit No is still an
     immediate abort — the No voter never cast Prepared, so no ballot
     can ever choose Commit. *)
let commit_paxos t px top =
  small t;
  let wrote = family_wrote_locally t top in
  Engine.charge_cpu t.engine ~process:"tm"
    (Overheads.tm_local_readonly + if wrote then Overheads.tm_commit_write else 0);
  Engine.charge_cpu t.engine ~process:"rm"
    (Overheads.rm_local_readonly + if wrote then Overheads.rm_commit_write else 0);
  let children = Comm_mgr.children_of t.cm top in
  Paxos.begin_leader px top ~parts:(t.node_id :: children);
  let g = new_gather () t.gathers top children in
  if tracing t then
    emit t (Prepare_sent { node = t.node_id; tid = top; dests = children });
  Comm_mgr.send_datagrams_parallel t.cm ~dests:children (Tm_prepare top);
  let local_ok = local_votes_ok t top in
  (* the coordinator's own instance: force the prepare first (a vote
     must never outlive the updates it promises), then cast *)
  if local_ok && wrote then begin
    let lsn =
      Recovery_mgr.append_tm_record t.rm (Record.Txn_prepare (top, t.node_id))
    in
    Recovery_mgr.force_through t.rm lsn
  end;
  Paxos.cast_vote px top ~part:t.node_id ~yes:local_ok;
  wait_gather t g;
  Hashtbl.remove t.gathers top;
  let finish_abort ~reason ~announce =
    if announce then Paxos.announce px top ~committed:false;
    abort_top t top ~children ~reason;
    Paxos.end_leader px top;
    forget t top;
    small t;
    Aborted
  in
  let finish_commit ~forced =
    if not forced then
      ignore (Recovery_mgr.append_tm_record t.rm (Record.Txn_commit top));
    Paxos.announce px top ~committed:true;
    t.distributed_commits <- t.distributed_commits + 1;
    record_outcome t top Committed;
    if tracing t then
      emit t (Txn_commit { node = t.node_id; tid = top; distributed = true });
    notify_local_servers t top Committed;
    let phase_two () =
      let a = new_gather () t.acks top children in
      propagate_outcome t top Committed ~to_nodes:children;
      wait_gather t a;
      Hashtbl.remove t.acks top;
      ignore (Recovery_mgr.append_tm_record t.rm (Record.Txn_end top));
      Paxos.end_leader px top;
      forget t top
    in
    (match t.profile with
    | Profile.Classic -> phase_two ()
    | Profile.Integrated ->
        ignore (Engine.spawn t.engine ~node:t.node_id phase_two));
    small t;
    Committed
  in
  (* a takeover beat us to a verdict while we gathered votes? *)
  match Paxos.decision_of px top with
  | Some true -> finish_commit ~forced:false
  | Some false -> finish_abort ~reason:Trace.Comm_failure ~announce:false
  | None ->
      if (g.any_no && not g.timed_out) || not local_ok then
        (* an explicit No somewhere: abort directly, and tell the
           acceptors so in-doubt queries are answerable at once *)
        finish_abort ~reason:Trace.Vote_no ~announce:true
      else if g.timed_out then begin
        (* silence: resolve through a ballot, never unilaterally *)
        let committed = Paxos.resolve_as_coordinator px top in
        if committed then finish_commit ~forced:false
        else finish_abort ~reason:Trace.Comm_failure ~announce:false
      end
      else if t.read_only_optimization && (not wrote) && g.all_read_only then begin
        (* whole tree read-only: one phase, nothing durable at stake *)
        Paxos.announce px top ~committed:true;
        t.distributed_commits <- t.distributed_commits + 1;
        record_outcome t top Committed;
        if tracing t then
          emit t (Txn_commit { node = t.node_id; tid = top; distributed = true });
        notify_local_servers t top Committed;
        Paxos.end_leader px top;
        forget t top;
        small t;
        Committed
      end
      else begin
        match Paxos.await_quorum px top ~timeout:t.vote_timeout with
        | `Commit | `Decided true -> finish_commit ~forced:false
        | `Abort | `Decided false ->
            finish_abort ~reason:Trace.Vote_no ~announce:true
        | `Timeout ->
            (* votes arrived but accept confirmations did not — fewer
               than F+1 acceptors reachable. Paxos blocks here, by
               design: resolve through a ballot when quorum returns. *)
            let committed = Paxos.resolve_as_coordinator px top in
            if committed then finish_commit ~forced:false
            else finish_abort ~reason:Trace.Comm_failure ~announce:false
      end

(* Subordinate side ----------------------------------------------------- *)

(* Status-query resolution. One loop serves both the in-doubt resolver
   (a prepared participant awaiting its coordinator's verdict) and the
   orphan watchdog (a node drawn in by remote traffic that may never
   hear the verdict: under presumed abort the coordinator's Tm_abort is
   a single unacknowledged datagram, so if it is lost before the
   participant was even prepared, nothing else would ever release its
   write locks). Both used to duplicate this send path with separately
   computed coordinators; now the target and the query are decided in
   exactly one place.

   Under 2PC the query goes to the coordinator, which answers with the
   recorded outcome — or presumed abort — once it genuinely has no
   record. Under Paxos Commit the query goes to the acceptors instead:
   they answer once a decision is chosen, and an unanswered query arms
   their takeover watchdog, so resolution does not depend on the
   coordinator ever coming back. *)

let coordinator_of t top =
  match Comm_mgr.parent_of t.cm top with
  | Some p -> p
  | None -> top.Tid.node

let send_status_query t top ~coordinator =
  if tracing t then
    emit t (Status_query_sent { node = t.node_id; tid = top; coordinator });
  match t.px with
  | Some px ->
      Comm_mgr.send_datagrams_parallel t.cm ~dests:(Paxos.acceptors px)
        (Paxos.Px_status_query top)
  | None ->
      Comm_mgr.send_datagram t.cm ~dest:coordinator (Tm_status_query top)

(* Queries stop after a while so a simulation can quiesce, but the
   transaction stays undecided and its data stays locked. Giving up
   used to be silent; now it is observable — a trace event, the
   engine-wide Metrics.tm counter, and a per-TM count surfaced next to
   {!in_doubt} — because a participant blocked forever with locks held
   is the failure mode this whole layer exists to expose. *)
let abandon_resolution t top ~coordinator ~attempts =
  t.resolutions_abandoned <- t.resolutions_abandoned + 1;
  let m = Metrics.tm (Engine.metrics t.engine) in
  m.Metrics.resolutions_abandoned <- m.Metrics.resolutions_abandoned + 1;
  if tracing t then
    emit t
      (Resolution_abandoned { node = t.node_id; tid = top; coordinator; attempts })

let start_resolver t top ~coordinator ~delay =
  ignore
    (Engine.spawn t.engine ~node:t.node_id (fun () ->
         let rec loop attempts =
           Engine.delay delay;
           match Hashtbl.find_opt t.participants top with
           | None -> () (* resolved meanwhile *)
           | Some _ when attempts >= 100 ->
               abandon_resolution t top ~coordinator ~attempts
           | Some _ ->
               send_status_query t top ~coordinator;
               loop (attempts + 1)
         in
         loop 0))

let start_orphan_watchdog t top =
  ignore
    (Engine.spawn t.engine ~node:t.node_id (fun () ->
         let rec loop attempts =
           Engine.delay (if attempts = 0 then 10_000_000 else 3_000_000);
           if not (Hashtbl.mem t.outcomes top) then
             if attempts >= 100 then begin
               (* count it only if the in-doubt resolver doesn't own the
                  transaction — that resolver abandons for itself *)
               if not (Hashtbl.mem t.participants top) then
                 abandon_resolution t top ~coordinator:(coordinator_of t top)
                   ~attempts
             end
             else begin
               (* once prepared, the in-doubt resolver owns the querying *)
               if not (Hashtbl.mem t.participants top) then
                 send_status_query t top ~coordinator:(coordinator_of t top);
               loop (attempts + 1)
             end
         in
         loop 0))

(* Runs in a datagram-handler fiber when a Prepare arrives from the
   spanning-tree parent: recursively prepares this node's subtree and
   votes upward. *)
let handle_prepare t top ~src =
  if tracing t then emit t (Prepare_received { node = t.node_id; tid = top; src });
  Engine.charge_cpu t.engine ~process:"tm" Overheads.tm_commit_write;
  let children = Comm_mgr.children_of t.cm top in
  let g = new_gather () t.gathers top children in
  if tracing t then
    emit t (Prepare_sent { node = t.node_id; tid = top; dests = children });
  Comm_mgr.send_datagrams_parallel t.cm ~dests:children (Tm_prepare top);
  let local_ok = local_votes_ok t top in
  wait_gather t g;
  Hashtbl.remove t.gathers top;
  let wrote = family_wrote_locally t top in
  let send_vote vote =
    (* Under Paxos Commit a direct child of the root is a root-level
       participant: its vote is also the ballot-0 phase-2a message of
       its own consensus instance, multicast to the acceptors. (Deeper
       subtree nodes have no instance — their live coordinator is this
       node, which aggregates them into its own vote. Read_only is cast
       on the child's behalf by the root, which must decide whether the
       whole tree is read-only first.) For a Yes this runs after the
       prepare record is forced above: a vote must never outlive the
       updates it promises. *)
    (match t.px with
    | Some px when src = top.Tid.node && vote <> Read_only ->
        Paxos.cast_vote px top ~part:t.node_id ~yes:(vote = Yes)
    | _ -> ());
    if tracing t then
      emit t (Vote_sent { node = t.node_id; tid = top; dest = src; vote });
    Comm_mgr.send_datagram t.cm ~dest:src (Tm_vote (top, vote))
  in
  if g.any_no || not local_ok then begin
    let reason =
      if not local_ok then Trace.Vote_no
      else if g.timed_out then Trace.Comm_failure
      else Trace.Vote_no
    in
    abort_top t top ~children ~reason;
    forget t top;
    send_vote No
  end
  else if t.read_only_optimization && (not wrote) && g.all_read_only then begin
    (* Read-only subtree: release and drop out of phase two. *)
    record_outcome t top Committed;
    notify_local_servers t top Committed;
    forget t top;
    send_vote Read_only
  end
  else begin
    let lsn =
      Recovery_mgr.append_tm_record t.rm (Record.Txn_prepare (top, src))
    in
    Recovery_mgr.force_through t.rm lsn;
    Hashtbl.replace t.participants top
      { p_tid = top; p_coordinator = src; p_resolved = false };
    if tracing t then
      emit t (Prepared_in_doubt { node = t.node_id; tid = top; coordinator = src });
    (* If the coordinator's verdict never arrives we are blocked in
       doubt; keep asking. The generous first delay keeps queries off
       the wire in healthy runs. *)
    start_resolver t top ~coordinator:src ~delay:3_000_000;
    send_vote Yes
  end

let apply_decided_outcome t top outcome ~ack_to =
  (* The verdict may reach us in the prepared state (normal phase two),
     or while still active (a coordinator-initiated abort), or again
     (duplicate datagram). Only the first arrival is applied. *)
  let was_in_doubt =
    match Hashtbl.find_opt t.participants top with
    | Some p ->
        p.p_resolved <- true;
        Hashtbl.remove t.participants top;
        true
    | None -> false
  in
  if Hashtbl.mem t.outcomes top then
    Option.iter
      (fun dest -> Comm_mgr.send_datagram t.cm ~dest (Tm_ack top))
      ack_to
  else begin
      if was_in_doubt && tracing t then
        emit t (In_doubt_resolved { node = t.node_id; tid = top; outcome });
      (match outcome with
      | Committed ->
          if tracing t then
            emit t (Txn_commit { node = t.node_id; tid = top; distributed = true });
          ignore (Recovery_mgr.append_tm_record t.rm (Record.Txn_commit top))
      | Aborted ->
          if tracing t then
            emit t
              (Txn_abort
                 { node = t.node_id; tid = top; reason = Trace.Remote_verdict });
          Hashtbl.replace t.aborted top ();
          if family_wrote_locally t top then undo_family_local t top;
          ignore (Recovery_mgr.append_tm_record t.rm (Record.Txn_abort top)));
      record_outcome t top outcome;
      notify_local_servers t top outcome;
      (* propagate down the tree before acknowledging upward *)
      let children = Comm_mgr.children_of t.cm top in
      let a = new_gather () t.acks top children in
      propagate_outcome t top outcome ~to_nodes:children;
      wait_gather t a;
      Hashtbl.remove t.acks top;
      forget t top;
      Option.iter
        (fun dest -> Comm_mgr.send_datagram t.cm ~dest (Tm_ack top))
        ack_to
  end

(* In-doubt resolution: a prepared participant that hears nothing asks
   its coordinator. Presumed abort: a coordinator with no record of the
   transaction answers Aborted — but only once it genuinely has no
   record. While the transaction is still live here (running, gathering
   votes, or itself in doubt) we stay silent and let the asker retry;
   answering Aborted for a transaction that may yet commit would split
   the tree's outcome. *)
let locally_live t top =
  Hashtbl.mem t.joined top
  || Hashtbl.mem t.gathers top
  || Hashtbl.mem t.participants top
  || Comm_mgr.involved_remotely t.cm top

let handle_status_query t top ~src =
  (* A restarting coordinator must not answer while recovery is still
     replaying the log: it may be asked about a transaction it decided
     but has not yet re-learned, and "no record" here would become a
     presumed-abort answer that splits from the recorded outcome. Stay
     silent until {!recover} finishes — the asker retries. *)
  if t.ready then
    match Hashtbl.find_opt t.outcomes top with
    | Some o -> Comm_mgr.send_datagram t.cm ~dest:src (Tm_status_reply (top, o))
    | None ->
        if not (locally_live t top) then
          Comm_mgr.send_datagram t.cm ~dest:src (Tm_status_reply (top, Aborted))

(* Public entry points -------------------------------------------------- *)

let commit t tid =
  if is_aborted t tid then Aborted
  else if not (Tid.is_top tid) then begin
    (* Subtransaction commit: locks pass to the parent; durability
       awaits the top-level commit. *)
    small t;
    List.iter
      (fun name -> (callbacks t name).on_subtxn_commit tid)
      (joined_servers t tid);
    small t;
    Committed
  end
  else if Comm_mgr.involved_remotely t.cm tid then
    match t.px with
    | Some px -> commit_paxos t px tid
    | None -> commit_distributed t tid
  else commit_local t tid

let abort t ?(reason = Trace.Explicit) tid =
  small t;
  if Tid.is_top tid then begin
    let children = Comm_mgr.children_of t.cm tid in
    abort_top t tid ~children ~reason;
    forget t tid
  end
  else begin
    (* Independent subtransaction abort: undo and release only its
       subtree; the parent continues. *)
    Hashtbl.replace t.aborted tid ();
    let log = Recovery_mgr.log t.rm in
    let members =
      List.filter
        (fun member -> Tid.is_ancestor ~ancestor:tid member)
        (Log_manager.chained_tids_of_family log tid)
    in
    List.iter (fun member -> Recovery_mgr.abort t.rm ~tid:member) members;
    List.iter
      (fun name -> (callbacks t name).on_subtxn_abort tid)
      (joined_servers t tid)
  end

let in_doubt t =
  Hashtbl.fold (fun top _ acc -> top :: acc) t.participants []
  |> List.sort Tid.compare

let outcome_of t tid = Hashtbl.find_opt t.outcomes (Tid.top_level tid)

let recover t (summary : Recovery_mgr.recovery_outcome) =
  List.iter
    (fun (tid, status) ->
      match status with
      | Recovery_mgr.Committed -> Hashtbl.replace t.outcomes tid Committed
      | Recovery_mgr.Aborted -> Hashtbl.replace t.outcomes tid Aborted
      | Recovery_mgr.Prepared _ | Recovery_mgr.Active -> ())
    (Recovery_mgr.statuses t.rm);
  List.iter
    (fun tid ->
      Hashtbl.replace t.aborted tid ();
      if tracing t then
        emit t (Txn_abort { node = t.node_id; tid; reason = Trace.Crash }))
    summary.losers;
  List.iter
    (fun (tid, coordinator) ->
      Hashtbl.replace t.participants tid
        { p_tid = tid; p_coordinator = coordinator; p_resolved = false };
      if tracing t then
        emit t (Prepared_in_doubt { node = t.node_id; tid; coordinator });
      start_resolver t tid ~coordinator ~delay:200_000)
    summary.in_doubt;
  (* Reinstall surviving Paxos acceptor state (promises, accepts,
     decisions); takeover watchdogs restart for undecided transactions.
     Only now may status queries be answered again. *)
  Option.iter (fun px -> Paxos.reseed px summary.paxos) t.px;
  t.ready <- true

let create engine ~node ~rm ~cm ?(profile = Profile.Classic)
    ?(commit_protocol = Commit_protocol.default) ?(vote_timeout = 2_000_000)
    ?(read_only_optimization = true) ?(checkpoint_interval = 50) () =
  let t =
    {
      engine;
      node_id = node;
      profile;
      rm;
      cm;
      commit_protocol;
      px = None;
      ready = true;
      resolutions_abandoned = 0;
      vote_timeout;
      read_only_optimization;
      checkpoint_interval;
      commits_since_checkpoint = 0;
      distributed_commits = 0;
      (* Transaction identifiers must be globally unique across crashes:
         remote nodes keep completed-transaction state keyed by tid, so
         a restarted Transaction Manager must never reissue a pre-crash
         sequence number. Seeding from the virtual clock guarantees it —
         a node issues at most one tid per small-message time (3000 us),
         and a restart always happens at a strictly later virtual time
         than any pre-crash tid issue. *)
      next_seq = Engine.now engine;
      servers = Hashtbl.create 8;
      joined = Hashtbl.create 32;
      sub_counters = Hashtbl.create 16;
      aborted = Hashtbl.create 16;
      outcomes = Hashtbl.create 32;
      gathers = Hashtbl.create 8;
      acks = Hashtbl.create 8;
      participants = Hashtbl.create 8;
    }
  in
  (* The Paxos role registers its datagram handler (and its
     log-truncation floor) before the TM's own, so a decision is
     recorded for the acceptor/leader state machines before the TM's
     participant handling — which may block gathering acks — sees it. *)
  (match commit_protocol with
  | Commit_protocol.Two_phase -> ()
  | Commit_protocol.Paxos { f } ->
      t.px <- Some (Paxos.create engine ~node ~f ~rm ~cm ()));
  Recovery_mgr.set_active_txns_source rm (fun () -> active_txns t);
  Recovery_mgr.set_prepared_source rm (fun () ->
      Hashtbl.fold
        (fun top p acc ->
          if p.p_resolved then acc else (top, p.p_coordinator) :: acc)
        t.participants []);
  Comm_mgr.set_remote_involvement_handler cm (fun tid ->
      (* the Communication Manager's first-spread notice to the TM *)
      Metrics.record (Engine.metrics engine) Cost_model.Small_contiguous_message;
      let top = Tid.top_level tid in
      if top.Tid.node <> node then start_orphan_watchdog t top);
  Comm_mgr.add_datagram_handler cm (fun ~src payload ->
      match payload with
      | Tm_prepare top -> handle_prepare t top ~src
      | Tm_vote (top, v) ->
          if tracing t then
            emit t (Vote_received { node = t.node_id; tid = top; src; vote = v });
          (* Under Paxos Commit a Read_only direct child drops out of
             phase two without casting: the root casts Prepared on its
             behalf so its instance exists — otherwise a takeover would
             choose Aborted for it and split from a root that saw a
             committable tree. *)
          (match t.px with
          | Some px when v = Read_only && top.Tid.node = t.node_id ->
              Paxos.cast_vote px top ~part:src ~yes:true
          | _ -> ());
          gather_note t t.gathers top src v;
          if v = No then
            (* make sure a blocked coordinator learns promptly *)
            gather_note t t.gathers top src No
      | Tm_commit top ->
          if tracing t then
            emit t
              (Verdict_received
                 { node = t.node_id; tid = top; outcome = Committed; src });
          apply_decided_outcome t top Committed ~ack_to:(Some src)
      | Tm_abort top ->
          if tracing t then
            emit t
              (Verdict_received
                 { node = t.node_id; tid = top; outcome = Aborted; src });
          apply_decided_outcome t top Aborted ~ack_to:(Some src)
      | Tm_ack top ->
          if tracing t then
            emit t (Ack_received { node = t.node_id; tid = top; src });
          gather_note t t.acks top src Yes
      | Tm_status_query top -> handle_status_query t top ~src
      | Tm_status_reply (top, outcome) ->
          (* accept for a prepared participant (normal in-doubt
             resolution) or for an undecided orphan participant still
             holding effects of a remote transaction *)
          let orphan =
            (not (Hashtbl.mem t.outcomes top))
            && top.Tid.node <> t.node_id
            && Comm_mgr.involved_remotely t.cm top
          in
          if Hashtbl.mem t.participants top || orphan then begin
            if tracing t then
              emit t (Verdict_received { node = t.node_id; tid = top; outcome; src });
            apply_decided_outcome t top outcome ~ack_to:None
          end
      | Paxos.Px_decision { tid = top; committed } ->
          (* A Paxos decision reaching a blocked participant (from an
             acceptor answering its status query, or a takeover's
             broadcast). Same acceptance rule as Tm_status_reply; the
             Paxos module's own handler separately records the decision
             for this node's acceptor/leader roles. *)
          let outcome = if committed then Committed else Aborted in
          let orphan =
            (not (Hashtbl.mem t.outcomes top))
            && top.Tid.node <> t.node_id
            && Comm_mgr.involved_remotely t.cm top
          in
          if Hashtbl.mem t.participants top || orphan then begin
            if tracing t then
              emit t (Verdict_received { node = t.node_id; tid = top; outcome; src });
            apply_decided_outcome t top outcome ~ack_to:None
          end
      | _ -> ());
  t
