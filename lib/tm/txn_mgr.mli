(** The Transaction Manager: globally unique transaction identifiers,
    commit and abort protocols, and the subtransaction model
    (Section 3.2.3).

    Distributed commitment uses the tree-structured variant of two-phase
    commit: each node coordinates the nodes that are its children in the
    spanning tree the Communication Manager recorded while the
    transaction spread. Commit protocol messages travel as datagrams.

    Under the default {!Commit_protocol.Two_phase}, the paper's known
    failure mode is preserved: a subordinate that prepared and then
    lost its coordinator holds its data inaccessible (locks re-taken at
    restart) until the coordinator answers a status query — the classic
    two-phase-commit blocking window. {!Commit_protocol.Paxos} removes
    it: root-level votes are replicated to 2F+1 acceptors ({!Paxos})
    and any acceptor resolves a stalled transaction by consensus, so
    progress survives coordinator failure as long as F+1 acceptors
    do.

    Subtransactions behave as in Section 2.1.3: beginning one requires
    only its parent's identifier, committing one merely passes its locks
    to the parent (it is not durable until the top-level transaction
    commits), and aborting one undoes and releases only its own subtree
    without disturbing the parent. *)

type t

type outcome = Committed | Aborted

(** Phase-one replies: [Read_only] is the vote of a subtree that logged
    nothing and can skip phase two. *)
type vote = Yes | No | Read_only

(** Trace events for transaction lifecycle and 2PC phase transitions.
    [node] is the node observing the transition: the coordinator's
    [Txn_begin]/[Txn_commit]/[Txn_abort] bracket the transaction, while
    subordinates emit their own outcome events ([Txn_commit] /
    [Txn_abort] with reason [Remote_verdict]) when applying the
    coordinator's verdict. *)
type Tabs_sim.Trace.event +=
  | Txn_begin of { node : int; tid : Tabs_wal.Tid.t }
  | Txn_commit of { node : int; tid : Tabs_wal.Tid.t; distributed : bool }
  | Txn_abort of {
      node : int;
      tid : Tabs_wal.Tid.t;
      reason : Tabs_sim.Trace.abort_reason;
    }
  | Prepare_sent of { node : int; tid : Tabs_wal.Tid.t; dests : int list }
  | Prepare_received of { node : int; tid : Tabs_wal.Tid.t; src : int }
  | Vote_sent of { node : int; tid : Tabs_wal.Tid.t; dest : int; vote : vote }
  | Vote_received of {
      node : int;
      tid : Tabs_wal.Tid.t;
      src : int;
      vote : vote;
    }
  | Verdict_sent of {
      node : int;
      tid : Tabs_wal.Tid.t;
      outcome : outcome;
      dests : int list;
    }
  | Verdict_received of {
      node : int;
      tid : Tabs_wal.Tid.t;
      outcome : outcome;
      src : int;
    }
  | Ack_received of { node : int; tid : Tabs_wal.Tid.t; src : int }
  | Prepared_in_doubt of {
      node : int;
      tid : Tabs_wal.Tid.t;
      coordinator : int;
    }
  | In_doubt_resolved of {
      node : int;
      tid : Tabs_wal.Tid.t;
      outcome : outcome;
    }
  | Status_query_sent of {
      node : int;
      tid : Tabs_wal.Tid.t;
      coordinator : int;
    }
  | Resolution_abandoned of {
      node : int;
      tid : Tabs_wal.Tid.t;
      coordinator : int;
      attempts : int;
    }
      (** an in-doubt resolver or orphan watchdog exhausted its
          status-query budget with the transaction still undecided
          here: its write locks stay held forever. Also counted in
          {!Tabs_sim.Metrics.tm} and {!resolutions_abandoned}. *)

(** The commit-protocol datagram vocabulary, exposed for tests and
    monitoring tools. *)
type Tabs_net.Network.payload +=
  | Tm_prepare of Tabs_wal.Tid.t
  | Tm_vote of Tabs_wal.Tid.t * vote
  | Tm_commit of Tabs_wal.Tid.t
  | Tm_abort of Tabs_wal.Tid.t
  | Tm_ack of Tabs_wal.Tid.t
  | Tm_status_query of Tabs_wal.Tid.t
  | Tm_status_reply of Tabs_wal.Tid.t * outcome

(** What a data server must provide to take part in transaction
    completion; registered once per server at startup. *)
type server_callbacks = {
  on_prepare : Tabs_wal.Tid.t -> bool;
      (** phase-one vote covering the whole family of the given
          top-level transaction *)
  on_outcome : Tabs_wal.Tid.t -> outcome -> unit;
      (** top-level verdict: release the family's locks (undo of aborted
          updates has already been performed by the Recovery Manager) *)
  on_subtxn_commit : Tabs_wal.Tid.t -> unit;
      (** pass the subtransaction's locks to its parent *)
  on_subtxn_abort : Tabs_wal.Tid.t -> unit;
      (** release the aborted subtransaction's locks *)
}

(** Under {!Tabs_sim.Profile.Integrated} (Section 5.3) the second phase
    of a distributed commit — outcome distribution, acknowledgement
    gathering, and the Txn_end record — runs in a background fiber so it
    overlaps with succeeding transactions; under [Classic] (the default)
    it stays on the caller's critical path, as the prototype measured.
    The log records written and the verdicts returned are identical in
    both profiles.

    [read_only_optimization] (default true) lets subtrees that logged
    nothing vote Read_only and drop out of phase two; disabling it
    exists for the ablation benchmark. Every [checkpoint_interval]
    commits (default 50) the Transaction Manager asks the Recovery
    Manager for a system checkpoint and, if the log is near its space
    limit, reclamation. *)
val create :
  Tabs_sim.Engine.t ->
  node:int ->
  rm:Tabs_recovery.Recovery_mgr.t ->
  cm:Tabs_net.Comm_mgr.t ->
  ?profile:Tabs_sim.Profile.t ->
  ?commit_protocol:Commit_protocol.t ->
  ?vote_timeout:int ->
  ?read_only_optimization:bool ->
  ?checkpoint_interval:int ->
  unit ->
  t

val node : t -> int

val profile : t -> Tabs_sim.Profile.t

(** The commit protocol this node runs (a cluster-wide convention; the
    default is {!Commit_protocol.Two_phase}, under which nothing of the
    Paxos machinery — messages, handlers, log records — exists). *)
val commit_protocol : t -> Commit_protocol.t

(** [distributed_commits t] counts the committed tree two-phase-commit
    rounds this Transaction Manager coordinated (benchmark
    accounting, e.g. wire messages per remote commit). *)
val distributed_commits : t -> int

(** [register_server t ~name callbacks] — data servers announce
    themselves so the Transaction Manager knows whom to inform at
    completion. *)
val register_server : t -> name:string -> server_callbacks -> unit

(** [begin_txn t] starts a new top-level transaction (the library's
    [BeginTransaction] with the null identifier). One message round-trip
    with the application. Must run inside a fiber. *)
val begin_txn : t -> Tabs_wal.Tid.t

(** [begin_subtxn t parent] starts a subtransaction of [parent]. *)
val begin_subtxn : t -> Tabs_wal.Tid.t -> Tabs_wal.Tid.t

(** [join t ~tid ~server] — a data server reports the first operation it
    performs on behalf of [tid] (one message), so the Transaction
    Manager knows to inform it at completion. *)
val join : t -> tid:Tabs_wal.Tid.t -> server:string -> unit

(** [commit t tid] attempts commitment and reports the verdict.

    Top-level: if the Communication Manager saw no remote spread, a
    purely local commit (forcing the log only when updates were made);
    otherwise the full tree two-phase commit, with the read-only
    optimization for subtrees that logged nothing.

    Subtransaction: passes locks to the parent, always [Committed]
    (durability awaits the top-level commit). *)
val commit : t -> Tabs_wal.Tid.t -> outcome

(** [abort t tid] forces the transaction or subtransaction to abort:
    undoes its subtree via the Recovery Manager, releases its locks, and
    for distributed top-level transactions informs remote participants.
    [reason] (default [Explicit]) classifies the abort in the trace
    stream; it has no protocol effect. *)
val abort : t -> ?reason:Tabs_sim.Trace.abort_reason -> Tabs_wal.Tid.t -> unit

(** [is_aborted t tid] — supports the library's [TransactionIsAborted]
    exception: true once [tid] or an ancestor has aborted. *)
val is_aborted : t -> Tabs_wal.Tid.t -> bool

(** [active_txns t] feeds checkpoint records. *)
val active_txns : t -> (Tabs_wal.Tid.t * Tabs_wal.Record.lsn option) list

(** [recover t outcome] is called at node restart with the Recovery
    Manager's summary: it re-registers in-doubt transactions and starts
    resolver fibers that query each coordinator (presumed-abort: a
    coordinator with no memory of the transaction answers Aborted).
    Returns immediately. *)
val recover : t -> Tabs_recovery.Recovery_mgr.recovery_outcome -> unit

(** [in_doubt t] lists transactions still awaiting their coordinator's
    verdict. *)
val in_doubt : t -> Tabs_wal.Tid.t list

(** [resolutions_abandoned t] — how many in-doubt (or orphaned)
    transactions this node gave up querying about, each still blocked
    with locks held; read it alongside {!in_doubt}. *)
val resolutions_abandoned : t -> int

(** [hold_status_queries t] silences {!Tm_status_query} answering until
    the next {!recover} completes. {!Tabs_core.Node.restart} calls it
    between rebuilding the managers and replaying the log: in that
    window the node has genuinely "no record" of transactions it
    decided before the crash, and answering presumed-abort then could
    split a committed transaction's outcome. *)
val hold_status_queries : t -> unit

(** [outcome_of t tid] answers status queries (and tests): the locally
    known verdict, if any. *)
val outcome_of : t -> Tabs_wal.Tid.t -> outcome option
