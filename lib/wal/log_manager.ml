open Tabs_sim
open Tabs_storage

type lsn = Record.lsn

type Trace.event +=
  | Wal_append of { lsn : lsn; tid : Tid.t option; kind : string }
  | Log_force of { upto : lsn; records : int; bytes : int; pages : int }

let record_kind = function
  | Record.Update_value _ -> "update_value"
  | Record.Update_operation _ -> "update_operation"
  | Record.Txn_begin _ -> "begin"
  | Record.Txn_commit _ -> "commit"
  | Record.Txn_abort _ -> "abort"
  | Record.Txn_prepare _ -> "prepare"
  | Record.Txn_end _ -> "end"
  | Record.Checkpoint _ -> "checkpoint"
  | Record.Paxos_promise _ -> "paxos_promise"
  | Record.Paxos_accept _ -> "paxos_accept"
  | Record.Paxos_decision _ -> "paxos_decision"
  | Record.Dependency _ -> "dependency"

(* The volatile buffer holds exactly the contiguous LSN range
   [buf_first, buf_first + buf_len) — everything appended but not yet
   forced — as a circular array indexed by LSN offset, so append, read,
   and the force's suffix split are O(1)/O(batch) instead of the list
   scans a [(lsn * Record.t) list] needs. *)
type t = {
  engine : Engine.t;
  stable : Stable.t;
  mutable buf : Record.t array; (* circular; slot (buf_head + i) mod cap
                                   holds the record at buf_first + i *)
  mutable buf_head : int;
  mutable buf_len : int;
  mutable buf_first : lsn;
  mutable next : lsn;
  txn_last : (Tid.t, lsn) Hashtbl.t;
  txn_first : (Tid.t, lsn) Hashtbl.t;
  outcome_lsns : (Tid.t, lsn) Hashtbl.t;
      (* commit/abort/end records appended, keyed by transaction; the
         fuzzy checkpoint consults this so a transaction whose outcome
         is already in the log is never listed as active — the TM's
         bookkeeping lags the append while the commit force is in
         flight. Pruned at truncation, so it tracks the live log. *)
  mutable forces : int;
  mutable device_free_at : int; (* the stable-storage device is a single
                                   channel: a force whose writes would
                                   overlap an earlier force's queues
                                   behind it in virtual time *)
  mutable dep_logging : bool;
      (* the third logging technique: when on, every update append
         consults [last_writer] and, if the update conflicts with
         another transaction family's write, a {!Record.Dependency}
         record naming the predecessor LSNs is appended immediately
         after the update. Off by default — the log is byte-identical
         to a build without dependency logging. *)
  last_writer : (Object_id.t, Tid.t * lsn) Hashtbl.t;
      (* last update (writer tid, LSN) per object, making dependency
         emission O(objects touched); pruned at truncation *)
  mutable deps_emitted : int;
}

let dummy_record =
  Record.Checkpoint { dirty_pages = []; active_txns = []; prepared = [] }

let attach engine stable =
  {
    engine;
    stable;
    buf = Array.make 64 dummy_record;
    buf_head = 0;
    buf_len = 0;
    buf_first = Stable.next stable;
    next = Stable.next stable;
    txn_last = Hashtbl.create 32;
    txn_first = Hashtbl.create 32;
    outcome_lsns = Hashtbl.create 32;
    forces = 0;
    device_free_at = 0;
    dep_logging = false;
    last_writer = Hashtbl.create 64;
    deps_emitted = 0;
  }

let buf_get t i = t.buf.((t.buf_head + i) mod Array.length t.buf)

let buf_push t record =
  let cap = Array.length t.buf in
  if t.buf_len = cap then begin
    let bigger = Array.make (2 * cap) dummy_record in
    for i = 0 to t.buf_len - 1 do
      bigger.(i) <- buf_get t i
    done;
    t.buf <- bigger;
    t.buf_head <- 0
  end;
  t.buf.((t.buf_head + t.buf_len) mod Array.length t.buf) <- record;
  t.buf_len <- t.buf_len + 1

(* Drop the oldest buffered record, returning it. *)
let buf_shift t =
  let record = t.buf.(t.buf_head) in
  t.buf.(t.buf_head) <- dummy_record;
  t.buf_head <- (t.buf_head + 1) mod Array.length t.buf;
  t.buf_len <- t.buf_len - 1;
  t.buf_first <- t.buf_first + 1;
  record

let stable t = t.stable

let last_lsn_of t tid = Hashtbl.find_opt t.txn_last tid

let first_lsn_of t tid = Hashtbl.find_opt t.txn_first tid

(* Minimum over every live update chain — active transactions,
   subtransactions, and prepared-but-unresolved participants alike
   (chains are only unregistered at commit/abort/end, and restart
   re-registers in-doubt ones). Log reclamation must keep everything
   from here on. *)
let oldest_first_lsn t =
  Hashtbl.fold
    (fun _ first acc ->
      match acc with None -> Some first | Some a -> Some (min a first))
    t.txn_first None

let live_chain_firsts t =
  Hashtbl.fold (fun tid first acc -> (tid, first) :: acc) t.txn_first []

let has_appended_outcome t tid = Hashtbl.mem t.outcome_lsns tid

let chained_tids_of_family t top =
  let root = Tid.top_level top in
  Hashtbl.fold
    (fun tid _ acc ->
      if Tid.is_ancestor ~ancestor:root tid then tid :: acc else acc)
    t.txn_last []
  |> List.sort Tid.compare

let restore_chain t ~tid ~first ~last =
  Hashtbl.replace t.txn_first tid first;
  Hashtbl.replace t.txn_last tid last

let next_lsn t = t.next

let flushed_lsn t = Stable.next t.stable

let push t record =
  let lsn = t.next in
  t.next <- lsn + 1;
  buf_push t record;
  (match Record.tid_of record with
  | Some tid -> (
      match record with
      | Record.Update_value _ | Record.Update_operation _ ->
          Hashtbl.replace t.txn_last tid lsn;
          if not (Hashtbl.mem t.txn_first tid) then
            Hashtbl.add t.txn_first tid lsn
      | Record.Txn_commit _ | Record.Txn_abort _ | Record.Txn_end _ ->
          Hashtbl.remove t.txn_last tid;
          Hashtbl.remove t.txn_first tid;
          Hashtbl.replace t.outcome_lsns tid lsn
      | Record.Txn_begin _ | Record.Txn_prepare _ | Record.Checkpoint _
      | Record.Paxos_promise _ | Record.Paxos_accept _
      | Record.Paxos_decision _ | Record.Dependency _ ->
          (* a dependency record annotates the update it follows; it is
             not part of the transaction's backward undo chain *)
          ())
  | None -> ());
  if Engine.tracing t.engine then
    Engine.emit t.engine
      (Wal_append { lsn; tid = Record.tid_of record; kind = record_kind record });
  lsn

let append t record =
  let with_prev =
    match record with
    | Record.Update_value u ->
        Record.Update_value { u with prev = last_lsn_of t u.tid }
    | Record.Update_operation u ->
        Record.Update_operation { u with prev = last_lsn_of t u.tid }
    | other -> other
  in
  push t with_prev

let set_dep_logging t on = t.dep_logging <- on

let dep_logging t = t.dep_logging

let deps_emitted t = t.deps_emitted

(* Dependency emission for the update just appended at [lsn]. The
   last-writer table answers "who last wrote each of these objects" in
   O(1) per object; a record is appended only when at least one of those
   writers belongs to another transaction family (a same-family
   predecessor is already ordered by the per-page chain and the
   transaction's own program order). Appended at [lsn + 1] — directly
   after its update — so truncation and scan anchors can never separate
   the two. *)
let note_write_deps t ~tid ~objs ~reads ~lsn =
  if t.dep_logging then begin
    let top = Tid.top_level tid in
    (* write-write conflicts on [objs], read-write conflicts on
       [reads]: both order this update after the object's last writer.
       Reads never take over the last-writer slot. *)
    let pred obj =
      match Hashtbl.find_opt t.last_writer obj with
      | Some (wtid, wlsn) when not (Tid.equal (Tid.top_level wtid) top) ->
          Some (obj, wlsn)
      | Some _ | None -> None
    in
    let preds = List.filter_map pred objs @ List.filter_map pred reads in
    List.iter (fun obj -> Hashtbl.replace t.last_writer obj (tid, lsn)) objs;
    if preds <> [] then begin
      t.deps_emitted <- t.deps_emitted + 1;
      ignore (push t (Record.Dependency { tid; update_lsn = lsn; preds }))
    end
  end

let append_value t ~tid ~obj ~old_value ~new_value =
  let lsn =
    append t
      (Record.Update_value { tid; obj; old_value; new_value; prev = None })
  in
  note_write_deps t ~tid ~objs:[ obj ] ~reads:[] ~lsn;
  lsn

let append_operation t ~tid ~server ~operation ~undo_arg ~redo_arg ~pages
    ?(objs = []) ?(reads = []) () =
  let lsn =
    append t
      (Record.Update_operation
         { tid; server; operation; undo_arg; redo_arg; pages; prev = None })
  in
  note_write_deps t ~tid ~objs ~reads ~lsn;
  lsn

let force t ~upto =
  if upto >= flushed_lsn t then begin
    (* Flush every buffered record with LSN <= upto, oldest first.
       Records sit in the buffer in LSN order, so this is a prefix of
       the circular buffer — O(batch), no scan of what stays behind. *)
    let count = min t.buf_len (upto - t.buf_first + 1) in
    let records = ref 0 in
    let bytes = ref 0 in
    for _ = 1 to count do
      let lsn = t.buf_first in
      let encoded = Record.encode (buf_shift t) in
      let pos = Stable.append t.stable encoded in
      assert (pos = lsn);
      incr records;
      bytes := !bytes + String.length encoded
    done;
    if !bytes > 0 then begin
      (* the buffered records travel to the log device in one message *)
      Engine.charge t.engine Cost_model.Large_contiguous_message;
      let pages = (!bytes + Page.size - 1) / Page.size in
      t.forces <- t.forces + 1;
      if Engine.tracing t.engine then
        Engine.emit t.engine
          (Log_force { upto; records = !records; bytes = !bytes; pages });
      (* One device, one head: reserve the write slot before suspending
         so concurrent forces queue in arrival order, then pay the
         per-page writes. A lone forcer never waits — the single-fiber
         Section 5 measurements are unaffected. *)
      let write_cost =
        Cost_model.cost (Engine.cost_model t.engine)
          Cost_model.Stable_storage_write
      in
      let now = Engine.now t.engine in
      let start = max now t.device_free_at in
      t.device_free_at <- start + (pages * write_cost);
      if start > now then Engine.delay (start - now);
      for _ = 1 to pages do
        Engine.charge t.engine Cost_model.Stable_storage_write
      done
    end
  end

let force_all t = force t ~upto:(t.next - 1)

let read t lsn =
  if lsn >= t.buf_first && lsn < t.buf_first + t.buf_len then
    buf_get t (lsn - t.buf_first)
  else Record.decode (Stable.read t.stable lsn)

let iter_backward t ~from ~f =
  let lowest = Stable.first t.stable in
  let rec go lsn =
    if lsn >= lowest then begin
      match
        (try Some (read t lsn) with Not_found -> None)
      with
      | None -> go (lsn - 1)
      | Some record -> (
          match f lsn record with `Stop -> () | `Continue -> go (lsn - 1))
    end
  in
  if from >= lowest then go (min from (t.next - 1))

let iter_forward t ~from ~f =
  let stop = Stable.next t.stable in
  let rec go lsn =
    if lsn < stop then begin
      f lsn (Record.decode (Stable.read t.stable lsn));
      go (lsn + 1)
    end
  in
  go (max from (Stable.first t.stable))

let first_lsn t = Stable.first t.stable

let last_checkpoint t =
  let found = ref None in
  let f lsn record =
    match record with
    | Record.Checkpoint _ ->
        found := Some lsn;
        `Stop
    | _ -> `Continue
  in
  iter_backward t ~from:(Stable.next t.stable - 1) ~f;
  !found

(* Truncation must never retain a dependency record whose update it
   drops: the orphaned record would name an update that no longer
   exists. Dependency records sit at [update_lsn + 1], so the only bad
   cut is exactly between the two — move it down onto the update. (The
   other direction is structurally impossible: keeping the update keeps
   everything above it, including its dependency record.) *)
let dep_aligned_keep_from t ~keep_from =
  if not t.dep_logging then keep_from
  else
    match read t keep_from with
    | Record.Dependency { update_lsn; _ } when update_lsn = keep_from - 1 ->
        update_lsn
    | _ -> keep_from
    | exception Not_found -> keep_from

(* Checkpoint-time pruning of the last-writer table. Entries at or
   above [floor] may still seed dependency edges a restart would keep;
   entries below it cannot: [floor] is the checkpoint's scan anchor
   (min of the checkpoint LSN, its dirty pages' recovery LSNs, and its
   live families' first-update LSNs), every later checkpoint's anchor
   is at least as high, and [Parallel_redo.build] drops predecessor
   edges below the anchor because their effects are provably on disk.
   Dropping the entry merely skips emitting an edge that replay would
   discard anyway. *)
let prune_last_writer t ~floor =
  if t.dep_logging then
    Hashtbl.filter_map_inplace
      (fun _ ((_, lsn) as v) -> if lsn < floor then None else Some v)
      t.last_writer

let last_writer_size t = Hashtbl.length t.last_writer

let truncate t ~keep_from =
  let keep_from = dep_aligned_keep_from t ~keep_from in
  Stable.truncate_prefix t.stable ~keep_from;
  Hashtbl.filter_map_inplace
    (fun _ lsn -> if lsn < keep_from then None else Some lsn)
    t.outcome_lsns;
  if t.dep_logging then
    Hashtbl.filter_map_inplace
      (fun _ ((_, lsn) as v) -> if lsn < keep_from then None else Some v)
      t.last_writer

let force_count t = t.forces

let stable_bytes t = Stable.total_bytes t.stable
