(** The node-wide common log.

    Log records are written into a volatile buffer and forced to stable
    storage by the write-ahead-log and commit protocols (Section 2.1.3).
    One force spools the whole buffer, charging one stable-storage write
    per 512-byte log page — which is why group commit makes the force
    count lower than the record count.

    A crash discards the volatile buffer: re-attach to the same
    {!Tabs_storage.Stable.t} to model restart. *)

type t

type lsn = Record.lsn

(** Trace events: every buffered record ([kind] names the record
    constructor, e.g. ["update_value"], ["commit"]) and every non-empty
    log force with what it spooled. *)
type Tabs_sim.Trace.event +=
  | Wal_append of { lsn : lsn; tid : Tid.t option; kind : string }
  | Log_force of { upto : lsn; records : int; bytes : int; pages : int }

(** [attach engine stable] opens the log; survives restart by reading
    [stable]'s current extent. *)
val attach : Tabs_sim.Engine.t -> Tabs_storage.Stable.t -> t

val stable : t -> Tabs_storage.Stable.t

(** [append t record] buffers [record] and returns its LSN. If the record
    is an update, the transaction's backward chain is threaded through
    automatically and the caller's [prev] field is overwritten. *)
val append : t -> Record.t -> lsn

(** [append_value t ~tid ~obj ~old_value ~new_value] builds and buffers a
    value-logging update with the correct backward-chain pointer. *)
val append_value :
  t ->
  tid:Tid.t ->
  obj:Object_id.t ->
  old_value:string ->
  new_value:string ->
  lsn

(** [append_operation t ~tid ~server ~operation ~undo_arg ~redo_arg
    ~pages ?objs ?reads ()] buffers an operation-logging update. [?objs]
    names the objects the operation writes and [?reads] the objects it
    read, feeding the dependency-logging last-writer table: a write-write
    conflict on an [objs] member or a read-write conflict on a [reads]
    member each yields a predecessor edge. Without them an operation
    record generates no dependency edges (per-page chains still order it
    at redo). *)
val append_operation :
  t ->
  tid:Tid.t ->
  server:string ->
  operation:string ->
  undo_arg:string ->
  redo_arg:string ->
  pages:Tabs_storage.Disk.page_id list ->
  ?objs:Object_id.t list ->
  ?reads:Object_id.t list ->
  unit ->
  lsn

(** {2 Dependency logging}

    The third logging technique over the common log (Yao et al.:
    logical operations plus their conflict dependencies). When enabled,
    every update append consults an in-memory last-writer-per-object
    table and, if the update overwrites an object last written by a
    different transaction family, a {!Record.Dependency} record naming
    the predecessor LSNs is appended immediately after the update —
    emission is O(objects touched), and no record is written when no
    cross-transaction conflict exists. Off by default: the log is then
    byte-identical to a build without dependency logging. *)

(** [set_dep_logging t on] turns dependency-record emission on or off.
    The Recovery Manager enables it when parallel recovery is
    configured. *)
val set_dep_logging : t -> bool -> unit

val dep_logging : t -> bool

(** Number of dependency records appended (statistics). *)
val deps_emitted : t -> int

(** [prune_last_writer t ~floor] drops last-writer entries whose update
    LSN is below [floor]. The Recovery Manager calls it at checkpoint
    time with the checkpoint's scan anchor (the minimum of the
    checkpoint LSN, its dirty pages' recovery LSNs, and its live
    families' first-update LSNs): a dependency edge against an entry
    below that anchor would be discarded at replay anyway — the
    predecessor's effect is provably on disk — so long runs no longer
    grow the table with every object ever touched. No-op when
    dependency logging is off. *)
val prune_last_writer : t -> floor:lsn -> unit

(** Current entry count of the last-writer table (statistics). *)
val last_writer_size : t -> int

(** [dep_aligned_keep_from t ~keep_from] lowers a prospective truncation
    point so it never falls between an update record and its dependency
    record (the pair is adjacent, so at most one LSN of adjustment).
    Identity when dependency logging is off. {!truncate} applies this
    itself; reclamation may also call it to report the aligned floor. *)
val dep_aligned_keep_from : t -> keep_from:lsn -> lsn

(** [last_lsn_of t tid] is the most recent update LSN of [tid], used for
    checkpointing and abort. *)
val last_lsn_of : t -> Tid.t -> lsn option

(** [first_lsn_of t tid] is the earliest update LSN of [tid]; log
    reclamation must not truncate past the first record of any active
    transaction. *)
val first_lsn_of : t -> Tid.t -> lsn option

(** [oldest_first_lsn t] is the smallest first-update LSN over every
    live update chain — active transactions and subtransactions as well
    as prepared-but-unresolved (in-doubt) participants, whose chains
    stay registered until their verdict arrives. [None] when no chain is
    live. Log reclamation must not truncate at or past this LSN. *)
val oldest_first_lsn : t -> lsn option

(** [live_chain_firsts t] lists every live update chain with its
    first-update LSN, unordered — the raw material for a fuzzy
    checkpoint's active-transaction table. *)
val live_chain_firsts : t -> (Tid.t * lsn) list

(** [has_appended_outcome t tid] is whether a commit, abort, or end
    record for [tid] has been appended to the live log. The Transaction
    Manager's own bookkeeping lags the append while the commit force is
    in flight, so a fuzzy checkpoint taken in that window must consult
    the log — not the TM — to avoid listing a decided transaction as
    active. Entries below the truncation point are forgotten. *)
val has_appended_outcome : t -> Tid.t -> bool

(** [chained_tids_of_family t top] lists the transactions of [top]'s
    family (the top-level transaction and its subtransactions) that have
    live update chains — the set abort processing must undo. *)
val chained_tids_of_family : t -> Tid.t -> Tid.t list

(** [restore_chain t ~tid ~first ~last] re-registers a transaction's
    update chain after restart — used for prepared (in-doubt)
    transactions whose fate is decided, and possibly undone, after crash
    recovery. *)
val restore_chain : t -> tid:Tid.t -> first:lsn -> last:lsn -> unit

(** [next_lsn t] is the LSN the next append will receive. *)
val next_lsn : t -> lsn

(** [flushed_lsn t] — every record with LSN < [flushed_lsn t] is on
    stable storage. *)
val flushed_lsn : t -> lsn

(** [force t ~upto] makes records with LSN <= [upto] stable, charging
    stable-storage writes. Must run inside a fiber. No-op if already
    flushed. *)
val force : t -> upto:lsn -> unit

(** [force_all t] forces the entire buffer. *)
val force_all : t -> unit

(** [read t lsn] returns a record from the buffer or stable storage.
    Raises [Not_found] for truncated or unwritten LSNs. *)
val read : t -> lsn -> Record.t

(** [iter_backward t ~from ~f] applies [f] from [from] down to the start
    of the live log, stopping early when [f] returns [`Stop]. *)
val iter_backward :
  t -> from:lsn -> f:(lsn -> Record.t -> [ `Continue | `Stop ]) -> unit

(** [iter_forward t ~from ~f] applies [f] in LSN order to the end of the
    stable log (the buffer is not included: crash recovery only ever sees
    stable records). *)
val iter_forward : t -> from:lsn -> f:(lsn -> Record.t -> unit) -> unit

(** [first_lsn t] is the oldest live LSN on stable storage. *)
val first_lsn : t -> lsn

(** [last_checkpoint t] is the LSN of the most recent checkpoint record
    on stable storage, found by backward scan as at restart. *)
val last_checkpoint : t -> lsn option

(** [truncate t ~keep_from] reclaims log space before [keep_from]. *)
val truncate : t -> keep_from:lsn -> unit

(** Number of stable-storage force operations performed (statistics). *)
val force_count : t -> int

(** Live stable log size in bytes, driving the reclamation policy. *)
val stable_bytes : t -> int
