open Tabs_storage

type lsn = int

type update_value = {
  tid : Tid.t;
  obj : Object_id.t;
  old_value : string;
  new_value : string;
  prev : lsn option;
}

type update_operation = {
  tid : Tid.t;
  server : string;
  operation : string;
  undo_arg : string;
  redo_arg : string;
  pages : Disk.page_id list;
  prev : lsn option;
}

type checkpoint = {
  dirty_pages : (Disk.page_id * lsn) list;
  active_txns : (Tid.t * lsn option) list;
  prepared : (Tid.t * int) list;
}

type dependency = {
  tid : Tid.t;
  update_lsn : lsn;
      (* the update record this dependency orders; always the
         immediately preceding LSN, so truncation and scan anchors can
         never keep the update while dropping its dependency record *)
  preds : (Object_id.t * lsn) list;
      (* per conflicting object, the last writer's update LSN — parallel
         redo must not apply [update_lsn] before all of these *)
}

type t =
  | Update_value of update_value
  | Update_operation of update_operation
  | Txn_begin of Tid.t
  | Txn_commit of Tid.t
  | Txn_abort of Tid.t
  | Txn_prepare of Tid.t * int
  | Txn_end of Tid.t
  | Checkpoint of checkpoint
  | Paxos_promise of { tid : Tid.t; ballot : int }
  | Paxos_accept of { tid : Tid.t; part : int; ballot : int; yes : bool }
  | Paxos_decision of { tid : Tid.t; committed : bool }
  | Dependency of dependency

(* Paxos acceptor records describe consensus state this node holds on
   behalf of a *foreign* transaction, not local update history, so they
   join no transaction chain and carry no tid for chain maintenance.
   Dependency records annotate an update they follow; they are not part
   of the transaction's backward undo chain either. *)
let tid_of = function
  | Update_value u -> Some u.tid
  | Update_operation u -> Some u.tid
  | Txn_begin tid | Txn_commit tid | Txn_abort tid | Txn_end tid -> Some tid
  | Txn_prepare (tid, _) -> Some tid
  | Dependency d -> Some d.tid
  | Checkpoint _ | Paxos_promise _ | Paxos_accept _ | Paxos_decision _ -> None

let prev_of = function
  | Update_value u -> u.prev
  | Update_operation u -> u.prev
  | Txn_begin _ | Txn_commit _ | Txn_abort _ | Txn_prepare _ | Txn_end _
  | Checkpoint _ | Paxos_promise _ | Paxos_accept _ | Paxos_decision _
  | Dependency _ ->
      None

(* Encoding --------------------------------------------------------- *)

let write_tid w (tid : Tid.t) =
  Codec.Writer.int w tid.node;
  Codec.Writer.int w tid.seq;
  Codec.Writer.list w Codec.Writer.int tid.path

let read_tid r : Tid.t =
  let node = Codec.Reader.int r in
  let seq = Codec.Reader.int r in
  let path = Codec.Reader.list r Codec.Reader.int in
  { node; seq; path }

let write_obj w (obj : Object_id.t) =
  Codec.Writer.int w obj.segment;
  Codec.Writer.int w obj.offset;
  Codec.Writer.int w obj.length

let read_obj r : Object_id.t =
  let segment = Codec.Reader.int r in
  let offset = Codec.Reader.int r in
  let length = Codec.Reader.int r in
  { segment; offset; length }

let write_page w (p : Disk.page_id) =
  Codec.Writer.int w p.segment;
  Codec.Writer.int w p.page

let read_page r : Disk.page_id =
  let segment = Codec.Reader.int r in
  let page = Codec.Reader.int r in
  { segment; page }

let encode t =
  let w = Codec.Writer.create () in
  (match t with
  | Update_value u ->
      Codec.Writer.int w 0;
      write_tid w u.tid;
      write_obj w u.obj;
      Codec.Writer.string w u.old_value;
      Codec.Writer.string w u.new_value;
      Codec.Writer.option w Codec.Writer.int u.prev
  | Update_operation u ->
      Codec.Writer.int w 1;
      write_tid w u.tid;
      Codec.Writer.string w u.server;
      Codec.Writer.string w u.operation;
      Codec.Writer.string w u.undo_arg;
      Codec.Writer.string w u.redo_arg;
      Codec.Writer.list w write_page u.pages;
      Codec.Writer.option w Codec.Writer.int u.prev
  | Txn_begin tid ->
      Codec.Writer.int w 2;
      write_tid w tid
  | Txn_commit tid ->
      Codec.Writer.int w 3;
      write_tid w tid
  | Txn_abort tid ->
      Codec.Writer.int w 4;
      write_tid w tid
  | Txn_prepare (tid, coordinator) ->
      Codec.Writer.int w 5;
      write_tid w tid;
      Codec.Writer.int w coordinator
  | Txn_end tid ->
      Codec.Writer.int w 6;
      write_tid w tid
  | Checkpoint c ->
      Codec.Writer.int w 7;
      Codec.Writer.list w
        (fun w (p, lsn) ->
          write_page w p;
          Codec.Writer.int w lsn)
        c.dirty_pages;
      Codec.Writer.list w
        (fun w (tid, lsn) ->
          write_tid w tid;
          Codec.Writer.option w Codec.Writer.int lsn)
        c.active_txns;
      Codec.Writer.list w
        (fun w (tid, coordinator) ->
          write_tid w tid;
          Codec.Writer.int w coordinator)
        c.prepared
  | Paxos_promise p ->
      Codec.Writer.int w 8;
      write_tid w p.tid;
      Codec.Writer.int w p.ballot
  | Paxos_accept a ->
      Codec.Writer.int w 9;
      write_tid w a.tid;
      Codec.Writer.int w a.part;
      Codec.Writer.int w a.ballot;
      Codec.Writer.int w (if a.yes then 1 else 0)
  | Paxos_decision d ->
      Codec.Writer.int w 10;
      write_tid w d.tid;
      Codec.Writer.int w (if d.committed then 1 else 0)
  | Dependency d ->
      Codec.Writer.int w 11;
      write_tid w d.tid;
      Codec.Writer.int w d.update_lsn;
      Codec.Writer.list w
        (fun w (obj, lsn) ->
          write_obj w obj;
          Codec.Writer.int w lsn)
        d.preds);
  Codec.Writer.contents w

let decode s =
  let r = Codec.Reader.of_string s in
  let t =
    match Codec.Reader.int r with
    | 0 ->
        let tid = read_tid r in
        let obj = read_obj r in
        let old_value = Codec.Reader.string r in
        let new_value = Codec.Reader.string r in
        let prev = Codec.Reader.option r Codec.Reader.int in
        Update_value { tid; obj; old_value; new_value; prev }
    | 1 ->
        let tid = read_tid r in
        let server = Codec.Reader.string r in
        let operation = Codec.Reader.string r in
        let undo_arg = Codec.Reader.string r in
        let redo_arg = Codec.Reader.string r in
        let pages = Codec.Reader.list r read_page in
        let prev = Codec.Reader.option r Codec.Reader.int in
        Update_operation { tid; server; operation; undo_arg; redo_arg; pages; prev }
    | 2 -> Txn_begin (read_tid r)
    | 3 -> Txn_commit (read_tid r)
    | 4 -> Txn_abort (read_tid r)
    | 5 ->
        let tid = read_tid r in
        let coordinator = Codec.Reader.int r in
        Txn_prepare (tid, coordinator)
    | 6 -> Txn_end (read_tid r)
    | 7 ->
        let dirty_pages =
          Codec.Reader.list r (fun r ->
              let p = read_page r in
              let lsn = Codec.Reader.int r in
              (p, lsn))
        in
        let active_txns =
          Codec.Reader.list r (fun r ->
              let tid = read_tid r in
              let lsn = Codec.Reader.option r Codec.Reader.int in
              (tid, lsn))
        in
        let prepared =
          Codec.Reader.list r (fun r ->
              let tid = read_tid r in
              let coordinator = Codec.Reader.int r in
              (tid, coordinator))
        in
        Checkpoint { dirty_pages; active_txns; prepared }
    | 8 ->
        let tid = read_tid r in
        let ballot = Codec.Reader.int r in
        Paxos_promise { tid; ballot }
    | 9 ->
        let tid = read_tid r in
        let part = Codec.Reader.int r in
        let ballot = Codec.Reader.int r in
        let yes = Codec.Reader.int r <> 0 in
        Paxos_accept { tid; part; ballot; yes }
    | 10 ->
        let tid = read_tid r in
        let committed = Codec.Reader.int r <> 0 in
        Paxos_decision { tid; committed }
    | 11 ->
        let tid = read_tid r in
        let update_lsn = Codec.Reader.int r in
        let preds =
          Codec.Reader.list r (fun r ->
              let obj = read_obj r in
              let lsn = Codec.Reader.int r in
              (obj, lsn))
        in
        Dependency { tid; update_lsn; preds }
    | n -> raise (Codec.Reader.Malformed (Printf.sprintf "unknown tag %d" n))
  in
  if not (Codec.Reader.at_end r) then
    raise (Codec.Reader.Malformed "trailing bytes");
  t

let pp fmt = function
  | Update_value u ->
      Format.fprintf fmt "@[value-update %a %a (%d->%d bytes)@]" Tid.pp u.tid
        Object_id.pp u.obj
        (String.length u.old_value)
        (String.length u.new_value)
  | Update_operation u ->
      Format.fprintf fmt "@[op-update %a %s.%s@]" Tid.pp u.tid u.server
        u.operation
  | Txn_begin tid -> Format.fprintf fmt "begin %a" Tid.pp tid
  | Txn_commit tid -> Format.fprintf fmt "commit %a" Tid.pp tid
  | Txn_abort tid -> Format.fprintf fmt "abort %a" Tid.pp tid
  | Txn_prepare (tid, c) -> Format.fprintf fmt "prepare %a coord=%d" Tid.pp tid c
  | Txn_end tid -> Format.fprintf fmt "end %a" Tid.pp tid
  | Checkpoint c ->
      Format.fprintf fmt
        "checkpoint (%d dirty pages, %d active txns, %d prepared)"
        (List.length c.dirty_pages)
        (List.length c.active_txns)
        (List.length c.prepared)
  | Paxos_promise p ->
      Format.fprintf fmt "paxos-promise %a b=%d" Tid.pp p.tid p.ballot
  | Paxos_accept a ->
      Format.fprintf fmt "paxos-accept %a part=%d b=%d %s" Tid.pp a.tid a.part
        a.ballot
        (if a.yes then "prepared" else "aborted")
  | Paxos_decision d ->
      Format.fprintf fmt "paxos-decision %a %s" Tid.pp d.tid
        (if d.committed then "commit" else "abort")
  | Dependency d ->
      Format.fprintf fmt "dependency %a for %d (%d preds)" Tid.pp d.tid
        d.update_lsn (List.length d.preds)
