(** Write-ahead log records.

    The common log holds both value-logging and operation-logging update
    records side by side (Section 2.1.3 — "two co-existing write-ahead
    logging techniques ... share a common log"), transaction management
    records written on behalf of the Transaction Manager, and checkpoint
    records written by the Recovery Manager. *)

(** Log sequence number: position of a record in the node's log. *)
type lsn = int

(** A value-logging update: old and new images of at most one page of an
    object's representation. [prev] chains this transaction's updates
    backward for abort processing. *)
type update_value = {
  tid : Tid.t;
  obj : Object_id.t;
  old_value : string;
  new_value : string;
  prev : lsn option;
}

(** An operation-logging update: the name of an operation and enough
    information to invoke its redo or undo; may cover a multi-page
    object. [pages] are the pages whose sector sequence numbers gate
    redo. *)
type update_operation = {
  tid : Tid.t;
  server : string;
  operation : string;
  undo_arg : string;
  redo_arg : string;
  pages : Tabs_storage.Disk.page_id list;
  prev : lsn option;
}

type checkpoint = {
  dirty_pages : (Tabs_storage.Disk.page_id * lsn) list;
      (** pages in volatile storage and their recovery LSNs — the LSN of
          the earliest update not yet reflected on disk (recovery must
          start no later). *)
  active_txns : (Tid.t * lsn option) list;
      (** transactions in progress (including prepared ones) and the
          earliest update LSN of any member of their family, [None] if
          the family has logged no update yet. Checkpoint-anchored
          analysis starts its scan no later than the smallest of these. *)
  prepared : (Tid.t * int) list;
      (** prepared-but-unresolved participants and their coordinator
          nodes: their prepare records may predate the checkpoint, so
          analysis seeds their in-doubt status from here. *)
}

(** A dependency record — the third logging technique over the common
    log (after value and operation logging): the conflict edges of the
    update at [update_lsn], written only when a cross-transaction
    conflict actually exists. [preds] names, per conflicting object, the
    update LSN of the object's previous writer from another transaction
    family; parallel redo must apply all of them before [update_lsn].
    A dependency record is always appended at [update_lsn + 1], so no
    truncation point or scan anchor can retain the update while dropping
    its dependencies. *)
type dependency = {
  tid : Tid.t;
  update_lsn : lsn;
  preds : (Object_id.t * lsn) list;
}

type t =
  | Update_value of update_value
  | Update_operation of update_operation
  | Txn_begin of Tid.t
  | Txn_commit of Tid.t
  | Txn_abort of Tid.t
  | Txn_prepare of Tid.t * int  (** prepared; int is the coordinator node *)
  | Txn_end of Tid.t  (** two-phase commit completed, outcome fully acked *)
  | Checkpoint of checkpoint
  | Paxos_promise of { tid : Tid.t; ballot : int }
      (** Paxos Commit acceptor: promised to ignore ballots below
          [ballot] for this transaction's consensus instances *)
  | Paxos_accept of { tid : Tid.t; part : int; ballot : int; yes : bool }
      (** Paxos Commit acceptor: accepted value [yes] (Prepared /
          Aborted) at [ballot] for participant [part]'s instance *)
  | Paxos_decision of { tid : Tid.t; committed : bool }
      (** Paxos Commit acceptor: learned the transaction's outcome *)
  | Dependency of dependency
      (** conflict-dependency edges of the immediately preceding update
          record, for graph-bounded parallel redo *)

(** [tid_of t] is the transaction a record belongs to, if any. *)
val tid_of : t -> Tid.t option

(** [prev_of t] is the backward-chain pointer of update records. *)
val prev_of : t -> lsn option

val encode : t -> string

(** Raises [Codec.Reader.Malformed] on corrupt input. *)
val decode : string -> t

val pp : Format.formatter -> t -> unit
