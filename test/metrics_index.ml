(* Helper: read a per-primitive weight out of a Tabs_bench.Workloads.result
   (pre-commit + commit windows combined). *)

open Tabs_sim

let weight (r : Tabs_bench.Workloads.result) p =
  let idx = Cost_model.to_int p in
  r.pre.(idx) +. r.commit.(idx)
