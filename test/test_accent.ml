(* Tests for the simulated Accent kernel: ports and the virtual-memory
   system (demand paging, eviction, pinning, the kernel<->Recovery
   Manager write-ahead protocol). *)

open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_accent

let quick name f = Alcotest.test_case name `Quick f

let in_fiber f =
  let e = Engine.create () in
  let out = ref None in
  let _ = Engine.spawn e (fun () -> out := Some (f e)) in
  let _ = Engine.run e in
  Option.get !out

let obj ~segment ~offset ~length = Object_id.make ~segment ~offset ~length

(* Ports ----------------------------------------------------------------- *)

let test_port_send_receive () =
  let e = Engine.create () in
  let port = Port.create e in
  let got = ref [] in
  let _ =
    Engine.spawn e (fun () ->
        let first = Port.receive port in
        let second = Port.receive port in
        got := [ first; second ])
  in
  let _ =
    Engine.spawn e (fun () ->
        Port.send port ~kind:Port.Small "a";
        Port.send port ~kind:Port.Large "b")
  in
  let _ = Engine.run e in
  Alcotest.(check (list string)) "fifo" [ "a"; "b" ] !got;
  Alcotest.(check int) "small + large costs" (3_000 + 4_400) (Engine.now e)

let test_port_timeout () =
  let e = Engine.create () in
  let port : string Port.t = Port.create e in
  let got = ref (Some "x") in
  let _ =
    Engine.spawn e (fun () -> got := Port.receive_timeout port ~timeout:1_000)
  in
  let _ = Engine.run e in
  Alcotest.(check (option string)) "timed out" None !got

(* VM ---------------------------------------------------------------------- *)

let make_vm ?(frames = 4) e =
  let disk = Disk.create e in
  Disk.ensure_segment disk 1 ~pages:64;
  Vm.attach e disk ~frames ()

let test_vm_read_write () =
  in_fiber (fun e ->
      let vm = make_vm e in
      let o = obj ~segment:1 ~offset:100 ~length:5 in
      Vm.pin vm o ~access:`Random;
      Vm.write vm o "hello";
      Vm.unpin vm o;
      Alcotest.(check string) "in-memory read" "hello" (Vm.read vm o ~access:`Random))

let test_vm_write_requires_pin () =
  in_fiber (fun e ->
      let vm = make_vm e in
      let o = obj ~segment:1 ~offset:0 ~length:4 in
      ignore (Vm.read vm o ~access:`Random);
      Alcotest.check_raises "unpinned write rejected"
        (Invalid_argument "Vm.write: page not pinned") (fun () ->
          Vm.write vm o "oops"))

let test_vm_eviction_lru () =
  in_fiber (fun e ->
      let vm = make_vm ~frames:2 e in
      let page n = obj ~segment:1 ~offset:(n * Page.size) ~length:4 in
      ignore (Vm.read vm (page 0) ~access:`Random);
      ignore (Vm.read vm (page 1) ~access:`Random);
      ignore (Vm.read vm (page 0) ~access:`Random);
      (* page 1 is the LRU victim *)
      ignore (Vm.read vm (page 2) ~access:`Random);
      Alcotest.(check int) "two resident" 2 (Vm.resident vm);
      let faults_before = Vm.faults vm in
      ignore (Vm.read vm (page 0) ~access:`Random);
      Alcotest.(check int) "page 0 still cached" faults_before (Vm.faults vm);
      ignore (Vm.read vm (page 1) ~access:`Random);
      Alcotest.(check int) "page 1 refaults" (faults_before + 1) (Vm.faults vm))

let test_vm_pinned_not_evicted () =
  in_fiber (fun e ->
      let vm = make_vm ~frames:2 e in
      let page n = obj ~segment:1 ~offset:(n * Page.size) ~length:4 in
      Vm.pin vm (page 0) ~access:`Random;
      ignore (Vm.read vm (page 1) ~access:`Random);
      ignore (Vm.read vm (page 2) ~access:`Random);
      (* page 0 pinned: untouched-but-pinned survives both faults *)
      let faults_before = Vm.faults vm in
      ignore (Vm.read vm (page 0) ~access:`Random);
      Alcotest.(check int) "pinned page never evicted" faults_before (Vm.faults vm);
      Vm.unpin vm (page 0))

let test_vm_wal_protocol_order () =
  (* before any dirty page reaches disk, the hooks must run in order:
     first-dirty at modification, then before/after around the write. *)
  in_fiber (fun e ->
      let vm = make_vm ~frames:2 e in
      let events = ref [] in
      Vm.set_wal_hooks vm
        {
          Vm.on_first_dirty = (fun _ -> events := "first-dirty" :: !events);
          before_page_out = (fun _ -> events := "before-out" :: !events);
          after_page_out = (fun _ -> events := "after-out" :: !events);
        };
      let page n = obj ~segment:1 ~offset:(n * Page.size) ~length:4 in
      Vm.pin vm (page 0) ~access:`Random;
      Vm.write vm (page 0) "dirt";
      Vm.note_update vm (page 0) ~lsn:5;
      Vm.unpin vm (page 0);
      (* second write on the same dirty page: no second notice *)
      Vm.pin vm (page 0) ~access:`Random;
      Vm.write vm (page 0) "dirx";
      Vm.unpin vm (page 0);
      (* force eviction of page 0 *)
      ignore (Vm.read vm (page 1) ~access:`Random);
      ignore (Vm.read vm (page 2) ~access:`Random);
      ignore (Vm.read vm (page 3) ~access:`Random);
      Alcotest.(check (list string))
        "protocol order"
        [ "first-dirty"; "before-out"; "after-out" ]
        (List.rev !events);
      (* the sector sequence number was stamped atomically at page-out *)
      Alcotest.(check int) "seqno stamped" 5
        (Disk.seqno (Vm.disk vm) { Disk.segment = 1; page = 0 }))

let test_vm_dirty_page_list () =
  in_fiber (fun e ->
      let vm = make_vm e in
      let page n = obj ~segment:1 ~offset:(n * Page.size) ~length:4 in
      Vm.pin vm (page 0) ~access:`Random;
      Vm.write vm (page 0) "aaaa";
      Vm.note_update vm (page 0) ~lsn:3;
      Vm.unpin vm (page 0);
      Vm.pin vm (page 2) ~access:`Random;
      Vm.write vm (page 2) "bbbb";
      Vm.note_update vm (page 2) ~lsn:7;
      Vm.unpin vm (page 2);
      Alcotest.(check (list (pair (pair int int) int)))
        "dirty list with recovery LSNs"
        [ ((1, 0), 3); ((1, 2), 7) ]
        (List.map
           (fun ((p : Disk.page_id), lsn) -> ((p.segment, p.page), lsn))
           (Vm.dirty_pages vm));
      Vm.flush_all vm;
      Alcotest.(check int) "clean after flush" 0 (List.length (Vm.dirty_pages vm)))

let test_vm_multipage_object () =
  in_fiber (fun e ->
      let vm = make_vm e in
      let o = obj ~segment:1 ~offset:(Page.size - 3) ~length:6 in
      Vm.pin vm o ~access:`Random;
      Vm.write vm o "abcdef";
      Vm.unpin vm o;
      Alcotest.(check string) "straddling write/read" "abcdef"
        (Vm.read vm o ~access:`Random);
      Alcotest.(check int) "two pages dirty" 2 (List.length (Vm.dirty_pages vm)))

let test_vm_single_frame_pool () =
  (* the degenerate one-frame pool: every access to a different page
     evicts the previous one, dirty pages write back correctly *)
  in_fiber (fun e ->
      let vm = make_vm ~frames:1 e in
      let page n = obj ~segment:1 ~offset:(n * Page.size) ~length:4 in
      Vm.pin vm (page 0) ~access:`Random;
      Vm.write vm (page 0) "aaaa";
      Vm.note_update vm (page 0) ~lsn:1;
      Vm.unpin vm (page 0);
      (* touching page 1 evicts dirty page 0 through the protocol *)
      ignore (Vm.read vm (page 1) ~access:`Random);
      Alcotest.(check int) "one resident" 1 (Vm.resident vm);
      Alcotest.(check string) "page 0 written back" "aaaa"
        (Page.sub (Disk.read_nocharge (Vm.disk vm) { Disk.segment = 1; page = 0 })
           ~off:0 ~len:4);
      (* and faulting it back reads the written data *)
      Alcotest.(check string) "refault reads it" "aaaa"
        (Vm.read vm (page 0) ~access:`Random))

let suites =
  [
    ( "accent.port",
      [ quick "send/receive" test_port_send_receive; quick "timeout" test_port_timeout ]
    );
    ( "accent.vm",
      [
        quick "read/write" test_vm_read_write;
        quick "write requires pin" test_vm_write_requires_pin;
        quick "LRU eviction" test_vm_eviction_lru;
        quick "pinned not evicted" test_vm_pinned_not_evicted;
        quick "WAL protocol order" test_vm_wal_protocol_order;
        quick "dirty page list" test_vm_dirty_page_list;
        quick "multi-page object" test_vm_multipage_object;
        quick "single-frame pool" test_vm_single_frame_pool;
      ] );
  ]
