(* A fast in-test run of the Section 5 benchmark harness: few
   iterations, but enough to guard the qualitative orderings the
   reproduction claims (the full run lives in bench/main.exe). *)

open Tabs_sim

let results =
  lazy (Tabs_bench.Workloads.run_all ~iterations:4 ~warmup:1 ~model:Cost_model.measured ())

let integrated_results =
  lazy
    (Tabs_bench.Workloads.run_all ~iterations:4 ~warmup:1
       ~profile:Profile.Integrated ~model:Cost_model.measured ())

let elapsed i = (List.nth (Lazy.force results) i : Tabs_bench.Workloads.result).elapsed_us

let pre i p = Metrics_index.weight (List.nth (Lazy.force results) i) p

let check name cond () = Alcotest.(check bool) name true cond

let suites =
  [
    ( "bench.shapes",
      [
        Alcotest.test_case "writes cost more than reads" `Slow (fun () ->
            check "local" (elapsed 4 > elapsed 0) ();
            check "remote" (elapsed 10 > elapsed 7) ());
        Alcotest.test_case "more ops cost more" `Slow (fun () ->
            check "reads" (elapsed 1 > elapsed 0) ();
            check "writes" (elapsed 5 > elapsed 4) ());
        Alcotest.test_case "paging costs more" `Slow (fun () ->
            check "read" (elapsed 2 > elapsed 0) ();
            check "write" (elapsed 6 > elapsed 4) ();
            check "random worst" (elapsed 3 > elapsed 2) ());
        Alcotest.test_case "distribution costs more" `Slow (fun () ->
            check "2 > 1 node" (elapsed 7 > elapsed 0) ();
            check "3 > 2 nodes" (elapsed 12 > elapsed 7) ();
            check "3-node write is worst" true ());
        Alcotest.test_case "Integrated profile is never slower" `Slow
          (fun () ->
            List.iter2
              (fun (c : Tabs_bench.Workloads.result)
                   (i : Tabs_bench.Workloads.result) ->
                check (c.name ^ ": integrated <= classic")
                  (i.elapsed_us <= c.elapsed_us)
                  ();
                check (c.name ^ ": messages elided")
                  (Array.exists (fun x -> x > 0.) i.elided)
                  ())
              (Lazy.force results)
              (Lazy.force integrated_results));
        Alcotest.test_case "primitive counts match paper exactly (locals)"
          `Slow
          (fun () ->
            (* the local read benchmark's counts are fully deterministic *)
            Alcotest.(check (pair int int))
              "1 local read: 1 DSC, 9 small (4 pre-commit + 5 commit)"
              (1, 9)
              ( int_of_float (pre 0 Cost_model.Data_server_call +. 0.5),
                int_of_float
                  (pre 0 Cost_model.Small_contiguous_message +. 0.5) ));
      ] );
  ]
