(* Fuzzy checkpoints, checkpoint-anchored recovery, and the background
   checkpoint daemon.

   The load-bearing property: with the daemon running, crash at an
   arbitrary instant and recover anchored at the last fuzzy checkpoint —
   the result must be indistinguishable from a full-log-scan recovery
   over a frozen copy of the same stable log and disk. *)

open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_accent
open Tabs_recovery
open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

(* --- rig-level tests (no Transaction Manager), as in test_recovery_unit *)

type rig = {
  engine : Engine.t;
  disk : Disk.t;
  stable : Stable.t;
  mutable vm : Vm.t;
  mutable log : Log_manager.t;
  mutable rm : Recovery_mgr.t;
}

let make_rig ?checkpointing ?log_space_limit () =
  let engine = Engine.create () in
  let disk = Disk.create engine in
  Disk.ensure_segment disk 1 ~pages:8;
  let stable = Stable.create () in
  let vm = Vm.attach engine disk ~frames:16 () in
  let log = Log_manager.attach engine stable in
  let rm =
    Recovery_mgr.create engine ~node:0 ~log ~vm ?checkpointing
      ?log_space_limit ()
  in
  { engine; disk; stable; vm; log; rm }

let crash_and_recover ?anchored rig =
  let vm = Vm.attach rig.engine rig.disk ~frames:16 () in
  let log = Log_manager.attach rig.engine rig.stable in
  let rm = Recovery_mgr.create rig.engine ~node:0 ~log ~vm () in
  rig.vm <- vm;
  rig.log <- log;
  rig.rm <- rm;
  Recovery_mgr.recover ?anchored rm

let obj n = Object_id.make ~segment:1 ~offset:(8 * n) ~length:8

let run_fiber rig f =
  let out = ref None in
  let _ = Engine.spawn rig.engine (fun () -> out := Some (f ())) in
  let _ = Engine.run rig.engine in
  Option.get !out

let write rig tid n value =
  Vm.pin rig.vm (obj n) ~access:`Random;
  let old_value = Vm.read rig.vm (obj n) ~access:`Random in
  Vm.write rig.vm (obj n) value;
  ignore
    (Recovery_mgr.log_value rig.rm ~tid ~obj:(obj n) ~old_value
       ~new_value:value);
  Vm.unpin rig.vm (obj n)

let commit rig tid =
  let lsn = Recovery_mgr.append_tm_record rig.rm (Record.Txn_commit tid) in
  Recovery_mgr.force_through rig.rm lsn

let v8 s = Printf.sprintf "%-8s" s

(* The same workload with and without a mid-way checkpoint: anchoring
   must make the restart analysis scan strictly shorter. *)
let test_scan_drops_after_checkpoint () =
  let scanned ~with_checkpoint =
    let rig = make_rig () in
    run_fiber rig (fun () ->
        for i = 1 to 12 do
          let tid = Tid.top ~node:0 ~seq:i in
          write rig tid (i mod 8) (v8 (string_of_int i));
          commit rig tid;
          (* the flush stands in for the daemon's trickle write-back:
             a checkpoint only raises the scan anchor past pages whose
             recovery LSNs have moved on *)
          if with_checkpoint && i = 6 then begin
            Vm.flush_all rig.vm;
            ignore (Recovery_mgr.checkpoint rig.rm)
          end
        done);
    let outcome = run_fiber rig (fun () -> crash_and_recover rig) in
    outcome.records_scanned
  in
  let without = scanned ~with_checkpoint:false in
  let with_ck = scanned ~with_checkpoint:true in
  Alcotest.(check bool)
    (Printf.sprintf "scan shrinks (%d with < %d without)" with_ck without)
    true
    (with_ck < without)

(* A fuzzy checkpoint taken while a transaction is mid-flight must not
   let the anchored scan start past the live transaction's first update
   (nor past a dirty page's recovery LSN). *)
let test_fuzzy_checkpoint_covers_live_txn () =
  let rig = make_rig () in
  run_fiber rig (fun () ->
      let t1 = Tid.top ~node:0 ~seq:1 in
      write rig t1 0 (v8 "keep");
      commit rig t1;
      let t2 = Tid.top ~node:0 ~seq:2 in
      write rig t2 0 (v8 "dirty");
      (* checkpoint mid-transaction: t2 is live, page 0 is dirty *)
      ignore (Recovery_mgr.checkpoint rig.rm);
      (* the uncommitted write leaks to disk *)
      Log_manager.force_all rig.log;
      Vm.flush_all rig.vm);
  let outcome = run_fiber rig (fun () -> crash_and_recover rig) in
  Alcotest.(check int) "one loser" 1 (List.length outcome.losers);
  let page =
    Disk.read_nocharge rig.disk { Disk.segment = 1; page = 0 }
  in
  Alcotest.(check string) "old value restored" (v8 "keep")
    (Page.sub page ~off:0 ~len:8)

(* With the daemon configured, the foreground reclamation path only
   requests a background cycle; the daemon does the flushing,
   checkpointing, and truncation. *)
let test_daemon_reclaims_in_background () =
  let rig =
    make_rig
      ~checkpointing:{ Checkpointer.interval = 50_000; trickle = 4 }
      ~log_space_limit:2048 ()
  in
  run_fiber rig (fun () ->
      for i = 1 to 64 do
        let tid = Tid.top ~node:0 ~seq:i in
        write rig tid (i mod 8) (v8 (string_of_int i));
        commit rig tid
      done);
  let cp = Option.get (Recovery_mgr.checkpointer rig.rm) in
  Alcotest.(check bool) "daemon cycled" true (Checkpointer.cycles cp > 0);
  Alcotest.(check bool) "daemon reclaimed log records" true
    (Checkpointer.reclaimed cp > 0);
  Alcotest.(check bool) "daemon trickled pages out" true
    (Checkpointer.pages_written cp > 0);
  (* the foreground path never reclaims synchronously *)
  let sync =
    run_fiber rig (fun () -> Recovery_mgr.maybe_reclaim rig.rm)
  in
  Alcotest.(check bool) "foreground path defers to the daemon" false sync

(* --- the crash-equivalence property over full nodes ------------------ *)

let next_rand s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

(* Run a random concurrent workload on one node with the checkpoint
   daemon on, crash at a random instant, and recover twice: the live
   node restarts (checkpoint-anchored), and a frozen copy of its stable
   log and disk recovers with a full scan. Both must agree on the
   losers, the in-doubt set, and every byte of the data segment. *)
let crash_equivalence ~profile ~seed =
  let cells = 256 in
  let c =
    Cluster.create ~nodes:1 ~profile
      ~checkpointing:{ Checkpointer.interval = 20_000; trickle = 4 }
      ()
  in
  let node = Cluster.node c 0 in
  let arr =
    Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells ()
  in
  let tm = Node.tm node in
  for w = 0 to 2 do
    Cluster.spawn c ~node:0 (fun () ->
        let s = ref (seed + (w * 7919) + 1) in
        let rand n =
          s := next_rand !s;
          !s mod n
        in
        while true do
          (try
             Txn_lib.execute_transaction tm (fun tid ->
                 for _ = 0 to rand 3 do
                   Int_array_server.set arr tid (rand cells) (rand 1000)
                 done)
           with Errors.Transaction_is_aborted _ -> ());
          Engine.delay (1 + rand 5_000)
        done)
  done;
  let crash_at = 10_000 + (next_rand seed mod 500_000) in
  Cluster.run_until c ~time:crash_at;
  Node.crash node;
  (* freeze the stable log and disk as they were at the crash *)
  let ref_engine = Engine.create () in
  let stable_copy = Stable.copy (Log_manager.stable (Node.log node)) in
  let disk_copy = Disk.copy (Node.disk node) ~engine:ref_engine in
  (* reference: full-scan recovery over the frozen copy *)
  let ref_outcome =
    let vm = Vm.attach ref_engine disk_copy ~frames:64 () in
    let log = Log_manager.attach ref_engine stable_copy in
    let rm = Recovery_mgr.create ref_engine ~node:0 ~log ~vm () in
    let out = ref None in
    ignore
      (Engine.spawn ref_engine (fun () ->
           out := Some (Recovery_mgr.recover ~anchored:false rm)));
    ignore (Engine.run ref_engine);
    Option.get !out
  in
  (* live node: checkpoint-anchored restart *)
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node
          ~reinstall:(fun env ->
            ignore
              (Int_array_server.create env ~name:"a" ~segment:1 ~cells ()))
          ())
  in
  let tids = List.map Tid.to_string in
  Alcotest.(check (list string))
    "anchored and full-scan recovery agree on losers" (tids ref_outcome.losers)
    (tids outcome.losers);
  Alcotest.(check (list string))
    "and on the in-doubt set"
    (List.map (fun (t, _) -> Tid.to_string t) ref_outcome.in_doubt)
    (List.map (fun (t, _) -> Tid.to_string t) outcome.in_doubt);
  let pages = Disk.segment_pages (Node.disk node) 1 in
  for p = 0 to pages - 1 do
    let pid = { Disk.segment = 1; page = p } in
    if
      not
        (Page.equal
           (Disk.read_nocharge (Node.disk node) pid)
           (Disk.read_nocharge disk_copy pid))
    then
      Alcotest.failf "data page %d differs between anchored and full-scan" p
  done;
  true

let prop_crash_equivalence profile name =
  QCheck.Test.make ~name ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed -> crash_equivalence ~profile ~seed)

let suites =
  [
    ( "checkpoint",
      [
        quick "scan drops after checkpoint" test_scan_drops_after_checkpoint;
        quick "fuzzy checkpoint covers live txn"
          test_fuzzy_checkpoint_covers_live_txn;
        quick "daemon reclaims in background"
          test_daemon_reclaims_in_background;
        QCheck_alcotest.to_alcotest
          (prop_crash_equivalence Profile.Classic
             "crash at a random instant: anchored = full scan (Classic)");
        QCheck_alcotest.to_alcotest
          (prop_crash_equivalence Profile.Integrated
             "crash at a random instant: anchored = full scan (Integrated)");
      ] );
  ]
