(* Tests for the Communication Manager's comm-batching layer: datagram
   coalescing, delayed/piggybacked acks, the retransmission burst cap,
   duplicate re-ack accounting, and off/on equivalence of outcomes and
   recoverable state. *)

open Tabs_sim
open Tabs_wal
open Tabs_net
open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

type Network.payload += Msg of int

let batching = Comm_mgr.default_batching

let msgs engine = Metrics.msgs (Engine.metrics engine)

(* Datagram coalescing ------------------------------------------------- *)

let test_datagrams_coalesce () =
  (* three datagrams queued to the same peer in one instant travel as
     one wire message charged one Datagram plus two Coalesced_frame
     increments *)
  let engine = Engine.create () in
  let net = Network.create engine ~seed:5 in
  let cm0 = Comm_mgr.create net ~node:0 ~batching () in
  let cm1 = Comm_mgr.create net ~node:1 ~batching () in
  let got = ref [] in
  let batches = ref [] in
  Engine.set_tracer engine
    (Some
       (fun ~time:_ ev ->
         match ev with
         | Comm_mgr.Comm_batch { frames; control; _ } ->
             batches := (frames, control) :: !batches
         | _ -> ()));
  Comm_mgr.add_datagram_handler cm1 (fun ~src:_ payload ->
      match payload with Msg v -> got := v :: !got | _ -> ());
  ignore
    (Engine.spawn engine ~node:0 (fun () ->
         Comm_mgr.send_datagram cm0 ~dest:1 (Msg 1);
         Comm_mgr.send_datagram cm0 ~dest:1 (Msg 2);
         Comm_mgr.send_datagram cm0 ~dest:1 (Msg 3)));
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "all delivered, in order" [ 1; 2; 3 ]
    (List.rev !got);
  Alcotest.(check int) "one wire message" 1 (msgs engine).Metrics.wire_messages;
  Alcotest.(check int) "three frames" 3 (msgs engine).Metrics.carried_frames;
  Alcotest.(check int) "one full datagram charge" 1
    (Metrics.count (Engine.metrics engine) Cost_model.Datagram);
  Alcotest.(check int) "two marginal frame charges" 2
    (Metrics.count (Engine.metrics engine) Cost_model.Coalesced_frame);
  Alcotest.(check (list (pair int int))) "one batch event" [ (3, 3) ] !batches

(* Delayed acks -------------------------------------------------------- *)

let test_lone_frame_acked_within_window () =
  (* a lone session frame with an idle reverse stream flushes within the
     flush window, and its standalone cumulative ack goes out no later
     than the ack window — well before the retransmission timeout *)
  let engine = Engine.create () in
  let net = Network.create engine ~seed:5 in
  let cm0 = Comm_mgr.create net ~node:0 ~batching () in
  let cm1 = Comm_mgr.create net ~node:1 ~batching () in
  let delivered_at = ref (-1) in
  let retransmits = ref 0 in
  Engine.set_tracer engine
    (Some
       (fun ~time:_ ev ->
         match ev with
         | Comm_mgr.Session_retransmit _ -> incr retransmits
         | _ -> ()));
  Comm_mgr.set_session_handler cm1 (fun ~src:_ _ ->
      delivered_at := Engine.now engine);
  Comm_mgr.session_send cm0 ~dest:1 (Msg 1);
  ignore (Engine.run engine);
  Alcotest.(check bool) "delivered within the flush window" true
    (!delivered_at >= 0 && !delivered_at <= batching.flush_delay + 2_000);
  Alcotest.(check int) "one standalone delayed ack" 1
    (msgs engine).Metrics.delayed_acks;
  Alcotest.(check int) "nothing to piggyback on" 0
    (msgs engine).Metrics.piggybacked_acks;
  Alcotest.(check int) "frame + ack = two wire messages" 2
    (msgs engine).Metrics.wire_messages;
  Alcotest.(check int) "ack beat the retransmission timer" 0 !retransmits

let test_ack_piggybacks_on_reply () =
  (* when the receiver sends a frame back within the ack window, the
     delivery ack rides it instead of paying its own wire message *)
  let engine = Engine.create () in
  let net = Network.create engine ~seed:5 in
  let cm0 = Comm_mgr.create net ~node:0 ~batching () in
  let cm1 = Comm_mgr.create net ~node:1 ~batching () in
  let got_reply = ref false in
  let retransmits = ref 0 in
  Engine.set_tracer engine
    (Some
       (fun ~time:_ ev ->
         match ev with
         | Comm_mgr.Session_retransmit _ -> incr retransmits
         | _ -> ()));
  Comm_mgr.set_session_handler cm1 (fun ~src _ ->
      Comm_mgr.session_send cm1 ~dest:src (Msg 99));
  Comm_mgr.set_session_handler cm0 (fun ~src:_ _ -> got_reply := true);
  Comm_mgr.session_send cm0 ~dest:1 (Msg 1);
  ignore (Engine.run engine);
  Alcotest.(check bool) "reply delivered" true !got_reply;
  Alcotest.(check int) "request's ack rode the reply" 1
    (msgs engine).Metrics.piggybacked_acks;
  (* the reply's own ack still goes standalone: node 0 sends nothing
     more for it to ride *)
  Alcotest.(check int) "reply's ack went standalone" 1
    (msgs engine).Metrics.delayed_acks;
  Alcotest.(check int) "request + reply + one ack" 3
    (msgs engine).Metrics.wire_messages;
  Alcotest.(check int) "no retransmissions" 0 !retransmits

(* Retransmission burst cap -------------------------------------------- *)

let test_resend_burst_capped () =
  (* with 12 unacked frames and a burst cap of 4, each timer round
     resends only the 4 head frames instead of the whole window *)
  let engine = Engine.create () in
  let net = Network.create engine ~seed:5 in
  let cm0 =
    Comm_mgr.create net ~node:0 ~session_rto:100_000 ~session_retries:2
      ~session_resend_burst:4 ()
  in
  let _cm1 = Comm_mgr.create net ~node:1 () in
  let windows = ref [] in
  Engine.set_tracer engine
    (Some
       (fun ~time:_ ev ->
         match ev with
         | Comm_mgr.Session_retransmit { window; _ } ->
             windows := window :: !windows
         | _ -> ()));
  Network.set_node_up net ~node:1 false;
  for v = 1 to 12 do
    Comm_mgr.session_send cm0 ~dest:1 (Msg v)
  done;
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "every barren round resends 4, not 12" [ 4; 4 ]
    (List.rev !windows)

let test_resend_burst_progresses_under_loss () =
  (* the cap must not break delivery: in-order retransmission of the
     head frames still drains a 20-frame window through a lossy link *)
  let engine = Engine.create () in
  let net = Network.create engine ~seed:77 in
  let cm0 = Comm_mgr.create net ~node:0 ~session_resend_burst:4 () in
  let cm1 = Comm_mgr.create net ~node:1 () in
  Network.set_loss net 0.4;
  let got = ref [] in
  Comm_mgr.set_session_handler cm1 (fun ~src:_ payload ->
      match payload with Msg v -> got := v :: !got | _ -> ());
  for v = 1 to 20 do
    Comm_mgr.session_send cm0 ~dest:1 (Msg v)
  done;
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "at-most-once, ordered, complete"
    (List.init 20 (fun i -> i + 1))
    (List.rev !got)

(* Duplicate re-acks --------------------------------------------------- *)

let test_duplicate_reack_counted_unbatched () =
  (* an absurdly short rto makes the retransmission overtake the ack:
     the receiver re-acks the duplicate immediately and counts it *)
  let engine = Engine.create () in
  let net = Network.create engine ~seed:5 in
  let cm0 = Comm_mgr.create net ~node:0 ~session_rto:1_000 () in
  let cm1 = Comm_mgr.create net ~node:1 () in
  let got = ref 0 in
  Comm_mgr.set_session_handler cm1 (fun ~src:_ _ -> incr got);
  Comm_mgr.session_send cm0 ~dest:1 (Msg 1);
  ignore (Engine.run engine);
  Alcotest.(check int) "delivered exactly once" 1 !got;
  Alcotest.(check bool) "duplicate re-acks counted" true
    ((msgs engine).Metrics.duplicate_reacks > 0)

let test_duplicate_reack_delayed_when_batched () =
  (* with batching on, the duplicate's re-ack joins the delayed-ack path
     (one cumulative ack) instead of answering every duplicate with its
     own wire message *)
  let engine = Engine.create () in
  let net = Network.create engine ~seed:5 in
  let cm0 = Comm_mgr.create net ~node:0 ~session_rto:5_000 ~batching () in
  let cm1 = Comm_mgr.create net ~node:1 ~batching () in
  let got = ref 0 in
  Comm_mgr.set_session_handler cm1 (fun ~src:_ _ -> incr got);
  Comm_mgr.session_send cm0 ~dest:1 (Msg 1);
  ignore (Engine.run engine);
  let m = msgs engine in
  Alcotest.(check int) "delivered exactly once" 1 !got;
  Alcotest.(check bool) "duplicates re-acked" true (m.Metrics.duplicate_reacks > 0);
  (* every re-ack was folded into delayed/piggybacked cumulative acks:
     wire traffic is the data frame, its retransmissions, and the acks —
     strictly fewer ack messages than ack-worthy deliveries *)
  Alcotest.(check bool) "re-acks shared cumulative ack messages" true
    (m.Metrics.delayed_acks + m.Metrics.piggybacked_acks
    < 1 + m.Metrics.duplicate_reacks)

(* Off/on equivalence -------------------------------------------------- *)

let server_name dest = Printf.sprintf "a%d" dest

(* The run_case harness (test_lossy_commit.ml) checks convergence under
   loss; here the network is lossless and the workload sequential, so
   batching must change nothing at all: same values on every replica and
   a byte-identical stable log on every node. *)
let run_sequential ?comm_batching () =
  let nodes = 3 and txns = 5 in
  let c = Cluster.create ~nodes ?comm_batching () in
  List.iter
    (fun node ->
      ignore
        (Int_array_server.create (Node.env node)
           ~name:(server_name (Node.id node))
           ~segment:1 ~cells:16 ()))
    (Cluster.nodes c);
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      for i = 0 to txns - 1 do
        Txn_lib.execute_transaction tm (fun tid ->
            for dest = 0 to nodes - 1 do
              Int_array_server.call_set rpc ~dest ~server:(server_name dest)
                tid i (100 + i)
            done)
      done);
  let values =
    Cluster.run_fiber c ~node:0 (fun () ->
        List.init txns (fun i ->
            Txn_lib.execute_transaction tm (fun tid ->
                List.init nodes (fun dest ->
                    Int_array_server.call_get rpc ~dest
                      ~server:(server_name dest) tid i))))
  in
  let logs =
    List.map
      (fun node ->
        let records = ref [] in
        Tabs_storage.Stable.iter
          (Log_manager.stable (Node.log node))
          ~f:(fun _ record -> records := record :: !records);
        List.rev !records)
      (Cluster.nodes c)
  in
  (values, logs)

let test_off_on_equivalent () =
  let off_values, off_logs = run_sequential () in
  let on_values, on_logs = run_sequential ~comm_batching:batching () in
  Alcotest.(check (list (list int)))
    "same committed values on every replica" off_values on_values;
  Alcotest.(check (list (list string)))
    "byte-identical stable log on every node" off_logs on_logs

let suites =
  [
    ( "net.comm_batch",
      [
        quick "datagrams coalesce" test_datagrams_coalesce;
        quick "lone frame acked within window"
          test_lone_frame_acked_within_window;
        quick "ack piggybacks on reply" test_ack_piggybacks_on_reply;
        quick "resend burst capped" test_resend_burst_capped;
        quick "capped resend survives loss"
          test_resend_burst_progresses_under_loss;
        quick "duplicate re-ack counted (unbatched)"
          test_duplicate_reack_counted_unbatched;
        quick "duplicate re-ack delayed (batched)"
          test_duplicate_reack_delayed_when_batched;
        quick "off/on outcome and log equivalence" test_off_on_equivalent;
      ] );
  ]
