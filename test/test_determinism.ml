(* Determinism guard for the PR 8 simulator-core rewrite: the optimized
   core ([Sim_profile] fast mode — two-tier event queue, O(1) metrics
   index, epoch arrays, ring wait queues, cached fiber node) and the
   seed baseline mode must be observationally indistinguishable. Same
   seed, same workload => byte-identical rendered trace JSONL, equal
   metrics down to the per-node rollup, equal final virtual time and
   equal event count — on a workload that exercises loss,
   retransmission, timeouts and distributed commit. *)

open Tabs_sim
open Tabs_net
open Tabs_core
open Tabs_servers
open Tabs_obs

let nodes = 3

let txns = 5

let server_name dest = Printf.sprintf "a%d" dest

(* One lossy-commit run; returns every observable artifact rendered to
   strings so the two modes can be compared byte-for-byte. *)
let fingerprint ~loss ~seed () =
  let c = Cluster.create ~nodes ~seed () in
  List.iter
    (fun node ->
      ignore
        (Int_array_server.create (Node.env node)
           ~name:(server_name (Node.id node))
           ~segment:1 ~cells:16 ()))
    (Cluster.nodes c);
  let engine = Cluster.engine c in
  let recorder = Recorder.attach engine in
  Network.set_loss (Cluster.network c) loss;
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.spawn c ~node:0 (fun () ->
      for i = 0 to txns - 1 do
        try
          Txn_lib.execute_transaction tm (fun tid ->
              for dest = 0 to nodes - 1 do
                Int_array_server.call_set rpc ~dest ~server:(server_name dest)
                  tid i (100 + i)
              done)
        with
        | Errors.Lock_timeout _ | Errors.Deadlock _
        | Errors.Transaction_is_aborted _
        | Rpc.Rpc_timeout _ ->
            ()
      done);
  Cluster.run_until c ~time:600_000_000;
  Network.set_loss (Cluster.network c) 0.0;
  Cluster.run c;
  let trace = List.map Jsonl.entry_to_json (Recorder.entries recorder) in
  Recorder.detach recorder;
  let m = Engine.metrics engine in
  let buf = Buffer.create 512 in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s=%.3f/%.3f;" (Cost_model.name p) (Metrics.weight m p)
           (Metrics.elided_weight m p)))
    Cost_model.all;
  let msgs = Metrics.msgs m in
  Buffer.add_string buf
    (Printf.sprintf "wire=%d frames=%d piggy=%d delayed=%d covered=%d dup=%d;"
       msgs.Metrics.wire_messages msgs.Metrics.carried_frames
       msgs.Metrics.piggybacked_acks msgs.Metrics.delayed_acks
       msgs.Metrics.ack_deliveries_covered msgs.Metrics.duplicate_reacks);
  Buffer.add_string buf
    (Printf.sprintf "abandoned=%d;" (Metrics.tm m).Metrics.resolutions_abandoned);
  List.iter
    (fun node ->
      List.iter
        (fun p ->
          let w = Metrics.node_weight m ~node p in
          if w > 0. then
            Buffer.add_string buf
              (Printf.sprintf "n%d:%s=%.3f;" node (Cost_model.name p) w))
        Cost_model.all)
    (Metrics.nodes_tracked m);
  (trace, Buffer.contents buf, Engine.now engine, Engine.events_processed engine)

let check_same ~loss ~seed =
  let fast = Sim_profile.with_baseline false (fingerprint ~loss ~seed) in
  let base = Sim_profile.with_baseline true (fingerprint ~loss ~seed) in
  let trace_f, metrics_f, now_f, events_f = fast in
  let trace_b, metrics_b, now_b, events_b = base in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: trace length" seed)
    (List.length trace_b) (List.length trace_f);
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "seed %d: trace line %d differs:\n  fast: %s\n  base: %s"
          seed i a b)
    (List.combine trace_f trace_b);
  Alcotest.(check string)
    (Printf.sprintf "seed %d: metrics fingerprint" seed)
    metrics_b metrics_f;
  Alcotest.(check int) (Printf.sprintf "seed %d: final now" seed) now_b now_f;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: events processed" seed)
    events_b events_f

let test_lossy_identical () =
  List.iter (fun seed -> check_same ~loss:0.20 ~seed) [ 1; 5; 9 ]

let test_lossless_identical () = check_same ~loss:0.0 ~seed:3

(* A crash and dependency-logged parallel restart must also be
   mode-independent: same trace, same metrics, same redo-graph shape,
   same replay time under the fast core and the seed baseline. *)
let recovery_fingerprint ~seed () =
  let cells = 64 in
  let c =
    Cluster.create ~nodes:1 ~seed
      ~parallel_recovery:{ Tabs_recovery.Parallel_redo.fibers = 4 }
      ()
  in
  let node = Cluster.node c 0 in
  let arr =
    Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells ()
  in
  let engine = Cluster.engine c in
  let recorder = Recorder.attach engine in
  let tm = Node.tm node in
  for w = 0 to 1 do
    Cluster.spawn c ~node:0 (fun () ->
        let s = ref (seed + (w * 7919) + 1) in
        let rand n =
          s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
          !s mod n
        in
        while true do
          (try
             Txn_lib.execute_transaction tm (fun tid ->
                 for _ = 0 to rand 3 do
                   Int_array_server.set arr tid (rand cells) (rand 1000)
                 done)
           with
          | Errors.Transaction_is_aborted _ | Errors.Deadlock _
          | Errors.Lock_timeout _ ->
              ());
          Engine.delay (1 + rand 2_000)
        done)
  done;
  Cluster.run_until c ~time:(400_000 + (seed * 37_000));
  Node.crash node;
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node
          ~reinstall:(fun env ->
            ignore
              (Int_array_server.create env ~name:"a" ~segment:1 ~cells ()))
          ())
  in
  let trace = List.map Jsonl.entry_to_json (Recorder.entries recorder) in
  Recorder.detach recorder;
  let summary =
    let open Tabs_recovery in
    Printf.sprintf "scanned=%d losers=%d replay=%d graph=%s"
      outcome.Recovery_mgr.records_scanned
      (List.length outcome.Recovery_mgr.losers)
      outcome.Recovery_mgr.replay_us
      (match outcome.Recovery_mgr.graph with
      | None -> "-"
      | Some g ->
          Printf.sprintf "%d/%d/%d/%d/%d/%d" g.Parallel_redo.op_records
            g.Parallel_redo.value_records g.Parallel_redo.chain_edges
            g.Parallel_redo.dep_edges g.Parallel_redo.critical_path
            g.Parallel_redo.width)
  in
  (trace, summary, Engine.now engine, Engine.events_processed engine)

(* An instant restart — open after analysis, chains replayed on first
   touch and by the trickle, under post-restart traffic — must also be
   mode-independent: same trace (including the ondemand_redo events),
   same page counters, same time-to-open. *)
let instant_fingerprint ~seed () =
  let cells = 64 in
  let c =
    Cluster.create ~nodes:1 ~seed
      ~parallel_recovery:{ Tabs_recovery.Parallel_redo.fibers = 4 }
      ~instant_restart:true
      ~checkpointing:{ Tabs_recovery.Checkpointer.interval = 50_000; trickle = 4 }
      ()
  in
  let node = Cluster.node c 0 in
  let arr =
    Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells ()
  in
  ignore arr;
  let engine = Cluster.engine c in
  let recorder = Recorder.attach engine in
  let tm = Node.tm node in
  for w = 0 to 1 do
    Cluster.spawn c ~node:0 (fun () ->
        let s = ref (seed + (w * 7919) + 1) in
        let rand n =
          s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
          !s mod n
        in
        while true do
          (try
             Txn_lib.execute_transaction tm (fun tid ->
                 for _ = 0 to rand 3 do
                   Int_array_server.set arr tid (rand cells) (rand 1000)
                 done)
           with
          | Errors.Transaction_is_aborted _ | Errors.Deadlock _
          | Errors.Lock_timeout _ ->
              ());
          Engine.delay (1 + rand 2_000)
        done)
  done;
  Cluster.run_until c ~time:(400_000 + (seed * 37_000));
  Node.crash node;
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        let o =
          Node.restart node
            ~reinstall:(fun env ->
              ignore
                (Int_array_server.create env ~name:"a" ~segment:1 ~cells ()))
            ()
        in
        (* post-restart traffic races the trickle: some chains drain on
           first touch, the rest in the background *)
        Cluster.spawn c ~node:0 (fun () ->
            let s = ref (seed + 13) in
            let rand n =
              s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
              !s mod n
            in
            let tm' = Node.tm node in
            for _ = 1 to 20 do
              (try
                 Txn_lib.execute_transaction tm' (fun tid ->
                     Int_array_server.set arr tid (rand cells) (rand 1000))
               with
              | Errors.Transaction_is_aborted _ | Errors.Deadlock _
              | Errors.Lock_timeout _ ->
                  ());
              Engine.delay (1 + rand 500)
            done);
        o)
  in
  let trace = List.map Jsonl.entry_to_json (Recorder.entries recorder) in
  Recorder.detach recorder;
  let summary =
    let open Tabs_recovery in
    let m = Metrics.recovery (Engine.metrics engine) ~node:0 in
    Printf.sprintf
      "scanned=%d losers=%d open_early=%b tto=%d pages=%d/%d/%d/%d"
      outcome.Recovery_mgr.records_scanned
      (List.length outcome.Recovery_mgr.losers)
      outcome.Recovery_mgr.open_early outcome.Recovery_mgr.time_to_open_us
      m.Metrics.restart_pages m.Metrics.ondemand_pages
      m.Metrics.trickle_pages m.Metrics.pending_pages
  in
  (trace, summary, Engine.now engine, Engine.events_processed engine)

let compare_fingerprints ~what ~seed fast base =
  let trace_f, summary_f, now_f, events_f = fast in
  let trace_b, summary_b, now_b, events_b = base in
  Alcotest.(check string)
    (Printf.sprintf "seed %d: %s summary" seed what)
    summary_b summary_f;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: trace length" seed)
    (List.length trace_b) (List.length trace_f);
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "seed %d: trace line %d differs:\n  fast: %s\n  base: %s"
          seed i a b)
    (List.combine trace_f trace_b);
  Alcotest.(check int) (Printf.sprintf "seed %d: final now" seed) now_b now_f;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: events processed" seed)
    events_b events_f

let test_instant_identical () =
  List.iter
    (fun seed ->
      compare_fingerprints ~what:"instant restart" ~seed
        (Sim_profile.with_baseline false (instant_fingerprint ~seed))
        (Sim_profile.with_baseline true (instant_fingerprint ~seed)))
    [ 2; 7 ]

let test_recovery_identical () =
  List.iter
    (fun seed ->
      let fast = Sim_profile.with_baseline false (recovery_fingerprint ~seed) in
      let base = Sim_profile.with_baseline true (recovery_fingerprint ~seed) in
      let trace_f, summary_f, now_f, events_f = fast in
      let trace_b, summary_b, now_b, events_b = base in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: recovery summary" seed)
        summary_b summary_f;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: trace length" seed)
        (List.length trace_b) (List.length trace_f);
      List.iteri
        (fun i (a, b) ->
          if a <> b then
            Alcotest.failf
              "seed %d: trace line %d differs:\n  fast: %s\n  base: %s" seed i
              a b)
        (List.combine trace_f trace_b);
      Alcotest.(check int) (Printf.sprintf "seed %d: final now" seed) now_b
        now_f;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: events processed" seed)
        events_b events_f)
    [ 2; 7 ]

let quick name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "sim.determinism",
      [
        quick "fast = baseline on lossy distributed commit"
          test_lossy_identical;
        quick "fast = baseline on clean run" test_lossless_identical;
        quick "fast = baseline on crash and parallel restart"
          test_recovery_identical;
        quick "fast = baseline on instant restart under traffic"
          test_instant_identical;
      ] );
  ]
