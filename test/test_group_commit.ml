(* Group commit (force batching) tests.

   Three angles: (1) with the batcher on, concurrent committers share
   stable-storage rounds — forces < commits, one Group_commit trace
   event covers the batch; (2) a qcheck durability property crashes the
   node at a random instant mid-batch and demands that every
   acknowledged commit survives recovery while no unacknowledged
   transaction's effects do, under both architecture profiles; (3) with
   the batcher off (the default) the per-commit force discipline and the
   Table 5-x cost metrics are bit-identical to the seed measurements,
   pinned here as regression values. *)

open Tabs_sim
open Tabs_core
open Tabs_servers
open Tabs_wal
open Tabs_recovery
open Tabs_obs

let quick name f = Alcotest.test_case name `Quick f

(* 1. Batching engagement ---------------------------------------------- *)

let test_concurrent_commits_share_forces () =
  let gc = { Group_commit.window = 4_000; max_batch = 64 } in
  let c = Cluster.create ~nodes:1 ~group_commit:gc () in
  let n0 = Cluster.node c 0 in
  let arr =
    Int_array_server.create (Node.env n0) ~name:"a0" ~segment:1 ~cells:64 ()
  in
  let recorder = Recorder.attach (Cluster.engine c) in
  let tm = Node.tm n0 in
  let committed = ref 0 in
  let n = 8 in
  for w = 0 to n - 1 do
    Cluster.spawn c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            Int_array_server.set arr tid w (w + 1));
        incr committed)
  done;
  Cluster.run c;
  Alcotest.(check int) "all committed" n !committed;
  let forces = Log_manager.force_count (Node.log n0) in
  Alcotest.(check bool) "at least one force" true (forces >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "forces (%d) < commits (%d)" forces n)
    true (forces < n);
  (match Recovery_mgr.group_commit (Node.rm n0) with
  | None -> Alcotest.fail "batcher not installed"
  | Some g ->
      Alcotest.(check int) "every commit went through the batcher" n
        (Group_commit.coalesced g);
      Alcotest.(check int) "batch count matches forces" forces
        (Group_commit.batches g));
  let batched =
    List.exists
      (fun { Recorder.event; _ } ->
        match event with
        | Group_commit.Group_commit e -> e.batch >= 2 && e.woken = e.batch
        | _ -> false)
      (Recorder.entries recorder)
  in
  Recorder.detach recorder;
  Alcotest.(check bool) "a Group_commit event covers several commits" true
    batched;
  (* the committed values really are there *)
  let vals =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            List.init n (fun w -> Int_array_server.get arr tid w)))
  in
  Alcotest.(check (list int)) "values" (List.init n (fun w -> w + 1)) vals

(* 2. Crash-mid-batch durability (qcheck) ------------------------------ *)

let workers = 6

type worker_log = {
  mutable started : (int * Tid.t) list; (* value -> writing transaction *)
  mutable acked : int; (* last value whose commit was acknowledged *)
}

(* Each worker writes 1, 2, 3, ... into its own cell, recording the tid
   before the write and the ack only after [execute_transaction]
   returns. After a crash at [crash_at] and recovery, cell w must hold a
   value v with acked <= v <= last-started, and if v was never
   acknowledged its transaction must have a commit record on the log —
   the legitimate committed-but-unacknowledged window. Anything else is
   a durability (or atomicity) violation. *)
let crash_mid_batch profile crash_at =
  let gc = { Group_commit.window = 3_000; max_batch = 8 } in
  let c = Cluster.create ~nodes:1 ~profile ~group_commit:gc () in
  let n0 = Cluster.node c 0 in
  let holder = ref None in
  let reinstall env =
    holder :=
      Some (Int_array_server.create env ~name:"a0" ~segment:1 ~cells:64 ())
  in
  reinstall (Node.env n0);
  let logs = Array.init workers (fun _ -> { started = []; acked = 0 }) in
  let tm = Node.tm n0 in
  let engine = Cluster.engine c in
  for w = 0 to workers - 1 do
    Cluster.spawn c ~node:0 (fun () ->
        let wl = logs.(w) in
        let arr = Option.get !holder in
        let v = ref 0 in
        while Engine.now engine < crash_at do
          incr v;
          let value = !v in
          match
            Txn_lib.execute_transaction tm (fun tid ->
                wl.started <- (value, tid) :: wl.started;
                Int_array_server.set arr tid w value)
          with
          | () -> wl.acked <- value
          | exception Errors.Transaction_is_aborted _
          | exception Errors.Lock_timeout _
          | exception Errors.Deadlock _ ->
              ()
        done)
  done;
  Cluster.run_until c ~time:crash_at;
  Node.crash n0;
  ignore (Cluster.run_fiber c ~node:0 (fun () -> Node.restart n0 ~reinstall ()));
  let tm = Node.tm n0 in
  let arr = Option.get !holder in
  let vals =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            List.init workers (fun w -> Int_array_server.get arr tid w)))
  in
  let statuses = Recovery_mgr.statuses (Node.rm n0) in
  List.iteri
    (fun w v ->
      let wl = logs.(w) in
      let last_started =
        List.fold_left (fun acc (value, _) -> max acc value) 0 wl.started
      in
      if v < wl.acked then
        QCheck.Test.fail_reportf
          "worker %d: acknowledged value %d lost, cell holds %d" w wl.acked v;
      if v > last_started then
        QCheck.Test.fail_reportf
          "worker %d: cell holds %d, never written (last started %d)" w v
          last_started;
      if v > wl.acked then
        (* unacknowledged value survived: only legitimate if its
           transaction's commit record reached stable storage *)
        match List.assoc_opt v wl.started with
        | None ->
            QCheck.Test.fail_reportf "worker %d: surviving value %d untracked"
              w v
        | Some tid -> (
            match
              List.find_opt (fun (t, _) -> Tid.equal t tid) statuses
            with
            | Some (_, Recovery_mgr.Committed) -> ()
            | None ->
                (* record truncated by a later checkpoint: only committed
                   transactions are ever dropped from the analyzed range *)
                ()
            | Some _ ->
                QCheck.Test.fail_reportf
                  "worker %d: value %d survived but its transaction did not \
                   commit"
                  w v))
    vals;
  true

let prop_crash_mid_batch_durability =
  QCheck.Test.make
    ~name:
      "group commit: acknowledged commits survive a crash mid-batch, \
       unacknowledged effects do not (Classic and Integrated)"
    ~count:8
    QCheck.(pair bool (int_range 200_000 2_000_000))
    (fun (integrated, crash_at) ->
      let profile = if integrated then Profile.Integrated else Profile.Classic in
      crash_mid_batch profile crash_at)

(* 3. Off-by-default: seed metrics are unchanged ----------------------- *)

let test_default_has_no_batcher () =
  let c = Cluster.create ~nodes:1 () in
  let n0 = Cluster.node c 0 in
  (match Recovery_mgr.group_commit (Node.rm n0) with
  | None -> ()
  | Some _ -> Alcotest.fail "batcher installed without being asked for");
  (* per-commit force discipline: two sequential write transactions pay
     two forces *)
  let arr =
    Int_array_server.create (Node.env n0) ~name:"a0" ~segment:1 ~cells:64 ()
  in
  let tm = Node.tm n0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set arr tid 0 1);
      Txn_lib.execute_transaction tm (fun tid ->
          Int_array_server.set arr tid 1 2));
  Alcotest.(check int) "one force per commit" 2
    (Log_manager.force_count (Node.log n0))

(* Seed-pinned regression values, captured on the pre-group-commit tree:
   a default (Classic, group commit off) single-node cluster running one
   read-only and one read-modify-write transaction must charge exactly
   the same primitives, pay the same single force, and finish at the
   same virtual instant as the seed did. Guards both the batcher's
   off-path and the WAL buffer rework. *)
let test_seed_probe_metrics_identical () =
  let c = Cluster.create ~nodes:1 () in
  let n0 = Cluster.node c 0 in
  let arr =
    Int_array_server.create (Node.env n0) ~name:"a0" ~segment:1 ~cells:64 ()
  in
  let tm = Node.tm n0 in
  let engine = Cluster.engine c in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          ignore (Int_array_server.get arr tid 0));
      Txn_lib.execute_transaction tm (fun tid ->
          let v = Int_array_server.get arr tid 0 in
          Int_array_server.set arr tid 0 (v + 1)));
  let m = Engine.metrics engine in
  let count p = Metrics.count m p in
  Alcotest.(check int) "small messages" 20 (count Cost_model.Small_contiguous_message);
  Alcotest.(check int) "large messages" 2 (count Cost_model.Large_contiguous_message);
  Alcotest.(check int) "random paged IO" 1 (count Cost_model.Random_paged_io);
  Alcotest.(check int) "stable writes" 1 (count Cost_model.Stable_storage_write);
  Alcotest.(check int) "datagrams" 0 (count Cost_model.Datagram);
  Alcotest.(check int) "sequential reads" 0 (count Cost_model.Sequential_read);
  Alcotest.(check int) "forces" 1 (Log_manager.force_count (Node.log n0));
  Alcotest.(check int) "virtual finish time" 313_800 (Engine.now engine)

(* Table 5-x workload vectors (bench/workloads.ml) pinned against the
   seed: per-primitive pre-commit and commit-phase weights and elapsed
   virtual time for the local read and local write rows. *)
let find_spec name =
  List.find
    (fun (s : Tabs_bench.Workloads.spec) -> s.spec_name = name)
    Tabs_bench.Workloads.specs

let check_spec name ~elapsed ~pre ~commit =
  let r =
    Tabs_bench.Workloads.run_spec ~iterations:2 ~warmup:1
      ~model:Cost_model.measured (find_spec name)
  in
  Alcotest.(check (float 0.001)) (name ^ ": elapsed") elapsed r.elapsed_us;
  Alcotest.(check (array (float 0.001))) (name ^ ": pre-commit weights") pre r.pre;
  Alcotest.(check (array (float 0.001)))
    (name ^ ": commit-phase weights")
    commit r.commit

let test_seed_workload_vectors_identical () =
  (* trailing 0s: the Coalesced_frame extension primitive must stay
     uncharged on the default (batching-off) path *)
  check_spec "1 Local Read, No Paging" ~elapsed:98_100.
    ~pre:[| 1.; 0.; 0.; 4.; 0.; 0.; 0.; 0.; 0.; 0. |]
    ~commit:[| 0.; 0.; 0.; 5.; 0.; 0.; 0.; 0.; 0.; 0. |];
  check_spec "1 Local Write, No Paging" ~elapsed:235_900.
    ~pre:[| 1.; 0.; 0.; 6.; 1.; 0.; 0.5; 0.; 0.; 0. |]
    ~commit:[| 0.; 0.; 0.; 6.; 1.; 0.; 0.; 0.; 1.; 0. |]

let suites =
  [
    ( "group_commit",
      [
        quick "concurrent commits share forces"
          test_concurrent_commits_share_forces;
        QCheck_alcotest.to_alcotest prop_crash_mid_batch_durability;
        quick "off by default" test_default_has_no_batcher;
        quick "seed probe metrics identical" test_seed_probe_metrics_identical;
        quick "seed workload vectors identical"
          test_seed_workload_vectors_identical;
      ] );
  ]
