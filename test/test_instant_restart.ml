(* Instant restart: serve-while-recovering with on-demand per-page redo.

   The load-bearing properties:

   - with the feature off nothing changes (the seed probes elsewhere pin
     byte-identity); with it on, restart recovery opens the node after
     the analysis scan alone ([open_early = true], [replay_us = 0]);
   - each page's parked redo chain is replayed exactly once — on the
     first touch of the page or by the background trickle — and the node
     then reaches the same state as a serial full-scan recovery;
   - crash at an arbitrary instant: an instant restart whose every page
     is subsequently read agrees with a serial full-scan recovery over a
     frozen copy of the same stable log and disk on losers, the
     in-doubt set, and every data byte — including with group commit,
     checkpointing, and parallel recovery running at once;
   - the last-writer table pruned at checkpoint time never drops an
     entry that a live dependency chain still needs. *)

open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_accent
open Tabs_recovery
open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

(* --- rig (no Transaction Manager), as in test_parallel_recovery ------ *)

type rig = {
  engine : Engine.t;
  vm : Vm.t;
  log : Log_manager.t;
  rm : Recovery_mgr.t;
}

let pages = 16

let cells_per_page = Page.size / 8

let obj n = Object_id.make ~segment:1 ~offset:(8 * n) ~length:8

let make_rig () =
  let engine = Engine.create () in
  let disk = Disk.create engine in
  Disk.ensure_segment disk 1 ~pages;
  let stable = Stable.create () in
  let vm = Vm.attach engine disk ~frames:(2 * pages) () in
  let log = Log_manager.attach engine stable in
  let rm =
    Recovery_mgr.create engine ~node:0 ~log ~vm
      ~parallel_recovery:Parallel_redo.default ()
  in
  { engine; vm; log; rm }

let run_fiber rig f =
  let out = ref None in
  let _ = Engine.spawn rig.engine (fun () -> out := Some (f ())) in
  let _ = Engine.run rig.engine in
  Option.get !out

let v8 s = Printf.sprintf "%-8s" s

let write_value rig tid n value =
  Vm.pin rig.vm (obj n) ~access:`Random;
  let old_value = Vm.read rig.vm (obj n) ~access:`Random in
  Vm.write rig.vm (obj n) value;
  let lsn =
    Recovery_mgr.log_value rig.rm ~tid ~obj:(obj n) ~old_value
      ~new_value:value
  in
  Vm.unpin rig.vm (obj n);
  lsn

let commit rig tid =
  let lsn = Recovery_mgr.append_tm_record rig.rm (Record.Txn_commit tid) in
  Recovery_mgr.force_through rig.rm lsn

let dependency_records rig =
  run_fiber rig (fun () -> Log_manager.force_all rig.log);
  let deps = ref [] in
  Log_manager.iter_forward rig.log ~from:(Log_manager.first_lsn rig.log)
    ~f:(fun lsn record ->
      match record with
      | Record.Dependency d -> deps := (lsn, d) :: !deps
      | _ -> ());
  List.rev !deps

(* --- last-writer pruning at checkpoint time -------------------------- *)

(* A committed-and-flushed family's entries fall below the prune floor
   and are dropped; an active family's entry pins the floor and
   survives, and a later cross-family write still finds it — the live
   dependency chain is intact. *)
let test_prune_keeps_live_chain_entries () =
  let rig = make_rig () in
  let t1 = Tid.top ~node:0 ~seq:1
  and t2 = Tid.top ~node:0 ~seq:2
  and t3 = Tid.top ~node:0 ~seq:3
  and t4 = Tid.top ~node:0 ~seq:4 in
  let t2_lsn = ref 0 in
  run_fiber rig (fun () ->
      ignore (write_value rig t1 0 (v8 "a"));
      commit rig t1;
      (* t2 stays active: its first update is the prune floor *)
      t2_lsn := write_value rig t2 cells_per_page (v8 "b");
      Alcotest.(check int) "two tracked writers" 2
        (Log_manager.last_writer_size rig.log);
      Vm.flush_all rig.vm;
      ignore (Recovery_mgr.checkpoint rig.rm);
      (* t1's entry was below the floor and is gone; t2's survives *)
      Alcotest.(check int) "pruned down to the live entry" 1
        (Log_manager.last_writer_size rig.log);
      (* a cross-family write of t2's object still sees the last
         writer: the live chain gets its dependency edge *)
      ignore (write_value rig t3 cells_per_page (v8 "c"));
      commit rig t3;
      (* the pruned object has no tracked writer: no edge, which is
         safe exactly because the floor proved t1's update can never
         be in a redo set with t4's *)
      ignore (write_value rig t4 0 (v8 "d"));
      commit rig t4);
  match dependency_records rig with
  | [ (_, d) ] ->
      Alcotest.(check int) "the edge points at the live entry" !t2_lsn
        (snd (List.hd d.Record.preds))
  | deps ->
      Alcotest.failf "expected exactly one dependency, got %d"
        (List.length deps)

(* With nothing active and everything flushed, the table empties. *)
let test_prune_empties_table_when_quiescent () =
  let rig = make_rig () in
  run_fiber rig (fun () ->
      for i = 1 to 4 do
        let tid = Tid.top ~node:0 ~seq:i in
        ignore (write_value rig tid (i mod 3) (v8 (string_of_int i)));
        commit rig tid
      done;
      Alcotest.(check int) "three objects tracked" 3
        (Log_manager.last_writer_size rig.log);
      Vm.flush_all rig.vm;
      ignore (Recovery_mgr.checkpoint rig.rm);
      Alcotest.(check int) "all entries pruned" 0
        (Log_manager.last_writer_size rig.log))

(* --- crash at a random instant over a full node ---------------------- *)

let next_rand s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

(* Replaying account "adjust" records on a bare reference Recovery
   Manager needs only this handler (mirrors Account_server's). *)
let register_accounts rm vm ~name ~segment =
  let slot_obj i = Object_id.make ~segment ~offset:(8 * i) ~length:8 in
  let encode_slot v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    Bytes.to_string b
  in
  let apply ~op ~arg =
    if op <> "adjust" then failwith ("unexpected account op " ^ op);
    let r = Codec.Reader.of_string arg in
    let entries =
      Codec.Reader.list r (fun r ->
          let i = Codec.Reader.int r in
          let v = Codec.Reader.int r in
          (i, v))
    in
    List.iter
      (fun (i, v) ->
        Vm.pin vm (slot_obj i) ~access:`Random;
        Vm.write vm (slot_obj i) (encode_slot v);
        Vm.unpin vm (slot_obj i))
      entries
  in
  Recovery_mgr.register_op_handler rm ~server:name
    { redo = apply; undo = apply }

let check_pages_equal ~what disk_a disk_b ~segments =
  List.iter
    (fun segment ->
      let seg_pages = Disk.segment_pages disk_a segment in
      for p = 0 to seg_pages - 1 do
        let pid = { Disk.segment; page = p } in
        if
          not
            (Page.equal
               (Disk.read_nocharge disk_a pid)
               (Disk.read_nocharge disk_b pid))
        then Alcotest.failf "segment %d page %d differs: %s" segment p what
      done)
    segments

(* Random concurrent workload on one node with instant restart (and,
   when [full_stack], group commit and the checkpoint daemon too) —
   crash at a random instant, restart instantly, then read every page
   (racing the trickle, so chains drain through both the fault path
   and the background fiber). The node must end state-identical to a
   serial full-scan recovery over a frozen copy of the same stable log
   and disk, and agree on losers and the in-doubt set. *)
let instant_crash_equivalence ~profile ~full_stack ?(window = 2_000_000) ~seed
    () =
  let cells = 128 and accounts = 64 in
  let c =
    Cluster.create ~nodes:1 ~profile
      ~parallel_recovery:{ Parallel_redo.fibers = 4 }
      ~instant_restart:true
      ?group_commit:(if full_stack then Some Group_commit.default else None)
      ?checkpointing:
        (if full_stack then
           Some { Checkpointer.interval = 20_000; trickle = 4 }
         else None)
      ()
  in
  let node = Cluster.node c 0 in
  let arr =
    Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells ()
  in
  let acc =
    Account_server.create (Node.env node) ~name:"b" ~segment:2 ~accounts ()
  in
  let tm = Node.tm node in
  for w = 0 to 2 do
    Cluster.spawn c ~node:0 (fun () ->
        let s = ref (seed + (w * 7919) + 1) in
        let rand n =
          s := next_rand !s;
          !s mod n
        in
        while true do
          (try
             Txn_lib.execute_transaction tm (fun tid ->
                 for _ = 0 to rand 3 do
                   if rand 2 = 0 then
                     Int_array_server.set arr tid (rand cells) (rand 1000)
                   else
                     Account_server.deposit acc tid (rand accounts)
                       (1 + rand 9)
                 done)
           with
          | Errors.Transaction_is_aborted _ | Errors.Deadlock _
          | Errors.Lock_timeout _ ->
              ());
          Engine.delay (1 + rand 2_000)
        done)
  done;
  let crash_at = 60_000 + (next_rand seed mod window) in
  Cluster.run_until c ~time:crash_at;
  Node.crash node;
  (* freeze the stable log and disk as they were at the crash *)
  let ref_engine = Engine.create () in
  let stable_copy = Stable.copy (Log_manager.stable (Node.log node)) in
  let disk_copy = Disk.copy (Node.disk node) ~engine:ref_engine in
  (* reference: serial full-scan recovery over the frozen copy *)
  let ref_outcome =
    let vm = Vm.attach ref_engine disk_copy ~frames:64 () in
    let log = Log_manager.attach ref_engine stable_copy in
    let rm = Recovery_mgr.create ref_engine ~node:0 ~log ~vm () in
    register_accounts rm vm ~name:"b" ~segment:2;
    let out = ref None in
    ignore
      (Engine.spawn ref_engine (fun () ->
           out := Some (Recovery_mgr.recover ~anchored:false rm)));
    ignore (Engine.run ref_engine);
    Option.get !out
  in
  (* live node: instant restart, then read every page while the trickle
     is still draining — first touches replay parked chains on demand *)
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        let o =
          Node.restart node
            ~reinstall:(fun env ->
              ignore
                (Int_array_server.create env ~name:"a" ~segment:1 ~cells ());
              ignore
                (Account_server.create env ~name:"b" ~segment:2 ~accounts ()))
            ()
        in
        Cluster.spawn c ~node:0 (fun () ->
            let vm = Node.vm node in
            let touch o =
              Vm.pin vm o ~access:`Random;
              ignore (Vm.read vm o ~access:`Random);
              Vm.unpin vm o
            in
            for i = 0 to cells - 1 do
              touch (Object_id.make ~segment:1 ~offset:(8 * i) ~length:8)
            done;
            for i = 0 to accounts - 1 do
              touch (Object_id.make ~segment:2 ~offset:(8 * i) ~length:8)
            done);
        o)
  in
  Alcotest.(check bool) "live restart opened early" true outcome.open_early;
  Alcotest.(check int) "no upfront replay" 0 outcome.replay_us;
  Alcotest.(check bool) "reference was a full-scan restart" false
    ref_outcome.open_early;
  let tids = List.map Tid.to_string in
  Alcotest.(check (list string))
    "instant and serial recovery agree on losers" (tids ref_outcome.losers)
    (tids outcome.losers);
  Alcotest.(check (list string))
    "and on the in-doubt set"
    (List.map (fun (t, _) -> Tid.to_string t) ref_outcome.in_doubt)
    (List.map (fun (t, _) -> Tid.to_string t) outcome.in_doubt);
  let m = Metrics.recovery (Engine.metrics (Cluster.engine c)) ~node:0 in
  Alcotest.(check int) "every parked chain drained" 0 m.Metrics.pending_pages;
  check_pages_equal ~what:"instant restart vs serial reference"
    (Node.disk node) disk_copy ~segments:[ 1; 2 ];
  true

let prop_instant_equivalence profile name =
  QCheck.Test.make ~name ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      instant_crash_equivalence ~profile ~full_stack:false ~seed ())

(* the 300-seed stress: group commit + checkpointing + parallel
   recovery + instant restart all on at once *)
let test_instant_stress () =
  for seed = 1 to 300 do
    ignore
      (instant_crash_equivalence ~profile:Profile.Classic ~full_stack:true
         ~window:1_500_000 ~seed:(seed * 3571) ())
  done

let suites =
  [
    ( "instant_restart",
      [
        quick "checkpoint pruning keeps live-chain entries"
          test_prune_keeps_live_chain_entries;
        quick "checkpoint pruning empties a quiescent table"
          test_prune_empties_table_when_quiescent;
        QCheck_alcotest.to_alcotest
          (prop_instant_equivalence Profile.Classic
             "crash at a random instant: instant = serial (Classic)");
        QCheck_alcotest.to_alcotest
          (prop_instant_equivalence Profile.Integrated
             "crash at a random instant: instant = serial (Integrated)");
        Alcotest.test_case "300-seed stress: full stack on" `Slow
          test_instant_stress;
      ] );
  ]
