(* Tests for lock modes and the lock manager: compatibility, waiting,
   timeouts (deadlock resolution), conditional locks, and subtransaction
   lock transfer. *)

open Tabs_sim
open Tabs_wal
open Tabs_lock

let quick name f = Alcotest.test_case name `Quick f

let obj n = Object_id.make ~segment:1 ~offset:(8 * n) ~length:8

let tid n = Tid.top ~node:1 ~seq:n

let run_fibers fns =
  let e = Engine.create () in
  let lm = Lock_manager.create e () in
  List.iter (fun f -> ignore (Engine.spawn e (fun () -> f e lm))) fns;
  let _ = Engine.run e in
  (e, lm)

let test_mode_standard () =
  Alcotest.(check bool) "r/r" true (Mode.standard Mode.Read Mode.Read);
  Alcotest.(check bool) "r/w" false (Mode.standard Mode.Read Mode.Write);
  Alcotest.(check bool) "w/w" false (Mode.standard Mode.Write Mode.Write)

let test_mode_typed () =
  let compat = Mode.with_typed [ ("enq", "deq") ] in
  Alcotest.(check bool) "enq/deq" true
    (compat (Mode.Typed "enq") (Mode.Typed "deq"));
  Alcotest.(check bool) "deq/enq symmetric" true
    (compat (Mode.Typed "deq") (Mode.Typed "enq"));
  Alcotest.(check bool) "enq/enq" false
    (compat (Mode.Typed "enq") (Mode.Typed "enq"));
  Alcotest.(check bool) "typed vs write" false
    (compat (Mode.Typed "enq") Mode.Write)

let prop_mode_symmetric =
  let gen =
    QCheck.Gen.(
      oneofl [ Mode.Read; Mode.Write; Mode.Typed "a"; Mode.Typed "b" ])
  in
  QCheck.Test.make ~name:"compatibility relations are symmetric" ~count:200
    (QCheck.make QCheck.Gen.(pair gen gen))
    (fun (a, b) ->
      let c1 = Mode.with_typed [ ("a", "b"); ("a", "a") ] in
      c1 a b = c1 b a && Mode.standard a b = Mode.standard b a)

let test_shared_readers () =
  let granted = ref 0 in
  let _ =
    run_fibers
      (List.init 3 (fun i _ lm ->
           match Lock_manager.lock lm (tid i) (obj 0) Mode.Read () with
           | Lock_manager.Granted -> incr granted
           | Lock_manager.Timed_out | Lock_manager.Deadlocked -> ()))
  in
  Alcotest.(check int) "three concurrent readers" 3 !granted

let test_writer_excludes () =
  let order = ref [] in
  let _ =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Write ());
          order := "t1-granted" :: !order;
          Engine.delay 100;
          Lock_manager.release_all lm (tid 1);
          order := "t1-released" :: !order);
        (fun _ lm ->
          Engine.delay 10;
          ignore (Lock_manager.lock lm (tid 2) (obj 0) Mode.Write ());
          order := "t2-granted" :: !order);
      ]
  in
  Alcotest.(check (list string))
    "writer waits for release"
    [ "t1-granted"; "t1-released"; "t2-granted" ]
    (List.rev !order)

let test_lock_timeout () =
  let outcome = ref Lock_manager.Granted in
  let e, lm =
    run_fibers
      [
        (fun _ lm -> ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Write ()));
        (fun _ lm ->
          Engine.delay 10;
          outcome :=
            Lock_manager.lock lm (tid 2) (obj 0) Mode.Write ~timeout:1000 ());
      ]
  in
  Alcotest.(check bool) "timed out" true (!outcome = Lock_manager.Timed_out);
  Alcotest.(check int) "counted" 1 (Lock_manager.timeouts lm);
  ignore e

let test_deadlock_broken_by_timeout () =
  (* T1 holds A wants B; T2 holds B wants A. Both time out rather than
     hang — the paper's deadlock resolution. *)
  let timeouts = ref 0 in
  let _ =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Write ());
          Engine.delay 10;
          (match Lock_manager.lock lm (tid 1) (obj 1) Mode.Write ~timeout:500 () with
          | Lock_manager.Timed_out | Lock_manager.Deadlocked -> incr timeouts
          | Lock_manager.Granted -> ());
          Lock_manager.release_all lm (tid 1));
        (fun _ lm ->
          ignore (Lock_manager.lock lm (tid 2) (obj 1) Mode.Write ());
          Engine.delay 10;
          (match Lock_manager.lock lm (tid 2) (obj 0) Mode.Write ~timeout:500 () with
          | Lock_manager.Timed_out | Lock_manager.Deadlocked -> incr timeouts
          | Lock_manager.Granted -> ());
          Lock_manager.release_all lm (tid 2));
      ]
  in
  Alcotest.(check bool) "at least one victim" true (!timeouts >= 1)

let test_conditional_lock () =
  let results = ref [] in
  let _ =
    run_fibers
      [
        (fun _ lm ->
          results := ("t1", Lock_manager.try_lock lm (tid 1) (obj 0) Mode.Write) :: !results;
          Engine.delay 10);
        (fun _ lm ->
          Engine.delay 5;
          results := ("t2", Lock_manager.try_lock lm (tid 2) (obj 0) Mode.Write) :: !results);
      ]
  in
  Alcotest.(check (list (pair string bool)))
    "conditional does not wait"
    [ ("t1", true); ("t2", false) ]
    (List.rev !results)

let test_is_locked () =
  let observed = ref [] in
  let _ =
    run_fibers
      [
        (fun _ lm ->
          observed := ("before", Lock_manager.is_locked lm (obj 0)) :: !observed;
          ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Read ());
          observed := ("held", Lock_manager.is_locked lm (obj 0)) :: !observed;
          Lock_manager.release_all lm (tid 1);
          observed := ("after", Lock_manager.is_locked lm (obj 0)) :: !observed);
      ]
  in
  Alcotest.(check (list (pair string bool)))
    "IsObjectLocked lifecycle"
    [ ("before", false); ("held", true); ("after", false) ]
    (List.rev !observed)

let test_reentrant_and_upgrade () =
  let _ =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Read ());
          (* Re-request and upgrade with no competitor: immediate. *)
          (match Lock_manager.lock lm (tid 1) (obj 0) Mode.Read ~timeout:10 () with
          | Lock_manager.Granted -> ()
          | Lock_manager.Timed_out | Lock_manager.Deadlocked ->
              Alcotest.fail "reentrant read blocked");
          match Lock_manager.lock lm (tid 1) (obj 0) Mode.Write ~timeout:10 () with
          | Lock_manager.Granted -> ()
          | Lock_manager.Timed_out | Lock_manager.Deadlocked ->
              Alcotest.fail "self upgrade blocked");
      ]
  in
  ()

let test_subtxn_sibling_conflict () =
  (* Two subtransactions of the same parent conflict like strangers —
     the paper's intra-transaction deadlock risk. *)
  let top = tid 1 in
  let s1 = Tid.child top ~index:0 and s2 = Tid.child top ~index:1 in
  let blocked = ref false in
  let _ =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm s1 (obj 0) Mode.Write ());
          Engine.delay 100);
        (fun _ lm ->
          Engine.delay 10;
          match Lock_manager.lock lm s2 (obj 0) Mode.Write ~timeout:50 () with
          | Lock_manager.Timed_out | Lock_manager.Deadlocked -> blocked := true
          | Lock_manager.Granted -> ());
      ]
  in
  Alcotest.(check bool) "sibling blocked" true !blocked

let test_subtxn_parent_not_blocking () =
  let top = tid 1 in
  let sub = Tid.child top ~index:0 in
  let granted = ref false in
  let _ =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm top (obj 0) Mode.Write ());
          match Lock_manager.lock lm sub (obj 0) Mode.Write ~timeout:50 () with
          | Lock_manager.Granted -> granted := true
          | Lock_manager.Timed_out | Lock_manager.Deadlocked -> ());
      ]
  in
  Alcotest.(check bool) "child passes ancestor's lock" true !granted

let test_subtxn_transfer_to_parent () =
  let top = tid 1 in
  let sub = Tid.child top ~index:0 in
  let stranger_blocked = ref false in
  let _ =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm sub (obj 0) Mode.Write ());
          Lock_manager.transfer_to_parent lm sub;
          (* Parent now holds it. *)
          Alcotest.(check bool) "still locked" true (Lock_manager.is_locked lm (obj 0));
          Alcotest.(check int) "parent holds" 1
            (List.length (Lock_manager.held_by lm top)));
        (fun _ lm ->
          Engine.delay 10;
          match Lock_manager.lock lm (tid 9) (obj 0) Mode.Write ~timeout:50 () with
          | Lock_manager.Timed_out | Lock_manager.Deadlocked ->
              stranger_blocked := true
          | Lock_manager.Granted -> ());
      ]
  in
  Alcotest.(check bool) "stranger still excluded" true !stranger_blocked

let test_subtxn_abort_releases () =
  let top = tid 1 in
  let sub = Tid.child top ~index:0 in
  let granted = ref false in
  let _ =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm sub (obj 0) Mode.Write ());
          Engine.delay 20;
          Lock_manager.release_all lm sub);
        (fun _ lm ->
          Engine.delay 10;
          match Lock_manager.lock lm (tid 9) (obj 0) Mode.Write ~timeout:500 () with
          | Lock_manager.Granted -> granted := true
          | Lock_manager.Timed_out | Lock_manager.Deadlocked -> ());
      ]
  in
  Alcotest.(check bool) "released after subtxn abort" true !granted

let test_typed_mode_concurrency () =
  (* Weak-queue style: enqueue and dequeue commute; two enqueuers
     conflict. *)
  let compat = Mode.with_typed [ ("enq", "deq") ] in
  let e = Engine.create () in
  let lm = Lock_manager.create ~compatible:compat e () in
  let results = ref [] in
  let attempt name tid_ mode =
    ignore
      (Engine.spawn e (fun () ->
           match Lock_manager.lock lm tid_ (obj 0) (Mode.Typed mode) ~timeout:100 () with
           | Lock_manager.Granted -> results := (name, true) :: !results
           | Lock_manager.Timed_out | Lock_manager.Deadlocked ->
               results := (name, false) :: !results))
  in
  attempt "enq1" (tid 1) "enq";
  attempt "deq" (tid 2) "deq";
  attempt "enq2" (tid 3) "enq";
  let _ = Engine.run e in
  let find n = List.assoc n !results in
  Alcotest.(check bool) "enq1 granted" true (find "enq1");
  Alcotest.(check bool) "deq compatible" true (find "deq");
  Alcotest.(check bool) "enq2 conflicts" false (find "enq2")

let test_fifo_no_starvation () =
  (* A queued writer blocks later readers even though those readers are
     compatible with the current holder. *)
  let log = ref [] in
  let _ =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Read ());
          Engine.delay 100;
          Lock_manager.release_all lm (tid 1));
        (fun _ lm ->
          Engine.delay 10;
          ignore (Lock_manager.lock lm (tid 2) (obj 0) Mode.Write ());
          log := "writer" :: !log;
          Engine.delay 50;
          Lock_manager.release_all lm (tid 2));
        (fun _ lm ->
          Engine.delay 20;
          ignore (Lock_manager.lock lm (tid 3) (obj 0) Mode.Read ());
          log := "late-reader" :: !log);
      ]
  in
  Alcotest.(check (list string))
    "writer first despite reader compatibility"
    [ "writer"; "late-reader" ]
    (List.rev !log)

(* Regressions: cancelled waiters ------------------------------------- *)

let test_timeout_release_same_instant () =
  (* T2's wait expires at the same virtual instant T1 releases, and the
     timeout event is scheduled first (earlier insertion). The release
     must not re-grant the cancelled waiter: T2 has already returned
     Timed_out and will never release, so a hold recorded for it would
     leak forever. *)
  let t2_outcome = ref Lock_manager.Granted in
  let _, lm =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Write ());
          Engine.delay 10;
          (* second hop lands exactly at T2's timeout instant, but is
             inserted after the timeout timer, so it runs second *)
          Engine.delay 95;
          Lock_manager.release_all lm (tid 1));
        (fun _ lm ->
          Engine.delay 5;
          t2_outcome :=
            Lock_manager.lock lm (tid 2) (obj 0) Mode.Write ~timeout:100 ());
      ]
  in
  Alcotest.(check bool)
    "t2 timed out" true
    (!t2_outcome = Lock_manager.Timed_out);
  Alcotest.(check int) "no leaked holds" 0 (Lock_manager.total_holds lm);
  Alcotest.(check bool)
    "object free afterwards" false
    (Lock_manager.is_locked lm (obj 0));
  Alcotest.(check int) "no stale waiters" 0 (Lock_manager.waiting lm)

let test_fifo_order_survives_mid_queue_timeout () =
  (* The lazy cancelled-waiter purge must not disturb FIFO grant order:
     writers T2, T3, T4, T5 queue behind T1's write hold; T3 times out
     mid-queue (its carcass stays queued until it reaches the front).
     When T1 releases, grants must flow T2 -> T4 -> T5 — the cancelled
     waiter skipped, everyone else in arrival order. *)
  let order = ref [] in
  let queued_writer ?timeout delay_ id hold =
    fun _ lm ->
      Engine.delay delay_;
      match Lock_manager.lock lm (tid id) (obj 0) Mode.Write ?timeout () with
      | Lock_manager.Granted ->
          order := id :: !order;
          Engine.delay hold;
          Lock_manager.release_all lm (tid id)
      | Lock_manager.Timed_out | Lock_manager.Deadlocked ->
          order := -id :: !order
  in
  let _, lm =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Write ());
          Engine.delay 5_000;
          Lock_manager.release_all lm (tid 1));
        queued_writer 10 2 0;
        queued_writer ~timeout:1_000 20 3 0;
        queued_writer 30 4 0;
        queued_writer 40 5 0;
      ]
  in
  Alcotest.(check (list int))
    "FIFO preserved around the cancelled waiter"
    [ -3; 2; 4; 5 ]
    (List.rev !order);
  Alcotest.(check int) "no stale waiters counted" 0 (Lock_manager.waiting lm);
  Alcotest.(check int) "one timeout" 1 (Lock_manager.timeouts lm)

let test_try_lock_after_timeouts () =
  (* Once every queued waiter has timed out and the holder releases, a
     conditional request must succeed: expired waiters may not linger in
     the queue and veto it. *)
  let ok = ref false in
  let _, lm =
    run_fibers
      [
        (fun _ lm ->
          ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Write ());
          Engine.delay 200;
          Lock_manager.release_all lm (tid 1));
        (fun _ lm ->
          Engine.delay 5;
          ignore
            (Lock_manager.lock lm (tid 2) (obj 0) Mode.Write ~timeout:50 ()));
        (fun _ lm ->
          Engine.delay 10;
          ignore
            (Lock_manager.lock lm (tid 3) (obj 0) Mode.Write ~timeout:50 ()));
        (fun _ lm ->
          Engine.delay 300;
          ok := Lock_manager.try_lock lm (tid 4) (obj 0) Mode.Write);
      ]
  in
  Alcotest.(check bool) "conditional grant after stale waiters" true !ok;
  Alcotest.(check int) "both waiters timed out" 2 (Lock_manager.timeouts lm);
  Alcotest.(check int) "queue empty" 0 (Lock_manager.waiting lm)

(* Deadlock detection (optional extension) ----------------------------- *)

let test_detector_breaks_cycle () =
  let e = Engine.create () in
  let lm = Lock_manager.create ~detect_deadlocks:true e () in
  let refused = ref 0 in
  let t1_done = ref (-1) and t2_done = ref (-1) in
  ignore
    (Engine.spawn e (fun () ->
         ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Write ());
         Engine.delay 10;
         (match Lock_manager.lock lm (tid 1) (obj 1) Mode.Write () with
         | Lock_manager.Deadlocked -> incr refused
         | Lock_manager.Granted | Lock_manager.Timed_out -> ());
         Lock_manager.release_all lm (tid 1);
         t1_done := Engine.now e));
  ignore
    (Engine.spawn e (fun () ->
         ignore (Lock_manager.lock lm (tid 2) (obj 1) Mode.Write ());
         Engine.delay 15;
         (match Lock_manager.lock lm (tid 2) (obj 0) Mode.Write () with
         | Lock_manager.Deadlocked -> incr refused
         | Lock_manager.Granted | Lock_manager.Timed_out -> ());
         Lock_manager.release_all lm (tid 2);
         t2_done := Engine.now e));
  let _ = Engine.run e in
  Alcotest.(check int) "exactly one victim, no timeout wait" 1 !refused;
  Alcotest.(check int) "counted" 1 (Lock_manager.deadlocks_detected lm);
  (* both transactions finished immediately — long before the 10 s
     default time-out would have fired *)
  Alcotest.(check bool) "both resolved fast" true
    (!t1_done >= 0 && !t2_done >= 0 && !t1_done < 1_000_000
    && !t2_done < 1_000_000)

let test_detector_three_party_cycle () =
  let e = Engine.create () in
  let lm = Lock_manager.create ~detect_deadlocks:true e () in
  let refused = ref 0 in
  let spawn_party i holds wants =
    ignore
      (Engine.spawn e (fun () ->
           ignore (Lock_manager.lock lm (tid i) (obj holds) Mode.Write ());
           Engine.delay (10 * i);
           (match Lock_manager.lock lm (tid i) (obj wants) Mode.Write () with
           | Lock_manager.Deadlocked -> incr refused
           | Lock_manager.Granted | Lock_manager.Timed_out -> ());
           Lock_manager.release_all lm (tid i)))
  in
  spawn_party 1 0 1;
  spawn_party 2 1 2;
  spawn_party 3 2 0;
  let _ = Engine.run e in
  Alcotest.(check bool) "cycle of three broken" true (!refused >= 1)

let test_detector_no_false_positives () =
  (* a plain queue (no cycle) must not be refused *)
  let e = Engine.create () in
  let lm = Lock_manager.create ~detect_deadlocks:true e () in
  let granted = ref 0 in
  ignore
    (Engine.spawn e (fun () ->
         ignore (Lock_manager.lock lm (tid 1) (obj 0) Mode.Write ());
         Engine.delay 50;
         Lock_manager.release_all lm (tid 1);
         incr granted));
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay 10;
         match Lock_manager.lock lm (tid 2) (obj 0) Mode.Write () with
         | Lock_manager.Granted -> incr granted
         | Lock_manager.Timed_out | Lock_manager.Deadlocked -> ()));
  let _ = Engine.run e in
  Alcotest.(check int) "no false positive" 2 !granted;
  Alcotest.(check int) "none detected" 0 (Lock_manager.deadlocks_detected lm)

let suites =
  [
    ( "lock.mode",
      [
        quick "standard" test_mode_standard;
        quick "typed" test_mode_typed;
        QCheck_alcotest.to_alcotest prop_mode_symmetric;
      ] );
    ( "lock.manager",
      [
        quick "shared readers" test_shared_readers;
        quick "writer excludes" test_writer_excludes;
        quick "timeout" test_lock_timeout;
        quick "deadlock broken" test_deadlock_broken_by_timeout;
        quick "conditional" test_conditional_lock;
        quick "is_locked" test_is_locked;
        quick "reentrant/upgrade" test_reentrant_and_upgrade;
        quick "typed concurrency" test_typed_mode_concurrency;
        quick "fifo no starvation" test_fifo_no_starvation;
        quick "same-instant timeout/release" test_timeout_release_same_instant;
        quick "fifo around cancelled waiter" test_fifo_order_survives_mid_queue_timeout;
        quick "try_lock after timeouts" test_try_lock_after_timeouts;
      ] );
    ( "lock.deadlock_detector",
      [
        quick "breaks two-party cycle" test_detector_breaks_cycle;
        quick "breaks three-party cycle" test_detector_three_party_cycle;
        quick "no false positives" test_detector_no_false_positives;
      ] );
    ( "lock.subtxn",
      [
        quick "sibling conflict" test_subtxn_sibling_conflict;
        quick "ancestor passes" test_subtxn_parent_not_blocking;
        quick "transfer to parent" test_subtxn_transfer_to_parent;
        quick "abort releases" test_subtxn_abort_releases;
      ] );
  ]
