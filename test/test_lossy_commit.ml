(* Property test: distributed commits over a lossy datagram network.

   Three nodes, every transaction writes on all three (so the read-only
   vote optimization cannot apply and strict outcome convergence must
   hold), with 5% or 20% of transmissions dropped. Whatever mix of
   retransmission, time-out aborts, and in-doubt resolution results, the
   cluster must converge: every node that records an outcome for a
   transaction records the same outcome, the replicated cells agree,
   no transaction is left in doubt, and no locks leak. *)

open Tabs_wal
open Tabs_net
open Tabs_core
open Tabs_servers
open Tabs_obs

let nodes = 3

let txns = 5

let server_name dest = Printf.sprintf "a%d" dest

let run_case ?comm_batching ~loss ~seed () =
  let c = Cluster.create ~nodes ~seed ?comm_batching () in
  let arrays =
    List.map
      (fun node ->
        Int_array_server.create (Node.env node)
          ~name:(server_name (Node.id node))
          ~segment:1 ~cells:16 ())
      (Cluster.nodes c)
  in
  let recorder = Recorder.attach (Cluster.engine c) in
  Network.set_loss (Cluster.network c) loss;
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.spawn c ~node:0 (fun () ->
      for i = 0 to txns - 1 do
        try
          Txn_lib.execute_transaction tm (fun tid ->
              for dest = 0 to nodes - 1 do
                Int_array_server.call_set rpc ~dest ~server:(server_name dest)
                  tid i (100 + i)
              done)
        with
        | Errors.Lock_timeout _ | Errors.Deadlock _
        | Errors.Transaction_is_aborted _
        | Rpc.Rpc_timeout _ ->
            ()
      done);
  Cluster.run_until c ~time:600_000_000;
  (* heal the network and drain retransmissions and the in-doubt
     resolver to quiescence *)
  Network.set_loss (Cluster.network c) 0.0;
  Cluster.run c;
  let entries = Recorder.entries recorder in
  Recorder.detach recorder;
  (* 1. trace-stream convergence: no transaction has a commit on one
     node and an abort on another *)
  let outcomes : (string, bool list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ({ event; _ } : Recorder.entry) ->
      let note tid committed =
        let key = Tid.to_string tid in
        let prev = Option.value (Hashtbl.find_opt outcomes key) ~default:[] in
        Hashtbl.replace outcomes key (committed :: prev)
      in
      match event with
      | Tabs_tm.Txn_mgr.Txn_commit { tid; _ } -> note tid true
      | Tabs_tm.Txn_mgr.Txn_abort { tid; _ } -> note tid false
      | _ -> ())
    entries;
  let converged =
    Hashtbl.fold
      (fun _ recorded ok ->
        ok && not (List.mem true recorded && List.mem false recorded))
      outcomes true
  in
  (* 2. replica convergence: each written cell reads the same on every
     node *)
  let replicas_agree =
    Cluster.run_fiber c ~node:0 (fun () ->
        List.for_all
          (fun i ->
            Txn_lib.execute_transaction tm (fun tid ->
                let vs =
                  List.init nodes (fun dest ->
                      Int_array_server.call_get rpc ~dest
                        ~server:(server_name dest) tid i)
                in
                match vs with
                | v :: rest -> List.for_all (fun v' -> v' = v) rest
                | [] -> true))
          (List.init txns (fun i -> i)))
  in
  (* 3. nothing left behind: no in-doubt transactions, no held locks *)
  let nothing_in_doubt =
    List.for_all
      (fun node -> Tabs_tm.Txn_mgr.in_doubt (Node.tm node) = [])
      (Cluster.nodes c)
  in
  let spans_balanced = Span.balanced (Span.of_entries entries) in
  let no_leaked_locks =
    List.for_all
      (fun arr ->
        Tabs_lock.Lock_manager.total_holds
          (Server_lib.lock_manager (Int_array_server.server arr))
        = 0)
      arrays
  in
  converged && replicas_agree && nothing_in_doubt && spans_balanced
  && no_leaked_locks

let prop_lossy_convergence =
  QCheck.Test.make
    ~name:"distributed commits converge under 5% and 20% datagram loss"
    ~count:8
    QCheck.(pair bool small_int)
    (fun (heavy, seed) ->
      run_case ~loss:(if heavy then 0.20 else 0.05) ~seed:(seed + 1) ())

(* The same property with the comm-batching layer on: coalesced
   datagrams and delayed/piggybacked acks must not change any outcome,
   leak a lock, or leave anything in doubt, even when whole multi-frame
   wire messages are dropped. *)
let prop_lossy_convergence_with_batching =
  QCheck.Test.make
    ~name:"batched comm converges under 5% and 20% datagram loss"
    ~count:8
    QCheck.(pair bool small_int)
    (fun (heavy, seed) ->
      run_case ~comm_batching:Comm_mgr.default_batching
        ~loss:(if heavy then 0.20 else 0.05)
        ~seed:(seed + 1) ())

let suites =
  [
    ( "net.lossy_commit",
      [
        QCheck_alcotest.to_alcotest prop_lossy_convergence;
        QCheck_alcotest.to_alcotest prop_lossy_convergence_with_batching;
      ] );
  ]
