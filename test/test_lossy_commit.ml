(* Property test: distributed commits over a lossy datagram network.

   Three nodes, every transaction writes on all three (so the read-only
   vote optimization cannot apply and strict outcome convergence must
   hold), with 5% or 20% of transmissions dropped. Whatever mix of
   retransmission, time-out aborts, and in-doubt resolution results, the
   cluster must converge: every node that records an outcome for a
   transaction records the same outcome, the replicated cells agree,
   no transaction is left in doubt, and no locks leak. *)

open Tabs_wal
open Tabs_net
open Tabs_core
open Tabs_servers
open Tabs_obs

let nodes = 3

let txns = 5

let server_name dest = Printf.sprintf "a%d" dest

let run_case ?comm_batching ?commit_protocol ~loss ~seed () =
  let c = Cluster.create ~nodes ~seed ?comm_batching ?commit_protocol () in
  let arrays =
    List.map
      (fun node ->
        Int_array_server.create (Node.env node)
          ~name:(server_name (Node.id node))
          ~segment:1 ~cells:16 ())
      (Cluster.nodes c)
  in
  let recorder = Recorder.attach (Cluster.engine c) in
  Network.set_loss (Cluster.network c) loss;
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.spawn c ~node:0 (fun () ->
      for i = 0 to txns - 1 do
        try
          Txn_lib.execute_transaction tm (fun tid ->
              for dest = 0 to nodes - 1 do
                Int_array_server.call_set rpc ~dest ~server:(server_name dest)
                  tid i (100 + i)
              done)
        with
        | Errors.Lock_timeout _ | Errors.Deadlock _
        | Errors.Transaction_is_aborted _
        | Rpc.Rpc_timeout _ ->
            ()
      done);
  Cluster.run_until c ~time:600_000_000;
  (* heal the network and drain retransmissions and the in-doubt
     resolver to quiescence *)
  Network.set_loss (Cluster.network c) 0.0;
  Cluster.run c;
  let entries = Recorder.entries recorder in
  Recorder.detach recorder;
  (* 1. trace-stream convergence: no transaction has a commit on one
     node and an abort on another *)
  let outcomes : (string, bool list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ({ event; _ } : Recorder.entry) ->
      let note tid committed =
        let key = Tid.to_string tid in
        let prev = Option.value (Hashtbl.find_opt outcomes key) ~default:[] in
        Hashtbl.replace outcomes key (committed :: prev)
      in
      match event with
      | Tabs_tm.Txn_mgr.Txn_commit { tid; _ } -> note tid true
      | Tabs_tm.Txn_mgr.Txn_abort { tid; _ } -> note tid false
      | _ -> ())
    entries;
  let converged =
    Hashtbl.fold
      (fun _ recorded ok ->
        ok && not (List.mem true recorded && List.mem false recorded))
      outcomes true
  in
  (* 2. replica convergence: each written cell reads the same on every
     node *)
  let replicas_agree =
    Cluster.run_fiber c ~node:0 (fun () ->
        List.for_all
          (fun i ->
            Txn_lib.execute_transaction tm (fun tid ->
                let vs =
                  List.init nodes (fun dest ->
                      Int_array_server.call_get rpc ~dest
                        ~server:(server_name dest) tid i)
                in
                match vs with
                | v :: rest -> List.for_all (fun v' -> v' = v) rest
                | [] -> true))
          (List.init txns (fun i -> i)))
  in
  (* 3. nothing left behind: no in-doubt transactions, no held locks *)
  let nothing_in_doubt =
    List.for_all
      (fun node -> Tabs_tm.Txn_mgr.in_doubt (Node.tm node) = [])
      (Cluster.nodes c)
  in
  let spans_balanced = Span.balanced (Span.of_entries entries) in
  let no_leaked_locks =
    List.for_all
      (fun arr ->
        Tabs_lock.Lock_manager.total_holds
          (Server_lib.lock_manager (Int_array_server.server arr))
        = 0)
      arrays
  in
  converged && replicas_agree && nothing_in_doubt && spans_balanced
  && no_leaked_locks

let prop_lossy_convergence =
  QCheck.Test.make
    ~name:"distributed commits converge under 5% and 20% datagram loss"
    ~count:8
    QCheck.(pair bool small_int)
    (fun (heavy, seed) ->
      run_case ~loss:(if heavy then 0.20 else 0.05) ~seed:(seed + 1) ())

(* The same property with the comm-batching layer on: coalesced
   datagrams and delayed/piggybacked acks must not change any outcome,
   leak a lock, or leave anything in doubt, even when whole multi-frame
   wire messages are dropped. *)
let prop_lossy_convergence_with_batching =
  QCheck.Test.make
    ~name:"batched comm converges under 5% and 20% datagram loss"
    ~count:8
    QCheck.(pair bool small_int)
    (fun (heavy, seed) ->
      run_case ~comm_batching:Comm_mgr.default_batching
        ~loss:(if heavy then 0.20 else 0.05)
        ~seed:(seed + 1) ())

(* Coordinator crash at a protocol step chosen by qcheck: node 3
   coordinates transactions writing on all four nodes and is killed
   [offset] microseconds into the run — anywhere from mid-spread,
   through the vote phase, to after its decision. Under Two_phase the
   prepared survivors block until the coordinator restarts; under Paxos
   the acceptors (nodes 0-2) must resolve them with the coordinator
   still down. In both cases, after an optional restart and a healing
   period, the cluster must fully converge: consistent outcomes, equal
   replicas, nothing in doubt, zero held locks. *)
let run_crash_case ?commit_protocol ~offset ~restart ~seed () =
  let crash_nodes = 4 in
  let c = Cluster.create ~nodes:crash_nodes ~seed ?commit_protocol () in
  let holders =
    Array.map
      (fun node ->
        ref
          (Int_array_server.create (Node.env node)
             ~name:(server_name (Node.id node))
             ~segment:1 ~cells:16 ()))
      (Array.of_list (Cluster.nodes c))
  in
  let recorder = Recorder.attach (Cluster.engine c) in
  let n3 = Cluster.node c 3 in
  Cluster.spawn c ~node:3 (fun () ->
      for i = 0 to 2 do
        try
          Txn_lib.execute_transaction (Node.tm n3) (fun tid ->
              for dest = 0 to crash_nodes - 1 do
                Int_array_server.call_set (Node.rpc n3) ~dest
                  ~server:(server_name dest) tid i (200 + i)
              done)
        with
        | Errors.Lock_timeout _ | Errors.Deadlock _
        | Errors.Transaction_is_aborted _
        | Rpc.Rpc_timeout _ ->
            ()
      done);
  ignore
    (Tabs_sim.Engine.spawn (Cluster.engine c) (fun () ->
         Tabs_sim.Engine.delay offset;
         if Node.is_up n3 then Node.crash n3));
  (* long enough for Paxos takeover (or 2PC blocking) to play out *)
  Cluster.run_until c ~time:60_000_000;
  let survivors_drained =
    List.for_all
      (fun node ->
        (not (Node.is_up node))
        || Tabs_tm.Txn_mgr.in_doubt (Node.tm node) = [])
      (Cluster.nodes c)
  in
  if restart then
    ignore
      (Cluster.run_fiber c ~node:3 (fun () ->
           Node.restart n3
             ~reinstall:(fun env ->
               holders.(3) :=
                 Int_array_server.create env ~name:(server_name 3) ~segment:1
                   ~cells:16 ())
             ~after_recovery:(fun outcome ->
               Server_lib.relock_in_doubt
                 (Int_array_server.server !(holders.(3)))
                 outcome.Tabs_recovery.Recovery_mgr.written_objects)
             ()));
  Cluster.run_until c ~time:(Tabs_sim.Engine.now (Cluster.engine c) + 600_000_000);
  let entries = Recorder.entries recorder in
  Recorder.detach recorder;
  (* consistent outcomes in the trace stream *)
  let outcomes : (string, bool list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ({ event; _ } : Recorder.entry) ->
      let note tid committed =
        let key = Tid.to_string tid in
        let prev = Option.value (Hashtbl.find_opt outcomes key) ~default:[] in
        Hashtbl.replace outcomes key (committed :: prev)
      in
      match event with
      | Tabs_tm.Txn_mgr.Txn_commit { tid; _ } -> note tid true
      | Tabs_tm.Txn_mgr.Txn_abort { tid; reason; _ } ->
          (* the crash wiped node 3's volatile state: losers rolled back
             at restart are legitimate aborts, recorded like others *)
          ignore reason;
          note tid false
      | _ -> ())
    entries;
  let converged =
    Hashtbl.fold
      (fun _ recorded ok ->
        ok && not (List.mem true recorded && List.mem false recorded))
      outcomes true
  in
  (* replicas agree, in-doubt drained, no locks held — on up nodes *)
  let up = List.filter Node.is_up (Cluster.nodes c) in
  let replicas_agree =
    List.for_all
      (fun i ->
        let vs =
          List.map
            (fun node ->
              Cluster.run_fiber c ~node:(Node.id node) (fun () ->
                  Txn_lib.execute_transaction (Node.tm node) (fun tid ->
                      Int_array_server.get !(holders.(Node.id node)) tid i)))
            up
        in
        match vs with
        | v :: rest -> List.for_all (fun v' -> v' = v) rest
        | [] -> true)
      [ 0; 1; 2 ]
  in
  let nothing_in_doubt =
    List.for_all (fun node -> Tabs_tm.Txn_mgr.in_doubt (Node.tm node) = []) up
  in
  let no_leaked_locks =
    List.for_all
      (fun node ->
        Tabs_lock.Lock_manager.total_holds
          (Server_lib.lock_manager
             (Int_array_server.server !(holders.(Node.id node))))
        = 0)
      up
  in
  (* under Paxos the survivors must have been clean BEFORE any restart *)
  let non_blocking_held =
    match commit_protocol with
    | Some (Tabs_tm.Commit_protocol.Paxos _) -> survivors_drained
    | _ -> true
  in
  converged && replicas_agree && nothing_in_doubt && no_leaked_locks
  && non_blocking_held

let crash_offset seed = 2_000 + (seed * 7919 mod 120_000)

let prop_crash_coordinator_2pc =
  QCheck.Test.make
    ~name:"2PC converges after coordinator crash + restart (any step)"
    ~count:10 QCheck.small_int
    (fun seed ->
      run_crash_case
        ~commit_protocol:Tabs_tm.Commit_protocol.Two_phase
        ~offset:(crash_offset seed) ~restart:true ~seed:(seed + 1) ())

let prop_crash_coordinator_paxos =
  QCheck.Test.make
    ~name:"Paxos converges after coordinator crash + restart (any step)"
    ~count:10 QCheck.small_int
    (fun seed ->
      run_crash_case
        ~commit_protocol:(Tabs_tm.Commit_protocol.Paxos { f = 1 })
        ~offset:(crash_offset seed) ~restart:true ~seed:(seed + 1) ())

let prop_crash_coordinator_paxos_no_restart =
  QCheck.Test.make
    ~name:"Paxos drains in-doubt with the coordinator never restarted"
    ~count:10 QCheck.small_int
    (fun seed ->
      run_crash_case
        ~commit_protocol:(Tabs_tm.Commit_protocol.Paxos { f = 1 })
        ~offset:(crash_offset (seed + 13)) ~restart:false ~seed:(seed + 1) ())

(* Paxos under datagram loss: same convergence property as the 2PC
   version above, exercising acceptor retries and takeover under a
   lossy network. *)
let prop_lossy_convergence_paxos =
  QCheck.Test.make
    ~name:"Paxos commits converge under 5% and 20% datagram loss"
    ~count:8
    QCheck.(pair bool small_int)
    (fun (heavy, seed) ->
      run_case
        ~commit_protocol:(Tabs_tm.Commit_protocol.Paxos { f = 1 })
        ~loss:(if heavy then 0.20 else 0.05)
        ~seed:(seed + 1) ())

let suites =
  [
    ( "net.lossy_commit",
      [
        QCheck_alcotest.to_alcotest prop_lossy_convergence;
        QCheck_alcotest.to_alcotest prop_lossy_convergence_with_batching;
        QCheck_alcotest.to_alcotest prop_lossy_convergence_paxos;
        QCheck_alcotest.to_alcotest prop_crash_coordinator_2pc;
        QCheck_alcotest.to_alcotest prop_crash_coordinator_paxos;
        QCheck_alcotest.to_alcotest prop_crash_coordinator_paxos_no_restart;
      ] );
  ]
